file(REMOVE_RECURSE
  "CMakeFiles/translator_lab.dir/translator_lab.cpp.o"
  "CMakeFiles/translator_lab.dir/translator_lab.cpp.o.d"
  "translator_lab"
  "translator_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
