# Empty compiler generated dependencies file for translator_lab.
# This may be replaced when dependencies are built.
