# Empty compiler generated dependencies file for startup_race.
# This may be replaced when dependencies are built.
