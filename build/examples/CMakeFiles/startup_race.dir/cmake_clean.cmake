file(REMOVE_RECURSE
  "CMakeFiles/startup_race.dir/startup_race.cpp.o"
  "CMakeFiles/startup_race.dir/startup_race.cpp.o.d"
  "startup_race"
  "startup_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/startup_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
