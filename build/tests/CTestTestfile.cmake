# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_asm_roundtrip "/root/repo/build/tests/test_asm_roundtrip")
set_tests_properties(test_asm_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_crack_exec "/root/repo/build/tests/test_crack_exec")
set_tests_properties(test_crack_exec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dbt "/root/repo/build/tests/test_dbt")
set_tests_properties(test_dbt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_decoder "/root/repo/build/tests/test_decoder")
set_tests_properties(test_decoder PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_differential "/root/repo/build/tests/test_differential")
set_tests_properties(test_differential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_encoding "/root/repo/build/tests/test_encoding")
set_tests_properties(test_encoding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fusion "/root/repo/build/tests/test_fusion")
set_tests_properties(test_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hwassist "/root/repo/build/tests/test_hwassist")
set_tests_properties(test_hwassist PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_interp "/root/repo/build/tests/test_interp")
set_tests_properties(test_interp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_memsys "/root/repo/build/tests/test_memsys")
set_tests_properties(test_memsys PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_timing "/root/repo/build/tests/test_timing")
set_tests_properties(test_timing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_vmm "/root/repo/build/tests/test_vmm")
set_tests_properties(test_vmm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workload "/root/repo/build/tests/test_workload")
set_tests_properties(test_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;26;add_test;/root/repo/tests/CMakeLists.txt;0;")
