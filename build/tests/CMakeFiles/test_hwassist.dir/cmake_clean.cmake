file(REMOVE_RECURSE
  "CMakeFiles/test_hwassist.dir/test_hwassist.cc.o"
  "CMakeFiles/test_hwassist.dir/test_hwassist.cc.o.d"
  "test_hwassist"
  "test_hwassist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwassist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
