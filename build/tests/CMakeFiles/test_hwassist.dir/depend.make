# Empty dependencies file for test_hwassist.
# This may be replaced when dependencies are built.
