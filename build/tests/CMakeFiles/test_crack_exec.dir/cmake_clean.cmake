file(REMOVE_RECURSE
  "CMakeFiles/test_crack_exec.dir/test_crack_exec.cc.o"
  "CMakeFiles/test_crack_exec.dir/test_crack_exec.cc.o.d"
  "test_crack_exec"
  "test_crack_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crack_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
