# Empty dependencies file for test_crack_exec.
# This may be replaced when dependencies are built.
