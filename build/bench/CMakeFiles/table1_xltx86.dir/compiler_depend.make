# Empty compiler generated dependencies file for table1_xltx86.
# This may be replaced when dependencies are built.
