file(REMOVE_RECURSE
  "CMakeFiles/table1_xltx86.dir/table1_xltx86.cc.o"
  "CMakeFiles/table1_xltx86.dir/table1_xltx86.cc.o.d"
  "table1_xltx86"
  "table1_xltx86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_xltx86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
