file(REMOVE_RECURSE
  "CMakeFiles/fig2_startup_soft.dir/fig2_startup_soft.cc.o"
  "CMakeFiles/fig2_startup_soft.dir/fig2_startup_soft.cc.o.d"
  "fig2_startup_soft"
  "fig2_startup_soft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_startup_soft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
