# Empty dependencies file for fig2_startup_soft.
# This may be replaced when dependencies are built.
