# Empty compiler generated dependencies file for steadystate_ipc.
# This may be replaced when dependencies are built.
