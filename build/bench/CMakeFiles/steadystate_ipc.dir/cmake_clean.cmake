file(REMOVE_RECURSE
  "CMakeFiles/steadystate_ipc.dir/steadystate_ipc.cc.o"
  "CMakeFiles/steadystate_ipc.dir/steadystate_ipc.cc.o.d"
  "steadystate_ipc"
  "steadystate_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steadystate_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
