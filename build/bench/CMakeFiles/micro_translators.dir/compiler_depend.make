# Empty compiler generated dependencies file for micro_translators.
# This may be replaced when dependencies are built.
