file(REMOVE_RECURSE
  "CMakeFiles/micro_translators.dir/micro_translators.cc.o"
  "CMakeFiles/micro_translators.dir/micro_translators.cc.o.d"
  "micro_translators"
  "micro_translators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_translators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
