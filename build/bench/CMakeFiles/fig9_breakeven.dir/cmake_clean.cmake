file(REMOVE_RECURSE
  "CMakeFiles/fig9_breakeven.dir/fig9_breakeven.cc.o"
  "CMakeFiles/fig9_breakeven.dir/fig9_breakeven.cc.o.d"
  "fig9_breakeven"
  "fig9_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
