# Empty compiler generated dependencies file for fig9_breakeven.
# This may be replaced when dependencies are built.
