file(REMOVE_RECURSE
  "CMakeFiles/fig8_startup_assist.dir/fig8_startup_assist.cc.o"
  "CMakeFiles/fig8_startup_assist.dir/fig8_startup_assist.cc.o.d"
  "fig8_startup_assist"
  "fig8_startup_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_startup_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
