# Empty dependencies file for fig8_startup_assist.
# This may be replaced when dependencies are built.
