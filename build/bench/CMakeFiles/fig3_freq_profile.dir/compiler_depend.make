# Empty compiler generated dependencies file for fig3_freq_profile.
# This may be replaced when dependencies are built.
