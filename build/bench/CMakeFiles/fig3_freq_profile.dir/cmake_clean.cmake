file(REMOVE_RECURSE
  "CMakeFiles/fig3_freq_profile.dir/fig3_freq_profile.cc.o"
  "CMakeFiles/fig3_freq_profile.dir/fig3_freq_profile.cc.o.d"
  "fig3_freq_profile"
  "fig3_freq_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_freq_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
