file(REMOVE_RECURSE
  "CMakeFiles/model_staged_emulation.dir/model_staged_emulation.cc.o"
  "CMakeFiles/model_staged_emulation.dir/model_staged_emulation.cc.o.d"
  "model_staged_emulation"
  "model_staged_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_staged_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
