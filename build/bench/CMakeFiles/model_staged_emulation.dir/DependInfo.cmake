
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/model_staged_emulation.cc" "bench/CMakeFiles/model_staged_emulation.dir/model_staged_emulation.cc.o" "gcc" "bench/CMakeFiles/model_staged_emulation.dir/model_staged_emulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cdvm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/cdvm_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/vmm/CMakeFiles/cdvm_vmm.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cdvm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/memsys/CMakeFiles/cdvm_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/cdvm_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/hwassist/CMakeFiles/cdvm_hwassist.dir/DependInfo.cmake"
  "/root/repo/build/src/uops/CMakeFiles/cdvm_uops.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/cdvm_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
