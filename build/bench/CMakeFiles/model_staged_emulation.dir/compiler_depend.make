# Empty compiler generated dependencies file for model_staged_emulation.
# This may be replaced when dependencies are built.
