# Empty dependencies file for ablate_codecache.
# This may be replaced when dependencies are built.
