file(REMOVE_RECURSE
  "CMakeFiles/ablate_codecache.dir/ablate_codecache.cc.o"
  "CMakeFiles/ablate_codecache.dir/ablate_codecache.cc.o.d"
  "ablate_codecache"
  "ablate_codecache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_codecache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
