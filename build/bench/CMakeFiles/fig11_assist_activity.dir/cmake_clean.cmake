file(REMOVE_RECURSE
  "CMakeFiles/fig11_assist_activity.dir/fig11_assist_activity.cc.o"
  "CMakeFiles/fig11_assist_activity.dir/fig11_assist_activity.cc.o.d"
  "fig11_assist_activity"
  "fig11_assist_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_assist_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
