# Empty compiler generated dependencies file for fig11_assist_activity.
# This may be replaced when dependencies are built.
