# Empty dependencies file for cdvm_memsys.
# This may be replaced when dependencies are built.
