file(REMOVE_RECURSE
  "CMakeFiles/cdvm_memsys.dir/cache.cc.o"
  "CMakeFiles/cdvm_memsys.dir/cache.cc.o.d"
  "CMakeFiles/cdvm_memsys.dir/hierarchy.cc.o"
  "CMakeFiles/cdvm_memsys.dir/hierarchy.cc.o.d"
  "libcdvm_memsys.a"
  "libcdvm_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
