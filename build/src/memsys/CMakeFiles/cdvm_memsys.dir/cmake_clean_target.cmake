file(REMOVE_RECURSE
  "libcdvm_memsys.a"
)
