file(REMOVE_RECURSE
  "libcdvm_workload.a"
)
