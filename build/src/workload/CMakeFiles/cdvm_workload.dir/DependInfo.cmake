
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/program_gen.cc" "src/workload/CMakeFiles/cdvm_workload.dir/program_gen.cc.o" "gcc" "src/workload/CMakeFiles/cdvm_workload.dir/program_gen.cc.o.d"
  "/root/repo/src/workload/trace_gen.cc" "src/workload/CMakeFiles/cdvm_workload.dir/trace_gen.cc.o" "gcc" "src/workload/CMakeFiles/cdvm_workload.dir/trace_gen.cc.o.d"
  "/root/repo/src/workload/winstone.cc" "src/workload/CMakeFiles/cdvm_workload.dir/winstone.cc.o" "gcc" "src/workload/CMakeFiles/cdvm_workload.dir/winstone.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86/CMakeFiles/cdvm_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
