# Empty compiler generated dependencies file for cdvm_workload.
# This may be replaced when dependencies are built.
