file(REMOVE_RECURSE
  "CMakeFiles/cdvm_workload.dir/program_gen.cc.o"
  "CMakeFiles/cdvm_workload.dir/program_gen.cc.o.d"
  "CMakeFiles/cdvm_workload.dir/trace_gen.cc.o"
  "CMakeFiles/cdvm_workload.dir/trace_gen.cc.o.d"
  "CMakeFiles/cdvm_workload.dir/winstone.cc.o"
  "CMakeFiles/cdvm_workload.dir/winstone.cc.o.d"
  "libcdvm_workload.a"
  "libcdvm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
