# Empty compiler generated dependencies file for cdvm_x86.
# This may be replaced when dependencies are built.
