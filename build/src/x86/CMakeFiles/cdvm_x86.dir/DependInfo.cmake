
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/asm.cc" "src/x86/CMakeFiles/cdvm_x86.dir/asm.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/asm.cc.o.d"
  "/root/repo/src/x86/decoder.cc" "src/x86/CMakeFiles/cdvm_x86.dir/decoder.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/decoder.cc.o.d"
  "/root/repo/src/x86/insn.cc" "src/x86/CMakeFiles/cdvm_x86.dir/insn.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/insn.cc.o.d"
  "/root/repo/src/x86/interp.cc" "src/x86/CMakeFiles/cdvm_x86.dir/interp.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/interp.cc.o.d"
  "/root/repo/src/x86/memory.cc" "src/x86/CMakeFiles/cdvm_x86.dir/memory.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/memory.cc.o.d"
  "/root/repo/src/x86/regs.cc" "src/x86/CMakeFiles/cdvm_x86.dir/regs.cc.o" "gcc" "src/x86/CMakeFiles/cdvm_x86.dir/regs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
