file(REMOVE_RECURSE
  "libcdvm_x86.a"
)
