file(REMOVE_RECURSE
  "CMakeFiles/cdvm_x86.dir/asm.cc.o"
  "CMakeFiles/cdvm_x86.dir/asm.cc.o.d"
  "CMakeFiles/cdvm_x86.dir/decoder.cc.o"
  "CMakeFiles/cdvm_x86.dir/decoder.cc.o.d"
  "CMakeFiles/cdvm_x86.dir/insn.cc.o"
  "CMakeFiles/cdvm_x86.dir/insn.cc.o.d"
  "CMakeFiles/cdvm_x86.dir/interp.cc.o"
  "CMakeFiles/cdvm_x86.dir/interp.cc.o.d"
  "CMakeFiles/cdvm_x86.dir/memory.cc.o"
  "CMakeFiles/cdvm_x86.dir/memory.cc.o.d"
  "CMakeFiles/cdvm_x86.dir/regs.cc.o"
  "CMakeFiles/cdvm_x86.dir/regs.cc.o.d"
  "libcdvm_x86.a"
  "libcdvm_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
