# Empty dependencies file for cdvm_common.
# This may be replaced when dependencies are built.
