file(REMOVE_RECURSE
  "CMakeFiles/cdvm_common.dir/cli.cc.o"
  "CMakeFiles/cdvm_common.dir/cli.cc.o.d"
  "CMakeFiles/cdvm_common.dir/logging.cc.o"
  "CMakeFiles/cdvm_common.dir/logging.cc.o.d"
  "CMakeFiles/cdvm_common.dir/random.cc.o"
  "CMakeFiles/cdvm_common.dir/random.cc.o.d"
  "CMakeFiles/cdvm_common.dir/stats.cc.o"
  "CMakeFiles/cdvm_common.dir/stats.cc.o.d"
  "CMakeFiles/cdvm_common.dir/table.cc.o"
  "CMakeFiles/cdvm_common.dir/table.cc.o.d"
  "libcdvm_common.a"
  "libcdvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
