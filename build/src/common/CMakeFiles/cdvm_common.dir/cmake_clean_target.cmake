file(REMOVE_RECURSE
  "libcdvm_common.a"
)
