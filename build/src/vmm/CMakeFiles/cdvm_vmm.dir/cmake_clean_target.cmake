file(REMOVE_RECURSE
  "libcdvm_vmm.a"
)
