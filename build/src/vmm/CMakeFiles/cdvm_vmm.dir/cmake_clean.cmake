file(REMOVE_RECURSE
  "CMakeFiles/cdvm_vmm.dir/vmm.cc.o"
  "CMakeFiles/cdvm_vmm.dir/vmm.cc.o.d"
  "libcdvm_vmm.a"
  "libcdvm_vmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_vmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
