# Empty dependencies file for cdvm_vmm.
# This may be replaced when dependencies are built.
