file(REMOVE_RECURSE
  "libcdvm_analysis.a"
)
