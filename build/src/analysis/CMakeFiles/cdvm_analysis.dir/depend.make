# Empty dependencies file for cdvm_analysis.
# This may be replaced when dependencies are built.
