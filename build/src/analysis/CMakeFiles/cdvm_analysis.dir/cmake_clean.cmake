file(REMOVE_RECURSE
  "CMakeFiles/cdvm_analysis.dir/freq_profile.cc.o"
  "CMakeFiles/cdvm_analysis.dir/freq_profile.cc.o.d"
  "CMakeFiles/cdvm_analysis.dir/startup_curve.cc.o"
  "CMakeFiles/cdvm_analysis.dir/startup_curve.cc.o.d"
  "libcdvm_analysis.a"
  "libcdvm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
