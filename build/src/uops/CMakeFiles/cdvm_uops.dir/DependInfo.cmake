
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uops/crack.cc" "src/uops/CMakeFiles/cdvm_uops.dir/crack.cc.o" "gcc" "src/uops/CMakeFiles/cdvm_uops.dir/crack.cc.o.d"
  "/root/repo/src/uops/encoding.cc" "src/uops/CMakeFiles/cdvm_uops.dir/encoding.cc.o" "gcc" "src/uops/CMakeFiles/cdvm_uops.dir/encoding.cc.o.d"
  "/root/repo/src/uops/exec.cc" "src/uops/CMakeFiles/cdvm_uops.dir/exec.cc.o" "gcc" "src/uops/CMakeFiles/cdvm_uops.dir/exec.cc.o.d"
  "/root/repo/src/uops/fusion.cc" "src/uops/CMakeFiles/cdvm_uops.dir/fusion.cc.o" "gcc" "src/uops/CMakeFiles/cdvm_uops.dir/fusion.cc.o.d"
  "/root/repo/src/uops/uop.cc" "src/uops/CMakeFiles/cdvm_uops.dir/uop.cc.o" "gcc" "src/uops/CMakeFiles/cdvm_uops.dir/uop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/x86/CMakeFiles/cdvm_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
