file(REMOVE_RECURSE
  "CMakeFiles/cdvm_uops.dir/crack.cc.o"
  "CMakeFiles/cdvm_uops.dir/crack.cc.o.d"
  "CMakeFiles/cdvm_uops.dir/encoding.cc.o"
  "CMakeFiles/cdvm_uops.dir/encoding.cc.o.d"
  "CMakeFiles/cdvm_uops.dir/exec.cc.o"
  "CMakeFiles/cdvm_uops.dir/exec.cc.o.d"
  "CMakeFiles/cdvm_uops.dir/fusion.cc.o"
  "CMakeFiles/cdvm_uops.dir/fusion.cc.o.d"
  "CMakeFiles/cdvm_uops.dir/uop.cc.o"
  "CMakeFiles/cdvm_uops.dir/uop.cc.o.d"
  "libcdvm_uops.a"
  "libcdvm_uops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_uops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
