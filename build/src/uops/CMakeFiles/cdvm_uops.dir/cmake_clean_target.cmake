file(REMOVE_RECURSE
  "libcdvm_uops.a"
)
