# Empty dependencies file for cdvm_uops.
# This may be replaced when dependencies are built.
