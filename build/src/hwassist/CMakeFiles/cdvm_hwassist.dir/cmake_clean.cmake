file(REMOVE_RECURSE
  "CMakeFiles/cdvm_hwassist.dir/bbb.cc.o"
  "CMakeFiles/cdvm_hwassist.dir/bbb.cc.o.d"
  "CMakeFiles/cdvm_hwassist.dir/dualmode.cc.o"
  "CMakeFiles/cdvm_hwassist.dir/dualmode.cc.o.d"
  "CMakeFiles/cdvm_hwassist.dir/haloop.cc.o"
  "CMakeFiles/cdvm_hwassist.dir/haloop.cc.o.d"
  "CMakeFiles/cdvm_hwassist.dir/xlt.cc.o"
  "CMakeFiles/cdvm_hwassist.dir/xlt.cc.o.d"
  "libcdvm_hwassist.a"
  "libcdvm_hwassist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_hwassist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
