
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwassist/bbb.cc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/bbb.cc.o" "gcc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/bbb.cc.o.d"
  "/root/repo/src/hwassist/dualmode.cc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/dualmode.cc.o" "gcc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/dualmode.cc.o.d"
  "/root/repo/src/hwassist/haloop.cc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/haloop.cc.o" "gcc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/haloop.cc.o.d"
  "/root/repo/src/hwassist/xlt.cc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/xlt.cc.o" "gcc" "src/hwassist/CMakeFiles/cdvm_hwassist.dir/xlt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uops/CMakeFiles/cdvm_uops.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/cdvm_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
