# Empty dependencies file for cdvm_hwassist.
# This may be replaced when dependencies are built.
