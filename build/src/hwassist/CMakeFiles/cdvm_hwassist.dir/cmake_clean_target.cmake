file(REMOVE_RECURSE
  "libcdvm_hwassist.a"
)
