# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("x86")
subdirs("uops")
subdirs("memsys")
subdirs("dbt")
subdirs("hwassist")
subdirs("vmm")
subdirs("timing")
subdirs("workload")
subdirs("analysis")
