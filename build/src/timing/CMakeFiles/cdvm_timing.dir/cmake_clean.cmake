file(REMOVE_RECURSE
  "CMakeFiles/cdvm_timing.dir/machine_config.cc.o"
  "CMakeFiles/cdvm_timing.dir/machine_config.cc.o.d"
  "CMakeFiles/cdvm_timing.dir/pipeline.cc.o"
  "CMakeFiles/cdvm_timing.dir/pipeline.cc.o.d"
  "CMakeFiles/cdvm_timing.dir/startup_sim.cc.o"
  "CMakeFiles/cdvm_timing.dir/startup_sim.cc.o.d"
  "libcdvm_timing.a"
  "libcdvm_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
