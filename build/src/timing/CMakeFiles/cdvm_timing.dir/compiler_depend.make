# Empty compiler generated dependencies file for cdvm_timing.
# This may be replaced when dependencies are built.
