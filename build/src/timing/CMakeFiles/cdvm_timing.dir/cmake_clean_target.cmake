file(REMOVE_RECURSE
  "libcdvm_timing.a"
)
