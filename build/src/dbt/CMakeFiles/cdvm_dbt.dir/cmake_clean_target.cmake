file(REMOVE_RECURSE
  "libcdvm_dbt.a"
)
