# Empty compiler generated dependencies file for cdvm_dbt.
# This may be replaced when dependencies are built.
