
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbt/bbt.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/bbt.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/bbt.cc.o.d"
  "/root/repo/src/dbt/codecache.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/codecache.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/codecache.cc.o.d"
  "/root/repo/src/dbt/lookup.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/lookup.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/lookup.cc.o.d"
  "/root/repo/src/dbt/optimize.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/optimize.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/optimize.cc.o.d"
  "/root/repo/src/dbt/sbt.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/sbt.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/sbt.cc.o.d"
  "/root/repo/src/dbt/superblock.cc" "src/dbt/CMakeFiles/cdvm_dbt.dir/superblock.cc.o" "gcc" "src/dbt/CMakeFiles/cdvm_dbt.dir/superblock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/uops/CMakeFiles/cdvm_uops.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/cdvm_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cdvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
