file(REMOVE_RECURSE
  "CMakeFiles/cdvm_dbt.dir/bbt.cc.o"
  "CMakeFiles/cdvm_dbt.dir/bbt.cc.o.d"
  "CMakeFiles/cdvm_dbt.dir/codecache.cc.o"
  "CMakeFiles/cdvm_dbt.dir/codecache.cc.o.d"
  "CMakeFiles/cdvm_dbt.dir/lookup.cc.o"
  "CMakeFiles/cdvm_dbt.dir/lookup.cc.o.d"
  "CMakeFiles/cdvm_dbt.dir/optimize.cc.o"
  "CMakeFiles/cdvm_dbt.dir/optimize.cc.o.d"
  "CMakeFiles/cdvm_dbt.dir/sbt.cc.o"
  "CMakeFiles/cdvm_dbt.dir/sbt.cc.o.d"
  "CMakeFiles/cdvm_dbt.dir/superblock.cc.o"
  "CMakeFiles/cdvm_dbt.dir/superblock.cc.o.d"
  "libcdvm_dbt.a"
  "libcdvm_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdvm_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
