/**
 * @file
 * Figure 2: VM startup performance compared with a conventional x86
 * processor -- software-only translation strategies.
 *
 * Reproduces the four curves of paper Fig. 2: the reference
 * superscalar, the co-designed VM with interpretation followed by SBT,
 * the co-designed VM with BBT followed by SBT (VM.soft), and the VM
 * steady-state line. y = aggregate IPC normalized to the reference
 * superscalar's end-of-run aggregate; x = cycles (log scale in the
 * paper; emitted here as log-spaced samples).
 */

#include "bench_common.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Figure 2: startup performance, software-only VM");
    u64 insns = bench::standardSetup(cli, argc, argv, 120'000'000);

    auto apps = workload::winstone2004(insns);

    auto ref = bench::runMachine(timing::MachineConfig::refSuperscalar(),
                                 apps);
    auto interp = bench::runMachine(timing::MachineConfig::vmInterp(),
                                    apps);
    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto soft_tmpl = bench::runMachine(
        timing::MachineConfig::vmSoftTmpl(), apps);
    auto soft_async = bench::runMachine(
        timing::MachineConfig::vmSoftAsync(), apps);
    auto soft_warm = bench::runMachine(
        timing::MachineConfig::vmSoftWarm(), apps);

    // Normalize so the reference's end-of-run aggregate is 1.0, as in
    // the paper's plots.
    double ref_final = 0.0;
    for (const auto &r : ref)
        ref_final += static_cast<double>(r.totalInsns) * r.cpiRef /
                     static_cast<double>(r.totalCycles);
    ref_final /= static_cast<double>(ref.size());

    auto scale = [&](Series s) {
        for (double &y : s.y)
            y /= ref_final;
        return s;
    };

    std::vector<Series> series;
    series.push_back(
        scale(analysis::averageNormalizedIpc(ref, "Ref: superscalar")));
    series.push_back(scale(
        analysis::averageNormalizedIpc(interp, "VM: Interp & SBT")));
    series.push_back(
        scale(analysis::averageNormalizedIpc(soft, "VM: BBT & SBT")));
    series.push_back(scale(analysis::averageNormalizedIpc(
        soft_tmpl, "VM: template BBT & SBT")));
    series.push_back(scale(analysis::averageNormalizedIpc(
        soft_async, "VM: BBT & async SBT")));
    series.push_back(scale(analysis::averageNormalizedIpc(
        soft_warm, "VM: warm-start BBT & SBT")));

    // The steady-state line (paper: +8% over the reference).
    double gain = 0.0;
    for (const auto &a : apps)
        gain += a.steadyGain;
    gain /= static_cast<double>(apps.size());
    Series steady;
    steady.name = "VM: steady state";
    steady.x = series[0].x;
    steady.y.assign(steady.x.size(), 1.0 + gain);
    series.push_back(steady);

    std::printf("=== Figure 2: VM startup performance vs conventional "
                "superscalar ===\n");
    std::printf("(10 Winstone2004-like apps, %llu M x86 instructions "
                "each, memory-startup scenario)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));
    std::printf("%s\n",
                renderSeries(series, "cycles",
                             "normalized aggregate IPC (x86)")
                    .c_str());

    // Headline checks against the paper.
    double r1m = 0, v1m = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        r1m += analysis::insnsAtCycle(ref[i], 1e6);
        v1m += analysis::insnsAtCycle(soft[i], 1e6);
    }
    std::printf("VM.soft / Ref instructions at the 1M-cycle point: "
                "%.2f   (paper: ~0.25)\n",
                v1m / r1m);

    double ref_done = 0, itp_at = 0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        double c = static_cast<double>(ref[i].totalCycles);
        ref_done += static_cast<double>(ref[i].totalInsns);
        itp_at += analysis::insnsAtCycle(interp[i], c);
    }
    std::printf("Interp&SBT aggregate vs Ref at Ref finish:     "
                "%.2f   (paper: ~0.5)\n",
                itp_at / ref_done);

    // Per-PR perf trajectory: suite aggregates for the CI artifact.
    bench::exportSuiteStartup("bench.fig2.ref", ref);
    bench::exportSuiteStartup("bench.fig2.vm_interp", interp, &ref);
    bench::exportSuiteStartup("bench.fig2.vm_soft", soft, &ref);
    bench::exportSuiteStartup("bench.fig2.vm_soft_tmpl", soft_tmpl,
                              &ref);
    bench::exportSuiteStartup("bench.fig2.vm_soft_async", soft_async,
                              &ref);
    bench::exportSuiteStartup("bench.fig2.vm_soft_warm", soft_warm,
                              &ref);
    dumpObservability();
    return 0;
}
