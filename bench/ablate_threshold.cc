/**
 * @file
 * Ablation: the hot-threshold trade-off of Section 3.2.
 *
 * The paper argues for a "balanced" threshold: too low and SBT
 * overhead explodes (everything lukewarm gets optimized); too high and
 * hotspot coverage -- hence steady-state benefit -- is lost. Sweeps
 * the threshold around the Eq. 2 value (8000) for VM.soft and VM.be.
 */

#include "bench_common.hh"

using namespace cdvm;
using timing::CycleCat;

int
main(int argc, char **argv)
{
    Cli cli("Ablation: hot threshold sweep");
    u64 insns = bench::standardSetup(cli, argc, argv, 100'000'000);

    workload::AppProfile avg = workload::winstoneAverage(insns);

    timing::StartupSim ref_sim(timing::MachineConfig::refSuperscalar(),
                               avg);
    timing::StartupResult ref = ref_sim.run();

    std::printf("=== Hot-threshold ablation (Winstone-average, %llu M "
                "insns) ===\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    for (bool backend : {false, true}) {
        std::printf("--- %s ---\n", backend ? "VM.be" : "VM.soft");
        TextTable t({"threshold", "total cycles (M)", "SBT xlate %",
                     "coverage %", "M_SBT (K insns)",
                     "breakeven (M cyc)"});
        for (u64 thr : {1000ull, 2000ull, 4000ull, 8000ull, 16000ull,
                        64000ull}) {
            timing::MachineConfig m =
                backend ? timing::MachineConfig::vmBe()
                        : timing::MachineConfig::vmSoft();
            m.hotThreshold = thr;
            timing::StartupSim sim(m, avg);
            timing::StartupResult r = sim.run();
            double be = analysis::breakevenCycle(r, ref);
            t.addRow({fmtCount(thr),
                      fmtDouble(static_cast<double>(r.totalCycles) / 1e6,
                                1),
                      fmtDouble(100 * r.catFraction(CycleCat::SbtXlate),
                                1),
                      fmtDouble(100 * r.hotspotCoverage(), 1),
                      fmtDouble(r.staticInsnsSbt / 1000.0, 1),
                      be >= 0 ? fmtDouble(be / 1e6, 1) : "never"});
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Eq. 2 predicts the balanced point at N = 8000 for "
                "Delta_SBT = 1200, p = 1.15.\n");
    return 0;
}
