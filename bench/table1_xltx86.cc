/**
 * @file
 * Table 1 / Fig. 6: the XLTx86 hardware accelerator.
 *
 * Demonstrates the new implementation-ISA instruction and measures the
 * hardware-assisted BBT loop (HAloop) against the software-only BBT:
 * the paper reports 83 cycles per x86 instruction for software BBT and
 * 20 cycles with the backend assist. Includes the XLTx86 latency
 * sensitivity ablation (2 / 4 / 8 cycles).
 */

#include <cstdio>

#include "bench_common.hh"
#include "dbt/costs.hh"
#include "hwassist/haloop.hh"
#include "x86/decoder.hh"
#include "uops/csr.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

namespace
{

/** Average HAloop cycles/instruction over generated programs. */
double
measureHaloop(Cycles xlt_latency, double *uops_per_insn = nullptr)
{
    hwassist::XltUnit xlt(hwassist::XltParams{xlt_latency});
    double cyc = 0, insns = 0, uops = 0;
    for (u64 seed = 1; seed <= 5; ++seed) {
        workload::ProgramParams pp;
        pp.seed = seed;
        workload::Program prog = workload::generateProgram(pp);
        x86::Memory mem;
        prog.loadInto(mem);
        hwassist::HaLoop loop(mem, xlt);
        // Translate straight-line regions spread through the image.
        Addr pc = prog.codeBase;
        Addr cc = 0xe0000000;
        while (pc < prog.codeBase + prog.image.size()) {
            auto r = loop.run(pc, cc, 64);
            cyc += static_cast<double>(r.cycles);
            insns += r.insnsTranslated;
            uops += static_cast<double>(r.uopsExecuted);
            cc += r.bytesEmitted;
            // Skip the CTI / complex instruction the loop stopped at
            // (the VMM's branch handler would chain it in software).
            u8 win[x86::MAX_INSN_LEN + 1];
            mem.fetchWindow(r.stoppedAt, win, sizeof(win));
            unsigned len = x86::insnLength(
                std::span<const u8>(win, sizeof(win)), r.stoppedAt);
            pc = r.stoppedAt + (len ? len : 1);
        }
    }
    if (uops_per_insn)
        *uops_per_insn = insns ? uops / insns : 0;
    return insns ? cyc / insns : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Table 1: XLTx86 backend accelerator");
    cli.parse(argc, argv);

    std::printf("=== Table 1: the XLTx86 instruction ===\n\n");
    std::printf("  XLTX86 Fdst, Fsrc\n");
    std::printf("  Decode an x86 instruction aligned at the beginning "
                "of the 128-bit Fsrc\n");
    std::printf("  register, generate 16b/32b micro-ops into Fdst, "
                "and set CSR:\n");
    std::printf("    CSR[3:0]  x86_ilen      decoded instruction "
                "length (bytes)\n");
    std::printf("    CSR[7:4]  uops_bytes    emitted micro-op "
                "half-words (bytes/2)\n");
    std::printf("    CSR[8]    Flag_cmplx    defer to the software "
                "path\n");
    std::printf("    CSR[9]    Flag_cti      control transfer: branch "
                "handler\n\n");

    std::printf("--- Fig. 6a: the HAloop in the implementation ISA "
                "---\n");
    for (const uops::Uop &u : hwassist::HaLoop::program())
        std::printf("    %s\n", u.toString().c_str());
    std::printf("\n");

    // Demonstrate one XLTx86 execution.
    hwassist::XltUnit demo;
    const u8 add_eax_imm[16] = {0x05, 0x78, 0x56, 0x34, 0x12}; // add eax, 0x12345678
    u8 out[16];
    u32 csr = demo.translate(add_eax_imm, out);
    std::printf("XLTX86 on 'add eax, 0x12345678': x86_ilen=%u "
                "uops_bytes=%u cmplx=%d cti=%d\n",
                uops::csr::ilen(csr), uops::csr::uopBytes(csr),
                uops::csr::isComplex(csr), uops::csr::isCti(csr));
    const u8 ret_insn[16] = {0xc3};
    csr = demo.translate(ret_insn, out);
    std::printf("XLTX86 on 'ret':                 x86_ilen=%u "
                "uops_bytes=%u cmplx=%d cti=%d\n\n",
                uops::csr::ilen(csr), uops::csr::uopBytes(csr),
                uops::csr::isComplex(csr), uops::csr::isCti(csr));

    // --- BBT cost: software vs hardware-assisted ---------------------
    dbt::TranslationCosts sw = dbt::TranslationCosts::software();
    double uops_per_insn = 0;
    double ha4 = measureHaloop(4, &uops_per_insn);

    std::printf("--- BBT translation cost per x86 instruction ---\n");
    TextTable t({"scheme", "cycles/insn", "native instrs/insn",
                 "paper"});
    t.addRow({"software BBT (VM.soft)", fmtDouble(sw.bbtCyclesPerInsn, 0),
              fmtDouble(sw.bbtNativePerInsn, 0), "83 cyc / 105 instrs"});
    t.addRow({"HAloop + XLTx86 (VM.be)", fmtDouble(ha4, 1),
              fmtDouble(uops_per_insn, 1), "20 cyc"});
    std::printf("%s\n", t.render().c_str());
    std::printf("speedup from the backend assist: %.1fx (paper: 83/20 "
                "= 4.2x)\n\n",
                sw.bbtCyclesPerInsn / ha4);

    std::printf("--- ablation: XLTx86 latency sensitivity ---\n");
    TextTable t2({"XLTx86 latency", "HAloop cycles/insn"});
    for (Cycles lat : {2u, 4u, 8u})
        t2.addRow({fmtDouble(static_cast<double>(lat), 0) + " cycles",
                   fmtDouble(measureHaloop(lat), 1)});
    std::printf("%s", t2.render().c_str());
    return 0;
}
