/**
 * @file
 * Ablation: code-cache pressure and retranslation.
 *
 * Section 1.1 warns that a limited code cache causes hotspot
 * retranslations when switched-out tasks resume. This harness runs the
 * *functional* VMM (real translations, real arena management) with
 * shrinking code caches and reports flush / retranslation behaviour.
 */

#include "bench_common.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Ablation: code-cache size sweep (functional VMM)");
    cli.parse(argc, argv);

    std::printf("=== Code-cache pressure ablation (functional VMM, "
                "real translations) ===\n\n");

    workload::ProgramParams pp;
    pp.seed = 2026;
    pp.numFuncs = 6;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 60;
    workload::Program prog = workload::generateProgram(pp);

    TextTable t({"BBT cache", "flushes", "BBT translations",
                 "insns translated", "translation ratio",
                 "chain follows %"});
    for (u64 kb : {256ull, 16ull, 8ull, 4ull, 2ull, 1ull}) {
        x86::Memory mem;
        prog.loadInto(mem);
        x86::CpuState cpu = prog.initialState();
        vmm::VmmConfig vc;
        vc.hotThreshold = 50;
        vc.bbtCacheBytes = kb * 1024;
        vmm::Vmm vm(mem, vc);
        vm.run(cpu, 20'000'000);
        const vmm::VmmStats &st = vm.stats();
        double ratio =
            st.bbtTranslations
                ? static_cast<double>(st.bbtInsnsTranslated) /
                      static_cast<double>(st.totalRetired())
                : 0.0;
        double chain_pct =
            100.0 * static_cast<double>(st.chainFollows) /
            static_cast<double>(st.chainFollows + st.dispatches);
        t.addRow({std::to_string(kb) + " KB",
                  fmtCount(st.bbtCacheFlushes),
                  fmtCount(st.bbtTranslations),
                  fmtCount(st.bbtInsnsTranslated), fmtDouble(ratio, 4),
                  fmtDouble(chain_pct, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shrinking the arena forces flush/retranslate cycles: "
                "the same static code is\nretranslated repeatedly "
                "(rising translation ratio), exactly the multitasking\n"
                "concern of Section 1.1.\n");
    return 0;
}
