/**
 * @file
 * Ablation: code-cache pressure and retranslation, plus the host
 * fast-path cache capacities.
 *
 * Section 1.1 warns that a limited code cache causes hotspot
 * retranslations when switched-out tasks resume. This harness runs the
 * *functional* VMM (real translations, real arena management) with
 * shrinking code caches and reports flush / retranslation behaviour.
 *
 * A second sweep ablates the host-side dispatch fast path: lookaside
 * entries, decode-cache lines, and the flat-table capacity preset,
 * reporting host ns/instruction and hit rates for each point.
 */

#include <chrono>

#include "bench_common.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/decode_cache.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Ablation: code-cache size sweep (functional VMM)");
    cli.parse(argc, argv);

    std::printf("=== Code-cache pressure ablation (functional VMM, "
                "real translations) ===\n\n");

    workload::ProgramParams pp;
    pp.seed = 2026;
    pp.numFuncs = 6;
    pp.blocksPerFunc = 5;
    pp.mainIterations = 60;
    workload::Program prog = workload::generateProgram(pp);

    TextTable t({"BBT cache", "flushes", "BBT translations",
                 "insns translated", "translation ratio",
                 "chain follows %"});
    for (u64 kb : {256ull, 16ull, 8ull, 4ull, 2ull, 1ull}) {
        x86::Memory mem;
        prog.loadInto(mem);
        x86::CpuState cpu = prog.initialState();
        vmm::VmmConfig vc;
        vc.hotThreshold = 50;
        vc.bbtCacheBytes = kb * 1024;
        vmm::Vmm vm(mem, vc);
        vm.run(cpu, 20'000'000);
        const vmm::VmmStats &st = vm.stats();
        double ratio =
            st.bbtTranslations
                ? static_cast<double>(st.bbtInsnsTranslated) /
                      static_cast<double>(st.totalRetired())
                : 0.0;
        double chain_pct =
            100.0 * static_cast<double>(st.chainFollows) /
            static_cast<double>(st.chainFollows + st.dispatches);
        t.addRow({std::to_string(kb) + " KB",
                  fmtCount(st.bbtCacheFlushes),
                  fmtCount(st.bbtTranslations),
                  fmtCount(st.bbtInsnsTranslated), fmtDouble(ratio, 4),
                  fmtDouble(chain_pct, 1)});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Shrinking the arena forces flush/retranslate cycles: "
                "the same static code is\nretranslated repeatedly "
                "(rising translation ratio), exactly the multitasking\n"
                "concern of Section 1.1.\n");

    // --- host fast-path cache capacity sweep --------------------------
    // Ablate the dispatch lookaside, the decode cache, and the
    // flat-table preset on the cold-heavy (permanent startup
    // transient) workload where the host fast path matters most.
    std::printf("\n=== Host fast-path capacity ablation (vm.interp, "
                "cold-heavy) ===\n\n");
    struct Sweep
    {
        const char *label;
        bool fast;
        std::size_t lookaside;
        std::size_t decodeLines;
        std::size_t reserve;
    };
    const Sweep sweeps[] = {
        {"legacy (two maps)", false, 0, 0, 0},
        {"flat, no caches", true, 0, 0, 64},
        {"flat + ls 64", true, 64, 0, 64},
        {"flat + ls 256", true, 256, 0, 4096},
        {"flat + dc 1k", true, 0, 1024, 4096},
        {"flat + ls 256 + dc 1k", true, 256, 1024, 4096},
        {"flat + ls 256 + dc 8k", true, 256, 8192, 4096},
        {"flat + ls 1k + dc 8k", true, 1024, 8192, 16384},
    };
    TextTable ht({"variant", "host ns/insn", "lookaside hit %",
                  "decode hit %", "rehashes"});
    for (const Sweep &s : sweeps) {
        x86::Memory mem;
        prog.loadInto(mem);
        x86::CpuState cpu = prog.initialState();
        vmm::VmmConfig vc = engine::EngineConfig::vmInterp();
        vc.interpHotThreshold = u64{1} << 40; // stay cold forever
        vc.fastDispatch = s.fast;
        vc.lookasideEntries = s.lookaside;
        vc.decodeCacheEntries = s.decodeLines;
        if (s.reserve)
            vc.lookupReserve = s.reserve;
        vmm::Vmm vm(mem, vc);
        const auto t0 = std::chrono::steady_clock::now();
        vm.run(cpu, 4'000'000);
        const std::chrono::duration<double, std::nano> dt =
            std::chrono::steady_clock::now() - t0;
        const u64 retired = vm.stats().totalRetired();
        const dbt::TranslationMap &map = vm.translations();
        const u64 ls = map.lookasideHits() + map.lookasideMisses();
        const x86::DecodeCache *dc = vm.coldExecutor().decodeCache();
        ht.addRow(
            {s.label,
             fmtDouble(retired ? dt.count() /
                                     static_cast<double>(retired)
                               : 0.0,
                       1),
             ls ? fmtDouble(100.0 *
                                static_cast<double>(
                                    map.lookasideHits()) /
                                static_cast<double>(ls),
                            1)
                : "-",
             dc ? fmtDouble(100.0 * dc->hitRate(), 1) : "-",
             fmtCount(map.rehashes())});
    }
    std::printf("%s\n", ht.render().c_str());
    std::printf("The decode cache carries the cold-heavy win; the "
                "lookaside trims the remaining\nper-block dispatch "
                "probe, and the capacity preset removes rehash storms "
                "during the\nBBT-dominated startup transient.\n");
    return 0;
}
