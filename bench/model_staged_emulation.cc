/**
 * @file
 * Section 3.2: the analytical model of staged emulation.
 *
 * Reproduces the paper's model numbers:
 *   Eq. 2:  N = Delta_SBT / (p - 1) = 1200 / 0.15 = 8000;
 *   Eq. 1:  BBT component 105 * 150K = 15.75 M native instructions,
 *           SBT component 1674 * 3K  =  5.02 M native instructions;
 * and cross-checks them against the measured synthetic workload
 * (M_BBT / M_SBT from the trace generator) and the measured BBT code
 * expansion of the real translators.
 */

#include "analysis/freq_profile.hh"
#include "analysis/model.hh"
#include "bench_common.hh"
#include "dbt/bbt.hh"
#include "uops/encoding.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Section 3.2 analytical model of staged emulation");
    u64 insns = bench::standardSetup(cli, argc, argv, 100'000'000);

    std::printf("=== Eq. 2: hotspot threshold ===\n");
    std::printf("  N * t_b = (N + Delta_SBT) * (t_b / p)   =>   "
                "N = Delta_SBT / (p - 1)\n");
    for (double p : {1.15, 1.20}) {
        std::printf("  Delta_SBT = 1200 x86 instrs, p = %.2f  =>  N = "
                    "%.0f\n",
                    p, analysis::hotThreshold(1200.0, p));
    }
    std::printf("  chosen hot threshold: %.0f (paper: 8000)\n\n",
                analysis::paperHotThreshold());

    std::printf("=== Eq. 1: translation overhead with the paper's "
                "constants ===\n");
    analysis::Eq1Breakdown paper = analysis::paperEq1();
    std::printf("  BBT: 105 native instrs x 150K static = %.2f M "
                "(paper: 15.75 M)\n",
                paper.bbtComponent / 1e6);
    std::printf("  SBT: 1674 native instrs x 3K static  = %.2f M "
                "(paper: 5.02 M)\n",
                paper.sbtComponent / 1e6);
    std::printf("  => BBT is the dominant overhead (%.1fx the SBT "
                "component)\n\n",
                paper.bbtComponent / paper.sbtComponent);

    std::printf("=== Eq. 1 with the synthetic workload's measured M "
                "values ===\n");
    workload::AppProfile avg = workload::winstoneAverage(insns);
    analysis::FreqProfile prof = analysis::profileTrace(avg.trace);
    analysis::Eq1Breakdown meas = analysis::paperEq1(
        static_cast<double>(prof.staticInsnsTouched),
        static_cast<double>(prof.staticAtOrAbove(8000)));
    std::printf("  measured M_BBT = %.0f K, M_SBT = %.1f K (at %llu M "
                "insns)\n",
                prof.staticInsnsTouched / 1000.0,
                prof.staticAtOrAbove(8000) / 1000.0,
                static_cast<unsigned long long>(insns / 1'000'000));
    std::printf("  BBT component: %.2f M native instructions\n",
                meas.bbtComponent / 1e6);
    std::printf("  SBT component: %.2f M native instructions\n\n",
                meas.sbtComponent / 1e6);

    std::printf("=== Measured translator properties (real BBT on "
                "generated x86 code) ===\n");
    double x86_bytes = 0, cc_bytes = 0, uops = 0, xinsns = 0;
    for (u64 seed = 1; seed <= 8; ++seed) {
        workload::ProgramParams pp;
        pp.seed = seed;
        workload::Program prog = workload::generateProgram(pp);
        x86::Memory mem;
        prog.loadInto(mem);
        dbt::BasicBlockTranslator bbt(mem);
        Addr pc = prog.codeBase;
        while (pc < prog.codeBase + prog.image.size()) {
            auto t = bbt.translate(pc);
            if (!t) {
                ++pc;
                continue;
            }
            x86_bytes += t->x86Bytes;
            cc_bytes += t->codeBytes;
            uops += static_cast<double>(t->uops.size());
            xinsns += t->numX86Insns;
            pc = t->fallthroughPc;
        }
    }
    std::printf("  micro-ops per x86 instruction:   %.2f\n",
                uops / xinsns);
    std::printf("  code expansion (cc/x86 bytes):   %.2f  (startup "
                "simulator uses 1.6)\n",
                cc_bytes / x86_bytes);
    std::printf("  encoded micro-op bytes per insn: %.2f\n",
                cc_bytes / xinsns);
    return 0;
}
