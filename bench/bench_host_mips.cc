/**
 * @file
 * Host-side guest-MIPS benchmark: how fast does the *simulator itself*
 * emulate, per engine configuration, and how much of that is bought by
 * the dispatch fast path (flat translation table + dispatch lookaside
 * + decode cache) versus the legacy two-map dispatch baseline?
 *
 * This is a wall-clock benchmark of the host reproduction, not a model
 * of the paper's machine: retire streams are bit-identical between the
 * fast and legacy modes, so the ratio isolates pure host dispatch and
 * decode overhead (Fig. 1b "Translation Lookup in Code Cache" as a
 * host cost).
 *
 * The gate workload is the paper's startup worst case made permanent:
 * vm.interp with the hot threshold pushed out of reach, so every block
 * entry pays a dispatch lookup and every instruction a fetch+decode.
 * CI asserts the fast path clears GATE_MIN_SPEEDUP there and records
 * the whole matrix in BENCH_host.json.
 *
 *   $ ./build/bench/bench_host_mips --json=BENCH_host.json
 *   $ ./build/bench/bench_host_mips --legacy-lookup   # baseline only
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "dbt/bbt.hh"
#include "dbt/templates.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/decode_cache.hh"

using namespace cdvm;

namespace
{

/** The fast path must beat the legacy dispatch by at least this. */
constexpr double GATE_MIN_SPEEDUP = 1.5;

/** The template tier must translate this much faster per insn. */
constexpr double TMPL_GATE_MIN_SPEEDUP = 2.0;

struct RunStat
{
    double seconds = 0.0;
    u64 retired = 0;
    double mips = 0.0;
    double lookasideHitRate = 0.0;
    double decodeHitRate = 0.0;
};

workload::Program
mixProgram()
{
    // The standard mix: calls, loops, indirect branches, byte/16-bit
    // traffic and guarded divides, the same generator the differential
    // tests sweep.
    workload::ProgramParams pp;
    pp.seed = 20260807;
    pp.numFuncs = 8;
    pp.blocksPerFunc = 5;
    pp.insnsPerBlock = 8;
    pp.mainIterations = 1000000; // effectively: run until the budget
    return workload::generateProgram(pp);
}

/** Emulate `insns` guest instructions under cfg; time the host. */
RunStat
measure(vmm::VmmConfig cfg, const workload::Program &prog, u64 insns)
{
    x86::Memory mem;
    prog.loadInto(mem);
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();

    const auto t0 = std::chrono::steady_clock::now();
    u64 done = 0;
    while (done < insns) {
        x86::Exit e = vm.run(cpu, insns - done);
        done = vm.stats().totalRetired();
        if (e == x86::Exit::Halted) {
            // Restart the program; translations (if any) stay warm,
            // and nothing reloads the image so the decode cache keeps
            // its lines too.
            cpu = prog.initialState();
        } else if (e != x86::Exit::None) {
            std::fprintf(stderr, "unexpected exit %d under %s\n",
                         static_cast<int>(e), cfg.name.c_str());
            std::exit(1);
        }
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    RunStat r;
    r.seconds = dt.count();
    r.retired = done;
    r.mips = r.seconds > 0.0
                 ? static_cast<double>(done) / r.seconds / 1e6
                 : 0.0;
    const dbt::TranslationMap &map = vm.translations();
    const u64 ls = map.lookasideHits() + map.lookasideMisses();
    r.lookasideHitRate =
        ls ? static_cast<double>(map.lookasideHits()) /
                 static_cast<double>(ls)
           : 0.0;
    if (const x86::DecodeCache *dc = vm.coldExecutor().decodeCache())
        r.decodeHitRate = dc->hitRate();
    return r;
}

/**
 * Basic-block entry PCs of the mix, in first-touch order: run the
 * program once under BBT-only emulation and read the map back.
 */
std::vector<Addr>
blockEntryPcs(const workload::Program &prog)
{
    x86::Memory mem;
    prog.loadInto(mem);
    vmm::VmmConfig cfg = engine::EngineConfig::vmSoft();
    cfg.enableSbt = false;
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();
    vm.run(cpu, 2'000'000);
    std::vector<Addr> pcs;
    vm.translations().forEach([&](const dbt::Translation &t) {
        if (t.kind == dbt::TransKind::BasicBlock)
            pcs.push_back(t.entryPc);
    });
    return pcs;
}

/**
 * Raw host translation cost of one backend over an entry-pc list.
 * The sweep is timed in `rounds` independent rounds of `reps` passes
 * each and the *minimum* per-instruction time is reported: scheduler
 * and frequency interference only ever add time, so the min of
 * several rounds estimates the translation cost itself rather than
 * the noise floor of the machine.
 */
template <typename Translator>
double
xlateNsPerInsn(Translator &tx, const std::vector<Addr> &pcs,
               unsigned reps, unsigned rounds = 1,
               u64 *insns_out = nullptr)
{
    double best = 0.0;
    u64 total_insns = 0;
    for (unsigned round = 0; round < rounds; ++round) {
        u64 insns = 0;
        const auto t0 = std::chrono::steady_clock::now();
        for (unsigned rep = 0; rep < reps; ++rep)
            for (Addr pc : pcs)
                if (auto t = tx.translate(pc))
                    insns += t->numX86Insns;
        const std::chrono::duration<double, std::nano> dt =
            std::chrono::steady_clock::now() - t0;
        total_insns += insns;
        if (insns) {
            double ns = dt.count() / static_cast<double>(insns);
            if (best == 0.0 || ns < best)
                best = ns;
        }
    }
    if (insns_out)
        *insns_out = total_insns;
    return best;
}

void
jsonRun(std::FILE *f, const char *key, const RunStat &r)
{
    std::fprintf(f,
                 "    \"%s\": {\"seconds\": %.6f, \"retired\": %llu, "
                 "\"mips\": %.3f, \"lookaside_hit_rate\": %.4f, "
                 "\"decode_hit_rate\": %.4f}",
                 key, r.seconds,
                 static_cast<unsigned long long>(r.retired), r.mips,
                 r.lookasideHitRate, r.decodeHitRate);
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Host guest-MIPS per engine configuration, fast dispatch "
            "path vs the legacy map-based baseline; writes a JSON "
            "report for the CI perf-smoke gate.");
    cli.flag("json", "BENCH_host.json", "output report path");
    cli.flag("legacy-lookup", "0",
             "1: measure only the legacy map-based dispatch baseline");
    cli.flag("ablate-tmpl", "0",
             "1: sweep template rule coverage 0/25/50/75/100% and "
             "record the translation-cost curve");
    u64 insns = bench::standardSetup(cli, argc, argv, 3'000'000);
    const bool legacy_only = cli.on("legacy-lookup");

    workload::Program prog = mixProgram();

    // The measured matrix. "coldheavy" is the gate: vm.interp with
    // hotspot optimization pushed out of reach, i.e. the startup
    // transient made permanent (every step decodes, every block entry
    // dispatches).
    struct Point
    {
        std::string key;
        vmm::VmmConfig cfg;
        bool gate;
    };
    std::vector<Point> points;
    {
        vmm::VmmConfig cold = engine::EngineConfig::vmInterp();
        cold.name = "vm.interp.coldheavy";
        cold.interpHotThreshold = u64{1} << 40;
        points.push_back({"coldheavy", cold, true});
        points.push_back(
            {"vm.interp", engine::EngineConfig::vmInterp(), false});
        points.push_back(
            {"vm.soft", engine::EngineConfig::vmSoft(), false});
        points.push_back({"vm.soft.tmpl",
                          engine::EngineConfig::vmSoftTmpl(), false});
        points.push_back({"vm.be", engine::EngineConfig::vmBe(),
                          false});
        points.push_back({"vm.soft.async",
                          engine::EngineConfig::vmSoftAsync(), false});
    }

    std::FILE *f = std::fopen(cli.str("json").c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n",
                     cli.str("json").c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"instructions\": %llu,\n  \"configs\": {\n",
                 static_cast<unsigned long long>(insns));

    StatRegistry &reg = StatRegistry::global();
    double gate_speedup = 0.0;
    bool first = true;
    for (const Point &p : points) {
        vmm::VmmConfig fast = p.cfg;
        fast.fastDispatch = true;
        vmm::VmmConfig slow = p.cfg;
        slow.fastDispatch = false;

        RunStat rf;
        if (!legacy_only) {
            rf = measure(fast, prog, insns);
            std::printf("[%-16s] fast:   %8.2f MIPS  (lookaside "
                        "%.1f%%, decode cache %.1f%%)\n",
                        p.key.c_str(), rf.mips,
                        100.0 * rf.lookasideHitRate,
                        100.0 * rf.decodeHitRate);
        }
        RunStat rl = measure(slow, prog, insns);
        std::printf("[%-16s] legacy: %8.2f MIPS\n", p.key.c_str(),
                    rl.mips);

        const double speedup =
            (!legacy_only && rl.mips > 0.0) ? rf.mips / rl.mips : 0.0;
        if (!legacy_only)
            std::printf("[%-16s] speedup: %.2fx\n", p.key.c_str(),
                        speedup);
        if (p.gate)
            gate_speedup = speedup;

        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(f, "  \"%s\": {\n", p.key.c_str());
        if (!legacy_only) {
            jsonRun(f, "fast", rf);
            std::fprintf(f, ",\n");
        }
        jsonRun(f, "legacy", rl);
        std::fprintf(f, ",\n    \"speedup\": %.4f\n  }", speedup);

        reg.set("bench.host_mips." + p.key + ".fast", rf.mips,
                "host guest-MIPS, dispatch fast path");
        reg.set("bench.host_mips." + p.key + ".legacy", rl.mips,
                "host guest-MIPS, legacy map-based dispatch");
        reg.set("bench.host_mips." + p.key + ".speedup", speedup,
                "fast-path speedup over the legacy baseline");
    }

    std::fprintf(f, "\n  },\n");

    // --- raw host translation cost: template tier vs uop-lowering BBT
    // (the measurement behind engine/params BBT_TMPL_XLATE).
    const std::vector<Addr> pcs = blockEntryPcs(prog);
    const unsigned max_block =
        engine::EngineConfig::vmSoft().maxBlockInsns;
    x86::Memory xmem;
    prog.loadInto(xmem);
    const unsigned reps = 80;
    const unsigned rounds = 7;

    dbt::BasicBlockTranslator sw_tx(xmem, max_block);
    dbt::TemplateTranslator tm_tx(xmem, max_block, 100);
    // Warm both paths once (rule-table build, allocator steady state).
    (void)xlateNsPerInsn(sw_tx, pcs, 2);
    (void)xlateNsPerInsn(tm_tx, pcs, 2);
    const double sw_ns = xlateNsPerInsn(sw_tx, pcs, reps, rounds);
    u64 tmpl_insns = 0;
    const double tm_ns =
        xlateNsPerInsn(tm_tx, pcs, reps, rounds, &tmpl_insns);
    const double tmpl_speedup = tm_ns > 0.0 ? sw_ns / tm_ns : 0.0;
    const u64 covered =
        tm_tx.templatedInsns() + tm_tx.fallbackInsns();
    const double coverage =
        covered ? 100.0 * static_cast<double>(tm_tx.templatedInsns()) /
                      static_cast<double>(covered)
                : 0.0;
    std::printf("\n[xlate           ] software BBT: %6.1f ns/insn, "
                "template BBT: %6.1f ns/insn  (%.2fx, rule coverage "
                "%.1f%%)\n",
                sw_ns, tm_ns, tmpl_speedup, coverage);
    std::fprintf(f,
                 "  \"tmpl_xlate\": {\"sw_ns_per_insn\": %.2f, "
                 "\"tmpl_ns_per_insn\": %.2f, \"speedup\": %.4f, "
                 "\"coverage_pct\": %.2f, \"insns\": %llu},\n",
                 sw_ns, tm_ns, tmpl_speedup, coverage,
                 static_cast<unsigned long long>(tmpl_insns));
    reg.set("bench.host_mips.xlate.sw_ns_per_insn", sw_ns,
            "uop-lowering BBT host translation cost");
    reg.set("bench.host_mips.xlate.tmpl_ns_per_insn", tm_ns,
            "template BBT host translation cost");
    reg.set("bench.host_mips.xlate.tmpl_speedup", tmpl_speedup,
            "template over uop-lowering translation speedup");

    // --- optional coverage ablation: how the translation cost decays
    // as the rule table is artificially truncated.
    if (cli.on("ablate-tmpl")) {
        std::fprintf(f, "  \"ablate_tmpl\": [\n");
        const unsigned sweeps[] = {0, 25, 50, 75, 100};
        for (std::size_t i = 0; i < std::size(sweeps); ++i) {
            dbt::TemplateTranslator ab(xmem, max_block, sweeps[i]);
            (void)xlateNsPerInsn(ab, pcs, 2);
            const double ns = xlateNsPerInsn(ab, pcs, reps / 4, 3);
            const u64 tot = ab.templatedInsns() + ab.fallbackInsns();
            const double cov =
                tot ? 100.0 *
                          static_cast<double>(ab.templatedInsns()) /
                          static_cast<double>(tot)
                    : 0.0;
            std::printf("[ablate-tmpl %3u%%] %6.1f ns/insn  "
                        "(covered %.1f%% of insns)\n",
                        sweeps[i], ns, cov);
            std::fprintf(f,
                         "    {\"rules_pct\": %u, \"ns_per_insn\": "
                         "%.2f, \"covered_insn_pct\": %.2f}%s\n",
                         sweeps[i], ns, cov,
                         i + 1 < std::size(sweeps) ? "," : "");
        }
        std::fprintf(f, "  ],\n");
    }

    std::fprintf(f,
                 "  \"tmpl_gate\": {\"speedup\": %.4f, \"threshold\": "
                 "%.2f},\n",
                 tmpl_speedup, TMPL_GATE_MIN_SPEEDUP);
    std::fprintf(f,
                 "  \"gate\": {\"workload\": \"coldheavy\", "
                 "\"speedup\": %.4f, \"threshold\": %.2f}\n}\n",
                 gate_speedup, GATE_MIN_SPEEDUP);
    std::fclose(f);
    dumpObservability();

    if (tmpl_speedup < TMPL_GATE_MIN_SPEEDUP) {
        std::fprintf(stderr,
                     "FAIL: template tier %.2fx < %.2fx over the "
                     "uop-lowering BBT per translated insn\n",
                     tmpl_speedup, TMPL_GATE_MIN_SPEEDUP);
        return 1;
    }
    std::printf("template-xlate gate: %.2fx >= %.2fx  OK\n",
                tmpl_speedup, TMPL_GATE_MIN_SPEEDUP);

    if (legacy_only)
        return 0;
    if (gate_speedup < GATE_MIN_SPEEDUP) {
        std::fprintf(stderr,
                     "FAIL: fast path %.2fx < %.2fx over legacy "
                     "dispatch on the cold-heavy workload\n",
                     gate_speedup, GATE_MIN_SPEEDUP);
        return 1;
    }
    std::printf("\ncold-heavy gate: %.2fx >= %.2fx  OK\n",
                gate_speedup, GATE_MIN_SPEEDUP);
    return 0;
}
