/**
 * @file
 * Section 2: steady-state IPC of macro-op execution.
 *
 * Builds synthetic programs, runs the full functional VM until
 * superblocks form, then replays the hottest optimized superblocks
 * through the Table-2 out-of-order pipeline model -- once as fused
 * macro-op code and once with the fusion bits stripped (the
 * conventional-superscalar baseline executing plain micro-ops).
 *
 * Paper reference points: +8% IPC for the Winstone benchmarks with
 * 49% of dynamic micro-ops fused; +18% for SPEC2000 integer with 57%
 * fused (the gap caused by fusion rate and working-set effects).
 */

#include <algorithm>

#include "bench_common.hh"
#include "timing/pipeline.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

namespace
{

struct Mix
{
    const char *name;
    workload::ProgramParams params;
    double paperGain;
    double paperFusedPct;
};

void
runMix(const Mix &mix)
{
    double fused_cycles = 0, base_cycles = 0;
    double uops = 0, pairs = 0, insns = 0;
    u64 weight_total = 0;

    for (u64 seed = 1; seed <= 6; ++seed) {
        workload::ProgramParams pp = mix.params;
        pp.seed = seed;
        workload::Program prog = workload::generateProgram(pp);
        x86::Memory mem;
        prog.loadInto(mem);
        x86::CpuState cpu = prog.initialState();
        vmm::VmmConfig vc;
        vc.hotThreshold = 25; // small runs: force hotspots to form
        vmm::Vmm vm(mem, vc);
        vm.run(cpu, 3'000'000);

        // Collect superblocks, weight by observed execution count.
        std::vector<const dbt::Translation *> sbs;
        vm.translations().forEach([&](const dbt::Translation &t) {
            if (t.kind == dbt::TransKind::Superblock &&
                t.execCount > 10 && !t.uops.empty()) {
                sbs.push_back(&t);
            }
        });
        std::sort(sbs.begin(), sbs.end(),
                  [](const dbt::Translation *a,
                     const dbt::Translation *b) {
                      return a->execCount > b->execCount;
                  });
        if (sbs.size() > 8)
            sbs.resize(8);

        timing::PipelineSim sim;
        for (const dbt::Translation *t : sbs) {
            unsigned iters = static_cast<unsigned>(
                std::min<u64>(t->execCount, 3000));
            timing::PipelineResult f = sim.run(t->uops, iters);
            timing::PipelineResult b =
                sim.run(timing::unfused(t->uops), iters);
            fused_cycles += static_cast<double>(f.cycles);
            base_cycles += static_cast<double>(b.cycles);
            uops += static_cast<double>(f.uops);
            pairs += static_cast<double>(f.fusedPairs);
            insns += static_cast<double>(f.x86Insns);
            weight_total += iters;
        }
    }

    double speedup = fused_cycles > 0 ? base_cycles / fused_cycles : 1.0;
    std::printf("%-16s fused uops: %4.1f%%   IPC speedup from macro-op "
                "execution: %+.1f%%\n",
                mix.name, 100.0 * 2.0 * pairs / uops,
                100.0 * (speedup - 1.0));
    std::printf("%-16s (paper: %+.0f%% IPC with %.0f%% of micro-ops "
                "fused)\n",
                "", 100.0 * mix.paperGain, mix.paperFusedPct);
    (void)insns;
    (void)weight_total;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Section 2: steady-state IPC of macro-op execution");
    cli.parse(argc, argv);

    std::printf("=== Steady-state macro-op execution (Table 2 OoO "
                "pipeline model) ===\n\n");

    Mix winstone{"Winstone-like", {}, 0.08, 49.0};
    winstone.params.numFuncs = 5;
    winstone.params.blocksPerFunc = 4;
    winstone.params.insnsPerBlock = 10;
    winstone.params.mainIterations = 50;

    Mix spec{"SPECint-like", {}, 0.18, 57.0};
    spec.params.numFuncs = 3;
    spec.params.blocksPerFunc = 2;
    spec.params.insnsPerBlock = 6; // tighter, ALU-denser loops
    spec.params.mainIterations = 120;
    spec.params.withDiv = false;

    runMix(winstone);
    std::printf("\n");
    runMix(spec);

    std::printf("\nThe co-designed VM's steady-state advantage comes "
                "from dependent-pair fusion:\nfused pairs occupy one "
                "slot in every pipeline structure and execute on a\n"
                "collapsed ALU, raising effective width and shortening "
                "dependence chains.\n");
    return 0;
}
