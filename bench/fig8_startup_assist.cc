/**
 * @file
 * Figure 8: startup performance comparison with hardware assists.
 *
 * Same axes as Fig. 2, adding the hardware-assisted machines:
 * Ref superscalar, VM.soft, VM.be (backend XLTx86), VM.fe (dual-mode
 * frontend decoders), and the VM steady-state line.
 */

#include "bench_common.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Figure 8: startup performance with hardware assists");
    u64 insns = bench::standardSetup(cli, argc, argv, 120'000'000);

    auto apps = workload::winstone2004(insns);

    auto ref = bench::runMachine(timing::MachineConfig::refSuperscalar(),
                                 apps);
    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto soft_tmpl = bench::runMachine(
        timing::MachineConfig::vmSoftTmpl(), apps);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto be_async = bench::runMachine(timing::MachineConfig::vmBeAsync(),
                                      apps);
    auto be_warm = bench::runMachine(timing::MachineConfig::vmBeWarm(),
                                     apps);
    auto fe = bench::runMachine(timing::MachineConfig::vmFe(), apps);

    double ref_final = 0.0;
    for (const auto &r : ref)
        ref_final += static_cast<double>(r.totalInsns) * r.cpiRef /
                     static_cast<double>(r.totalCycles);
    ref_final /= static_cast<double>(ref.size());

    auto scale = [&](Series s) {
        for (double &y : s.y)
            y /= ref_final;
        return s;
    };

    std::vector<Series> series;
    series.push_back(
        scale(analysis::averageNormalizedIpc(ref, "Ref: superscalar")));
    series.push_back(
        scale(analysis::averageNormalizedIpc(soft, "VM.soft")));
    series.push_back(scale(
        analysis::averageNormalizedIpc(soft_tmpl, "VM.soft.tmpl")));
    series.push_back(scale(analysis::averageNormalizedIpc(be, "VM.be")));
    series.push_back(scale(
        analysis::averageNormalizedIpc(be_async, "VM.be.async")));
    series.push_back(scale(
        analysis::averageNormalizedIpc(be_warm, "VM.be.warm")));
    series.push_back(scale(analysis::averageNormalizedIpc(fe, "VM.fe")));

    double gain = 0.0;
    for (const auto &a : apps)
        gain += a.steadyGain;
    gain /= static_cast<double>(apps.size());
    Series steady;
    steady.name = "VM.steady-state";
    steady.x = series[0].x;
    steady.y.assign(steady.x.size(), 1.0 + gain);
    series.push_back(steady);

    std::printf("=== Figure 8: startup performance comparison ===\n");
    std::printf("(10 Winstone2004-like apps, %llu M x86 instructions "
                "each)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));
    std::printf("%s\n",
                renderSeries(series, "cycles",
                             "normalized aggregate IPC (x86)")
                    .c_str());

    // Suite-average breakeven and half-gain summaries.
    auto summarize = [&](const char *name,
                         const std::vector<timing::StartupResult> &vm) {
        double be_sum = 0, hg_sum = 0;
        int be_n = 0, hg_n = 0, never = 0;
        for (std::size_t i = 0; i < vm.size(); ++i) {
            double b = analysis::breakevenCycle(vm[i], ref[i]);
            if (b >= 0) {
                be_sum += b;
                ++be_n;
            } else {
                ++never;
            }
            double h = analysis::halfGainCycle(vm[i],
                                               vm[i].steadyGain);
            if (h >= 0) {
                hg_sum += h;
                ++hg_n;
            }
        }
        std::printf("%-8s breakeven: %s cycles (%d/%zu apps broke "
                    "even)\n",
                    name,
                    be_n ? fmtCount(static_cast<unsigned long long>(
                                be_sum / be_n))
                               .c_str()
                         : "n/a",
                    be_n, vm.size());
    };
    std::printf("--- suite summaries ---\n");
    summarize("VM.soft", soft);
    summarize("VM.soft.tmpl", soft_tmpl);
    summarize("VM.be", be);
    summarize("VM.be.async", be_async);
    summarize("VM.be.warm", be_warm);
    summarize("VM.fe", fe);
    std::printf("(paper: VM.fe ~zero startup overhead; VM.be breakeven "
                "~10M cycles;\n VM.soft breakeven beyond 200M cycles)\n");

    // Per-PR perf trajectory: suite aggregates for the CI artifact.
    bench::exportSuiteStartup("bench.fig8.ref", ref);
    bench::exportSuiteStartup("bench.fig8.vm_soft", soft, &ref);
    bench::exportSuiteStartup("bench.fig8.vm_soft_tmpl", soft_tmpl,
                              &ref);
    bench::exportSuiteStartup("bench.fig8.vm_be", be, &ref);
    bench::exportSuiteStartup("bench.fig8.vm_be_async", be_async, &ref);
    bench::exportSuiteStartup("bench.fig8.vm_be_warm", be_warm, &ref);
    bench::exportSuiteStartup("bench.fig8.vm_fe", fe, &ref);
    dumpObservability();
    return 0;
}
