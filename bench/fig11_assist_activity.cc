/**
 * @file
 * Figure 11: activity of the hardware x86 decode logic over time.
 *
 * Cumulative percentage of cycles the x86 decoding hardware must be
 * powered on, for the four machine configurations:
 *   - Ref superscalar: decoders always on (100%);
 *   - VM.soft: no hardware x86 decoders (0%);
 *   - VM.be: one XLTx86 decoder, busy only during the HAloop -- its
 *     activity decays quickly after the first ~10K cycles;
 *   - VM.fe: dual-mode frontend decoders on while not executing
 *     optimized hotspot code -- decays later than VM.be.
 */

#include "bench_common.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Figure 11: hardware-assist decode activity");
    u64 insns = bench::standardSetup(cli, argc, argv, 120'000'000);

    auto apps = workload::winstone2004(insns);

    auto ref = bench::runMachine(timing::MachineConfig::refSuperscalar(),
                                 apps);
    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto fe = bench::runMachine(timing::MachineConfig::vmFe(), apps);

    std::vector<Series> series;
    series.push_back(
        analysis::averageDecodeActivity(ref, "Superscalar"));
    series.push_back(analysis::averageDecodeActivity(soft, "VM.soft"));
    series.push_back(analysis::averageDecodeActivity(be, "VM.be"));
    series.push_back(analysis::averageDecodeActivity(fe, "VM.fe"));

    std::printf("=== Figure 11: activity of HW assists (x86 decode "
                "logic) ===\n");
    std::printf("(cumulative %% of cycles the decode logic is powered "
                "on; %llu M insns/app)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));
    std::printf("%s\n",
                renderSeries(series, "cycles", "decode activity (%)")
                    .c_str());

    auto final_act = [](const std::vector<timing::StartupResult> &v) {
        double a = 0;
        for (const auto &r : v)
            a += 100.0 * r.decodeActiveCycles /
                 static_cast<double>(r.totalCycles);
        return a / static_cast<double>(v.size());
    };
    std::printf("end-of-run activity: Superscalar %.1f%%  VM.soft "
                "%.1f%%  VM.be %.2f%%  VM.fe %.1f%%\n",
                final_act(ref), final_act(soft), final_act(be),
                final_act(fe));
    std::printf("(paper: superscalar always on; VM.be negligible after "
                "100M cycles;\n VM.fe decays too, but later than "
                "VM.be)\n");
    return 0;
}
