/**
 * @file
 * Figure 9: breakeven points for individual traces.
 *
 * For each of the ten applications: the number of cycles VM.soft,
 * VM.be and VM.fe need to first catch back up with the reference
 * superscalar ("n/a (>window)" when the scheme does not break even
 * within the simulated trace, as the paper's Project bars show).
 */

#include "bench_common.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Figure 9: per-application breakeven points");
    u64 insns = bench::standardSetup(cli, argc, argv, 250'000'000);

    auto apps = workload::winstone2004(insns);

    auto ref = bench::runMachine(timing::MachineConfig::refSuperscalar(),
                                 apps);
    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto fe = bench::runMachine(timing::MachineConfig::vmFe(), apps);

    auto fmt = [](double cycles) -> std::string {
        if (cycles < 0)
            return "n/a (>window)";
        return fmtDouble(cycles / 1e6, 1) + " M";
    };

    std::printf("=== Figure 9: breakeven points for individual traces "
                "===\n");
    std::printf("(%llu M x86 instructions per app; cycles to first "
                "catch up with Ref)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    TextTable t({"app", "VM.soft", "VM.be", "VM.fe", "steady gain"});
    for (std::size_t i = 0; i < apps.size(); ++i) {
        t.addRow({apps[i].name,
                  fmt(analysis::breakevenCycle(soft[i], ref[i])),
                  fmt(analysis::breakevenCycle(be[i], ref[i])),
                  fmt(analysis::breakevenCycle(fe[i], ref[i])),
                  fmtDouble(100.0 * apps[i].steadyGain, 0) + "%"});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper shape: assists cut breakeven by an order of "
                "magnitude; the large-\n"
                "footprint apps (Access, Excel) are the VM.soft "
                "outliers; Project (only 3%%\n"
                "steady gain) takes the longest to break even for "
                "every scheme.\n");
    return 0;
}
