/**
 * @file
 * Warm-start benchmark: cold vs warm startup of the software-only VM.
 *
 * The persistent translation repository (dbt/persist) lets a VM start
 * with every basic-block translation already installed, paying a small
 * up-front load cost instead of Delta_BBT on every first touch. This
 * harness quantifies the win on the startup metric the paper uses --
 * cycles to reach the first N instructions -- by running VM.soft and
 * VM.be cold and warm over the Winstone-like suite.
 *
 * The binary self-gates: it exits non-zero unless a warm start is
 * strictly faster to the 1M-instruction milestone than the matching
 * cold start (CI asserts on this and folds the deltas into
 * BENCH_startup.json).
 *
 * A second, host-side section measures the load path itself: the same
 * captured translations installed through the legacy v1 repository
 * (decode + re-encode every body) versus the zero-copy mapped image
 * (borrowed views + one flat relocation pass). It gates on the mapped
 * path being at least 2x faster per installed instruction with zero
 * per-record body copies, and exports bench.warmstart.image.*.
 */

#include <chrono>

#include "bench_common.hh"
#include "dbt/image.hh"
#include "engine/warm_start.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

namespace
{

/** Suite-mean cycles to reach insn_goal (apps that reached it). */
double
meanCyclesTo(const std::vector<timing::StartupResult> &rs,
             double insn_goal)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const timing::StartupResult &r : rs) {
        double c = analysis::cyclesToInsns(r, insn_goal);
        if (c >= 0.0) {
            sum += c;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : -1.0;
}

/** One timed install through either load path. */
struct InstallSample
{
    double nsPerInsn = 0.0;
    engine::WarmStartReport report;
};

/** Fresh engine structures per repetition so arena state never
 *  carries over between timed installs. */
template <typename Source>
InstallSample
timeInstall(const workload::Program &prog, const Source &src)
{
    x86::Memory mem;
    prog.loadInto(mem);
    engine::EngineConfig cfg = engine::EngineConfig::vmSoft();
    engine::EngineStats stats;
    engine::EventStream events;
    engine::BranchProfile prof;
    engine::CodeCacheManager ccm(mem, cfg, stats, events);

    const auto t0 = std::chrono::steady_clock::now();
    InstallSample s;
    s.report = engine::warmStartInstall(src, mem, ccm, prof);
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    s.nsPerInsn =
        s.report.installedInsns
            ? ns / static_cast<double>(s.report.installedInsns)
            : 0.0;
    return s;
}

/**
 * Legacy-vs-mapped install microbenchmark over one primed workload.
 * @return true when the gates hold (>= min_ratio speedup, zero body
 *         copies on the mapped path, identical install coverage).
 */
bool
imageLoadMicrobench(double min_ratio)
{
    // Prime: run one VM long enough that BBT and SBT translations
    // both exist, then capture them -- the production persist path.
    workload::ProgramParams pp;
    pp.seed = 7;
    const workload::Program prog = workload::generateProgram(pp);
    x86::Memory pmem;
    prog.loadInto(pmem);
    vmm::VmmConfig vcfg = engine::EngineConfig::vmSoft();
    vcfg.hotThreshold = 30;
    vmm::Vmm vm(pmem, vcfg);
    x86::CpuState cpu = prog.initialState();
    vm.run(cpu, 10'000'000);
    const dbt::Repository repo = vm.captureWarmStart();

    dbt::ImageBuilder builder(dbt::ImageBuilder::Options{0, 1});
    builder.add(repo);
    const std::vector<u8> blob = builder.build();
    dbt::TransImage img;
    if (dbt::TransImage::adopt(blob, img) != dbt::LoadError::None) {
        std::printf("image: built blob failed verification\n");
        return false;
    }

    // Best-of-N wall time per installed instruction for each path;
    // interleaved so neither side systematically sees a warmer host.
    constexpr int kReps = 7;
    InstallSample legacy, mapped;
    double legacy_ns = 0.0, mapped_ns = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        const InstallSample l = timeInstall(prog, repo);
        const InstallSample m = timeInstall(prog, img);
        if (rep == 0 || l.nsPerInsn < legacy_ns) {
            legacy_ns = l.nsPerInsn;
            legacy = l;
        }
        if (rep == 0 || m.nsPerInsn < mapped_ns) {
            mapped_ns = m.nsPerInsn;
            mapped = m;
        }
    }

    const double ratio =
        mapped_ns > 0.0 ? legacy_ns / mapped_ns : 0.0;
    std::printf("\n=== Load path: v1 repository vs zero-copy mapped "
                "image ===\n");
    std::printf("%llu records, %zu-byte image, best of %d installs\n",
                static_cast<unsigned long long>(
                    mapped.report.installed),
                blob.size(), kReps);
    std::printf("legacy  decode-install: %.1f ns/insn "
                "(%llu body copies)\n",
                legacy_ns,
                static_cast<unsigned long long>(
                    legacy.report.bodyCopies));
    std::printf("mapped  zero-copy:      %.1f ns/insn "
                "(%llu body copies, %llu relocations, %llu bytes "
                "mapped)\n",
                mapped_ns,
                static_cast<unsigned long long>(
                    mapped.report.bodyCopies),
                static_cast<unsigned long long>(
                    mapped.report.relocations),
                static_cast<unsigned long long>(
                    mapped.report.mappedBytes));
    std::printf("load ratio: %.2fx\n", ratio);

    bool ok = true;
    if (mapped.report.bodyCopies != 0) {
        std::printf("  GATE FAILED: mapped install must perform zero "
                    "per-record body copies\n");
        ok = false;
    }
    if (mapped.report.installed != legacy.report.installed ||
        mapped.report.installedInsns != legacy.report.installedInsns) {
        std::printf("  GATE FAILED: both paths must install the same "
                    "translations\n");
        ok = false;
    }
    if (!(ratio >= min_ratio)) {
        std::printf("  GATE FAILED: mapped install must be at least "
                    "%.1fx faster per instruction than the legacy "
                    "decode path\n",
                    min_ratio);
        ok = false;
    }

    StatRegistry &reg = StatRegistry::global();
    reg.set("bench.warmstart.image.records",
            static_cast<double>(mapped.report.installed),
            "translations installed from the mapped image");
    reg.set("bench.warmstart.image.installed_insns",
            static_cast<double>(mapped.report.installedInsns),
            "x86 instructions covered by the mapped install");
    reg.set("bench.warmstart.image.invalidated",
            static_cast<double>(mapped.report.invalidated),
            "records rejected against current guest memory");
    reg.set("bench.warmstart.image.body_copies",
            static_cast<double>(mapped.report.bodyCopies),
            "per-record body copies on the mapped path (gated == 0)");
    reg.set("bench.warmstart.image.relocations",
            static_cast<double>(mapped.report.relocations),
            "chain links re-bound in the flat relocation pass");
    reg.set("bench.warmstart.image.mapped_bytes",
            static_cast<double>(mapped.report.mappedBytes),
            "bytes of shared image backing the installed views");
    reg.set("bench.warmstart.image.blob_bytes",
            static_cast<double>(blob.size()),
            "size of the built image file");
    reg.set("bench.warmstart.image.dedupe_hits",
            static_cast<double>(builder.dedupeHits()),
            "records merged by content address at build time");
    reg.set("bench.warmstart.image.evicted",
            static_cast<double>(builder.evicted()),
            "records dropped by the hotness-ranked size budget");
    reg.set("bench.warmstart.image.legacy_ns_per_insn", legacy_ns,
            "best-of-N legacy decode-install wall time");
    reg.set("bench.warmstart.image.mapped_ns_per_insn", mapped_ns,
            "best-of-N zero-copy mapped-install wall time");
    reg.set("bench.warmstart.image.load_ratio_vs_decode", ratio,
            "legacy / mapped install time per instruction");
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Warm-start benchmark: cold vs repository-warmed VM "
            "startup (cycles to the first 1M instructions)");
    u64 insns = bench::standardSetup(cli, argc, argv, 20'000'000);

    auto apps = workload::winstone2004(insns);

    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto soft_warm = bench::runMachine(
        timing::MachineConfig::vmSoftWarm(), apps);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto be_warm = bench::runMachine(timing::MachineConfig::vmBeWarm(),
                                     apps);

    std::printf("=== Warm start: cold vs persistent-repository "
                "startup ===\n");
    std::printf("(10 Winstone2004-like apps, %llu M x86 instructions "
                "each)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    bool ok = true;
    auto report = [&](const char *name,
                      const std::vector<timing::StartupResult> &cold,
                      const std::vector<timing::StartupResult> &warm) {
        const double c1m = meanCyclesTo(cold, 1e6);
        const double w1m = meanCyclesTo(warm, 1e6);
        std::printf("%-8s cycles to 1M insns: cold %s, warm %s "
                    "(%.2fx faster)\n",
                    name,
                    fmtCount(static_cast<unsigned long long>(c1m))
                        .c_str(),
                    fmtCount(static_cast<unsigned long long>(w1m))
                        .c_str(),
                    w1m > 0.0 ? c1m / w1m : 0.0);
        if (!(c1m > 0.0 && w1m > 0.0 && w1m < c1m)) {
            std::printf("  GATE FAILED: warm start must be strictly "
                        "faster to 1M instructions\n");
            ok = false;
        }
    };
    report("VM.soft", soft, soft_warm);
    report("VM.be", be, be_warm);

    double warm_static = 0.0, warm_load_cyc = 0.0;
    for (const timing::StartupResult &r : soft_warm) {
        warm_static += static_cast<double>(r.staticInsnsWarm);
        warm_load_cyc += r.catCycles[static_cast<size_t>(
            timing::CycleCat::WarmLoad)];
    }
    std::printf("\nVM.soft warm install: %.0f static insns/app, "
                "%.0f up-front load cycles/app\n",
                warm_static / static_cast<double>(soft_warm.size()),
                warm_load_cyc / static_cast<double>(soft_warm.size()));

    // Host-side load-path microbenchmark and its own gates: zero-copy
    // mapped installs must beat the legacy decode path by >= 2x.
    if (!imageLoadMicrobench(2.0))
        ok = false;

    // Per-PR perf trajectory: suite aggregates for the CI artifact.
    bench::exportSuiteStartup("bench.warmstart.vm_soft", soft);
    bench::exportSuiteStartup("bench.warmstart.vm_soft_warm", soft_warm,
                              &soft);
    bench::exportSuiteStartup("bench.warmstart.vm_be", be);
    bench::exportSuiteStartup("bench.warmstart.vm_be_warm", be_warm,
                              &be);
    dumpObservability();
    return ok ? 0 : 1;
}
