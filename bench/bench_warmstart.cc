/**
 * @file
 * Warm-start benchmark: cold vs warm startup of the software-only VM.
 *
 * The persistent translation repository (dbt/persist) lets a VM start
 * with every basic-block translation already installed, paying a small
 * up-front load cost instead of Delta_BBT on every first touch. This
 * harness quantifies the win on the startup metric the paper uses --
 * cycles to reach the first N instructions -- by running VM.soft and
 * VM.be cold and warm over the Winstone-like suite.
 *
 * The binary self-gates: it exits non-zero unless a warm start is
 * strictly faster to the 1M-instruction milestone than the matching
 * cold start (CI asserts on this and folds the deltas into
 * BENCH_startup.json).
 */

#include "bench_common.hh"

using namespace cdvm;

namespace
{

/** Suite-mean cycles to reach insn_goal (apps that reached it). */
double
meanCyclesTo(const std::vector<timing::StartupResult> &rs,
             double insn_goal)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const timing::StartupResult &r : rs) {
        double c = analysis::cyclesToInsns(r, insn_goal);
        if (c >= 0.0) {
            sum += c;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : -1.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Warm-start benchmark: cold vs repository-warmed VM "
            "startup (cycles to the first 1M instructions)");
    u64 insns = bench::standardSetup(cli, argc, argv, 20'000'000);

    auto apps = workload::winstone2004(insns);

    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);
    auto soft_warm = bench::runMachine(
        timing::MachineConfig::vmSoftWarm(), apps);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto be_warm = bench::runMachine(timing::MachineConfig::vmBeWarm(),
                                     apps);

    std::printf("=== Warm start: cold vs persistent-repository "
                "startup ===\n");
    std::printf("(10 Winstone2004-like apps, %llu M x86 instructions "
                "each)\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    bool ok = true;
    auto report = [&](const char *name,
                      const std::vector<timing::StartupResult> &cold,
                      const std::vector<timing::StartupResult> &warm) {
        const double c1m = meanCyclesTo(cold, 1e6);
        const double w1m = meanCyclesTo(warm, 1e6);
        std::printf("%-8s cycles to 1M insns: cold %s, warm %s "
                    "(%.2fx faster)\n",
                    name,
                    fmtCount(static_cast<unsigned long long>(c1m))
                        .c_str(),
                    fmtCount(static_cast<unsigned long long>(w1m))
                        .c_str(),
                    w1m > 0.0 ? c1m / w1m : 0.0);
        if (!(c1m > 0.0 && w1m > 0.0 && w1m < c1m)) {
            std::printf("  GATE FAILED: warm start must be strictly "
                        "faster to 1M instructions\n");
            ok = false;
        }
    };
    report("VM.soft", soft, soft_warm);
    report("VM.be", be, be_warm);

    double warm_static = 0.0, warm_load_cyc = 0.0;
    for (const timing::StartupResult &r : soft_warm) {
        warm_static += static_cast<double>(r.staticInsnsWarm);
        warm_load_cyc += r.catCycles[static_cast<size_t>(
            timing::CycleCat::WarmLoad)];
    }
    std::printf("\nVM.soft warm install: %.0f static insns/app, "
                "%.0f up-front load cycles/app\n",
                warm_static / static_cast<double>(soft_warm.size()),
                warm_load_cyc / static_cast<double>(soft_warm.size()));

    // Per-PR perf trajectory: suite aggregates for the CI artifact.
    bench::exportSuiteStartup("bench.warmstart.vm_soft", soft);
    bench::exportSuiteStartup("bench.warmstart.vm_soft_warm", soft_warm,
                              &soft);
    bench::exportSuiteStartup("bench.warmstart.vm_be", be);
    bench::exportSuiteStartup("bench.warmstart.vm_be_warm", be_warm,
                              &be);
    dumpObservability();
    return ok ? 0 : 1;
}
