/**
 * @file
 * Cross-process warm-start benchmark: N forked mapper processes boot
 * from ONE image-host daemon.
 *
 * bench_fleet shows the zero-copy image amortizing translation across
 * contexts *within* a process; this harness proves the same image
 * amortizes across *processes*. The parent primes per-class warm
 * repositories, merges them into one content-addressed image, and
 * forks a daemon child (serve::ImageHost) that seals the blob into a
 * memfd. For each rung of the mapper ladder (1 -> 4 -> N) it then
 * forks N mapper processes: each connects to the daemon, receives the
 * sealed fd over SCM_RIGHTS, maps it MAP_SHARED, warm-boots a VM from
 * the mapping, and runs to the startup milestone on the fleet's
 * deterministic virtual cycle clock. A cold series of the same N
 * processes (no daemon) is the baseline.
 *
 * Sharing proof: after reaching the milestone every mapper parks on a
 * pipe barrier, so all N hold their mappings concurrently, then reads
 * its own /proc/self/smaps entry for the image region. The binary
 * self-gates on:
 *   - bodyCopies == 0 and installs > 0 in EVERY mapper process,
 *   - warm p99 time-to-milestone strictly below cold at every rung,
 *   - zero private-dirty image pages in every mapper (read-only
 *     MAP_SHARED never copies), and
 *   - summed image PSS growing sublinearly: at every rung the sum
 *     stays within 2x the blob size (N private copies would sum to
 *     ~N*blob).
 *
 *   $ ./build/bench/bench_xproc --mappers=16
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "dbt/image.hh"
#include "fleet/fleet.hh"
#include "serve/image_client.hh"
#include "serve/image_host.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"

#ifdef __unix__

#include <algorithm>
#include <chrono>
#include <cinttypes>

#include <sys/wait.h>
#include <unistd.h>

using namespace cdvm;

namespace
{

/** Same short halt-and-rerun shape as bench_fleet: the hot set
 *  crosses the SBT threshold inside the priming window. */
workload::ProgramParams
xprocWorkloadShape()
{
    workload::ProgramParams p;
    p.numFuncs = 5;
    p.blocksPerFunc = 3;
    p.insnsPerBlock = 8;
    p.mainIterations = 2;
    return p;
}

u64
nowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Fixed-size result each mapper child writes up its pipe. */
struct MapperResult
{
    u32 ok = 0;   //!< milestone reached, architected state sane
    u32 warm = 0; //!< booted from the daemon-served image
    u64 connectNs = 0; //!< connect + SCM_RIGHTS + mmap + verify
    u64 installNs = 0; //!< Vmm ctor (includes the warm fill)
    u64 cycles = 0;    //!< virtual cycles to the milestone
    u64 retired = 0;
    u64 installed = 0;   //!< warm translations installed
    u64 bodyCopies = 0;  //!< decode+copy installs (must be 0 warm)
    u64 mappedBytes = 0; //!< image bytes views were installed from
    u64 imageSizeKb = 0; //!< smaps Size: of the image region
    u64 imageRssKb = 0;  //!< smaps Rss: resident in this process
    u64 imagePssKb = 0;  //!< smaps Pss: this process's share
    u64 imagePrivateDirtyKb = 0; //!< smaps Private_Dirty: must be 0
    u64 pagesShared = 0; //!< mincore view (dbt.image.pages.shared)
};

/** The /proc/self/smaps entry covering one address. */
struct SmapsRegion
{
    bool found = false;
    u64 sizeKb = 0;
    u64 rssKb = 0;
    u64 pssKb = 0;
    u64 privateDirtyKb = 0;
};

SmapsRegion
smapsRegionOf(const void *addr)
{
    SmapsRegion out;
    std::FILE *f = std::fopen("/proc/self/smaps", "r");
    if (!f)
        return out;
    const u64 want = reinterpret_cast<u64>(addr);
    char line[512];
    bool in_region = false;
    while (std::fgets(line, sizeof line, f)) {
        u64 lo = 0, hi = 0;
        if (std::sscanf(line, "%" SCNx64 "-%" SCNx64, &lo, &hi) == 2 &&
            std::strchr(line, ' ')) {
            if (in_region)
                break; // left the matching region: done
            in_region = lo <= want && want < hi;
            out.found = out.found || in_region;
            continue;
        }
        if (!in_region)
            continue;
        u64 kb = 0;
        if (std::sscanf(line, "Size: %" SCNu64 " kB", &kb) == 1)
            out.sizeKb = kb;
        else if (std::sscanf(line, "Rss: %" SCNu64 " kB", &kb) == 1)
            out.rssKb = kb;
        else if (std::sscanf(line, "Pss: %" SCNu64 " kB", &kb) == 1)
            out.pssKb = kb;
        else if (std::sscanf(line, "Private_Dirty: %" SCNu64 " kB",
                             &kb) == 1)
            out.privateDirtyKb = kb;
    }
    std::fclose(f);
    return out;
}

/** Knobs shared by the parent and every forked mapper. */
struct XprocConfig
{
    unsigned workloads = 4;
    u64 fleetSeed = 1;
    u64 milestoneInsns = 1'000'000;
    std::string sock;
    engine::EngineConfig tenantCfg;
    fleet::WorkWeights weights;
};

/**
 * One mapper process: (optionally) fetch the image from the daemon,
 * warm-boot a VM, run to the milestone on the virtual clock, then
 * park on the barrier so every sibling holds its mapping while smaps
 * is read. Writes MapperResult to result_fd and _exits.
 */
void
runMapper(const XprocConfig &xc, unsigned index, bool warm,
          int ready_fd, int gate_fd, int gate2_fd, int result_fd)
{
    MapperResult res;
    res.warm = warm ? 1 : 0;

    engine::SharedServices svc;
    auto client = std::make_shared<serve::ImageClient>();
    if (warm) {
        const u64 t0 = nowNs();
        const bool up = client->connect(xc.sock);
        res.connectNs = nowNs() - t0;
        if (up)
            svc.imageEndpoint = client;
        // else: fall back to a cold boot; res.warm stays set so the
        // parent's bodyCopies/installed gate catches the regression.
    }

    workload::ProgramParams p = xprocWorkloadShape();
    p.seed = fleet::deriveSeed(xc.fleetSeed, index % xc.workloads);
    const workload::Program prog = workload::generateProgram(p);
    x86::Memory mem;
    prog.loadInto(mem);
    x86::CpuState cpu = prog.initialState();

    const u64 t1 = nowNs();
    vmm::Vmm vm(mem, xc.tenantCfg, svc);
    res.installNs = nowNs() - t1;

    fleet::WorkClockSink clock(xc.weights);
    vm.attachSink(&clock);
    // The warm fill ran inside the ctor, before the sink attach:
    // charge it out of band at the mapped (relocation-only) rate,
    // exactly as fleet admission does.
    const vmm::VmmStats &st = vm.stats();
    const bool mapped = st.warmMappedBytes > 0;
    clock.charge(
        (mapped ? xc.weights.warmInstallMapped
                : xc.weights.warmInstall) *
        static_cast<double>(st.warmInsnsInstalled));

    bool ran_ok = true;
    while (st.totalRetired() < xc.milestoneInsns) {
        const x86::Exit e = vm.run(
            cpu, xc.milestoneInsns - st.totalRetired());
        if (e == x86::Exit::Halted)
            cpu = prog.initialState();
        else if (e != x86::Exit::None) {
            ran_ok = false;
            break;
        }
    }
    res.cycles = clock.cycles();
    res.retired = st.totalRetired();
    res.installed = st.warmInstalled;
    res.bodyCopies = st.warmBodyCopies;
    res.mappedBytes = st.warmMappedBytes;

    // Barrier: every sibling must hold its mapping before any smaps
    // read, or early finishers would under-count the shared pages.
    // Participate even after a failed run -- skipping the barrier
    // would starve the parent's ready count and hang the batch.
    char b = 1;
    if (::write(ready_fd, &b, 1) != 1 || ::read(gate_fd, &b, 1) != 1)
        ran_ok = false;

    if (const auto img = warm ? client->acquire() : nullptr) {
        const SmapsRegion r = smapsRegionOf(&img->header());
        res.imageSizeKb = r.sizeKb;
        res.imageRssKb = r.rssKb;
        res.imagePssKb = r.pssKb;
        res.imagePrivateDirtyKb = r.privateDirtyKb;
        res.pagesShared = img->residency().pagesShared;
        ran_ok = ran_ok && r.found;
    }

    // Second barrier: stay alive (mapping held) until every sibling
    // has read ITS smaps too. Without this, early exiters drop the
    // page mapcounts and late readers inherit a larger PSS share --
    // the sum converges to ~2.4x the blob (harmonic series) instead
    // of ~1x, and the sharing gate measures exit order, not sharing.
    // A separate gate pipe per round: with one pipe a fast sibling
    // consumes a round-1 release byte as its round-2 release and a
    // slow sibling starves.
    if (::write(ready_fd, &b, 1) != 1 || ::read(gate2_fd, &b, 1) != 1)
        ran_ok = false;
    res.ok = ran_ok && res.retired >= xc.milestoneInsns;
    [[maybe_unused]] ssize_t n =
        ::write(result_fd, &res, sizeof res);
    ::_exit(0);
}

/** Results of one ladder rung (N mappers, warm or cold). */
struct Batch
{
    std::vector<MapperResult> res;
    bool forked_ok = true;

    static double
    pct(std::vector<u64> v, double q)
    {
        if (v.empty())
            return 0.0;
        std::sort(v.begin(), v.end());
        const std::size_t idx = static_cast<std::size_t>(
            q * static_cast<double>(v.size() - 1) + 0.5);
        return static_cast<double>(v[idx]);
    }

    double
    p(double q, u64 MapperResult::*field) const
    {
        std::vector<u64> v;
        v.reserve(res.size());
        for (const MapperResult &r : res)
            v.push_back(r.*field);
        return pct(std::move(v), q);
    }

    u64
    sum(u64 MapperResult::*field) const
    {
        u64 s = 0;
        for (const MapperResult &r : res)
            s += r.*field;
        return s;
    }

    bool
    allOk() const
    {
        if (!forked_ok || res.empty())
            return false;
        for (const MapperResult &r : res) {
            if (!r.ok)
                return false;
        }
        return true;
    }
};

/** Fork n mappers, run the ready/gate barrier, harvest results. */
Batch
runBatch(const XprocConfig &xc, unsigned n, bool warm)
{
    Batch batch;
    int ready[2], gate[2], gate2[2];
    if (::pipe(ready) != 0 || ::pipe(gate) != 0 ||
        ::pipe(gate2) != 0) {
        batch.forked_ok = false;
        return batch;
    }
    std::vector<int> result_rd;
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < n; ++i) {
        int rp[2];
        if (::pipe(rp) != 0) {
            batch.forked_ok = false;
            break;
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(rp[0]);
            ::close(rp[1]);
            batch.forked_ok = false;
            break;
        }
        if (pid == 0) {
            ::close(rp[0]);
            ::close(ready[0]);
            ::close(gate[1]);
            ::close(gate2[1]);
            for (int fd : result_rd)
                ::close(fd);
            runMapper(xc, i, warm, ready[1], gate[0], gate2[0],
                      rp[1]);
            ::_exit(1); // unreachable
        }
        ::close(rp[1]);
        result_rd.push_back(rp[0]);
        pids.push_back(pid);
    }

    // Two barrier rounds: (1) every child finishes its run before any
    // smaps read, (2) every child finishes its smaps read before any
    // exit. Both directions matter for the PSS accounting. Each round
    // releases through its own gate pipe (see runMapper).
    const int gates[2] = {gate[1], gate2[1]};
    for (int round = 0; round < 2; ++round) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
            char b;
            if (::read(ready[0], &b, 1) != 1)
                batch.forked_ok = false;
        }
        for (std::size_t i = 0; i < pids.size(); ++i) {
            const char b = 1;
            if (::write(gates[round], &b, 1) != 1)
                batch.forked_ok = false;
        }
    }

    for (std::size_t i = 0; i < pids.size(); ++i) {
        MapperResult r;
        if (::read(result_rd[i], &r, sizeof r) ==
            static_cast<ssize_t>(sizeof r))
            batch.res.push_back(r);
        else
            batch.forked_ok = false;
        ::close(result_rd[i]);
        int status = 0;
        ::waitpid(pids[i], &status, 0);
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            batch.forked_ok = false;
    }
    ::close(ready[0]);
    ::close(ready[1]);
    ::close(gate[0]);
    ::close(gate[1]);
    ::close(gate2[0]);
    ::close(gate2[1]);
    return batch;
}

/** Prime one repository per workload class (bench_fleet's recipe:
 *  prime PAST the milestone so the hot set is fully optimized). */
std::vector<u8>
buildImageBlob(const XprocConfig &xc, u64 prime_insns, u64 &records)
{
    dbt::ImageBuilder builder(dbt::ImageBuilder::Options{0, 1});
    for (unsigned w = 0; w < xc.workloads; ++w) {
        workload::ProgramParams p = xprocWorkloadShape();
        p.seed = fleet::deriveSeed(xc.fleetSeed, w);
        const workload::Program prog = workload::generateProgram(p);
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, xc.tenantCfg);
        x86::CpuState cpu = prog.initialState();
        while (vm.stats().totalRetired() < prime_insns) {
            const x86::Exit e = vm.run(
                cpu, prime_insns - vm.stats().totalRetired());
            if (e == x86::Exit::Halted)
                cpu = prog.initialState();
            else if (e != x86::Exit::None) {
                std::fprintf(stderr, "priming class %u failed\n", w);
                break;
            }
        }
        builder.add(vm.captureWarmStart());
    }
    records = builder.records();
    return builder.build();
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Cross-process warm start: N forked mappers boot from one "
            "image-host daemon; gates on zero body copies, warm < "
            "cold p99, and shared (sublinear) image PSS");
    cli.flag("mappers", "16", "mapper processes at the ladder top");
    cli.flag("workloads", "4", "distinct workload classes");
    cli.flag("seed", "1", "fleet seed (derives every class seed)");
    cli.flag("milestone", "1000000",
             "startup milestone (retired insns per mapper)");
    cli.flag("socket", "", "daemon socket path (default: derived "
                           "from the pid under /tmp)");
    cli.flag("json", "BENCH_xproc.json", "output report path");
    cli.parse(argc, argv);

    XprocConfig xc;
    xc.workloads = static_cast<unsigned>(cli.num("workloads"));
    xc.fleetSeed = static_cast<u64>(cli.num("seed"));
    xc.milestoneInsns = static_cast<u64>(cli.num("milestone"));
    xc.sock = cli.str("socket");
    if (xc.sock.empty())
        xc.sock = "/tmp/cdvm-xproc-" + std::to_string(::getpid()) +
                  ".sock";
    xc.tenantCfg = fleet::tenantEngineConfig(engine::EngineConfig{});
    xc.weights = fleet::WorkWeights::forConfig(xc.tenantCfg);

    const unsigned top = static_cast<unsigned>(cli.num("mappers"));
    std::vector<unsigned> ladder{1, 4, top};
    std::sort(ladder.begin(), ladder.end());
    ladder.erase(std::unique(ladder.begin(), ladder.end()),
                 ladder.end());
    while (!ladder.empty() && ladder.front() == 0)
        ladder.erase(ladder.begin());

    std::printf("=== Cross-process warm start: ladder to %u mappers, "
                "%u workload classes ===\n",
                top, xc.workloads);

    // Prime past the milestone (2x) so the image carries the fully
    // optimized hot set; a shallow capture makes warm boots LOSE.
    u64 records = 0;
    const std::vector<u8> blob =
        buildImageBlob(xc, 2 * xc.milestoneInsns, records);
    std::printf("image: %llu records in %zu bytes\n",
                static_cast<unsigned long long>(records), blob.size());

    // Daemon child: seal + serve until the stop pipe closes. Fork it
    // before any measurement so its memory is not in the mappers.
    int daemon_ready[2], daemon_stop[2];
    if (::pipe(daemon_ready) != 0 || ::pipe(daemon_stop) != 0) {
        std::fprintf(stderr, "pipe failed\n");
        return 2;
    }
    const pid_t daemon_pid = ::fork();
    if (daemon_pid < 0) {
        std::fprintf(stderr, "fork failed\n");
        return 2;
    }
    if (daemon_pid == 0) {
        ::close(daemon_ready[0]);
        ::close(daemon_stop[1]);
        serve::ImageHost host;
        char ok = host.publish(blob) && host.start(xc.sock) ? 1 : 0;
        if (!ok)
            std::fprintf(stderr, "daemon: %s\n",
                         host.lastError().c_str());
        [[maybe_unused]] ssize_t w = ::write(daemon_ready[1], &ok, 1);
        char b;
        [[maybe_unused]] ssize_t r =
            ::read(daemon_stop[0], &b, 1); // EOF = parent done
        host.stop();
        ::_exit(ok ? 0 : 1);
    }
    ::close(daemon_ready[1]);
    ::close(daemon_stop[0]);
    char daemon_ok = 0;
    if (::read(daemon_ready[0], &daemon_ok, 1) != 1 || !daemon_ok) {
        std::fprintf(stderr, "image daemon failed to start\n");
        ::close(daemon_stop[1]);
        ::waitpid(daemon_pid, nullptr, 0);
        return 2;
    }
    ::close(daemon_ready[0]);

    struct Rung
    {
        unsigned n = 0;
        Batch warm, cold;
    };
    std::vector<Rung> rungs;
    bool ok = true;
    for (unsigned n : ladder) {
        Rung rung;
        rung.n = n;
        rung.warm = runBatch(xc, n, true);
        rung.cold = runBatch(xc, n, false);
        const double wp99 = rung.warm.p(0.99, &MapperResult::cycles);
        const double cp99 = rung.cold.p(0.99, &MapperResult::cycles);
        std::printf(
            "N=%2u  warm p50/p99 %8.0f/%8.0f cycles  cold p99 "
            "%8.0f  connect+map p99 %6.2f ms  install p99 %6.2f ms  "
            "sum image PSS %llu kB\n",
            n, rung.warm.p(0.50, &MapperResult::cycles), wp99, cp99,
            rung.warm.p(0.99, &MapperResult::connectNs) / 1e6,
            rung.warm.p(0.99, &MapperResult::installNs) / 1e6,
            static_cast<unsigned long long>(
                rung.warm.sum(&MapperResult::imagePssKb)));

        if (!rung.warm.allOk() || !rung.cold.allOk()) {
            std::printf("GATE FAILED: N=%u: a mapper process failed\n",
                        n);
            ok = false;
        }
        for (const MapperResult &r : rung.warm.res) {
            if (r.installed == 0 || r.bodyCopies != 0) {
                std::printf("GATE FAILED: N=%u: warm mapper installed "
                            "%llu with %llu body copies (want >0 "
                            "with 0)\n",
                            n,
                            static_cast<unsigned long long>(
                                r.installed),
                            static_cast<unsigned long long>(
                                r.bodyCopies));
                ok = false;
                break;
            }
        }
        for (const MapperResult &r : rung.warm.res) {
            if (r.imagePrivateDirtyKb != 0) {
                std::printf("GATE FAILED: N=%u: %llu kB private-dirty "
                            "image pages (read-only MAP_SHARED must "
                            "copy nothing)\n",
                            n,
                            static_cast<unsigned long long>(
                                r.imagePrivateDirtyKb));
                ok = false;
                break;
            }
        }
        if (!(wp99 > 0.0 && wp99 < cp99)) {
            std::printf("GATE FAILED: N=%u: warm p99 (%.0f) must be "
                        "strictly below cold (%.0f)\n",
                        n, wp99, cp99);
            ok = false;
        }
        // Sharing gate: N processes mapping one physical copy split
        // its PSS, so the SUM stays ~blob-sized at every rung; N
        // private copies would sum to ~N*blob.
        const u64 sum_pss_kb =
            rung.warm.sum(&MapperResult::imagePssKb);
        const u64 budget_kb = 2 * (blob.size() / 1024 + 4);
        if (sum_pss_kb > budget_kb) {
            std::printf("GATE FAILED: N=%u: summed image PSS %llu kB "
                        "exceeds the sharing budget %llu kB\n",
                        n, static_cast<unsigned long long>(sum_pss_kb),
                        static_cast<unsigned long long>(budget_kb));
            ok = false;
        }
        rungs.push_back(std::move(rung));
    }
    if (ok)
        std::printf("gate: every mapper zero-copy, warm < cold p99, "
                    "image PSS sublinear across the ladder\n");

    // Stop the daemon (closing the stop pipe EOFs its read).
    ::close(daemon_stop[1]);
    int dstatus = 0;
    ::waitpid(daemon_pid, &dstatus, 0);
    if (!WIFEXITED(dstatus) || WEXITSTATUS(dstatus) != 0) {
        std::printf("GATE FAILED: daemon exited abnormally\n");
        ok = false;
    }

    std::FILE *f = std::fopen(cli.str("json").c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n",
                     cli.str("json").c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"workloads\": %u,\n"
                 "  \"seed\": %llu,\n"
                 "  \"milestone_insns\": %llu,\n"
                 "  \"image_blob_bytes\": %zu,\n"
                 "  \"image_records\": %llu,\n"
                 "  \"rungs\": [\n",
                 xc.workloads,
                 static_cast<unsigned long long>(xc.fleetSeed),
                 static_cast<unsigned long long>(xc.milestoneInsns),
                 blob.size(),
                 static_cast<unsigned long long>(records));
    for (std::size_t i = 0; i < rungs.size(); ++i) {
        const Rung &rg = rungs[i];
        std::fprintf(
            f,
            "    {\n"
            "      \"mappers\": %u,\n"
            "      \"warm_p50_cycles\": %.0f,\n"
            "      \"warm_p99_cycles\": %.0f,\n"
            "      \"cold_p50_cycles\": %.0f,\n"
            "      \"cold_p99_cycles\": %.0f,\n"
            "      \"connect_map_p50_ns\": %.0f,\n"
            "      \"connect_map_p99_ns\": %.0f,\n"
            "      \"install_p50_ns\": %.0f,\n"
            "      \"install_p99_ns\": %.0f,\n"
            "      \"warm_installed\": %llu,\n"
            "      \"warm_body_copies\": %llu,\n"
            "      \"sum_image_pss_kb\": %llu,\n"
            "      \"sum_image_rss_kb\": %llu,\n"
            "      \"sum_private_dirty_kb\": %llu,\n"
            "      \"pages_shared_min\": %llu\n"
            "    }%s\n",
            rg.n, rg.warm.p(0.50, &MapperResult::cycles),
            rg.warm.p(0.99, &MapperResult::cycles),
            rg.cold.p(0.50, &MapperResult::cycles),
            rg.cold.p(0.99, &MapperResult::cycles),
            rg.warm.p(0.50, &MapperResult::connectNs),
            rg.warm.p(0.99, &MapperResult::connectNs),
            rg.warm.p(0.50, &MapperResult::installNs),
            rg.warm.p(0.99, &MapperResult::installNs),
            static_cast<unsigned long long>(
                rg.warm.sum(&MapperResult::installed)),
            static_cast<unsigned long long>(
                rg.warm.sum(&MapperResult::bodyCopies)),
            static_cast<unsigned long long>(
                rg.warm.sum(&MapperResult::imagePssKb)),
            static_cast<unsigned long long>(
                rg.warm.sum(&MapperResult::imageRssKb)),
            static_cast<unsigned long long>(
                rg.warm.sum(&MapperResult::imagePrivateDirtyKb)),
            static_cast<unsigned long long>([&rg] {
                u64 mn = ~u64{0};
                for (const MapperResult &r : rg.warm.res)
                    mn = r.pagesShared < mn ? r.pagesShared : mn;
                return rg.warm.res.empty() ? 0 : mn;
            }()),
            i + 1 < rungs.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"gate\": { \"ok\": %s }\n"
                 "}\n",
                 ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", cli.str("json").c_str());
    return ok ? 0 : 1;
}

#else // !__unix__

int
main()
{
    std::printf("bench_xproc requires a unix host (fork + SCM_RIGHTS "
                "+ /proc/self/smaps); skipping\n");
    return 0;
}

#endif // __unix__
