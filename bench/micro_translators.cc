/**
 * @file
 * Host-side micro-benchmarks (google-benchmark) of the translation
 * pipeline components: x86 decode, cracking, encoding, BBT, superblock
 * formation + SBT optimization, and the XLTx86 functional unit.
 */

#include <cstring>

#include <benchmark/benchmark.h>

#include "dbt/bbt.hh"
#include "dbt/sbt.hh"
#include "hwassist/xlt.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "uops/fusion.hh"
#include "workload/program_gen.hh"
#include "x86/decoder.hh"

using namespace cdvm;

namespace
{

const workload::Program &
testProgram()
{
    static workload::Program prog = [] {
        workload::ProgramParams pp;
        pp.seed = 7;
        pp.numFuncs = 6;
        pp.blocksPerFunc = 6;
        return workload::generateProgram(pp);
    }();
    return prog;
}

void
BM_X86Decode(benchmark::State &state)
{
    const workload::Program &prog = testProgram();
    u64 insns = 0;
    for (auto _ : state) {
        std::size_t pos = 0;
        while (pos + x86::MAX_INSN_LEN < prog.image.size()) {
            x86::DecodeResult r = x86::decode(
                std::span<const u8>(prog.image.data() + pos,
                                    x86::MAX_INSN_LEN + 1),
                prog.codeBase + pos);
            if (!r.ok) {
                ++pos;
                continue;
            }
            benchmark::DoNotOptimize(r.insn.op);
            pos += r.insn.length;
            ++insns;
        }
    }
    state.SetItemsProcessed(static_cast<i64>(insns));
}
BENCHMARK(BM_X86Decode);

void
BM_CrackAndEncode(benchmark::State &state)
{
    const workload::Program &prog = testProgram();
    std::vector<x86::Insn> insns;
    std::size_t pos = 0;
    while (pos + x86::MAX_INSN_LEN < prog.image.size()) {
        x86::DecodeResult r = x86::decode(
            std::span<const u8>(prog.image.data() + pos,
                                x86::MAX_INSN_LEN + 1),
            prog.codeBase + pos);
        if (!r.ok) {
            ++pos;
            continue;
        }
        insns.push_back(r.insn);
        pos += r.insn.length;
    }
    u64 n = 0;
    for (auto _ : state) {
        for (const x86::Insn &in : insns) {
            uops::CrackResult cr = uops::crack(in);
            std::vector<u8> bytes = uops::encode(cr.uops);
            benchmark::DoNotOptimize(bytes.data());
            ++n;
        }
    }
    state.SetItemsProcessed(static_cast<i64>(n));
}
BENCHMARK(BM_CrackAndEncode);

void
BM_BbtTranslate(benchmark::State &state)
{
    const workload::Program &prog = testProgram();
    x86::Memory mem;
    prog.loadInto(mem);
    dbt::BasicBlockTranslator bbt(mem);
    u64 blocks = 0;
    for (auto _ : state) {
        Addr pc = prog.codeBase;
        while (pc < prog.codeBase + prog.image.size()) {
            auto t = bbt.translate(pc);
            if (!t) {
                ++pc;
                continue;
            }
            benchmark::DoNotOptimize(t->codeBytes);
            pc = t->fallthroughPc;
            ++blocks;
        }
    }
    state.SetItemsProcessed(static_cast<i64>(blocks));
}
BENCHMARK(BM_BbtTranslate);

void
BM_XltX86Unit(benchmark::State &state)
{
    const workload::Program &prog = testProgram();
    hwassist::XltUnit xlt;
    u8 src[16];
    u8 dst[16];
    u64 n = 0;
    for (auto _ : state) {
        for (std::size_t pos = 0; pos + 16 < prog.image.size();
             pos += 4) {
            std::memcpy(src, prog.image.data() + pos, 16);
            u32 csr = xlt.translate(src, dst);
            benchmark::DoNotOptimize(csr);
            ++n;
        }
    }
    state.SetItemsProcessed(static_cast<i64>(n));
}
BENCHMARK(BM_XltX86Unit);

void
BM_FusionPass(benchmark::State &state)
{
    const workload::Program &prog = testProgram();
    std::vector<x86::Insn> insns;
    std::size_t pos = 0;
    while (pos + x86::MAX_INSN_LEN < prog.image.size()) {
        x86::DecodeResult r = x86::decode(
            std::span<const u8>(prog.image.data() + pos,
                                x86::MAX_INSN_LEN + 1),
            prog.codeBase + pos);
        if (!r.ok) {
            ++pos;
            continue;
        }
        insns.push_back(r.insn);
        pos += r.insn.length;
    }
    uops::CrackResult cr = uops::crackAll(insns);
    u64 n = 0;
    for (auto _ : state) {
        uops::UopVec v = cr.uops;
        uops::FusionStats st = uops::fusePairs(v);
        benchmark::DoNotOptimize(st.pairs);
        n += v.size();
    }
    state.SetItemsProcessed(static_cast<i64>(n));
}
BENCHMARK(BM_FusionPass);

} // namespace

BENCHMARK_MAIN();
