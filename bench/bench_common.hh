/**
 * @file
 * Shared plumbing for the figure/table benchmark harnesses: flag
 * handling, scaled default trace lengths, and machine x workload run
 * matrices.
 *
 * Every harness accepts --instructions (per-app dynamic length) and
 * honours the CDVM_SCALE environment variable; the defaults keep the
 * full suite within minutes while preserving curve shape. The paper's
 * own lengths are 100 M (accumulated statistics) and 500 M
 * (time-variation studies) -- pass --instructions 500000000 to match.
 */

#ifndef CDVM_BENCH_COMMON_HH
#define CDVM_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/startup_curve.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "timing/startup_sim.hh"
#include "workload/winstone.hh"

namespace cdvm::bench
{

/** Parse standard flags; returns the per-app instruction count. */
inline u64
standardSetup(Cli &cli, int argc, char **argv, u64 default_insns)
{
    cli.flag("instructions", std::to_string(default_insns),
             "dynamic x86 instructions per application trace");
    cli.parse(argc, argv);
    double scaled = static_cast<double>(cli.num("instructions")) *
                    envScale();
    u64 n = static_cast<u64>(scaled);
    return n < 1'000'000 ? 1'000'000 : n;
}

/** Run one machine over every app; returns per-app results. */
inline std::vector<timing::StartupResult>
runMachine(const timing::MachineConfig &m,
           const std::vector<workload::AppProfile> &apps)
{
    std::vector<timing::StartupResult> out;
    out.reserve(apps.size());
    for (const workload::AppProfile &app : apps) {
        timing::StartupSim sim(m, app);
        out.push_back(sim.run());
        std::fprintf(stderr, "  [%s / %s] %.0fM cycles\n",
                     m.name.c_str(), app.name.c_str(),
                     static_cast<double>(out.back().totalCycles) / 1e6);
    }
    return out;
}

} // namespace cdvm::bench

#endif // CDVM_BENCH_COMMON_HH
