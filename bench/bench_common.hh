/**
 * @file
 * Shared plumbing for the figure/table benchmark harnesses: flag
 * handling, scaled default trace lengths, and machine x workload run
 * matrices.
 *
 * Every harness accepts --instructions (per-app dynamic length) and
 * honours the CDVM_SCALE environment variable; the defaults keep the
 * full suite within minutes while preserving curve shape. The paper's
 * own lengths are 100 M (accumulated statistics) and 500 M
 * (time-variation studies) -- pass --instructions 500000000 to match.
 */

#ifndef CDVM_BENCH_COMMON_HH
#define CDVM_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/startup_curve.hh"
#include "common/cli.hh"
#include "common/statreg.hh"
#include "common/table.hh"
#include "timing/startup_sim.hh"
#include "workload/winstone.hh"

namespace cdvm::bench
{

/** Parse standard flags; returns the per-app instruction count. */
inline u64
standardSetup(Cli &cli, int argc, char **argv, u64 default_insns)
{
    cli.flag("instructions", std::to_string(default_insns),
             "dynamic x86 instructions per application trace");
    addObservabilityFlags(cli);
    cli.parse(argc, argv);
    applyObservabilityFlags(cli);
    double scaled = static_cast<double>(cli.num("instructions")) *
                    envScale();
    u64 n = static_cast<u64>(scaled);
    return n < 1'000'000 ? 1'000'000 : n;
}

/** Run one machine over every app; returns per-app results. */
inline std::vector<timing::StartupResult>
runMachine(const timing::MachineConfig &m,
           const std::vector<workload::AppProfile> &apps)
{
    std::vector<timing::StartupResult> out;
    out.reserve(apps.size());
    for (const workload::AppProfile &app : apps) {
        timing::StartupSim sim(m, app);
        out.push_back(sim.run());
        std::fprintf(stderr, "  [%s / %s] %.0fM cycles\n",
                     m.name.c_str(), app.name.c_str(),
                     static_cast<double>(out.back().totalCycles) / 1e6);
    }
    return out;
}

/**
 * Publish suite-aggregate startup metrics into the global stat
 * registry under prefix.* so CI can track the perf trajectory per PR
 * (--stats-json + dumpObservability writes them out):
 *
 *   prefix.apps                      applications in the suite
 *   prefix.cycles_to.insns_<N>      suite-mean cycles to the first
 *                                    1k/10k/.../100M instructions
 *   prefix.breakeven_cycles_mean    mean over apps that broke even
 *   prefix.apps_broke_even          how many did (given a reference)
 */
inline void
exportSuiteStartup(const std::string &prefix,
                   const std::vector<timing::StartupResult> &vm,
                   const std::vector<timing::StartupResult> *ref =
                       nullptr)
{
    StatRegistry &reg = StatRegistry::global();
    reg.set(prefix + ".apps", static_cast<double>(vm.size()),
            "applications in the suite");

    for (u64 n = 1000; n <= u64{100'000'000}; n *= 10) {
        double sum = 0.0;
        unsigned reached = 0;
        for (const timing::StartupResult &r : vm) {
            double c =
                analysis::cyclesToInsns(r, static_cast<double>(n));
            if (c >= 0.0) {
                sum += c;
                ++reached;
            }
        }
        if (reached == 0)
            break;
        std::string label = n >= 1'000'000
                                ? std::to_string(n / 1'000'000) + "m"
                                : std::to_string(n / 1000) + "k";
        reg.set(prefix + ".cycles_to.insns_" + label,
                sum / static_cast<double>(reached),
                "suite-mean cycles to reach this many instructions");
    }

    if (ref) {
        double sum = 0.0;
        unsigned broke = 0;
        for (std::size_t i = 0; i < vm.size() && i < ref->size(); ++i) {
            double b = analysis::breakevenCycle(vm[i], (*ref)[i]);
            if (b >= 0.0) {
                sum += b;
                ++broke;
            }
        }
        reg.set(prefix + ".breakeven_cycles_mean",
                broke ? sum / static_cast<double>(broke) : -1.0,
                "mean breakeven cycle over apps that broke even "
                "(negative: none did)");
        reg.set(prefix + ".apps_broke_even",
                static_cast<double>(broke),
                "apps whose cumulative insns caught the reference");
    }
}

} // namespace cdvm::bench

#endif // CDVM_BENCH_COMMON_HH
