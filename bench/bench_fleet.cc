/**
 * @file
 * Boot-storm benchmark: N guest contexts starting up on one
 * multi-tenant emulation server (src/fleet).
 *
 * The paper's startup problem, multiplied: when a fleet of contexts
 * arrives at once, every one of them wants BBT translation and SBT
 * optimization during exactly the window the others do too. This
 * harness boots the same fleet twice -- cold, and warm-started from
 * per-workload translation repositories captured by a priming run --
 * and reports the startup-latency distribution (admission to the
 * first `--milestone` retired instructions, on the fleet's
 * deterministic virtual cycle clock) plus the aggregate host-side
 * guest MIPS.
 *
 * The warm fleet boots from ONE shared zero-copy translation image:
 * the per-class priming captures are merged through the content-
 * addressed ImageBuilder (cross-class records deduped by guest-page
 * content) and every context installs borrowed views out of the same
 * mapping -- one parse, one physical copy, relocation-only installs.
 *
 * The binary self-gates: it exits non-zero unless every context
 * reaches the milestone, the warm fleet's p99 time-to-milestone is
 * strictly below the cold fleet's, and the shared-image installs
 * performed zero per-record body copies. The virtual clock makes the
 * latency gate exactly reproducible: host load can change the MIPS
 * number, never the latencies.
 *
 *   $ ./build/bench/bench_fleet --contexts=256 --arrival=storm
 *   $ ./build/bench/bench_fleet --arrival=poisson:8 --policy=loadratio
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/statreg.hh"
#include "dbt/image.hh"
#include "fleet/fleet.hh"

using namespace cdvm;

namespace
{

/**
 * Workload shape: short programs (tens of thousands of dynamic insns
 * per run) that halt and rerun until the context's target, so every
 * context retires its target regardless of slicing and the overshoot
 * past it is bounded by one run. Hot counts persist across reruns,
 * so the hot set crosses the SBT threshold within the first couple
 * million instructions -- inside the priming window, which is what
 * puts the superblocks into the warm repositories.
 */
workload::ProgramParams
fleetWorkloadShape()
{
    workload::ProgramParams p;
    p.numFuncs = 5;
    p.blocksPerFunc = 3;
    p.insnsPerBlock = 8;
    p.mainIterations = 2;
    return p;
}

/**
 * Prime one warm repository per workload class: run a solo tenant of
 * that class to prime_insns and capture its translations, hot counts
 * and branch profile, exactly what a production host would persist
 * from the previous boot.
 */
std::vector<std::shared_ptr<const dbt::Repository>>
primeWarmRepos(const fleet::FleetConfig &cfg, u64 prime_insns)
{
    std::vector<std::shared_ptr<const dbt::Repository>> repos;
    repos.reserve(cfg.workloads);
    const engine::EngineConfig tcfg =
        fleet::tenantEngineConfig(cfg.engineCfg);
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        workload::ProgramParams p = cfg.workloadParams;
        p.seed = fleet::deriveSeed(cfg.fleetSeed, w);
        const workload::Program prog = workload::generateProgram(p);

        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, tcfg);
        x86::CpuState cpu = prog.initialState();
        while (vm.stats().totalRetired() < prime_insns) {
            const x86::Exit e =
                vm.run(cpu, prime_insns - vm.stats().totalRetired());
            if (e == x86::Exit::Halted)
                cpu = prog.initialState();
            else if (e != x86::Exit::None) {
                std::fprintf(stderr,
                             "priming workload %u: unexpected exit\n",
                             w);
                break;
            }
        }
        repos.push_back(std::make_shared<const dbt::Repository>(
            vm.captureWarmStart()));
    }
    return repos;
}

/** Build stats of the one shared image the warm fleet boots from. */
struct SharedImage
{
    std::shared_ptr<const dbt::TransImage> image;
    u64 blobBytes = 0;
    u64 records = 0;
    u64 dedupeHits = 0;
    u64 evicted = 0;
};

/**
 * Merge every per-class priming capture into ONE content-addressed
 * image and verify-adopt it, exactly what a production fleet host
 * would persist and mmap: identical records across classes collapse
 * to one physical copy; a non-zero budget evicts the coldest records.
 */
SharedImage
buildSharedImage(const fleet::FleetConfig &cfg, u64 prime_insns,
                 u64 budget_bytes)
{
    const auto repos = primeWarmRepos(cfg, prime_insns);
    dbt::ImageBuilder builder(
        dbt::ImageBuilder::Options{budget_bytes, 1});
    for (const auto &r : repos)
        builder.add(*r);
    const std::vector<u8> blob = builder.build();

    SharedImage si;
    si.blobBytes = blob.size();
    si.dedupeHits = builder.dedupeHits();
    si.evicted = builder.evicted();
    auto img = std::make_shared<dbt::TransImage>();
    if (dbt::TransImage::adopt(blob, *img) != dbt::LoadError::None) {
        std::fprintf(stderr,
                     "shared image failed verification; warm fleet "
                     "will boot cold\n");
        return si;
    }
    si.records = img->recordCount();
    si.image = std::move(img);
    return si;
}

void
jsonSeries(std::FILE *f, const char *key, const fleet::FleetResult &r)
{
    std::fprintf(
        f,
        "    \"%s\": {\n"
        "      \"completed\": %u,\n"
        "      \"failed\": %u,\n"
        "      \"fleet_clock_cycles\": %llu,\n"
        "      \"retired_total\": %llu,\n"
        "      \"slices\": %llu,\n"
        "      \"peak_resident\": %u,\n"
        "      \"reached_milestone\": %u,\n"
        "      \"p50_time_to_milestone_cycles\": %.0f,\n"
        "      \"p99_time_to_milestone_cycles\": %.0f,\n"
        "      \"host_seconds\": %.4f,\n"
        "      \"guest_mips\": %.2f\n"
        "    }",
        key, r.completed, r.failed,
        static_cast<unsigned long long>(r.fleetClock),
        static_cast<unsigned long long>(r.totalRetired),
        static_cast<unsigned long long>(r.slices), r.peakResident,
        r.reachedMilestone, r.p50TimeToMilestone,
        r.p99TimeToMilestone, r.hostSeconds, r.guestMips);
}

bool
seriesSane(const char *name, const fleet::FleetResult &r,
           unsigned contexts)
{
    bool ok = true;
    if (r.completed != contexts || r.failed != 0) {
        std::fprintf(stderr,
                     "%s: %u/%u contexts completed, %u failed\n",
                     name, r.completed, contexts, r.failed);
        ok = false;
    }
    if (r.reachedMilestone != contexts) {
        std::fprintf(stderr,
                     "%s: only %u/%u contexts reached the milestone\n",
                     name, r.reachedMilestone, contexts);
        ok = false;
    }
    if (!(r.guestMips > 0.0)) {
        std::fprintf(stderr, "%s: non-positive aggregate MIPS\n",
                     name);
        ok = false;
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Boot-storm benchmark: cold vs warm startup of a "
            "multi-tenant emulation fleet");
    cli.flag("contexts", "256", "guest contexts to host");
    cli.flag("workloads", "8", "distinct workload classes");
    cli.flag("seed", "1", "fleet seed (derives every tenant seed)");
    cli.flag("policy", "rr", "scheduler policy: rr | loadratio");
    cli.flag("quantum", "20000", "retired-insn quantum per slice");
    cli.flag("arrival", "storm",
             "arrival curve: storm | step:<batch>@<cycles> | "
             "poisson:<rate-per-Mcycle>");
    cli.flag("milestone", "1000000",
             "startup milestone (retired insns per context)");
    cli.flag("target", "1000000",
             "retired insns after which a context completes");
    cli.flag("pool", "0",
             "shared background-SBT workers (0: synchronous)");
    cli.flag("image-budget", "0",
             "shared-image size budget in bytes (0: unbounded; the "
             "coldest records are evicted to fit)");
    cli.flag("json", "BENCH_fleet.json", "output report path");
    addObservabilityFlags(cli);
    cli.parse(argc, argv);
    applyObservabilityFlags(cli);

    fleet::FleetConfig cfg;
    cfg.contexts = static_cast<unsigned>(cli.num("contexts"));
    cfg.workloads = static_cast<unsigned>(cli.num("workloads"));
    cfg.fleetSeed = static_cast<u64>(cli.num("seed"));
    cfg.quantumInsns = static_cast<u64>(cli.num("quantum"));
    cfg.milestoneInsns = static_cast<u64>(cli.num("milestone"));
    cfg.targetInsns = static_cast<u64>(cli.num("target"));
    cfg.sharedPoolWorkers =
        static_cast<unsigned>(cli.num("pool"));
    cfg.workloadParams = fleetWorkloadShape();

    if (auto pol = fleet::schedPolicyByName(cli.str("policy")))
        cfg.policy = *pol;
    else {
        std::fprintf(stderr, "unknown policy '%s'\n",
                     cli.str("policy").c_str());
        return 2;
    }
    if (auto arr = fleet::ArrivalCurve::parse(cli.str("arrival")))
        cfg.arrival = *arr;
    else {
        std::fprintf(stderr, "unknown arrival curve '%s'\n",
                     cli.str("arrival").c_str());
        return 2;
    }

    std::printf("=== Boot storm: %u contexts (%u workload classes), "
                "%s arrival, %s scheduling ===\n",
                cfg.contexts, cfg.workloads,
                cfg.arrival.describe().c_str(),
                fleet::schedPolicyName(cfg.policy));

    // Cold series: every context translates everything itself.
    fleet::FleetServer cold(cfg);
    const fleet::FleetResult cr = cold.run();
    std::printf("cold: %u/%u done, p50 %.0f / p99 %.0f cycles to "
                "%lluk insns, %.1f MIPS aggregate (%.2fs host)\n",
                cr.completed, cfg.contexts, cr.p50TimeToMilestone,
                cr.p99TimeToMilestone,
                static_cast<unsigned long long>(cfg.milestoneInsns /
                                                1000),
                cr.guestMips, cr.hostSeconds);

    // Warm series: every context boots from ONE shared zero-copy
    // image merged out of the per-class priming captures, as a
    // production host would persist from the previous boot. Prime
    // past the target so the hot set is fully optimized.
    const SharedImage si = buildSharedImage(
        cfg, 2 * cfg.targetInsns,
        static_cast<u64>(cli.num("image-budget")));
    cfg.warmImage = si.image;
    std::printf("shared image: %llu records in %llu bytes "
                "(%llu cross-class dedupe hits, %llu evicted)\n",
                static_cast<unsigned long long>(si.records),
                static_cast<unsigned long long>(si.blobBytes),
                static_cast<unsigned long long>(si.dedupeHits),
                static_cast<unsigned long long>(si.evicted));
    fleet::FleetServer warm(cfg);
    const fleet::FleetResult wr = warm.run();
    std::printf("warm: %u/%u done, p50 %.0f / p99 %.0f cycles to "
                "%lluk insns, %.1f MIPS aggregate (%.2fs host)\n",
                wr.completed, cfg.contexts, wr.p50TimeToMilestone,
                wr.p99TimeToMilestone,
                static_cast<unsigned long long>(cfg.milestoneInsns /
                                                1000),
                wr.guestMips, wr.hostSeconds);

    // Shared-image install aggregates across the warm fleet.
    u64 warm_installed = 0, warm_copies = 0, warm_relocs = 0,
        warm_invalidated = 0;
    for (const fleet::ContextResult &c : wr.contexts) {
        warm_installed += c.warmInstalled;
        warm_copies += c.warmBodyCopies;
        warm_relocs += c.warmRelocations;
        warm_invalidated += c.warmInvalidated;
    }

    bool ok = seriesSane("cold", cr, cfg.contexts) &&
              seriesSane("warm", wr, cfg.contexts);
    if (!si.image) {
        std::printf("GATE FAILED: shared image did not build\n");
        ok = false;
    }
    if (warm_installed == 0 || warm_copies != 0) {
        std::printf("GATE FAILED: shared-image boots must install "
                    "(%llu did) with zero body copies (%llu seen)\n",
                    static_cast<unsigned long long>(warm_installed),
                    static_cast<unsigned long long>(warm_copies));
        ok = false;
    } else {
        std::printf("shared-image installs: %llu translations across "
                    "the fleet, 0 body copies, %llu relocations\n",
                    static_cast<unsigned long long>(warm_installed),
                    static_cast<unsigned long long>(warm_relocs));
    }
    if (!(wr.p99TimeToMilestone > 0.0 &&
          wr.p99TimeToMilestone < cr.p99TimeToMilestone)) {
        std::printf("GATE FAILED: warm p99 time-to-milestone (%.0f) "
                    "must be strictly below cold (%.0f)\n",
                    wr.p99TimeToMilestone, cr.p99TimeToMilestone);
        ok = false;
    } else {
        std::printf("gate: warm p99 %.0f < cold p99 %.0f "
                    "(%.2fx faster)\n",
                    wr.p99TimeToMilestone, cr.p99TimeToMilestone,
                    cr.p99TimeToMilestone / wr.p99TimeToMilestone);
    }

    std::FILE *f = std::fopen(cli.str("json").c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n",
                     cli.str("json").c_str());
        return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"contexts\": %u,\n"
                 "  \"workloads\": %u,\n"
                 "  \"seed\": %llu,\n"
                 "  \"arrival\": \"%s\",\n"
                 "  \"policy\": \"%s\",\n"
                 "  \"quantum_insns\": %llu,\n"
                 "  \"milestone_insns\": %llu,\n"
                 "  \"target_insns\": %llu,\n"
                 "  \"pool_workers\": %u,\n"
                 "  \"series\": {\n",
                 cfg.contexts, cfg.workloads,
                 static_cast<unsigned long long>(cfg.fleetSeed),
                 cfg.arrival.describe().c_str(),
                 fleet::schedPolicyName(cfg.policy),
                 static_cast<unsigned long long>(cfg.quantumInsns),
                 static_cast<unsigned long long>(cfg.milestoneInsns),
                 static_cast<unsigned long long>(cfg.targetInsns),
                 cfg.sharedPoolWorkers);
    jsonSeries(f, "cold", cr);
    std::fprintf(f, ",\n");
    jsonSeries(f, "warm", wr);
    std::fprintf(f,
                 "\n  },\n"
                 "  \"shared_image\": {\n"
                 "    \"blob_bytes\": %llu,\n"
                 "    \"records\": %llu,\n"
                 "    \"dedupe_hits\": %llu,\n"
                 "    \"evicted\": %llu,\n"
                 "    \"fleet_warm_installed\": %llu,\n"
                 "    \"fleet_warm_invalidated\": %llu,\n"
                 "    \"fleet_warm_body_copies\": %llu,\n"
                 "    \"fleet_warm_relocations\": %llu\n"
                 "  },\n"
                 "  \"gate\": {\n",
                 static_cast<unsigned long long>(si.blobBytes),
                 static_cast<unsigned long long>(si.records),
                 static_cast<unsigned long long>(si.dedupeHits),
                 static_cast<unsigned long long>(si.evicted),
                 static_cast<unsigned long long>(warm_installed),
                 static_cast<unsigned long long>(warm_invalidated),
                 static_cast<unsigned long long>(warm_copies),
                 static_cast<unsigned long long>(warm_relocs));
    std::fprintf(f,
                 "    \"cold_p99_cycles\": %.0f,\n"
                 "    \"warm_p99_cycles\": %.0f,\n"
                 "    \"speedup\": %.4f,\n"
                 "    \"ok\": %s\n"
                 "  }\n"
                 "}\n",
                 cr.p99TimeToMilestone, wr.p99TimeToMilestone,
                 wr.p99TimeToMilestone > 0.0
                     ? cr.p99TimeToMilestone / wr.p99TimeToMilestone
                     : 0.0,
                 ok ? "true" : "false");
    std::fclose(f);

    // Fold both series into the global registry (bench.fleet.*) so
    // --stats-json carries the fleet trajectory per PR.
    StatRegistry local_cold, local_warm;
    cold.exportStats(local_cold);
    warm.exportStats(local_warm);
    StatRegistry::global().merge(local_cold, "bench.fleet.cold");
    StatRegistry::global().merge(local_warm, "bench.fleet.warm");
    dumpObservability();
    return ok ? 0 : 1;
}
