/**
 * @file
 * Table 2: machine configurations.
 *
 * Prints the four simulated machines with their emulation strategies
 * and the shared pipeline / memory-hierarchy parameters.
 */

#include "bench_common.hh"

using namespace cdvm;
using timing::ColdMode;
using timing::MachineConfig;

namespace
{

std::string
coldDesc(const MachineConfig &m)
{
    switch (m.cold) {
      case ColdMode::Native:
        return "hardware x86 decoders, no optimization";
      case ColdMode::Interpret:
        return "software interpretation";
      case ColdMode::BbtCode:
        return m.kind == timing::MachineKind::VmBe
                   ? "BBT assisted by the backend HW decoder"
                   : "simple software BBT, no opts";
      case ColdMode::X86Direct:
        return "hardware dual-mode decoders";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Table 2: machine configurations");
    cli.parse(argc, argv);

    std::printf("=== Table 2: machine configurations ===\n\n");

    TextTable t({"machine", "cold x86 code", "hotspot x86 code",
                 "BBT cyc/insn", "hot threshold"});
    for (const MachineConfig &m : MachineConfig::table2()) {
        t.addRow({m.name, coldDesc(m),
                  m.hasSbt ? "software hotspot optimization (SBT)"
                           : "no optimization",
                  fmtDouble(m.costs.bbtCyclesPerInsn, 0),
                  m.hasSbt ? fmtCount(m.hotThreshold) : "-"});
    }
    std::printf("%s\n", t.render().c_str());

    const MachineConfig ref = MachineConfig::refSuperscalar();
    const timing::PipelineParams &p = ref.pipeline;
    const memsys::HierarchyParams &mem = ref.memory;

    std::printf("shared pipeline resources:\n");
    std::printf("  %u issue queue slots, %u ROB entries, %u LD queue "
                "slots, %u ST queue slots\n",
                p.issueSlots, p.robEntries, p.ldqSlots, p.stqSlots);
    std::printf("  %uB fetch width; %u-wide decode, rename, issue and "
                "retire; %u physical registers\n",
                p.fetchBytes, p.width, p.prfEntries);
    std::printf("shared memory hierarchy:\n");
    std::printf("  L1 I-cache: %uKB, %u-way, %uB lines, latency %llu "
                "cycles\n",
                mem.l1i.sizeBytes / 1024, mem.l1i.assoc,
                mem.l1i.lineBytes,
                static_cast<unsigned long long>(mem.l1i.latency));
    std::printf("  L1 D-cache: %uKB, %u-way, %uB lines, latency %llu "
                "cycles\n",
                mem.l1d.sizeBytes / 1024, mem.l1d.assoc,
                mem.l1d.lineBytes,
                static_cast<unsigned long long>(mem.l1d.latency));
    std::printf("  L2: %uMB, %u-way, %uB lines, latency %llu cycles\n",
                mem.l2.sizeBytes / (1024 * 1024), mem.l2.assoc,
                mem.l2.lineBytes,
                static_cast<unsigned long long>(mem.l2.latency));
    std::printf("  main memory latency: %llu CPU cycles\n",
                static_cast<unsigned long long>(mem.memLatency));
    return 0;
}
