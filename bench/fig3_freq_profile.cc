/**
 * @file
 * Figure 3: Winstone2004 instruction execution frequency profile.
 *
 * For 100 M-instruction traces averaged over the ten applications:
 * per execution-count decade, the number of static x86 instructions
 * (left axis, thousands) and the share of dynamic instructions (right
 * axis, %). Also prints the Section 3.2 aggregates: M_BBT, M_SBT at
 * the 8000 hot threshold, and the Eq. 1 overhead split.
 */

#include "analysis/freq_profile.hh"
#include "analysis/model.hh"
#include "bench_common.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    Cli cli("Figure 3: instruction execution frequency profile");
    u64 insns = bench::standardSetup(cli, argc, argv, 100'000'000);

    auto apps = workload::winstone2004(insns);

    constexpr unsigned NBUCKETS = 10;
    std::vector<double> static_avg(NBUCKETS, 0.0);
    std::vector<double> dyn_avg(NBUCKETS, 0.0);
    double mbbt = 0.0, msbt = 0.0;

    for (const auto &app : apps) {
        std::fprintf(stderr, "  profiling %s...\n", app.name.c_str());
        analysis::FreqProfile p = analysis::profileTrace(app.trace);
        for (unsigned k = 0; k < NBUCKETS; ++k) {
            static_avg[k] += static_cast<double>(
                p.buckets[k].staticInsns);
            dyn_avg[k] += p.buckets[k].dynamicShare;
        }
        mbbt += static_cast<double>(p.staticInsnsTouched);
        msbt += static_cast<double>(p.staticAtOrAbove(8000));
    }
    const double n = static_cast<double>(apps.size());
    mbbt /= n;
    msbt /= n;

    std::printf("=== Figure 3: instruction execution frequency profile "
                "(%llu M x86 instruction traces) ===\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    TextTable t({"exec count", "static x86 insns (x1000)",
                 "dynamic distribution (%)"});
    u64 edge = 1;
    for (unsigned k = 0; k < NBUCKETS; ++k) {
        if (static_avg[k] / n < 0.5 && dyn_avg[k] / n < 0.0005) {
            edge *= 10;
            continue;
        }
        t.addRow({fmtCount(edge) + "+",
                  fmtDouble(static_avg[k] / n / 1000.0, 1),
                  fmtDouble(100.0 * dyn_avg[k] / n, 1)});
        edge *= 10;
    }
    std::printf("%s\n", t.render().c_str());

    std::printf("hot threshold (Eq. 2): N = 1200 / 0.15 = %.0f\n",
                analysis::paperHotThreshold());
    std::printf("M_BBT (static insns touched):      %.0f K   "
                "(paper: ~150 K)\n",
                mbbt / 1000.0);
    std::printf("M_SBT (static insns >= threshold): %.1f K   "
                "(paper: ~3 K)\n",
                msbt / 1000.0);

    analysis::Eq1Breakdown eq1 = analysis::paperEq1(mbbt, msbt);
    std::printf("\nEq. 1 with measured M values:\n");
    std::printf("  BBT component: %.2f M native instructions "
                "(paper: 15.75 M)\n",
                eq1.bbtComponent / 1e6);
    std::printf("  SBT component: %.2f M native instructions "
                "(paper: 5.02 M)\n",
                eq1.sbtComponent / 1e6);
    std::printf("  => BBT causes the major translation overhead: %s\n",
                eq1.bbtComponent > eq1.sbtComponent ? "yes" : "NO");
    return 0;
}
