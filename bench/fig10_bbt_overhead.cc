/**
 * @file
 * Figure 10: BBT translation overhead and emulation cycle time for
 * the VM.be scheme (first 100 M x86 instructions per application).
 *
 * Per application: the percentage of VM cycles spent performing BBT
 * translation (paper average 2.7%, at worst ~5%) and executing BBT
 * translations (paper average 35%); plus the SBT translation (3.2%)
 * and SBT emulation (59%) shares and the hotspot coverage (63%).
 * Also prints the VM.soft BBT overhead for the Section 5.3 comparison
 * (9.9% -> 2.7%).
 */

#include "bench_common.hh"

using namespace cdvm;
using timing::CycleCat;

int
main(int argc, char **argv)
{
    Cli cli("Figure 10: BBT overhead and emulation time (VM.be)");
    u64 insns = bench::standardSetup(cli, argc, argv, 100'000'000);

    auto apps = workload::winstone2004(insns);
    auto be = bench::runMachine(timing::MachineConfig::vmBe(), apps);
    auto soft = bench::runMachine(timing::MachineConfig::vmSoft(), apps);

    std::printf("=== Figure 10: BBT translation overhead & emulation "
                "cycle time (VM.be, %llu M insns) ===\n\n",
                static_cast<unsigned long long>(insns / 1'000'000));

    TextTable t({"app", "BBT overhead %", "BBT emu %", "SBT xlate %",
                 "SBT emu %", "hotspot coverage %"});
    double sum[5] = {0, 0, 0, 0, 0};
    for (std::size_t i = 0; i < apps.size(); ++i) {
        const timing::StartupResult &r = be[i];
        double v[5] = {100 * r.catFraction(CycleCat::BbtXlate),
                       100 * r.catFraction(CycleCat::BbtExec),
                       100 * r.catFraction(CycleCat::SbtXlate),
                       100 * r.catFraction(CycleCat::SbtExec),
                       100 * r.hotspotCoverage()};
        for (int k = 0; k < 5; ++k)
            sum[k] += v[k];
        t.addRow({apps[i].name, fmtDouble(v[0], 1), fmtDouble(v[1], 1),
                  fmtDouble(v[2], 1), fmtDouble(v[3], 1),
                  fmtDouble(v[4], 1)});
    }
    const double n = static_cast<double>(apps.size());
    t.addRow({"Average", fmtDouble(sum[0] / n, 1),
              fmtDouble(sum[1] / n, 1), fmtDouble(sum[2] / n, 1),
              fmtDouble(sum[3] / n, 1), fmtDouble(sum[4] / n, 1)});
    std::printf("%s\n", t.render().c_str());

    double soft_bbt = 0;
    for (const auto &r : soft)
        soft_bbt += 100 * r.catFraction(CycleCat::BbtXlate);
    soft_bbt /= n;

    std::printf("paper targets: BBT overhead avg 2.7%% (<=5%% worst); "
                "BBT emu avg 35%%;\n");
    std::printf("               SBT xlate 3.2%%; SBT emu 59%%; hotspot "
                "coverage 63%%\n\n");
    std::printf("VM.soft BBT translation overhead: %.1f%% of runtime "
                "(paper: 9.9%%)\n",
                soft_bbt);
    std::printf("VM.be reduces it to %.1f%% -- a %.1fx reduction "
                "(paper: 9.9%% -> 2.7%%)\n",
                sum[0] / n, soft_bbt / (sum[0] / n));
    return 0;
}
