/**
 * @file
 * Observability overhead benchmark: what do the always-on profiling
 * layers (sampling profiler + flight recorder) cost in host guest-MIPS,
 * and what latency does the async SBT pipeline actually see?
 *
 * The overhead gate runs the cold-heavy workload (vm.interp with the
 * hot threshold out of reach -- the worst case for per-event sink
 * cost, since every block is a separate small event) with profiling
 * fully off versus the default-on configuration, interleaving N
 * off/on trials so host noise cannot fake a regression; the gate
 * metric is the most favorable trial's overhead (a real cost shifts
 * every trial, a noise spike only some). CI asserts the default-on
 * cost stays under GATE_MAX_OVERHEAD.
 *
 * The latency section runs the async pipeline (vm.soft.async) and
 * reports the p50/p95/p99 of enqueue->install, from the engine's own
 * LogHistograms -- the telemetry this PR adds.
 *
 *   $ ./build/bench/bench_obs --json=BENCH_obs.json \
 *         --profile-out=profile.json --flight-dump=flight.txt
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"

using namespace cdvm;

namespace
{

/** Default-on profiling must cost less than this on cold-heavy. */
constexpr double GATE_MAX_OVERHEAD = 0.02;

struct RunStat
{
    double seconds = 0.0;
    u64 retired = 0;
    double mips = 0.0;
};

workload::Program
mixProgram()
{
    // Same standard mix as bench_host_mips: calls, loops, indirect
    // branches, byte/16-bit traffic and guarded divides.
    workload::ProgramParams pp;
    pp.seed = 20260807;
    pp.numFuncs = 8;
    pp.blocksPerFunc = 5;
    pp.insnsPerBlock = 8;
    pp.mainIterations = 1000000; // effectively: run until the budget
    return workload::generateProgram(pp);
}

/** Turn the continuous-profiling layers fully off. */
vmm::VmmConfig
obsOff(vmm::VmmConfig cfg)
{
    cfg.profileSamplePeriod = 0;
    cfg.flightRecorderEvents = 0;
    return cfg;
}

/** Emulate `insns` guest instructions under cfg; time the host. */
RunStat
measure(const vmm::VmmConfig &cfg, const workload::Program &prog,
        u64 insns)
{
    x86::Memory mem;
    prog.loadInto(mem);
    vmm::Vmm vm(mem, cfg);
    x86::CpuState cpu = prog.initialState();

    const auto t0 = std::chrono::steady_clock::now();
    u64 done = 0;
    while (done < insns) {
        x86::Exit e = vm.run(cpu, insns - done);
        done = vm.stats().totalRetired();
        if (e == x86::Exit::Halted) {
            cpu = prog.initialState();
        } else if (e != x86::Exit::None) {
            std::fprintf(stderr, "unexpected exit %d under %s\n",
                         static_cast<int>(e), cfg.name.c_str());
            std::exit(1);
        }
    }
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;

    RunStat r;
    r.seconds = dt.count();
    r.retired = done;
    r.mips = r.seconds > 0.0
                 ? static_cast<double>(done) / r.seconds / 1e6
                 : 0.0;
    return r;
}

/**
 * Best-of-N with interleaved trials: off/on alternate within each
 * trial, so a host frequency drift hits both modes equally instead of
 * biasing whichever mode ran last.
 *
 * @return the minimum per-trial overhead -- the gate metric. A real
 * regression shifts every interleaved trial, while a noise spike
 * (scheduler preemption, thermal dip) lands on single trials; taking
 * the most favorable trial makes the gate robust to noisy hosts
 * without blinding it to genuine cost.
 */
double
measureInterleaved(const vmm::VmmConfig &cfg,
                   const workload::Program &prog, u64 insns,
                   unsigned trials, RunStat &best_off, RunStat &best_on)
{
    const vmm::VmmConfig off = obsOff(cfg);
    double min_overhead = 0.0;
    for (unsigned t = 0; t < trials; ++t) {
        RunStat ro = measure(off, prog, insns);
        if (ro.mips > best_off.mips)
            best_off = ro;
        RunStat rn = measure(cfg, prog, insns);
        if (rn.mips > best_on.mips)
            best_on = rn;
        const double trial =
            rn.mips > 0.0 ? ro.mips / rn.mips - 1.0 : 0.0;
        if (t == 0 || trial < min_overhead)
            min_overhead = trial;
    }
    return min_overhead;
}

void
jsonHist(std::FILE *f, const char *key, const LogHistogram &h)
{
    std::fprintf(f,
                 "    \"%s\": {\"count\": %.0f, \"p50\": %.0f, "
                 "\"p95\": %.0f, \"p99\": %.0f}",
                 key, h.totalWeight(), h.percentile(50),
                 h.percentile(95), h.percentile(99));
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Continuous-profiling overhead (sampling profiler + "
            "flight recorder vs fully off) and async-SBT pipeline "
            "latency percentiles; writes a JSON report for the CI "
            "perf-smoke gate.");
    cli.flag("json", "BENCH_obs.json", "output report path");
    cli.flag("trials", "5", "interleaved best-of-N trials per mode");
    cli.flag("profile-out", "",
             "write the hotness heatmap of the vm.soft run here");
    cli.flag("flight-dump", "",
             "write the flight-recorder dump of the vm.soft run here");
    u64 insns = bench::standardSetup(cli, argc, argv, 3'000'000);
    const unsigned trials =
        static_cast<unsigned>(std::max<i64>(1, cli.num("trials")));

    workload::Program prog = mixProgram();

    // The overhead matrix: cold-heavy is the gate (every block entry
    // is its own event -- maximum sink calls per retired instruction);
    // vm.soft shows the steady-state cost once translations cover the
    // working set.
    struct Point
    {
        std::string key;
        vmm::VmmConfig cfg;
        bool gate;
    };
    std::vector<Point> points;
    {
        vmm::VmmConfig cold = engine::EngineConfig::vmInterp();
        cold.name = "vm.interp.coldheavy";
        cold.interpHotThreshold = u64{1} << 40;
        points.push_back({"coldheavy", cold, true});
        points.push_back(
            {"vm.soft", engine::EngineConfig::vmSoft(), false});
    }

    std::FILE *f = std::fopen(cli.str("json").c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n",
                     cli.str("json").c_str());
        return 1;
    }
    std::fprintf(
        f, "{\n  \"instructions\": %llu,\n  \"trials\": %u,\n"
           "  \"overhead\": {\n",
        static_cast<unsigned long long>(insns), trials);

    StatRegistry &reg = StatRegistry::global();
    double gate_overhead = 0.0;
    bool first = true;
    for (const Point &p : points) {
        RunStat off, on;
        const double min_overhead =
            measureInterleaved(p.cfg, prog, insns, trials, off, on);
        const double overhead =
            on.mips > 0.0 ? off.mips / on.mips - 1.0 : 0.0;
        std::printf("[%-12s] off: %8.2f MIPS  on: %8.2f MIPS  "
                    "overhead: %+.2f%% (best trial %+.2f%%)\n",
                    p.key.c_str(), off.mips, on.mips,
                    100.0 * overhead, 100.0 * min_overhead);
        if (p.gate)
            gate_overhead = min_overhead;

        std::fprintf(f,
                     "%s    \"%s\": {\"mips_off\": %.3f, "
                     "\"mips_on\": %.3f, \"overhead\": %.5f, "
                     "\"overhead_min\": %.5f}",
                     first ? "" : ",\n", p.key.c_str(), off.mips,
                     on.mips, overhead, min_overhead);
        first = false;

        reg.set("bench.obs." + p.key + ".mips_off", off.mips,
                "host guest-MIPS, profiling layers off");
        reg.set("bench.obs." + p.key + ".mips_on", on.mips,
                "host guest-MIPS, default-on profiling");
        reg.set("bench.obs." + p.key + ".overhead", overhead,
                "relative cost of default-on profiling");
        reg.set("bench.obs." + p.key + ".overhead_min", min_overhead,
                "most favorable interleaved trial (gate metric)");
    }
    std::fprintf(f, "\n  },\n");

    // Async pipeline latency: one profiled vm.soft.async run, then
    // read the per-job histograms the drain path populated.
    {
        vmm::VmmConfig acfg = engine::EngineConfig::vmSoftAsync();
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, acfg);
        x86::CpuState cpu = prog.initialState();
        u64 done = 0;
        while (done < insns) {
            x86::Exit e = vm.run(cpu, insns - done);
            done = vm.stats().totalRetired();
            if (e == x86::Exit::Halted)
                cpu = prog.initialState();
            else if (e != x86::Exit::None)
                break;
        }
        const engine::AsyncSbtEngine *async = vm.asyncSbtEngine();
        std::fprintf(f, "  \"async_latency_ns\": {\n");
        jsonHist(f, "queue", async->queueLatency());
        std::fprintf(f, ",\n");
        jsonHist(f, "optimize", async->optimizeLatency());
        std::fprintf(f, ",\n");
        jsonHist(f, "drain", async->drainLatency());
        std::fprintf(f, ",\n");
        jsonHist(f, "total", async->totalLatency());
        std::fprintf(f, "\n  },\n");
        std::printf("[async       ] %0.f jobs drained, total latency "
                    "p50 %.0f ns, p99 %.0f ns\n",
                    async->totalLatency().totalWeight(),
                    async->totalLatency().percentile(50),
                    async->totalLatency().percentile(99));
        reg.set("bench.obs.async.total_p50_ns",
                async->totalLatency().percentile(50),
                "async SBT enqueue->install p50 (ns)");
        reg.set("bench.obs.async.total_p99_ns",
                async->totalLatency().percentile(99),
                "async SBT enqueue->install p99 (ns)");
    }

    // Artifact run: one vm.soft run with everything on, exporting the
    // heatmap and the flight dump for CI to archive.
    if (!cli.str("profile-out").empty() ||
        !cli.str("flight-dump").empty()) {
        vmm::VmmConfig scfg = engine::EngineConfig::vmSoft();
        x86::Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, scfg);
        x86::CpuState cpu = prog.initialState();
        u64 done = 0;
        while (done < insns) {
            x86::Exit e = vm.run(cpu, insns - done);
            done = vm.stats().totalRetired();
            if (e == x86::Exit::Halted)
                cpu = prog.initialState();
            else if (e != x86::Exit::None)
                break;
        }
        if (!cli.str("profile-out").empty()) {
            vm.profiler().writeJson(cli.str("profile-out"));
            std::printf("wrote %s (%llu samples over %zu pages)\n",
                        cli.str("profile-out").c_str(),
                        static_cast<unsigned long long>(
                            vm.profiler().samples()),
                        vm.profiler().distinctPages());
        }
        if (!cli.str("flight-dump").empty()) {
            vm.dumpFlight(cli.str("flight-dump"));
            std::printf("wrote %s (%zu events)\n",
                        cli.str("flight-dump").c_str(),
                        vm.flightRecorder().size());
        }
    }

    std::fprintf(f,
                 "  \"gate\": {\"workload\": \"coldheavy\", "
                 "\"overhead\": %.5f, \"threshold\": %.2f}\n}\n",
                 gate_overhead, GATE_MAX_OVERHEAD);
    std::fclose(f);
    dumpObservability();

    if (gate_overhead >= GATE_MAX_OVERHEAD) {
        std::fprintf(stderr,
                     "FAIL: default-on profiling costs %.2f%% >= "
                     "%.2f%% on the cold-heavy workload\n",
                     100.0 * gate_overhead, 100.0 * GATE_MAX_OVERHEAD);
        return 1;
    }
    std::printf("\noverhead gate: %.2f%% < %.2f%%  OK\n",
                100.0 * gate_overhead, 100.0 * GATE_MAX_OVERHEAD);
    return 0;
}
