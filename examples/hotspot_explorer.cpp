/**
 * @file
 * Hotspot explorer: watch the DBT pipeline work on a loop kernel.
 *
 * Shows, for a real x86 loop: the decoded instructions, the cracked
 * micro-ops (BBT output), and the optimized superblock after dead-flag
 * elimination and macro-op fusion -- the '+' prefix marks a fused
 * macro-op head.
 *
 *   $ ./build/examples/hotspot_explorer
 */

#include <cstdio>

#include "dbt/bbt.hh"
#include "dbt/sbt.hh"
#include "vmm/vmm.hh"
#include "x86/asm.hh"
#include "x86/decoder.hh"

using namespace cdvm;
using namespace cdvm::x86;

int
main()
{
    // A string-hash style kernel: load, mix, accumulate, loop.
    Assembler as(0x00400000);
    auto loop = as.newLabel();
    as.movRI(EBX, 0x00800000); // data pointer
    as.movRI(ECX, 5000);       // trip count
    as.movRI(EAX, 0);          // hash
    as.bind(loop);
    as.movRM(EDX, MemRef{EBX, REG_NONE, 1, 0});
    as.imulRRI(EAX, EAX, 31);
    as.aluRR(Op::Xor, EAX, EDX);
    as.aluRI(Op::Add, EBX, 4);
    as.aluRR(Op::And, EDX, EAX);
    as.dec(ECX);
    as.jcc(Cond::NE, loop);
    as.hlt();
    std::vector<u8> image = as.finalize();

    Memory mem;
    mem.writeBlock(0x00400000, image);

    // --- 1. the x86 view -----------------------------------------------
    std::printf("=== x86 instructions ===\n");
    Addr pc = 0x00400000;
    while (pc < 0x00400000 + image.size()) {
        u8 win[MAX_INSN_LEN + 1];
        mem.fetchWindow(pc, win, sizeof(win));
        DecodeResult dr =
            decode(std::span<const u8>(win, sizeof(win)), pc);
        if (!dr.ok)
            break;
        std::printf("  %08llx  %s\n",
                    static_cast<unsigned long long>(pc),
                    dr.insn.toString().c_str());
        pc = dr.insn.nextPc();
    }

    // --- 2. BBT: straight cracking -------------------------------------
    dbt::BasicBlockTranslator bbt(mem);
    auto loop_block = bbt.translate(as.labelAddr(loop));
    std::printf("\n=== BBT translation of the loop block (%u x86 "
                "insns -> %zu micro-ops, %u encoded bytes) ===\n",
                loop_block->numX86Insns, loop_block->uops.size(),
                loop_block->codeBytes);
    for (const uops::Uop &u : loop_block->uops)
        std::printf("  %s\n", u.toString().c_str());

    // --- 3. run the VM until the loop gets hot, then show the SBT ------
    CpuState cpu;
    cpu.eip = 0x00400000;
    cpu.regs[ESP] = 0x7fff0000;
    vmm::VmmConfig cfg;
    cfg.hotThreshold = 100;
    vmm::Vmm vm(mem, cfg);
    vm.run(cpu, 10'000'000);

    const dbt::Translation *sb = nullptr;
    vm.translations().forEach([&](const dbt::Translation &t) {
        if (t.kind == dbt::TransKind::Superblock &&
            (!sb || t.execCount > sb->execCount)) {
            sb = &t;
        }
    });
    if (!sb) {
        std::printf("\nno superblock formed (loop too cold?)\n");
        return 1;
    }

    unsigned pairs = 0;
    for (const uops::Uop &u : sb->uops)
        pairs += u.fusedHead ? 1 : 0;
    std::printf("\n=== SBT-optimized superblock (entry 0x%llx, executed "
                "%llu times) ===\n",
                static_cast<unsigned long long>(sb->entryPc),
                static_cast<unsigned long long>(sb->execCount));
    std::printf("(%u x86 insns -> %zu micro-ops, %u fused macro-op "
                "pairs, %u encoded bytes)\n",
                sb->numX86Insns, sb->uops.size(), pairs, sb->codeBytes);
    for (const uops::Uop &u : sb->uops)
        std::printf("  %s\n", u.toString().c_str());

    std::printf("\n'+' marks a macro-op head fused with the following "
                "micro-op; '!f' marks a\nlive flag write (dead flag "
                "writes were eliminated by the optimizer).\n");
    return 0;
}
