/**
 * @file
 * Quickstart: assemble a small x86 program, run it under the full
 * co-designed VM (cold execution -> hotspot detection -> SBT), and
 * compare with the reference interpreter.
 *
 * Any of the engine's named configurations can drive the run:
 *
 *   $ ./build/examples/quickstart --config=vm.soft   # software BBT
 *   $ ./build/examples/quickstart --config=vm.soft.tmpl # template BBT
 *   $ ./build/examples/quickstart --config=vm.fe    # x86-mode + BBB
 *   $ ./build/examples/quickstart --config=vm.be    # XLTx86 HAloop
 *   $ ./build/examples/quickstart --config=vm.dual  # HAloop + BBB
 *
 * With the observability flags the run also exports the VM-wide stats
 * registry and a Chrome-trace timeline of the emulation phases:
 *
 *   $ ./build/examples/quickstart --stats-json=out.json \
 *         --trace-out=trace.json
 *
 * With --contexts > 1 the quickstart instead boots a multi-tenant
 * fleet (src/fleet): N contexts admitted along --arrival, time-sliced
 * by --policy, cold and then warm-started from per-workload
 * repositories primed in-process:
 *
 *   $ ./build/examples/quickstart --contexts=64 --arrival=poisson:8
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "analysis/startup_curve.hh"
#include "x86/decode_cache.hh"
#include "common/cli.hh"
#include "common/statreg.hh"
#include "engine/engine_config.hh"
#include "fleet/fleet.hh"
#include "serve/image_client.hh"
#include "serve/image_host.hh"
#include "timing/startup_sim.hh"
#include "vmm/vmm.hh"
#include "workload/winstone.hh"
#include "x86/asm.hh"
#include "x86/interp.hh"

using namespace cdvm;
using namespace cdvm::x86;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onStopSignal(int)
{
    g_stop = 1;
}

/** Timing-machine preset matching an engine configuration. */
timing::MachineConfig
machineFor(const std::string &name, bool warm_start)
{
    timing::MachineConfig m = timing::MachineConfig::vmSoft();
    if (name == "vm.fe")
        m = timing::MachineConfig::vmFe();
    else if (name == "vm.be" || name == "vm.dual")
        m = timing::MachineConfig::vmBe();
    else if (name == "vm.be.async")
        m = timing::MachineConfig::vmBeAsync();
    else if (name == "vm.soft.async")
        m = timing::MachineConfig::vmSoftAsync();
    else if (name == "vm.soft.tmpl" || name == "vm.be.tmpl")
        m = timing::MachineConfig::vmSoftTmpl();
    else if (name == "vm.interp")
        m = timing::MachineConfig::vmInterp();
    // --load-cache also warm-starts the timing model: translations are
    // installed from the repository before the first instruction.
    if (warm_start) {
        m.warmStart = true;
        m.name += ".warm";
    }
    return m;
}

/**
 * Fleet mode (--contexts > 1): boot a multi-tenant storm of the
 * chosen engine configuration, cold and then warm-started from
 * per-workload repositories primed in-process, and report the
 * startup-latency distribution on the fleet's virtual cycle clock.
 */
int
runFleet(const Cli &cli, const vmm::VmmConfig &base)
{
    fleet::FleetConfig cfg;
    cfg.contexts = static_cast<unsigned>(cli.num("contexts"));
    cfg.workloads = cfg.contexts < 4 ? cfg.contexts : 4;
    cfg.engineCfg = base;
    workload::ProgramParams shape;
    shape.numFuncs = 5;
    shape.blocksPerFunc = 3;
    shape.insnsPerBlock = 8;
    shape.mainIterations = 2;
    cfg.workloadParams = shape;
    cfg.targetInsns = 500'000;
    cfg.milestoneInsns = 500'000;

    auto arr = fleet::ArrivalCurve::parse(cli.str("arrival"));
    if (!arr) {
        std::fprintf(stderr, "unknown --arrival '%s'\n",
                     cli.str("arrival").c_str());
        return 1;
    }
    cfg.arrival = *arr;
    auto pol = fleet::schedPolicyByName(cli.str("policy"));
    if (!pol) {
        std::fprintf(stderr, "unknown --policy '%s'\n",
                     cli.str("policy").c_str());
        return 1;
    }
    cfg.policy = *pol;

    std::printf("booting a %u-context fleet (%s arrival, %s "
                "scheduling, %s tenants)...\n",
                cfg.contexts, cfg.arrival.describe().c_str(),
                fleet::schedPolicyName(cfg.policy),
                base.name.c_str());

    fleet::FleetServer cold(cfg);
    const fleet::FleetResult cr = cold.run();
    std::printf("cold: %u/%u contexts done, p50/p99 to %lluk insns = "
                "%.0f / %.0f cycles, %.1f MIPS aggregate\n",
                cr.completed, cfg.contexts,
                static_cast<unsigned long long>(
                    cfg.milestoneInsns / 1000),
                cr.p50TimeToMilestone, cr.p99TimeToMilestone,
                cr.guestMips);

    // Warm series: prime one repository per workload class.
    const engine::EngineConfig tcfg =
        fleet::tenantEngineConfig(cfg.engineCfg);
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        workload::ProgramParams p = cfg.workloadParams;
        p.seed = fleet::deriveSeed(cfg.fleetSeed, w);
        const workload::Program prog = workload::generateProgram(p);
        Memory mem;
        prog.loadInto(mem);
        vmm::Vmm vm(mem, tcfg);
        CpuState cpu = prog.initialState();
        while (vm.stats().totalRetired() < 2 * cfg.targetInsns) {
            const Exit e = vm.run(cpu, 2 * cfg.targetInsns -
                                           vm.stats().totalRetired());
            if (e == Exit::Halted)
                cpu = prog.initialState();
            else if (e != Exit::None)
                break;
        }
        cfg.warmRepos.push_back(
            std::make_shared<const dbt::Repository>(
                vm.captureWarmStart()));
    }
    fleet::FleetServer warm(cfg);
    const fleet::FleetResult wr = warm.run();
    std::printf("warm: %u/%u contexts done, p50/p99 to %lluk insns = "
                "%.0f / %.0f cycles, %.1f MIPS aggregate "
                "(p99 %.2fx faster)\n",
                wr.completed, cfg.contexts,
                static_cast<unsigned long long>(
                    cfg.milestoneInsns / 1000),
                wr.p50TimeToMilestone, wr.p99TimeToMilestone,
                wr.guestMips,
                wr.p99TimeToMilestone > 0.0
                    ? cr.p99TimeToMilestone / wr.p99TimeToMilestone
                    : 0.0);

    StatRegistry local_cold, local_warm;
    cold.exportStats(local_cold);
    warm.exportStats(local_warm);
    StatRegistry &reg = StatRegistry::global();
    reg.merge(local_cold, "fleet_demo.cold");
    reg.merge(local_warm, "fleet_demo.warm");
    dumpObservability();

    const bool ok = cr.completed == cfg.contexts &&
                    wr.completed == cfg.contexts &&
                    cr.failed == 0 && wr.failed == 0;
    std::printf("\nevery context completed with the reference "
                "architected state: %s\n",
                ok ? "YES" : "NO");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Cli cli("Run a small program under the co-designed VM and the "
            "reference interpreter, then a startup-transient timing "
            "simulation; optionally export stats and a phase trace.");
    cli.flag("config", "vm.soft",
             "engine configuration: vm.soft|vm.fe|vm.be|vm.dual|"
             "vm.interp|vm.soft.tmpl|vm.be.tmpl|vm.soft.async|"
             "vm.be.async");
    cli.flag("load-cache", "",
             "warm start: load a translation repository saved by a "
             "previous run (stale entries fall back to cold)");
    cli.flag("save-cache", "",
             "save the translation repository after the run");
    cli.flag("cache-budget", "0",
             "size budget in bytes for the saved translation image "
             "(0: unbounded; the coldest records are evicted to fit)");
    cli.flag("profile-out", "",
             "write the guest-hotness heatmap (sampling profiler) as "
             "JSON");
    cli.flag("flight-dump", "",
             "write the flight-recorder ring here after the run (the "
             "same path receives flush-storm and abnormal-exit dumps)");
    cli.flag("snapshot-every", "0",
             "take an interval snapshot of the vmm.* counters every N "
             "retired instructions (0 = off)");
    cli.flag("serve-image", "",
             "after the run, publish the captured translation image "
             "on this Unix-domain socket and serve it to sibling "
             "processes until SIGINT/SIGTERM");
    cli.flag("connect-image", "",
             "warm start by mapping the image served by an image "
             "host daemon at this socket (falls back to a cold boot "
             "when the daemon is unreachable)");
    cli.flag("contexts", "1",
             "host this many guest contexts as a multi-tenant fleet "
             "(1 = the classic single-VM quickstart)");
    cli.flag("arrival", "storm",
             "fleet admission curve: storm | step:<batch>@<cycles> | "
             "poisson:<rate-per-Mcycle>");
    cli.flag("policy", "rr",
             "fleet scheduling policy: rr | loadratio");
    addObservabilityFlags(cli);
    cli.parse(argc, argv);
    applyObservabilityFlags(cli);

    const std::string cfg_name = cli.str("config");
    std::optional<vmm::VmmConfig> named =
        engine::EngineConfig::byName(cfg_name);
    if (!named) {
        std::fprintf(stderr, "unknown --config '%s'; known:",
                     cfg_name.c_str());
        for (const std::string &n : engine::EngineConfig::names())
            std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }

    if (cli.num("contexts") > 1)
        return runFleet(cli, *named);

    // A tiny program: sum = sum(i*i for i in 1..100), looped enough
    // times that the VM's hotspot optimizer kicks in.
    Assembler as(0x00400000);
    auto outer = as.newLabel();
    auto inner = as.newLabel();

    as.movRI(EDI, 200);  // outer trip count
    as.movRI(EBX, 0);    // accumulator
    as.bind(outer);
    as.movRI(ECX, 100);  // inner trip count
    as.bind(inner);
    as.movRR(EAX, ECX);
    as.imulRR(EAX, ECX); // i*i
    as.aluRR(Op::Add, EBX, EAX);
    as.dec(ECX);
    as.jcc(Cond::NE, inner);
    as.dec(EDI);
    as.jcc(Cond::NE, outer);
    as.hlt();

    std::vector<u8> image = as.finalize();
    std::printf("assembled %zu bytes of x86 code at 0x%x\n\n",
                image.size(), 0x00400000);

    // --- reference run: pure interpretation ---------------------------
    Memory ref_mem;
    ref_mem.writeBlock(0x00400000, image);
    CpuState ref_cpu;
    ref_cpu.eip = 0x00400000;
    ref_cpu.regs[ESP] = 0x7fff0000;
    Interpreter interp(ref_cpu, ref_mem);
    Exit e = interp.run(100'000'000);
    std::printf("interpreter: exit=%d, EBX=0x%08x, %llu instructions\n",
                static_cast<int>(e), ref_cpu.regs[EBX],
                static_cast<unsigned long long>(ref_cpu.icount));

    // --- the co-designed VM -------------------------------------------
    Memory vm_mem;
    vm_mem.writeBlock(0x00400000, image);
    CpuState vm_cpu;
    vm_cpu.eip = 0x00400000;
    vm_cpu.regs[ESP] = 0x7fff0000;

    vmm::VmmConfig cfg = *named;
    // Small demo: detect hotspots quickly (both detector kinds).
    cfg.hotThreshold = 50;
    cfg.interpHotThreshold = 50;
    cfg.bbbParams.hotThreshold = 50;
    cfg.warmStartLoadPath = cli.str("load-cache");
    cfg.warmStartSavePath = cli.str("save-cache");
    cfg.warmImageBudgetBytes =
        static_cast<u64>(cli.num("cache-budget"));
    cfg.flightDumpPath = cli.str("flight-dump");
    cfg.snapshotEveryInsns =
        static_cast<u64>(cli.num("snapshot-every"));

    // Cross-process warm start: bind the VM to an image-host daemon.
    // The endpoint resolves to a generation handle inside the Vmm
    // ctor; an unreachable daemon leaves the handle null and the VM
    // boots cold — serving is an accelerator, never a dependency.
    engine::SharedServices svc;
    std::shared_ptr<serve::ImageClient> img_client;
    if (!cli.str("connect-image").empty()) {
        img_client = std::make_shared<serve::ImageClient>();
        if (img_client->connect(cli.str("connect-image")) &&
            img_client->acquire()) {
            const auto img = img_client->acquire();
            std::printf("connected to image host %s: generation "
                        "%llu, %llu bytes mapped %s\n",
                        cli.str("connect-image").c_str(),
                        static_cast<unsigned long long>(
                            img_client->generation()),
                        static_cast<unsigned long long>(
                            img->sizeBytes()),
                        dbt::MapSource::kindName(img->backingKind()));
        } else {
            std::printf("image host unreachable (%s): cold boot\n",
                        img_client->lastError().c_str());
        }
        svc.imageEndpoint = img_client;
    }

    vmm::Vmm vm(vm_mem, cfg, svc);
    const auto host_t0 = std::chrono::steady_clock::now();
    e = vm.run(vm_cpu, 100'000'000);
    const std::chrono::duration<double> host_dt =
        std::chrono::steady_clock::now() - host_t0;

    const vmm::VmmStats &st = vm.stats();
    std::printf("co-designed VM (%s): exit=%d, EBX=0x%08x\n\n",
                cfg.name.c_str(), static_cast<int>(e),
                vm_cpu.regs[EBX]);
    std::printf("staged emulation statistics:\n");
    std::printf("  BBT translations:       %llu (%llu x86 insns)\n",
                static_cast<unsigned long long>(st.bbtTranslations),
                static_cast<unsigned long long>(st.bbtInsnsTranslated));
    std::printf("  hotspots detected:      %llu\n",
                static_cast<unsigned long long>(st.hotspotDetections));
    std::printf("  superblocks optimized:  %llu (%llu x86 insns)\n",
                static_cast<unsigned long long>(st.sbtTranslations),
                static_cast<unsigned long long>(st.sbtInsnsTranslated));
    std::printf("  insns in BBT code:      %llu\n",
                static_cast<unsigned long long>(st.insnsBbtCode));
    std::printf("  insns in hotspot code:  %llu (%.1f%% coverage)\n",
                static_cast<unsigned long long>(st.insnsSbtCode),
                100.0 * static_cast<double>(st.insnsSbtCode) /
                    static_cast<double>(st.totalRetired()));
    std::printf("  dispatches / chained:   %llu / %llu\n",
                static_cast<unsigned long long>(st.dispatches),
                static_cast<unsigned long long>(st.chainFollows));
    if (!cfg.warmStartLoadPath.empty() ||
        (img_client && img_client->acquire())) {
        std::printf("  warm start:             %llu loaded, %llu "
                    "installed, %llu invalidated, %llu profile "
                    "entries seeded\n",
                    static_cast<unsigned long long>(st.warmLoaded),
                    static_cast<unsigned long long>(st.warmInstalled),
                    static_cast<unsigned long long>(
                        st.warmInvalidated),
                    static_cast<unsigned long long>(
                        st.warmProfileSeeded));
        std::printf("  warm load path:         %llu body copies, "
                    "%llu relocations, %llu bytes mapped %s\n",
                    static_cast<unsigned long long>(st.warmBodyCopies),
                    static_cast<unsigned long long>(
                        st.warmRelocations),
                    static_cast<unsigned long long>(
                        st.warmMappedBytes),
                    st.warmMappedBytes
                        ? "(zero-copy image)"
                        : "(legacy repository)");
    }
    if (cfg.asyncTranslators > 0) {
        std::printf("  async SBT requests:     %llu (%llu installed, "
                    "%llu stale, %llu queue-full)\n",
                    static_cast<unsigned long long>(st.asyncSbtRequests),
                    static_cast<unsigned long long>(st.asyncSbtInstalls),
                    static_cast<unsigned long long>(
                        st.asyncSbtStaleDropped),
                    static_cast<unsigned long long>(
                        st.asyncSbtQueueRejects));
    }

    // Host fast-path metrics: how fast this host emulated, and how
    // well the dispatch lookaside / decode cache served the run
    // (bench_host_mips measures these systematically).
    std::printf("\nhost fast path (%s):\n",
                cfg.fastDispatch ? "enabled" : "legacy dispatch");
    std::printf("  host guest-MIPS:        %.1f (%llu insns in "
                "%.3f s)\n",
                host_dt.count() > 0.0
                    ? static_cast<double>(st.totalRetired()) /
                          host_dt.count() / 1e6
                    : 0.0,
                static_cast<unsigned long long>(st.totalRetired()),
                host_dt.count());
    const dbt::TranslationMap &tmap = vm.translations();
    const u64 ls_total = tmap.lookasideHits() + tmap.lookasideMisses();
    if (ls_total) {
        std::printf("  lookaside hit rate:     %.1f%% (%llu of %llu "
                    "non-chained dispatches)\n",
                    100.0 * static_cast<double>(tmap.lookasideHits()) /
                        static_cast<double>(ls_total),
                    static_cast<unsigned long long>(
                        tmap.lookasideHits()),
                    static_cast<unsigned long long>(ls_total));
    }
    if (const x86::DecodeCache *dc = vm.coldExecutor().decodeCache()) {
        std::printf("  decode-cache hit rate:  %.1f%% (%llu of %llu "
                    "interpreted fetches)\n",
                    100.0 * dc->hitRate(),
                    static_cast<unsigned long long>(dc->hits()),
                    static_cast<unsigned long long>(dc->hits() +
                                                    dc->misses()));
    }

    // Continuous profiling: the sampling profiler's view of the run,
    // the flight recorder, and any interval snapshots.
    const engine::SamplingProfiler &prof = vm.profiler();
    if (prof.enabled() && prof.samples()) {
        std::printf("\n%s", prof.dumpTopN(5).c_str());
    }
    if (!cli.str("profile-out").empty()) {
        std::printf("wrote hotness profile: %s (%s)\n",
                    cli.str("profile-out").c_str(),
                    prof.writeJson(cli.str("profile-out")) ? "ok"
                                                           : "FAILED");
    }
    if (!cfg.flightDumpPath.empty()) {
        std::printf("wrote flight dump: %s (%s; %zu of %llu events "
                    "retained, %llu storms)\n",
                    cfg.flightDumpPath.c_str(),
                    vm.dumpFlight(cfg.flightDumpPath) ? "ok" : "FAILED",
                    vm.flightRecorder().size(),
                    static_cast<unsigned long long>(
                        vm.flightRecorder().recorded()),
                    static_cast<unsigned long long>(
                        vm.flightSink().storms()));
    }
    if (cfg.snapshotEveryInsns) {
        std::printf("interval snapshots: %zu rows every %llu insns\n",
                    vm.snapshots().rows(),
                    static_cast<unsigned long long>(
                        cfg.snapshotEveryInsns));
    }

    if (!cfg.warmStartSavePath.empty()) {
        std::printf("\nsaved translation repository: %s (%s)\n",
                    cfg.warmStartSavePath.c_str(),
                    vm.saveWarmStart() ? "ok" : "FAILED");
    }

    // --- startup-transient timing simulation --------------------------
    // A short run of the matching Table 2 machine over the
    // suite-average workload, plus the reference superscalar for the
    // breakeven point: publishes timing.startup.* (per-stage cycles,
    // milestone ladder) and traces the cycle-timebase phases on
    // track 1.
    workload::AppProfile app = workload::winstoneAverage(2'000'000);
    timing::StartupSim sim(
        machineFor(cfg.name, !cfg.warmStartLoadPath.empty() ||
                                 (img_client && img_client->acquire())),
        app);
    timing::StartupResult sr = sim.run();
    timing::StartupSim ref_sim(timing::MachineConfig::refSuperscalar(),
                               app);
    timing::StartupResult ref_sr = ref_sim.run();
    std::printf("\nstartup sim (%s, %s): %llu insns in %llu cycles "
                "(ref: %llu)\n",
                sr.machine.c_str(), sr.app.c_str(),
                static_cast<unsigned long long>(sr.totalInsns),
                static_cast<unsigned long long>(sr.totalCycles),
                static_cast<unsigned long long>(ref_sr.totalCycles));

    // --- observability export -----------------------------------------
    StatRegistry &reg = StatRegistry::global();
    vm.exportStats(reg);
    analysis::exportStartupStats(sr, reg, "timing.startup", &ref_sr);
    analysis::exportStartupStats(ref_sr, reg, "timing.ref_startup");
    dumpObservability();

    bool ok = ref_cpu.regs[EBX] == vm_cpu.regs[EBX] &&
              ref_cpu.eip == vm_cpu.eip;
    std::printf("\narchitected state matches the interpreter: %s\n",
                ok ? "YES" : "NO");

    // --- cross-process image serving ----------------------------------
    // Turn this process into an image-host daemon: capture what the
    // run translated, seal it into one immutable memory object, and
    // hand the fd to every --connect-image sibling until a stop
    // signal. N siblings share ONE physical copy of the image.
    if (ok && !cli.str("serve-image").empty()) {
        dbt::ImageBuilder b(dbt::ImageBuilder::Options{
            static_cast<u64>(cli.num("cache-budget")), 1});
        b.add(vm.captureWarmStart());
        serve::ImageHost host;
        if (!host.publish(b.build()) ||
            !host.start(cli.str("serve-image"))) {
            std::fprintf(stderr, "image host failed: %s\n",
                         host.lastError().c_str());
            return 1;
        }
        std::signal(SIGINT, onStopSignal);
        std::signal(SIGTERM, onStopSignal);
        std::printf("serving warm-start image on %s (%zu records, "
                    "generation %llu); stop with SIGINT/SIGTERM\n",
                    cli.str("serve-image").c_str(),
                    host.acquire()->recordCount(),
                    static_cast<unsigned long long>(
                        host.generation()));
        std::fflush(stdout);
        while (!g_stop)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        const serve::ImageHost::Stats hs = host.stats();
        host.stop();
        std::printf("image host done: %llu clients served, %llu "
                    "images sent\n",
                    static_cast<unsigned long long>(hs.clientsServed),
                    static_cast<unsigned long long>(hs.imagesSent));
    }
    return ok ? 0 : 1;
}
