/**
 * @file
 * Startup race: the paper's headline experiment on one workload.
 *
 * Races the four Table-2 machines through the memory-startup scenario
 * on a Winstone-like trace and prints a live scoreboard of cumulative
 * instructions at log-spaced cycle checkpoints, plus breakeven points
 * -- a one-screen version of Figs. 8/9.
 *
 *   $ ./build/examples/startup_race [app-index 0..9]
 */

#include <cstdio>
#include <cstdlib>

#include "analysis/startup_curve.hh"
#include "timing/startup_sim.hh"
#include "workload/winstone.hh"

using namespace cdvm;

int
main(int argc, char **argv)
{
    unsigned app_idx = argc > 1 ? static_cast<unsigned>(
                                      std::strtoul(argv[1], nullptr, 10))
                                : 9; // Word
    auto apps = workload::winstone2004(60'000'000);
    if (app_idx >= apps.size())
        app_idx = 0;
    const workload::AppProfile &app = apps[app_idx];

    std::printf("racing the Table-2 machines on '%s' (%llu M x86 "
                "instructions, cold caches)\n\n",
                app.name.c_str(),
                static_cast<unsigned long long>(
                    app.trace.totalInsns / 1'000'000));

    std::vector<timing::MachineConfig> machines =
        timing::MachineConfig::table2();
    std::vector<timing::StartupResult> results;
    for (const auto &m : machines) {
        std::printf("  simulating %s...\n", m.name.c_str());
        results.push_back(timing::StartupSim(m, app).run());
    }

    std::printf("\ncumulative x86 instructions (millions) at cycle "
                "checkpoints:\n\n");
    std::printf("%14s", "cycles");
    for (const auto &r : results)
        std::printf("  %16s", r.machine.c_str());
    std::printf("\n");
    for (double c = 1e5; c < static_cast<double>(
                                 results[0].totalCycles) * 1.5;
         c *= 4.0) {
        std::printf("%14.0f", c);
        for (const auto &r : results)
            std::printf("  %16.3f",
                        analysis::insnsAtCycle(r, c) / 1e6);
        std::printf("\n");
    }

    std::printf("\nbreakeven vs the reference superscalar:\n");
    for (std::size_t i = 1; i < results.size(); ++i) {
        double b = analysis::breakevenCycle(results[i], results[0]);
        if (b < 0)
            std::printf("  %-10s never (within this trace)\n",
                        results[i].machine.c_str());
        else
            std::printf("  %-10s %.1f M cycles\n",
                        results[i].machine.c_str(), b / 1e6);
    }
    std::printf("\nhotspot coverage at trace end: %.0f%%; VM steady "
                "state: +%.0f%% IPC\n",
                100 * results[1].hotspotCoverage(),
                100 * app.steadyGain);
    return 0;
}
