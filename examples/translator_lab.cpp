/**
 * @file
 * Translator lab: feed raw x86 hex bytes through every decode path.
 *
 * For each instruction given on the command line (or a built-in tour
 * of interesting encodings), shows: the decode, the cracked micro-ops
 * with their 16/32-bit encodings, and what the XLTx86 backend assist
 * returns for it (CSR fields).
 *
 *   $ ./build/examples/translator_lab                 # built-in tour
 *   $ ./build/examples/translator_lab "01 d8" "f7 f1" # your own bytes
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "hwassist/xlt.hh"
#include "uops/crack.hh"
#include "uops/csr.hh"
#include "uops/encoding.hh"
#include "x86/decoder.hh"

using namespace cdvm;

namespace
{

std::vector<u8>
parseHex(const std::string &s)
{
    std::vector<u8> out;
    unsigned v = 0;
    int digits = 0;
    for (char c : s) {
        int d = -1;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        if (d < 0) {
            if (digits) {
                out.push_back(static_cast<u8>(v));
                v = 0;
                digits = 0;
            }
            continue;
        }
        v = v * 16 + static_cast<unsigned>(d);
        if (++digits == 2) {
            out.push_back(static_cast<u8>(v));
            v = 0;
            digits = 0;
        }
    }
    if (digits)
        out.push_back(static_cast<u8>(v));
    return out;
}

void
lab(const std::vector<u8> &bytes)
{
    std::printf("bytes:");
    for (u8 b : bytes)
        std::printf(" %02x", b);
    std::printf("\n");

    std::vector<u8> win = bytes;
    win.resize(x86::MAX_INSN_LEN + 1, 0x90);
    x86::DecodeResult dr = x86::decode(
        std::span<const u8>(win.data(), win.size()), 0x1000);
    if (!dr.ok) {
        std::printf("  decode: FAILED (%s)\n\n", dr.error.c_str());
        return;
    }
    std::printf("  decode: %-28s length=%u%s%s\n",
                dr.insn.toString().c_str(), dr.insn.length,
                dr.insn.isCti() ? "  [CTI]" : "",
                dr.insn.isComplex() ? "  [complex]" : "");

    uops::CrackResult cr = uops::crack(dr.insn);
    std::printf("  crack:  %zu micro-op(s)%s\n", cr.uops.size(),
                cr.complex ? "  [software path]" : "");
    for (const uops::Uop &u : cr.uops) {
        u8 enc[uops::MAX_UOP_BYTES];
        unsigned n = uops::encodeOne(u, enc);
        std::printf("    %-36s ", u.toString().c_str());
        std::printf("[%u bytes:", n);
        for (unsigned i = 0; i < n; ++i)
            std::printf(" %02x", enc[i]);
        std::printf("]\n");
    }

    hwassist::XltUnit xlt;
    u8 src[16] = {0};
    std::memcpy(src, bytes.data(),
                std::min<std::size_t>(bytes.size(), 16));
    u8 dst[16];
    u32 csr = xlt.translate(src, dst);
    std::printf("  XLTx86: x86_ilen=%u uops_bytes=%u Flag_cmplx=%d "
                "Flag_cti=%d\n\n",
                uops::csr::ilen(csr), uops::csr::uopBytes(csr),
                uops::csr::isComplex(csr), uops::csr::isCti(csr));
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("=== translator lab: x86 -> fusible micro-ops -> "
                "XLTx86 ===\n\n");
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            lab(parseHex(argv[i]));
        return 0;
    }
    // Built-in tour.
    const char *tour[] = {
        "01 d8",                   // add eax, ebx
        "03 44 9e 08",             // add eax, [esi+ebx*4+8]
        "83 c1 7f",                // add ecx, 0x7f
        "66 01 c8",                // add ax, cx (operand-size prefix)
        "00 e0",                   // add al, ah (high-byte subregister)
        "8d 04 8d 0a 00 00 00",    // lea eax, [ecx*4+10]
        "55",                      // push ebp
        "c3",                      // ret
        "0f af c3",                // imul eax, ebx
        "f7 f1",                   // div ecx (complex: software path)
        "0f a2",                   // cpuid (complex)
        "b8 78 56 34 12",          // mov eax, 0x12345678
        "0f 94 c0",                // sete al
        "c1 e0 05",                // shl eax, 5
        "eb fe",                   // jmp short $ (CTI)
    };
    for (const char *t : tour)
        lab(parseHex(t));
    return 0;
}
