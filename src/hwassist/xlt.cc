#include "hwassist/xlt.hh"

#include <cstring>

#include "common/statreg.hh"
#include "uops/crack.hh"
#include "uops/csr.hh"
#include "uops/encoding.hh"
#include "x86/decoder.hh"

namespace cdvm::hwassist
{

u32
XltUnit::translate(const u8 src[16], u8 dst[16])
{
    ++nInvocations;
    std::memset(dst, 0, 16);

    // The hardware decoder sees only the 16 instruction bytes; it has
    // no notion of the instruction's address. Relative targets are a
    // CTI concern and CTIs take the software path anyway.
    x86::DecodeResult dr =
        x86::decode(std::span<const u8>(src, 16), /*pc=*/0);
    if (!dr.ok) {
        // Undecodable (or longer than the Fsrc window): complex.
        ++nComplex;
        return uops::csr::make(0, 0, /*cmplx=*/true, /*cti=*/false);
    }
    const x86::Insn &in = dr.insn;

    if (in.isCti()) {
        ++nCti;
        return uops::csr::make(in.length, 0, /*cmplx=*/false,
                               /*cti=*/true);
    }

    uops::CrackResult cr = uops::crack(in);
    unsigned bytes = uops::encodedBytes(cr.uops);
    if (cr.complex || bytes > 16) {
        ++nComplex;
        return uops::csr::make(in.length, 0, /*cmplx=*/true,
                               /*cti=*/false);
    }

    std::vector<u8> enc = uops::encode(cr.uops);
    if (!enc.empty())
        std::memcpy(dst, enc.data(), enc.size());
    return uops::csr::make(in.length, bytes, /*cmplx=*/false,
                           /*cti=*/false);
}

void
XltUnit::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.set(prefix + ".invocations", static_cast<double>(nInvocations),
            "XLTx86 operations executed");
    reg.set(prefix + ".complex_cases", static_cast<double>(nComplex),
            "instructions flagged complex (software path)");
    reg.set(prefix + ".cti_cases", static_cast<double>(nCti),
            "control transfers flagged for the software path");
    reg.set(prefix + ".busy_cycles",
            static_cast<double>(busyCycles()),
            "cycles the relocated decode logic was busy");
}

} // namespace cdvm::hwassist
