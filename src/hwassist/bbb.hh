/**
 * @file
 * Branch Behavior Buffer -- the hardware hotspot detector.
 *
 * Merten et al. [23] proposed a 4K-entry branch behavior buffer after
 * the retire stage that identifies dynamic hotspots. The VM.fe
 * configuration relies on such hardware because dual-mode execution of
 * cold x86 code leaves no BBT code to carry software profiling
 * (paper Section 4.1).
 *
 * The model is a tagged, direct-mapped counter table over branch
 * target addresses with saturating execution counters; a target whose
 * counter crosses the hot threshold is reported (once) as a hotspot
 * seed for the SBT.
 */

#ifndef CDVM_HWASSIST_BBB_HH
#define CDVM_HWASSIST_BBB_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::hwassist
{

/** BBB geometry and thresholds. */
struct BbbParams
{
    u32 entries = 4096;     //!< 4K entries as in Merten et al.
    u64 hotThreshold = 8000; //!< detection threshold (paper Section 3.2)
};

/** Hardware hotspot detector. */
class BranchBehaviorBuffer
{
  public:
    explicit BranchBehaviorBuffer(const BbbParams &params = {});

    /**
     * Record the retirement of a branch to target_pc.
     * @return true exactly once, when the target becomes hot.
     */
    bool recordBranch(Addr target_pc);

    /** Record N consecutive executions (trace-driven fast path). */
    bool recordBranch(Addr target_pc, u64 times);

    /** Forget everything (context switch / flush). */
    void reset();

    u64 detections() const { return nDetections; }
    u64 tagConflicts() const { return nConflicts; }
    u64 hotThreshold() const { return p.hotThreshold; }

    /** Publish detector counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Entry
    {
        Addr tag = 0;
        u64 count = 0;
        bool valid = false;
        bool reported = false;
    };

    Entry &entryFor(Addr pc);

    BbbParams p;
    std::vector<Entry> table;
    u64 nDetections = 0;
    u64 nConflicts = 0;
};

} // namespace cdvm::hwassist

#endif // CDVM_HWASSIST_BBB_HH
