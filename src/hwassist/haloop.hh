/**
 * @file
 * The HAloop: the VMM's hardware-accelerated BBT kernel (Fig. 6a).
 *
 * The paper's loop, expressed in our implementation ISA:
 *
 *   HAloop:
 *     LDF    F0, [Rx86pc]        ; fetch 16 instruction bytes
 *     XLTX86 F1, F0              ; decode + crack (4-cycle FU)
 *     JCPX   complex_handler     ; CSR.Flag_cmplx -> software path
 *     JCTI   branch_handler      ; CSR.Flag_cti   -> software path
 *     STF    F1, [Rcode$]        ; write micro-ops to the code cache
 *     MOV    Rt0, CSR
 *     AND    Rt1, Rt0, 0x0f  ::  ADD Rx86pc, Rx86pc, Rt1
 *     AND    Rt2, Rt0, 0xf0      ; uops_bytes field in place
 *     SHR    Rt2, Rt2, 3         ; (field*16) >> 3 == bytes (field*2)
 *     ADD    Rcode$, Rcode$, Rt2
 *     JMP    HAloop
 *
 * The class both *executes* the loop functionally (via the micro-op
 * executor and the XltUnit, so VM.be translations are produced by the
 * very mechanism the paper describes) and *accounts* its cost, which
 * the Table-1 bench compares against the paper's 20 cycles per x86
 * instruction.
 */

#ifndef CDVM_HWASSIST_HALOOP_HH
#define CDVM_HWASSIST_HALOOP_HH

#include <vector>

#include "hwassist/xlt.hh"
#include "uops/exec.hh"
#include "x86/memory.hh"

namespace cdvm::hwassist
{

/** Sentinel branch targets inside the VMM's own code. */
constexpr Addr HALOOP_TOP = 0xffff0000;
constexpr Addr HALOOP_EXIT_COMPLEX = 0xffff0001;
constexpr Addr HALOOP_EXIT_CTI = 0xffff0002;

/** Functional + cost model of the hardware-assisted BBT loop. */
class HaLoop
{
  public:
    HaLoop(x86::Memory &memory, XltUnit &unit) : mem(memory), xlt(unit) {}

    /** One completed HAloop iteration (one translated instruction). */
    struct Step
    {
        u8 insnLen = 0;  //!< x86 instruction length (CSR length field)
        u8 uopBytes = 0; //!< encoded micro-op bytes emitted by STF
    };

    /** Outcome of translating one basic block's straight-line body. */
    struct Result
    {
        unsigned insnsTranslated = 0; //!< non-CTI instructions emitted
        u32 bytesEmitted = 0;         //!< micro-op bytes written
        Addr stoppedAt = 0;           //!< x86 PC where the loop exited
        bool stoppedCti = false;      //!< exit through JCTI
        bool stoppedComplex = false;  //!< exit through JCPX
        u64 uopsExecuted = 0;         //!< loop micro-ops retired
        Cycles cycles = 0;            //!< modelled execution time
        /** Per-iteration record, in translation order: lets the VMM
         *  attach x86-pc provenance to the emitted micro-ops. */
        std::vector<Step> steps;
    };

    /**
     * Run the loop: translate straight-line code starting at x86_pc,
     * writing encoded micro-ops into guest memory at code_addr.
     */
    Result run(Addr x86_pc, Addr code_addr, unsigned max_insns = 64);

    /** The loop body as micro-ops (for display and inspection). */
    static uops::UopVec program();

    /** Cumulative modelled cycles per translated x86 instruction. */
    double
    measuredCyclesPerInsn() const
    {
        return totalInsns ? static_cast<double>(totalCycles) / totalInsns
                          : 0.0;
    }

  private:
    Cycles uopLatency(const uops::Uop &u) const;

    x86::Memory &mem;
    XltUnit &xlt;
    u64 totalInsns = 0;
    Cycles totalCycles = 0;
};

} // namespace cdvm::hwassist

#endif // CDVM_HWASSIST_HALOOP_HH
