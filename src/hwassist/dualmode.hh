/**
 * @file
 * Dual-mode (two-level) frontend decoders (paper Section 4.1).
 *
 * The first level cracks x86 instructions into vertical micro-ops in
 * the implementation ISA format; the second level generates pipeline
 * control signals. In x86-mode both levels operate; in native-mode the
 * first level is bypassed (and can be powered off). The VM.fe
 * configuration executes cold code directly in x86-mode, eliminating
 * the BBT entirely.
 *
 * The class models the mode machinery and the activity accounting used
 * by the Fig. 11 energy study; functionally it exposes the first-level
 * decode (x86 bytes -> micro-ops), which by construction matches the
 * software cracker.
 */

#ifndef CDVM_HWASSIST_DUALMODE_HH
#define CDVM_HWASSIST_DUALMODE_HH

#include <string>

#include "common/types.hh"
#include "uops/crack.hh"
#include "x86/memory.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::hwassist
{

/** Decoder operating mode. */
enum class DecodeMode : u8
{
    X86,    //!< both levels active: fetching architected x86 code
    Native, //!< first level bypassed: fetching code-cache micro-ops
};

/** Dual-mode decoder model. */
class DualModeDecoder
{
  public:
    explicit DualModeDecoder(x86::Memory &memory) : mem(memory) {}

    /** Switch modes (VMM-controlled); accounts the transition. */
    void setMode(DecodeMode m);

    DecodeMode mode() const { return cur; }

    /**
     * First-level decode at pc in x86-mode: returns the micro-ops for
     * one x86 instruction (exactly the software cracker's output) or
     * nullopt on an undecodable instruction (VMM trap).
     */
    struct Decoded
    {
        x86::Insn insn;
        uops::UopVec uops;
    };
    bool decodeAt(Addr pc, Decoded &out);

    /**
     * Account n cycles of frontend activity in the current mode (the
     * timing simulator calls this; Fig. 11 reads the totals).
     */
    void
    tick(Cycles n)
    {
        if (cur == DecodeMode::X86)
            x86Cycles += n;
        else
            nativeCycles += n;
    }

    /**
     * Account n instructions first-level decoded by other means (the
     * functional x86-mode executor retires through the interpreter
     * loop but the decode traffic is this unit's).
     */
    void noteDecoded(u64 n) { nDecoded += n; }

    /** Cycles with the first-level (x86) decode logic powered on. */
    Cycles x86ModeCycles() const { return x86Cycles; }
    /** Cycles with the first-level decoder bypassed / powered off. */
    Cycles nativeModeCycles() const { return nativeCycles; }
    u64 modeSwitches() const { return nSwitches; }
    u64 insnsDecoded() const { return nDecoded; }

    /** Publish mode/activity counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /**
     * Extra frontend pipeline depth in x86-mode relative to a
     * native-only frontend (the VM.fe and Ref schemes carry this).
     */
    static constexpr unsigned extraDecodeStages = 1;

  private:
    x86::Memory &mem;
    DecodeMode cur = DecodeMode::X86;
    Cycles x86Cycles = 0;
    Cycles nativeCycles = 0;
    u64 nSwitches = 0;
    u64 nDecoded = 0;
};

} // namespace cdvm::hwassist

#endif // CDVM_HWASSIST_DUALMODE_HH
