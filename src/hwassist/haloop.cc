#include "hwassist/haloop.hh"

#include "common/logging.hh"
#include "uops/csr.hh"

namespace cdvm::hwassist
{

using uops::UCond;
using uops::UOp;
using uops::Uop;

namespace
{

constexpr u8 F_SRC = 0;
constexpr u8 F_DST = 1;

Uop
mk(UOp op)
{
    Uop u;
    u.op = op;
    return u;
}

} // namespace

uops::UopVec
HaLoop::program()
{
    uops::UopVec v;

    Uop ldf = mk(UOp::LdF); // LDF F0, [Rx86pc]
    ldf.dst = F_SRC;
    ldf.src1 = uops::R_X86PC;
    ldf.hasImm = true;
    ldf.imm = 0;
    v.push_back(ldf);

    Uop x = mk(UOp::XltX86); // XLTX86 F1, F0
    x.dst = F_DST;
    x.src1 = F_SRC;
    v.push_back(x);

    Uop jcpx = mk(UOp::Br); // JCPX complex_handler
    jcpx.cond = static_cast<u8>(UCond::CsrCmplx);
    jcpx.target = HALOOP_EXIT_COMPLEX;
    v.push_back(jcpx);

    Uop jcti = mk(UOp::Br); // JCTI branch_handler
    jcti.cond = static_cast<u8>(UCond::CsrCti);
    jcti.target = HALOOP_EXIT_CTI;
    v.push_back(jcti);

    Uop stf = mk(UOp::StF); // STF F1, [Rcode$]
    stf.dst = F_DST;
    stf.src1 = uops::R_CODECACHE;
    stf.hasImm = true;
    stf.imm = 0;
    v.push_back(stf);

    Uop mv = mk(UOp::MovCsr); // MOV Rt0, CSR
    mv.dst = uops::R_V0;
    v.push_back(mv);

    Uop and1 = mk(UOp::And); // AND Rt1, Rt0, 0x0f (fused head)
    and1.dst = uops::R_V1;
    and1.src1 = uops::R_V0;
    and1.hasImm = true;
    and1.imm = 0x0f;
    and1.fusedHead = true;
    v.push_back(and1);

    Uop add1 = mk(UOp::Add); // :: ADD Rx86pc, Rx86pc, Rt1
    add1.dst = uops::R_X86PC;
    add1.src1 = uops::R_X86PC;
    add1.src2 = uops::R_V1;
    v.push_back(add1);

    Uop and2 = mk(UOp::And); // AND Rt2, Rt0, 0xf0 (fused head)
    and2.dst = uops::R_V2;
    and2.src1 = uops::R_V0;
    and2.hasImm = true;
    and2.imm = 0xf0;
    and2.fusedHead = true;
    v.push_back(and2);

    Uop shr = mk(UOp::Shr); // :: SHR Rt2, Rt2, 3
    shr.dst = uops::R_V2;
    shr.src1 = uops::R_V2;
    shr.hasImm = true;
    shr.imm = 3;
    v.push_back(shr);

    Uop add2 = mk(UOp::Add); // ADD Rcode$, Rcode$, Rt2
    add2.dst = uops::R_CODECACHE;
    add2.src1 = uops::R_CODECACHE;
    add2.src2 = uops::R_V2;
    v.push_back(add2);

    Uop jmp = mk(UOp::Jmp); // JMP HAloop
    jmp.target = HALOOP_TOP;
    v.push_back(jmp);

    return v;
}

Cycles
HaLoop::uopLatency(const Uop &u) const
{
    switch (u.op) {
      case UOp::XltX86:
        return xlt.latency(); // the paper assumes 4 cycles
      case UOp::LdF:
        return 3; // L1D-hit latency (streaming buffer in steady state)
      default:
        return 1;
    }
}

HaLoop::Result
HaLoop::run(Addr x86_pc, Addr code_addr, unsigned max_insns)
{
    Result res;
    uops::UState st;
    st.regs[uops::R_X86PC] = static_cast<u32>(x86_pc);
    st.regs[uops::R_CODECACHE] = static_cast<u32>(code_addr);

    uops::UopExecutor exe(st, mem);
    exe.setXltHandler(&xlt);

    const uops::UopVec prog = program();

    bool running = true;
    while (running && res.insnsTranslated < max_insns) {
        const u32 pc_before = st.regs[uops::R_X86PC];
        const u32 cc_before = st.regs[uops::R_CODECACHE];
        std::size_t i = 0;
        while (i < prog.size()) {
            const Uop &u = prog[i];
            uops::UopExecutor::Outcome o = exe.exec(u);
            ++res.uopsExecuted;
            // Fused pairs issue as a single entity: the tail's cycle
            // is absorbed by the head.
            if (!(i > 0 && prog[i - 1].fusedHead))
                res.cycles += uopLatency(u);
            if (o.fault)
                cdvm_panic("HAloop micro-op faulted");
            if (o.taken) {
                if (o.target == HALOOP_TOP)
                    break; // next iteration
                res.stoppedComplex = o.target == HALOOP_EXIT_COMPLEX;
                res.stoppedCti = o.target == HALOOP_EXIT_CTI;
                running = false;
                break;
            }
            ++i;
        }
        if (running) {
            ++res.insnsTranslated;
            Step step;
            step.insnLen = static_cast<u8>(st.regs[uops::R_X86PC] -
                                           pc_before);
            step.uopBytes = static_cast<u8>(
                st.regs[uops::R_CODECACHE] - cc_before);
            res.steps.push_back(step);
        }
        x86_pc = st.regs[uops::R_X86PC];
    }

    res.stoppedAt = st.regs[uops::R_X86PC];
    res.bytesEmitted =
        st.regs[uops::R_CODECACHE] - static_cast<u32>(code_addr);

    totalInsns += res.insnsTranslated;
    totalCycles += res.cycles;
    return res;
}

} // namespace cdvm::hwassist
