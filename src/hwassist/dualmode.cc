#include "hwassist/dualmode.hh"

#include "x86/decoder.hh"

namespace cdvm::hwassist
{

void
DualModeDecoder::setMode(DecodeMode m)
{
    if (m != cur) {
        cur = m;
        ++nSwitches;
    }
}

bool
DualModeDecoder::decodeAt(Addr pc, Decoded &out)
{
    u8 window[x86::MAX_INSN_LEN + 1];
    mem.fetchWindow(pc, window, sizeof(window));
    x86::DecodeResult dr =
        x86::decode(std::span<const u8>(window, sizeof(window)), pc);
    if (!dr.ok)
        return false;
    out.insn = dr.insn;
    out.uops = uops::crack(dr.insn).uops;
    ++nDecoded;
    return true;
}

} // namespace cdvm::hwassist
