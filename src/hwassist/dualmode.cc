#include "hwassist/dualmode.hh"

#include "common/statreg.hh"
#include "x86/decoder.hh"

namespace cdvm::hwassist
{

void
DualModeDecoder::setMode(DecodeMode m)
{
    if (m != cur) {
        cur = m;
        ++nSwitches;
    }
}

bool
DualModeDecoder::decodeAt(Addr pc, Decoded &out)
{
    u8 window[x86::MAX_INSN_LEN + 1];
    mem.fetchWindow(pc, window, sizeof(window));
    x86::DecodeResult dr =
        x86::decode(std::span<const u8>(window, sizeof(window)), pc);
    if (!dr.ok)
        return false;
    out.insn = dr.insn;
    out.uops = uops::crack(dr.insn).uops;
    ++nDecoded;
    return true;
}

void
DualModeDecoder::exportStats(StatRegistry &reg,
                             const std::string &prefix) const
{
    reg.set(prefix + ".mode_switches", static_cast<double>(nSwitches),
            "x86-mode <-> native-mode transitions");
    reg.set(prefix + ".insns_decoded", static_cast<double>(nDecoded),
            "x86 instructions first-level decoded");
    reg.set(prefix + ".x86_mode_cycles",
            static_cast<double>(x86Cycles),
            "cycles with both decode levels powered");
    reg.set(prefix + ".native_mode_cycles",
            static_cast<double>(nativeCycles),
            "cycles with the x86 level bypassed");
}

} // namespace cdvm::hwassist
