#include "hwassist/bbb.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/statreg.hh"

namespace cdvm::hwassist
{

BranchBehaviorBuffer::BranchBehaviorBuffer(const BbbParams &params)
    : p(params)
{
    if (!isPowerOf2(p.entries))
        cdvm_fatal("BBB entries must be a power of two");
    table.resize(p.entries);
}

BranchBehaviorBuffer::Entry &
BranchBehaviorBuffer::entryFor(Addr pc)
{
    // Simple address hash: fold the upper bits into the index.
    u64 h = pc ^ (pc >> 13) ^ (pc >> 27);
    return table[h & (p.entries - 1)];
}

bool
BranchBehaviorBuffer::recordBranch(Addr target_pc)
{
    return recordBranch(target_pc, 1);
}

bool
BranchBehaviorBuffer::recordBranch(Addr target_pc, u64 times)
{
    Entry &e = entryFor(target_pc);
    if (!e.valid || e.tag != target_pc) {
        if (e.valid)
            ++nConflicts;
        // Replace: new target takes over the counter (Merten-style
        // approximation; conflict losers restart from zero).
        e.valid = true;
        e.tag = target_pc;
        e.count = 0;
        e.reported = false;
    }
    e.count += times;
    if (!e.reported && e.count >= p.hotThreshold) {
        e.reported = true;
        ++nDetections;
        return true;
    }
    return false;
}

void
BranchBehaviorBuffer::reset()
{
    for (Entry &e : table)
        e = Entry{};
}

void
BranchBehaviorBuffer::exportStats(StatRegistry &reg,
                                  const std::string &prefix) const
{
    reg.set(prefix + ".entries", static_cast<double>(p.entries),
            "detector table entries");
    reg.set(prefix + ".hot_threshold",
            static_cast<double>(p.hotThreshold),
            "detection threshold");
    reg.set(prefix + ".detections", static_cast<double>(nDetections),
            "hotspot seeds reported");
    reg.set(prefix + ".tag_conflicts", static_cast<double>(nConflicts),
            "entries evicted by aliasing targets");
}

} // namespace cdvm::hwassist
