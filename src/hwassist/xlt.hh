/**
 * @file
 * XLTx86 -- the backend functional-unit hardware assist (Table 1).
 *
 * "Decode an x86 instruction aligned at the beginning of the 128-bit
 *  Fsrc register, and generate 16b/32b micro-ops into the Fdst
 *  register. This instruction affects the CSR status register."
 *
 * The unit is a simplified one-instruction-wide x86 decoder relocated
 * to the FP/media execution stage. It handles the common cases and
 * flags everything else (CTIs, serializing/faulting instructions,
 * micro-op expansions over 16 bytes) for the software path via the
 * CSR's Flag_cti / Flag_cmplx bits (paper Section 4.2).
 */

#ifndef CDVM_HWASSIST_XLT_HH
#define CDVM_HWASSIST_XLT_HH

#include <string>

#include "common/types.hh"
#include "uops/exec.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::hwassist
{

/** Model parameters for the XLTx86 functional unit. */
struct XltParams
{
    Cycles latency = 4;   //!< execution latency (paper assumes 4)
};

/** The XLTx86 functional unit. */
class XltUnit : public uops::XltHandler
{
  public:
    explicit XltUnit(const XltParams &params = {}) : p(params) {}

    /**
     * Execute one XLTx86 operation: decode the x86 instruction at the
     * start of src, emit encoded micro-ops into dst, return the CSR.
     *
     * CTIs and complex instructions produce no micro-ops; the CSR
     * flags tell the VMM's HAloop to branch to its software handlers.
     */
    u32 translate(const u8 src[16], u8 dst[16]) override;

    Cycles latency() const { return p.latency; }

    // --- activity accounting (for the Fig. 11 energy study) ----------
    u64 invocations() const { return nInvocations; }
    u64 complexCases() const { return nComplex; }
    u64 ctiCases() const { return nCti; }
    /** Total cycles the decode logic was busy. */
    Cycles busyCycles() const { return nInvocations * p.latency; }

    /** Publish activity counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    XltParams p;
    u64 nInvocations = 0;
    u64 nComplex = 0;
    u64 nCti = 0;
};

} // namespace cdvm::hwassist

#endif // CDVM_HWASSIST_XLT_HH
