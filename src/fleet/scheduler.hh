/**
 * @file
 * Time-slice scheduling for the multi-tenant fleet server.
 *
 * The fleet multiplexes many guest contexts onto one emulation core.
 * The unit of preemption is the retired-instruction quantum: the
 * server runs the chosen context for `sliceInsns` retired x86
 * instructions (Vmm::run's budget), folds the weighted work into the
 * fleet clock, and asks the scheduler again. Because preemption only
 * happens at dispatch boundaries and every context's architected
 * state is private, any slicing yields the same per-context final
 * state -- policies trade only latency and fairness, never
 * correctness.
 */

#ifndef CDVM_FLEET_SCHEDULER_HH
#define CDVM_FLEET_SCHEDULER_HH

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm::fleet
{

/** Slice-assignment policies. */
enum class SchedPolicy : u8
{
    /** Fixed quantum, rotating cursor over the runnable set. */
    RoundRobin,
    /**
     * Rotating cursor, but the slice scales with the context's share
     * of the fleet's remaining work (clamped to [1/4, 4]x quantum):
     * contexts with more work left get longer slices, which cuts
     * dispatch overhead for stragglers without starving near-done
     * contexts.
     */
    LoadRatio,
};

const char *schedPolicyName(SchedPolicy p);
std::optional<SchedPolicy> schedPolicyByName(const std::string &name);

/** Picks the next runnable context and its instruction budget. */
class FleetScheduler
{
  public:
    FleetScheduler(SchedPolicy policy, u64 quantum_insns)
        : pol(policy), quantum(quantum_insns ? quantum_insns : 1)
    {
    }

    struct Decision
    {
        std::size_t slot = 0; //!< index into the runnable set
        u64 sliceInsns = 0;   //!< retired-insn budget for this slice
    };

    /**
     * Choose the next slice. `remaining` holds, per runnable context
     * (in the server's runnable order), the retired instructions it
     * still owes; must be non-empty. The cursor survives membership
     * changes: it indexes the current set modulo its size, so the
     * rotation stays deterministic as contexts come and go.
     */
    Decision next(const std::vector<u64> &remaining);

    SchedPolicy policy() const { return pol; }
    u64 quantumInsns() const { return quantum; }
    /** Slices handed out so far. */
    u64 slices() const { return nSlices; }

  private:
    SchedPolicy pol;
    u64 quantum;
    u64 cursor = 0;
    u64 nSlices = 0;
};

} // namespace cdvm::fleet

#endif // CDVM_FLEET_SCHEDULER_HH
