#include "fleet/scheduler.hh"

#include "common/logging.hh"

namespace cdvm::fleet
{

const char *
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::RoundRobin:
        return "rr";
      case SchedPolicy::LoadRatio:
        return "loadratio";
    }
    return "?";
}

std::optional<SchedPolicy>
schedPolicyByName(const std::string &name)
{
    if (name == "rr" || name == "roundrobin")
        return SchedPolicy::RoundRobin;
    if (name == "loadratio" || name == "load")
        return SchedPolicy::LoadRatio;
    return std::nullopt;
}

FleetScheduler::Decision
FleetScheduler::next(const std::vector<u64> &remaining)
{
    if (remaining.empty())
        cdvm_panic("scheduler asked with no runnable contexts");
    Decision d;
    d.slot = static_cast<std::size_t>(cursor++ % remaining.size());
    d.sliceInsns = quantum;

    if (pol == SchedPolicy::LoadRatio) {
        u64 total = 0;
        for (u64 r : remaining)
            total += r;
        if (total) {
            // slice = quantum * (this context's share of remaining
            // work) * n, i.e. quantum scaled by remaining/mean.
            const double mean =
                static_cast<double>(total) /
                static_cast<double>(remaining.size());
            const double ratio =
                static_cast<double>(remaining[d.slot]) / mean;
            const double lo = 0.25, hi = 4.0;
            const double f = ratio < lo ? lo : (ratio > hi ? hi : ratio);
            d.sliceInsns = static_cast<u64>(
                static_cast<double>(quantum) * f);
            if (d.sliceInsns == 0)
                d.sliceInsns = 1;
        }
    }
    ++nSlices;
    return d;
}

} // namespace cdvm::fleet
