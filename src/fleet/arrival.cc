#include "fleet/arrival.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/random.hh"

namespace cdvm::fleet
{

const char *
arrivalKindName(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Storm:
        return "storm";
      case ArrivalKind::Step:
        return "step";
      case ArrivalKind::Poisson:
        return "poisson";
    }
    return "?";
}

std::vector<u64>
ArrivalCurve::admitClocks(unsigned contexts, u64 fleet_seed) const
{
    std::vector<u64> at;
    at.reserve(contexts);
    switch (kind) {
      case ArrivalKind::Storm:
        at.assign(contexts, 0);
        break;
      case ArrivalKind::Step: {
        const unsigned batch = stepBatch ? stepBatch : 1;
        for (unsigned i = 0; i < contexts; ++i)
            at.push_back((i / batch) * stepPeriodCycles);
        break;
      }
      case ArrivalKind::Poisson: {
        // Inverse-CDF exponential gaps. The stream key mixes only the
        // fleet seed (not the context id): arrival order is a global
        // property of the fleet, while per-context workloads draw
        // from their own derived seeds.
        Pcg32 rng(fleet_seed, /*seq=*/0x41525249 /* "ARRI" */);
        const double rate =
            poissonRatePerMcycle > 0.0 ? poissonRatePerMcycle : 1.0;
        const double mean_gap = 1e6 / rate;
        u64 t = 0;
        for (unsigned i = 0; i < contexts; ++i) {
            const double u = rng.uniform();
            const double gap = -std::log(1.0 - u) * mean_gap;
            t += gap < 1.0 ? 1 : static_cast<u64>(std::llround(gap));
            at.push_back(t);
        }
        break;
      }
    }
    return at;
}

std::optional<ArrivalCurve>
ArrivalCurve::parse(const std::string &spec)
{
    ArrivalCurve c;
    if (spec == "storm") {
        c.kind = ArrivalKind::Storm;
        return c;
    }
    if (spec.rfind("poisson:", 0) == 0) {
        char *end = nullptr;
        const double rate = std::strtod(spec.c_str() + 8, &end);
        if (!end || *end != '\0' || rate <= 0.0)
            return std::nullopt;
        c.kind = ArrivalKind::Poisson;
        c.poissonRatePerMcycle = rate;
        return c;
    }
    if (spec.rfind("step:", 0) == 0) {
        unsigned batch = 0;
        unsigned long long period = 0;
        char trail = '\0';
        if (std::sscanf(spec.c_str() + 5, "%u@%llu%c", &batch,
                        &period, &trail) != 2 ||
            batch == 0 || period == 0)
            return std::nullopt;
        c.kind = ArrivalKind::Step;
        c.stepBatch = batch;
        c.stepPeriodCycles = period;
        return c;
    }
    return std::nullopt;
}

std::string
ArrivalCurve::describe() const
{
    char buf[64];
    switch (kind) {
      case ArrivalKind::Storm:
        return "storm";
      case ArrivalKind::Step:
        std::snprintf(buf, sizeof(buf), "step:%u@%llu", stepBatch,
                      static_cast<unsigned long long>(
                          stepPeriodCycles));
        return buf;
      case ArrivalKind::Poisson:
        std::snprintf(buf, sizeof(buf), "poisson:%g",
                      poissonRatePerMcycle);
        return buf;
    }
    return "?";
}

} // namespace cdvm::fleet
