/**
 * @file
 * Context-arrival curves for the multi-tenant fleet server.
 *
 * A boot storm is not one shape: contexts may all arrive at once
 * (power-on of a rack), in stepped batches (a rolling deploy), or as
 * a Poisson stream (organic tenant churn). An ArrivalCurve turns a
 * (fleet seed, context count) pair into a deterministic, nondecreasing
 * list of admission times on the fleet's virtual cycle clock, so every
 * run of the same configuration admits the same contexts at the same
 * instants.
 */

#ifndef CDVM_FLEET_ARRIVAL_HH
#define CDVM_FLEET_ARRIVAL_HH

#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm::fleet
{

/** Shapes of the admission schedule. */
enum class ArrivalKind : u8
{
    Storm,   //!< every context due at cycle 0 (classic boot storm)
    Step,    //!< fixed-size batches at a fixed cycle period
    Poisson, //!< exponential inter-arrival gaps (organic churn)
};

const char *arrivalKindName(ArrivalKind k);

/** One admission schedule, deterministic given the fleet seed. */
struct ArrivalCurve
{
    ArrivalKind kind = ArrivalKind::Storm;

    /** Poisson: mean admissions per million fleet cycles. */
    double poissonRatePerMcycle = 4.0;

    /** Step: contexts admitted per batch. */
    unsigned stepBatch = 32;
    /** Step: fleet cycles between batches. */
    u64 stepPeriodCycles = 2'000'000;

    /**
     * Admission times (fleet cycles, nondecreasing) for `contexts`
     * contexts. Poisson gaps are drawn from a Pcg32 stream derived
     * from fleet_seed alone, so the schedule is a pure function of
     * (curve, contexts, fleet_seed).
     */
    std::vector<u64> admitClocks(unsigned contexts,
                                 u64 fleet_seed) const;

    /**
     * Parse a curve spec: "storm", "step:<batch>@<cycles>" or
     * "poisson:<rate-per-Mcycle>". Returns nullopt on malformed input.
     */
    static std::optional<ArrivalCurve> parse(const std::string &spec);

    /** Round-trippable description ("step:32@2000000"). */
    std::string describe() const;
};

} // namespace cdvm::fleet

#endif // CDVM_FLEET_ARRIVAL_HH
