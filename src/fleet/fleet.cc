#include "fleet/fleet.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.hh"

namespace cdvm::fleet
{

namespace
{

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Nearest-rank percentile over a sorted sample (q in [0,1]). */
double
percentile(const std::vector<u64> &sorted, double q)
{
    if (sorted.empty())
        return -1.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const std::size_t idx =
        static_cast<std::size_t>(std::llround(pos));
    return static_cast<double>(
        sorted[std::min(idx, sorted.size() - 1)]);
}

} // namespace

u64
deriveSeed(u64 fleet_seed, u64 ctx_id)
{
    const u64 s = mix64(fleet_seed ^ mix64(ctx_id + 0x666c6565ULL));
    return s ? s : 1;
}

engine::EngineConfig
tenantEngineConfig(engine::EngineConfig base)
{
    // Capacity presets sized for hundreds of co-resident contexts.
    // Guest memory and the code caches are sparse (pages materialize
    // on touch), so the arenas below bound the worst case, not the
    // common one. Staging policy knobs are deliberately untouched.
    base.bbtCacheBytes = u64{512} << 10;
    base.sbtCacheBytes = u64{512} << 10;
    base.lookupReserve = 1024;
    base.lookasideEntries = 128;
    base.decodeCacheEntries = 1024;
    base.branchProfReserve = 512;
    base.branchProfCap = 8192;
    base.coldCounterCap = 8192;
    base.sbtFailedCap = 2048;
    base.flightRecorderEvents = 256;
    // Continuous profiling is a single-VM observability feature; the
    // fleet's own milestones cover the startup story.
    base.profileSamplePeriod = 0;
    base.snapshotEveryInsns = 0;
    return base;
}

WorkWeights
WorkWeights::forConfig(const engine::EngineConfig &cfg)
{
    WorkWeights w;
    if (cfg.cold == engine::ColdKind::XltAssistedBbt)
        w.bbtTranslate = engine::params::BBT_ASSIST_CYCLES_PER_INSN;
    return w;
}

double
WorkClockSink::weight(TracePhase p) const
{
    switch (p) {
      case TracePhase::Interp:
      case TracePhase::ColdExec:
        return wt.interp;
      case TracePhase::X86Mode:
        return wt.x86Mode;
      case TracePhase::BbtExec:
        return wt.bbtExec;
      case TracePhase::SbtExec:
        return wt.sbtExec;
      case TracePhase::BbtTranslate:
        return wt.bbtTranslate;
      case TracePhase::SbtOptimize:
        return wt.sbtOptimize;
      case TracePhase::WarmInstall:
        return wt.warmInstall;
      default:
        return 0.0;
    }
}

/** One workload class: the program every (i % workloads)-th context
 *  boots, plus its interpreter-reference first-halt state. */
struct FleetServer::WorkloadClass
{
    u64 seed = 0;
    workload::Program program;
    x86::CpuState refHalt; //!< architected state at the first HLT
    bool refOk = false;
};

struct FleetServer::Tenant
{
    enum class State : u8
    {
        Pending,
        Runnable,
        Done,
    };

    unsigned id = 0;
    unsigned workload = 0;
    State state = State::Pending;
    std::unique_ptr<x86::Memory> mem;
    std::unique_ptr<vmm::Vmm> vm;
    x86::CpuState cpu;
    WorkClockSink clock;
    /** Cycles already folded into the fleet clock. */
    u64 chargedCycles = 0;
    bool ranYet = false;
    bool badState = false;
    ContextResult res;
};

FleetServer::FleetServer(const FleetConfig &config)
    : cfg(config),
      tenantCfg(cfg.shrinkTenants ? tenantEngineConfig(cfg.engineCfg)
                                  : cfg.engineCfg),
      weights(WorkWeights::forConfig(tenantCfg))
{
    if (cfg.contexts == 0)
        cfg.contexts = 1;
    if (cfg.workloads == 0)
        cfg.workloads = 1;
    if (cfg.workloads > cfg.contexts)
        cfg.workloads = cfg.contexts;

    // Asynchrony in a fleet is decided here, not per tenant: either
    // one shared pool serves everyone, or everyone is synchronous.
    // (A private pool per tenant would mean threads = contexts x
    // workers -- exactly the resource blowup this layer exists to
    // avoid.)
    if (cfg.sharedPoolWorkers > 0) {
        pool = std::make_unique<ThreadPool>(cfg.sharedPoolWorkers,
                                            cfg.sharedPoolQueueCap);
        tenantCfg.asyncTranslators = cfg.sharedPoolWorkers;
        tenantCfg.asyncQueueCap = cfg.sharedPoolQueueCap;
    } else {
        tenantCfg.asyncTranslators = 0;
    }
    // Tenants never touch the filesystem on their own.
    tenantCfg.warmStartLoadPath.clear();
    tenantCfg.warmStartSavePath.clear();
    tenantCfg.flightDumpPath.clear();
}

FleetServer::~FleetServer() = default;

void
FleetServer::buildWorkloads()
{
    classes.resize(cfg.workloads);
    for (unsigned w = 0; w < cfg.workloads; ++w) {
        WorkloadClass &c = classes[w];
        c.seed = deriveSeed(cfg.fleetSeed, w);
        workload::ProgramParams p = cfg.workloadParams;
        p.seed = c.seed;
        c.program = workload::generateProgram(p);

        // Interpreter reference: the architected state at the first
        // HLT, against which every tenant's first halt is checked.
        x86::Memory mem;
        c.program.loadInto(mem);
        c.refHalt = c.program.initialState();
        x86::Interpreter interp(c.refHalt, mem);
        for (u64 i = 0; i < u64{1} << 32; ++i) {
            const x86::StepResult r = interp.step();
            if (r.exit == x86::Exit::Halted) {
                c.refOk = true;
                break;
            }
            if (r.exit != x86::Exit::None)
                break;
        }
        if (!c.refOk)
            cdvm_warn("fleet workload %u (seed %llu): reference run "
                      "did not halt",
                      w, static_cast<unsigned long long>(c.seed));
    }
}

void
FleetServer::admit(std::size_t idx, u64 due)
{
    Tenant &t = *tenants[idx];
    const WorkloadClass &c = classes[t.workload];

    t.mem = std::make_unique<x86::Memory>();
    c.program.loadInto(*t.mem);
    t.cpu = c.program.initialState();

    engine::SharedServices svc;
    svc.sbtPool = pool.get();
    // One shared zero-copy image for the whole fleet wins over the
    // per-class parsed repositories. An endpoint binding wins over
    // both: it is resolved per admission, so later contexts pick up
    // newly published generations.
    if (cfg.imageEndpoint)
        svc.warmImage = cfg.imageEndpoint->acquire();
    if (!svc.warmImage && cfg.warmImage)
        svc.warmImage = cfg.warmImage;
    if (!svc.warmImage && !cfg.warmRepos.empty())
        svc.warmRepo =
            cfg.warmRepos[t.workload % cfg.warmRepos.size()];

    t.vm = std::make_unique<vmm::Vmm>(*t.mem, tenantCfg, svc);
    t.vm->attachSink(&t.clock);
    // The warm fill ran inside the ctor, before the sink attach:
    // charge it out of band so warm boots pay their install bill on
    // the same clock cold boots pay translation on. Mapped-image
    // installs skip the decode+copy, so they bill the cheaper rate.
    const double warm_cpi =
        svc.warmImage ? weights.warmInstallMapped : weights.warmInstall;
    t.clock.charge(
        warm_cpi *
        static_cast<double>(t.vm->stats().warmInsnsInstalled));

    t.state = Tenant::State::Runnable;
    t.res.admitClock = due;
    t.res.programSeed = c.seed;
}

u64
FleetServer::remainingOf(const Tenant &t) const
{
    const u64 retired = t.vm->stats().totalRetired();
    // A context past the target still owes its run to the next HLT;
    // keep it schedulable with a minimal claim on the core.
    return retired < cfg.targetInsns ? cfg.targetInsns - retired : 1;
}

void
FleetServer::retire(Tenant &t, u64 now)
{
    const engine::EngineStats &st = t.vm->stats();
    ContextResult &r = t.res;
    r.doneClock = now;
    r.retired = st.totalRetired();
    r.cycles = t.chargedCycles;
    r.bbtTranslations = st.bbtTranslations;
    r.sbtTranslations = st.sbtTranslations;
    r.warmInstalled = st.warmInstalled;
    r.warmInvalidated = st.warmInvalidated;
    r.warmRelocations = st.warmRelocations;
    r.warmBodyCopies = st.warmBodyCopies;
    r.asyncQueueRejects = st.asyncSbtQueueRejects;
    r.cacheFlushes = st.bbtCacheFlushes + st.sbtCacheFlushes;
    r.ok = !t.badState && r.reruns > 0;

    if (cfg.exportPerContext) {
        StatRegistry local;
        t.vm->exportStats(local);
        ctxStats.merge(local, "ctx." + std::to_string(t.id));
    }

    // Evict: the guest memory, code caches and lookup structures all
    // die here; only the ContextResult (and the merged stats) remain.
    t.vm.reset();
    t.mem.reset();
    t.state = Tenant::State::Done;
}

FleetResult
FleetServer::run()
{
    if (ran)
        cdvm_panic("FleetServer::run called twice");
    ran = true;

    const auto host0 = std::chrono::steady_clock::now();
    buildWorkloads();

    tenants.clear();
    tenants.reserve(cfg.contexts);
    for (unsigned i = 0; i < cfg.contexts; ++i) {
        auto t = std::make_unique<Tenant>();
        t->id = i;
        t->workload = i % cfg.workloads;
        t->clock = WorkClockSink(weights);
        t->res.id = i;
        t->res.workload = t->workload;
        tenants.push_back(std::move(t));
    }

    const std::vector<u64> admits =
        cfg.arrival.admitClocks(cfg.contexts, cfg.fleetSeed);
    FleetScheduler sched(cfg.policy, cfg.quantumInsns);

    u64 clock = 0;
    std::size_t nextAdmit = 0;
    unsigned resident = 0;
    std::vector<std::size_t> runnable; // tenant indices, admit order
    std::vector<u64> remaining;        // parallel scratch for sched

    while (result.completed + result.failed < cfg.contexts) {
        while (nextAdmit < tenants.size() &&
               admits[nextAdmit] <= clock) {
            admit(nextAdmit, admits[nextAdmit]);
            runnable.push_back(nextAdmit);
            ++nextAdmit;
            ++resident;
            result.peakResident =
                std::max(result.peakResident, resident);
        }
        if (runnable.empty()) {
            // Fleet idle: jump the clock to the next arrival.
            clock = admits[nextAdmit];
            continue;
        }

        remaining.clear();
        for (std::size_t idx : runnable)
            remaining.push_back(remainingOf(*tenants[idx]));
        const FleetScheduler::Decision d = sched.next(remaining);
        Tenant &t = *tenants[runnable[d.slot]];
        if (!t.ranYet) {
            t.ranYet = true;
            t.res.firstRunClock = clock;
        }

        const x86::Exit e = t.vm->run(t.cpu, d.sliceInsns);

        // Fold this slice's weighted work into the fleet clock.
        const u64 cyc = t.clock.cycles();
        clock += cyc - t.chargedCycles;
        t.chargedCycles = cyc;

        const u64 retired = t.vm->stats().totalRetired();
        if (!t.res.milestoneClock && retired >= cfg.milestoneInsns)
            t.res.milestoneClock = clock;

        if (e == x86::Exit::None)
            continue; // slice exhausted, context stays runnable

        bool done = false;
        if (e == x86::Exit::Halted) {
            if (t.res.reruns == 0) {
                // First completion: differential check against the
                // interpreter reference (regs + eip at the HLT).
                const WorkloadClass &c = classes[t.workload];
                if (!c.refOk || t.cpu.regs != c.refHalt.regs ||
                    t.cpu.eip != c.refHalt.eip)
                    t.badState = true;
            }
            ++t.res.reruns;
            if (retired >= cfg.targetInsns)
                done = true;
            else
                t.cpu = classes[t.workload].program.initialState();
        } else {
            // Trap or decode fault: generated programs never do this.
            t.badState = true;
            done = true;
        }

        if (done) {
            retire(t, clock);
            if (t.res.ok)
                ++result.completed;
            else
                ++result.failed;
            --resident;
            runnable.erase(runnable.begin() +
                           static_cast<std::ptrdiff_t>(d.slot));
        }
    }

    result.fleetClock = clock;
    result.slices = sched.slices();
    result.hostSeconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - host0)
            .count();

    std::vector<u64> lat;
    for (const auto &tp : tenants) {
        const ContextResult &r = tp->res;
        result.contexts.push_back(r);
        result.totalRetired += r.retired;
        result.totalReruns += r.reruns;
        if (r.milestoneClock) {
            ++result.reachedMilestone;
            lat.push_back(r.timeToMilestone());
        }
    }
    std::sort(lat.begin(), lat.end());
    result.p50TimeToMilestone = percentile(lat, 0.50);
    result.p99TimeToMilestone = percentile(lat, 0.99);
    result.guestMips =
        result.hostSeconds > 0.0
            ? static_cast<double>(result.totalRetired) /
                  result.hostSeconds / 1e6
            : 0.0;
    return result;
}

void
FleetServer::exportStats(StatRegistry &reg) const
{
    const FleetResult &r = result;
    reg.set("fleet.contexts", static_cast<double>(cfg.contexts),
            "guest contexts hosted");
    reg.set("fleet.workloads", static_cast<double>(cfg.workloads),
            "distinct workload classes");
    reg.set("fleet.completed", static_cast<double>(r.completed),
            "contexts retired normally");
    reg.set("fleet.failed", static_cast<double>(r.failed),
            "contexts with abnormal exit or state mismatch");
    reg.set("fleet.clock_cycles", static_cast<double>(r.fleetClock),
            "final fleet virtual clock (weighted work cycles)");
    reg.set("fleet.retired_total",
            static_cast<double>(r.totalRetired),
            "x86 instructions retired across the fleet");
    reg.set("fleet.reruns_total", static_cast<double>(r.totalReruns),
            "guest program completions across the fleet");
    reg.set("fleet.sched.slices", static_cast<double>(r.slices),
            "scheduler time slices handed out");
    reg.set("fleet.sched.quantum_insns",
            static_cast<double>(cfg.quantumInsns),
            "retired-insn quantum per slice");
    reg.set("fleet.peak_resident",
            static_cast<double>(r.peakResident),
            "max simultaneously live contexts");
    reg.set("fleet.host_seconds", r.hostSeconds,
            "wall time of the fleet run (host metric)");
    reg.set("fleet.guest_mips", r.guestMips,
            "aggregate retired guest MIPS (host metric)");
    reg.set("fleet.milestone.insns",
            static_cast<double>(cfg.milestoneInsns),
            "startup milestone (retired insns)");
    reg.set("fleet.milestone.reached",
            static_cast<double>(r.reachedMilestone),
            "contexts that reached the milestone");
    reg.set("fleet.milestone.p50_cycles", r.p50TimeToMilestone,
            "median admission-to-milestone latency (fleet cycles)");
    reg.set("fleet.milestone.p99_cycles", r.p99TimeToMilestone,
            "p99 admission-to-milestone latency (fleet cycles)");

    u64 warm_installed = 0, warm_invalidated = 0, rejects = 0,
        flushes = 0, warm_relocs = 0, warm_copies = 0;
    for (const ContextResult &c : r.contexts) {
        warm_installed += c.warmInstalled;
        warm_invalidated += c.warmInvalidated;
        warm_relocs += c.warmRelocations;
        warm_copies += c.warmBodyCopies;
        rejects += c.asyncQueueRejects;
        flushes += c.cacheFlushes;
    }
    reg.set("fleet.warm.installed_total",
            static_cast<double>(warm_installed),
            "warm-start translations installed across the fleet");
    reg.set("fleet.warm.invalidated_total",
            static_cast<double>(warm_invalidated),
            "warm-start records rejected across the fleet");
    reg.set("fleet.warm.relocations_total",
            static_cast<double>(warm_relocs),
            "warm-start chain fixups across the fleet");
    reg.set("fleet.warm.body_copies_total",
            static_cast<double>(warm_copies),
            "warm-start decode+copy installs (0 = zero-copy image)");
    if (cfg.warmImage) {
        reg.set("fleet.warm.image.bytes",
                static_cast<double>(cfg.warmImage->sizeBytes()),
                "bytes of the one image every context shares");
        reg.set("fleet.warm.image.records",
                static_cast<double>(cfg.warmImage->recordCount()),
                "records in the shared image");
        reg.set("fleet.warm.image.dedupe_hits",
                static_cast<double>(
                    cfg.warmImage->header().dedupeHits),
                "records merged by content at image build");
        reg.set("fleet.warm.image.evicted",
                static_cast<double>(cfg.warmImage->header().evicted),
                "cold-tail records evicted by the image budget");
    }
    reg.set("fleet.async.queue_rejects_total",
            static_cast<double>(rejects),
            "shared-pool back-pressure rejections across the fleet");
    reg.set("fleet.flushes_total", static_cast<double>(flushes),
            "code-cache flushes across the fleet");

    if (cfg.exportPerContext)
        reg.merge(ctxStats, "");
}

} // namespace cdvm::fleet
