/**
 * @file
 * The multi-tenant emulation server: many guest contexts, one process.
 *
 * The paper studies one VM booting; a co-designed host in production
 * hosts fleets of them, and the startup transient turns into a boot
 * storm: every arriving context wants BBT translation and SBT
 * optimization at once. FleetServer reproduces that regime
 * functionally:
 *
 *  - each context is a full per-tenant Vmm (private guest memory,
 *    code caches, lookup structures, profilers, stats) constructed
 *    over process-shared services (one SBT worker pool, one parsed
 *    warm-start repository per workload);
 *  - a scheduler multiplexes the contexts onto the emulation thread
 *    in retired-instruction time slices (fleet/scheduler.hh);
 *  - a deterministic virtual clock prices every context's staged
 *    work in cycles from the paper's constants (engine/params.hh),
 *    so time-to-milestone numbers -- and the warm-vs-cold gate built
 *    on them -- are exactly reproducible, independent of host load;
 *  - admission follows an ArrivalCurve (storm, stepped batches,
 *    Poisson churn), and retirement evicts the context's memory and
 *    caches after folding its stats into ctx.<id>.* subtrees.
 *
 * Determinism: everything (workload generation, arrival times,
 * scheduling, the virtual clock) derives from FleetConfig alone.
 * Host wall-clock appears only in the reported aggregate MIPS.
 */

#ifndef CDVM_FLEET_FLEET_HH
#define CDVM_FLEET_FLEET_HH

#include <memory>
#include <string>
#include <vector>

#include "common/statreg.hh"
#include "common/threadpool.hh"
#include "engine/events.hh"
#include "engine/params.hh"
#include "fleet/arrival.hh"
#include "fleet/scheduler.hh"
#include "vmm/vmm.hh"
#include "workload/program_gen.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::fleet
{

/**
 * Deterministic per-context seed: a splitmix64-style mix of the fleet
 * seed and the context id. Context i of workload class w derives its
 * program from deriveSeed(fleetSeed, w), so reseeding the fleet
 * reseeds every tenant, and the same (fleet seed, context id) always
 * boots the same guest.
 */
u64 deriveSeed(u64 fleet_seed, u64 ctx_id);

/**
 * Shrink an engine config's per-tenant capacity presets so hundreds
 * of co-resident contexts fit one process: smaller code-cache arenas,
 * lookup/lookaside/decode-cache presets, profiling rings. Staging
 * behavior (cold strategy, detector, thresholds) is untouched.
 */
engine::EngineConfig tenantEngineConfig(engine::EngineConfig base);

/**
 * Per-instruction cycle weights the fleet clock charges for each
 * stage, drawn from the paper's measured constants. forConfig()
 * swaps in the XLTx86-assisted BBT cost when the config's cold path
 * uses the hardware assist.
 */
struct WorkWeights
{
    double interp = engine::params::INTERP_SLOWDOWN;
    double x86Mode = 1.0;
    double bbtExec = engine::params::BBT_VS_SBT_CPI;
    double sbtExec = 1.0;
    double bbtTranslate = engine::params::BBT_CYCLES_PER_INSN;
    double sbtOptimize = engine::params::SBT_CYCLES_PER_INSN;
    /** Warm-fill install cost per instruction for the v1 repository
     *  path (decode + copy; engine/params WARM_LOAD_DECODE_CPI). */
    double warmInstall = engine::params::WARM_LOAD_DECODE_CPI;
    /** Warm-fill install cost per instruction when installing
     *  zero-copy views from a shared mapped image (relocation only;
     *  engine/params WARM_LOAD_MAPPED_CPI, the timing model's
     *  warmLoadCyclesPerInsn). */
    double warmInstallMapped = engine::params::WARM_LOAD_MAPPED_CPI;

    static WorkWeights forConfig(const engine::EngineConfig &cfg);
};

/**
 * StageSink that prices a context's event stream in virtual cycles.
 * Background work (async SBT on a worker thread) is occupancy, not
 * critical-path time, and is not charged.
 */
class WorkClockSink : public engine::StageSink
{
  public:
    explicit WorkClockSink(const WorkWeights &w = {}) : wt(w) {}

    void
    onEvent(const engine::StageEvent &e) override
    {
        if (e.instant || e.background || e.insns == 0)
            return;
        acc += weight(e.stage) * static_cast<double>(e.insns);
    }

    /** Cycles accumulated so far (monotone). */
    u64 cycles() const { return static_cast<u64>(acc); }

    /** Charge out-of-band work (the ctor-time warm fill). */
    void
    charge(double cycles_worth)
    {
        acc += cycles_worth;
    }

  private:
    double weight(TracePhase p) const;
    WorkWeights wt;
    double acc = 0.0;
};

/** One fleet run's knobs. */
struct FleetConfig
{
    unsigned contexts = 16;
    /** Distinct workload classes; context i runs class i % workloads,
     *  each class generated from deriveSeed(fleetSeed, class). */
    unsigned workloads = 4;
    u64 fleetSeed = 1;

    SchedPolicy policy = SchedPolicy::RoundRobin;
    /** Retired-insn quantum per slice. */
    u64 quantumInsns = 20'000;

    /** Milestone for the startup metric (time-to-first-N-insns). */
    u64 milestoneInsns = 1'000'000;
    /** A context completes at its first HLT with >= target retired
     *  (the generated program reruns until then, so slicing never
     *  changes the final architected state). */
    u64 targetInsns = 1'000'000;

    ArrivalCurve arrival{};

    /** Per-tenant engine template (seed/paths are per-context); run
     *  through tenantEngineConfig() by FleetServer unless
     *  shrinkTenants is false. */
    engine::EngineConfig engineCfg;
    bool shrinkTenants = true;

    /** Background SBT workers in the process-shared pool (0 = every
     *  tenant optimizes synchronously; tenant asyncTranslators are
     *  overridden to match). */
    unsigned sharedPoolWorkers = 0;
    /** Bound on queued optimization requests in the shared pool. */
    std::size_t sharedPoolQueueCap = 256;

    /** Workload shape template; seed is overridden per class. */
    workload::ProgramParams workloadParams;

    /** Pre-parsed warm repositories, indexed by workload class
     *  (empty: every context cold-boots). */
    std::vector<std::shared_ptr<const dbt::Repository>> warmRepos;

    /**
     * ONE shared zero-copy translation image for the whole fleet:
     * every admitted context installs views from this mapping (dedupe
     * by guest-page content keeps cross-class records apart). Takes
     * precedence over warmRepos. The boot-storm win: N contexts, one
     * parse, one physical copy, relocation-only installs.
     */
    std::shared_ptr<const dbt::TransImage> warmImage;

    /**
     * Image-endpoint binding: where the fleet *gets* its shared image
     * from — an in-process dbt::ImageStore or a serve::ImageClient
     * bound to an image-host daemon in another process. Highest
     * precedence; resolved to a generation handle at each admission,
     * so contexts admitted after a publish pick up the new generation
     * while running contexts keep theirs. A null acquire() falls
     * through to warmImage/warmRepos (and then to cold boots).
     */
    std::shared_ptr<dbt::ImageEndpoint> imageEndpoint;

    /** Fold each retired context's full stat export into a
     *  ctx.<id>.* subtree (exportStats). Off by default: 256 contexts
     *  of per-context histograms are bulky. */
    bool exportPerContext = false;
};

/** One context's lifecycle summary. */
struct ContextResult
{
    unsigned id = 0;
    unsigned workload = 0;
    u64 programSeed = 0;
    u64 admitClock = 0;     //!< fleet cycles at admission
    u64 firstRunClock = 0;  //!< fleet cycles at the first slice
    u64 milestoneClock = 0; //!< fleet cycles when retired hit the
                            //!< milestone (0 = never reached)
    u64 doneClock = 0;      //!< fleet cycles at completion
    u64 retired = 0;        //!< x86 instructions retired
    u64 cycles = 0;         //!< weighted cycles this context consumed
    u64 reruns = 0;         //!< program completions before target
    bool ok = false;        //!< halted normally, first-halt state
                            //!< matched the interpreter reference
    // Headline per-context engine counters (full export optional).
    u64 bbtTranslations = 0;
    u64 sbtTranslations = 0;
    u64 warmInstalled = 0;
    u64 warmInvalidated = 0;
    u64 warmRelocations = 0; //!< chain fixups in the relocation pass
    u64 warmBodyCopies = 0;  //!< 0 when installed from a mapped image
    u64 asyncQueueRejects = 0;
    u64 cacheFlushes = 0;

    /** Admission-to-milestone latency, fleet cycles (0 if never). */
    u64
    timeToMilestone() const
    {
        return milestoneClock ? milestoneClock - admitClock : 0;
    }
};

/** Whole-fleet outcome. */
struct FleetResult
{
    std::vector<ContextResult> contexts;
    u64 fleetClock = 0;   //!< final virtual clock (cycles)
    u64 totalRetired = 0; //!< x86 instructions across the fleet
    u64 totalReruns = 0;
    u64 slices = 0;       //!< scheduler decisions made
    unsigned peakResident = 0; //!< max simultaneously live contexts
    unsigned completed = 0;
    unsigned failed = 0;  //!< abnormal exit or reference mismatch

    double hostSeconds = 0.0; //!< wall time of run() (host metric)
    double guestMips = 0.0;   //!< totalRetired / hostSeconds / 1e6

    // Startup latency distribution (admission -> milestone), fleet
    // cycles, over contexts that reached the milestone. -1 if none.
    unsigned reachedMilestone = 0;
    double p50TimeToMilestone = -1.0;
    double p99TimeToMilestone = -1.0;
};

/** Hosts N contexts over shared services and runs them to completion. */
class FleetServer
{
  public:
    explicit FleetServer(const FleetConfig &config);
    ~FleetServer();

    /** Admit, schedule and retire every context; returns the summary
     *  (also kept for exportStats). Call once. */
    FleetResult run();

    /**
     * Publish fleet.* aggregates and -- with
     * FleetConfig::exportPerContext -- each retired context's full
     * stat export nested under ctx.<id>.*. Call after run().
     */
    void exportStats(StatRegistry &reg) const;

    const FleetConfig &config() const { return cfg; }
    /** The process-shared SBT pool (null when synchronous). */
    const ThreadPool *sharedPool() const { return pool.get(); }

  private:
    struct Tenant;
    struct WorkloadClass;

    void buildWorkloads();
    void admit(std::size_t idx, u64 due);
    void retire(Tenant &t, u64 now);
    u64 remainingOf(const Tenant &t) const;

    FleetConfig cfg;
    engine::EngineConfig tenantCfg; //!< resolved per-tenant template
    WorkWeights weights;
    std::unique_ptr<ThreadPool> pool;
    std::vector<WorkloadClass> classes;
    std::vector<std::unique_ptr<Tenant>> tenants;
    FleetResult result;
    bool ran = false;
    /** Retired contexts' stat exports, already ctx.<id>.*-prefixed. */
    StatRegistry ctxStats;
};

} // namespace cdvm::fleet

#endif // CDVM_FLEET_FLEET_HH
