#include "analysis/startup_curve.hh"

#include <algorithm>
#include <cmath>

#include "common/statreg.hh"

namespace cdvm::analysis
{

using timing::CurveSample;
using timing::StartupResult;

namespace
{

/** Log-spaced cycle grid shared by the averaged curves. */
std::vector<double>
cycleGrid(double max_cycle)
{
    std::vector<double> g;
    for (double c = 1000.0; c <= max_cycle; c *= 1.2)
        g.push_back(c);
    return g;
}

double
interpInsns(const std::vector<CurveSample> &s, double cycle)
{
    if (s.empty())
        return 0.0;
    if (cycle <= static_cast<double>(s.front().cycles)) {
        // Before the first sample: linear from the origin.
        double c0 = static_cast<double>(s.front().cycles);
        return c0 > 0 ? s.front().insns * (cycle / c0) : 0.0;
    }
    if (cycle >= static_cast<double>(s.back().cycles))
        return static_cast<double>(s.back().insns);
    // Binary search for the bracketing samples.
    std::size_t lo = 0, hi = s.size() - 1;
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (static_cast<double>(s[mid].cycles) <= cycle)
            lo = mid;
        else
            hi = mid;
    }
    double c0 = static_cast<double>(s[lo].cycles);
    double c1 = static_cast<double>(s[hi].cycles);
    double f = c1 > c0 ? (cycle - c0) / (c1 - c0) : 0.0;
    return s[lo].insns + f * (static_cast<double>(s[hi].insns) -
                              static_cast<double>(s[lo].insns));
}

double
interpDecode(const std::vector<CurveSample> &s, double cycle)
{
    if (s.empty())
        return 0.0;
    if (cycle <= static_cast<double>(s.front().cycles)) {
        double c0 = static_cast<double>(s.front().cycles);
        return c0 > 0 ? s.front().decodeActive * (cycle / c0) : 0.0;
    }
    if (cycle >= static_cast<double>(s.back().cycles))
        return s.back().decodeActive;
    std::size_t lo = 0, hi = s.size() - 1;
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (static_cast<double>(s[mid].cycles) <= cycle)
            lo = mid;
        else
            hi = mid;
    }
    double c0 = static_cast<double>(s[lo].cycles);
    double c1 = static_cast<double>(s[hi].cycles);
    double f = c1 > c0 ? (cycle - c0) / (c1 - c0) : 0.0;
    return s[lo].decodeActive +
           f * (s[hi].decodeActive - s[lo].decodeActive);
}

} // namespace

double
insnsAtCycle(const StartupResult &r, double cycle)
{
    return interpInsns(r.samples, cycle);
}

Series
normalizedIpcCurve(const StartupResult &r, const std::string &name)
{
    Series s;
    s.name = name;
    for (double c : cycleGrid(static_cast<double>(r.totalCycles))) {
        s.x.push_back(c);
        s.y.push_back(interpInsns(r.samples, c) * r.cpiRef / c);
    }
    return s;
}

double
breakevenCycle(const StartupResult &vm, const StartupResult &ref)
{
    // The breakeven point is where the VM's cumulative instruction
    // count catches back up with the reference's. Sparse early samples
    // make naive comparison noisy, so require the VM to first be
    // observably behind and then report the first crossing after that.
    double max_cycle =
        std::min(static_cast<double>(vm.totalCycles),
                 static_cast<double>(ref.totalCycles));
    bool was_behind = false;
    for (const CurveSample &s : vm.samples) {
        double c = static_cast<double>(s.cycles);
        if (c < 1000.0)
            continue;
        if (c > max_cycle)
            break;
        double ref_insns = interpInsns(ref.samples, c);
        double vm_insns = static_cast<double>(s.insns);
        if (!was_behind) {
            if (vm_insns < 0.98 * ref_insns)
                was_behind = true;
            continue;
        }
        if (vm_insns >= ref_insns)
            return c;
    }
    // Never observably behind: startup overhead is effectively zero.
    if (!was_behind)
        return 0.0;
    return -1.0;
}

double
halfGainCycle(const StartupResult &vm, double gain)
{
    const double target = 1.0 + gain / 2.0;
    for (const CurveSample &s : vm.samples) {
        double c = static_cast<double>(s.cycles);
        if (c < 1000.0)
            continue;
        double norm = static_cast<double>(s.insns) * vm.cpiRef / c;
        if (norm >= target)
            return c;
    }
    return -1.0;
}

Series
decodeActivityCurve(const StartupResult &r, const std::string &name)
{
    Series s;
    s.name = name;
    for (double c : cycleGrid(static_cast<double>(r.totalCycles))) {
        s.x.push_back(c);
        s.y.push_back(100.0 * interpDecode(r.samples, c) / c);
    }
    return s;
}

Series
averageNormalizedIpc(const std::vector<StartupResult> &runs,
                     const std::string &name)
{
    Series s;
    s.name = name;
    if (runs.empty())
        return s;
    double max_cycle = 0.0;
    for (const StartupResult &r : runs)
        max_cycle =
            std::max(max_cycle, static_cast<double>(r.totalCycles));
    for (double c : cycleGrid(max_cycle)) {
        // Aggregate normalized work across apps; runs that finished
        // before c are extrapolated at their steady-state IPC.
        double norm = 0.0;
        for (const StartupResult &r : runs) {
            double ins;
            if (c <= static_cast<double>(r.totalCycles)) {
                ins = interpInsns(r.samples, c);
            } else {
                ins = static_cast<double>(r.totalInsns) +
                      (c - static_cast<double>(r.totalCycles)) *
                          r.steadyIpc;
            }
            norm += ins * r.cpiRef / c;
        }
        s.x.push_back(c);
        s.y.push_back(norm / static_cast<double>(runs.size()));
    }
    return s;
}

Series
averageDecodeActivity(const std::vector<StartupResult> &runs,
                      const std::string &name)
{
    Series s;
    s.name = name;
    if (runs.empty())
        return s;
    double max_cycle = 0.0;
    for (const StartupResult &r : runs)
        max_cycle =
            std::max(max_cycle, static_cast<double>(r.totalCycles));
    for (double c : cycleGrid(max_cycle)) {
        double act = 0.0;
        for (const StartupResult &r : runs) {
            double cc = std::min(c, static_cast<double>(r.totalCycles));
            // After a run finishes, extrapolate its final activity
            // ratio (the run would continue in steady state).
            double ratio = cc > 0 ? interpDecode(r.samples, cc) / cc
                                  : 0.0;
            act += 100.0 * ratio;
        }
        s.x.push_back(c);
        s.y.push_back(act / static_cast<double>(runs.size()));
    }
    return s;
}

double
cyclesToInsns(const StartupResult &r, double n)
{
    const std::vector<CurveSample> &s = r.samples;
    if (s.empty() || n > static_cast<double>(r.totalInsns))
        return -1.0;
    if (n <= 0.0)
        return 0.0;
    // First sample at or beyond the target, then interpolate within
    // the bracketing interval (the curve is monotonic in both axes).
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (static_cast<double>(s[i].insns) < n)
            continue;
        double c1 = static_cast<double>(s[i].cycles);
        double n1 = static_cast<double>(s[i].insns);
        double c0 = 0.0, n0 = 0.0;
        if (i > 0) {
            c0 = static_cast<double>(s[i - 1].cycles);
            n0 = static_cast<double>(s[i - 1].insns);
        }
        if (n1 <= n0)
            return c1;
        return c0 + (c1 - c0) * (n - n0) / (n1 - n0);
    }
    return -1.0;
}

std::vector<StartupMilestone>
startupMilestones(const StartupResult &r)
{
    std::vector<StartupMilestone> out;
    for (u64 n = 1000; n <= u64{100'000'000}; n *= 10) {
        StartupMilestone m;
        m.insns = n;
        m.cycles = cyclesToInsns(r, static_cast<double>(n));
        out.push_back(m);
        // Keep one unreached rung so the run's end is visible.
        if (m.cycles < 0.0)
            break;
    }
    return out;
}

void
exportStartupStats(const StartupResult &r, StatRegistry &reg,
                   const std::string &prefix,
                   const StartupResult *ref)
{
    r.exportStats(reg, prefix);

    for (const StartupMilestone &m : startupMilestones(r)) {
        // Name the rung by its human-readable target: insns_10k, ...
        std::string label;
        if (m.insns >= 1'000'000)
            label = std::to_string(m.insns / 1'000'000) + "m";
        else
            label = std::to_string(m.insns / 1000) + "k";
        reg.set(prefix + ".cycles_to.insns_" + label, m.cycles,
                "cycles to reach this many instructions "
                "(negative: not reached)");
    }

    if (ref) {
        reg.set(prefix + ".breakeven_cycle", breakevenCycle(r, *ref),
                "first cycle where cumulative insns catch the "
                "reference (negative: never)");
        reg.set(prefix + ".half_gain_cycle",
                halfGainCycle(r, r.steadyGain),
                "first cycle at half the steady-state gain "
                "(negative: never)");
    }
}

} // namespace cdvm::analysis
