/**
 * @file
 * The paper's analytical model of staged emulation (Section 3.2).
 *
 *   Eq. 1: translation overhead = M_BBT * Delta_BBT + M_SBT * Delta_SBT
 *   Eq. 2: N * t_b = (N + Delta_SBT) * (t_b / p)
 *          =>  N = Delta_SBT / (p - 1)
 *
 * With the measured constants (Delta_SBT = 1152 x86 instructions,
 * p = 1.15), Eq. 2 gives the hot threshold N = 1200/0.15 = 8000 the
 * VM systems use.
 */

#ifndef CDVM_ANALYSIS_MODEL_HH
#define CDVM_ANALYSIS_MODEL_HH

#include "dbt/costs.hh"

namespace cdvm::analysis
{

/** Eq. 2: breakeven execution count for hotspot optimization. */
inline double
hotThreshold(double delta_sbt_x86, double speedup_p)
{
    return delta_sbt_x86 / (speedup_p - 1.0);
}

/** Eq. 2 instantiated with the paper's constants (rounded inputs). */
inline double
paperHotThreshold()
{
    return hotThreshold(1200.0, 1.15); // = 8000
}

/** Eq. 1: total translation overhead in native instructions. */
inline double
translationOverhead(double m_bbt, double delta_bbt, double m_sbt,
                    double delta_sbt)
{
    return m_bbt * delta_bbt + m_sbt * delta_sbt;
}

/** The Section 3.2 instantiation of Eq. 1. */
struct Eq1Breakdown
{
    double bbtComponent; //!< native instructions spent in BBT
    double sbtComponent; //!< native instructions spent in SBT
    double total() const { return bbtComponent + sbtComponent; }
};

/**
 * Paper numbers: M_BBT = 150 K, M_SBT = 3 K, Delta_BBT = 105,
 * Delta_SBT = 1674 => 15.75 M vs 5.02 M native instructions.
 */
inline Eq1Breakdown
paperEq1(double m_bbt = 150e3, double m_sbt = 3e3,
         double delta_bbt = 105.0, double delta_sbt = 1674.0)
{
    return Eq1Breakdown{m_bbt * delta_bbt, m_sbt * delta_sbt};
}

} // namespace cdvm::analysis

#endif // CDVM_ANALYSIS_MODEL_HH
