#include "analysis/freq_profile.hh"

#include <cmath>

namespace cdvm::analysis
{

namespace
{

constexpr unsigned NUM_BUCKETS = 10; // 1, 10, ..., 10^9

unsigned
bucketOf(u64 count)
{
    unsigned k = 0;
    while (count >= 10 && k + 1 < NUM_BUCKETS) {
        count /= 10;
        ++k;
    }
    return k;
}

} // namespace

u64
FreqProfile::staticAtOrAbove(u64 threshold) const
{
    u64 total = 0;
    for (const FreqBucket &b : buckets) {
        if (b.lowCount >= threshold)
            total += b.staticInsns;
    }
    return total;
}

double
FreqProfile::dynamicShareAtOrAbove(u64 threshold) const
{
    double total = 0;
    for (const FreqBucket &b : buckets) {
        if (b.lowCount >= threshold)
            total += b.dynamicShare;
    }
    return total;
}

FreqProfile
profileTrace(const workload::TraceParams &params)
{
    workload::BlockTrace trace(params);
    const auto &blocks = trace.blocks();

    std::vector<u64> count(blocks.size(), 0);
    u64 insns = 0;
    while (insns < trace.totalInsns()) {
        u32 id = trace.next();
        ++count[id];
        insns += blocks[id].insns;
    }

    FreqProfile out;
    out.dynamicInsns = insns;
    out.buckets.resize(NUM_BUCKETS);
    u64 edge = 1;
    for (unsigned k = 0; k < NUM_BUCKETS; ++k) {
        out.buckets[k].lowCount = edge;
        edge *= 10;
    }

    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (count[i] == 0)
            continue;
        unsigned k = bucketOf(count[i]);
        out.buckets[k].staticInsns += blocks[i].insns;
        out.buckets[k].dynamicShare +=
            static_cast<double>(count[i]) * blocks[i].insns;
        out.staticInsnsTouched += blocks[i].insns;
    }
    for (FreqBucket &b : out.buckets)
        b.dynamicShare /= static_cast<double>(insns);
    return out;
}

} // namespace cdvm::analysis
