/**
 * @file
 * Instruction execution-frequency profiling (paper Fig. 3).
 *
 * For a workload trace, computes per decade-of-execution-count bucket:
 * the number of static x86 instructions whose blocks executed that
 * many times, and the fraction of all dynamic instructions they
 * account for -- plus the M_BBT / M_SBT aggregates of Section 3.2.
 */

#ifndef CDVM_ANALYSIS_FREQ_PROFILE_HH
#define CDVM_ANALYSIS_FREQ_PROFILE_HH

#include <vector>

#include "common/types.hh"
#include "workload/trace_gen.hh"

namespace cdvm::analysis
{

/** One Fig. 3 bucket. */
struct FreqBucket
{
    u64 lowCount = 0;       //!< bucket lower edge (1, 10, 100, ...)
    u64 staticInsns = 0;    //!< static x86 instructions in bucket
    double dynamicShare = 0; //!< fraction of dynamic instructions
};

/** Full frequency profile of one trace. */
struct FreqProfile
{
    std::vector<FreqBucket> buckets;
    u64 staticInsnsTouched = 0; //!< M_BBT
    u64 dynamicInsns = 0;

    /** Static instructions executed at least `threshold` times. */
    u64 staticAtOrAbove(u64 threshold) const;
    /** Dynamic-instruction share from blocks at/above the threshold. */
    double dynamicShareAtOrAbove(u64 threshold) const;
};

/** Run the trace to completion, counting block executions. */
FreqProfile profileTrace(const workload::TraceParams &params);

} // namespace cdvm::analysis

#endif // CDVM_ANALYSIS_FREQ_PROFILE_HH
