/**
 * @file
 * Startup-curve analysis: normalized aggregate-IPC curves, breakeven
 * points, half-gain points and decode-activity curves, computed from
 * StartupResult sample streams.
 *
 * The paper's startup metric (Section 3.1): at time t, the aggregate
 * IPC is total instructions executed so far divided by t, normalized
 * to the reference superscalar's steady-state IPC. The breakeven point
 * is the first time the VM has executed at least as many instructions
 * as the reference processor (not the instantaneous-IPC crossing,
 * which happens much earlier).
 */

#ifndef CDVM_ANALYSIS_STARTUP_CURVE_HH
#define CDVM_ANALYSIS_STARTUP_CURVE_HH

#include <string>
#include <vector>

#include "common/table.hh"
#include "timing/startup_sim.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::analysis
{

/** Cumulative instructions at an arbitrary cycle (interpolated). */
double insnsAtCycle(const timing::StartupResult &r, double cycle);

/**
 * Normalized aggregate-IPC curve at log-spaced cycle points
 * (y = insns(t) * CPI_ref / t).
 */
Series normalizedIpcCurve(const timing::StartupResult &r,
                          const std::string &name);

/**
 * Breakeven cycle: the first cycle at which the VM's cumulative
 * instruction count reaches the reference machine's.
 * @return the cycle, or a negative value if it never breaks even
 *         within the simulated window.
 */
double breakevenCycle(const timing::StartupResult &vm,
                      const timing::StartupResult &ref);

/**
 * Half-gain cycle: first cycle where the VM's normalized aggregate
 * IPC reaches 1 + gain/2 (e.g. 1.04 for the 8 % steady-state gain).
 * @return the cycle, or negative if never reached.
 */
double halfGainCycle(const timing::StartupResult &vm, double gain);

/**
 * Decode-logic activity curve (Fig. 11): cumulative percentage of
 * cycles with the x86 decode hardware powered on, at log-spaced cycle
 * points.
 */
Series decodeActivityCurve(const timing::StartupResult &r,
                           const std::string &name);

/**
 * Average several per-app results into one curve by summing insns and
 * cycles at matched normalized positions (used for the 10-app
 * averages of Figs. 2/8/11). Results must be same-machine runs.
 */
Series averageNormalizedIpc(
    const std::vector<timing::StartupResult> &runs,
    const std::string &name);

Series averageDecodeActivity(
    const std::vector<timing::StartupResult> &runs,
    const std::string &name);

/**
 * Cycle at which the run first reaches n cumulative instructions
 * (interpolated between curve samples).
 * @return the cycle, or a negative value if the run never got there.
 */
double cyclesToInsns(const timing::StartupResult &r, double n);

/** One startup milestone: cycles to reach `insns` instructions. */
struct StartupMilestone
{
    u64 insns = 0;
    double cycles = 0.0; //!< negative if not reached
};

/**
 * Milestones at 1k/10k/.../100M instructions, up to the first target
 * beyond the run's instruction count (that one is reported as
 * unreached so the curve's end is visible).
 */
std::vector<StartupMilestone>
startupMilestones(const timing::StartupResult &r);

/**
 * Publish the startup transient into a StatRegistry under prefix.*:
 * per-stage cycle accounting (via StartupResult::exportStats), the
 * milestone ladder (prefix.cycles_to.insns_1m, ...), and breakeven /
 * half-gain points when a reference run is given.
 */
void exportStartupStats(const timing::StartupResult &r,
                        StatRegistry &reg, const std::string &prefix,
                        const timing::StartupResult *ref = nullptr);

} // namespace cdvm::analysis

#endif // CDVM_ANALYSIS_STARTUP_CURVE_HH
