/**
 * @file
 * A minimal command-line flag parser for the benchmark harnesses and
 * examples: --name value or --name=value, with typed accessors and an
 * auto-generated usage message.
 */

#ifndef CDVM_COMMON_CLI_HH
#define CDVM_COMMON_CLI_HH

#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm
{

/** Parsed command-line flags. */
class Cli
{
  public:
    /**
     * Parse argv. Unknown flags are fatal; "--help" prints usage and
     * exits. Flags must be registered with flag() before parse().
     */
    Cli(std::string description);

    /** Register a flag with a default value and help text. */
    void flag(const std::string &name, const std::string &def,
              const std::string &help);

    /** Parse argv; call after all flag() registrations. */
    void parse(int argc, char **argv);

    std::string str(const std::string &name) const;
    i64 num(const std::string &name) const;
    double real(const std::string &name) const;
    bool on(const std::string &name) const;

  private:
    struct Entry
    {
        std::string value;
        std::string help;
    };
    std::string desc;
    std::map<std::string, Entry> entries;
    std::vector<std::string> order;
};

/**
 * Global scale factor for experiment sizes, from the CDVM_SCALE
 * environment variable (default 1.0). Benches multiply their default
 * trace lengths by this, so the whole suite can be shrunk or grown
 * without editing flags.
 */
double envScale();

/**
 * Register the standard observability flags on a Cli:
 *   --stats-json=PATH           dump the global StatRegistry as JSON
 *   --trace-out=PATH            dump the phase tracer as Chrome JSON
 *   --trace-buffer-events=N     tracer ring capacity (default 262144)
 */
void addObservabilityFlags(Cli &cli);

/**
 * Act on the observability flags after parse(): enables the global
 * tracer if --trace-out was given and remembers the dump paths for
 * dumpObservability().
 */
void applyObservabilityFlags(const Cli &cli);

/**
 * Write the artifacts requested by applyObservabilityFlags (no-op if
 * neither flag was given). Call once, after the workload finishes.
 */
void dumpObservability();

} // namespace cdvm

#endif // CDVM_COMMON_CLI_HH
