#include "common/random.hh"

#include <cassert>
#include <cmath>
#include <deque>

namespace cdvm
{

double
Pcg32::normal()
{
    if (haveSpare) {
        haveSpare = false;
        return spare;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare = mag * std::sin(2.0 * M_PI * u2);
    haveSpare = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

u64
Pcg32::geometric(double p)
{
    assert(p > 0.0 && p <= 1.0);
    if (p >= 1.0)
        return 0;
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 1e-300);
    return static_cast<u64>(std::floor(std::log(u) / std::log1p(-p)));
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    const std::size_t n = weights.size();
    assert(n > 0);
    prob.assign(n, 0.0);
    alias.assign(n, 0);

    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    assert(total > 0.0);

    // Scaled probabilities; partition into under- and over-full buckets.
    std::vector<double> scaled(n);
    std::deque<u32> small, large;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * n / total;
        if (scaled[i] < 1.0)
            small.push_back(static_cast<u32>(i));
        else
            large.push_back(static_cast<u32>(i));
    }

    while (!small.empty() && !large.empty()) {
        u32 s = small.front();
        small.pop_front();
        u32 l = large.front();
        large.pop_front();
        prob[s] = scaled[s];
        alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0)
            small.push_back(l);
        else
            large.push_back(l);
    }
    while (!large.empty()) {
        prob[large.front()] = 1.0;
        large.pop_front();
    }
    while (!small.empty()) {
        prob[small.front()] = 1.0;
        small.pop_front();
    }
}

u32
DiscreteSampler::sample(Pcg32 &rng) const
{
    u32 i = rng.below(static_cast<u32>(prob.size()));
    return rng.uniform() < prob[i] ? i : alias[i];
}

std::vector<double>
ZipfSampler::makeWeights(u32 n, double s)
{
    assert(n > 0);
    std::vector<double> w(n);
    for (u32 k = 1; k <= n; ++k)
        w[k - 1] = 1.0 / std::pow(static_cast<double>(k), s);
    return w;
}

ZipfSampler::ZipfSampler(u32 n, double s) : inner(makeWeights(n, s))
{
}

} // namespace cdvm
