#include "common/table.hh"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace cdvm
{

TextTable::TextTable(std::vector<std::string> header) : head(std::move(header))
{
    assert(!head.empty());
}

void
TextTable::addRow(std::vector<std::string> row)
{
    assert(row.size() == head.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
            if (c + 1 != row.size())
                os << "  ";
        }
        os << "\n";
    };
    emit(head);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 != width.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

std::string
fmtDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
fmtCount(unsigned long long v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int cnt = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (cnt && cnt % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++cnt;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
renderSeries(const std::vector<Series> &series, const std::string &x_label,
             const std::string &y_label)
{
    std::ostringstream os;
    os << "# x=" << x_label << " y=" << y_label << "\n";
    for (const Series &s : series) {
        os << "series " << s.name << ":\n";
        assert(s.x.size() == s.y.size());
        for (std::size_t i = 0; i < s.x.size(); ++i)
            os << "  " << s.x[i] << " " << s.y[i] << "\n";
    }
    return os.str();
}

} // namespace cdvm
