/**
 * @file
 * Lightweight statistics: scalar counters, averages, and the
 * logarithmically-bucketed histograms used by the frequency-profile
 * experiments (paper Figure 3).
 */

#ifndef CDVM_COMMON_STATS_HH
#define CDVM_COMMON_STATS_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm
{

/** A running mean / min / max / variance over double samples. */
class RunningStat
{
  public:
    void
    add(double v)
    {
        if (n == 0 || v < mn)
            mn = v;
        if (n == 0 || v > mx)
            mx = v;
        sum += v;
        sumSq += v * v;
        ++n;
    }

    u64 count() const { return n; }
    double mean() const { return n ? sum / n : 0.0; }
    double min() const { return mn; }
    double max() const { return mx; }
    double total() const { return sum; }

    /** Population variance (0 with fewer than two samples). */
    double
    variance() const
    {
        if (n < 2)
            return 0.0;
        double m = mean();
        double v = sumSq / n - m * m;
        return v > 0.0 ? v : 0.0; // clamp catastrophic cancellation
    }

    /** Population standard deviation. */
    double stddev() const;

  private:
    u64 n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double mn = 0.0;
    double mx = 0.0;
};

/**
 * Histogram over power-of-base buckets: bucket k covers
 * [base^k, base^(k+1)). Bucket 0 additionally absorbs values < base.
 * Used for the Fig. 3 execution-frequency profile (base 10).
 */
class LogHistogram
{
  public:
    explicit LogHistogram(double base = 10.0, unsigned num_buckets = 10);

    /** Record one occurrence of the given value with the given weight. */
    void add(u64 value, double weight = 1.0);

    /** Index of the bucket that value falls into. */
    unsigned bucketOf(u64 value) const;

    /** Lower edge of bucket k (base^k, with bucket 0 starting at 0). */
    u64 bucketLow(unsigned k) const;

    double bucketWeight(unsigned k) const { return counts.at(k); }
    unsigned numBuckets() const { return static_cast<unsigned>(counts.size()); }
    /** The bucket base (copying registries needs the geometry). */
    double logBase() const { return base; }
    double totalWeight() const { return total; }

    /** Sum of bucket weights for buckets whose low edge >= threshold. */
    double weightAtOrAbove(u64 threshold) const;

    /**
     * Approximate p-th percentile (p in [0, 100]) of the recorded
     * values, linearly interpolated within the containing bucket.
     * Returns 0 for an empty histogram.
     */
    double percentile(double p) const;

  private:
    double base;
    std::vector<double> counts;
    double total = 0.0;
};

/**
 * A named scalar statistic with a description, grouped into a StatGroup
 * for uniform dumping.
 */
struct Scalar
{
    std::string name;
    std::string desc;
    double value = 0.0;
};

/** A flat, ordered collection of named scalar statistics. */
class StatGroup
{
  public:
    /** Add (or accumulate into) the named statistic. */
    void add(const std::string &name, double delta, const std::string &desc = "");

    /** Set the named statistic to an absolute value. */
    void set(const std::string &name, double value, const std::string &desc = "");

    /** Value of the named statistic (0 if absent). */
    double get(const std::string &name) const;

    bool has(const std::string &name) const;

    const std::vector<Scalar> &all() const { return stats; }

    /** Render as "name  value  # desc" lines. */
    std::string dump(const std::string &prefix = "") const;

  private:
    Scalar &find(const std::string &name, const std::string &desc);
    std::vector<Scalar> stats;
    std::map<std::string, std::size_t> index;
};

} // namespace cdvm

#endif // CDVM_COMMON_STATS_HH
