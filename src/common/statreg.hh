/**
 * @file
 * Hierarchical statistics registry.
 *
 * Every subsystem publishes its counters under a dotted path
 * ("vmm.bbt.translations", "dbt.codecache.bbt.flushes",
 * "timing.startup.cycles_to_1m_insns"), giving one uniform namespace
 * for everything the benches and examples measure. Four kinds of
 * statistic are supported:
 *
 *  - scalar: an owned double, settable/accumulable by name;
 *  - gauge: a pull-model callback evaluated at dump time;
 *  - running: a RunningStat (count/mean/min/max/stddev);
 *  - histogram: a LogHistogram (buckets + percentiles).
 *
 * Dump formats: a flat "name value # desc" table (dumpTable) and a
 * nested JSON document keyed by path segment (dumpJson), the latter
 * consumed by the --stats-json= CLI flag.
 *
 * Naming conventions (enforced): lower-case dotted paths, segments
 * matching [a-z0-9_]+, the first segment naming the subsystem (vmm,
 * dbt, hwassist, memsys, timing, analysis, workload). A name may not
 * be both a leaf and a group ("a.b" and "a.b.c" conflict).
 */

#ifndef CDVM_COMMON_STATREG_HH
#define CDVM_COMMON_STATREG_HH

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace cdvm
{

/** Kind of a registered statistic. */
enum class StatKind : u8
{
    Scalar,    //!< owned double
    Gauge,     //!< callback evaluated at dump time
    Running,   //!< RunningStat distribution
    Histogram, //!< LogHistogram distribution
};

/** The hierarchical registry. */
class StatRegistry
{
  public:
    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /** The process-wide registry used by the CLI dump flags. */
    static StatRegistry &global();

    /**
     * The owned scalar under name, created on first use. The returned
     * reference stays valid for the registry's lifetime, so hot paths
     * can cache it and increment without a lookup.
     */
    double &scalar(const std::string &name, const std::string &desc = "");

    /** Set the named scalar to an absolute value. */
    void set(const std::string &name, double value,
             const std::string &desc = "");

    /** Accumulate into the named scalar. */
    void add(const std::string &name, double delta,
             const std::string &desc = "");

    /** Register a pull-model gauge, evaluated at dump time. */
    void gauge(const std::string &name, std::function<double()> fn,
               const std::string &desc = "");

    /** The RunningStat under name, created on first use. */
    RunningStat &running(const std::string &name,
                         const std::string &desc = "");

    /** The LogHistogram under name, created on first use. */
    LogHistogram &histogram(const std::string &name, double base = 10.0,
                            unsigned buckets = 10,
                            const std::string &desc = "");

    /** Current value of a scalar or gauge (0 if absent). */
    double value(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Kind of the named statistic (nullopt if absent). */
    std::optional<StatKind> kind(const std::string &name) const;

    std::size_t size() const { return entries.size(); }

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Flat "name value # desc" dump, sorted by name. */
    std::string dumpTable() const;

    /** Nested JSON document keyed by dotted-path segment. */
    std::string dumpJson() const;

    /** Write dumpJson() to path. @return false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Drop every entry (tests and fresh runs). */
    void clear();

    /**
     * Copy every entry of src into this registry under
     * "<prefix>.<name>" (or verbatim when prefix is empty). This is
     * how a multi-context server nests per-context exports without
     * threading a prefix through every subsystem's exportStats(): each
     * context exports into a private registry, and the server merges
     * it under "ctx.<id>". Scalars and distributions are copied by
     * value; gauges are frozen to their value at merge time (the
     * source registry may be destroyed right after). Merging the same
     * name twice overwrites; a leaf/group or kind conflict panics,
     * exactly as direct registration would.
     */
    void merge(const StatRegistry &src, const std::string &prefix);

  private:
    struct Entry
    {
        StatKind kind = StatKind::Scalar;
        std::string desc;
        double scalarVal = 0.0;
        std::function<double()> fn;
        std::unique_ptr<RunningStat> run;
        std::unique_ptr<LogHistogram> hist;
    };

    Entry &findOrCreate(const std::string &name, StatKind kind,
                        const std::string &desc);

    /** Sorted by full dotted name; ordering drives the JSON nesting. */
    std::map<std::string, Entry> entries;
};

/**
 * Interval snapshots of a StatRegistry: periodic rows of every
 * scalar/gauge value on whatever clock the caller owns (the VMM takes
 * rows on the executed-instruction clock), with per-interval deltas.
 * Fig. 2-style startup curves -- instructions per stage over time --
 * can be reconstructed from one live run instead of a ladder of
 * truncated ones.
 *
 * Running/histogram entries are skipped: a row is a flat value
 * vector, and deltas of distribution summaries are not meaningful.
 */
class SnapshotSeries
{
  public:
    /** Capture one row of reg's scalar/gauge values at clock. */
    void take(const StatRegistry &reg, u64 clock);

    std::size_t rows() const { return series.size(); }

    /** The clock the row was taken at. */
    u64 clockAt(std::size_t row) const { return series.at(row).clock; }

    /** Value of name in the row (0 if absent from that row). */
    double at(std::size_t row, const std::string &name) const;

    /**
     * Interval delta of name at the row: its value minus the previous
     * row's (row 0 deltas against zero, i.e. against a fresh start).
     */
    double
    delta(std::size_t row, const std::string &name) const
    {
        return at(row, name) - (row ? at(row - 1, name) : 0.0);
    }

    /** JSON: {"rows": N, "clock": [...], "stats": {name: {"values":
     *  [...], "deltas": [...]}}} over the union of captured names. */
    std::string dumpJson() const;

    /** Write dumpJson() to path. @return false on I/O failure. */
    bool writeJson(const std::string &path) const;

  private:
    struct Row
    {
        u64 clock = 0;
        std::map<std::string, double> values;
    };
    std::vector<Row> series;
};

} // namespace cdvm

#endif // CDVM_COMMON_STATREG_HH
