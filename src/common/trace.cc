#include "common/trace.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace cdvm
{

namespace
{

struct PhaseInfo
{
    const char *name;
    const char *cat;
};

/** Indexed by TracePhase. */
constexpr PhaseInfo PHASE_INFO[] = {
    {"interp", "cold"},            // Interp
    {"x86-mode", "cold"},          // X86Mode
    {"bbt-translate", "translate"},// BbtTranslate
    {"sbt-optimize", "translate"}, // SbtOptimize
    {"exec-bbt", "exec"},          // BbtExec
    {"exec-sbt", "exec"},          // SbtExec
    {"cache-flush", "codecache"},  // CacheFlush
    {"chain", "dispatch"},         // Chain
    {"dispatch", "dispatch"},      // Dispatch
    {"hw-assist", "hwassist"},     // HwAssist
    {"cold-exec", "cold"},         // ColdExec
    {"warm-install", "translate"}, // WarmInstall
};

static_assert(sizeof(PHASE_INFO) / sizeof(PHASE_INFO[0]) ==
                  static_cast<std::size_t>(TracePhase::NUM_PHASES),
              "PHASE_INFO out of sync with TracePhase");

const char *TRACK_NAMES[] = {"vmm", "timing"};

} // namespace

const char *
tracePhaseName(TracePhase p)
{
    return PHASE_INFO[static_cast<std::size_t>(p)].name;
}

const char *
tracePhaseCategory(TracePhase p)
{
    return PHASE_INFO[static_cast<std::size_t>(p)].cat;
}

Tracer &
Tracer::global()
{
    static Tracer tr;
    return tr;
}

void
Tracer::enable(std::size_t capacity_events)
{
    if (capacity_events == 0)
        cdvm_fatal("trace buffer capacity must be positive");
    buf.assign(capacity_events, TraceEvent{});
    total = 0;
    on = true;
}

void
Tracer::disable()
{
    on = false;
    total = 0;
    std::vector<TraceEvent>().swap(buf); // release, not just clear
}

void
Tracer::record(TracePhase phase, u64 ts, u64 dur, u64 arg, u8 track)
{
    TraceEvent &e = buf[total % buf.size()];
    e.ts = ts;
    e.dur = dur;
    e.arg = arg;
    e.phase = phase;
    e.track = track;
    ++total;
}

std::size_t
Tracer::size() const
{
    return total < buf.size() ? static_cast<std::size_t>(total)
                              : buf.size();
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const u64 first = total > buf.size() ? total - buf.size() : 0;
    for (u64 i = first; i < total; ++i)
        out.push_back(buf[i % buf.size()]);
    return out;
}

std::string
Tracer::dumpChromeJson() const
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    // Name the process and its tracks so Perfetto shows meaningful
    // labels instead of pid/tid numbers.
    os << "  {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, "
          "\"name\": \"process_name\", "
          "\"args\": {\"name\": \"cdvm\"}}";
    first = false;
    for (unsigned t = 0; t < 2; ++t) {
        os << ",\n  {\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
           << TRACK_NAMES[t] << "\"}}";
    }
    for (const TraceEvent &e : snapshot()) {
        os << (first ? "" : ",\n");
        first = false;
        const char *name = tracePhaseName(e.phase);
        const char *cat = tracePhaseCategory(e.phase);
        if (e.dur == 0) {
            os << "  {\"ph\": \"i\", \"name\": \"" << name
               << "\", \"cat\": \"" << cat << "\", \"ts\": " << e.ts
               << ", \"pid\": 0, \"tid\": "
               << static_cast<unsigned>(e.track)
               << ", \"s\": \"t\", \"args\": {\"v\": " << e.arg
               << "}}";
        } else {
            os << "  {\"ph\": \"X\", \"name\": \"" << name
               << "\", \"cat\": \"" << cat << "\", \"ts\": " << e.ts
               << ", \"dur\": " << e.dur << ", \"pid\": 0, \"tid\": "
               << static_cast<unsigned>(e.track)
               << ", \"args\": {\"v\": " << e.arg << "}}";
        }
    }
    os << "\n],\n\"otherData\": {\"dropped_events\": " << dropped()
       << ", \"recorded_events\": " << total << "}}\n";
    return os.str();
}

bool
Tracer::writeChromeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        cdvm_warn("cannot open trace output '%s'", path.c_str());
        return false;
    }
    std::string doc = dumpChromeJson();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

} // namespace cdvm
