#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cdvm
{

namespace
{

/** Verbosity from CDVM_LOG_LEVEL (names or 0-3); Info if unset/bad. */
LogLevel
envLogLevel()
{
    const char *s = std::getenv("CDVM_LOG_LEVEL");
    if (!s || !*s)
        return LogLevel::Info;
    if (!std::strcmp(s, "silent") || !std::strcmp(s, "quiet") ||
        !std::strcmp(s, "0")) {
        return LogLevel::Silent;
    }
    if (!std::strcmp(s, "warn") || !std::strcmp(s, "1"))
        return LogLevel::Warn;
    if (!std::strcmp(s, "info") || !std::strcmp(s, "2"))
        return LogLevel::Info;
    if (!std::strcmp(s, "debug") || !std::strcmp(s, "3"))
        return LogLevel::Debug;
    std::fprintf(stderr, "warn: ignoring unknown CDVM_LOG_LEVEL=%s\n", s);
    return LogLevel::Info;
}

LogLevel curLevel = envLogLevel();

std::function<void()> crashHook;
bool inCrashHook = false;

} // namespace

LogLevel
logLevel()
{
    return curLevel;
}

void
setLogLevel(LogLevel level)
{
    curLevel = level;
}

void
setQuiet(bool q)
{
    curLevel = q ? LogLevel::Silent : envLogLevel();
}

bool
quiet()
{
    return curLevel == LogLevel::Silent;
}

void
setCrashHook(std::function<void()> hook)
{
    crashHook = std::move(hook);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    if (crashHook && !inCrashHook) {
        inCrashHook = true;
        crashHook();
        inCrashHook = false;
    }
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Info)
        return;
    std::fprintf(stderr, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
debugImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Debug)
        return;
    std::fprintf(stderr, "debug: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace cdvm
