#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace cdvm
{

namespace
{
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::fprintf(stderr, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace cdvm
