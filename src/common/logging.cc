#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>
#include <vector>

namespace cdvm
{

namespace
{

/** Verbosity from CDVM_LOG_LEVEL (names or 0-3); Info if unset/bad. */
LogLevel
envLogLevel()
{
    const char *s = std::getenv("CDVM_LOG_LEVEL");
    if (!s || !*s)
        return LogLevel::Info;
    if (!std::strcmp(s, "silent") || !std::strcmp(s, "quiet") ||
        !std::strcmp(s, "0")) {
        return LogLevel::Silent;
    }
    if (!std::strcmp(s, "warn") || !std::strcmp(s, "1"))
        return LogLevel::Warn;
    if (!std::strcmp(s, "info") || !std::strcmp(s, "2"))
        return LogLevel::Info;
    if (!std::strcmp(s, "debug") || !std::strcmp(s, "3"))
        return LogLevel::Debug;
    std::fprintf(stderr, "warn: ignoring unknown CDVM_LOG_LEVEL=%s\n", s);
    return LogLevel::Info;
}

LogLevel curLevel = envLogLevel();

/**
 * The crash-hook registry. Registration order is preserved so the
 * hooks run oldest-first; removal leaves a tombstone-free vector (the
 * registry is tiny -- one entry per live flight recorder).
 */
struct CrashHookEntry
{
    CrashHookId id = NO_CRASH_HOOK;
    std::function<void()> fn;
};

std::mutex crashHookMu;
std::vector<CrashHookEntry> crashHooks;
CrashHookId nextCrashHookId = 1;
bool inCrashHook = false;

} // namespace

LogLevel
logLevel()
{
    return curLevel;
}

void
setLogLevel(LogLevel level)
{
    curLevel = level;
}

void
setQuiet(bool q)
{
    curLevel = q ? LogLevel::Silent : envLogLevel();
}

bool
quiet()
{
    return curLevel == LogLevel::Silent;
}

CrashHookId
addCrashHook(std::function<void()> hook)
{
    if (!hook)
        return NO_CRASH_HOOK;
    std::lock_guard<std::mutex> lk(crashHookMu);
    const CrashHookId id = nextCrashHookId++;
    crashHooks.push_back({id, std::move(hook)});
    return id;
}

void
removeCrashHook(CrashHookId id)
{
    if (id == NO_CRASH_HOOK)
        return;
    std::lock_guard<std::mutex> lk(crashHookMu);
    for (std::size_t i = 0; i < crashHooks.size(); ++i) {
        if (crashHooks[i].id == id) {
            crashHooks.erase(crashHooks.begin() +
                             static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

std::size_t
crashHookCount()
{
    std::lock_guard<std::mutex> lk(crashHookMu);
    return crashHooks.size();
}

void
runCrashHooks()
{
    if (inCrashHook)
        return;
    inCrashHook = true;
    // Copy under the lock, run outside it: a hook that registers,
    // removes, or panics must not deadlock the registry.
    std::vector<std::function<void()>> fns;
    {
        std::lock_guard<std::mutex> lk(crashHookMu);
        fns.reserve(crashHooks.size());
        for (const CrashHookEntry &e : crashHooks)
            fns.push_back(e.fn);
    }
    for (const std::function<void()> &fn : fns)
        fn();
    inCrashHook = false;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    runCrashHooks();
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Warn)
        return;
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Info)
        return;
    std::fprintf(stderr, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
debugImpl(const char *fmt, ...)
{
    if (curLevel < LogLevel::Debug)
        return;
    std::fprintf(stderr, "debug: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

} // namespace cdvm
