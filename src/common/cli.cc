#include "common/cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/trace.hh"

namespace cdvm
{

Cli::Cli(std::string description) : desc(std::move(description))
{
}

void
Cli::flag(const std::string &name, const std::string &def,
          const std::string &help)
{
    if (!entries.count(name))
        order.push_back(name);
    entries[name] = Entry{def, help};
}

void
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s\n\nflags:\n", desc.c_str());
            for (const auto &name : order) {
                const Entry &e = entries.at(name);
                std::printf("  --%-18s %s (default: %s)\n", name.c_str(),
                            e.help.c_str(), e.value.c_str());
            }
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0)
            cdvm_fatal("unexpected argument '%s'", arg.c_str());
        std::string name = arg.substr(2);
        std::string value;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else if (i + 1 < argc) {
            value = argv[++i];
        } else {
            cdvm_fatal("flag '--%s' needs a value", name.c_str());
        }
        auto it = entries.find(name);
        if (it == entries.end())
            cdvm_fatal("unknown flag '--%s' (try --help)", name.c_str());
        it->second.value = value;
    }
}

std::string
Cli::str(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        cdvm_panic("flag '%s' was never registered", name.c_str());
    return it->second.value;
}

i64
Cli::num(const std::string &name) const
{
    return std::strtoll(str(name).c_str(), nullptr, 0);
}

double
Cli::real(const std::string &name) const
{
    return std::strtod(str(name).c_str(), nullptr);
}

bool
Cli::on(const std::string &name) const
{
    std::string v = str(name);
    return v == "1" || v == "true" || v == "yes" || v == "on";
}

namespace
{
std::string statsJsonPath;
std::string traceOutPath;
} // namespace

void
addObservabilityFlags(Cli &cli)
{
    cli.flag("stats-json", "", "dump the stat registry as JSON to PATH");
    cli.flag("trace-out", "",
             "dump the phase tracer as Chrome trace JSON to PATH");
    cli.flag("trace-buffer-events", "262144",
             "phase tracer ring-buffer capacity in events");
}

void
applyObservabilityFlags(const Cli &cli)
{
    statsJsonPath = cli.str("stats-json");
    traceOutPath = cli.str("trace-out");
    if (!traceOutPath.empty()) {
        i64 cap = cli.num("trace-buffer-events");
        if (cap <= 0)
            cdvm_fatal("--trace-buffer-events must be positive");
        Tracer::global().enable(static_cast<std::size_t>(cap));
    }
}

void
dumpObservability()
{
    if (!statsJsonPath.empty()) {
        if (StatRegistry::global().writeJson(statsJsonPath))
            cdvm_inform("stats dumped to %s", statsJsonPath.c_str());
    }
    if (!traceOutPath.empty()) {
        Tracer &tr = Tracer::global();
        if (tr.writeChromeJson(traceOutPath)) {
            cdvm_inform("trace dumped to %s (%zu events, %llu dropped)",
                        traceOutPath.c_str(), tr.size(),
                        static_cast<unsigned long long>(tr.dropped()));
        }
    }
}

double
envScale()
{
    const char *s = std::getenv("CDVM_SCALE");
    if (!s || !*s)
        return 1.0;
    double v = std::strtod(s, nullptr);
    if (v <= 0.0) {
        cdvm_warn("ignoring non-positive CDVM_SCALE=%s", s);
        return 1.0;
    }
    return v;
}

} // namespace cdvm
