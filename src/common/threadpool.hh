/**
 * @file
 * A small fixed-size worker pool with a bounded task queue.
 *
 * Built for the engine's background translation pipeline but fully
 * generic: N worker threads drain a FIFO queue of tasks; submission
 * observes back-pressure (trySubmit fails when the queue is at
 * capacity instead of growing without bound), and drain() gives the
 * producer a barrier -- it returns once every queued task has been
 * both dequeued and finished.
 *
 * Each task receives the index of the worker context executing it
 * (0..workers-1), so callers can give every worker its own
 * unsynchronized scratch state (the async SBT gives each context its
 * own translator) instead of sharing one behind a lock.
 */

#ifndef CDVM_COMMON_THREADPOOL_HH
#define CDVM_COMMON_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace cdvm
{

/** Fixed worker pool with a bounded FIFO queue. */
class ThreadPool
{
  public:
    /** A unit of work; ctx is the executing worker's index. */
    using Task = std::function<void(unsigned ctx)>;

    /**
     * Start `workers` threads (minimum 1) behind a queue holding at
     * most `queue_cap` waiting tasks (minimum 1).
     */
    explicit ThreadPool(unsigned workers, std::size_t queue_cap = 64);

    /** Drains the queue, finishes in-flight tasks, joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task, or fail immediately when the queue is full
     * (back-pressure: the producer decides whether to retry, drop, or
     * do the work inline).
     */
    bool trySubmit(Task t);

    /**
     * Barrier: wait until the queue is empty and no worker is running
     * a task. Tasks submitted by other threads while draining extend
     * the wait; the engine's single-producer discipline never does.
     */
    void drain();

    unsigned workers() const { return numWorkers; }

    /** Tasks fully executed so far. */
    u64 executed() const;
    /** trySubmit calls rejected because the queue was full. */
    u64
    rejectedFull() const
    {
        return nRejected.load(std::memory_order_relaxed);
    }

  private:
    void workerLoop(unsigned ctx);

    const unsigned numWorkers;
    const std::size_t cap;

    mutable std::mutex mu;
    std::condition_variable cvWork; //!< queue became non-empty / stop
    std::condition_variable cvIdle; //!< queue drained + workers idle
    std::deque<Task> queue;
    unsigned active = 0; //!< workers currently running a task
    bool stopping = false;
    u64 nExecuted = 0;
    std::atomic<u64> nRejected{0};

    std::vector<std::thread> threads;
};

} // namespace cdvm

#endif // CDVM_COMMON_THREADPOOL_HH
