/**
 * @file
 * Bit-manipulation helpers used by instruction encoders and decoders.
 */

#ifndef CDVM_COMMON_BITFIELD_HH
#define CDVM_COMMON_BITFIELD_HH

#include <cassert>
#include <type_traits>

#include "common/types.hh"

namespace cdvm
{

/**
 * Extract the bit field [last:first] (inclusive, last >= first) from val.
 */
constexpr u64
bits(u64 val, unsigned last, unsigned first)
{
    assert(last >= first && last < 64);
    const unsigned nbits = last - first + 1;
    const u64 mask = nbits >= 64 ? ~u64{0} : ((u64{1} << nbits) - 1);
    return (val >> first) & mask;
}

/** Extract a single bit from val. */
constexpr u64
bits(u64 val, unsigned bit)
{
    return bits(val, bit, bit);
}

/**
 * Return a copy of val with the bit field [last:first] replaced by the
 * low-order bits of field.
 */
constexpr u64
insertBits(u64 val, unsigned last, unsigned first, u64 field)
{
    assert(last >= first && last < 64);
    const unsigned nbits = last - first + 1;
    const u64 mask = nbits >= 64 ? ~u64{0} : ((u64{1} << nbits) - 1);
    return (val & ~(mask << first)) | ((field & mask) << first);
}

/** Sign-extend the low nbits of val to a signed 64-bit integer. */
constexpr i64
sext(u64 val, unsigned nbits)
{
    assert(nbits >= 1 && nbits <= 64);
    if (nbits == 64)
        return static_cast<i64>(val);
    const u64 sign = u64{1} << (nbits - 1);
    const u64 mask = (u64{1} << nbits) - 1;
    val &= mask;
    return static_cast<i64>((val ^ sign) - sign);
}

/** True if val fits in a signed field of nbits. */
constexpr bool
fitsSigned(i64 val, unsigned nbits)
{
    assert(nbits >= 1 && nbits <= 64);
    if (nbits == 64)
        return true;
    const i64 lo = -(i64{1} << (nbits - 1));
    const i64 hi = (i64{1} << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** True if val fits in an unsigned field of nbits. */
constexpr bool
fitsUnsigned(u64 val, unsigned nbits)
{
    assert(nbits >= 1 && nbits <= 64);
    if (nbits >= 64)
        return true;
    return val < (u64{1} << nbits);
}

/** Align addr down to the given power-of-two boundary. */
constexpr Addr
alignDown(Addr addr, Addr align)
{
    assert((align & (align - 1)) == 0);
    return addr & ~(align - 1);
}

/** Align addr up to the given power-of-two boundary. */
constexpr Addr
alignUp(Addr addr, Addr align)
{
    assert((align & (align - 1)) == 0);
    return (addr + align - 1) & ~(align - 1);
}

/** Integer log2 (floor); val must be non-zero. */
constexpr unsigned
floorLog2(u64 val)
{
    assert(val != 0);
    unsigned l = 0;
    while (val >>= 1)
        ++l;
    return l;
}

/** True if val is a power of two (and non-zero). */
constexpr bool
isPowerOf2(u64 val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

} // namespace cdvm

#endif // CDVM_COMMON_BITFIELD_HH
