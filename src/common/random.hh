/**
 * @file
 * Deterministic pseudo-random number generation and the sampling
 * distributions used by the synthetic workload generators.
 *
 * Every source of randomness in cdvm flows through a seeded Pcg32 so that
 * simulations, tests and benchmarks are exactly reproducible.
 */

#ifndef CDVM_COMMON_RANDOM_HH
#define CDVM_COMMON_RANDOM_HH

#include <cmath>
#include <vector>

#include "common/types.hh"

namespace cdvm
{

/**
 * PCG32 (Melissa O'Neill's pcg32_random_r), a small, fast, statistically
 * solid generator with a 64-bit state and 32-bit output.
 */
class Pcg32
{
  public:
    explicit Pcg32(u64 seed = 0x853c49e6748fea9bULL, u64 seq = 0xda3e39cb94b95bdbULL)
    {
        state = 0;
        inc = (seq << 1) | 1;
        next();
        state += seed;
        next();
    }

    /** Next raw 32-bit value. */
    u32
    next()
    {
        u64 old = state;
        state = old * 6364136223846793005ULL + inc;
        u32 xorshifted = static_cast<u32>(((old >> 18) ^ old) >> 27);
        u32 rot = static_cast<u32>(old >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform in [0, bound), bound > 0, without modulo bias. */
    u32
    below(u32 bound)
    {
        u32 threshold = (-bound) % bound;
        for (;;) {
            u32 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform 64-bit value. */
    u64
    next64()
    {
        return (static_cast<u64>(next()) << 32) | next();
    }

    /** Uniform in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u32>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Box-Muller (one value per call). */
    double normal();

    /** Log-normally distributed value with the given log-space mu/sigma. */
    double
    logNormal(double mu, double sigma)
    {
        return std::exp(mu + sigma * normal());
    }

    /** Geometric: number of failures before first success, P(success)=p. */
    u64 geometric(double p);

  private:
    u64 state;
    u64 inc;
    bool haveSpare = false;
    double spare = 0.0;
};

/**
 * Sampler for an arbitrary discrete distribution given unnormalized
 * weights, using the alias method: O(n) setup, O(1) sampling.
 */
class DiscreteSampler
{
  public:
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Sample an index in [0, size()). */
    u32 sample(Pcg32 &rng) const;

    std::size_t size() const { return prob.size(); }

  private:
    std::vector<double> prob;
    std::vector<u32> alias;
};

/**
 * Zipf(s) sampler over ranks 1..n: P(k) proportional to 1 / k^s.
 * Built on the alias method, so sampling is O(1).
 */
class ZipfSampler
{
  public:
    ZipfSampler(u32 n, double s);

    /** Sample a rank in [1, n]. */
    u32
    sample(Pcg32 &rng) const
    {
        return inner.sample(rng) + 1;
    }

    u32 n() const { return static_cast<u32>(inner.size()); }

  private:
    static std::vector<double> makeWeights(u32 n, double s);
    DiscreteSampler inner;
};

} // namespace cdvm

#endif // CDVM_COMMON_RANDOM_HH
