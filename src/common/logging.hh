/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated (a cdvm bug); aborts.
 * fatal()  -- the simulation cannot continue due to user input (bad
 *             configuration, malformed workload); exits with status 1.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 * debug()  -- developer diagnostics, off by default.
 *
 * Verbosity is controlled by the CDVM_LOG_LEVEL environment variable
 * ("silent"/"warn"/"info"/"debug" or 0-3; default "info") and can be
 * overridden programmatically with setLogLevel()/setQuiet().
 */

#ifndef CDVM_COMMON_LOGGING_HH
#define CDVM_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

#include "common/types.hh"

namespace cdvm
{

/** Output verbosity, in increasing order of chattiness. */
enum class LogLevel : int
{
    Silent = 0, //!< suppress warn/inform/debug (panic/fatal always print)
    Warn = 1,   //!< warnings only
    Info = 2,   //!< warnings + status (the default)
    Debug = 3,  //!< everything, including debug()
};

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debugImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Current verbosity (CDVM_LOG_LEVEL unless explicitly overridden). */
LogLevel logLevel();

/** Override the verbosity for this process. */
void setLogLevel(LogLevel level);

/**
 * Suppress warn()/inform()/debug() output (used by tests).
 * setQuiet(false) restores the CDVM_LOG_LEVEL-derived default, not
 * unconditionally Info.
 */
void setQuiet(bool quiet);
bool quiet();

/**
 * Crash hooks run once at the top of panic(), before the abort -- the
 * flight recorder registers its dump here so abnormal exits leave a
 * post-mortem artifact. The registry supports any number of live
 * owners (a multi-tenant server hosts many Vmm instances, each with
 * its own flight recorder): every registration gets a token, removal
 * is by token, and panic() runs every hook still registered in
 * registration order. Recursive panics skip the hooks.
 *
 * Registration and removal are mutex-protected; the hooks themselves
 * run outside the lock (a hook that panics again is caught by the
 * recursion guard, not by a deadlock).
 */
using CrashHookId = u64;

/** Invalid token: removeCrashHook(NO_CRASH_HOOK) is a no-op. */
inline constexpr CrashHookId NO_CRASH_HOOK = 0;

/** Register a hook; the token identifies it for removal. */
CrashHookId addCrashHook(std::function<void()> hook);

/** Unregister by token (no-op for NO_CRASH_HOOK or unknown ids). */
void removeCrashHook(CrashHookId id);

/** Hooks currently registered (tests and leak checks). */
std::size_t crashHookCount();

/**
 * Run every registered hook now, in registration order (the panic
 * path calls this; tests call it directly since panic() aborts).
 * Nested calls -- a hook that itself panics -- are skipped.
 */
void runCrashHooks();

} // namespace cdvm

#define cdvm_panic(...) ::cdvm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_fatal(...) ::cdvm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_warn(...) ::cdvm::warnImpl(__VA_ARGS__)
#define cdvm_inform(...) ::cdvm::informImpl(__VA_ARGS__)
#define cdvm_debug(...) ::cdvm::debugImpl(__VA_ARGS__)

#endif // CDVM_COMMON_LOGGING_HH
