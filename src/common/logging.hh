/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated (a cdvm bug); aborts.
 * fatal()  -- the simulation cannot continue due to user input (bad
 *             configuration, malformed workload); exits with status 1.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 * debug()  -- developer diagnostics, off by default.
 *
 * Verbosity is controlled by the CDVM_LOG_LEVEL environment variable
 * ("silent"/"warn"/"info"/"debug" or 0-3; default "info") and can be
 * overridden programmatically with setLogLevel()/setQuiet().
 */

#ifndef CDVM_COMMON_LOGGING_HH
#define CDVM_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace cdvm
{

/** Output verbosity, in increasing order of chattiness. */
enum class LogLevel : int
{
    Silent = 0, //!< suppress warn/inform/debug (panic/fatal always print)
    Warn = 1,   //!< warnings only
    Info = 2,   //!< warnings + status (the default)
    Debug = 3,  //!< everything, including debug()
};

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void debugImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Current verbosity (CDVM_LOG_LEVEL unless explicitly overridden). */
LogLevel logLevel();

/** Override the verbosity for this process. */
void setLogLevel(LogLevel level);

/**
 * Suppress warn()/inform()/debug() output (used by tests).
 * setQuiet(false) restores the CDVM_LOG_LEVEL-derived default, not
 * unconditionally Info.
 */
void setQuiet(bool quiet);
bool quiet();

/**
 * Install a crash hook run once at the top of panic(), before the
 * abort -- the flight recorder registers its dump here so abnormal
 * exits leave a post-mortem artifact. An empty function uninstalls.
 * Recursive panics skip the hook.
 */
void setCrashHook(std::function<void()> hook);

} // namespace cdvm

#define cdvm_panic(...) ::cdvm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_fatal(...) ::cdvm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_warn(...) ::cdvm::warnImpl(__VA_ARGS__)
#define cdvm_inform(...) ::cdvm::informImpl(__VA_ARGS__)
#define cdvm_debug(...) ::cdvm::debugImpl(__VA_ARGS__)

#endif // CDVM_COMMON_LOGGING_HH
