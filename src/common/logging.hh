/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated (a cdvm bug); aborts.
 * fatal()  -- the simulation cannot continue due to user input (bad
 *             configuration, malformed workload); exits with status 1.
 * warn()   -- something is suspicious but the run can continue.
 * inform() -- plain status output.
 */

#ifndef CDVM_COMMON_LOGGING_HH
#define CDVM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cdvm
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

} // namespace cdvm

#define cdvm_panic(...) ::cdvm::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_fatal(...) ::cdvm::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define cdvm_warn(...) ::cdvm::warnImpl(__VA_ARGS__)
#define cdvm_inform(...) ::cdvm::informImpl(__VA_ARGS__)

#endif // CDVM_COMMON_LOGGING_HH
