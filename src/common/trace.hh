/**
 * @file
 * Low-overhead phase/event tracer for the staged-emulation pipeline.
 *
 * A preallocated ring buffer of timestamped spans records what the VM
 * is doing over (virtual) time: interpreting, BBT-translating,
 * executing translated code, optimizing hotspots, flushing caches,
 * chaining, running hardware assists. When the buffer wraps, the
 * oldest events are overwritten (the dropped count is kept).
 *
 * Time is whatever monotonic u64 the instrumented layer owns: the
 * functional VMM uses a work-unit clock (retired instructions advance
 * it by 1 each, translations by the number of instructions
 * translated), the timing simulators use cycles. Layers record on
 * separate tracks so the timelines do not interleave.
 *
 * Disabled mode costs one predictable branch per call site and holds
 * no allocation: the buffer is only created by enable() and released
 * by disable(). Compiling with -DCDVM_NO_TRACING removes the call
 * sites entirely (the CDVM_TRACE_* macros become no-ops).
 *
 * Output is Chrome trace_event JSON ("X" complete events), loadable
 * in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 */

#ifndef CDVM_COMMON_TRACE_HH
#define CDVM_COMMON_TRACE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm
{

/** What a span was doing (the Chrome trace "name"/"cat"). */
enum class TracePhase : u8
{
    Interp = 0,   //!< cold code interpreted one insn at a time
    X86Mode,      //!< cold code executed via dual-mode decoders
    BbtTranslate, //!< basic-block translation work
    SbtOptimize,  //!< superblock formation + optimization work
    BbtExec,      //!< executing BBT translations from the code cache
    SbtExec,      //!< executing optimized hotspot code
    CacheFlush,   //!< code-cache arena flush (instant)
    Chain,        //!< translation chain installed (instant)
    Dispatch,     //!< VMM dispatch / lookup work
    HwAssist,     //!< hardware-assist activity (XLTx86, BBB hit)
    ColdExec,     //!< timing-sim cold execution (native/interp)
    WarmInstall,  //!< warm-start repository install work
    NUM_PHASES,
};

/** Chrome trace "name" for a phase. */
const char *tracePhaseName(TracePhase p);

/** Chrome trace "cat" (category) for a phase. */
const char *tracePhaseCategory(TracePhase p);

/** One recorded span (dur == 0 renders as an instant event). */
struct TraceEvent
{
    u64 ts = 0;   //!< start, in the recording layer's virtual time
    u64 dur = 0;  //!< duration in the same unit
    u64 arg = 0;  //!< phase-specific payload (pc, insns, bytes...)
    TracePhase phase = TracePhase::Interp;
    u8 track = 0; //!< Chrome tid: 0 = vmm, 1 = timing sim
};

/** The ring-buffer tracer. */
class Tracer
{
  public:
    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide tracer used by the CLI trace flags. */
    static Tracer &global();

    /**
     * Start tracing into a freshly preallocated buffer of
     * capacity_events entries (older contents are discarded).
     */
    void enable(std::size_t capacity_events);

    /** Stop tracing and release the buffer. */
    void disable();

    bool enabled() const { return on; }

    /** Record a span; no-op (one branch) when disabled. */
    void
    span(TracePhase phase, u64 ts, u64 dur, u64 arg = 0, u8 track = 0)
    {
        if (!on)
            return;
        record(phase, ts, dur, arg, track);
    }

    /** Record an instant event; no-op (one branch) when disabled. */
    void
    instant(TracePhase phase, u64 ts, u64 arg = 0, u8 track = 0)
    {
        if (!on)
            return;
        record(phase, ts, 0, arg, track);
    }

    /** Events currently retained (<= capacity). */
    std::size_t size() const;

    /** Ring capacity in events (0 when disabled). */
    std::size_t capacity() const { return buf.size(); }

    /** Events ever recorded since enable(). */
    u64 recorded() const { return total; }

    /** Events lost to ring wraparound. */
    u64 dropped() const { return total > buf.size() ? total - buf.size() : 0; }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Forget recorded events but keep tracing (buffer retained). */
    void clear() { total = 0; }

    /** Chrome trace_event JSON document of the retained events. */
    std::string dumpChromeJson() const;

    /** Write dumpChromeJson() to path. @return false on I/O failure. */
    bool writeChromeJson(const std::string &path) const;

  private:
    void record(TracePhase phase, u64 ts, u64 dur, u64 arg, u8 track);

    bool on = false;
    std::vector<TraceEvent> buf;
    u64 total = 0; //!< events ever recorded; ring head = total % size
};

/**
 * Span-coalescing helper: merges back-to-back spans of the same phase
 * and track into one event before handing them to the tracer. The
 * block-granular timing simulator would otherwise record one event
 * per simulated block (millions); coalescing keeps event counts
 * proportional to phase *changes*.
 */
class SpanCoalescer
{
  public:
    explicit SpanCoalescer(Tracer &tracer, u8 track_id = 0)
        : tr(tracer), track(track_id)
    {
    }

    ~SpanCoalescer() { flush(); }

    /** Append [ts, ts+dur) in phase p; emits on phase change. */
    void
    add(TracePhase p, u64 ts, u64 dur, u64 arg = 0)
    {
        if (!tr.enabled())
            return;
        if (open && p == cur && ts <= end) {
            end = ts + dur;
            accum += arg;
            return;
        }
        flush();
        open = true;
        cur = p;
        begin = ts;
        end = ts + dur;
        accum = arg;
    }

    /** Emit any pending span. */
    void
    flush()
    {
        if (!open)
            return;
        tr.span(cur, begin, end - begin, accum, track);
        open = false;
    }

  private:
    Tracer &tr;
    u8 track;
    bool open = false;
    TracePhase cur = TracePhase::Interp;
    u64 begin = 0;
    u64 end = 0;
    u64 accum = 0;
};

} // namespace cdvm

#ifdef CDVM_NO_TRACING
#define CDVM_TRACE_SPAN(tracer, phase, ts, dur, ...) ((void)0)
#define CDVM_TRACE_INSTANT(tracer, phase, ts, ...) ((void)0)
#else
#define CDVM_TRACE_SPAN(tracer, phase, ts, dur, ...) \
    (tracer).span((phase), (ts), (dur), ##__VA_ARGS__)
#define CDVM_TRACE_INSTANT(tracer, phase, ts, ...) \
    (tracer).instant((phase), (ts), ##__VA_ARGS__)
#endif

#endif // CDVM_COMMON_TRACE_HH
