#include "common/stats.hh"

#include <cassert>
#include <cmath>
#include <sstream>

namespace cdvm
{

LogHistogram::LogHistogram(double b, unsigned num_buckets)
    : base(b), counts(num_buckets, 0.0)
{
    assert(b > 1.0 && num_buckets >= 1);
}

unsigned
LogHistogram::bucketOf(u64 value) const
{
    if (value < static_cast<u64>(base))
        return 0;
    unsigned k = static_cast<unsigned>(std::log(static_cast<double>(value)) /
                                       std::log(base));
    // Guard against floating-point edge effects at exact powers.
    while (k + 1 < counts.size() &&
           static_cast<double>(value) >= std::pow(base, k + 1)) {
        ++k;
    }
    while (k > 0 && static_cast<double>(value) < std::pow(base, k))
        --k;
    if (k >= counts.size())
        k = static_cast<unsigned>(counts.size()) - 1;
    return k;
}

u64
LogHistogram::bucketLow(unsigned k) const
{
    assert(k < counts.size());
    if (k == 0)
        return 0;
    return static_cast<u64>(std::llround(std::pow(base, k)));
}

void
LogHistogram::add(u64 value, double weight)
{
    counts[bucketOf(value)] += weight;
    total += weight;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
LogHistogram::percentile(double p) const
{
    if (total <= 0.0)
        return 0.0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    const double target = total * p / 100.0;
    double cum = 0.0;
    for (unsigned k = 0; k < counts.size(); ++k) {
        if (counts[k] <= 0.0)
            continue;
        if (cum + counts[k] >= target) {
            // Interpolate within [low, high) by the fraction of the
            // bucket's weight needed to reach the target.
            double low = static_cast<double>(bucketLow(k));
            double high =
                k + 1 < counts.size()
                    ? static_cast<double>(bucketLow(k + 1))
                    : low * base;
            if (k == 0)
                high = base; // bucket 0 covers [0, base)
            double frac = counts[k] > 0.0
                              ? (target - cum) / counts[k]
                              : 0.0;
            return low + frac * (high - low);
        }
        cum += counts[k];
    }
    // All weight below target (p == 100 with rounding): top edge.
    unsigned last = static_cast<unsigned>(counts.size()) - 1;
    return static_cast<double>(bucketLow(last)) * base;
}

double
LogHistogram::weightAtOrAbove(u64 threshold) const
{
    double sum = 0.0;
    for (unsigned k = 0; k < counts.size(); ++k) {
        if (bucketLow(k) >= threshold)
            sum += counts[k];
    }
    return sum;
}

Scalar &
StatGroup::find(const std::string &name, const std::string &desc)
{
    auto it = index.find(name);
    if (it != index.end()) {
        Scalar &s = stats[it->second];
        if (s.desc.empty() && !desc.empty())
            s.desc = desc;
        return s;
    }
    index.emplace(name, stats.size());
    stats.push_back(Scalar{name, desc, 0.0});
    return stats.back();
}

void
StatGroup::add(const std::string &name, double delta, const std::string &desc)
{
    find(name, desc).value += delta;
}

void
StatGroup::set(const std::string &name, double value, const std::string &desc)
{
    find(name, desc).value = value;
}

double
StatGroup::get(const std::string &name) const
{
    auto it = index.find(name);
    return it == index.end() ? 0.0 : stats[it->second].value;
}

bool
StatGroup::has(const std::string &name) const
{
    return index.count(name) != 0;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const Scalar &s : stats) {
        os << prefix << s.name << " " << s.value;
        if (!s.desc.empty())
            os << " # " << s.desc;
        os << "\n";
    }
    return os.str();
}

} // namespace cdvm
