#include "common/statreg.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace cdvm
{

namespace
{

/** Segment characters allowed by the naming convention. */
bool
validSegmentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
}

void
validateName(const std::string &name)
{
    if (name.empty())
        cdvm_panic("stat name must not be empty");
    bool seg_empty = true;
    for (char c : name) {
        if (c == '.') {
            if (seg_empty)
                cdvm_panic("stat name '%s': empty path segment",
                           name.c_str());
            seg_empty = true;
        } else if (validSegmentChar(c)) {
            seg_empty = false;
        } else {
            cdvm_panic("stat name '%s': invalid character '%c' "
                       "(want [a-z0-9_.])",
                       name.c_str(), c);
        }
    }
    if (seg_empty)
        cdvm_panic("stat name '%s': trailing dot", name.c_str());
}

const char *
kindName(StatKind k)
{
    switch (k) {
      case StatKind::Scalar:
        return "scalar";
      case StatKind::Gauge:
        return "gauge";
      case StatKind::Running:
        return "running";
      case StatKind::Histogram:
        return "histogram";
    }
    return "?";
}

/** JSON number: integral values without a fraction, no NaN/inf. */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.10g", v);
    }
    return buf;
}

} // namespace

StatRegistry &
StatRegistry::global()
{
    static StatRegistry reg;
    return reg;
}

StatRegistry::Entry &
StatRegistry::findOrCreate(const std::string &name, StatKind kind,
                           const std::string &desc)
{
    auto it = entries.find(name);
    if (it != entries.end()) {
        if (it->second.kind != kind) {
            cdvm_panic("stat '%s' registered as %s, reused as %s",
                       name.c_str(), kindName(it->second.kind),
                       kindName(kind));
        }
        if (it->second.desc.empty() && !desc.empty())
            it->second.desc = desc;
        return it->second;
    }

    validateName(name);
    // A name may not be both a leaf and a group: reject "a.b" when
    // "a.b.c" exists and vice versa. The sorted map makes both checks
    // one lower_bound away.
    auto nb = entries.lower_bound(name);
    if (nb != entries.end() &&
        nb->first.size() > name.size() &&
        nb->first.compare(0, name.size(), name) == 0 &&
        nb->first[name.size()] == '.') {
        cdvm_panic("stat '%s' conflicts with existing group '%s'",
                   name.c_str(), nb->first.c_str());
    }
    for (std::size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        if (entries.count(name.substr(0, dot))) {
            cdvm_panic("stat '%s' conflicts with existing leaf '%s'",
                       name.c_str(), name.substr(0, dot).c_str());
        }
    }

    Entry &e = entries[name];
    e.kind = kind;
    e.desc = desc;
    return e;
}

double &
StatRegistry::scalar(const std::string &name, const std::string &desc)
{
    return findOrCreate(name, StatKind::Scalar, desc).scalarVal;
}

void
StatRegistry::set(const std::string &name, double value,
                  const std::string &desc)
{
    scalar(name, desc) = value;
}

void
StatRegistry::add(const std::string &name, double delta,
                  const std::string &desc)
{
    scalar(name, desc) += delta;
}

void
StatRegistry::gauge(const std::string &name, std::function<double()> fn,
                    const std::string &desc)
{
    findOrCreate(name, StatKind::Gauge, desc).fn = std::move(fn);
}

RunningStat &
StatRegistry::running(const std::string &name, const std::string &desc)
{
    Entry &e = findOrCreate(name, StatKind::Running, desc);
    if (!e.run)
        e.run = std::make_unique<RunningStat>();
    return *e.run;
}

LogHistogram &
StatRegistry::histogram(const std::string &name, double base,
                        unsigned buckets, const std::string &desc)
{
    Entry &e = findOrCreate(name, StatKind::Histogram, desc);
    if (!e.hist)
        e.hist = std::make_unique<LogHistogram>(base, buckets);
    return *e.hist;
}

double
StatRegistry::value(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        return 0.0;
    const Entry &e = it->second;
    switch (e.kind) {
      case StatKind::Scalar:
        return e.scalarVal;
      case StatKind::Gauge:
        return e.fn ? e.fn() : 0.0;
      case StatKind::Running:
        return e.run ? e.run->mean() : 0.0;
      case StatKind::Histogram:
        return e.hist ? e.hist->totalWeight() : 0.0;
    }
    return 0.0;
}

bool
StatRegistry::has(const std::string &name) const
{
    return entries.count(name) != 0;
}

std::optional<StatKind>
StatRegistry::kind(const std::string &name) const
{
    auto it = entries.find(name);
    if (it == entries.end())
        return std::nullopt;
    return it->second.kind;
}

std::vector<std::string>
StatRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const auto &kv : entries)
        out.push_back(kv.first);
    return out;
}

std::string
StatRegistry::dumpTable() const
{
    std::ostringstream os;
    for (const auto &kv : entries) {
        const Entry &e = kv.second;
        os << kv.first << " ";
        switch (e.kind) {
          case StatKind::Scalar:
          case StatKind::Gauge:
            os << jsonNum(value(kv.first));
            break;
          case StatKind::Running:
            os << jsonNum(e.run ? e.run->mean() : 0.0) << " (n="
               << (e.run ? e.run->count() : 0) << ")";
            break;
          case StatKind::Histogram:
            os << jsonNum(e.hist ? e.hist->totalWeight() : 0.0)
               << " (total weight)";
            break;
        }
        if (!e.desc.empty())
            os << " # " << e.desc;
        os << "\n";
    }
    return os.str();
}

std::string
StatRegistry::dumpJson() const
{
    // Build the segment tree; registration already rejected
    // leaf/group conflicts.
    struct TreeNode
    {
        std::map<std::string, TreeNode> kids;
        const Entry *leaf = nullptr;
        const std::string *name = nullptr;
    };
    TreeNode root;
    for (const auto &kv : entries) {
        TreeNode *n = &root;
        const std::string &full = kv.first;
        std::size_t pos = 0;
        while (true) {
            std::size_t dot = full.find('.', pos);
            std::string seg = full.substr(
                pos, dot == std::string::npos ? dot : dot - pos);
            n = &n->kids[seg];
            if (dot == std::string::npos)
                break;
            pos = dot + 1;
        }
        n->leaf = &kv.second;
        n->name = &kv.first;
    }

    std::ostringstream os;
    auto emitLeaf = [&](const Entry &e, const std::string &full) {
        switch (e.kind) {
          case StatKind::Scalar:
          case StatKind::Gauge:
            os << jsonNum(e.kind == StatKind::Scalar
                              ? e.scalarVal
                              : (e.fn ? e.fn() : 0.0));
            break;
          case StatKind::Running: {
            const RunningStat rs = e.run ? *e.run : RunningStat{};
            os << "{\"count\": " << rs.count()
               << ", \"mean\": " << jsonNum(rs.mean())
               << ", \"min\": " << jsonNum(rs.min())
               << ", \"max\": " << jsonNum(rs.max())
               << ", \"stddev\": " << jsonNum(rs.stddev())
               << ", \"total\": " << jsonNum(rs.total()) << "}";
            break;
          }
          case StatKind::Histogram: {
            if (!e.hist) {
                os << "null";
                break;
            }
            const LogHistogram &h = *e.hist;
            os << "{\"total_weight\": " << jsonNum(h.totalWeight())
               << ", \"bucket_low\": [";
            for (unsigned k = 0; k < h.numBuckets(); ++k) {
                os << (k ? ", " : "") << h.bucketLow(k);
            }
            os << "], \"bucket_weight\": [";
            for (unsigned k = 0; k < h.numBuckets(); ++k) {
                os << (k ? ", " : "") << jsonNum(h.bucketWeight(k));
            }
            os << "], \"p50\": " << jsonNum(h.percentile(50))
               << ", \"p90\": " << jsonNum(h.percentile(90))
               << ", \"p95\": " << jsonNum(h.percentile(95))
               << ", \"p99\": " << jsonNum(h.percentile(99)) << "}";
            break;
          }
        }
        (void)full;
    };

    std::function<void(const TreeNode &, int)> emit =
        [&](const TreeNode &n, int depth) {
            os << "{";
            bool first = true;
            std::string pad(static_cast<std::size_t>(depth + 1) * 2,
                            ' ');
            for (const auto &kv : n.kids) {
                os << (first ? "\n" : ",\n") << pad << "\"" << kv.first
                   << "\": ";
                first = false;
                if (kv.second.leaf)
                    emitLeaf(*kv.second.leaf, *kv.second.name);
                else
                    emit(kv.second, depth + 1);
            }
            if (!first) {
                os << "\n"
                   << std::string(static_cast<std::size_t>(depth) * 2,
                                  ' ');
            }
            os << "}";
        };
    emit(root, 0);
    os << "\n";
    return os.str();
}

bool
StatRegistry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        cdvm_warn("cannot open stats output '%s'", path.c_str());
        return false;
    }
    std::string doc = dumpJson();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

void
StatRegistry::clear()
{
    entries.clear();
}

void
StatRegistry::merge(const StatRegistry &src, const std::string &prefix)
{
    const std::string pfx = prefix.empty() ? "" : prefix + ".";
    for (const auto &kv : src.entries) {
        const std::string name = pfx + kv.first;
        const Entry &e = kv.second;
        switch (e.kind) {
          case StatKind::Scalar:
            set(name, e.scalarVal, e.desc);
            break;
          case StatKind::Gauge:
            // Freeze: the source's callback may dangle after merge.
            set(name, e.fn ? e.fn() : 0.0, e.desc);
            break;
          case StatKind::Running:
            running(name, e.desc) = e.run ? *e.run : RunningStat{};
            break;
          case StatKind::Histogram: {
            const double base = e.hist ? e.hist->logBase() : 10.0;
            const unsigned nb = e.hist ? e.hist->numBuckets() : 10u;
            LogHistogram &dst = histogram(name, base, nb, e.desc);
            if (e.hist)
                dst = *e.hist;
            break;
          }
        }
    }
}

void
SnapshotSeries::take(const StatRegistry &reg, u64 clock)
{
    Row row;
    row.clock = clock;
    for (const std::string &name : reg.names()) {
        std::optional<StatKind> k = reg.kind(name);
        if (k != StatKind::Scalar && k != StatKind::Gauge)
            continue;
        row.values.emplace(name, reg.value(name));
    }
    series.push_back(std::move(row));
}

double
SnapshotSeries::at(std::size_t row, const std::string &name) const
{
    const Row &r = series.at(row);
    auto it = r.values.find(name);
    return it == r.values.end() ? 0.0 : it->second;
}

std::string
SnapshotSeries::dumpJson() const
{
    // Union of names over all rows (later rows may add stats).
    std::map<std::string, bool> names;
    for (const Row &r : series)
        for (const auto &kv : r.values)
            names.emplace(kv.first, true);

    std::ostringstream os;
    os << "{\n  \"rows\": " << series.size() << ",\n  \"clock\": [";
    for (std::size_t i = 0; i < series.size(); ++i)
        os << (i ? ", " : "") << series[i].clock;
    os << "],\n  \"stats\": {";
    bool first = true;
    for (const auto &nk : names) {
        os << (first ? "\n" : ",\n") << "    \"" << nk.first
           << "\": {\"values\": [";
        first = false;
        for (std::size_t i = 0; i < series.size(); ++i)
            os << (i ? ", " : "") << jsonNum(at(i, nk.first));
        os << "], \"deltas\": [";
        for (std::size_t i = 0; i < series.size(); ++i)
            os << (i ? ", " : "") << jsonNum(delta(i, nk.first));
        os << "]}";
    }
    if (!first)
        os << "\n  ";
    os << "}\n}\n";
    return os.str();
}

bool
SnapshotSeries::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        cdvm_warn("cannot open snapshot output '%s'", path.c_str());
        return false;
    }
    std::string doc = dumpJson();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

} // namespace cdvm
