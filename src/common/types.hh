/**
 * @file
 * Fundamental scalar types shared by every cdvm library.
 *
 * The simulator follows the convention of architecture simulators such as
 * gem5: fixed-width integer aliases, an address type, and a cycle-count
 * type that is distinct enough in name to keep timing code readable.
 */

#ifndef CDVM_COMMON_TYPES_HH
#define CDVM_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace cdvm
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Guest (architected or implementation ISA) memory address. */
using Addr = u64;

/** A count of processor core cycles. */
using Cycles = u64;

/** A count of retired instructions (x86 or micro-op, per context). */
using InstCount = u64;

} // namespace cdvm

#endif // CDVM_COMMON_TYPES_HH
