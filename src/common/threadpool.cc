#include "common/threadpool.hh"

#include <algorithm>

namespace cdvm
{

ThreadPool::ThreadPool(unsigned workers, std::size_t queue_cap)
    : numWorkers(std::max(workers, 1u)),
      cap(std::max<std::size_t>(queue_cap, 1))
{
    threads.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cvWork.notify_all();
    for (std::thread &t : threads)
        t.join();
}

bool
ThreadPool::trySubmit(Task t)
{
    {
        std::lock_guard<std::mutex> lk(mu);
        if (queue.size() >= cap) {
            nRejected.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        queue.push_back(std::move(t));
    }
    cvWork.notify_one();
    return true;
}

void
ThreadPool::drain()
{
    std::unique_lock<std::mutex> lk(mu);
    cvIdle.wait(lk, [this] { return queue.empty() && active == 0; });
}

u64
ThreadPool::executed() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nExecuted;
}

void
ThreadPool::workerLoop(unsigned ctx)
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cvWork.wait(lk,
                    [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            // stopping and nothing left to do.
            return;
        }
        Task t = std::move(queue.front());
        queue.pop_front();
        ++active;
        lk.unlock();
        t(ctx);
        lk.lock();
        --active;
        ++nExecuted;
        if (queue.empty() && active == 0)
            cvIdle.notify_all();
    }
}

} // namespace cdvm
