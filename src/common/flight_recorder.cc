#include "common/flight_recorder.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace cdvm
{

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity_events)
{
    if (capacity_events == 0)
        return;
    buf.resize(roundUpPow2(capacity_events));
    mask = buf.size() - 1;
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const u64 first = head - n;
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(buf[static_cast<std::size_t>(first + i) & mask]);
    return out;
}

std::string
FlightRecorder::dumpText() const
{
    std::ostringstream os;
    os << "# flight recorder: " << size() << " of " << recorded()
       << " events retained (" << dropped() << " overwritten), "
       << "capacity " << capacity() << "\n";
    os << "# clock phase insns arg\n";
    char line[96];
    for (const FlightEvent &e : snapshot()) {
        std::snprintf(line, sizeof(line),
                      "%12llu %-13s %6u 0x%llx\n",
                      static_cast<unsigned long long>(e.clock),
                      tracePhaseName(e.phase), e.insns,
                      static_cast<unsigned long long>(e.arg));
        os << line;
    }
    return os.str();
}

bool
FlightRecorder::writeText(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        cdvm_warn("cannot open flight-dump output '%s'", path.c_str());
        return false;
    }
    std::string doc = dumpText();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

} // namespace cdvm
