/**
 * @file
 * In-VM flight recorder: a fixed-size ring of the most recent
 * emulation events, always on.
 *
 * The Tracer (trace.hh) answers "what did the whole run look like" --
 * it is enabled explicitly, sized generously, and dumped once at exit.
 * The flight recorder answers the post-hoc question "what was the VM
 * doing just before *this*": a small preallocated ring records every
 * stage event as it happens, overwriting the oldest, so the last few
 * thousand block entries, translations, flushes and chain installs
 * are always available for dumping -- on demand, on a code-cache
 * flush storm, or from the panic path on abnormal exit.
 *
 * Recording is wait-free for its single producer: one masked store
 * plus a counter increment, no locks, no allocation after
 * construction. The reproduction's dispatch loop is single-threaded
 * (background SBT workers never emit stage events), so producer-side
 * synchronization is unnecessary; the crash-dump path may read the
 * ring from another thread, which is acceptable for a best-effort
 * post-mortem artifact.
 */

#ifndef CDVM_COMMON_FLIGHT_RECORDER_HH
#define CDVM_COMMON_FLIGHT_RECORDER_HH

#include <string>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"

namespace cdvm
{

/** One recorded event (compact: the ring is resident per-VM). */
struct FlightEvent
{
    u64 clock = 0; //!< work-unit clock at the event's start
    u64 arg = 0;   //!< phase payload (pc, arena id, ...)
    u32 insns = 0; //!< x86 instructions covered (0 for instants)
    TracePhase phase = TracePhase::Interp;
};

/** The always-on ring recorder. */
class FlightRecorder
{
  public:
    /**
     * Preallocate a ring of at least capacity_events entries (rounded
     * up to a power of two). 0 constructs a disabled recorder whose
     * record() is a no-op.
     */
    explicit FlightRecorder(std::size_t capacity_events);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    bool enabled() const { return !buf.empty(); }
    std::size_t capacity() const { return buf.size(); }

    /** Record one event: a masked store, overwriting the oldest. */
    void
    record(TracePhase phase, u64 clock, u32 insns, u64 arg)
    {
        if (buf.empty())
            return;
        FlightEvent &e = buf[static_cast<std::size_t>(head) & mask];
        e.clock = clock;
        e.arg = arg;
        e.insns = insns;
        e.phase = phase;
        ++head;
    }

    /** Events ever recorded since construction (or clear()). */
    u64 recorded() const { return head; }

    /** Events lost to ring overwrite. */
    u64
    dropped() const
    {
        return head > buf.size() ? head - buf.size() : 0;
    }

    /** Events currently retained (<= capacity). */
    std::size_t
    size() const
    {
        return head < buf.size() ? static_cast<std::size_t>(head)
                                 : buf.size();
    }

    /** Retained events, oldest first. */
    std::vector<FlightEvent> snapshot() const;

    /** Forget everything recorded; the ring stays allocated. */
    void clear() { head = 0; }

    /**
     * Human-readable dump of the retained events, oldest first, with
     * a header line carrying the recorded/dropped totals.
     */
    std::string dumpText() const;

    /** Write dumpText() to path. @return false on I/O failure. */
    bool writeText(const std::string &path) const;

  private:
    std::vector<FlightEvent> buf;
    std::size_t mask = 0;
    u64 head = 0; //!< events ever recorded; next slot = head & mask
};

} // namespace cdvm

#endif // CDVM_COMMON_FLIGHT_RECORDER_HH
