/**
 * @file
 * ASCII table and data-series rendering shared by the benchmark
 * harnesses, so every figure/table reproduction prints in a uniform,
 * machine-greppable format.
 */

#ifndef CDVM_COMMON_TABLE_HH
#define CDVM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace cdvm
{

/** A simple left/right aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with column-width alignment and a separator under header. */
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with fixed precision. */
std::string fmtDouble(double v, int precision = 3);

/** Format a large count with thousands separators (1,234,567). */
std::string fmtCount(unsigned long long v);

/**
 * A named time series (x strictly increasing). Renders as
 * "series <name>:" followed by "x y" lines -- the format every startup
 * figure bench emits.
 */
struct Series
{
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
};

/** Render several series in a uniform block, one point per line. */
std::string renderSeries(const std::vector<Series> &series,
                         const std::string &x_label,
                         const std::string &y_label);

} // namespace cdvm

#endif // CDVM_COMMON_TABLE_HH
