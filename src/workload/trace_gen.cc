#include "workload/trace_gen.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/logging.hh"

namespace cdvm::workload
{

BlockTrace::BlockTrace(const TraceParams &params)
    : p(params), rng(params.seed, 0xb5ad4eceda1ce2a9ULL)
{
    assert(p.numBlocks > 0 && p.totalInsns > 0);
    info.resize(p.numBlocks);
    weight.resize(p.numBlocks);
    arrival.resize(p.numBlocks);

    // Static image layout: blocks packed sequentially from the code
    // base, as a loader would place them.
    Addr addr = 0x00400000;
    const double size_mu =
        std::log(p.avgBlockInsns) - 0.5 * p.blockSizeSigma * p.blockSizeSigma;
    const u32 rblocks = std::max<u32>(1, p.regionBlocks);
    double region_weight = 1.0;
    u64 region_arrival = 0;
    for (u32 i = 0; i < p.numBlocks; ++i) {
        double sz = rng.logNormal(size_mu, p.blockSizeSigma);
        u16 insns = static_cast<u16>(
            std::max(1.0, std::min(64.0, std::round(sz))));
        BlockInfo &b = info[i];
        b.insns = insns;
        b.bytes = static_cast<u16>(std::max(
            1.0, std::round(insns * p.x86BytesPerInsn)));
        b.x86Addr = addr;
        addr += static_cast<Addr>(b.bytes * p.x86LayoutGap);
        b.region = i / rblocks;

        if (i % rblocks == 0) {
            // New region: draw its popularity and arrival once; the
            // whole loop/hot-path region arrives together.
            region_weight = rng.logNormal(0.0, p.weightSigma);
            if (rng.chance(p.initialFraction)) {
                region_arrival = 0; // start-up code, live immediately
                region_weight *= p.earlyHotBoost;
            } else {
                double u = rng.uniform();
                region_arrival = static_cast<u64>(
                    std::pow(u, p.arrivalGamma) * p.arrivalSpan *
                    static_cast<double>(p.totalInsns));
            }
        }
        weight[i] = region_weight * rng.logNormal(0.0, p.memberSigma);
        arrival[i] = region_arrival;
    }

    buildChunk(0);
}

void
BlockTrace::buildChunk(u32 chunk)
{
    curChunk = chunk;
    const u64 chunk_len =
        std::max<u64>(1, p.totalInsns / p.numChunks);
    chunkEndInsns = static_cast<u64>(chunk + 1) * chunk_len;
    const u64 now = static_cast<u64>(chunk) * chunk_len;

    available.clear();
    std::vector<double> w;
    for (u32 i = 0; i < p.numBlocks; ++i) {
        if (arrival[i] <= now) {
            available.push_back(i);
            w.push_back(weight[i]);
        }
    }
    if (available.empty()) {
        // Guarantee progress: the earliest arrival opens the program.
        u32 first = 0;
        for (u32 i = 1; i < p.numBlocks; ++i) {
            if (arrival[i] < arrival[first])
                first = i;
        }
        available.push_back(first);
        w.push_back(1.0);
    }
    sampler = std::make_unique<DiscreteSampler>(w);
}

u32
BlockTrace::next()
{
    if (streakLeft > 0) {
        --streakLeft;
        emittedInsns += info[streakBlock].insns;
        return streakBlock;
    }
    if (emittedInsns >= chunkEndInsns && curChunk + 1 < p.numChunks)
        buildChunk(curChunk + 1);

    u32 id = available[sampler->sample(rng)];
    // Geometric repeat streak (loop iterations).
    double mean = std::max(1.0, p.meanRepeat);
    streakLeft = static_cast<u32>(rng.geometric(1.0 / mean));
    streakBlock = id;
    emittedInsns += info[id].insns;
    return id;
}

} // namespace cdvm::workload
