/**
 * @file
 * Synthetic x86 program generator.
 *
 * Produces genuine, executable x86-subset program images: structured
 * function bodies with bounded loops, forward branches, (indirect)
 * calls, guarded divides and memory traffic to a private data segment.
 * Every generated program terminates at a HLT with a deterministic
 * final architected state, which makes the generator the engine of the
 * differential property tests (interpreter vs BBT vs SBT vs VM).
 */

#ifndef CDVM_WORKLOAD_PROGRAM_GEN_HH
#define CDVM_WORKLOAD_PROGRAM_GEN_HH

#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::workload
{

/** Generation knobs. */
struct ProgramParams
{
    u64 seed = 1;
    unsigned numFuncs = 4;       //!< callable functions (plus main)
    unsigned blocksPerFunc = 3;  //!< straight-line regions per function
    unsigned insnsPerBlock = 8;  //!< ALU/memory instructions per region
    unsigned loopTripMin = 2;
    unsigned loopTripMax = 10;
    unsigned mainIterations = 3; //!< times main re-runs its call list
    bool withLoops = true;
    bool withCalls = true;
    bool withIndirect = true;    //!< indirect calls through a register
    bool withDiv = true;         //!< guarded unsigned divides
    bool withByteOps = true;     //!< 8-bit subregister traffic
    bool with16Bit = true;       //!< operand-size-prefixed instructions
};

/** A generated, loadable program. */
struct Program
{
    std::vector<u8> image;  //!< code bytes
    Addr codeBase = 0;
    Addr entry = 0;
    Addr dataBase = 0;
    u64 dataBytes = 0;
    Addr stackTop = 0;

    /** Load code into memory (data segment is zero-filled on demand). */
    void loadInto(x86::Memory &mem) const;

    /** Architected state at program entry (ESP set, EBX = data base). */
    x86::CpuState initialState() const;
};

/** Generate a program from the given parameters. */
Program generateProgram(const ProgramParams &params);

} // namespace cdvm::workload

#endif // CDVM_WORKLOAD_PROGRAM_GEN_HH
