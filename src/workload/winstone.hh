/**
 * @file
 * Winstone2004-Business-like application profiles.
 *
 * The paper evaluates on full-system traces of the ten applications in
 * the Winstone2004 Business suite. Those traces are proprietary, so
 * each application is modelled by a trace-generator profile calibrated
 * to the aggregate characteristics the paper publishes:
 *
 *   - ~150 K static x86 instructions touched per 100 M dynamic
 *     (suite average; per-app footprints vary around it);
 *   - ~3 K static instructions beyond the 8000-execution hot
 *     threshold at 100 M;
 *   - steady-state VM IPC gain of 8 % on average, only 3 % for
 *     Project (Section 5.2);
 *   - reference-superscalar cycle counts between 333 M and 923 M for
 *     500 M instructions (i.e. CPI between ~0.67 and ~1.85);
 *   - hotspot coverage ~63 % of dynamic instructions at 100 M,
 *     75+ % at 500 M.
 *
 * The per-app parameter spread is a modelling choice (documented in
 * DESIGN.md); the suite averages are what the experiments check.
 */

#ifndef CDVM_WORKLOAD_WINSTONE_HH
#define CDVM_WORKLOAD_WINSTONE_HH

#include <string>
#include <vector>

#include "workload/trace_gen.hh"

namespace cdvm::workload
{

/** One benchmark application profile. */
struct AppProfile
{
    std::string name;
    TraceParams trace;
    /** Reference-superscalar CPI with warm caches (incl. data stalls). */
    double cpiRef = 1.2;
    /** VM steady-state IPC gain over the reference (e.g. 0.08). */
    double steadyGain = 0.08;
};

/**
 * The ten Winstone2004 Business applications, calibrated per the
 * header comment. total_insns scales every trace (the paper uses
 * 100 M for accumulated statistics and 500 M for time-variation
 * studies).
 */
std::vector<AppProfile> winstone2004(u64 total_insns);

/** A single profile with suite-average parameters. */
AppProfile winstoneAverage(u64 total_insns);

/**
 * A SPEC2000-integer-like profile: smaller working set, tighter loops,
 * higher fusion benefit (18 % steady-state gain, Section 2).
 */
AppProfile specIntLike(u64 total_insns);

} // namespace cdvm::workload

#endif // CDVM_WORKLOAD_WINSTONE_HH
