#include "workload/winstone.hh"

#include <cmath>

namespace cdvm::workload
{

namespace
{

/** Static footprint scaling: code touched grows sub-linearly with
 *  trace length (working sets recur). */
u32
blocksFor(double footprint_mul, u64 total_insns)
{
    const double base = 38000.0; // ~150 K static insns per 100 M
    double scale =
        std::pow(static_cast<double>(total_insns) / 100e6, 0.75);
    double n = base * footprint_mul * std::max(0.35, scale);
    return static_cast<u32>(std::max(500.0, n));
}

AppProfile
makeApp(const char *name, u64 seed, double footprint_mul,
        double weight_sigma, double cpi_ref, double gain,
        double mean_repeat, u64 total_insns)
{
    AppProfile a;
    a.name = name;
    a.trace.seed = seed;
    a.trace.totalInsns = total_insns;
    a.trace.numBlocks = blocksFor(footprint_mul, total_insns);
    a.trace.weightSigma = weight_sigma;
    a.trace.meanRepeat = mean_repeat;
    a.cpiRef = cpi_ref;
    a.steadyGain = gain;
    return a;
}

} // namespace

std::vector<AppProfile>
winstone2004(u64 total_insns)
{
    // Per-app spread around the published suite averages; see the
    // header comment and DESIGN.md for the calibration targets.
    return {
        makeApp("Access", 101, 1.5, 2.30, 1.55, 0.07, 2.6, total_insns),
        makeApp("Excel", 102, 1.3, 2.35, 1.30, 0.06, 2.8, total_insns),
        makeApp("FrontPage", 103, 0.9, 2.50, 1.10, 0.09, 3.2,
                total_insns),
        makeApp("IE", 104, 0.8, 2.55, 1.05, 0.10, 3.4, total_insns),
        makeApp("Norton", 105, 0.7, 2.60, 0.75, 0.09, 3.6, total_insns),
        makeApp("Outlook", 106, 1.1, 2.45, 1.25, 0.08, 3.0,
                total_insns),
        makeApp("PowerPoint", 107, 1.0, 2.45, 1.15, 0.08, 3.0,
                total_insns),
        makeApp("Project", 108, 1.2, 2.40, 1.35, 0.03, 2.8,
                total_insns),
        makeApp("Winzip", 109, 0.5, 2.65, 0.70, 0.11, 4.0, total_insns),
        makeApp("Word", 110, 1.0, 2.45, 1.20, 0.08, 3.0, total_insns),
    };
}

AppProfile
winstoneAverage(u64 total_insns)
{
    return makeApp("Winstone-avg", 100, 1.0, 2.45, 1.20, 0.08, 3.0,
                   total_insns);
}

AppProfile
specIntLike(u64 total_insns)
{
    return makeApp("SPECint-like", 200, 0.15, 2.85, 1.00, 0.18, 5.0,
                   total_insns);
}

} // namespace cdvm::workload
