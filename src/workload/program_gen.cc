#include "workload/program_gen.hh"

#include <cassert>

#include "x86/asm.hh"

namespace cdvm::workload
{

using x86::Assembler;
using x86::Cond;
using x86::MemRef;
using x86::Op;
using x86::Reg;

namespace
{

constexpr Addr CODE_BASE = 0x00400000;
constexpr Addr DATA_BASE = 0x00800000;
constexpr u64 DATA_BYTES = 64 * 1024;
constexpr Addr STACK_TOP = 0x7fff0000;

/**
 * Register conventions inside generated code:
 *   EBX  data-segment base (set once in main, never clobbered)
 *   EBP  frame pointer, ESP stack pointer (standard prologue/epilogue)
 *   ECX  loop counters (clobber-free inside loop bodies)
 *   EAX, EDX, ESI, EDI  scratch
 */
class Generator
{
  public:
    explicit Generator(const ProgramParams &params)
        : p(params), rng(params.seed, 0x9e3779b97f4a7c15ULL),
          as(CODE_BASE)
    {
    }

    Program
    run()
    {
        // One label per function, bound as each body is emitted.
        funcLabels.resize(p.numFuncs);
        for (unsigned i = 0; i < p.numFuncs; ++i)
            funcLabels[i] = as.newLabel();

        Assembler::Label main_lbl = as.newLabel();
        // Entry stub jumps over the function bodies to main.
        as.jmp(main_lbl);

        for (unsigned i = 0; i < p.numFuncs; ++i)
            emitFunction(i);

        as.bind(main_lbl);
        emitMain();

        Program prog;
        prog.image = as.finalize();
        prog.codeBase = CODE_BASE;
        prog.entry = CODE_BASE;
        prog.dataBase = DATA_BASE;
        prog.dataBytes = DATA_BYTES;
        prog.stackTop = STACK_TOP;
        return prog;
    }

  private:
    const ProgramParams &p;
    Pcg32 rng;
    Assembler as;
    std::vector<Assembler::Label> funcLabels;

    Reg
    scratch()
    {
        static const Reg regs[] = {x86::EAX, x86::EDX, x86::ESI,
                                   x86::EDI};
        return regs[rng.below(4)];
    }

    MemRef
    dataRef()
    {
        // [ebx + disp], disp word-aligned within the data segment.
        MemRef m;
        m.base = x86::EBX;
        m.disp = static_cast<i32>(rng.below(DATA_BYTES / 4 - 4) * 4);
        return m;
    }

    MemRef
    indexedDataRef(Reg idx)
    {
        // [ebx + idx*4 + disp]; idx is masked to 1023 beforehand.
        MemRef m;
        m.base = x86::EBX;
        m.index = idx;
        m.scale = 4;
        m.disp = static_cast<i32>(rng.below(1024) * 4);
        return m;
    }

    /** One random safe ALU / memory / misc instruction. */
    void
    emitRandomInsn()
    {
        switch (rng.below(18)) {
          case 0:
            as.aluRR(static_cast<Op>(rng.below(2) ? int(Op::Add)
                                                  : int(Op::Xor)),
                     scratch(), scratch());
            break;
          case 1:
            as.aluRI(rng.chance(0.5) ? Op::Add : Op::Sub, scratch(),
                     static_cast<i32>(rng.range(-4096, 4096)));
            break;
          case 2:
            as.aluRR(rng.chance(0.5) ? Op::And : Op::Or, scratch(),
                     scratch());
            break;
          case 3:
            as.movRI(scratch(), rng.next());
            break;
          case 4:
            as.movRR(scratch(), scratch());
            break;
          case 5: // load
            as.movRM(scratch(), dataRef());
            break;
          case 6: // store
            as.movMR(dataRef(), scratch());
            break;
          case 7: // read-modify-write on memory
            as.aluMR(rng.chance(0.5) ? Op::Add : Op::Xor, dataRef(),
                     scratch());
            break;
          case 8: { // indexed access, masked index
            Reg idx = rng.chance(0.5) ? x86::ESI : x86::EDI;
            as.aluRI(Op::And, idx, 1023);
            if (rng.chance(0.5))
                as.movRM(scratch(), indexedDataRef(idx));
            else
                as.movMR(indexedDataRef(idx), scratch());
            break;
          }
          case 9:
            as.lea(scratch(),
                   MemRef{scratch(), scratch(), 4,
                          static_cast<i32>(rng.range(-64, 64))});
            break;
          case 10:
            as.shiftRI(rng.chance(0.5) ? Op::Shl : Op::Shr, scratch(),
                       static_cast<u8>(rng.range(1, 7)));
            break;
          case 11:
            as.imulRRI(scratch(), scratch(),
                       static_cast<i32>(rng.range(-100, 100)));
            break;
          case 12:
            if (rng.chance(0.5))
                as.inc(scratch());
            else
                as.dec(scratch());
            break;
          case 13:
            if (p.withByteOps) {
                // Byte subregister traffic: AL/AH/DL/DH.
                Reg r8 = static_cast<Reg>(rng.below(2) ? 0 : 2);
                Reg hi = static_cast<Reg>(r8 + 4);
                as.db(0xb0 + static_cast<u8>(rng.chance(0.5) ? r8 : hi));
                as.db(static_cast<u8>(rng.next())); // mov r8, imm8
                as.movzx(scratch(), r8, 1);
            } else {
                as.nop();
            }
            break;
          case 14:
            if (p.with16Bit) {
                // 0x66-prefixed 16-bit add reg, reg.
                as.db(0x66);
                as.aluRR(Op::Add, scratch(), scratch());
            } else {
                as.nop();
            }
            break;
          case 15: { // compare + setcc (into AL or DL)
            as.aluRR(Op::Cmp, scratch(), scratch());
            as.setcc(static_cast<Cond>(rng.below(16)),
                     rng.chance(0.5) ? x86::EAX : x86::EDX);
            break;
          }
          case 16:
            if (p.withDiv) {
                // Guarded unsigned divide: edx=0, divisor |= 1.
                Reg dv = rng.chance(0.5) ? x86::ESI : x86::EDI;
                as.aluRR(Op::Xor, x86::EDX, x86::EDX);
                as.aluRI(Op::Or, dv, 1);
                as.divA(dv);
            } else {
                as.nop();
            }
            break;
          case 17:
            as.negReg(scratch());
            break;
        }
    }

    /** A short forward-branch diamond. */
    void
    emitDiamond()
    {
        Assembler::Label skip = as.newLabel();
        as.aluRI(Op::Cmp, scratch(),
                 static_cast<i32>(rng.range(-100, 100)));
        as.jcc(static_cast<Cond>(rng.below(16)), skip);
        unsigned n = 1 + rng.below(3);
        for (unsigned i = 0; i < n; ++i)
            emitRandomInsn();
        as.bind(skip);
    }

    void
    emitBlock()
    {
        for (unsigned i = 0; i < p.insnsPerBlock; ++i)
            emitRandomInsn();
        if (rng.chance(0.7))
            emitDiamond();
    }

    void
    emitFunction(unsigned index)
    {
        as.bind(funcLabels[index]);
        as.push(x86::EBP);
        as.movRR(x86::EBP, x86::ESP);
        as.push(x86::ESI);
        as.push(x86::EDI);

        const bool with_loop = p.withLoops && rng.chance(0.8);
        Assembler::Label loop_top = as.newLabel();
        if (with_loop) {
            u32 trips = static_cast<u32>(
                rng.range(p.loopTripMin, p.loopTripMax));
            as.movRI(x86::ECX, trips);
            as.bind(loop_top);
            as.push(x86::ECX);
        }

        for (unsigned b = 0; b < p.blocksPerFunc; ++b) {
            emitBlock();
            // Calls go strictly downward in function index: no
            // recursion, guaranteed termination.
            if (p.withCalls && index + 1 < p.numFuncs &&
                rng.chance(0.4)) {
                unsigned callee = index + 1 +
                                  rng.below(p.numFuncs - index - 1);
                if (p.withIndirect && rng.chance(0.3)) {
                    as.movRILabel(x86::ESI, funcLabels[callee]);
                    as.callInd(x86::ESI);
                } else {
                    as.call(funcLabels[callee]);
                }
            }
        }

        if (with_loop) {
            as.pop(x86::ECX);
            as.dec(x86::ECX);
            as.jcc(Cond::NE, loop_top);
        }

        as.pop(x86::EDI);
        as.pop(x86::ESI);
        as.movRR(x86::ESP, x86::EBP);
        as.pop(x86::EBP);
        as.ret();
    }

    void
    emitMain()
    {
        // Establish the data-segment base and clear scratch state.
        as.movRI(x86::EBX, static_cast<u32>(DATA_BASE));
        as.movRI(x86::EAX, 0);
        as.movRI(x86::EDX, 0);
        as.movRI(x86::ESI, 0);
        as.movRI(x86::EDI, 0);

        Assembler::Label top = as.newLabel();
        as.movRI(x86::ECX, p.mainIterations ? p.mainIterations : 1);
        as.bind(top);
        as.push(x86::ECX);
        for (unsigned i = 0; i < p.numFuncs; ++i) {
            if (rng.chance(0.85))
                as.call(funcLabels[i]);
        }
        emitBlock();
        as.pop(x86::ECX);
        as.dec(x86::ECX);
        as.jcc(Cond::NE, top);
        as.hlt();
    }
};

} // namespace

void
Program::loadInto(x86::Memory &mem) const
{
    mem.writeBlock(codeBase, image);
}

x86::CpuState
Program::initialState() const
{
    x86::CpuState cpu;
    cpu.eip = static_cast<u32>(entry);
    cpu.regs[x86::ESP] = static_cast<u32>(stackTop);
    return cpu;
}

Program
generateProgram(const ProgramParams &params)
{
    return Generator(params).run();
}

} // namespace cdvm::workload
