/**
 * @file
 * Statistical basic-block trace generator.
 *
 * The startup experiments need 10^8-instruction instruction streams
 * with the first-order statistics of the Winstone2004 traces the paper
 * used (Section 3.2 / Fig. 3):
 *
 *   - M_BBT: static code touched grows throughout the run
 *     (~150 K static x86 instructions per 100 M dynamic);
 *   - a heavy-tailed execution-frequency distribution whose dynamic
 *     mass peaks in the 10K-100K executions bucket (~30 %) at 100 M;
 *   - a small hot set (M_SBT ~ 3 K static instructions beyond the
 *     8000-execution threshold);
 *   - hotspot code grouped in regions (loops / superblock traces), so
 *     one hot seed covers neighbouring blocks.
 *
 * The model: a universe of static blocks with log-normal sizes and
 * log-normal popularity weights, arriving over time (front-loaded),
 * sampled chunk-by-chunk through O(1) alias tables, with geometric
 * repeat streaks for loop behaviour. Blocks are grouped into regions
 * of consecutive IDs that model superblock scope.
 */

#ifndef CDVM_WORKLOAD_TRACE_GEN_HH
#define CDVM_WORKLOAD_TRACE_GEN_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace cdvm::workload
{

/** One static basic block of the synthetic program. */
struct BlockInfo
{
    Addr x86Addr = 0;   //!< address of the block in the x86 image
    u16 insns = 0;      //!< x86 instructions
    u16 bytes = 0;      //!< x86 bytes
    u32 region = 0;     //!< superblock-region id (grouping)
};

/** Generator parameters. */
struct TraceParams
{
    u64 seed = 1;
    u64 totalInsns = 100'000'000;
    u32 numBlocks = 30000;        //!< static universe (blocks)
    double avgBlockInsns = 5.5;
    double blockSizeSigma = 0.45; //!< log-normal sigma of block size
    /**
     * Popularity model: blocks in the same region (loop / hot path)
     * execute together, so a block's weight is a per-region log-normal
     * (weightSigma) times a per-block jitter (memberSigma). This is
     * what lets a hot superblock seed cover neighbouring blocks whose
     * individual counts sit below the threshold -- the mechanism
     * behind the paper's 63 % hotspot coverage from only ~3 K hot
     * static instructions.
     */
    double weightSigma = 2.2;     //!< log-normal sigma across regions
    double memberSigma = 1.25;     //!< log-normal jitter within region
    double arrivalGamma = 1.3;    //!< arrival time = T * u^gamma
    double arrivalSpan = 1.1;     //!< last arrivals at span * T
    /**
     * Fraction of regions live from the first instruction (program
     * start-up code: loader, initialization, first screens). The rest
     * arrive over the run per arrivalGamma/arrivalSpan.
     */
    double initialFraction = 0.30;

    /**
     * Popularity multiplier for initial regions: an application's main
     * loops start with it and are its hottest code, so early regions
     * skew hot. Drives the early hotspot-coverage ramp that the
     * hardware-assisted VMs convert into early breakeven.
     */
    double earlyHotBoost = 6.0;
    u32 regionBlocks = 4;         //!< blocks per superblock region
    double meanRepeat = 3.0;      //!< mean consecutive executions
    double x86BytesPerInsn = 3.7;
    /**
     * Static-image sparsity: dynamic basic blocks are scattered through
     * the binary (unused code, alignment, data islands between them),
     * so consecutive hot blocks do not share cache lines the way the
     * execution-ordered code cache does. Block spacing multiplier.
     */
    double x86LayoutGap = 2.2;
    u32 numChunks = 64;           //!< availability rebuild granularity
};

/** A reproducible block-reference stream. */
class BlockTrace
{
  public:
    explicit BlockTrace(const TraceParams &params);

    /**
     * Next block reference. Streams forever; the caller stops when its
     * instruction budget is consumed.
     */
    u32 next();

    const std::vector<BlockInfo> &blocks() const { return info; }
    const TraceParams &params() const { return p; }

    /** Planned dynamic length in x86 instructions. */
    u64 totalInsns() const { return p.totalInsns; }

  private:
    void buildChunk(u32 chunk);

    TraceParams p;
    Pcg32 rng;
    std::vector<BlockInfo> info;
    std::vector<double> weight;
    std::vector<u64> arrival;     //!< arrival time in dynamic insns

    // Streaming state.
    u64 emittedInsns = 0;
    u32 curChunk = 0;
    u64 chunkEndInsns = 0;
    std::vector<u32> available;   //!< block ids available in cur chunk
    std::unique_ptr<DiscreteSampler> sampler;
    u32 streakBlock = 0;
    u32 streakLeft = 0;
};

} // namespace cdvm::workload

#endif // CDVM_WORKLOAD_TRACE_GEN_HH
