#include "x86/interp.hh"

#include <cassert>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "x86/decode_cache.hh"
#include "x86/decoder.hh"

namespace cdvm::x86
{

namespace flags
{

u32
trunc(u32 v, unsigned size)
{
    switch (size) {
      case 1: return v & 0xff;
      case 2: return v & 0xffff;
      default: return v;
    }
}

bool
signBit(u32 v, unsigned size)
{
    return v & (1u << (size * 8 - 1));
}

namespace
{

bool
parityEven(u32 v)
{
    v &= 0xff;
    v ^= v >> 4;
    v ^= v >> 2;
    v ^= v >> 1;
    return !(v & 1);
}

} // namespace

u32
zsp(u32 result, unsigned size)
{
    u32 f = 0;
    u32 r = trunc(result, size);
    if (r == 0)
        f |= FLAG_ZF;
    if (signBit(r, size))
        f |= FLAG_SF;
    if (parityEven(r))
        f |= FLAG_PF;
    return f;
}

u32
add(u32 a, u32 b, u32 carry_in, unsigned size, u32 &result)
{
    a = trunc(a, size);
    b = trunc(b, size);
    u64 wide = static_cast<u64>(a) + b + carry_in;
    result = trunc(static_cast<u32>(wide), size);
    u32 f = zsp(result, size);
    if (wide >> (size * 8))
        f |= FLAG_CF;
    const bool sa = signBit(a, size), sb = signBit(b, size),
               sr = signBit(result, size);
    if (sa == sb && sr != sa)
        f |= FLAG_OF;
    if (((a & 0xf) + (b & 0xf) + carry_in) & 0x10)
        f |= FLAG_AF;
    return f;
}

u32
sub(u32 a, u32 b, u32 borrow_in, unsigned size, u32 &result)
{
    a = trunc(a, size);
    b = trunc(b, size);
    u64 wide = static_cast<u64>(a) - b - borrow_in;
    result = trunc(static_cast<u32>(wide), size);
    u32 f = zsp(result, size);
    if (static_cast<u64>(a) < static_cast<u64>(b) + borrow_in)
        f |= FLAG_CF;
    const bool sa = signBit(a, size), sb = signBit(b, size),
               sr = signBit(result, size);
    if (sa != sb && sr != sa)
        f |= FLAG_OF;
    if (((a & 0xf) - (b & 0xf) - borrow_in) & 0x10)
        f |= FLAG_AF;
    return f;
}

u32
logic(u32 result, unsigned size)
{
    return zsp(result, size); // CF = OF = AF = 0
}

ShiftResult
shift(Op op, u32 a, u32 count, unsigned size, u32 old_eflags)
{
    count &= 0x1f;
    if (count == 0)
        return ShiftResult{trunc(a, size), old_eflags};

    const unsigned nbits = size * 8;
    u32 r = a;
    bool cf = old_eflags & FLAG_CF;
    bool of = old_eflags & FLAG_OF;

    switch (op) {
      case Op::Shl:
        if (count >= nbits) {
            cf = count == nbits ? (a & 1) : false;
            r = 0;
        } else {
            cf = (a >> (nbits - count)) & 1;
            r = trunc(a << count, size);
        }
        of = cf != signBit(r, size);
        break;
      case Op::Shr:
        if (count >= nbits) {
            cf = count == nbits ? signBit(a, size) : false;
            r = 0;
        } else {
            cf = (a >> (count - 1)) & 1;
            r = trunc(a, size) >> count;
        }
        of = signBit(a, size);
        break;
      case Op::Sar: {
        i32 sa = static_cast<i32>(sext(trunc(a, size), nbits));
        if (count >= nbits) {
            r = trunc(static_cast<u32>(sa >> (nbits - 1)), size);
            cf = sa < 0;
        } else {
            cf = (sa >> (count - 1)) & 1;
            r = trunc(static_cast<u32>(sa >> count), size);
        }
        of = false;
        break;
      }
      case Op::Rol: {
        u32 c = count % nbits;
        u32 v = trunc(a, size);
        if (c)
            v = trunc((v << c) | (v >> (nbits - c)), size);
        r = v;
        cf = v & 1;
        of = cf != signBit(v, size);
        break;
      }
      case Op::Ror: {
        u32 c = count % nbits;
        u32 v = trunc(a, size);
        if (c)
            v = trunc((v >> c) | (v << (nbits - c)), size);
        r = v;
        cf = signBit(v, size);
        of = signBit(v, size) != ((v >> (nbits - 2)) & 1);
        break;
      }
      default:
        cdvm_panic("flags::shift on non-shift op");
    }

    u32 f = zsp(r, size);
    if (op == Op::Rol || op == Op::Ror) {
        // Rotates preserve ZF/SF/PF/AF; only CF/OF change.
        f = old_eflags & (FLAG_ZF | FLAG_SF | FLAG_PF | FLAG_AF);
    }
    if (cf)
        f |= FLAG_CF;
    if (of)
        f |= FLAG_OF;
    return ShiftResult{r, f};
}

WideMul
mulWide(bool is_signed, u32 a, u32 b, unsigned size)
{
    a = trunc(a, size);
    b = trunc(b, size);
    u64 wide;
    if (is_signed) {
        wide = static_cast<u64>(sext(a, size * 8) * sext(b, size * 8));
    } else {
        wide = static_cast<u64>(a) * b;
    }
    WideMul out;
    out.lo = trunc(static_cast<u32>(wide), size);
    out.hi = trunc(static_cast<u32>(wide >> (size * 8)), size);
    bool over;
    if (is_signed) {
        over = static_cast<i64>(wide) != sext(out.lo, size * 8);
    } else {
        over = out.hi != 0;
    }
    out.flags = zsp(out.lo, size);
    if (over)
        out.flags |= FLAG_CF | FLAG_OF;
    return out;
}

WideDiv
divWide(bool is_signed, u32 hi, u32 lo, u32 b, unsigned size)
{
    WideDiv out{0, 0, false};
    b = trunc(b, size);
    if (b == 0) {
        out.fault = true;
        return out;
    }
    u64 num = (static_cast<u64>(trunc(hi, size)) << (size * 8)) |
              trunc(lo, size);
    if (!is_signed) {
        u64 q = num / b, r = num % b;
        if (q >> (size * 8)) {
            out.fault = true;
            return out;
        }
        out.quot = static_cast<u32>(q);
        out.rem = static_cast<u32>(r);
        return out;
    }
    i64 snum = sext(num, size * 16 <= 64 ? size * 16 : 64);
    if (size == 4)
        snum = static_cast<i64>(num);
    i64 sb = sext(b, size * 8);
    i64 q = snum / sb, r = snum % sb;
    i64 qlo = -(i64{1} << (size * 8 - 1));
    i64 qhi = (i64{1} << (size * 8 - 1)) - 1;
    if (q < qlo || q > qhi) {
        out.fault = true;
        return out;
    }
    out.quot = trunc(static_cast<u32>(q), size);
    out.rem = trunc(static_cast<u32>(r), size);
    return out;
}

u32
imulTrunc(u32 a, u32 b, unsigned size, u32 &flags_out)
{
    i64 prod = sext(trunc(a, size), size * 8) *
               sext(trunc(b, size), size * 8);
    u32 r = trunc(static_cast<u32>(prod), size);
    flags_out = zsp(r, size);
    if (prod != sext(r, size * 8))
        flags_out |= FLAG_CF | FLAG_OF;
    return r;
}

} // namespace flags

// --- CpuState ---------------------------------------------------------------

u32
CpuState::readReg(Reg r, unsigned size) const
{
    if (size == 1) {
        if (r >= 4) // AH/CH/DH/BH
            return (regs[r - 4] >> 8) & 0xff;
        return regs[r] & 0xff;
    }
    if (size == 2)
        return regs[r] & 0xffff;
    return regs[r];
}

void
CpuState::writeReg(Reg r, unsigned size, u32 v)
{
    if (size == 1) {
        if (r >= 4) { // AH/CH/DH/BH
            Reg base = static_cast<Reg>(r - 4);
            regs[base] = (regs[base] & 0xffff00ff) | ((v & 0xff) << 8);
        } else {
            regs[r] = (regs[r] & 0xffffff00) | (v & 0xff);
        }
        return;
    }
    if (size == 2) {
        regs[r] = (regs[r] & 0xffff0000) | (v & 0xffff);
        return;
    }
    regs[r] = v;
}

bool
CpuState::sameArchState(const CpuState &o) const
{
    return regs == o.regs && eip == o.eip &&
           (eflags & FLAG_ALL) == (o.eflags & FLAG_ALL);
}

// --- Interpreter --------------------------------------------------------------

Addr
Interpreter::effAddr(const MemRef &m) const
{
    u32 a = static_cast<u32>(m.disp);
    if (m.hasBase())
        a += cpu.regs[m.base];
    if (m.hasIndex())
        a += cpu.regs[m.index] * m.scale;
    return a;
}

u32
Interpreter::readOperand(const Operand &o, unsigned size)
{
    switch (o.kind) {
      case Operand::Kind::Reg:
        return cpu.readReg(o.reg, size);
      case Operand::Kind::Imm:
        return flags::trunc(static_cast<u32>(o.imm), size);
      case Operand::Kind::Mem: {
        Addr a = effAddr(o.mem);
        switch (size) {
          case 1: return mem.read8(a);
          case 2: return mem.read16(a);
          default: return mem.read32(a);
        }
      }
      case Operand::Kind::None:
        break;
    }
    cdvm_panic("read of empty operand");
}

void
Interpreter::writeOperand(const Operand &o, unsigned size, u32 v)
{
    switch (o.kind) {
      case Operand::Kind::Reg:
        cpu.writeReg(o.reg, size, v);
        return;
      case Operand::Kind::Mem: {
        Addr a = effAddr(o.mem);
        switch (size) {
          case 1: mem.write8(a, static_cast<u8>(v)); return;
          case 2: mem.write16(a, static_cast<u16>(v)); return;
          default: mem.write32(a, v); return;
        }
      }
      default:
        cdvm_panic("write to non-lvalue operand");
    }
}

StepResult
Interpreter::step()
{
    if (dcache) {
        const DecodeResult &dr = dcache->fetchDecode(mem, cpu.eip);
        if (!dr.ok) {
            StepResult sr;
            sr.exit = Exit::DecodeFault;
            return sr;
        }
        return execute(dr.insn);
    }
    u8 window[MAX_INSN_LEN + 1];
    mem.fetchWindow(cpu.eip, window, sizeof(window));
    DecodeResult dr = decode(std::span<const u8>(window, sizeof(window)),
                             cpu.eip);
    if (!dr.ok) {
        StepResult sr;
        sr.exit = Exit::DecodeFault;
        return sr;
    }
    return execute(dr.insn);
}

StepResult
Interpreter::execute(const Insn &in)
{
    StepResult sr;
    sr.insn = in;
    const unsigned size = in.opSize;
    u32 next_eip = static_cast<u32>(in.nextPc());

    // Replace only the arithmetic flag bits; keep system bits.
    auto setArith = [&](u32 f) {
        cpu.eflags = (cpu.eflags & ~FLAG_ALL) | (f & FLAG_ALL);
    };

    switch (in.op) {
      case Op::Add:
      case Op::Adc: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        u32 cin = (in.op == Op::Adc && cpu.flag(FLAG_CF)) ? 1 : 0;
        u32 r;
        setArith(flags::add(a, b, cin, size, r));
        writeOperand(in.dst, size, r);
        break;
      }
      case Op::Sub:
      case Op::Sbb: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        u32 bin = (in.op == Op::Sbb && cpu.flag(FLAG_CF)) ? 1 : 0;
        u32 r;
        setArith(flags::sub(a, b, bin, size, r));
        writeOperand(in.dst, size, r);
        break;
      }
      case Op::Cmp: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        u32 r;
        setArith(flags::sub(a, b, 0, size, r));
        break;
      }
      case Op::And:
      case Op::Or:
      case Op::Xor: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        u32 r = in.op == Op::And ? (a & b)
                                 : in.op == Op::Or ? (a | b) : (a ^ b);
        r = flags::trunc(r, size);
        setArith(flags::logic(r, size));
        writeOperand(in.dst, size, r);
        break;
      }
      case Op::Test: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        setArith(flags::logic(flags::trunc(a & b, size), size));
        break;
      }
      case Op::Inc:
      case Op::Dec: {
        u32 a = readOperand(in.dst, size);
        u32 r;
        u32 f = in.op == Op::Inc ? flags::add(a, 1, 0, size, r)
                                 : flags::sub(a, 1, 0, size, r);
        // INC/DEC preserve CF.
        f = (f & ~FLAG_CF) | (cpu.eflags & FLAG_CF);
        setArith(f);
        writeOperand(in.dst, size, r);
        break;
      }
      case Op::Not: {
        u32 a = readOperand(in.dst, size);
        writeOperand(in.dst, size, flags::trunc(~a, size));
        break; // NOT writes no flags
      }
      case Op::Neg: {
        u32 a = readOperand(in.dst, size);
        u32 r;
        u32 f = flags::sub(0, a, 0, size, r);
        setArith(f);
        writeOperand(in.dst, size, r);
        break;
      }
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Rol:
      case Op::Ror: {
        u32 a = readOperand(in.dst, size);
        u32 count = in.src.isReg() ? cpu.readReg(ECX, 1)
                                   : static_cast<u32>(in.src.imm);
        flags::ShiftResult out =
            flags::shift(in.op, a, count, size, cpu.eflags & FLAG_ALL);
        setArith(out.eflags);
        writeOperand(in.dst, size, out.result);
        break;
      }
      case Op::Imul: {
        // Two- or three-operand signed multiply.
        u32 a = readOperand(in.src, size);
        u32 b = in.src2.isNone() ? cpu.readReg(in.dst.reg, size)
                                 : flags::trunc(
                                       static_cast<u32>(in.src2.imm), size);
        u32 f;
        u32 r = flags::imulTrunc(a, b, size, f);
        setArith(f);
        cpu.writeReg(in.dst.reg, size, r);
        break;
      }
      case Op::MulA:
      case Op::ImulA: {
        u32 b = readOperand(in.src, size);
        u32 a = cpu.readReg(EAX, size);
        flags::WideMul wm =
            flags::mulWide(in.op == Op::ImulA, a, b, size);
        if (size == 1) {
            // AX = AH:AL result.
            cpu.writeReg(EAX, 2, (wm.hi << 8) | wm.lo);
        } else {
            cpu.writeReg(EAX, size, wm.lo);
            cpu.writeReg(EDX, size, wm.hi);
        }
        setArith(wm.flags);
        break;
      }
      case Op::DivA:
      case Op::IdivA: {
        u32 b = readOperand(in.src, size);
        u32 hi = size == 1 ? cpu.readReg(static_cast<Reg>(4), 1) // AH
                           : cpu.readReg(EDX, size);
        u32 lo = cpu.readReg(EAX, size);
        flags::WideDiv wd =
            flags::divWide(in.op == Op::IdivA, hi, lo, b, size);
        if (wd.fault) {
            sr.exit = Exit::Trap;
            return sr;
        }
        if (size == 1) {
            cpu.writeReg(EAX, 1, wd.quot);
            cpu.writeReg(static_cast<Reg>(4), 1, wd.rem); // AH
        } else {
            cpu.writeReg(EAX, size, wd.quot);
            cpu.writeReg(EDX, size, wd.rem);
        }
        break; // flags undefined after div: leave unchanged (documented)
      }
      case Op::Mov: {
        u32 v = readOperand(in.src, size);
        writeOperand(in.dst, size, v);
        break;
      }
      case Op::Movzx: {
        u32 v = readOperand(in.src, size); // size = source size
        cpu.writeReg(in.dst.reg, 4, v);
        break;
      }
      case Op::Movsx: {
        u32 v = readOperand(in.src, size);
        cpu.writeReg(in.dst.reg, 4,
                     static_cast<u32>(sext(v, size * 8)));
        break;
      }
      case Op::Lea: {
        cpu.writeReg(in.dst.reg, 4, static_cast<u32>(effAddr(in.src.mem)));
        break;
      }
      case Op::Xchg: {
        u32 a = readOperand(in.dst, size);
        u32 b = readOperand(in.src, size);
        writeOperand(in.dst, size, b);
        writeOperand(in.src, size, a);
        break;
      }
      case Op::Push: {
        u32 v = readOperand(in.src, 4);
        cpu.regs[ESP] -= 4;
        mem.write32(cpu.regs[ESP], v);
        break;
      }
      case Op::Pop: {
        u32 v = mem.read32(cpu.regs[ESP]);
        cpu.regs[ESP] += 4;
        writeOperand(in.dst, 4, v);
        break;
      }
      case Op::Cdq:
        cpu.regs[EDX] = (cpu.regs[EAX] & 0x80000000) ? 0xffffffff : 0;
        break;
      case Op::Jcc:
        sr.taken = condTrue(in.cond, cpu.eflags);
        if (sr.taken)
            next_eip = static_cast<u32>(in.target);
        break;
      case Op::Jmp:
        sr.taken = true;
        next_eip = static_cast<u32>(in.target);
        break;
      case Op::JmpInd:
        sr.taken = true;
        next_eip = readOperand(in.src, 4);
        break;
      case Op::Call:
        sr.taken = true;
        cpu.regs[ESP] -= 4;
        mem.write32(cpu.regs[ESP], next_eip);
        next_eip = static_cast<u32>(in.target);
        break;
      case Op::CallInd: {
        sr.taken = true;
        u32 t = readOperand(in.src, 4);
        cpu.regs[ESP] -= 4;
        mem.write32(cpu.regs[ESP], next_eip);
        next_eip = t;
        break;
      }
      case Op::Ret: {
        sr.taken = true;
        next_eip = mem.read32(cpu.regs[ESP]);
        cpu.regs[ESP] += 4 + static_cast<u32>(in.src.isImm() ? in.src.imm
                                                             : 0);
        break;
      }
      case Op::Setcc:
        writeOperand(in.dst, 1, condTrue(in.cond, cpu.eflags) ? 1 : 0);
        break;
      case Op::Clc:
        cpu.setFlag(FLAG_CF, false);
        break;
      case Op::Stc:
        cpu.setFlag(FLAG_CF, true);
        break;
      case Op::Cmc:
        cpu.setFlag(FLAG_CF, !cpu.flag(FLAG_CF));
        break;
      case Op::Nop:
        break;
      case Op::Hlt:
        sr.exit = Exit::Halted;
        cpu.eip = static_cast<u32>(in.pc); // halt does not advance
        ++cpu.icount;
        return sr;
      case Op::Int3:
        sr.exit = Exit::Trap;
        return sr;
      case Op::Cpuid:
        // Deterministic fixed identification values.
        cpu.regs[EAX] = 0x00000001;
        cpu.regs[EBX] = 0x43445648; // "CDVH"
        cpu.regs[ECX] = 0x4d563836; // "MV86"
        cpu.regs[EDX] = 0x00000000;
        break;
      case Op::Rdtsc:
        // Deterministic fixed value: translated and interpreted
        // executions must agree bit-for-bit in differential tests.
        cpu.regs[EAX] = 0x5eed0000;
        cpu.regs[EDX] = 0;
        break;
      case Op::Invalid:
      case Op::NUM_OPS:
        cdvm_panic("executing invalid instruction");
    }

    cpu.eip = next_eip;
    ++cpu.icount;
    return sr;
}

Exit
Interpreter::run(InstCount max_insns)
{
    InstCount limit = cpu.icount + max_insns;
    while (cpu.icount < limit) {
        StepResult sr = step();
        if (sr.exit != Exit::None)
            return sr.exit;
    }
    return Exit::None;
}

} // namespace cdvm::x86
