#include "x86/decode_cache.hh"

#include "common/statreg.hh"

namespace cdvm::x86
{

namespace
{

/** Same multiplicative scramble the dispatch structures use. */
inline u64
mix(u64 pc)
{
    return pc * 0x9E3779B97F4A7C15ull;
}

} // namespace

DecodeCache::DecodeCache(std::size_t entries)
{
    std::size_t cap = 16;
    while (cap < entries)
        cap <<= 1;
    lines.resize(cap);
}

const DecodeResult &
DecodeCache::fetchDecode(const Memory &mem, Addr pc)
{
    Line &l = lines[mix(pc) >> 32 & (lines.size() - 1)];
    // gen is the memory's code version at fill time, offset by one so
    // that 0 always means "empty line".
    const u64 want = mem.codeVersion() + 1;
    if (l.pc == pc && l.gen == want) {
        ++nHits;
        return l.dr;
    }
    ++nMisses;
    u8 window[MAX_INSN_LEN + 1];
    const bool cacheable = mem.fetchCode(pc, window, sizeof(window));
    if (!cacheable) {
        // The window read through an unallocated page: decode, but do
        // not cache (see Memory::fetchCode).
        scratch = decode(std::span<const u8>(window, sizeof(window)),
                         pc);
        return scratch;
    }
    l.dr = decode(std::span<const u8>(window, sizeof(window)), pc);
    l.pc = pc;
    l.gen = want;
    return l.dr;
}

void
DecodeCache::invalidateAll()
{
    for (Line &l : lines)
        l.gen = 0;
}

void
DecodeCache::exportStats(StatRegistry &reg,
                         const std::string &prefix) const
{
    reg.set(prefix + ".hits", static_cast<double>(nHits),
            "interpreted steps served from the decode cache");
    reg.set(prefix + ".misses", static_cast<double>(nMisses),
            "interpreted steps that ran the byte decoder");
    reg.set(prefix + ".hit_rate", hitRate(),
            "decode-cache hit fraction");
    reg.set(prefix + ".capacity", static_cast<double>(lines.size()),
            "decode-cache lines");
}

} // namespace cdvm::x86
