#include "x86/regs.hh"

#include <cassert>

namespace cdvm::x86
{

bool
condTrue(Cond cc, u32 f)
{
    const bool cf = f & FLAG_CF;
    const bool pf = f & FLAG_PF;
    const bool zf = f & FLAG_ZF;
    const bool sf = f & FLAG_SF;
    const bool of = f & FLAG_OF;
    switch (cc) {
      case Cond::O: return of;
      case Cond::NO: return !of;
      case Cond::B: return cf;
      case Cond::AE: return !cf;
      case Cond::E: return zf;
      case Cond::NE: return !zf;
      case Cond::BE: return cf || zf;
      case Cond::A: return !cf && !zf;
      case Cond::S: return sf;
      case Cond::NS: return !sf;
      case Cond::P: return pf;
      case Cond::NP: return !pf;
      case Cond::L: return sf != of;
      case Cond::GE: return sf == of;
      case Cond::LE: return zf || (sf != of);
      case Cond::G: return !zf && (sf == of);
    }
    assert(false && "bad condition code");
    return false;
}

std::string
regName(Reg r, unsigned size)
{
    static const char *r32[] = {"eax", "ecx", "edx", "ebx",
                                "esp", "ebp", "esi", "edi"};
    static const char *r16[] = {"ax", "cx", "dx", "bx",
                                "sp", "bp", "si", "di"};
    static const char *r8[] = {"al", "cl", "dl", "bl",
                               "ah", "ch", "dh", "bh"};
    if (r >= NUM_REGS)
        return "r?";
    switch (size) {
      case 1: return r8[r];
      case 2: return r16[r];
      default: return r32[r];
    }
}

std::string
condName(Cond cc)
{
    static const char *names[] = {"o", "no", "b", "ae", "e", "ne",
                                  "be", "a", "s", "ns", "p", "np",
                                  "l", "ge", "le", "g"};
    return names[static_cast<unsigned>(cc) & 0xf];
}

} // namespace cdvm::x86
