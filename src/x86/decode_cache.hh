/**
 * @file
 * Decoded-instruction cache for the interpreter cold path.
 *
 * Interpretation is the paper's startup worst case, and in this host
 * reproduction each interpreted step used to re-fetch and re-decode
 * the raw variable-length x86 bytes. This cache memoizes the decoder:
 * a direct-mapped pc -> DecodeResult array (power-of-two capacity,
 * fibonacci-hashed index) validated by a generation tag.
 *
 * Coherence: fills go through Memory::fetchCode, which marks the
 * touched pages as code pages; any subsequent guest write to a code
 * page (self-modifying code, or a program image reload between runs)
 * bumps Memory::codeVersion, which invalidates every cached decode at
 * once. Writes to pure data pages (stack/heap stores, the common
 * case) leave the cache intact. This is strictly stronger than the
 * translation caches' contract, which never observes guest code
 * writes at all.
 */

#ifndef CDVM_X86_DECODE_CACHE_HH
#define CDVM_X86_DECODE_CACHE_HH

#include <string>
#include <vector>

#include "x86/decoder.hh"
#include "x86/memory.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::x86
{

/** Direct-mapped pc -> decoded-instruction cache. */
class DecodeCache
{
  public:
    /** entries is rounded up to a power of two (minimum 16). */
    explicit DecodeCache(std::size_t entries = 8192);

    /**
     * Decode the instruction at pc, serving from the cache when the
     * line is valid for Memory's current code version. The returned
     * reference stays valid until the next fetchDecode call.
     */
    const DecodeResult &fetchDecode(const Memory &mem, Addr pc);

    /** Drop every cached decode (e.g., on program reload). */
    void invalidateAll();

    std::size_t capacity() const { return lines.size(); }
    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }
    double
    hitRate() const
    {
        const u64 total = nHits + nMisses;
        return total ? static_cast<double>(nHits) /
                           static_cast<double>(total)
                     : 0.0;
    }

    /** Publish hit/miss/occupancy counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Line
    {
        Addr pc = 0;
        u64 gen = 0; //!< Memory::codeVersion()+1 at fill; 0: empty
        DecodeResult dr;
    };

    std::vector<Line> lines; //!< pow2 capacity
    DecodeResult scratch;    //!< result slot for uncacheable fetches
    u64 nHits = 0;
    u64 nMisses = 0;
};

} // namespace cdvm::x86

#endif // CDVM_X86_DECODE_CACHE_HH
