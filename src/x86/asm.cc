#include "x86/asm.hh"

#include <cassert>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace cdvm::x86
{

namespace
{

/** Row index for the classic ALU opcode pattern. */
u8
aluRow(Op op)
{
    switch (op) {
      case Op::Add: return 0;
      case Op::Or: return 1;
      case Op::Adc: return 2;
      case Op::Sbb: return 3;
      case Op::And: return 4;
      case Op::Sub: return 5;
      case Op::Xor: return 6;
      case Op::Cmp: return 7;
      default:
        cdvm_panic("not an ALU-row opcode: %d", static_cast<int>(op));
    }
}

u8
shiftExt(Op op)
{
    switch (op) {
      case Op::Rol: return 0;
      case Op::Ror: return 1;
      case Op::Shl: return 4;
      case Op::Shr: return 5;
      case Op::Sar: return 7;
      default:
        cdvm_panic("not a shift opcode: %d", static_cast<int>(op));
    }
}

} // namespace

void
Assembler::emit16(u16 v)
{
    emit8(static_cast<u8>(v));
    emit8(static_cast<u8>(v >> 8));
}

void
Assembler::emit32(u32 v)
{
    emit8(static_cast<u8>(v));
    emit8(static_cast<u8>(v >> 8));
    emit8(static_cast<u8>(v >> 16));
    emit8(static_cast<u8>(v >> 24));
}

void
Assembler::emitModRm(u8 mod, u8 reg, u8 rm)
{
    emit8(static_cast<u8>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
}

void
Assembler::emitRmReg(u8 reg_field, Reg rm)
{
    emitModRm(3, reg_field, rm);
}

void
Assembler::emitRmMem(u8 reg_field, const MemRef &m)
{
    const bool need_sib = m.hasIndex() || m.base == ESP;

    if (!m.hasBase() && !m.hasIndex()) {
        // Absolute disp32: mod=00 rm=101.
        emitModRm(0, reg_field, 5);
        emit32(static_cast<u32>(m.disp));
        return;
    }
    if (!m.hasBase()) {
        // Index-only requires SIB with base=101, mod=00, disp32.
        emitModRm(0, reg_field, 4);
        u8 ss = static_cast<u8>(floorLog2(m.scale));
        emit8(static_cast<u8>((ss << 6) | ((m.index & 7) << 3) | 5));
        emit32(static_cast<u32>(m.disp));
        return;
    }

    // Pick displacement form. EBP base cannot use mod=00.
    u8 mod;
    if (m.disp == 0 && m.base != EBP)
        mod = 0;
    else if (fitsSigned(m.disp, 8))
        mod = 1;
    else
        mod = 2;

    if (need_sib) {
        emitModRm(mod, reg_field, 4);
        u8 ss = static_cast<u8>(floorLog2(m.scale));
        u8 index = m.hasIndex() ? static_cast<u8>(m.index) : 4;
        assert(!(m.hasIndex() && m.index == ESP) && "esp cannot be an index");
        emit8(static_cast<u8>((ss << 6) | ((index & 7) << 3) | (m.base & 7)));
    } else {
        emitModRm(mod, reg_field, static_cast<u8>(m.base));
    }

    if (mod == 1)
        emit8(static_cast<u8>(m.disp));
    else if (mod == 2)
        emit32(static_cast<u32>(m.disp));
}

Assembler::Label
Assembler::newLabel()
{
    labels.push_back(-1);
    return static_cast<Label>(labels.size() - 1);
}

void
Assembler::bind(Label l)
{
    assert(l < labels.size());
    assert(labels[l] == -1 && "label bound twice");
    labels[l] = static_cast<i64>(buf.size());
}

Addr
Assembler::labelAddr(Label l) const
{
    assert(l < labels.size() && labels[l] >= 0);
    return base + static_cast<Addr>(labels[l]);
}

void
Assembler::emitRel(Label l, bool rel8)
{
    fixups.push_back(Fixup{buf.size(), l,
                           rel8 ? Fixup::Kind::Rel8 : Fixup::Kind::Rel32,
                           buf.size() + (rel8 ? 1u : 4u)});
    if (rel8)
        emit8(0);
    else
        emit32(0);
}

void
Assembler::emitAbs(Label l)
{
    fixups.push_back(
        Fixup{buf.size(), l, Fixup::Kind::Abs32, buf.size() + 4});
    emit32(0);
}

// --- ALU forms -----------------------------------------------------------

void
Assembler::aluRR(Op op, Reg dst, Reg src)
{
    emit8(static_cast<u8>((aluRow(op) << 3) | 0x01));
    emitRmReg(src, dst);
}

void
Assembler::aluRM(Op op, Reg dst, const MemRef &m)
{
    emit8(static_cast<u8>((aluRow(op) << 3) | 0x03));
    emitRmMem(dst, m);
}

void
Assembler::aluMR(Op op, const MemRef &m, Reg src)
{
    emit8(static_cast<u8>((aluRow(op) << 3) | 0x01));
    emitRmMem(src, m);
}

void
Assembler::aluRI(Op op, Reg dst, i32 imm)
{
    if (fitsSigned(imm, 8)) {
        emit8(0x83);
        emitRmReg(aluRow(op), dst);
        emit8(static_cast<u8>(imm));
    } else {
        emit8(0x81);
        emitRmReg(aluRow(op), dst);
        emit32(static_cast<u32>(imm));
    }
}

void
Assembler::aluMI(Op op, const MemRef &m, i32 imm)
{
    if (fitsSigned(imm, 8)) {
        emit8(0x83);
        emitRmMem(aluRow(op), m);
        emit8(static_cast<u8>(imm));
    } else {
        emit8(0x81);
        emitRmMem(aluRow(op), m);
        emit32(static_cast<u32>(imm));
    }
}

void
Assembler::aluAccI(Op op, i32 imm)
{
    emit8(static_cast<u8>((aluRow(op) << 3) | 0x05));
    emit32(static_cast<u32>(imm));
}

// --- Data movement ---------------------------------------------------------

void
Assembler::movRR(Reg dst, Reg src)
{
    emit8(0x89);
    emitRmReg(src, dst);
}

void
Assembler::movRI(Reg dst, u32 imm)
{
    emit8(static_cast<u8>(0xb8 + dst));
    emit32(imm);
}

void
Assembler::movRILabel(Reg dst, Label l)
{
    emit8(static_cast<u8>(0xb8 + dst));
    emitAbs(l);
}

void
Assembler::movRM(Reg dst, const MemRef &m)
{
    emit8(0x8b);
    emitRmMem(dst, m);
}

void
Assembler::movMR(const MemRef &m, Reg src)
{
    emit8(0x89);
    emitRmMem(src, m);
}

void
Assembler::movMI(const MemRef &m, i32 imm)
{
    emit8(0xc7);
    emitRmMem(0, m);
    emit32(static_cast<u32>(imm));
}

void
Assembler::movzx(Reg dst, Reg src, unsigned src_size)
{
    emit8(0x0f);
    emit8(src_size == 1 ? 0xb6 : 0xb7);
    emitRmReg(dst, src);
}

void
Assembler::movzxM(Reg dst, const MemRef &m, unsigned src_size)
{
    emit8(0x0f);
    emit8(src_size == 1 ? 0xb6 : 0xb7);
    emitRmMem(dst, m);
}

void
Assembler::movsx(Reg dst, Reg src, unsigned src_size)
{
    emit8(0x0f);
    emit8(src_size == 1 ? 0xbe : 0xbf);
    emitRmReg(dst, src);
}

void
Assembler::lea(Reg dst, const MemRef &m)
{
    emit8(0x8d);
    emitRmMem(dst, m);
}

void
Assembler::xchg(Reg a, Reg b)
{
    emit8(0x87);
    emitRmReg(b, a);
}

// --- Stack -------------------------------------------------------------------

void
Assembler::push(Reg r)
{
    emit8(static_cast<u8>(0x50 + r));
}

void
Assembler::pushImm(i32 imm)
{
    if (fitsSigned(imm, 8)) {
        emit8(0x6a);
        emit8(static_cast<u8>(imm));
    } else {
        emit8(0x68);
        emit32(static_cast<u32>(imm));
    }
}

void
Assembler::pushMem(const MemRef &m)
{
    emit8(0xff);
    emitRmMem(6, m);
}

void
Assembler::pop(Reg r)
{
    emit8(static_cast<u8>(0x58 + r));
}

// --- One-operand ALU --------------------------------------------------------------

void
Assembler::inc(Reg r)
{
    emit8(static_cast<u8>(0x40 + r));
}

void
Assembler::dec(Reg r)
{
    emit8(static_cast<u8>(0x48 + r));
}

void
Assembler::incMem(const MemRef &m)
{
    emit8(0xff);
    emitRmMem(0, m);
}

void
Assembler::decMem(const MemRef &m)
{
    emit8(0xff);
    emitRmMem(1, m);
}

void
Assembler::notReg(Reg r)
{
    emit8(0xf7);
    emitRmReg(2, r);
}

void
Assembler::negReg(Reg r)
{
    emit8(0xf7);
    emitRmReg(3, r);
}

// --- Shifts ----------------------------------------------------------------------------

void
Assembler::shiftRI(Op op, Reg r, u8 count)
{
    if (count == 1) {
        emit8(0xd1);
        emitRmReg(shiftExt(op), r);
    } else {
        emit8(0xc1);
        emitRmReg(shiftExt(op), r);
        emit8(count);
    }
}

void
Assembler::shiftRCl(Op op, Reg r)
{
    emit8(0xd3);
    emitRmReg(shiftExt(op), r);
}

// --- Test -----------------------------------------------------------------------------------

void
Assembler::testRR(Reg a, Reg b)
{
    emit8(0x85);
    emitRmReg(b, a);
}

void
Assembler::testRI(Reg r, i32 imm)
{
    emit8(0xf7);
    emitRmReg(0, r);
    emit32(static_cast<u32>(imm));
}

// --- Multiply / divide ---------------------------------------------------------------------------

void
Assembler::imulRR(Reg dst, Reg src)
{
    emit8(0x0f);
    emit8(0xaf);
    emitRmReg(dst, src);
}

void
Assembler::imulRM(Reg dst, const MemRef &m)
{
    emit8(0x0f);
    emit8(0xaf);
    emitRmMem(dst, m);
}

void
Assembler::imulRRI(Reg dst, Reg src, i32 imm)
{
    if (fitsSigned(imm, 8)) {
        emit8(0x6b);
        emitRmReg(dst, src);
        emit8(static_cast<u8>(imm));
    } else {
        emit8(0x69);
        emitRmReg(dst, src);
        emit32(static_cast<u32>(imm));
    }
}

void
Assembler::mulA(Reg src)
{
    emit8(0xf7);
    emitRmReg(4, src);
}

void
Assembler::imulA(Reg src)
{
    emit8(0xf7);
    emitRmReg(5, src);
}

void
Assembler::divA(Reg src)
{
    emit8(0xf7);
    emitRmReg(6, src);
}

void
Assembler::idivA(Reg src)
{
    emit8(0xf7);
    emitRmReg(7, src);
}

void
Assembler::cdq()
{
    emit8(0x99);
}

// --- Control transfer ----------------------------------------------------------------------------------

void
Assembler::jcc(Cond cc, Label l)
{
    emit8(0x0f);
    emit8(static_cast<u8>(0x80 + static_cast<u8>(cc)));
    emitRel(l, false);
}

void
Assembler::jccShort(Cond cc, Label l)
{
    emit8(static_cast<u8>(0x70 + static_cast<u8>(cc)));
    emitRel(l, true);
}

void
Assembler::jmp(Label l)
{
    emit8(0xe9);
    emitRel(l, false);
}

void
Assembler::jmpShort(Label l)
{
    emit8(0xeb);
    emitRel(l, true);
}

void
Assembler::jmpInd(Reg r)
{
    emit8(0xff);
    emitRmReg(4, r);
}

void
Assembler::call(Label l)
{
    emit8(0xe8);
    emitRel(l, false);
}

void
Assembler::callInd(Reg r)
{
    emit8(0xff);
    emitRmReg(2, r);
}

void
Assembler::ret()
{
    emit8(0xc3);
}

void
Assembler::retImm(u16 pop_bytes)
{
    emit8(0xc2);
    emit16(pop_bytes);
}

// --- Misc --------------------------------------------------------------------------------------------------

void
Assembler::setcc(Cond cc, Reg r8)
{
    emit8(0x0f);
    emit8(static_cast<u8>(0x90 + static_cast<u8>(cc)));
    emitRmReg(0, r8);
}

void
Assembler::nop()
{
    emit8(0x90);
}

void
Assembler::hlt()
{
    emit8(0xf4);
}

void
Assembler::int3()
{
    emit8(0xcc);
}

void
Assembler::clc()
{
    emit8(0xf8);
}

void
Assembler::stc()
{
    emit8(0xf9);
}

std::vector<u8>
Assembler::finalize()
{
    assert(!finalized && "finalize called twice");
    for (const Fixup &f : fixups) {
        if (labels[f.label] < 0)
            cdvm_panic("unbound label %u", f.label);
        i64 rel = labels[f.label] - static_cast<i64>(f.end);
        switch (f.kind) {
          case Fixup::Kind::Rel8:
            if (!fitsSigned(rel, 8))
                cdvm_panic("rel8 fixup out of range (%lld)",
                           static_cast<long long>(rel));
            buf[f.at] = static_cast<u8>(rel);
            break;
          case Fixup::Kind::Rel32: {
            u32 v = static_cast<u32>(rel);
            buf[f.at] = static_cast<u8>(v);
            buf[f.at + 1] = static_cast<u8>(v >> 8);
            buf[f.at + 2] = static_cast<u8>(v >> 16);
            buf[f.at + 3] = static_cast<u8>(v >> 24);
            break;
          }
          case Fixup::Kind::Abs32: {
            u32 v = static_cast<u32>(base) +
                    static_cast<u32>(labels[f.label]);
            buf[f.at] = static_cast<u8>(v);
            buf[f.at + 1] = static_cast<u8>(v >> 8);
            buf[f.at + 2] = static_cast<u8>(v >> 16);
            buf[f.at + 3] = static_cast<u8>(v >> 24);
            break;
          }
        }
    }
    finalized = true;
    return buf;
}

} // namespace cdvm::x86
