/**
 * @file
 * Sparse guest physical memory for functional execution.
 *
 * Pages are allocated on first touch; unwritten bytes read as zero.
 * Both the architected program image and the VMM's concealed code-cache
 * region live in the same Memory object, matching the paper's framing
 * of the code cache as a hidden area of main memory.
 */

#ifndef CDVM_X86_MEMORY_HH
#define CDVM_X86_MEMORY_HH

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace cdvm::x86
{

/** Byte-addressed sparse memory with on-demand page allocation. */
class Memory
{
  public:
    static constexpr unsigned PAGE_SHIFT = 12;
    static constexpr Addr PAGE_SIZE = Addr{1} << PAGE_SHIFT;

    u8 read8(Addr a) const;
    u16 read16(Addr a) const;
    u32 read32(Addr a) const;

    void write8(Addr a, u8 v);
    void write16(Addr a, u16 v);
    void write32(Addr a, u32 v);

    /** Bulk copy into memory (e.g., loading a program image). */
    void writeBlock(Addr a, std::span<const u8> data);

    /** Bulk copy out of memory; returns bytes (zero-filled holes). */
    std::vector<u8> readBlock(Addr a, std::size_t len) const;

    /**
     * Read up to n bytes into out (used for instruction fetch windows).
     * Always fills n bytes; holes read as zero.
     */
    void fetchWindow(Addr a, u8 *out, std::size_t n) const;

    /**
     * Instruction fetch for the decode cache: like fetchWindow, but
     * additionally marks the touched pages as *code pages*. Writes to
     * code pages bump codeVersion so cached decodes are invalidated
     * (self-modifying code, program reloads); writes to pure data
     * pages do not. Returns false when the window read through an
     * unallocated page (such a fetch must not be cached: the hole
     * cannot be marked, so a write creating the page later would not
     * bump codeVersion).
     */
    bool fetchCode(Addr a, u8 *out, std::size_t n) const;

    /**
     * Generation of the guest's code bytes: bumped by every write
     * that touches a page previously fetched through fetchCode.
     */
    u64 codeVersion() const { return codeVer; }

    /** Number of pages currently allocated. */
    std::size_t numPages() const { return pages.size(); }

    /** Total bytes written through this interface (stat). */
    u64 bytesWritten() const { return written; }

  private:
    struct Page
    {
        explicit Page(std::size_t n) : bytes(n, 0) {}

        std::vector<u8> bytes;
        /** Served instruction fetches (set from const fetch paths). */
        mutable bool code = false;
    };
    Page *getPage(Addr a);
    const Page *findPage(Addr a) const;
    /** Bump codeVersion when writing into a code page. */
    void
    noteWrite(const Page &p)
    {
        if (p.code)
            ++codeVer;
    }

    std::unordered_map<Addr, Page> pages;
    u64 written = 0;
    u64 codeVer = 0;
};

} // namespace cdvm::x86

#endif // CDVM_X86_MEMORY_HH
