#include "x86/insn.hh"

#include <cassert>
#include <sstream>

namespace cdvm::x86
{

bool
Insn::isCti() const
{
    switch (op) {
      case Op::Jcc:
      case Op::Jmp:
      case Op::JmpInd:
      case Op::Call:
      case Op::CallInd:
      case Op::Ret:
      case Op::Hlt:
      case Op::Int3:
        return true;
      default:
        return false;
    }
}

bool
Insn::isDirectCti() const
{
    return op == Op::Jcc || op == Op::Jmp || op == Op::Call;
}

bool
Insn::isComplex() const
{
    switch (op) {
      case Op::Cpuid:
      case Op::Rdtsc:
      case Op::Int3:
      case Op::DivA:
      case Op::IdivA:
        return true;
      default:
        return false;
    }
}

bool
Insn::readsFlags() const
{
    switch (op) {
      case Op::Jcc:
      case Op::Setcc:
      case Op::Adc:
      case Op::Sbb:
      case Op::Cmc:
        return true;
      default:
        return false;
    }
}

bool
Insn::writesFlags() const
{
    switch (op) {
      case Op::Add:
      case Op::Or:
      case Op::Adc:
      case Op::Sbb:
      case Op::And:
      case Op::Sub:
      case Op::Xor:
      case Op::Cmp:
      case Op::Test:
      case Op::Inc:
      case Op::Dec:
      case Op::Neg:
      case Op::Shl:
      case Op::Shr:
      case Op::Sar:
      case Op::Rol:
      case Op::Ror:
      case Op::Imul:
      case Op::MulA:
      case Op::ImulA:
      case Op::Clc:
      case Op::Stc:
      case Op::Cmc:
        return true;
      default:
        return false;
    }
}

bool
Insn::touchesMemory() const
{
    if (op == Op::Lea)
        return false;
    if (op == Op::Push || op == Op::Pop || op == Op::Call ||
        op == Op::CallInd || op == Op::Ret) {
        return true;
    }
    return dst.isMem() || src.isMem() || src2.isMem();
}

std::string
opName(Op op)
{
    switch (op) {
      case Op::Invalid: return "invalid";
      case Op::Add: return "add";
      case Op::Or: return "or";
      case Op::Adc: return "adc";
      case Op::Sbb: return "sbb";
      case Op::And: return "and";
      case Op::Sub: return "sub";
      case Op::Xor: return "xor";
      case Op::Cmp: return "cmp";
      case Op::Test: return "test";
      case Op::Inc: return "inc";
      case Op::Dec: return "dec";
      case Op::Not: return "not";
      case Op::Neg: return "neg";
      case Op::Shl: return "shl";
      case Op::Shr: return "shr";
      case Op::Sar: return "sar";
      case Op::Rol: return "rol";
      case Op::Ror: return "ror";
      case Op::Imul: return "imul";
      case Op::MulA: return "mul";
      case Op::ImulA: return "imul";
      case Op::DivA: return "div";
      case Op::IdivA: return "idiv";
      case Op::Mov: return "mov";
      case Op::Movzx: return "movzx";
      case Op::Movsx: return "movsx";
      case Op::Lea: return "lea";
      case Op::Xchg: return "xchg";
      case Op::Push: return "push";
      case Op::Pop: return "pop";
      case Op::Cdq: return "cdq";
      case Op::Jcc: return "j";
      case Op::Jmp: return "jmp";
      case Op::JmpInd: return "jmp*";
      case Op::Call: return "call";
      case Op::CallInd: return "call*";
      case Op::Ret: return "ret";
      case Op::Setcc: return "set";
      case Op::Clc: return "clc";
      case Op::Stc: return "stc";
      case Op::Cmc: return "cmc";
      case Op::Nop: return "nop";
      case Op::Hlt: return "hlt";
      case Op::Int3: return "int3";
      case Op::Cpuid: return "cpuid";
      case Op::Rdtsc: return "rdtsc";
      default: return "?";
    }
}

namespace
{

std::string
operandStr(const Operand &o, unsigned size)
{
    std::ostringstream os;
    switch (o.kind) {
      case Operand::Kind::None:
        return "";
      case Operand::Kind::Reg:
        return "%" + regName(o.reg, size);
      case Operand::Kind::Imm:
        os << "$0x" << std::hex << (o.imm & 0xffffffff);
        return os.str();
      case Operand::Kind::Mem:
        if (o.mem.disp != 0)
            os << (o.mem.disp < 0 ? "-0x" : "0x") << std::hex
               << std::abs(static_cast<i64>(o.mem.disp));
        os << "(";
        if (o.mem.hasBase())
            os << "%" << regName(o.mem.base, 4);
        if (o.mem.hasIndex())
            os << ",%" << regName(o.mem.index, 4) << ","
               << static_cast<int>(o.mem.scale);
        os << ")";
        return os.str();
    }
    return "";
}

} // namespace

std::string
Insn::toString() const
{
    std::ostringstream os;
    std::string mn = opName(op);
    if (op == Op::Jcc || op == Op::Setcc)
        mn += condName(cond);
    os << mn;
    if (op == Op::Jcc || op == Op::Jmp || op == Op::Call) {
        os << " 0x" << std::hex << target;
        return os.str();
    }
    // AT&T order: src, dst.
    std::string s1 = operandStr(src, opSize);
    std::string s2 = operandStr(src2, opSize);
    std::string d = operandStr(dst, op == Op::Movzx || op == Op::Movsx
                                        ? 4 : opSize);
    std::string parts;
    if (!s2.empty())
        parts = s2 + ", ";
    if (!s1.empty())
        parts += s1;
    if (!d.empty())
        parts += (parts.empty() ? "" : ", ") + d;
    if (!parts.empty())
        os << " " << parts;
    return os.str();
}

} // namespace cdvm::x86
