/**
 * @file
 * Architected (x86-subset) register file definitions and EFLAGS bits.
 *
 * The subset models 32-bit protected-mode integer state: the eight GPRs
 * with their 8/16-bit subregisters, EIP, and the six status flags that
 * the integer instructions of the subset read and write.
 */

#ifndef CDVM_X86_REGS_HH
#define CDVM_X86_REGS_HH

#include <array>
#include <string>

#include "common/types.hh"

namespace cdvm::x86
{

/** GPR indices in hardware encoding order. */
enum Reg : u8
{
    EAX = 0,
    ECX = 1,
    EDX = 2,
    EBX = 3,
    ESP = 4,
    EBP = 5,
    ESI = 6,
    EDI = 7,
    NUM_REGS = 8,
    REG_NONE = 0xff,
};

/** EFLAGS bit positions used by the subset. */
enum FlagBit : u32
{
    FLAG_CF = 1u << 0,
    FLAG_PF = 1u << 2,
    FLAG_AF = 1u << 4,
    FLAG_ZF = 1u << 6,
    FLAG_SF = 1u << 7,
    FLAG_OF = 1u << 11,
    FLAG_ALL = FLAG_CF | FLAG_PF | FLAG_AF | FLAG_ZF | FLAG_SF | FLAG_OF,
};

/** Condition codes in x86 encoding order (Jcc 0x70+cc / 0F 80+cc). */
enum class Cond : u8
{
    O = 0x0,   //!< overflow
    NO = 0x1,  //!< not overflow
    B = 0x2,   //!< below (CF)
    AE = 0x3,  //!< above or equal (!CF)
    E = 0x4,   //!< equal (ZF)
    NE = 0x5,  //!< not equal (!ZF)
    BE = 0x6,  //!< below or equal (CF|ZF)
    A = 0x7,   //!< above (!CF & !ZF)
    S = 0x8,   //!< sign (SF)
    NS = 0x9,  //!< not sign
    P = 0xa,   //!< parity (PF)
    NP = 0xb,  //!< not parity
    L = 0xc,   //!< less (SF != OF)
    GE = 0xd,  //!< greater or equal (SF == OF)
    LE = 0xe,  //!< less or equal (ZF | SF != OF)
    G = 0xf,   //!< greater (!ZF & SF == OF)
};

/** Evaluate a condition code against an EFLAGS value. */
bool condTrue(Cond cc, u32 eflags);

/** Register name for disassembly, by operand size in bytes (1, 2, 4). */
std::string regName(Reg r, unsigned size = 4);

/** Condition-code mnemonic suffix ("e", "ne", "l", ...). */
std::string condName(Cond cc);

} // namespace cdvm::x86

#endif // CDVM_X86_REGS_HH
