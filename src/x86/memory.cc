#include "x86/memory.hh"

#include <cstring>

namespace cdvm::x86
{

Memory::Page *
Memory::getPage(Addr a)
{
    Addr key = a >> PAGE_SHIFT;
    auto it = pages.find(key);
    if (it == pages.end())
        it = pages.emplace(key, Page(PAGE_SIZE)).first;
    return &it->second;
}

const Memory::Page *
Memory::findPage(Addr a) const
{
    auto it = pages.find(a >> PAGE_SHIFT);
    return it == pages.end() ? nullptr : &it->second;
}

u8
Memory::read8(Addr a) const
{
    const Page *p = findPage(a);
    return p ? p->bytes[a & (PAGE_SIZE - 1)] : 0;
}

u16
Memory::read16(Addr a) const
{
    return static_cast<u16>(read8(a) | (read8(a + 1) << 8));
}

u32
Memory::read32(Addr a) const
{
    // Fast path: fully inside one page.
    const Page *p = findPage(a);
    Addr off = a & (PAGE_SIZE - 1);
    if (p && off + 4 <= PAGE_SIZE) {
        u32 v;
        std::memcpy(&v, p->bytes.data() + off, 4);
        return v;
    }
    return static_cast<u32>(read16(a)) | (static_cast<u32>(read16(a + 2)) << 16);
}

void
Memory::write8(Addr a, u8 v)
{
    Page *p = getPage(a);
    noteWrite(*p);
    p->bytes[a & (PAGE_SIZE - 1)] = v;
    ++written;
}

void
Memory::write16(Addr a, u16 v)
{
    write8(a, static_cast<u8>(v));
    write8(a + 1, static_cast<u8>(v >> 8));
}

void
Memory::write32(Addr a, u32 v)
{
    Page *p = getPage(a);
    Addr off = a & (PAGE_SIZE - 1);
    if (off + 4 <= PAGE_SIZE) {
        noteWrite(*p);
        std::memcpy(p->bytes.data() + off, &v, 4);
        written += 4;
        return;
    }
    write16(a, static_cast<u16>(v));
    write16(a + 2, static_cast<u16>(v >> 16));
}

void
Memory::writeBlock(Addr a, std::span<const u8> data)
{
    for (std::size_t i = 0; i < data.size();) {
        Page *p = getPage(a + i);
        noteWrite(*p);
        Addr off = (a + i) & (PAGE_SIZE - 1);
        std::size_t chunk = std::min<std::size_t>(PAGE_SIZE - off,
                                                  data.size() - i);
        std::memcpy(p->bytes.data() + off, data.data() + i, chunk);
        written += chunk;
        i += chunk;
    }
}

std::vector<u8>
Memory::readBlock(Addr a, std::size_t len) const
{
    std::vector<u8> out(len, 0);
    fetchWindow(a, out.data(), len);
    return out;
}

void
Memory::fetchWindow(Addr a, u8 *out, std::size_t n) const
{
    for (std::size_t i = 0; i < n;) {
        const Page *p = findPage(a + i);
        Addr off = (a + i) & (PAGE_SIZE - 1);
        std::size_t chunk = std::min<std::size_t>(PAGE_SIZE - off, n - i);
        if (p)
            std::memcpy(out + i, p->bytes.data() + off, chunk);
        else
            std::memset(out + i, 0, chunk);
        i += chunk;
    }
}

bool
Memory::fetchCode(Addr a, u8 *out, std::size_t n) const
{
    bool all_present = true;
    for (std::size_t i = 0; i < n;) {
        const Page *p = findPage(a + i);
        Addr off = (a + i) & (PAGE_SIZE - 1);
        std::size_t chunk = std::min<std::size_t>(PAGE_SIZE - off, n - i);
        if (p) {
            p->code = true;
            std::memcpy(out + i, p->bytes.data() + off, chunk);
        } else {
            // A hole cannot be marked, so a later write creating the
            // page would not bump codeVersion: the caller must not
            // cache a decode that read through it.
            all_present = false;
            std::memset(out + i, 0, chunk);
        }
        i += chunk;
    }
    return all_present;
}

} // namespace cdvm::x86
