/**
 * @file
 * Instruction *form* keys: a packed shape descriptor for a decoded
 * instruction that captures everything which determines the micro-op
 * sequence the cracker would emit -- opcode, operand size, operand
 * kinds, high-byte register selection, addressing-mode shape -- while
 * excluding the concrete values (register numbers, immediates,
 * displacements, branch targets) that only parameterize it.
 *
 * Two instructions with the same form key crack to micro-op sequences
 * of identical shape; the template cold tier (dbt/templates) exploits
 * this to map forms straight to pre-baked translation templates that
 * are specialized by value substitution, playing in software the role
 * the paper's XLTx86 unit plays in hardware.
 */

#ifndef CDVM_X86_FORM_HH
#define CDVM_X86_FORM_HH

#include "x86/insn.hh"

namespace cdvm::x86
{

/** Packed form key; see formKey() for the layout. */
using FormKey = u32;

namespace detail
{

/**
 * 4-bit operand shape: bits 0:1 the operand kind, bits 2:3
 * kind-dependent attributes.
 *
 * Reg:  bit 2 set when reg >= 4 -- selects the AH/CH/DH/BH high-byte
 *       forms at size 1 (different micro-ops), and keeps probe
 *       register classes honest at larger sizes.
 * Mem:  bit 2 = has base register, bit 3 = has index register
 *       (the four addressing-mode shapes emit different address
 *       operands).
 */
inline u32
operandShape(const Operand &o)
{
    u32 s = static_cast<u32>(o.kind);
    switch (o.kind) {
      case Operand::Kind::Reg:
        if (o.reg >= 4)
            s |= 1u << 2;
        break;
      case Operand::Kind::Mem:
        if (o.mem.hasBase())
            s |= 1u << 2;
        if (o.mem.hasIndex())
            s |= 1u << 3;
        break;
      default:
        break;
    }
    return s;
}

} // namespace detail

/**
 * Compute the form key of a decoded instruction.
 *
 * Layout:
 *   [0:7]    opcode (x86::Op)
 *   [8:9]    operand size (log2: 1 -> 0, 2 -> 1, 4 -> 2)
 *   [10:13]  dst operand shape
 *   [14:17]  src operand shape
 *   [18:21]  src2 operand shape
 *   [22]     dst and src are the same register (shape-changing
 *            aliasing: e.g. `mov eax, eax` cracks to nothing)
 *   [23]     stack-pointer special form: `pop %esp` (the ESP-adjust
 *            micro-op is elided) or `call *%esp` (the pre-push value
 *            must be captured in an extra micro-op)
 */
inline FormKey
formKey(const Insn &in)
{
    u32 k = static_cast<u32>(in.op);
    k |= (in.opSize == 1 ? 0u : in.opSize == 2 ? 1u : 2u) << 8;
    k |= detail::operandShape(in.dst) << 10;
    k |= detail::operandShape(in.src) << 14;
    k |= detail::operandShape(in.src2) << 18;
    if (in.dst.isReg() && in.src.isReg() && in.dst.reg == in.src.reg)
        k |= 1u << 22;
    if (in.op == Op::Pop && in.dst.isReg() && in.dst.reg == ESP)
        k |= 1u << 23;
    if (in.op == Op::CallInd && in.src.isReg() && in.src.reg == ESP)
        k |= 1u << 23;
    return k;
}

} // namespace cdvm::x86

#endif // CDVM_X86_FORM_HH
