/**
 * @file
 * Decoded-instruction model for the x86 subset.
 *
 * A decoded instruction carries a semantic opcode, up to three operands,
 * an operand size, the raw encoded length, and classification bits that
 * the translators (BBT/SBT) and the timing models consume.
 */

#ifndef CDVM_X86_INSN_HH
#define CDVM_X86_INSN_HH

#include <string>

#include "common/types.hh"
#include "x86/regs.hh"

namespace cdvm::x86
{

/** Semantic opcode, independent of encoding form. */
enum class Op : u8
{
    Invalid = 0,
    // ALU, two-operand, write flags.
    Add, Or, Adc, Sbb, And, Sub, Xor, Cmp, Test,
    // One-operand ALU.
    Inc, Dec, Not, Neg,
    // Shifts / rotates (count in operand 1, imm or CL).
    Shl, Shr, Sar, Rol, Ror,
    // Multiply / divide.
    Imul,       //!< two/three-operand forms (r, r/m [, imm])
    MulA,       //!< one-operand widening MUL (EDX:EAX = EAX * r/m)
    ImulA,      //!< one-operand widening IMUL
    DivA,       //!< unsigned divide of EDX:EAX
    IdivA,      //!< signed divide of EDX:EAX
    // Data movement.
    Mov, Movzx, Movsx, Lea, Xchg, Push, Pop,
    Cdq,        //!< sign-extend EAX into EDX
    // Control transfer.
    Jcc,        //!< conditional relative branch
    Jmp,        //!< unconditional relative jump
    JmpInd,     //!< indirect jump through r/m
    Call,       //!< relative call
    CallInd,    //!< indirect call through r/m
    Ret,        //!< near return (optional stack adjust)
    // Flag manipulation and misc.
    Setcc, Clc, Stc, Cmc, Nop,
    Hlt,        //!< used by the harness as the program-exit marker
    Int3,       //!< breakpoint trap
    Cpuid,      //!< modelled as a "complex" serializing instruction
    Rdtsc,      //!< modelled as a "complex" instruction
    NUM_OPS,
};

/** Memory operand: [base + index*scale + disp]. */
struct MemRef
{
    Reg base = REG_NONE;
    Reg index = REG_NONE;
    u8 scale = 1;        //!< 1, 2, 4, or 8
    i32 disp = 0;

    bool hasBase() const { return base != REG_NONE; }
    bool hasIndex() const { return index != REG_NONE; }
};

/** One instruction operand. */
struct Operand
{
    enum class Kind : u8 { None, Reg, Mem, Imm };

    Kind kind = Kind::None;
    Reg reg = REG_NONE;
    MemRef mem{};
    i64 imm = 0;

    static Operand none() { return Operand{}; }
    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand
    makeMem(MemRef m)
    {
        Operand o;
        o.kind = Kind::Mem;
        o.mem = m;
        return o;
    }
    static Operand
    makeImm(i64 v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    bool isMem() const { return kind == Kind::Mem; }
    bool isImm() const { return kind == Kind::Imm; }
    bool isNone() const { return kind == Kind::None; }
};

/** A fully decoded instruction. */
struct Insn
{
    Op op = Op::Invalid;
    Cond cond = Cond::O;     //!< for Jcc / Setcc
    Operand dst;             //!< operand 0 (destination for most ops)
    Operand src;             //!< operand 1
    Operand src2;            //!< operand 2 (three-operand IMUL)
    u8 opSize = 4;           //!< operand size in bytes: 1, 2 or 4
    u8 length = 0;           //!< encoded length in bytes
    Addr pc = 0;             //!< address of the first byte
    Addr target = 0;         //!< resolved target for relative CTIs

    bool valid() const { return op != Op::Invalid; }

    /** Address of the sequential successor. */
    Addr nextPc() const { return pc + length; }

    /** True for any control-transfer instruction. */
    bool isCti() const;
    /** True for conditional relative branches. */
    bool isCondBranch() const { return op == Op::Jcc; }
    /** True for direct CTIs with a statically known target. */
    bool isDirectCti() const;
    bool isCall() const { return op == Op::Call || op == Op::CallInd; }
    bool isRet() const { return op == Op::Ret; }
    /** True if the instruction terminates emulation (HLT). */
    bool isExit() const { return op == Op::Hlt; }
    /** True if this form needs the slow "complex" decode path. */
    bool isComplex() const;
    /** True if execution reads EFLAGS (Jcc, Setcc, ADC, SBB, CMC). */
    bool readsFlags() const;
    /** True if execution writes any EFLAGS bits. */
    bool writesFlags() const;
    /** True if the instruction references memory (load and/or store). */
    bool touchesMemory() const;

    /** Disassemble to a human-readable AT&T-flavoured string. */
    std::string toString() const;
};

/** Mnemonic for a semantic opcode. */
std::string opName(Op op);

} // namespace cdvm::x86

#endif // CDVM_X86_INSN_HH
