#include "x86/decoder.hh"

#include <cassert>

#include "common/bitfield.hh"

namespace cdvm::x86
{

namespace
{

/** Cursor over the instruction byte window. */
class Cursor
{
  public:
    Cursor(std::span<const u8> w) : win(w) {}

    bool
    haveBytes(unsigned n) const
    {
        return pos + n <= win.size();
    }

    bool
    fetch8(u8 &out)
    {
        if (!haveBytes(1))
            return false;
        out = win[pos++];
        return true;
    }

    bool
    fetch16(u16 &out)
    {
        if (!haveBytes(2))
            return false;
        out = static_cast<u16>(win[pos] | (win[pos + 1] << 8));
        pos += 2;
        return true;
    }

    bool
    fetch32(u32 &out)
    {
        if (!haveBytes(4))
            return false;
        out = static_cast<u32>(win[pos]) |
              (static_cast<u32>(win[pos + 1]) << 8) |
              (static_cast<u32>(win[pos + 2]) << 16) |
              (static_cast<u32>(win[pos + 3]) << 24);
        pos += 4;
        return true;
    }

    unsigned consumed() const { return pos; }

  private:
    std::span<const u8> win;
    unsigned pos = 0;
};

struct ModRm
{
    Operand rm;    //!< register or memory operand
    u8 regField;   //!< the 3-bit reg field (register number or opcode ext)
};

/** Decode ModRM (+ optional SIB and displacement). */
bool
decodeModRm(Cursor &cur, ModRm &out, std::string &err)
{
    u8 modrm = 0;
    if (!cur.fetch8(modrm)) {
        err = "truncated modrm";
        return false;
    }
    const u8 mod = static_cast<u8>(bits(modrm, 7, 6));
    out.regField = static_cast<u8>(bits(modrm, 5, 3));
    const u8 rm = static_cast<u8>(bits(modrm, 2, 0));

    if (mod == 3) {
        out.rm = Operand::makeReg(static_cast<Reg>(rm));
        return true;
    }

    MemRef mem;
    if (rm == 4) {
        // SIB byte follows.
        u8 sib = 0;
        if (!cur.fetch8(sib)) {
            err = "truncated sib";
            return false;
        }
        const u8 scale = static_cast<u8>(bits(sib, 7, 6));
        const u8 index = static_cast<u8>(bits(sib, 5, 3));
        const u8 base = static_cast<u8>(bits(sib, 2, 0));
        mem.scale = static_cast<u8>(1u << scale);
        if (index != 4)
            mem.index = static_cast<Reg>(index);
        if (base == 5 && mod == 0) {
            // No base, disp32 follows (handled below via mod==0 special).
            u32 d = 0;
            if (!cur.fetch32(d)) {
                err = "truncated disp32 (sib)";
                return false;
            }
            mem.disp = static_cast<i32>(d);
            out.rm = Operand::makeMem(mem);
            return true;
        }
        mem.base = static_cast<Reg>(base);
    } else if (rm == 5 && mod == 0) {
        // disp32 absolute.
        u32 d = 0;
        if (!cur.fetch32(d)) {
            err = "truncated disp32";
            return false;
        }
        mem.disp = static_cast<i32>(d);
        out.rm = Operand::makeMem(mem);
        return true;
    } else {
        mem.base = static_cast<Reg>(rm);
    }

    if (mod == 1) {
        u8 d = 0;
        if (!cur.fetch8(d)) {
            err = "truncated disp8";
            return false;
        }
        mem.disp = static_cast<i32>(sext(d, 8));
    } else if (mod == 2) {
        u32 d = 0;
        if (!cur.fetch32(d)) {
            err = "truncated disp32";
            return false;
        }
        mem.disp = static_cast<i32>(d);
    }
    out.rm = Operand::makeMem(mem);
    return true;
}

/** ALU row opcode for the classic 0x00..0x3D pattern. */
Op
aluRowOp(u8 row)
{
    static const Op ops[] = {Op::Add, Op::Or, Op::Adc, Op::Sbb,
                             Op::And, Op::Sub, Op::Xor, Op::Cmp};
    assert(row < 8);
    return ops[row];
}

/** Group-1 (0x80/0x81/0x83) opcode extension. */
Op
group1Op(u8 ext)
{
    return aluRowOp(ext);
}

/** Group-2 shift/rotate opcode extension. */
bool
group2Op(u8 ext, Op &op)
{
    switch (ext) {
      case 0: op = Op::Rol; return true;
      case 1: op = Op::Ror; return true;
      case 4: op = Op::Shl; return true;
      case 5: op = Op::Shr; return true;
      case 7: op = Op::Sar; return true;
      default: return false;
    }
}

bool
fetchImm(Cursor &cur, unsigned size, bool sext8, i64 &out, std::string &err)
{
    if (size == 1) {
        u8 v = 0;
        if (!cur.fetch8(v)) {
            err = "truncated imm8";
            return false;
        }
        out = sext8 ? sext(v, 8) : static_cast<i64>(v);
        return true;
    }
    if (size == 2) {
        u16 v = 0;
        if (!cur.fetch16(v)) {
            err = "truncated imm16";
            return false;
        }
        out = static_cast<i64>(v);
        return true;
    }
    u32 v = 0;
    if (!cur.fetch32(v)) {
        err = "truncated imm32";
        return false;
    }
    out = static_cast<i64>(v);
    return true;
}

} // namespace

DecodeResult
decode(std::span<const u8> window, Addr pc)
{
    DecodeResult res;
    Insn &in = res.insn;
    in.pc = pc;
    Cursor cur(window);

    // --- Prefix scan -----------------------------------------------------
    bool opsize16 = false;
    unsigned prefix_count = 0;
    u8 b = 0;
    for (;;) {
        if (!cur.fetch8(b)) {
            res.error = "empty window";
            return res;
        }
        bool is_prefix = true;
        switch (b) {
          case 0x66: opsize16 = true; break;
          case 0xf0:            // LOCK
          case 0xf2:            // REPNE
          case 0xf3:            // REP
          case 0x26: case 0x2e: case 0x36: case 0x3e:
          case 0x64: case 0x65: // segment overrides (flat model: ignored)
            break;
          default:
            is_prefix = false;
            break;
        }
        if (!is_prefix)
            break;
        if (++prefix_count > 8) {
            res.error = "too many prefixes";
            return res;
        }
    }

    const unsigned osz = opsize16 ? 2 : 4;
    in.opSize = static_cast<u8>(osz);

    auto finish = [&]() -> DecodeResult & {
        in.length = static_cast<u8>(cur.consumed());
        if (in.length > MAX_INSN_LEN) {
            res.ok = false;
            res.error = "instruction too long";
            return res;
        }
        res.ok = true;
        return res;
    };

    std::string err;
    ModRm mrm;

    // --- Classic ALU rows: op r/m,r ; op r,r/m ; op acc,imm ---------------
    if (b <= 0x3d && (b & 0x07) <= 0x05 && ((b & 0x38) >> 3) <= 7 &&
        (b & 0xc0) == 0x00 && (b & 0x07) != 0x06 && (b & 0x07) != 0x07) {
        const Op op = aluRowOp(static_cast<u8>((b >> 3) & 7));
        const u8 form = b & 7;
        switch (form) {
          case 0: // r/m8, r8
          case 1: // r/m32, r32
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = op;
            in.opSize = form == 0 ? 1 : static_cast<u8>(osz);
            in.dst = mrm.rm;
            in.src = Operand::makeReg(static_cast<Reg>(mrm.regField));
            return finish();
          case 2: // r8, r/m8
          case 3: // r32, r/m32
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = op;
            in.opSize = form == 2 ? 1 : static_cast<u8>(osz);
            in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
            in.src = mrm.rm;
            return finish();
          case 4: // AL, imm8
          case 5: { // eAX, imm32
            i64 imm = 0;
            unsigned isz = form == 4 ? 1 : osz;
            if (!fetchImm(cur, isz, false, imm, err)) {
                res.error = err;
                return res;
            }
            in.op = op;
            in.opSize = form == 4 ? 1 : static_cast<u8>(osz);
            in.dst = Operand::makeReg(EAX);
            in.src = Operand::makeImm(imm);
            return finish();
          }
        }
    }

    switch (b) {
      // --- INC/DEC r32, PUSH/POP r32 ------------------------------------
      case 0x40: case 0x41: case 0x42: case 0x43:
      case 0x44: case 0x45: case 0x46: case 0x47:
        in.op = Op::Inc;
        in.dst = Operand::makeReg(static_cast<Reg>(b - 0x40));
        return finish();
      case 0x48: case 0x49: case 0x4a: case 0x4b:
      case 0x4c: case 0x4d: case 0x4e: case 0x4f:
        in.op = Op::Dec;
        in.dst = Operand::makeReg(static_cast<Reg>(b - 0x48));
        return finish();
      case 0x50: case 0x51: case 0x52: case 0x53:
      case 0x54: case 0x55: case 0x56: case 0x57:
        in.op = Op::Push;
        in.src = Operand::makeReg(static_cast<Reg>(b - 0x50));
        return finish();
      case 0x58: case 0x59: case 0x5a: case 0x5b:
      case 0x5c: case 0x5d: case 0x5e: case 0x5f:
        in.op = Op::Pop;
        in.dst = Operand::makeReg(static_cast<Reg>(b - 0x58));
        return finish();

      // --- PUSH imm -------------------------------------------------------
      case 0x68: {
        i64 imm = 0;
        if (!fetchImm(cur, osz, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Push;
        in.src = Operand::makeImm(imm);
        return finish();
      }
      case 0x6a: {
        i64 imm = 0;
        if (!fetchImm(cur, 1, true, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Push;
        in.src = Operand::makeImm(imm);
        return finish();
      }

      // --- IMUL r, r/m, imm ------------------------------------------------
      case 0x69:
      case 0x6b: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        i64 imm = 0;
        if (!fetchImm(cur, b == 0x69 ? osz : 1, b == 0x6b, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Imul;
        in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
        in.src = mrm.rm;
        in.src2 = Operand::makeImm(imm);
        return finish();
      }

      // --- Jcc rel8 ---------------------------------------------------------
      case 0x70: case 0x71: case 0x72: case 0x73:
      case 0x74: case 0x75: case 0x76: case 0x77:
      case 0x78: case 0x79: case 0x7a: case 0x7b:
      case 0x7c: case 0x7d: case 0x7e: case 0x7f: {
        i64 rel = 0;
        if (!fetchImm(cur, 1, true, rel, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Jcc;
        in.cond = static_cast<Cond>(b - 0x70);
        in.length = static_cast<u8>(cur.consumed());
        in.target = pc + in.length + rel;
        res.ok = true;
        return res;
      }

      // --- Group 1: ALU r/m, imm ---------------------------------------------
      case 0x80:
      case 0x81:
      case 0x83: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        i64 imm = 0;
        unsigned isz = (b == 0x81) ? osz : 1;
        if (!fetchImm(cur, isz, b == 0x83, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = group1Op(mrm.regField);
        in.opSize = (b == 0x80) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeImm(imm);
        return finish();
      }

      // --- TEST, XCHG, MOV families --------------------------------------------
      case 0x84:
      case 0x85:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Test;
        in.opSize = (b == 0x84) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeReg(static_cast<Reg>(mrm.regField));
        return finish();
      case 0x86:
      case 0x87:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Xchg;
        in.opSize = (b == 0x86) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeReg(static_cast<Reg>(mrm.regField));
        return finish();
      case 0x88:
      case 0x89:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Mov;
        in.opSize = (b == 0x88) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeReg(static_cast<Reg>(mrm.regField));
        return finish();
      case 0x8a:
      case 0x8b:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Mov;
        in.opSize = (b == 0x8a) ? 1 : static_cast<u8>(osz);
        in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
        in.src = mrm.rm;
        return finish();
      case 0x8d:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        if (!mrm.rm.isMem()) {
            res.error = "lea with register source";
            return res;
        }
        in.op = Op::Lea;
        in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
        in.src = mrm.rm;
        return finish();
      case 0x8f:
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        if (mrm.regField != 0) {
            res.error = "bad 0x8f extension";
            return res;
        }
        in.op = Op::Pop;
        in.dst = mrm.rm;
        return finish();

      case 0x90:
        in.op = Op::Nop;
        return finish();

      case 0x99:
        in.op = Op::Cdq;
        return finish();

      case 0xa8:
      case 0xa9: {
        i64 imm = 0;
        unsigned isz = (b == 0xa8) ? 1 : osz;
        if (!fetchImm(cur, isz, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Test;
        in.opSize = (b == 0xa8) ? 1 : static_cast<u8>(osz);
        in.dst = Operand::makeReg(EAX);
        in.src = Operand::makeImm(imm);
        return finish();
      }

      // --- MOV r, imm -----------------------------------------------------------
      case 0xb0: case 0xb1: case 0xb2: case 0xb3:
      case 0xb4: case 0xb5: case 0xb6: case 0xb7: {
        i64 imm = 0;
        if (!fetchImm(cur, 1, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Mov;
        in.opSize = 1;
        in.dst = Operand::makeReg(static_cast<Reg>(b - 0xb0));
        in.src = Operand::makeImm(imm);
        return finish();
      }
      case 0xb8: case 0xb9: case 0xba: case 0xbb:
      case 0xbc: case 0xbd: case 0xbe: case 0xbf: {
        i64 imm = 0;
        if (!fetchImm(cur, osz, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Mov;
        in.dst = Operand::makeReg(static_cast<Reg>(b - 0xb8));
        in.src = Operand::makeImm(imm);
        return finish();
      }

      // --- Shift groups -----------------------------------------------------------
      case 0xc0:
      case 0xc1: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        Op op;
        if (!group2Op(mrm.regField, op)) {
            res.error = "bad shift extension";
            return res;
        }
        i64 imm = 0;
        if (!fetchImm(cur, 1, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = op;
        in.opSize = (b == 0xc0) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeImm(imm & 0x1f);
        return finish();
      }
      case 0xd0:
      case 0xd1: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        Op op;
        if (!group2Op(mrm.regField, op)) {
            res.error = "bad shift extension";
            return res;
        }
        in.op = op;
        in.opSize = (b == 0xd0) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeImm(1);
        return finish();
      }
      case 0xd2:
      case 0xd3: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        Op op;
        if (!group2Op(mrm.regField, op)) {
            res.error = "bad shift extension";
            return res;
        }
        in.op = op;
        in.opSize = (b == 0xd2) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeReg(ECX); // count in CL
        return finish();
      }

      // --- RET --------------------------------------------------------------------
      case 0xc2: {
        i64 imm = 0;
        if (!fetchImm(cur, 2, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Ret;
        in.src = Operand::makeImm(imm);
        return finish();
      }
      case 0xc3:
        in.op = Op::Ret;
        return finish();

      // --- MOV r/m, imm --------------------------------------------------------------
      case 0xc6:
      case 0xc7: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        if (mrm.regField != 0) {
            res.error = "bad c6/c7 extension";
            return res;
        }
        i64 imm = 0;
        unsigned isz = (b == 0xc6) ? 1 : osz;
        if (!fetchImm(cur, isz, false, imm, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Mov;
        in.opSize = (b == 0xc6) ? 1 : static_cast<u8>(osz);
        in.dst = mrm.rm;
        in.src = Operand::makeImm(imm);
        return finish();
      }

      case 0xcc:
        in.op = Op::Int3;
        return finish();

      // --- CALL/JMP rel ------------------------------------------------------------------
      case 0xe8: {
        i64 rel = 0;
        if (!fetchImm(cur, 4, false, rel, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Call;
        in.length = static_cast<u8>(cur.consumed());
        in.target = pc + in.length + static_cast<i32>(rel);
        res.ok = true;
        return res;
      }
      case 0xe9: {
        i64 rel = 0;
        if (!fetchImm(cur, 4, false, rel, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Jmp;
        in.length = static_cast<u8>(cur.consumed());
        in.target = pc + in.length + static_cast<i32>(rel);
        res.ok = true;
        return res;
      }
      case 0xeb: {
        i64 rel = 0;
        if (!fetchImm(cur, 1, true, rel, err)) {
            res.error = err;
            return res;
        }
        in.op = Op::Jmp;
        in.length = static_cast<u8>(cur.consumed());
        in.target = pc + in.length + rel;
        res.ok = true;
        return res;
      }

      case 0xf4:
        in.op = Op::Hlt;
        return finish();
      case 0xf5:
        in.op = Op::Cmc;
        return finish();
      case 0xf8:
        in.op = Op::Clc;
        return finish();
      case 0xf9:
        in.op = Op::Stc;
        return finish();

      // --- Group 3: TEST/NOT/NEG/MUL/IMUL/DIV/IDIV -------------------------------------------
      case 0xf6:
      case 0xf7: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        const u8 sz = (b == 0xf6) ? 1 : static_cast<u8>(osz);
        switch (mrm.regField) {
          case 0:
          case 1: { // TEST r/m, imm
            i64 imm = 0;
            if (!fetchImm(cur, sz == 1 ? 1 : osz, false, imm, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Test;
            in.opSize = sz;
            in.dst = mrm.rm;
            in.src = Operand::makeImm(imm);
            return finish();
          }
          case 2:
            in.op = Op::Not;
            in.opSize = sz;
            in.dst = mrm.rm;
            return finish();
          case 3:
            in.op = Op::Neg;
            in.opSize = sz;
            in.dst = mrm.rm;
            return finish();
          case 4:
            in.op = Op::MulA;
            in.opSize = sz;
            in.src = mrm.rm;
            return finish();
          case 5:
            in.op = Op::ImulA;
            in.opSize = sz;
            in.src = mrm.rm;
            return finish();
          case 6:
            in.op = Op::DivA;
            in.opSize = sz;
            in.src = mrm.rm;
            return finish();
          case 7:
            in.op = Op::IdivA;
            in.opSize = sz;
            in.src = mrm.rm;
            return finish();
        }
        res.error = "bad group-3 extension";
        return res;
      }

      // --- Group 4/5 ----------------------------------------------------------------------------
      case 0xfe: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        if (mrm.regField > 1) {
            res.error = "bad group-4 extension";
            return res;
        }
        in.op = mrm.regField == 0 ? Op::Inc : Op::Dec;
        in.opSize = 1;
        in.dst = mrm.rm;
        return finish();
      }
      case 0xff: {
        if (!decodeModRm(cur, mrm, err)) {
            res.error = err;
            return res;
        }
        switch (mrm.regField) {
          case 0:
            in.op = Op::Inc;
            in.dst = mrm.rm;
            return finish();
          case 1:
            in.op = Op::Dec;
            in.dst = mrm.rm;
            return finish();
          case 2:
            in.op = Op::CallInd;
            in.src = mrm.rm;
            return finish();
          case 4:
            in.op = Op::JmpInd;
            in.src = mrm.rm;
            return finish();
          case 6:
            in.op = Op::Push;
            in.src = mrm.rm;
            return finish();
        }
        res.error = "bad group-5 extension";
        return res;
      }

      // --- Two-byte opcodes ------------------------------------------------------------------------
      case 0x0f: {
        u8 b2 = 0;
        if (!cur.fetch8(b2)) {
            res.error = "truncated 0f opcode";
            return res;
        }
        if (b2 >= 0x80 && b2 <= 0x8f) { // Jcc rel32
            i64 rel = 0;
            if (!fetchImm(cur, 4, false, rel, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Jcc;
            in.cond = static_cast<Cond>(b2 - 0x80);
            in.length = static_cast<u8>(cur.consumed());
            in.target = pc + in.length + static_cast<i32>(rel);
            res.ok = true;
            return res;
        }
        if (b2 >= 0x90 && b2 <= 0x9f) { // SETcc r/m8
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Setcc;
            in.cond = static_cast<Cond>(b2 - 0x90);
            in.opSize = 1;
            in.dst = mrm.rm;
            return finish();
        }
        switch (b2) {
          case 0x31:
            in.op = Op::Rdtsc;
            return finish();
          case 0xa2:
            in.op = Op::Cpuid;
            return finish();
          case 0xaf:
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Imul;
            in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
            in.src = mrm.rm;
            return finish();
          case 0xb6:
          case 0xb7:
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Movzx;
            in.opSize = (b2 == 0xb6) ? 1 : 2; // source size
            in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
            in.src = mrm.rm;
            return finish();
          case 0xbe:
          case 0xbf:
            if (!decodeModRm(cur, mrm, err)) {
                res.error = err;
                return res;
            }
            in.op = Op::Movsx;
            in.opSize = (b2 == 0xbe) ? 1 : 2; // source size
            in.dst = Operand::makeReg(static_cast<Reg>(mrm.regField));
            in.src = mrm.rm;
            return finish();
        }
        res.error = "unsupported 0f opcode";
        return res;
      }

      default:
        break;
    }

    res.error = "unsupported opcode";
    return res;
}

unsigned
insnLength(std::span<const u8> window, Addr pc)
{
    DecodeResult r = decode(window, pc);
    return r.ok ? r.insn.length : 0;
}

} // namespace cdvm::x86
