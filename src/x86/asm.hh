/**
 * @file
 * A small x86-subset assembler.
 *
 * The assembler emits genuine machine code for the subset the decoder
 * understands. It exists for three reasons: (1) the synthetic workload
 * generator builds real executable program images with it, (2) the test
 * suite uses encode->decode round trips to validate the decoder, and
 * (3) examples use it to demonstrate translation on readable kernels.
 */

#ifndef CDVM_X86_ASM_HH
#define CDVM_X86_ASM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "x86/insn.hh"

namespace cdvm::x86
{

/** Forward-reference-capable machine code emitter. */
class Assembler
{
  public:
    using Label = u32;

    explicit Assembler(Addr origin) : base(origin) {}

    /** Create an unbound label. */
    Label newLabel();

    /** Bind a label to the current position. */
    void bind(Label l);

    /** Current emission address. */
    Addr here() const { return base + buf.size(); }

    /** Address a bound label resolved to (valid after finalize). */
    Addr labelAddr(Label l) const;

    // ALU: add/or/adc/sbb/and/sub/xor/cmp --------------------------------
    void aluRR(Op op, Reg dst, Reg src);          //!< op %src, %dst
    void aluRM(Op op, Reg dst, const MemRef &m);  //!< op mem, %dst (load)
    void aluMR(Op op, const MemRef &m, Reg src);  //!< op %src, mem (rmw)
    void aluRI(Op op, Reg dst, i32 imm);
    void aluMI(Op op, const MemRef &m, i32 imm);
    /** Accumulator-immediate short form (0x05 etc.). */
    void aluAccI(Op op, i32 imm);

    // Data movement -------------------------------------------------------
    void movRR(Reg dst, Reg src);
    void movRI(Reg dst, u32 imm);
    /** mov reg, <address of label> (absolute fixup). */
    void movRILabel(Reg dst, Label l);
    void movRM(Reg dst, const MemRef &m);
    void movMR(const MemRef &m, Reg src);
    void movMI(const MemRef &m, i32 imm);
    void movzx(Reg dst, Reg src, unsigned src_size);
    void movzxM(Reg dst, const MemRef &m, unsigned src_size);
    void movsx(Reg dst, Reg src, unsigned src_size);
    void lea(Reg dst, const MemRef &m);
    void xchg(Reg a, Reg b);

    // Stack ----------------------------------------------------------------
    void push(Reg r);
    void pushImm(i32 imm);
    void pushMem(const MemRef &m);
    void pop(Reg r);

    // One-operand ALU -------------------------------------------------------
    void inc(Reg r);
    void dec(Reg r);
    void incMem(const MemRef &m);
    void decMem(const MemRef &m);
    void notReg(Reg r);
    void negReg(Reg r);

    // Shifts -----------------------------------------------------------------
    void shiftRI(Op op, Reg r, u8 count);
    void shiftRCl(Op op, Reg r);

    // Test / compare helpers ---------------------------------------------------
    void testRR(Reg a, Reg b);
    void testRI(Reg r, i32 imm);

    // Multiply / divide ----------------------------------------------------------
    void imulRR(Reg dst, Reg src);
    void imulRM(Reg dst, const MemRef &m);
    void imulRRI(Reg dst, Reg src, i32 imm);
    void mulA(Reg src);
    void imulA(Reg src);
    void divA(Reg src);
    void idivA(Reg src);
    void cdq();

    // Control transfer ---------------------------------------------------------------
    void jcc(Cond cc, Label l);      //!< near (rel32) form
    void jccShort(Cond cc, Label l); //!< rel8 form; target must be near
    void jmp(Label l);               //!< rel32
    void jmpShort(Label l);          //!< rel8
    void jmpInd(Reg r);
    void call(Label l);
    void callInd(Reg r);
    void ret();
    void retImm(u16 pop_bytes);

    // Misc ---------------------------------------------------------------------------
    void setcc(Cond cc, Reg r8);
    void nop();
    void hlt();
    void int3();
    void clc();
    void stc();
    void db(u8 byte) { buf.push_back(byte); }

    /**
     * Resolve all fixups and return the image. Panics on unbound labels
     * or out-of-range rel8 fixups.
     */
    std::vector<u8> finalize();

    Addr origin() const { return base; }
    std::size_t size() const { return buf.size(); }

  private:
    struct Fixup
    {
        enum class Kind : u8 { Rel8, Rel32, Abs32 };
        std::size_t at;   //!< offset of the displacement field
        Label label;
        Kind kind;
        std::size_t end;  //!< offset just past the instruction
    };

    void emit8(u8 v) { buf.push_back(v); }
    void emit16(u16 v);
    void emit32(u32 v);
    void emitModRm(u8 mod, u8 reg, u8 rm);
    void emitRmReg(u8 reg_field, Reg rm);
    void emitRmMem(u8 reg_field, const MemRef &m);
    void emitRel(Label l, bool rel8);
    void emitAbs(Label l);

    Addr base;
    std::vector<u8> buf;
    std::vector<i64> labels; //!< bound offset or -1
    std::vector<Fixup> fixups;
    bool finalized = false;
};

} // namespace cdvm::x86

#endif // CDVM_X86_ASM_HH
