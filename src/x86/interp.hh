/**
 * @file
 * Reference functional interpreter for the x86 subset.
 *
 * This is the golden model: the basic block translator, the superblock
 * optimizer and the XLTx86 hardware-assist model are all validated by
 * differential execution against it. It is also the component the
 * "interpretation followed by SBT" staged-emulation strategy of paper
 * Figure 2 models.
 *
 * Flags that real x86 leaves architecturally undefined (e.g. ZF/SF/PF
 * after IMUL) are given fixed, documented values so that differential
 * tests are exact; the micro-op executor implements the same choices.
 */

#ifndef CDVM_X86_INTERP_HH
#define CDVM_X86_INTERP_HH

#include <array>

#include "common/types.hh"
#include "x86/insn.hh"
#include "x86/memory.hh"

namespace cdvm::x86
{

/** Why execution stopped (or that it has not). */
enum class Exit : u8
{
    None = 0,    //!< still running
    Halted,      //!< HLT reached: normal program completion
    Trap,        //!< INT3 or divide fault
    DecodeFault, //!< bytes did not decode
};

/** Display name of an exit reason. */
inline const char *
exitName(Exit e)
{
    switch (e) {
      case Exit::None:
        return "none";
      case Exit::Halted:
        return "halted";
      case Exit::Trap:
        return "trap";
      case Exit::DecodeFault:
        return "decode-fault";
    }
    return "?";
}

/** Architected x86 machine state. */
struct CpuState
{
    std::array<u32, NUM_REGS> regs{};
    u32 eip = 0;
    u32 eflags = 0x202; //!< IF and the always-one bit, as on real hardware
    InstCount icount = 0;

    u32 reg(Reg r) const { return regs[r]; }
    void setReg(Reg r, u32 v) { regs[r] = v; }

    /** Read a register at operand size (handles AH/CH/DH/BH). */
    u32 readReg(Reg r, unsigned size) const;
    /** Write a register at operand size, preserving upper bits. */
    void writeReg(Reg r, unsigned size, u32 v);

    bool flag(u32 bit) const { return eflags & bit; }
    void
    setFlag(u32 bit, bool v)
    {
        eflags = v ? (eflags | bit) : (eflags & ~bit);
    }

    /** True if the two states have identical architected contents. */
    bool sameArchState(const CpuState &o) const;
};

/** Result of executing one instruction. */
struct StepResult
{
    Exit exit = Exit::None;
    bool taken = false;   //!< branch outcome, if a conditional branch
    Insn insn;            //!< the instruction that executed
};

class DecodeCache;

/**
 * Interpreter over a CpuState and a Memory. Also exposes the
 * instruction-execution core so the micro-op layer can reuse the exact
 * flag semantics.
 *
 * An optional DecodeCache memoizes the fetch+decode half of step();
 * execution semantics are identical with or without it (the cache is
 * invalidated by guest code writes, see decode_cache.hh).
 */
class Interpreter
{
  public:
    Interpreter(CpuState &state, Memory &memory,
                DecodeCache *decode_cache = nullptr)
        : cpu(state), mem(memory), dcache(decode_cache)
    {
    }

    /** Fetch, decode and execute one instruction at cpu.eip. */
    StepResult step();

    /**
     * Execute an already decoded instruction (the common core shared
     * with translated-code validation). Updates eip.
     */
    StepResult execute(const Insn &in);

    /** Run until an exit condition or max_insns retired instructions. */
    Exit run(InstCount max_insns);

  private:
    u32 readOperand(const Operand &o, unsigned size);
    void writeOperand(const Operand &o, unsigned size, u32 v);
    Addr effAddr(const MemRef &m) const;

    CpuState &cpu;
    Memory &mem;
    DecodeCache *dcache; //!< optional decoded-instruction cache
};

/**
 * Flag-computation helpers shared verbatim by the interpreter and the
 * micro-op executor so that translated code matches the golden model
 * bit-for-bit.
 */
namespace flags
{

/** Flags after an addition (with optional carry-in), at size bytes. */
u32 add(u32 a, u32 b, u32 carry_in, unsigned size, u32 &result);
/** Flags after a subtraction a - b - borrow_in, at size bytes. */
u32 sub(u32 a, u32 b, u32 borrow_in, unsigned size, u32 &result);
/** Flags after a bitwise logical op whose result is given. */
u32 logic(u32 result, unsigned size);
/** ZF/SF/PF for a result (used by INC/DEC merge and shifts). */
u32 zsp(u32 result, unsigned size);
/** Truncate v to size bytes. */
u32 trunc(u32 v, unsigned size);
/** Sign bit of v at size bytes. */
bool signBit(u32 v, unsigned size);

/** Result of a shift/rotate: value plus the complete new EFLAGS. */
struct ShiftResult
{
    u32 result;
    u32 eflags; //!< full replacement arithmetic-flag set
};

/**
 * Execute a shift or rotate (Op::Shl/Shr/Sar/Rol/Ror) with exact x86
 * flag semantics. count is already masked to 5 bits; count == 0
 * returns the inputs unchanged.
 */
ShiftResult shift(Op op, u32 a, u32 count, unsigned size, u32 old_eflags);

/** Widening multiply outcome. */
struct WideMul
{
    u32 lo;
    u32 hi;
    u32 flags; //!< arithmetic flags (CF/OF on overflow + deterministic ZSP)
};

/** EDX:EAX-style widening multiply at size bytes. */
WideMul mulWide(bool is_signed, u32 a, u32 b, unsigned size);

/** Widening divide outcome. */
struct WideDiv
{
    u32 quot;
    u32 rem;
    bool fault; //!< divide by zero or quotient overflow
};

/** EDX:EAX-style divide at size bytes; hi:lo / b. */
WideDiv divWide(bool is_signed, u32 hi, u32 lo, u32 b, unsigned size);

/** Truncating signed multiply (IMUL r, r/m) with flag computation. */
u32 imulTrunc(u32 a, u32 b, unsigned size, u32 &flags_out);

} // namespace flags

} // namespace cdvm::x86

#endif // CDVM_X86_INTERP_HH
