/**
 * @file
 * Byte-level decoder for the x86 subset.
 *
 * This is the "first-level" (vertical) decode step of the paper's
 * dual-mode decoder: it turns raw variable-length CISC bytes into the
 * semantic Insn form. The same decoder is used by the reference
 * interpreter, the basic block translator (BBT), and the XLTx86
 * backend-assist model -- so all of them agree on instruction
 * boundaries and semantics by construction.
 */

#ifndef CDVM_X86_DECODER_HH
#define CDVM_X86_DECODER_HH

#include <span>
#include <string>

#include "common/types.hh"
#include "x86/insn.hh"

namespace cdvm::x86
{

/** Maximum encoded length the subset can produce / the decoder accepts. */
constexpr unsigned MAX_INSN_LEN = 15;

/** Outcome of a decode attempt. */
struct DecodeResult
{
    Insn insn;           //!< valid iff ok
    bool ok = false;
    std::string error;   //!< diagnostic when !ok

    explicit operator bool() const { return ok; }
};

/**
 * Decode one instruction from the byte window starting at pc.
 *
 * @param window Bytes beginning at pc; must contain the whole
 *               instruction (provide at least MAX_INSN_LEN bytes when
 *               available, the decoder never reads past the actual
 *               instruction length).
 * @param pc     Guest address of window[0], used to resolve relative
 *               branch targets and recorded in the result.
 */
DecodeResult decode(std::span<const u8> window, Addr pc);

/**
 * Instruction-length-only scan (used by fetch and by the XLTx86 unit's
 * length field). Returns 0 if the bytes do not decode.
 */
unsigned insnLength(std::span<const u8> window, Addr pc);

} // namespace cdvm::x86

#endif // CDVM_X86_DECODER_HH
