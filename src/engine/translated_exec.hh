/**
 * @file
 * Translated-code execution with precise-state recovery.
 *
 * Runs a translation's micro-ops through the micro-op executor and
 * maps the outcome back to architected x86 state: retired-instruction
 * accounting (including superblock side exits), fault recovery by
 * checkpointed interpreter re-execution (paper Fig. 1's "may use
 * interpreter" arc), and branch-direction profiling on the region's
 * terminating branch.
 */

#ifndef CDVM_ENGINE_TRANSLATED_EXEC_HH
#define CDVM_ENGINE_TRANSLATED_EXEC_HH

#include "dbt/translation.hh"
#include "engine/engine_config.hh"
#include "engine/profile.hh"
#include "uops/exec.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::engine
{

/** Executes translations and recovers precise state on faults. */
class TranslatedExecutor
{
  public:
    TranslatedExecutor(x86::Memory &memory, EngineStats &stats,
                       BranchProfile &branch_prof)
        : mem(memory), st(stats), prof(branch_prof)
    {
    }

    /**
     * Execute translation t from the current CPU state; increments
     * retired by the x86 instructions the region completed.
     */
    x86::Exit run(x86::CpuState &cpu, dbt::Translation *t,
                  InstCount &retired);

  private:
    x86::Memory &mem;
    EngineStats &st;
    BranchProfile &prof;
    uops::UState ustate;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_TRANSLATED_EXEC_HH
