/**
 * @file
 * Bounded runtime profiling containers for the engine.
 *
 * The VMM profiles branch directions and cold-block execution counts
 * over whatever the guest runs; on long runs the naive maps grow
 * without limit. These containers cap their entry count and evict a
 * (pseudo-random) resident entry on overflow, counting evictions so
 * the stats export makes capacity pressure visible.
 */

#ifndef CDVM_ENGINE_PROFILE_HH
#define CDVM_ENGINE_PROFILE_HH

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/types.hh"

namespace cdvm::engine
{

/**
 * Per-branch direction profile: branch PC -> (taken, not-taken),
 * capped at maxEntries.
 */
class BranchProfile
{
  public:
    explicit BranchProfile(std::size_t max_entries = 65536,
                           std::size_t reserve_hint = 0)
        : cap(max_entries ? max_entries : 1)
    {
        // Pre-size the buckets so the BBT-dominated startup transient
        // does not pay rehash storms while branches flood in.
        prof.reserve(std::min(reserve_hint, cap));
    }

    void
    record(Addr branch_pc, bool taken)
    {
        auto it = prof.find(branch_pc);
        if (it == prof.end()) {
            if (prof.size() >= cap) {
                // Evict whichever entry hashing puts first; the
                // profile is advisory (superblock branch bias), so an
                // arbitrary victim only costs re-warming one counter.
                prof.erase(prof.begin());
                ++nEvictions;
            }
            it = prof.emplace(branch_pc, std::pair<u64, u64>{0, 0})
                     .first;
        }
        if (taken)
            ++it->second.first;
        else
            ++it->second.second;
    }

    /**
     * Pre-load a branch's counters (warm start). Adds to any existing
     * entry; respects the cap like record().
     */
    void
    seed(Addr branch_pc, u64 taken, u64 not_taken)
    {
        auto it = prof.find(branch_pc);
        if (it == prof.end()) {
            if (prof.size() >= cap) {
                prof.erase(prof.begin());
                ++nEvictions;
            }
            it = prof.emplace(branch_pc, std::pair<u64, u64>{0, 0})
                     .first;
        }
        it->second.first += taken;
        it->second.second += not_taken;
    }

    /** Visit every resident entry as (pc, taken, notTaken). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &[pc, counts] : prof)
            fn(pc, counts.first, counts.second);
    }

    /** Observed taken-bias of the branch, if profiled. */
    std::optional<double>
    bias(Addr branch_pc) const
    {
        auto it = prof.find(branch_pc);
        if (it == prof.end())
            return std::nullopt;
        u64 taken = it->second.first;
        u64 total = taken + it->second.second;
        if (total == 0)
            return std::nullopt;
        return static_cast<double>(taken) / static_cast<double>(total);
    }

    std::size_t size() const { return prof.size(); }
    std::size_t capacity() const { return cap; }
    u64 evictions() const { return nEvictions; }

  private:
    std::size_t cap;
    std::unordered_map<Addr, std::pair<u64, u64>> prof;
    u64 nEvictions = 0;
};

/** Capped counter map (cold-block execution counts). */
class BoundedCounterMap
{
  public:
    explicit BoundedCounterMap(std::size_t max_entries = 65536)
        : cap(max_entries ? max_entries : 1)
    {
    }

    /** Increment key's counter; returns the new value. */
    u64
    bump(Addr key)
    {
        auto it = counts.find(key);
        if (it == counts.end()) {
            if (counts.size() >= cap) {
                counts.erase(counts.begin());
                ++nEvictions;
            }
            it = counts.emplace(key, 0).first;
        }
        return ++it->second;
    }

    std::size_t size() const { return counts.size(); }
    u64 evictions() const { return nEvictions; }

  private:
    std::size_t cap;
    std::unordered_map<Addr, u64> counts;
    u64 nEvictions = 0;
};

/** Capped address set (seeds where superblock formation failed). */
class BoundedAddrSet
{
  public:
    explicit BoundedAddrSet(std::size_t max_entries = 16384)
        : cap(max_entries ? max_entries : 1)
    {
    }

    void
    insert(Addr a)
    {
        if (set.count(a))
            return;
        if (set.size() >= cap) {
            set.erase(set.begin());
            ++nEvictions;
        }
        set.insert(a);
    }

    bool contains(Addr a) const { return set.count(a) != 0; }
    std::size_t size() const { return set.size(); }
    u64 evictions() const { return nEvictions; }

  private:
    std::size_t cap;
    std::unordered_set<Addr> set;
    u64 nEvictions = 0;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_PROFILE_HH
