#include "engine/cache_mgr.hh"

#include "common/logging.hh"
#include "common/statreg.hh"
#include "uops/encoding.hh"

namespace cdvm::engine
{

using dbt::TransKind;
using dbt::Translation;

CodeCacheManager::CodeCacheManager(x86::Memory &memory,
                                   const EngineConfig &cfg,
                                   EngineStats &stats,
                                   EventStream &event_stream)
    : mem(memory),
      st(stats),
      events(event_stream),
      map(dbt::TranslationMap::Config{
          cfg.fastDispatch, cfg.lookupReserve,
          cfg.fastDispatch ? cfg.lookasideEntries : 0}),
      bbtCc("bbt-cache", cfg.bbtCacheBase, cfg.bbtCacheBytes),
      sbtCc("sbt-cache", cfg.sbtCacheBase, cfg.sbtCacheBytes)
{
}

CodeCacheManager::InstallResult
CodeCacheManager::install(std::unique_ptr<Translation> t)
{
    InstallResult res;
    const TransKind kind = t->kind;
    dbt::CodeCache &cc = kind == TransKind::BasicBlock ? bbtCc : sbtCc;
    Addr at = cc.allocate(t->codeBytes);
    if (at == 0) {
        // Arena full: flush it and drop the associated translations
        // (chains are conservatively reset); then the allocation must
        // succeed unless the translation is bigger than the arena.
        cc.flush();
        map.eraseKind(kind);
        res.flushed = true;
        if (kind == TransKind::BasicBlock)
            ++st.bbtCacheFlushes;
        else
            ++st.sbtCacheFlushes;
        StageEvent ev;
        ev.stage = TracePhase::CacheFlush;
        ev.instant = true;
        ev.arg = kind == TransKind::BasicBlock;
        events.emit(ev);
        at = cc.allocate(t->codeBytes);
        if (at == 0)
            cdvm_fatal("translation (%u bytes) exceeds code cache '%s'",
                       t->codeBytes, cc.name().c_str());
    }
    t->codeAddr = at;
    // The encoded body really lives in concealed guest memory -- but a
    // zero-copy warm install executes straight from the mapped image,
    // so only the arena reservation (flush dynamics, timing realism)
    // is kept and the encode+copy is skipped entirely.
    if (!t->mappedBody()) {
        std::vector<u8> bytes = uops::encode(t->uops);
        mem.writeBlock(at, bytes);
    }
    res.trans = map.insert(std::move(t));
    return res;
}

void
CodeCacheManager::exportStats(StatRegistry &reg) const
{
    bbtCc.exportStats(reg, "dbt.codecache.bbt");
    sbtCc.exportStats(reg, "dbt.codecache.sbt");
    map.exportStats(reg, "dbt.lookup");
}

} // namespace cdvm::engine
