/**
 * @file
 * Engine configuration and statistics.
 *
 * An EngineConfig names one point in the staged-emulation design
 * space: which ColdExecutor runs untranslated code, which
 * HotspotDetector decides when a region is hot, and the SBT/cache
 * parameters shared by all of them. The named factories compose the
 * paper's configurations:
 *
 *   vm.soft  software BBT cold path  + software exec counters
 *   vm.fe    hardware x86-mode cold  + branch behavior buffer
 *   vm.be    XLTx86-assisted BBT     + software exec counters
 *   vm.dual  XLTx86-assisted BBT     + branch behavior buffer
 *   vm.interp  interpretation        + software entry counters
 */

#ifndef CDVM_ENGINE_ENGINE_CONFIG_HH
#define CDVM_ENGINE_ENGINE_CONFIG_HH

#include <optional>
#include <string>
#include <vector>

#include "dbt/superblock.hh"
#include "engine/params.hh"
#include "hwassist/bbb.hh"
#include "uops/fusion.hh"

namespace cdvm::engine
{

/** The cold-code execution strategies (paper Sections 3-4). */
enum class ColdKind : u8
{
    Interpret,       //!< one instruction at a time (Fig. 2)
    HardwareX86Mode, //!< dual-mode decoders execute x86 directly (VM.fe)
    SoftwareBbt,     //!< software basic-block translation (VM.soft)
    XltAssistedBbt,  //!< HAloop + XLTx86 functional unit (VM.be)
    TemplateBbt,     //!< IR-less template BBT, a software XLTx86
};

/** Hotspot detection strategies. */
enum class DetectorKind : u8
{
    SoftwareCounters, //!< per-translation / per-entry exec counters
    Bbb,              //!< hardware branch behavior buffer (Section 4.1)
};

/** One composed staged-emulation configuration. */
struct EngineConfig
{
    /** Display name ("vm.soft", ... or "custom"). */
    std::string name = "custom";

    ColdKind cold = ColdKind::SoftwareBbt;
    DetectorKind detector = DetectorKind::SoftwareCounters;

    /** Hot threshold for BBT- or BBB-profiled code (Eq. 2: 8000). */
    u64 hotThreshold = params::HOT_THRESHOLD;
    /** Hot threshold under interpretation (Section 3.1: 25). */
    u64 interpHotThreshold = params::INTERP_HOT_THRESHOLD;
    bool enableSbt = true;
    bool enableChaining = true;

    Addr bbtCacheBase = 0xe0000000;
    u64 bbtCacheBytes = u64{4} << 20;
    Addr sbtCacheBase = 0xe8000000;
    u64 sbtCacheBytes = u64{4} << 20;

    unsigned maxBlockInsns = 64;
    /**
     * Template cold tier only: percentage of the learned rule table
     * enabled, in deterministic enumeration order. 100 = full table;
     * lower values force more per-block software fallbacks (the
     * `bench_host_mips --ablate-tmpl` coverage knob).
     */
    unsigned tmplCoveragePct = 100;
    dbt::SuperblockPolicy sbPolicy{};
    uops::FusionConfig fusion{};
    hwassist::BbbParams bbbParams{};

    // Bounds for the runtime profiling maps (0 = minimum of 1).
    std::size_t branchProfCap = 65536;
    std::size_t coldCounterCap = 65536;
    std::size_t sbtFailedCap = 16384;

    // --- host-side dispatch fast path -------------------------------
    /**
     * Use the flat open-addressing translation table, the dispatch
     * lookaside cache, and the interpreter decode cache. False
     * restores the pre-existing map-based dispatch (the
     * --legacy-lookup A/B baseline of bench_host_mips); retire
     * streams and StageEvent sequences are bit-identical either way.
     */
    bool fastDispatch = true;
    /** Flat-table capacity preset (entries; rounded to a power of
     *  two). Sized for the BBT-dominated startup transient so the
     *  table does not rehash while cold code floods in. */
    std::size_t lookupReserve = 4096;
    /** Dispatch lookaside cache entries (pow2; 0 disables). */
    std::size_t lookasideEntries = 256;
    /** Interpreter decoded-instruction cache lines (pow2; 0
     *  disables). Only execute-style cold paths consult it. */
    std::size_t decodeCacheEntries = 8192;
    /** Bucket preset for the branch-direction profile (rehash
     *  avoidance during the startup transient; capped at
     *  branchProfCap). */
    std::size_t branchProfReserve = 4096;

    // --- asynchronous SBT pipeline ----------------------------------
    /**
     * Background translator contexts for the SBT (0 = synchronous:
     * hot seeds are optimized on the emulation thread, as the paper
     * models). With N >= 1, hot seeds are formed on the dispatch
     * thread, optimized on a worker, and installed at a later
     * dispatch point while cold/BBT execution continues.
     */
    unsigned asyncTranslators = 0;
    /** Bound on queued optimization requests (back-pressure). */
    std::size_t asyncQueueCap = 64;
    /**
     * Deterministic async mode: barrier-on-install. Every request is
     * awaited and installed immediately, so the StageEvent stream is
     * identical retire-for-retire to the synchronous pipeline while
     * still crossing the worker threads (differential/TSan testing).
     */
    bool asyncDeterministic = false;

    // --- persistent warm start --------------------------------------
    /**
     * Load a translation repository (dbt/persist format) before the
     * first dispatched instruction: validated BBT+SBT translations are
     * installed into the fresh code caches and the branch profile and
     * hot counts are seeded. Stale or invalid entries silently fall
     * back to the cold path. Empty: cold start.
     */
    std::string warmStartLoadPath;
    /** Save the translation repository after run() (empty: never). */
    std::string warmStartSavePath;
    /**
     * Size budget for a saved warm-start image in bytes (0 =
     * unlimited). When the captured image would exceed it, the
     * coldest tail of the hotness ranking is evicted at save time.
     */
    u64 warmImageBudgetBytes = 0;

    // --- continuous profiling / observability -----------------------
    /**
     * Sampling period of the guest-hotness profiler, in executed x86
     * instructions (0 disables sampling). Every period-th instruction
     * the dispatch loop attributes one sample to {guest page,
     * translation, stage}; the aggregate heatmap feeds the warm-start
     * repository's hotness ranking and the --profile-out export.
     */
    u64 profileSamplePeriod = 4096;
    /**
     * Capacity of the always-on flight recorder, in stage events
     * (rounded up to a power of two; 0 disables). The ring holds the
     * most recent events for on-demand, flush-storm, and abnormal-exit
     * dumps.
     */
    std::size_t flightRecorderEvents = 4096;
    /**
     * Where flush-storm and abnormal-exit flight dumps are written
     * (empty: storm dumps are skipped and crash dumps go to stderr).
     */
    std::string flightDumpPath;
    /**
     * CacheFlush events within flushStormWindowInsns executed
     * instructions that constitute a storm and trigger an automatic
     * flight dump (0 disables storm detection).
     */
    unsigned flushStormThreshold = 8;
    /** Storm detection window, in executed x86 instructions. */
    u64 flushStormWindowInsns = 1u << 20;
    /**
     * Take a SnapshotSeries row of the vmm.* counters every N executed
     * instructions (0 disables). Rows accumulate in Vmm::snapshots().
     */
    u64 snapshotEveryInsns = 0;

    // --- named configurations ---------------------------------------
    static EngineConfig vmSoft();
    static EngineConfig vmFe();
    static EngineConfig vmBe();
    static EngineConfig vmDual();
    static EngineConfig vmInterp();
    /** VM.soft with the IR-less template cold tier. */
    static EngineConfig vmSoftTmpl();
    /** Template cold tier paired with the BBB detector (the closest
     *  software stand-in for the paper's VM.be pairing). */
    static EngineConfig vmBeTmpl();
    /** vm.soft with N background SBT contexts (vm.soft.async). */
    static EngineConfig vmSoftAsync(unsigned contexts = 2);
    /** vm.be with N background SBT contexts (vm.be.async). */
    static EngineConfig vmBeAsync(unsigned contexts = 2);

    /** Look up a named configuration ("vm.soft", "vm.be", ...). */
    static std::optional<EngineConfig> byName(const std::string &name);

    /** All recognised configuration names. */
    static std::vector<std::string> names();
};

/** Aggregate engine statistics. */
struct EngineStats
{
    // x86 instructions retired, by emulation mode.
    u64 insnsInterp = 0;
    u64 insnsX86Mode = 0;
    u64 insnsBbtCode = 0;
    u64 insnsSbtCode = 0;
    // Micro-ops retired in translated code.
    u64 uopsBbtCode = 0;
    u64 uopsSbtCode = 0;
    // Translation activity.
    u64 bbtTranslations = 0;
    u64 bbtInsnsTranslated = 0;
    u64 sbtTranslations = 0;
    u64 sbtInsnsTranslated = 0;
    u64 sbtFormationFailures = 0;
    // Hardware-assisted BBT activity (VM.be / VM.dual).
    u64 xltInsnsTranslated = 0;  //!< instructions through the HAloop
    u64 xltComplexFallbacks = 0; //!< JCPX exits cracked in software
    u64 xltCtiFallbacks = 0;     //!< JCTI exits cracked in software
    // Dispatch machinery.
    u64 dispatches = 0;
    u64 chainFollows = 0;
    u64 chainsInstalled = 0;
    // Events.
    u64 hotspotDetections = 0;
    u64 preciseStateRecoveries = 0;
    u64 bbtCacheFlushes = 0;
    u64 sbtCacheFlushes = 0;
    // Asynchronous SBT pipeline activity.
    u64 asyncSbtRequests = 0;     //!< traces handed to the workers
    u64 asyncSbtInstalls = 0;     //!< background results installed
    u64 asyncSbtStaleDropped = 0; //!< results dropped as stale
    u64 asyncSbtQueueRejects = 0; //!< requests dropped (queue full)
    // Persistent warm start.
    u64 warmLoaded = 0;         //!< records read from the repository
    u64 warmInstalled = 0;      //!< translations installed pre-dispatch
    u64 warmInsnsInstalled = 0; //!< x86 instructions those cover
    u64 warmInvalidated = 0;   //!< records rejected (stale/malformed)
    u64 warmProfileSeeded = 0; //!< branch-profile entries seeded
    u64 warmBodyCopies = 0;    //!< per-record decode+copy installs (0
                               //!< on the zero-copy image path)
    u64 warmRelocations = 0;   //!< chain links re-bound at warm start
    u64 warmMappedBytes = 0;   //!< shared-image bytes installed from

    u64
    totalRetired() const
    {
        return insnsInterp + insnsX86Mode + insnsBbtCode + insnsSbtCode;
    }
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_ENGINE_CONFIG_HH
