/**
 * @file
 * Continuous profiling consumers of the stage-event stream.
 *
 * Two always-cheap StageSinks give the VM a live view of itself:
 *
 *  - SamplingProfiler draws one sample every N executed (work-unit)
 *    instructions and attributes it to {guest page, translation,
 *    hot-stage}. The aggregate heatmap answers "where does guest time
 *    go" without per-instruction bookkeeping: cost is O(1) per stage
 *    event (a countdown decrement) plus O(1) map updates only on the
 *    sampled events. The ranking it produces orders the warm-start
 *    repository hottest-first and is exportable as JSON.
 *
 *  - FlightSink feeds every event into the in-VM FlightRecorder ring
 *    and watches for code-cache flush storms: when more than a
 *    configured number of CacheFlush events land inside a sliding
 *    window of executed instructions, the ring is dumped to a file
 *    automatically -- the post-mortem for "the caches thrashed and
 *    startup fell off a cliff".
 *
 * Both sinks run on the dispatch thread only (background SBT workers
 * never emit stage events), so neither needs synchronization.
 */

#ifndef CDVM_ENGINE_PROFILER_HH
#define CDVM_ENGINE_PROFILER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "common/flight_recorder.hh"
#include "common/statreg.hh"
#include "common/types.hh"
#include "engine/events.hh"
#include "x86/memory.hh"

namespace cdvm::engine
{

/**
 * Attribution buckets of the sampling profiler: which rung of the
 * staged-emulation ladder a sample's work belongs to.
 */
enum class HotStage : u8
{
    Cold, //!< interpretation, x86-mode, untranslated execution
    Bbt,  //!< basic-block translation + BBT code execution
    Sbt,  //!< superblock optimization + SBT code execution
    Warm, //!< warm-start repository install work
};

inline constexpr unsigned NUM_HOT_STAGES = 4;

const char *hotStageName(HotStage s);

/** Map the tracer phase vocabulary onto the attribution buckets. */
HotStage hotStageOf(TracePhase p);

/**
 * The guest-hotness sampling profiler.
 *
 * Samples are taken on the work-unit clock every period_insns covered
 * instructions, deterministically: the k-th sample always lands on
 * work unit k*period, independent of how the stream chops the work
 * into events. Identical event streams therefore produce identical
 * heatmaps (the async-deterministic pipeline replays exactly the
 * synchronous stream, so its profile matches too).
 */
class SamplingProfiler : public StageSink
{
  public:
    /** Per-page sample counts, split by attribution stage. */
    struct PageHot
    {
        u64 total = 0;
        u64 byStage[NUM_HOT_STAGES] = {};
    };

    /** One row of the hotness ranking. */
    struct PageRank
    {
        Addr page = 0; //!< page number (guest address >> PAGE_SHIFT)
        PageHot hot;
    };

    /** Per-translation sample counts. */
    struct TransHot
    {
        u64 samples = 0;
        Addr entryPc = 0;
        HotStage stage = HotStage::Bbt; //!< stage of the last sample
    };

    struct TransRank
    {
        u64 transId = 0; //!< packed dbt::TransId (TransId::raw())
        TransHot hot;
    };

    /** period_insns == 0 constructs a disabled profiler. */
    explicit SamplingProfiler(u64 period_insns) : period_(period_insns)
    {
        untilNext = period_ ? period_ : ~u64{0};
    }

    void
    onEvent(const StageEvent &e) override
    {
        if (e.instant || e.insns == 0)
            return;
        vclock += e.insns;
        u64 n = e.insns;
        // Hot path: the countdown usually just shrinks.
        if (n < untilNext) {
            untilNext -= n;
            return;
        }
        do {
            n -= untilNext;
            untilNext = period_;
            sample(e);
        } while (n >= untilNext);
        untilNext -= n;
    }

    bool enabled() const { return period_ != 0; }
    u64 period() const { return period_; }

    /** Work-unit clock after all events so far. */
    u64 clock() const { return vclock; }

    /** Samples drawn so far. */
    u64 samples() const { return total; }

    u64
    stageSamples(HotStage s) const
    {
        return byStage[static_cast<unsigned>(s)];
    }

    /** Samples attributed to the given guest page number. */
    u64 pageSamples(Addr page) const;

    /** Samples attributed to the given packed TransId (0 if none). */
    u64 transSamples(u64 raw_id) const;

    std::size_t distinctPages() const { return pages.size(); }
    std::size_t distinctTranslations() const { return trans.size(); }

    /**
     * Pages ordered hottest-first (ties broken by ascending page
     * number, so the ranking is deterministic). top_n == 0: all.
     */
    std::vector<PageRank> ranking(std::size_t top_n = 0) const;

    /** Translations ordered hottest-first (ties by ascending id). */
    std::vector<TransRank> transRanking(std::size_t top_n = 0) const;

    /** Publish totals under prefix (engine.profiler.*). */
    void exportStats(StatRegistry &reg,
                     const std::string &prefix = "engine.profiler") const;

    /** Full heatmap as JSON (pages + translations, hottest first). */
    std::string dumpJson() const;

    /** Write dumpJson() to path. @return false on I/O failure. */
    bool writeJson(const std::string &path) const;

    /** Human-readable top-n page table for interactive output. */
    std::string dumpTopN(std::size_t n) const;

    /** Forget all samples; the period and clock phase keep running. */
    void clear();

  private:
    void sample(const StageEvent &e);

    u64 period_;
    u64 untilNext;
    u64 vclock = 0;
    u64 total = 0;
    u64 byStage[NUM_HOT_STAGES] = {};
    std::unordered_map<Addr, PageHot> pages;
    std::unordered_map<u64, TransHot> trans;
};

/**
 * Flight-recorder consumer: every stage event lands in the ring, and
 * CacheFlush storms trigger an automatic dump.
 */
class FlightSink : public StageSink
{
  public:
    /**
     * @param rec the ring to feed (its lifetime must cover the sink's)
     * @param storm_threshold flushes within the window that constitute
     *        a storm (0 disables storm detection)
     * @param storm_window_insns sliding window, in work units
     * @param dump_path where storm dumps go (empty: count only)
     */
    FlightSink(FlightRecorder &rec, unsigned storm_threshold,
               u64 storm_window_insns, std::string dump_path)
        : rec_(rec), threshold(storm_threshold),
          window(storm_window_insns), dumpPath(std::move(dump_path))
    {
    }

    void
    onEvent(const StageEvent &e) override
    {
        rec_.record(e.stage, vclock, static_cast<u32>(e.insns),
                    e.x86Addr ? e.x86Addr : e.arg);
        if (!e.instant)
            vclock += e.insns;
        if (e.stage == TracePhase::CacheFlush && threshold)
            noteFlush();
    }

    /** Work-unit clock after all events so far. */
    u64 clock() const { return vclock; }

    /** Storm episodes detected. */
    u64 storms() const { return stormCount; }

    /** Storm episodes that produced a dump file. */
    u64 stormDumps() const { return stormDumpCount; }

  private:
    void noteFlush();

    FlightRecorder &rec_;
    unsigned threshold;
    u64 window;
    std::string dumpPath;
    std::vector<u64> flushClocks; //!< recent flushes inside the window
    u64 vclock = 0;
    u64 stormCount = 0;
    u64 stormDumpCount = 0;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_PROFILER_HH
