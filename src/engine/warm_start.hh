/**
 * @file
 * Warm start: populate a fresh engine from a persistent translation
 * repository (dbt/persist) before the first dispatched instruction.
 *
 * Loading validates every record against current guest memory (page
 * hashes), materializes the survivors, installs them through the
 * normal CodeCacheManager path (so codeAddr is recomputed and the
 * encoded bodies really land in the concealed code caches), re-binds
 * the saved chains to the freshly assigned TransIds, and seeds the
 * branch-direction profile plus per-translation hot counts. Anything
 * stale or malformed is skipped: the VM silently falls back to the
 * cold path for exactly those regions.
 */

#ifndef CDVM_ENGINE_WARM_START_HH
#define CDVM_ENGINE_WARM_START_HH

#include <memory>
#include <string>

#include "dbt/image.hh"
#include "dbt/persist.hh"
#include "engine/cache_mgr.hh"
#include "engine/events.hh"
#include "engine/profile.hh"

namespace cdvm::engine
{

/** Outcome of a warm-start load. */
struct WarmStartReport
{
    /** The repository file parsed and verified (individual entries
     *  may still have been invalidated). */
    bool ok = false;
    dbt::LoadError error = dbt::LoadError::None;
    u64 loaded = 0;         //!< records read from the repository
    u64 installed = 0;      //!< translations installed pre-dispatch
    u64 installedInsns = 0; //!< x86 instructions those cover (the
                            //!< warm-fill work a cycle model prices)
    u64 invalidated = 0;    //!< records rejected (stale guest code or
                            //!< malformed body)
    u64 profileSeeded = 0;  //!< branch-profile entries seeded
    /** Per-record body copies performed (decode + re-encode). The v1
     *  repository path pays one per install; the zero-copy image path
     *  is 0 by construction. */
    u64 bodyCopies = 0;
    /** Chain links re-bound (the image path does these in a single
     *  flat relocation pass). */
    u64 relocations = 0;
    /** Bytes of the shared image this context installed from (0 for
     *  the v1 path). */
    u64 mappedBytes = 0;
    /** The image warmStartLoad parsed, when it loaded one: the caller
     *  must keep it alive as long as the engine runs, because mapped
     *  translations are views into it. */
    std::shared_ptr<const dbt::TransImage> image;
};

/**
 * Load path into the engine: install validated translations into ccm
 * and seed prof. Never throws; a missing/corrupt file or stale
 * entries just leave the engine (partially) cold. With an event
 * stream, each install is emitted as a WarmInstall StageEvent (insns
 * = translated x86 instructions), so attached profiling sinks see the
 * warm fill as work.
 */
WarmStartReport warmStartLoad(const std::string &path,
                              const x86::Memory &mem,
                              CodeCacheManager &ccm,
                              BranchProfile &prof,
                              EventStream *events = nullptr);

/**
 * Install an already-parsed repository (the shared read-only handle a
 * multi-tenant server loads once and hands to every context booting
 * the same image). Validation against *this* context's guest memory,
 * materialization, code-cache installation, chain re-binding, and
 * profile seeding all happen here, per context; only the parse and
 * checksum were amortized. report.ok is always true (the bytes were
 * verified when the handle was created).
 */
WarmStartReport warmStartInstall(const dbt::Repository &repo,
                                 const x86::Memory &mem,
                                 CodeCacheManager &ccm,
                                 BranchProfile &prof,
                                 EventStream *events = nullptr);

/**
 * Zero-copy install from a verified translation image: every accepted
 * record's Translation borrows its body and pc table straight from
 * the image (no decode, no copy — bodyCopies stays 0) and the saved
 * chains are re-bound in one pass over the flat relocation table.
 * Validation is per record against *this* context's guest memory: the
 * record's content address (pageKey) is recomputed from the current
 * page hashes and any mismatch silently falls back cold. The image
 * must outlive the engine (hold it on the services handle).
 */
WarmStartReport warmStartInstall(const dbt::TransImage &img,
                                 const x86::Memory &mem,
                                 CodeCacheManager &ccm,
                                 BranchProfile &prof,
                                 EventStream *events = nullptr);

/**
 * Capture the live translations and branch profile into an in-memory
 * repository. With a hotness function, entries are ordered
 * hottest-first (see dbt::capture) so a warm start installs the most
 * valuable translations before the arenas can fill. This is the
 * fleet-server priming path: one capture feeds many contexts through
 * warmStartInstall without ever touching the filesystem.
 */
dbt::Repository warmStartCapture(const dbt::TranslationMap &map,
                                 const x86::Memory &mem,
                                 const BranchProfile &prof,
                                 const dbt::HotnessFn &hotness = {});

/**
 * Capture (as above) and write the repository to a file.
 * @return success.
 */
bool warmStartSave(const std::string &path,
                   const dbt::TranslationMap &map,
                   const x86::Memory &mem, const BranchProfile &prof,
                   const dbt::HotnessFn &hotness = {});

} // namespace cdvm::engine

#endif // CDVM_ENGINE_WARM_START_HH
