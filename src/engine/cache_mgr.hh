/**
 * @file
 * The engine's code-cache manager: translation registration,
 * flush-on-full eviction, and lookup.
 *
 * Owns the translation lookup table and both bump-allocated arenas
 * (BBT blocks and SBT superblocks, paper Fig. 1). Installing a
 * translation allocates arena space, writes the encoded micro-op body
 * into concealed guest memory, and publishes the translation in the
 * map; when an arena fills, the classic flush-everything policy
 * applies: the arena is reset, every translation of that kind is
 * dropped from the map, and all chains into the doomed set are
 * conservatively cleared.
 */

#ifndef CDVM_ENGINE_CACHE_MGR_HH
#define CDVM_ENGINE_CACHE_MGR_HH

#include <memory>

#include "dbt/codecache.hh"
#include "dbt/lookup.hh"
#include "engine/engine_config.hh"
#include "engine/events.hh"
#include "x86/memory.hh"

namespace cdvm::engine
{

/** Owns the lookup table and both code-cache arenas. */
class CodeCacheManager
{
  public:
    CodeCacheManager(x86::Memory &memory, const EngineConfig &cfg,
                     EngineStats &stats, EventStream &events);

    /** Outcome of installing a translation. */
    struct InstallResult
    {
        dbt::Translation *trans = nullptr;
        /** True when installation forced an arena flush (chains and
         *  cached dispatch state are stale). */
        bool flushed = false;
    };

    /**
     * Register a new translation: allocate arena space (flushing on
     * full), encode the body into guest memory, publish in the map.
     * Emits a CacheFlush stage event when eviction happened.
     */
    InstallResult install(std::unique_ptr<dbt::Translation> t);

    dbt::Translation *lookup(Addr pc) { return map.lookup(pc); }

    dbt::Translation *
    lookup(Addr pc, dbt::TransKind kind)
    {
        return map.lookup(pc, kind);
    }

    /** Resolve a translation handle (nullptr once flushed). */
    dbt::Translation *resolve(dbt::TransId id) { return map.resolve(id); }

    const dbt::Translation *
    resolve(dbt::TransId id) const
    {
        return map.resolve(id);
    }

    dbt::TranslationMap &translations() { return map; }
    const dbt::TranslationMap &translations() const { return map; }
    const dbt::CodeCache &bbtCache() const { return bbtCc; }
    const dbt::CodeCache &sbtCache() const { return sbtCc; }

    /** Publish dbt.codecache.* and dbt.lookup.* counters. */
    void exportStats(StatRegistry &reg) const;

  private:
    x86::Memory &mem;
    EngineStats &st;
    EventStream &events;

    dbt::TranslationMap map;
    dbt::CodeCache bbtCc;
    dbt::CodeCache sbtCc;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_CACHE_MGR_HH
