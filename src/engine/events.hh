/**
 * @file
 * The engine's stage-event stream: one staging state machine, many
 * consumers.
 *
 * Both producers of staged-emulation activity -- the functional VMM
 * dispatch core and the block-granular StagedPipeline driving the
 * timing simulator -- describe what they do as a stream of StageEvents
 * using the TracePhase vocabulary (the same phases PR 1's tracer
 * records). Consumers attach as StageSinks:
 *
 *  - TraceSink turns events into tracer spans on a work-unit clock
 *    (the functional VMM's track-0 timeline);
 *  - StageCounter tallies retired instructions and translation
 *    activity per stage (functional retire counts);
 *  - the timing simulator's cycle model (in startup_sim.cc) prices
 *    each event in cycles against the machine config and the cache
 *    hierarchy.
 *
 * An event is self-describing: which stage, how many x86 instructions
 * it covers, and where the covered code lives both in the architected
 * image (x86Addr/x86Bytes) and -- for translated stages -- in the
 * code cache (codeAddr/codeBytes).
 */

#ifndef CDVM_ENGINE_EVENTS_HH
#define CDVM_ENGINE_EVENTS_HH

#include <array>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"

namespace cdvm::engine
{

/** One unit of staged-emulation activity. */
struct StageEvent
{
    /** What happened (reuses the tracer's phase vocabulary). */
    TracePhase stage = TracePhase::Interp;
    /** x86 instructions covered (work units; 0 for instants). */
    u64 insns = 0;
    /** Architected address of the covered code. */
    Addr x86Addr = 0;
    u32 x86Bytes = 0;
    /** Code-cache image of the covered code (translated stages). */
    Addr codeAddr = 0;
    u32 codeBytes = 0;
    /** Zero-width marker (CacheFlush, Chain, Dispatch). */
    bool instant = false;
    /**
     * Work done on a background translator context, off the emulation
     * thread's critical path (the async SBT pipeline). Cycle-pricing
     * consumers account it to occupancy, not to elapsed time.
     */
    bool background = false;
    /** Phase-specific tracer payload (pc, arena id, ...). */
    u64 arg = 0;
    /**
     * Packed dbt::TransId (TransId::raw()) of the translation the
     * event covers; 0 for stages with no translation identity
     * (interpretation, x86-mode, instants). Lets sampling consumers
     * attribute work to individual translations without a reverse
     * code-address lookup.
     */
    u64 transId = 0;
};

/** A consumer of stage events. */
class StageSink
{
  public:
    virtual ~StageSink() = default;
    virtual void onEvent(const StageEvent &e) = 0;
};

/** Fan-out of one producer's events to any number of sinks. */
class EventStream
{
  public:
    void attach(StageSink *s) { sinks.push_back(s); }

    void
    emit(const StageEvent &e)
    {
        for (StageSink *s : sinks)
            s->onEvent(e);
    }

  private:
    std::vector<StageSink *> sinks;
};

/**
 * Tracer consumer: renders the event stream as phase spans on a
 * monotonically advancing work-unit clock (each covered instruction
 * advances it by one), exactly as the pre-engine VMM recorded them.
 */
class TraceSink : public StageSink
{
  public:
    explicit TraceSink(Tracer &tracer, u8 track_id = 0)
        : tr(tracer), track(track_id)
    {
    }

    void
    onEvent(const StageEvent &e) override
    {
        if (e.instant) {
            CDVM_TRACE_INSTANT(tr, e.stage, vclock, e.arg, track);
            return;
        }
        if (e.insns == 0)
            return;
        CDVM_TRACE_SPAN(tr, e.stage, vclock, e.insns, e.arg, track);
        vclock += e.insns;
    }

    /** The work-unit clock after all events so far. */
    u64 clock() const { return vclock; }

  private:
    Tracer &tr;
    u8 track;
    u64 vclock = 0;
};

/**
 * Counting consumer: the functional view of the event stream. Retired
 * (or simulated) instructions per stage plus static translation
 * totals -- everything a retire-count consumer needs, independent of
 * any cycle model.
 */
class StageCounter : public StageSink
{
  public:
    void
    onEvent(const StageEvent &e) override
    {
        switch (e.stage) {
          case TracePhase::BbtTranslate:
            ++bbtTranslations;
            staticInsnsBbt += e.insns;
            return;
          case TracePhase::SbtOptimize:
            ++sbtTranslations;
            staticInsnsSbt += e.insns;
            return;
          case TracePhase::WarmInstall:
            ++warmInstalls;
            staticInsnsWarm += e.insns;
            return;
          case TracePhase::Interp:
          case TracePhase::X86Mode:
          case TracePhase::ColdExec:
            insnsCold += e.insns;
            break;
          case TracePhase::BbtExec:
            insnsBbt += e.insns;
            break;
          case TracePhase::SbtExec:
            insnsSbt += e.insns;
            break;
          default:
            return;
        }
    }

    u64 totalInsns() const { return insnsCold + insnsBbt + insnsSbt; }

    u64 insnsCold = 0;
    u64 insnsBbt = 0;
    u64 insnsSbt = 0;
    u64 bbtTranslations = 0;
    u64 sbtTranslations = 0;
    u64 staticInsnsBbt = 0;
    u64 staticInsnsSbt = 0;
    u64 warmInstalls = 0;
    u64 staticInsnsWarm = 0;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_EVENTS_HH
