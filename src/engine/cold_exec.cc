#include "engine/cold_exec.hh"

#include "common/statreg.hh"
#include "x86/interp.hh"

namespace cdvm::engine
{

x86::Exit
DirectColdExecutor::execute(x86::CpuState &cpu, InstCount budget,
                            InstCount &retired)
{
    // Execute one dynamic basic block's worth of instructions
    // directly. Functionally identical across strategies; profiled
    // and accounted differently by the hooks.
    u64 block_insns = 0;
    x86::Interpreter interp(cpu, mem, dcache.get());
    for (InstCount n = 0; n < budget; ++n) {
        x86::StepResult sr = interp.step();
        if (sr.exit != x86::Exit::None) {
            onBlockDone(block_insns);
            return sr.exit;
        }
        ++retired;
        ++block_insns;
        onRetire();
        if (sr.insn.isCondBranch())
            prof.record(sr.insn.pc, sr.taken);
        if (sr.insn.isCti())
            break; // end of dynamic basic block
    }
    onBlockDone(block_insns);
    return x86::Exit::None;
}

void
DirectColdExecutor::exportStats(StatRegistry &reg) const
{
    if (dcache)
        dcache->exportStats(reg, "x86.decode_cache");
}

void
X86ModeColdExecutor::exportStats(StatRegistry &reg) const
{
    DirectColdExecutor::exportStats(reg);
    dual.exportStats(reg, "hwassist.dualmode");
}

void
BbtColdExecutor::exportStats(StatRegistry &reg) const
{
    backend->exportStats(reg, "dbt.bbt");
}

} // namespace cdvm::engine
