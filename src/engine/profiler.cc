#include "engine/profiler.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace cdvm::engine
{

const char *
hotStageName(HotStage s)
{
    switch (s) {
      case HotStage::Cold:
        return "cold";
      case HotStage::Bbt:
        return "bbt";
      case HotStage::Sbt:
        return "sbt";
      case HotStage::Warm:
        return "warm";
    }
    return "?";
}

HotStage
hotStageOf(TracePhase p)
{
    switch (p) {
      case TracePhase::BbtTranslate:
      case TracePhase::BbtExec:
        return HotStage::Bbt;
      case TracePhase::SbtOptimize:
      case TracePhase::SbtExec:
        return HotStage::Sbt;
      case TracePhase::WarmInstall:
        return HotStage::Warm;
      default:
        return HotStage::Cold;
    }
}

void
SamplingProfiler::sample(const StageEvent &e)
{
    const HotStage s = hotStageOf(e.stage);
    const unsigned si = static_cast<unsigned>(s);
    ++total;
    ++byStage[si];

    PageHot &p = pages[e.x86Addr >> x86::Memory::PAGE_SHIFT];
    ++p.total;
    ++p.byStage[si];

    if (e.transId) {
        TransHot &t = trans[e.transId];
        ++t.samples;
        t.entryPc = e.x86Addr;
        t.stage = s;
    }
}

u64
SamplingProfiler::pageSamples(Addr page) const
{
    auto it = pages.find(page);
    return it == pages.end() ? 0 : it->second.total;
}

u64
SamplingProfiler::transSamples(u64 raw_id) const
{
    auto it = trans.find(raw_id);
    return it == trans.end() ? 0 : it->second.samples;
}

std::vector<SamplingProfiler::PageRank>
SamplingProfiler::ranking(std::size_t top_n) const
{
    std::vector<PageRank> out;
    out.reserve(pages.size());
    for (const auto &kv : pages)
        out.push_back(PageRank{kv.first, kv.second});
    std::sort(out.begin(), out.end(),
              [](const PageRank &a, const PageRank &b) {
                  if (a.hot.total != b.hot.total)
                      return a.hot.total > b.hot.total;
                  return a.page < b.page;
              });
    if (top_n && out.size() > top_n)
        out.resize(top_n);
    return out;
}

std::vector<SamplingProfiler::TransRank>
SamplingProfiler::transRanking(std::size_t top_n) const
{
    std::vector<TransRank> out;
    out.reserve(trans.size());
    for (const auto &kv : trans)
        out.push_back(TransRank{kv.first, kv.second});
    std::sort(out.begin(), out.end(),
              [](const TransRank &a, const TransRank &b) {
                  if (a.hot.samples != b.hot.samples)
                      return a.hot.samples > b.hot.samples;
                  return a.transId < b.transId;
              });
    if (top_n && out.size() > top_n)
        out.resize(top_n);
    return out;
}

void
SamplingProfiler::exportStats(StatRegistry &reg,
                              const std::string &prefix) const
{
    auto set = [&reg, &prefix](const char *leaf, u64 v,
                               const char *desc) {
        reg.set(prefix + "." + leaf, static_cast<double>(v), desc);
    };
    set("period", period_, "sampling period (work units per sample)");
    set("clock", vclock, "work-unit clock seen by the profiler");
    set("samples", total, "hotness samples drawn");
    set("pages", pages.size(), "distinct guest pages sampled");
    set("translations", trans.size(), "distinct translations sampled");
    for (unsigned i = 0; i < NUM_HOT_STAGES; ++i) {
        set((std::string("stage.") +
             hotStageName(static_cast<HotStage>(i)))
                .c_str(),
            byStage[i], "samples attributed to this stage");
    }
}

std::string
SamplingProfiler::dumpJson() const
{
    std::ostringstream os;
    os << "{\n  \"period\": " << period_ << ",\n  \"clock\": " << vclock
       << ",\n  \"samples\": " << total << ",\n  \"stages\": {";
    for (unsigned i = 0; i < NUM_HOT_STAGES; ++i) {
        os << (i ? ", " : "") << "\""
           << hotStageName(static_cast<HotStage>(i))
           << "\": " << byStage[i];
    }
    os << "},\n  \"pages\": [";
    bool first = true;
    for (const PageRank &r : ranking()) {
        char base[32];
        std::snprintf(base, sizeof(base), "0x%" PRIx64,
                      static_cast<u64>(r.page)
                          << x86::Memory::PAGE_SHIFT);
        os << (first ? "\n" : ",\n") << "    {\"page\": " << r.page
           << ", \"base\": \"" << base
           << "\", \"samples\": " << r.hot.total;
        for (unsigned i = 0; i < NUM_HOT_STAGES; ++i) {
            os << ", \"" << hotStageName(static_cast<HotStage>(i))
               << "\": " << r.hot.byStage[i];
        }
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n  \"translations\": [";
    first = true;
    for (const TransRank &r : transRanking()) {
        os << (first ? "\n" : ",\n") << "    {\"id\": " << r.transId
           << ", \"entry_pc\": " << r.hot.entryPc
           << ", \"samples\": " << r.hot.samples << ", \"stage\": \""
           << hotStageName(r.hot.stage) << "\"}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

bool
SamplingProfiler::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        cdvm_warn("cannot open profile output '%s'", path.c_str());
        return false;
    }
    std::string doc = dumpJson();
    std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return n == doc.size();
}

std::string
SamplingProfiler::dumpTopN(std::size_t n) const
{
    std::ostringstream os;
    os << "guest-hotness profile: " << total << " samples, period "
       << period_ << ", clock " << vclock << "\n";
    if (!total)
        return os.str();
    os << "      page base   samples  share    cold     bbt     sbt"
          "    warm\n";
    char line[128];
    for (const PageRank &r : ranking(n)) {
        std::snprintf(
            line, sizeof(line),
            "  0x%010" PRIx64 " %9" PRIu64 " %5.1f%% %7" PRIu64
            " %7" PRIu64 " %7" PRIu64 " %7" PRIu64 "\n",
            static_cast<u64>(r.page) << x86::Memory::PAGE_SHIFT,
            r.hot.total, 100.0 * static_cast<double>(r.hot.total) /
                             static_cast<double>(total),
            r.hot.byStage[0], r.hot.byStage[1], r.hot.byStage[2],
            r.hot.byStage[3]);
        os << line;
    }
    return os.str();
}

void
SamplingProfiler::clear()
{
    total = 0;
    for (u64 &v : byStage)
        v = 0;
    pages.clear();
    trans.clear();
}

void
FlightSink::noteFlush()
{
    flushClocks.push_back(vclock);
    // Expire flushes that slid out of the window (the vector stays
    // tiny: at most threshold entries survive any storm reset).
    std::size_t stale = 0;
    while (stale < flushClocks.size() &&
           vclock - flushClocks[stale] > window) {
        ++stale;
    }
    if (stale) {
        flushClocks.erase(flushClocks.begin(),
                          flushClocks.begin() +
                              static_cast<std::ptrdiff_t>(stale));
    }
    if (flushClocks.size() < threshold)
        return;

    // Storm: dump and restart the episode count, so a sustained storm
    // produces one dump per threshold flushes instead of one per
    // flush.
    ++stormCount;
    flushClocks.clear();
    if (dumpPath.empty()) {
        cdvm_debug("flight recorder: cache-flush storm #%llu at clock "
                   "%llu (no dump path configured)",
                   static_cast<unsigned long long>(stormCount),
                   static_cast<unsigned long long>(vclock));
        return;
    }
    if (rec_.writeText(dumpPath)) {
        ++stormDumpCount;
        cdvm_debug("flight recorder: cache-flush storm #%llu at clock "
                   "%llu, dumped %zu events to %s",
                   static_cast<unsigned long long>(stormCount),
                   static_cast<unsigned long long>(vclock), rec_.size(),
                   dumpPath.c_str());
    }
}

} // namespace cdvm::engine
