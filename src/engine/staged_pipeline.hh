/**
 * @file
 * The block-granular staged-emulation state machine.
 *
 * The timing simulator used to interleave its cycle accounting with
 * the staging decisions (when is a block translated, when does a
 * region go hot, where does its code-cache image live). This class is
 * that state machine alone: it walks a dynamic block trace and emits
 * the same StageEvent stream the functional VMM's dispatch core
 * produces, so one staging engine feeds two kinds of consumers --
 * retire counting (StageCounter) and cycle pricing (the timing
 * simulator's sink in startup_sim.cc).
 *
 * Event order per block touch mirrors the real VMM: translation on
 * first touch (BbtTranslate + a Dispatch instant), then hotspot
 * detection / region optimization (SbtOptimize), then execution in
 * the block's current mode (ColdExec / BbtExec / SbtExec).
 */

#ifndef CDVM_ENGINE_STAGED_PIPELINE_HH
#define CDVM_ENGINE_STAGED_PIPELINE_HH

#include <vector>

#include "engine/events.hh"
#include "workload/trace_gen.hh"

namespace cdvm::engine
{

/** Staging policy of the simulated machine. */
struct StagedParams
{
    /** Cold code is BBT-translated on first touch (VM.soft/VM.be). */
    bool translateCold = true;
    /** Hotspot optimization stage present. */
    bool hasSbt = true;
    /** Eq. 2 threshold: touches until a block's region goes hot. */
    u64 hotThreshold = 8000;
    /** Code-cache bytes per x86 byte. */
    double codeExpansion = 1.6;
    Addr bbtBase = 0xe0000000;
    Addr sbtBase = 0xe8000000;

    /**
     * Warm start from a persistent translation repository: every block
     * begins in BBT mode, with the install work (repository validation
     * + code-cache writes) emitted as up-front WarmInstall events
     * before the first executed instruction. Only meaningful with
     * translateCold (the repository replaces the BBT transient).
     */
    bool warmStart = false;

    /**
     * Background SBT contexts (0 = synchronous: a region is optimized
     * the instant it crosses the threshold, charging Delta_SBT on the
     * emulation thread, exactly the paper's model). With N >= 1 a hot
     * region keeps executing in its pre-hot mode while one of N
     * contexts optimizes it; the SbtOptimize event is emitted (with
     * background set) when the optimization completes, and only then
     * does the region switch to SbtExec.
     */
    unsigned asyncTranslators = 0;
    /**
     * Background optimization latency per translated x86 instruction,
     * in executed-instruction units (the pipeline's only clock): how
     * many instructions the emulation thread retires while one
     * instruction is being optimized. The timing simulator derives it
     * from Delta_SBT and the pre-hot mode's CPI.
     */
    double asyncLatencyPerInsn = 1000.0;
};

/** Trace-driven staging state machine emitting StageEvents. */
class StagedPipeline
{
  public:
    StagedPipeline(const std::vector<workload::BlockInfo> &block_infos,
                   const StagedParams &params, EventStream &events);

    /** Process one dynamic touch of block id, emitting its events. */
    void touch(u32 id);

  private:
    /** Make the region hot: emit SbtOptimize, switch member blocks. */
    void optimizeRegion(u32 region, bool background);
    /** Complete background jobs whose latency has elapsed. */
    void completeAsyncJobs();
    /** Enqueue a region on the least-loaded background context. */
    void requestAsync(u32 region);
    struct BlockState
    {
        u8 mode = 0; //!< 0 cold, 1 BBT-translated, 2 hotspot (SBT)
        u32 exec = 0;
        Addr bbtAddr = 0; //!< BBT code-cache address
        u32 bbtBytes = 0; //!< BBT code-cache image size
    };

    struct RegionState
    {
        bool hot = false;
        /** Async: optimization requested, not yet completed. */
        bool inFlight = false;
        Addr sbtAddr = 0;
        u32 sbtBytes = 0;
    };

    /** One outstanding background optimization. */
    struct AsyncJob
    {
        u32 region = 0;
        /** Completes when insnsSoFar reaches this. */
        double readyAt = 0.0;
    };

    const std::vector<workload::BlockInfo> &blocks;
    StagedParams p;
    EventStream &events;

    std::vector<BlockState> st;
    std::vector<RegionState> regions;
    // Region membership lists (contiguous ids).
    std::vector<u32> regionFirst;
    std::vector<u32> regionLast;

    // Bump allocators for the two code-cache arenas.
    Addr bbtNext;
    Addr sbtNext;

    // --- async overlap model (asyncTranslators > 0 only) ------------
    /** Executed instructions so far: the pipeline's clock. */
    double insnsSoFar = 0.0;
    /** Per-context busy-until, in executed-instruction units. */
    std::vector<double> ctxFreeAt;
    /** Outstanding background optimizations (small). */
    std::vector<AsyncJob> jobs;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_STAGED_PIPELINE_HH
