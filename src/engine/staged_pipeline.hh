/**
 * @file
 * The block-granular staged-emulation state machine.
 *
 * The timing simulator used to interleave its cycle accounting with
 * the staging decisions (when is a block translated, when does a
 * region go hot, where does its code-cache image live). This class is
 * that state machine alone: it walks a dynamic block trace and emits
 * the same StageEvent stream the functional VMM's dispatch core
 * produces, so one staging engine feeds two kinds of consumers --
 * retire counting (StageCounter) and cycle pricing (the timing
 * simulator's sink in startup_sim.cc).
 *
 * Event order per block touch mirrors the real VMM: translation on
 * first touch (BbtTranslate + a Dispatch instant), then hotspot
 * detection / region optimization (SbtOptimize), then execution in
 * the block's current mode (ColdExec / BbtExec / SbtExec).
 */

#ifndef CDVM_ENGINE_STAGED_PIPELINE_HH
#define CDVM_ENGINE_STAGED_PIPELINE_HH

#include <vector>

#include "engine/events.hh"
#include "workload/trace_gen.hh"

namespace cdvm::engine
{

/** Staging policy of the simulated machine. */
struct StagedParams
{
    /** Cold code is BBT-translated on first touch (VM.soft/VM.be). */
    bool translateCold = true;
    /** Hotspot optimization stage present. */
    bool hasSbt = true;
    /** Eq. 2 threshold: touches until a block's region goes hot. */
    u64 hotThreshold = 8000;
    /** Code-cache bytes per x86 byte. */
    double codeExpansion = 1.6;
    Addr bbtBase = 0xe0000000;
    Addr sbtBase = 0xe8000000;
};

/** Trace-driven staging state machine emitting StageEvents. */
class StagedPipeline
{
  public:
    StagedPipeline(const std::vector<workload::BlockInfo> &block_infos,
                   const StagedParams &params, EventStream &events);

    /** Process one dynamic touch of block id, emitting its events. */
    void touch(u32 id);

  private:
    struct BlockState
    {
        u8 mode = 0; //!< 0 cold, 1 BBT-translated, 2 hotspot (SBT)
        u32 exec = 0;
        Addr bbtAddr = 0; //!< BBT code-cache address
        u32 bbtBytes = 0; //!< BBT code-cache image size
    };

    struct RegionState
    {
        bool hot = false;
        Addr sbtAddr = 0;
        u32 sbtBytes = 0;
    };

    const std::vector<workload::BlockInfo> &blocks;
    StagedParams p;
    EventStream &events;

    std::vector<BlockState> st;
    std::vector<RegionState> regions;
    // Region membership lists (contiguous ids).
    std::vector<u32> regionFirst;
    std::vector<u32> regionLast;

    // Bump allocators for the two code-cache arenas.
    Addr bbtNext;
    Addr sbtNext;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_STAGED_PIPELINE_HH
