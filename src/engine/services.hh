/**
 * @file
 * Process-shared services for multi-context emulation.
 *
 * A Vmm used to be the whole process: one guest context, one set of
 * worker threads, one warm-start repository read off disk. A
 * multi-tenant server hosts hundreds of contexts in one process, and
 * splitting the Vmm's state into *per-context* (registers, guest
 * memory, code caches, lookup structures, profilers, stats) versus
 * *process-shared* (background translation workers, the parsed
 * read-only warm-start repository) is what makes that cheap:
 *
 *  - SharedServices::sbtPool -- one bounded ThreadPool whose worker
 *    contexts serve every tenant's background SBT requests. Each
 *    Vmm's AsyncSbtEngine keeps its own completion queue and
 *    in-flight set, so results can never cross tenants; only the
 *    workers and the request queue (and therefore the back-pressure)
 *    are shared.
 *  - SharedServices::warmRepo -- one parsed dbt::Repository shared
 *    read-only by every context warm-starting from the same image.
 *    The file is read and checksummed once per process instead of
 *    once per context; installation (validation against the
 *    context's own guest memory, code-cache allocation, chain
 *    re-binding) stays per-context.
 *
 * A null/empty SharedServices leaves the Vmm exactly as before: it
 * owns a private pool and loads its repository from
 * EngineConfig::warmStartLoadPath.
 */

#ifndef CDVM_ENGINE_SERVICES_HH
#define CDVM_ENGINE_SERVICES_HH

#include <memory>

#include "common/threadpool.hh"
#include "dbt/image.hh"
#include "dbt/persist.hh"

namespace cdvm::engine
{

/** Services a multi-context host shares across its tenants. */
struct SharedServices
{
    /**
     * Background SBT worker pool shared by all contexts (null: each
     * Vmm with asyncTranslators > 0 spins up a private pool). The
     * pool must outlive every Vmm constructed against it.
     */
    ThreadPool *sbtPool = nullptr;

    /**
     * Parsed warm-start repository, shared read-only. When set, it
     * takes precedence over EngineConfig::warmStartLoadPath (the
     * config path is what the repository was loaded from).
     */
    std::shared_ptr<const dbt::Repository> warmRepo;

    /**
     * Verified zero-copy translation image, shared read-only by every
     * context (and, via the file mapping, by sibling processes). Takes
     * precedence over warmRepo and the config path. Contexts install
     * *views* into this image, so it must outlive every Vmm holding
     * it — which the shared_ptr guarantees per context.
     */
    std::shared_ptr<const dbt::TransImage> warmImage;

    /**
     * Where to *get* image generations from when warmImage is not
     * pinned explicitly: an in-process dbt::ImageStore or a
     * serve::ImageClient bound to an image-host daemon — one
     * interface, resolved to a generation handle at Vmm construction
     * (and at fleet admission). A null acquire() means boot cold, so
     * a missing/failed daemon degrades gracefully.
     */
    std::shared_ptr<dbt::ImageEndpoint> imageEndpoint;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_SERVICES_HH
