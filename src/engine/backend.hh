/**
 * @file
 * Translation backends: how architected code becomes translations.
 *
 * Three implementations of the TranslationBackend strategy:
 *
 *  - SoftwareBbtBackend: the software decode+crack basic-block
 *    translator (VM.soft);
 *  - XltBbtBackend: the HAloop driving the XLTx86 functional unit
 *    (VM.be / VM.dual). Straight-line instructions are decoded,
 *    cracked and encoded *by the hardware model* into a concealed
 *    scratch window; CTIs and complex instructions take the software
 *    path, exactly as the paper's Fig. 6a handlers do. The backend
 *    then lifts the emitted encoding back into a Translation whose
 *    shape (covered instructions, block-ending rules, micro-op
 *    sequence) is identical to the software BBT's -- differential
 *    tests hold VM.be to VM.soft's retired-instruction totals.
 *  - SbtBackend: superblock formation + optimization from a hot seed.
 */

#ifndef CDVM_ENGINE_BACKEND_HH
#define CDVM_ENGINE_BACKEND_HH

#include <functional>
#include <memory>

#include "dbt/bbt.hh"
#include "dbt/sbt.hh"
#include "dbt/superblock.hh"
#include "dbt/templates.hh"
#include "engine/engine_config.hh"
#include "engine/strategy.hh"
#include "hwassist/haloop.hh"
#include "hwassist/xlt.hh"
#include "x86/memory.hh"

namespace cdvm::engine
{

/** The software basic-block translator (VM.soft cold path). */
class SoftwareBbtBackend : public TranslationBackend
{
  public:
    SoftwareBbtBackend(x86::Memory &memory, unsigned max_insns)
        : xlator(memory, max_insns)
    {
    }

    std::unique_ptr<dbt::Translation>
    translate(Addr pc) override
    {
        return xlator.translate(pc);
    }

    void exportStats(StatRegistry &reg,
                     const std::string &prefix) const override;

  private:
    dbt::BasicBlockTranslator xlator;
};

/**
 * The IR-less template BBT (VM.soft.tmpl / VM.be.tmpl cold path): a
 * software XLTx86. Decoded instruction forms are mapped straight to
 * pre-baked micro-op templates specialized by value substitution; no
 * cracker runs on the translation path. Blocks containing a form with
 * no learned rule fall back per-block to the software BBT, keeping
 * block shapes identical to VM.soft.
 */
class TemplateBbtBackend : public TranslationBackend
{
  public:
    TemplateBbtBackend(x86::Memory &memory, unsigned max_insns,
                       unsigned coverage_pct = 100)
        : xlator(memory, max_insns, coverage_pct)
    {
    }

    std::unique_ptr<dbt::Translation>
    translate(Addr pc) override
    {
        return xlator.translate(pc);
    }

    void exportStats(StatRegistry &reg,
                     const std::string &prefix) const override;

    const dbt::TemplateTranslator &translator() const { return xlator; }

  private:
    dbt::TemplateTranslator xlator;
};

/** The XLTx86-assisted BBT (VM.be / VM.dual cold path). */
class XltBbtBackend : public TranslationBackend
{
  public:
    /**
     * The HAloop's STF target: a concealed scratch window the
     * hardware emits encoded micro-ops into before the VMM installs
     * them in the real arena (well above guest code, stack and both
     * code caches).
     */
    static constexpr Addr SCRATCH_BASE = 0xf8000000;

    XltBbtBackend(x86::Memory &memory, unsigned max_insns,
                  EngineStats &stats)
        : mem(memory), loop(memory, xltUnit), maxInsns(max_insns),
          st(stats)
    {
    }

    std::unique_ptr<dbt::Translation> translate(Addr pc) override;

    void exportStats(StatRegistry &reg,
                     const std::string &prefix) const override;

    const hwassist::XltUnit &unit() const { return xltUnit; }
    const hwassist::HaLoop &haloop() const { return loop; }

  private:
    x86::Memory &mem;
    hwassist::XltUnit xltUnit;
    hwassist::HaLoop loop;
    unsigned maxInsns;
    EngineStats &st;
    u64 nBlocks = 0;
    u64 nInsns = 0;
};

/** The superblock optimizer (hot path of every configuration). */
class SbtBackend : public TranslationBackend
{
  public:
    /** Callback giving the observed taken-bias of a branch. */
    using BiasFn = std::function<std::optional<double>(Addr)>;

    SbtBackend(x86::Memory &memory, const EngineConfig &cfg,
               BiasFn bias_fn)
        : mem(memory), policy(cfg.sbPolicy), bias(std::move(bias_fn)),
          xlator(cfg.fusion)
    {
    }

    /** Form + optimize from the hot seed; nullptr when formation
     *  fails (the dispatch core remembers failed seeds). */
    std::unique_ptr<dbt::Translation> translate(Addr seed_pc) override;

    /**
     * Formation stage alone: follow the hot path from the seed into a
     * self-contained trace. This is the part that must run on the
     * dispatch thread (it reads guest memory and the live branch
     * profile); the async pipeline hands the result to a background
     * optimizer context. nullopt when the seed does not form.
     */
    std::optional<dbt::SuperblockTrace> form(Addr seed_pc);

    void exportStats(StatRegistry &reg,
                     const std::string &prefix) const override;

    const dbt::SuperblockTranslator &translator() const
    {
        return xlator;
    }

  private:
    x86::Memory &mem;
    dbt::SuperblockPolicy policy;
    BiasFn bias;
    dbt::SuperblockTranslator xlator;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_BACKEND_HH
