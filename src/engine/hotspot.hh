/**
 * @file
 * Hotspot detectors: the HotspotDetector strategy implementations.
 *
 *  - SoftwareCounterDetector: per-translation execution counters (the
 *    counter lives in the Translation) plus a bounded entry-count map
 *    for untranslated code under interpretation (Section 3.1);
 *  - BbbDetector: the hardware branch behavior buffer (Section 4.1),
 *    required by VM.fe (no BBT code to carry software counters) and
 *    used by VM.dual to cut detection overhead to near zero.
 */

#ifndef CDVM_ENGINE_HOTSPOT_HH
#define CDVM_ENGINE_HOTSPOT_HH

#include "engine/engine_config.hh"
#include "engine/profile.hh"
#include "engine/strategy.hh"
#include "hwassist/bbb.hh"

namespace cdvm::engine
{

/** Software exec-counter hotspot detection (vm.soft / vm.be). */
class SoftwareCounterDetector final : public HotspotDetector
{
  public:
    explicit SoftwareCounterDetector(const EngineConfig &cfg)
        : hotThreshold(cfg.hotThreshold),
          interpHotThreshold(cfg.interpHotThreshold),
          coldCounts(cfg.coldCounterCap)
    {
    }

    bool
    onColdEntry(Addr pc) override
    {
        return coldCounts.bump(pc) >= interpHotThreshold;
    }

    bool
    onTranslatedEntry(const dbt::Translation &t) override
    {
        // Superblocks are already the product of hotspot optimization;
        // only BBT blocks carry the software profiling burden.
        return t.kind == dbt::TransKind::BasicBlock &&
               t.execCount >= hotThreshold;
    }

    void exportStats(StatRegistry &reg) const override;

  private:
    u64 hotThreshold;
    u64 interpHotThreshold;
    BoundedCounterMap coldCounts;
};

/** Hardware branch-behavior-buffer detection (vm.fe / vm.dual). */
class BbbDetector final : public HotspotDetector
{
  public:
    explicit BbbDetector(const EngineConfig &cfg) : buf(cfg.bbbParams) {}

    bool onColdEntry(Addr pc) override { return buf.recordBranch(pc); }

    bool
    onTranslatedEntry(const dbt::Translation &t) override
    {
        // BBT block entries still retire branches the BBB observes
        // (vm.dual); superblocks are already optimized.
        return t.kind == dbt::TransKind::BasicBlock &&
               buf.recordBranch(t.entryPc);
    }

    void exportStats(StatRegistry &reg) const override;

    const hwassist::BranchBehaviorBuffer *
    bbbUnit() const override
    {
        return &buf;
    }

  private:
    hwassist::BranchBehaviorBuffer buf;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_HOTSPOT_HH
