/**
 * @file
 * The three strategy interfaces of the staged-emulation engine.
 *
 * The dispatch core (vmm::Vmm) is strategy-agnostic: it owns the
 * run loop, the translation lookup/chaining, and translated-code
 * execution, and delegates everything configuration-specific to:
 *
 *  - ColdExecutor: what happens on a lookup miss. Translate-style
 *    executors (software BBT, the XLTx86-assisted HAloop) produce a
 *    Translation the core installs and runs; execute-style executors
 *    (interpreter, hardware x86-mode) run the cold block directly.
 *  - HotspotDetector: when does a region become hot. Software
 *    exec-counters or the hardware branch behavior buffer.
 *  - TranslationBackend: how a hot seed becomes optimized code (the
 *    SBT), and how a cold pc becomes a basic-block translation.
 *
 * An EngineConfig names one composition of these (engine_config.hh).
 */

#ifndef CDVM_ENGINE_STRATEGY_HH
#define CDVM_ENGINE_STRATEGY_HH

#include <memory>
#include <string>

#include "common/trace.hh"
#include "dbt/translation.hh"
#include "x86/interp.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::hwassist
{
class BranchBehaviorBuffer;
}

namespace cdvm::x86
{
class DecodeCache;
}

namespace cdvm::engine
{

/**
 * Produces translations from architected code. The BBT-style
 * backends (software decode+crack, or the HAloop driving the XLTx86
 * unit) build basic blocks; the SBT backend builds optimized
 * superblocks from hot seeds.
 */
class TranslationBackend
{
  public:
    virtual ~TranslationBackend() = default;

    /**
     * Translate starting at pc. Returns nullptr when no translation
     * can be made (undecodable entry for BBT; formation failure for
     * SBT).
     */
    virtual std::unique_ptr<dbt::Translation> translate(Addr pc) = 0;

    virtual void
    exportStats(StatRegistry &, const std::string &) const
    {
    }
};

/** Cold-code execution strategy: what happens on a lookup miss. */
class ColdExecutor
{
  public:
    virtual ~ColdExecutor() = default;

    /**
     * True when cold code is handled by translating it (the core
     * then installs the translation and executes from the code
     * cache); false when execute() runs the block directly.
     */
    virtual bool translatesColdCode() const = 0;

    /** Translate the cold block (translate-style executors only). */
    virtual std::unique_ptr<dbt::Translation>
    translate(Addr)
    {
        return nullptr;
    }

    /**
     * Execute one dynamic basic block directly (execute-style
     * executors only). Retires at most budget instructions,
     * incrementing retired as it goes.
     */
    virtual x86::Exit
    execute(x86::CpuState &, InstCount /*budget*/, InstCount &)
    {
        return x86::Exit::None;
    }

    /** Trace phase of direct cold execution (Interp or X86Mode). */
    virtual TracePhase phase() const { return TracePhase::Interp; }

    /**
     * The decoded-instruction cache behind this executor, when there
     * is one (execute-style executors with the fast path enabled).
     */
    virtual const x86::DecodeCache *
    decodeCache() const
    {
        return nullptr;
    }

    virtual void
    exportStats(StatRegistry &) const
    {
    }
};

/** Hotspot detection strategy. */
class HotspotDetector
{
  public:
    virtual ~HotspotDetector() = default;

    /**
     * A cold (untranslated) block is being entered at pc. Returns
     * true when the entry crosses the hot threshold.
     */
    virtual bool onColdEntry(Addr pc) = 0;

    /**
     * A translation is being entered (execCount already counts this
     * entry). Returns true when the entry makes it hot.
     */
    virtual bool onTranslatedEntry(const dbt::Translation &t) = 0;

    /** The hardware BBB behind this detector, when there is one. */
    virtual const hwassist::BranchBehaviorBuffer *
    bbbUnit() const
    {
        return nullptr;
    }

    virtual void
    exportStats(StatRegistry &) const
    {
    }
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_STRATEGY_HH
