/**
 * @file
 * The asynchronous SBT pipeline: background superblock optimization.
 *
 * The paper charges the full Delta_SBT (1674 native instructions per
 * translated instruction) on the emulation thread at the moment a
 * region crosses the hot threshold. Real co-designed VMs hide that
 * latency: the dispatch loop keeps retiring cold/BBT code while
 * optimization proceeds on background contexts. This class is that
 * pipeline for the functional VM.
 *
 * Protocol (see DESIGN.md "Asynchronous SBT pipeline"):
 *
 *  - *Form on the dispatch thread.* Superblock formation reads guest
 *    memory and the live branch-direction profile, both owned by the
 *    emulation thread; the Vmm forms the SuperblockTrace at detection
 *    time and hands the workers a self-contained value. Workers never
 *    touch guest-visible state.
 *  - *Optimize on a worker.* Each worker context owns a private
 *    SuperblockTranslator (crack + dead-flag elimination + fusion),
 *    so the expensive optimization runs unsynchronized.
 *  - *Install on the dispatch thread.* Finished translations land in
 *    a completion queue; the Vmm drains it at dispatch points and
 *    performs the publish (code-cache allocate + encode + map insert)
 *    itself, then chains lazily as usual (publish-then-chain). A
 *    code-cache flush between request and install therefore never
 *    races an install -- the drain sees the post-flush world and
 *    drops results that became stale (a superblock already republished
 *    at that seed).
 *
 * Back-pressure: the request queue is bounded; when it is full the
 *  request is dropped and the seed stays cold until a later detection
 *  re-requests it.
 * Determinism: with barrier() after every request (EngineConfig
 *  asyncDeterministic), installs happen at the exact point the
 *  synchronous SBT would translate, so the engine's StageEvent stream
 *  is identical retire-for-retire to the synchronous pipeline.
 */

#ifndef CDVM_ENGINE_ASYNC_SBT_HH
#define CDVM_ENGINE_ASYNC_SBT_HH

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/stats.hh"
#include "common/threadpool.hh"
#include "dbt/sbt.hh"
#include "dbt/superblock.hh"
#include "engine/engine_config.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::engine
{

/** One finished background optimization. */
struct AsyncSbtResult
{
    Addr seed = 0;
    u64 ticket = 0; //!< submission order (0-based)
    /** The optimized superblock; null when the optimizer declined. */
    std::unique_ptr<dbt::Translation> trans;
    /**
     * Host-side latency timestamps (steady-clock ns). Stamped on the
     * dispatch thread at enqueue, on the worker around the
     * optimization, and consumed on the dispatch thread at drain --
     * they travel through the locked completion queue, so no cross-
     * thread access is unsynchronized.
     */
    u64 enqueueNs = 0;
    u64 optStartNs = 0;
    u64 optEndNs = 0;
};

/** Background superblock-optimization contexts + completion queue. */
class AsyncSbtEngine
{
  public:
    /**
     * Spin up cfg.asyncTranslators worker contexts behind a queue of
     * cfg.asyncQueueCap requests; each context gets its own
     * SuperblockTranslator configured like the synchronous SBT's.
     *
     * With shared_pool, no threads are spawned: requests go to the
     * caller-owned pool (a multi-tenant server runs every tenant's
     * optimizations on one fleet-wide pool), and one private
     * translator per *pool worker* keeps optimization unsynchronized.
     * Completion queue, in-flight set, and latency accounting stay
     * per-engine, so results never cross tenants. The shared pool
     * must outlive this engine.
     */
    explicit AsyncSbtEngine(const EngineConfig &cfg,
                            ThreadPool *shared_pool = nullptr);

    /**
     * Waits for in-flight work, then stops (or, when shared, merely
     * quiesces) the contexts. The drain covers the whole pool: on a
     * shared pool this may also wait out other tenants' work, which
     * is the conservative way to guarantee no worker still references
     * this engine's translators.
     */
    ~AsyncSbtEngine() { pool->drain(); }

    /**
     * True when the seed has been requested and its result has not
     * been drained yet (dispatch thread only).
     */
    bool pending(Addr seed) const { return inFlight.count(seed) > 0; }

    /**
     * Enqueue a formed trace for background optimization (dispatch
     * thread only). Returns false when the queue is full; the caller
     * treats that as back-pressure and leaves the seed cold.
     */
    bool request(Addr seed, dbt::SuperblockTrace trace);

    /**
     * Pop one finished result, if any (dispatch thread only). Cheap
     * when the completion queue is empty: one relaxed atomic load.
     */
    std::optional<AsyncSbtResult> tryPop();

    /** Wait until every requested optimization has completed. */
    void barrier() { pool->drain(); }

    unsigned contexts() const { return pool->workers(); }
    u64 submitted() const { return nSubmitted; }
    /** This engine's requests dropped by queue back-pressure. */
    u64 rejected() const { return nRejected; }
    /** This engine's optimizations completed by workers. */
    u64
    completed() const
    {
        return nCompleted.load(std::memory_order_relaxed);
    }
    /** True when the pool is caller-owned (fleet mode). */
    bool sharedPool() const { return !ownedPool; }

    // Aggregate translator activity across all contexts.
    u64 superblocksTranslated() const;
    u64 insnsTranslated() const;
    u64 totalUopsEmitted() const;
    u64 totalPairsFused() const;

    // Per-job pipeline latency, accumulated at drain time (dispatch
    // thread only): enqueue -> optimize start (queue wait), optimize
    // start -> end (worker occupancy), optimize end -> drain (done-
    // queue wait), and enqueue -> drain (end to end).
    const LogHistogram &queueLatency() const { return latQueue; }
    const LogHistogram &optimizeLatency() const { return latOptimize; }
    const LogHistogram &drainLatency() const { return latDrain; }
    const LogHistogram &totalLatency() const { return latTotal; }

    /**
     * Publish dbt.sbt.*-shaped aggregates plus engine.async.* queue
     * counters. Call only when the contexts are quiescent (after
     * run(); the Vmm barriers before exporting).
     */
    void exportStats(StatRegistry &reg,
                     const std::string &sbt_prefix) const;

  private:
    void pushDone(AsyncSbtResult r);

    /** Private pool (classic single-tenant mode); null when shared. */
    std::unique_ptr<ThreadPool> ownedPool;
    /** The pool in use: &*ownedPool or the caller's shared pool. */
    ThreadPool *pool;
    /** One private translator per worker context (index = ctx). */
    std::vector<dbt::SuperblockTranslator> translators;

    /** Seeds requested and not yet drained (dispatch thread only). */
    std::unordered_set<Addr> inFlight;
    u64 nSubmitted = 0;
    u64 nRejected = 0;
    /** Jobs finished by workers (relaxed; exact once quiescent). */
    std::atomic<u64> nCompleted{0};

    std::mutex doneMu;
    std::deque<AsyncSbtResult> done;
    /** Fast empty-check so the dispatch loop's poll is one load. */
    std::atomic<u64> doneCount{0};

    // Latency histograms (ns, power-of-two buckets), dispatch thread
    // only: tryPop records them after taking the lock.
    LogHistogram latQueue{2.0, 40};
    LogHistogram latOptimize{2.0, 40};
    LogHistogram latDrain{2.0, 40};
    LogHistogram latTotal{2.0, 40};
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_ASYNC_SBT_HH
