#include "engine/warm_start.hh"

#include "common/logging.hh"

namespace cdvm::engine
{

using dbt::LoadError;
using dbt::NO_RECORD;
using dbt::Repository;
using dbt::SavedChain;
using dbt::SavedTranslation;
using dbt::TransId;
using dbt::Translation;

WarmStartReport
warmStartLoad(const std::string &path, const x86::Memory &mem,
              CodeCacheManager &ccm, BranchProfile &prof,
              EventStream *events)
{
    WarmStartReport rep;
    Repository repo;
    rep.error = dbt::loadFile(path, repo);
    if (rep.error != LoadError::None) {
        cdvm_debug("warm start: '%s' not loaded (%s)", path.c_str(),
                   dbt::loadErrorName(rep.error));
        return rep;
    }
    return warmStartInstall(repo, mem, ccm, prof, events);
}

WarmStartReport
warmStartInstall(const Repository &repo, const x86::Memory &mem,
                 CodeCacheManager &ccm, BranchProfile &prof,
                 EventStream *events)
{
    WarmStartReport rep;
    rep.ok = true;
    rep.loaded = repo.entries.size();

    const std::unordered_set<std::size_t> stale =
        dbt::staleEntries(repo, mem);

    // Install the fresh records; remember record -> new TransId so
    // the saved chains can be re-bound afterwards.
    std::vector<TransId> record_ids(repo.entries.size());
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        if (stale.count(i)) {
            ++rep.invalidated;
            continue;
        }
        std::unique_ptr<Translation> t = repo.entries[i].materialize();
        if (!t) {
            ++rep.invalidated;
            continue;
        }
        CodeCacheManager::InstallResult res = ccm.install(std::move(t));
        record_ids[i] = res.trans->id;
        ++rep.installed;
        rep.installedInsns += res.trans->numX86Insns;
        if (events) {
            StageEvent ev;
            ev.stage = TracePhase::WarmInstall;
            ev.insns = res.trans->numX86Insns;
            ev.x86Addr = res.trans->entryPc;
            ev.x86Bytes = res.trans->x86Bytes;
            ev.codeAddr = res.trans->codeAddr;
            ev.codeBytes = res.trans->codeBytes;
            ev.arg = res.trans->entryPc;
            ev.transId = res.trans->id.raw();
            events->emit(ev);
        }
    }

    // Re-bind chains: both ends must have survived (a flush during the
    // warm fill, or an invalidated endpoint, makes resolve fail and
    // the link is simply dropped — the VMM re-chains lazily).
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        Translation *from = ccm.resolve(record_ids[i]);
        if (!from)
            continue;
        for (const SavedChain &c : repo.entries[i].chains) {
            if (c.record == NO_RECORD)
                continue;
            const TransId to = record_ids[c.record];
            if (ccm.resolve(to))
                from->addChain(c.targetPc, to);
        }
    }

    for (const dbt::SavedBranchStat &b : repo.branchProfile) {
        prof.seed(b.pc, b.taken, b.notTaken);
        ++rep.profileSeeded;
    }
    return rep;
}

Repository
warmStartCapture(const dbt::TranslationMap &map,
                 const x86::Memory &mem, const BranchProfile &prof,
                 const dbt::HotnessFn &hotness)
{
    Repository repo = dbt::capture(map, mem, hotness);
    prof.forEach([&repo](Addr pc, u64 taken, u64 not_taken) {
        repo.branchProfile.push_back(
            dbt::SavedBranchStat{pc, taken, not_taken});
    });
    return repo;
}

bool
warmStartSave(const std::string &path, const dbt::TranslationMap &map,
              const x86::Memory &mem, const BranchProfile &prof,
              const dbt::HotnessFn &hotness)
{
    return dbt::saveFile(path,
                         warmStartCapture(map, mem, prof, hotness));
}

} // namespace cdvm::engine
