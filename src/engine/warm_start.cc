#include "engine/warm_start.hh"

#include <algorithm>
#include <unordered_map>

#include "common/logging.hh"

namespace cdvm::engine
{

using dbt::LoadError;
using dbt::NO_RECORD;
using dbt::Repository;
using dbt::SavedChain;
using dbt::SavedTranslation;
using dbt::TransId;
using dbt::Translation;

WarmStartReport
warmStartLoad(const std::string &path, const x86::Memory &mem,
              CodeCacheManager &ccm, BranchProfile &prof,
              EventStream *events)
{
    WarmStartReport rep;
    // TransImage::load maps a v2 image zero-copy and transparently
    // migrates a v1 "CDVMREPO" file through the builder.
    auto img = std::make_shared<dbt::TransImage>();
    rep.error = dbt::TransImage::load(path, *img);
    if (rep.error != LoadError::None) {
        cdvm_debug("warm start: '%s' not loaded (%s)", path.c_str(),
                   dbt::loadErrorName(rep.error));
        return rep;
    }
    rep = warmStartInstall(*img, mem, ccm, prof, events);
    rep.image = std::move(img);
    return rep;
}

WarmStartReport
warmStartInstall(const Repository &repo, const x86::Memory &mem,
                 CodeCacheManager &ccm, BranchProfile &prof,
                 EventStream *events)
{
    WarmStartReport rep;
    rep.ok = true;
    rep.loaded = repo.entries.size();

    const std::unordered_set<std::size_t> stale =
        dbt::staleEntries(repo, mem);

    // Install the fresh records; remember record -> new TransId so
    // the saved chains can be re-bound afterwards.
    std::vector<TransId> record_ids(repo.entries.size());
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        if (stale.count(i)) {
            ++rep.invalidated;
            continue;
        }
        std::unique_ptr<Translation> t = repo.entries[i].materialize();
        if (!t) {
            ++rep.invalidated;
            continue;
        }
        CodeCacheManager::InstallResult res = ccm.install(std::move(t));
        record_ids[i] = res.trans->id;
        ++rep.installed;
        rep.installedInsns += res.trans->numX86Insns;
        if (events) {
            StageEvent ev;
            ev.stage = TracePhase::WarmInstall;
            ev.insns = res.trans->numX86Insns;
            ev.x86Addr = res.trans->entryPc;
            ev.x86Bytes = res.trans->x86Bytes;
            ev.codeAddr = res.trans->codeAddr;
            ev.codeBytes = res.trans->codeBytes;
            ev.arg = res.trans->entryPc;
            ev.transId = res.trans->id.raw();
            events->emit(ev);
        }
    }

    // Every accepted record paid a decode + re-encode copy.
    rep.bodyCopies = rep.installed;

    // Re-bind chains: both ends must have survived (a flush during the
    // warm fill, or an invalidated endpoint, makes resolve fail and
    // the link is simply dropped — the VMM re-chains lazily).
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        Translation *from = ccm.resolve(record_ids[i]);
        if (!from)
            continue;
        for (const SavedChain &c : repo.entries[i].chains) {
            if (c.record == NO_RECORD)
                continue;
            const TransId to = record_ids[c.record];
            if (ccm.resolve(to) && from->addChain(c.targetPc, to))
                ++rep.relocations;
        }
    }

    for (const dbt::SavedBranchStat &b : repo.branchProfile) {
        prof.seed(b.pc, b.taken, b.notTaken);
        ++rep.profileSeeded;
    }
    return rep;
}

WarmStartReport
warmStartInstall(const dbt::TransImage &img, const x86::Memory &mem,
                 CodeCacheManager &ccm, BranchProfile &prof,
                 EventStream *events)
{
    WarmStartReport rep;
    rep.ok = true;
    rep.loaded = img.recordCount();
    rep.mappedBytes = img.sizeBytes();

    // Content-address revalidation: recompute each record's pageKey
    // against THIS context's guest memory. Page hashes are memoized
    // across records so every touched page is hashed exactly once.
    std::unordered_map<Addr, u64> page_hash;
    auto hashOf = [&](Addr page) {
        auto it = page_hash.find(page);
        if (it != page_hash.end())
            return it->second;
        const u64 h = dbt::guestPageHash(mem, page);
        page_hash.emplace(page, h);
        return h;
    };

    std::vector<TransId> record_ids(img.recordCount());
    for (std::size_t i = 0; i < img.recordCount(); ++i) {
        const dbt::TransImage::RecordView v = img.record(i);
        const dbt::ImageRecordHeader &rh = *v.hdr;

        std::vector<std::pair<Addr, u64>> pages;
        for (Addr page : dbt::coveredPages(rh.entryPc, v.x86pcs))
            pages.emplace_back(page, hashOf(page));
        std::sort(pages.begin(), pages.end());
        if (dbt::pageSetKey(pages) != rh.pageKey) {
            ++rep.invalidated;
            continue;
        }

        // Zero-copy: the Translation borrows the body and pc table
        // straight from the mapped image. No decode, no copy.
        auto t = std::make_unique<Translation>();
        t->kind = rh.kind ? dbt::TransKind::Superblock
                          : dbt::TransKind::BasicBlock;
        t->entryPc = rh.entryPc;
        t->numX86Insns = rh.numX86Insns;
        t->x86Bytes = rh.x86Bytes;
        t->fallthroughPc = rh.fallthroughPc;
        t->containsComplex = rh.flags & dbt::IMG_F_COMPLEX;
        t->endsInCti = rh.flags & dbt::IMG_F_ENDS_CTI;
        t->endsInCondBranch = rh.flags & dbt::IMG_F_ENDS_COND;
        t->provenance = static_cast<dbt::TransProvenance>(
            (rh.flags & dbt::IMG_F_PROV_MASK) >> dbt::IMG_F_PROV_SHIFT);
        t->condBranchTarget = rh.condBranchTarget;
        t->condBranchPc = rh.condBranchPc;
        t->execCount = rh.execCount;
        t->takenCount = rh.takenCount;
        t->notTakenCount = rh.notTakenCount;
        t->codeBytes = rh.codeBytes;
        t->mappedUops = v.uops.data();
        t->mappedUopCount = rh.nUops;
        t->mappedPcs = v.x86pcs.data();
        t->mappedPcCount = rh.nPcs;

        CodeCacheManager::InstallResult res = ccm.install(std::move(t));
        record_ids[i] = res.trans->id;
        ++rep.installed;
        rep.installedInsns += res.trans->numX86Insns;
        if (events) {
            StageEvent ev;
            ev.stage = TracePhase::WarmInstall;
            ev.insns = res.trans->numX86Insns;
            ev.x86Addr = res.trans->entryPc;
            ev.x86Bytes = res.trans->x86Bytes;
            ev.codeAddr = res.trans->codeAddr;
            ev.codeBytes = res.trans->codeBytes;
            ev.arg = res.trans->entryPc;
            ev.transId = res.trans->id.raw();
            events->emit(ev);
        }
    }

    // Single relocation pass over the flat table: TransId handles make
    // each fixup one resolve + one slot write; links whose endpoint
    // was invalidated (or flushed mid-fill) drop out naturally.
    for (const dbt::ImageReloc &r : img.relocs()) {
        Translation *from = ccm.resolve(record_ids[r.fromRecord]);
        if (!from)
            continue;
        const TransId to = record_ids[r.toRecord];
        if (ccm.resolve(to) && from->addChain(r.targetPc, to))
            ++rep.relocations;
    }

    for (const dbt::ImageBranchStat &b : img.branchProfile()) {
        prof.seed(b.pc, b.taken, b.notTaken);
        ++rep.profileSeeded;
    }
    return rep;
}

Repository
warmStartCapture(const dbt::TranslationMap &map,
                 const x86::Memory &mem, const BranchProfile &prof,
                 const dbt::HotnessFn &hotness)
{
    Repository repo = dbt::capture(map, mem, hotness);
    prof.forEach([&repo](Addr pc, u64 taken, u64 not_taken) {
        repo.branchProfile.push_back(
            dbt::SavedBranchStat{pc, taken, not_taken});
    });
    return repo;
}

bool
warmStartSave(const std::string &path, const dbt::TranslationMap &map,
              const x86::Memory &mem, const BranchProfile &prof,
              const dbt::HotnessFn &hotness)
{
    return dbt::saveFile(path,
                         warmStartCapture(map, mem, prof, hotness));
}

} // namespace cdvm::engine
