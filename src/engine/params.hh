/**
 * @file
 * The paper's measured staged-emulation constants, in one place.
 *
 * Every layer that needs a number from Hu & Smith, "Reducing Startup
 * Time in Co-Designed Virtual Machines" (ISCA 2006) draws it from
 * here: the translation cost model (dbt/costs.hh), the timing-machine
 * presets (timing/machine_config.cc), the analytical model
 * (analysis/model.hh) and the benches. Each constant cites the paper
 * section it was measured or derived in.
 */

#ifndef CDVM_ENGINE_PARAMS_HH
#define CDVM_ENGINE_PARAMS_HH

#include "common/types.hh"

namespace cdvm::engine::params
{

// --- BBT translation cost, Delta_BBT (Sections 3.2 and 5.3) --------

/** Software-only BBT: native instructions per x86 instruction. */
inline constexpr double BBT_NATIVE_PER_INSN = 105.0;

/** Software-only BBT: cycles per x86 instruction (Section 5.3). */
inline constexpr double BBT_CYCLES_PER_INSN = 83.0;

/** XLTx86-assisted HAloop (VM.be): micro-ops per x86 instruction. */
inline constexpr double BBT_ASSIST_NATIVE_PER_INSN = 11.0;

/** XLTx86-assisted HAloop (VM.be): cycles per x86 instruction. */
inline constexpr double BBT_ASSIST_CYCLES_PER_INSN = 20.0;

/** XLTx86 functional-unit latency in cycles (Section 4.2). */
inline constexpr unsigned XLT_LATENCY_CYCLES = 4;

/**
 * IR-less template BBT (the software XLTx86, dbt/templates): mapping
 * decoded forms straight to pre-baked micro-op templates skips the
 * per-instruction crack/emit pipeline. bench_host_mips measures the
 * template path at ~2.1x fewer host ns per translated instruction
 * than the uop-lowering BBT on the cold-heavy mix (gated >= 2x in
 * perf-smoke CI); the modeled Delta_BBT scales by the same ratio:
 * 83 / 2.1 ~= 40 cycles, 105 / 2.1 = 50 native insns.
 */
inline constexpr double BBT_TMPL_NATIVE_PER_INSN = 50.0;

/** Template BBT: modeled cycles per translated x86 instruction. */
inline constexpr double BBT_TMPL_XLATE = 40.0;

// --- SBT optimization cost, Delta_SBT (Section 3.2) -----------------

/** Measured Delta_SBT in x86 instructions per translated instruction. */
inline constexpr double SBT_DELTA_X86 = 1152.0;

/** Delta_SBT in native instructions (~1.45 native per x86). */
inline constexpr double SBT_NATIVE_PER_INSN = 1674.0;

/** Delta_SBT in cycles per translated x86 instruction. */
inline constexpr double SBT_CYCLES_PER_INSN = 1340.0;

// --- Eq. 2: the hot threshold ---------------------------------------

/**
 * p: speedup of SBT-optimized code over the code it replaces
 * (Section 3.2 quotes the 1.15-1.2 range; Eq. 2 uses 1.15).
 */
inline constexpr double SBT_SPEEDUP_P = 1.15;

/**
 * Rounded Delta_SBT used when the paper instantiates Eq. 2
 * (N = 1200 / 0.15 = 8000).
 */
inline constexpr double SBT_DELTA_X86_ROUNDED = 1200.0;

/** Eq. 2: N = Delta_SBT / (p - 1), the BBT-profiled hot threshold. */
inline constexpr u64 HOT_THRESHOLD = 8000;

/** Hot threshold under interpretation (Section 3.1: ~25). */
inline constexpr u64 INTERP_HOT_THRESHOLD = 25;

// --- Emulation-quality factors (timing model) -----------------------

/**
 * BBT-generated code runs at 82-85 % of SBT-code IPC (Section 5.3);
 * relative to SBT code we model it 10 % slower.
 */
inline constexpr double BBT_VS_SBT_CPI = 1.10;

/** Interpretation is 10x-100x slower than native (Section 1.1). */
inline constexpr double INTERP_SLOWDOWN = 35.0;

// --- Warm-start install cost (this repo's measured constants) -------

/**
 * v1 repository install: per-record varint decode, x86pc side-table
 * re-attachment, re-encode + copy into the code cache — ~3 cycles per
 * installed x86 instruction on the modeled machine.
 */
inline constexpr double WARM_LOAD_DECODE_CPI = 3.0;

/**
 * Zero-copy image install: translations bind views into the mapped
 * image, so the per-instruction work left is the content-address
 * check, arena reservation and the relocation pass — ~1 cycle per
 * installed x86 instruction. Justified by the measured host-side
 * install ratio in bench_warmstart (image.load_ratio_vs_decode,
 * gated >= 2x in CI).
 */
inline constexpr double WARM_LOAD_MAPPED_CPI = 1.0;

} // namespace cdvm::engine::params

#endif // CDVM_ENGINE_PARAMS_HH
