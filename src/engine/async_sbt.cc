#include "engine/async_sbt.hh"

#include <chrono>

#include "common/statreg.hh"

namespace cdvm::engine
{

namespace
{

/** Monotonic host time in nanoseconds (latency telemetry only). */
u64
nowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

AsyncSbtEngine::AsyncSbtEngine(const EngineConfig &cfg,
                               ThreadPool *shared_pool)
    : ownedPool(shared_pool
                    ? nullptr
                    : std::make_unique<ThreadPool>(cfg.asyncTranslators,
                                                   cfg.asyncQueueCap)),
      pool(shared_pool ? shared_pool : ownedPool.get())
{
    // Translators are indexed by the executing worker's context id,
    // so a shared pool needs one per *pool* worker even though this
    // engine may only ever occupy a few of them at once.
    translators.reserve(pool->workers());
    for (unsigned i = 0; i < pool->workers(); ++i)
        translators.emplace_back(cfg.fusion);
}

bool
AsyncSbtEngine::request(Addr seed, dbt::SuperblockTrace trace)
{
    const u64 ticket = nSubmitted;
    const u64 enqueue_ns = nowNs();
    // The trace is moved into the task: the worker owns it outright
    // and never touches guest memory or the branch profile.
    auto work = [this, seed, ticket, enqueue_ns,
                 tr = std::move(trace)](unsigned ctx) {
        AsyncSbtResult r;
        r.seed = seed;
        r.ticket = ticket;
        r.enqueueNs = enqueue_ns;
        r.optStartNs = nowNs();
        r.trans = translators[ctx].translate(tr);
        r.optEndNs = nowNs();
        pushDone(std::move(r));
        nCompleted.fetch_add(1, std::memory_order_relaxed);
    };
    if (!pool->trySubmit(std::move(work))) {
        ++nRejected;
        return false;
    }
    ++nSubmitted;
    inFlight.insert(seed);
    return true;
}

std::optional<AsyncSbtResult>
AsyncSbtEngine::tryPop()
{
    if (doneCount.load(std::memory_order_acquire) == 0)
        return std::nullopt;
    AsyncSbtResult r;
    {
        std::lock_guard<std::mutex> lk(doneMu);
        if (done.empty())
            return std::nullopt;
        r = std::move(done.front());
        done.pop_front();
        doneCount.fetch_sub(1, std::memory_order_release);
    }
    inFlight.erase(r.seed);

    // Latency accounting happens here, on the dispatch thread: the
    // worker's timestamps arrived through the locked queue, and the
    // histograms are never touched anywhere else.
    const u64 drain_ns = nowNs();
    latQueue.add(r.optStartNs - r.enqueueNs);
    latOptimize.add(r.optEndNs - r.optStartNs);
    latDrain.add(drain_ns - r.optEndNs);
    latTotal.add(drain_ns - r.enqueueNs);
    return r;
}

void
AsyncSbtEngine::pushDone(AsyncSbtResult r)
{
    std::lock_guard<std::mutex> lk(doneMu);
    done.push_back(std::move(r));
    doneCount.fetch_add(1, std::memory_order_release);
}

u64
AsyncSbtEngine::superblocksTranslated() const
{
    u64 n = 0;
    for (const dbt::SuperblockTranslator &t : translators)
        n += t.superblocksTranslated();
    return n;
}

u64
AsyncSbtEngine::insnsTranslated() const
{
    u64 n = 0;
    for (const dbt::SuperblockTranslator &t : translators)
        n += t.insnsTranslated();
    return n;
}

u64
AsyncSbtEngine::totalUopsEmitted() const
{
    u64 n = 0;
    for (const dbt::SuperblockTranslator &t : translators)
        n += t.totalUopsEmitted();
    return n;
}

u64
AsyncSbtEngine::totalPairsFused() const
{
    u64 n = 0;
    for (const dbt::SuperblockTranslator &t : translators)
        n += t.totalPairsFused();
    return n;
}

void
AsyncSbtEngine::exportStats(StatRegistry &reg,
                            const std::string &sbt_prefix) const
{
    const u64 uops = totalUopsEmitted();
    const u64 pairs = totalPairsFused();
    reg.set(sbt_prefix + ".superblocks",
            static_cast<double>(superblocksTranslated()),
            "hot superblocks optimized");
    reg.set(sbt_prefix + ".insns",
            static_cast<double>(insnsTranslated()),
            "x86 instructions optimized");
    reg.set(sbt_prefix + ".uops_emitted", static_cast<double>(uops),
            "micro-ops emitted after optimization");
    reg.set(sbt_prefix + ".pairs_fused", static_cast<double>(pairs),
            "macro-op pairs fused");
    reg.set(sbt_prefix + ".fusion_rate",
            uops ? 2.0 * static_cast<double>(pairs) /
                       static_cast<double>(uops)
                 : 0.0,
            "fraction of uops inside fused pairs");

    reg.set("engine.async.contexts",
            static_cast<double>(pool->workers()),
            "background translator contexts");
    reg.set("engine.async.shared_pool", ownedPool ? 0.0 : 1.0,
            "1 when the worker pool is process-shared (fleet mode)");
    reg.set("engine.async.submitted", static_cast<double>(nSubmitted),
            "optimization requests enqueued");
    reg.set("engine.async.executed", static_cast<double>(completed()),
            "optimization requests completed by workers");
    reg.set("engine.async.rejected_full",
            static_cast<double>(nRejected),
            "requests dropped by queue back-pressure");

    // Publish the latency distributions by copy: the registry's JSON
    // dump then carries bucket weights plus p50/p90/p95/p99.
    reg.histogram("engine.async.latency.queue_ns", 2.0, 40,
                  "enqueue -> optimize start (ns)") = latQueue;
    reg.histogram("engine.async.latency.optimize_ns", 2.0, 40,
                  "optimize start -> end (ns)") = latOptimize;
    reg.histogram("engine.async.latency.drain_ns", 2.0, 40,
                  "optimize end -> install drain (ns)") = latDrain;
    reg.histogram("engine.async.latency.total_ns", 2.0, 40,
                  "enqueue -> install drain (ns)") = latTotal;
}

} // namespace cdvm::engine
