#include "engine/staged_pipeline.hh"

#include <algorithm>
#include <cmath>

namespace cdvm::engine
{

using workload::BlockInfo;

StagedPipeline::StagedPipeline(
    const std::vector<BlockInfo> &block_infos,
    const StagedParams &params, EventStream &event_stream)
    : blocks(block_infos), p(params), events(event_stream),
      st(blocks.size()), bbtNext(p.bbtBase), sbtNext(p.sbtBase)
{
    const u32 num_regions =
        blocks.empty() ? 0 : blocks.back().region + 1;
    regions.resize(num_regions);
    regionFirst.assign(num_regions, ~0u);
    regionLast.assign(num_regions, 0);
    for (u32 i = 0; i < blocks.size(); ++i) {
        u32 r = blocks[i].region;
        regionFirst[r] = std::min(regionFirst[r], i);
        regionLast[r] = std::max(regionLast[r], i);
    }
}

void
StagedPipeline::touch(u32 id)
{
    const BlockInfo &b = blocks[id];
    BlockState &bs = st[id];
    RegionState &rs = regions[b.region];

    // Region went hot earlier via a sibling block.
    if (rs.hot && bs.mode != 2)
        bs.mode = 2;

    // --- BBT translation on first touch --------------------------
    if (p.translateCold && bs.mode == 0) {
        bs.bbtBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
        bs.bbtAddr = bbtNext;
        bbtNext += (bs.bbtBytes + 3u) & ~3u;

        StageEvent e;
        e.stage = TracePhase::BbtTranslate;
        e.insns = b.insns;
        e.x86Addr = b.x86Addr;
        e.x86Bytes = b.bytes;
        e.codeAddr = bs.bbtAddr;
        e.codeBytes = bs.bbtBytes;
        e.arg = b.x86Addr;
        events.emit(e);

        StageEvent d;
        d.stage = TracePhase::Dispatch;
        d.instant = true;
        d.arg = b.x86Addr;
        events.emit(d);

        bs.mode = 1;
    }

    // --- hotspot detection & SBT ----------------------------------
    ++bs.exec;
    if (p.hasSbt && !rs.hot && bs.exec == p.hotThreshold) {
        // The region (superblock scope) becomes hot as one unit.
        rs.hot = true;
        u32 region_insns = 0;
        u32 region_bytes = 0;
        for (u32 i = regionFirst[b.region]; i <= regionLast[b.region];
             ++i) {
            region_insns += blocks[i].insns;
            region_bytes += blocks[i].bytes;
            st[i].mode = 2;
        }
        rs.sbtBytes = static_cast<u32>(
            std::lround(region_bytes * p.codeExpansion));
        rs.sbtAddr = sbtNext;
        sbtNext += (rs.sbtBytes + 3u) & ~3u;

        StageEvent e;
        e.stage = TracePhase::SbtOptimize;
        e.insns = region_insns;
        e.x86Addr = blocks[regionFirst[b.region]].x86Addr;
        e.x86Bytes = region_bytes;
        e.codeAddr = rs.sbtAddr;
        e.codeBytes = rs.sbtBytes;
        e.arg = blocks[regionFirst[b.region]].x86Addr;
        events.emit(e);
    }

    // --- execution --------------------------------------------------
    StageEvent e;
    e.insns = b.insns;
    e.x86Addr = b.x86Addr;
    e.x86Bytes = b.bytes;
    e.arg = b.x86Addr;
    if (bs.mode == 2) {
        e.stage = TracePhase::SbtExec;
        // Fetch from the superblock's code-cache image; use the
        // block's proportional offset within the region.
        e.codeAddr =
            rs.sbtAddr +
            static_cast<Addr>(
                (b.x86Addr - blocks[regionFirst[b.region]].x86Addr) *
                p.codeExpansion);
        e.codeBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
    } else if (bs.mode == 1) {
        e.stage = TracePhase::BbtExec;
        e.codeAddr = bs.bbtAddr;
        e.codeBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
    } else {
        e.stage = TracePhase::ColdExec;
    }
    events.emit(e);
}

} // namespace cdvm::engine
