#include "engine/staged_pipeline.hh"

#include <algorithm>
#include <cmath>

namespace cdvm::engine
{

using workload::BlockInfo;

StagedPipeline::StagedPipeline(
    const std::vector<BlockInfo> &block_infos,
    const StagedParams &params, EventStream &event_stream)
    : blocks(block_infos), p(params), events(event_stream),
      st(blocks.size()), bbtNext(p.bbtBase), sbtNext(p.sbtBase)
{
    const u32 num_regions =
        blocks.empty() ? 0 : blocks.back().region + 1;
    regions.resize(num_regions);
    regionFirst.assign(num_regions, ~0u);
    regionLast.assign(num_regions, 0);
    for (u32 i = 0; i < blocks.size(); ++i) {
        u32 r = blocks[i].region;
        regionFirst[r] = std::min(regionFirst[r], i);
        regionLast[r] = std::max(regionLast[r], i);
    }
    ctxFreeAt.assign(p.asyncTranslators, 0.0);

    // Warm start: install the whole repository before the first
    // dispatched instruction. Each block gets its code-cache image up
    // front and skips the per-touch BBT translation below; the cost is
    // whatever the attached cycle model prices a WarmInstall at.
    if (p.warmStart && p.translateCold) {
        for (u32 i = 0; i < blocks.size(); ++i) {
            BlockState &bs = st[i];
            bs.bbtBytes = static_cast<u32>(
                std::lround(blocks[i].bytes * p.codeExpansion));
            bs.bbtAddr = bbtNext;
            bbtNext += (bs.bbtBytes + 3u) & ~3u;
            bs.mode = 1;

            StageEvent e;
            e.stage = TracePhase::WarmInstall;
            e.insns = blocks[i].insns;
            e.x86Addr = blocks[i].x86Addr;
            e.x86Bytes = blocks[i].bytes;
            e.codeAddr = bs.bbtAddr;
            e.codeBytes = bs.bbtBytes;
            e.arg = blocks[i].x86Addr;
            events.emit(e);
        }
    }
}

void
StagedPipeline::optimizeRegion(u32 region, bool background)
{
    RegionState &rs = regions[region];
    rs.hot = true;
    rs.inFlight = false;
    u32 region_insns = 0;
    u32 region_bytes = 0;
    for (u32 i = regionFirst[region]; i <= regionLast[region]; ++i) {
        region_insns += blocks[i].insns;
        region_bytes += blocks[i].bytes;
        st[i].mode = 2;
    }
    rs.sbtBytes = static_cast<u32>(
        std::lround(region_bytes * p.codeExpansion));
    rs.sbtAddr = sbtNext;
    sbtNext += (rs.sbtBytes + 3u) & ~3u;

    StageEvent e;
    e.stage = TracePhase::SbtOptimize;
    e.insns = region_insns;
    e.x86Addr = blocks[regionFirst[region]].x86Addr;
    e.x86Bytes = region_bytes;
    e.codeAddr = rs.sbtAddr;
    e.codeBytes = rs.sbtBytes;
    e.background = background;
    e.arg = blocks[regionFirst[region]].x86Addr;
    events.emit(e);
}

void
StagedPipeline::requestAsync(u32 region)
{
    RegionState &rs = regions[region];
    rs.inFlight = true;

    u32 region_insns = 0;
    for (u32 i = regionFirst[region]; i <= regionLast[region]; ++i)
        region_insns += blocks[i].insns;

    // Occupancy: the request starts when the least-loaded context
    // frees up; the emulation thread never waits.
    std::size_t ctx = 0;
    for (std::size_t i = 1; i < ctxFreeAt.size(); ++i)
        if (ctxFreeAt[i] < ctxFreeAt[ctx])
            ctx = i;
    const double start = std::max(ctxFreeAt[ctx], insnsSoFar);
    const double ready =
        start + static_cast<double>(region_insns) *
                    p.asyncLatencyPerInsn;
    ctxFreeAt[ctx] = ready;
    jobs.push_back(AsyncJob{region, ready});
}

void
StagedPipeline::completeAsyncJobs()
{
    for (std::size_t i = 0; i < jobs.size();) {
        if (jobs[i].readyAt <= insnsSoFar) {
            optimizeRegion(jobs[i].region, true);
            jobs[i] = jobs.back();
            jobs.pop_back();
        } else {
            ++i;
        }
    }
}

void
StagedPipeline::touch(u32 id)
{
    // Background optimizations whose latency elapsed install first,
    // so this touch sees the post-install staging state.
    if (!jobs.empty())
        completeAsyncJobs();

    const BlockInfo &b = blocks[id];
    BlockState &bs = st[id];
    RegionState &rs = regions[b.region];

    // Region went hot earlier via a sibling block.
    if (rs.hot && bs.mode != 2)
        bs.mode = 2;

    // --- BBT translation on first touch --------------------------
    if (p.translateCold && bs.mode == 0) {
        bs.bbtBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
        bs.bbtAddr = bbtNext;
        bbtNext += (bs.bbtBytes + 3u) & ~3u;

        StageEvent e;
        e.stage = TracePhase::BbtTranslate;
        e.insns = b.insns;
        e.x86Addr = b.x86Addr;
        e.x86Bytes = b.bytes;
        e.codeAddr = bs.bbtAddr;
        e.codeBytes = bs.bbtBytes;
        e.arg = b.x86Addr;
        events.emit(e);

        StageEvent d;
        d.stage = TracePhase::Dispatch;
        d.instant = true;
        d.arg = b.x86Addr;
        events.emit(d);

        bs.mode = 1;
    }

    // --- hotspot detection & SBT ----------------------------------
    ++bs.exec;
    if (p.hasSbt && !rs.hot && bs.exec == p.hotThreshold) {
        if (p.asyncTranslators > 0) {
            // The region keeps running in its pre-hot mode while a
            // background context optimizes it.
            if (!rs.inFlight)
                requestAsync(b.region);
        } else {
            // Synchronous: the region (superblock scope) becomes hot
            // as one unit, Delta_SBT charged on the emulation thread.
            optimizeRegion(b.region, false);
        }
    }

    // --- execution --------------------------------------------------
    StageEvent e;
    e.insns = b.insns;
    e.x86Addr = b.x86Addr;
    e.x86Bytes = b.bytes;
    e.arg = b.x86Addr;
    if (bs.mode == 2) {
        e.stage = TracePhase::SbtExec;
        // Fetch from the superblock's code-cache image; use the
        // block's proportional offset within the region.
        e.codeAddr =
            rs.sbtAddr +
            static_cast<Addr>(
                (b.x86Addr - blocks[regionFirst[b.region]].x86Addr) *
                p.codeExpansion);
        e.codeBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
    } else if (bs.mode == 1) {
        e.stage = TracePhase::BbtExec;
        e.codeAddr = bs.bbtAddr;
        e.codeBytes = static_cast<u32>(
            std::lround(b.bytes * p.codeExpansion));
    } else {
        e.stage = TracePhase::ColdExec;
    }
    events.emit(e);
    insnsSoFar += static_cast<double>(b.insns);
}

} // namespace cdvm::engine
