#include "engine/engine_config.hh"

namespace cdvm::engine
{

EngineConfig
EngineConfig::vmSoft()
{
    EngineConfig c;
    c.name = "vm.soft";
    c.cold = ColdKind::SoftwareBbt;
    c.detector = DetectorKind::SoftwareCounters;
    return c;
}

EngineConfig
EngineConfig::vmFe()
{
    EngineConfig c;
    c.name = "vm.fe";
    c.cold = ColdKind::HardwareX86Mode;
    c.detector = DetectorKind::Bbb;
    return c;
}

EngineConfig
EngineConfig::vmBe()
{
    EngineConfig c;
    c.name = "vm.be";
    c.cold = ColdKind::XltAssistedBbt;
    c.detector = DetectorKind::SoftwareCounters;
    return c;
}

EngineConfig
EngineConfig::vmDual()
{
    EngineConfig c;
    c.name = "vm.dual";
    c.cold = ColdKind::XltAssistedBbt;
    c.detector = DetectorKind::Bbb;
    return c;
}

EngineConfig
EngineConfig::vmInterp()
{
    EngineConfig c;
    c.name = "vm.interp";
    c.cold = ColdKind::Interpret;
    c.detector = DetectorKind::SoftwareCounters;
    return c;
}

EngineConfig
EngineConfig::vmSoftTmpl()
{
    EngineConfig c = vmSoft();
    c.name = "vm.soft.tmpl";
    c.cold = ColdKind::TemplateBbt;
    return c;
}

EngineConfig
EngineConfig::vmBeTmpl()
{
    EngineConfig c;
    c.name = "vm.be.tmpl";
    c.cold = ColdKind::TemplateBbt;
    c.detector = DetectorKind::Bbb;
    return c;
}

EngineConfig
EngineConfig::vmSoftAsync(unsigned contexts)
{
    EngineConfig c = vmSoft();
    c.name = "vm.soft.async";
    c.asyncTranslators = contexts;
    return c;
}

EngineConfig
EngineConfig::vmBeAsync(unsigned contexts)
{
    EngineConfig c = vmBe();
    c.name = "vm.be.async";
    c.asyncTranslators = contexts;
    return c;
}

std::optional<EngineConfig>
EngineConfig::byName(const std::string &name)
{
    if (name == "vm.soft")
        return vmSoft();
    if (name == "vm.fe")
        return vmFe();
    if (name == "vm.be")
        return vmBe();
    if (name == "vm.dual")
        return vmDual();
    if (name == "vm.interp")
        return vmInterp();
    if (name == "vm.soft.tmpl")
        return vmSoftTmpl();
    if (name == "vm.be.tmpl")
        return vmBeTmpl();
    if (name == "vm.soft.async")
        return vmSoftAsync();
    if (name == "vm.be.async")
        return vmBeAsync();
    return std::nullopt;
}

std::vector<std::string>
EngineConfig::names()
{
    return {"vm.soft",      "vm.fe",        "vm.be",
            "vm.dual",      "vm.interp",    "vm.soft.tmpl",
            "vm.be.tmpl",   "vm.soft.async", "vm.be.async"};
}

} // namespace cdvm::engine
