#include "engine/backend.hh"

#include <span>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "x86/decoder.hh"

namespace cdvm::engine
{

using dbt::TransKind;
using dbt::Translation;

void
SoftwareBbtBackend::exportStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    xlator.exportStats(reg, prefix);
}

void
TemplateBbtBackend::exportStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    xlator.exportStats(reg, prefix);
}

std::unique_ptr<Translation>
XltBbtBackend::translate(Addr pc)
{
    auto t = std::make_unique<Translation>();
    t->kind = TransKind::BasicBlock;
    t->provenance = dbt::TransProvenance::XltBbt;
    t->entryPc = pc;

    // Block-forming rules mirror the software BBT exactly (same
    // covered instructions, same block-ending conditions), so VM.be
    // translations retire the same totals as VM.soft's.
    Addr cur = pc;
    u8 window[x86::MAX_INSN_LEN + 1];
    unsigned budget = maxInsns;
    bool done = false;
    while (!done && budget > 0) {
        // Straight-line body: the HAloop fetches, XLTx86-decodes and
        // stores encoded micro-ops into the scratch window.
        hwassist::HaLoop::Result r =
            loop.run(cur, SCRATCH_BASE, budget);
        st.xltInsnsTranslated += r.insnsTranslated;

        // Lift the emitted encoding back into the translation,
        // attaching x86-pc provenance per HAloop iteration.
        u32 off = 0;
        for (const hwassist::HaLoop::Step &step : r.steps) {
            std::vector<u8> body =
                mem.readBlock(SCRATCH_BASE + off, step.uopBytes);
            uops::UopVec v;
            if (!uops::decodeAll(
                    std::span<const u8>(body.data(), body.size()), v))
                cdvm_fatal("XLTx86 emitted an undecodable micro-op "
                           "body at x86 pc 0x%llx",
                           static_cast<unsigned long long>(cur));
            for (uops::Uop &u : v) {
                u.x86pc = cur;
                t->uops.push_back(u);
            }
            t->x86pcs.push_back(cur);
            ++t->numX86Insns;
            t->x86Bytes += step.insnLen;
            cur += step.insnLen;
            off += step.uopBytes;
            --budget;
        }
        if (budget == 0)
            break; // block cut at the size limit, as in the BBT

        if (r.stoppedCti) {
            // The branch handler (software path): decode and crack
            // the CTI, terminate the block with branch metadata.
            ++st.xltCtiFallbacks;
            mem.fetchWindow(cur, window, sizeof(window));
            x86::DecodeResult dr = x86::decode(
                std::span<const u8>(window, sizeof(window)), cur);
            if (!dr.ok) {
                if (t->numX86Insns == 0)
                    return nullptr;
                break;
            }
            const x86::Insn &in = dr.insn;
            uops::CrackResult cr = uops::crack(in);
            t->containsComplex = t->containsComplex || cr.complex;
            for (uops::Uop &u : cr.uops)
                t->uops.push_back(u);
            t->x86pcs.push_back(in.pc);
            ++t->numX86Insns;
            t->x86Bytes += in.length;
            cur = in.nextPc();
            t->endsInCti = true;
            if (in.isCondBranch()) {
                t->endsInCondBranch = true;
                t->condBranchTarget = in.target;
                t->condBranchPc = in.pc;
            }
            done = true;
        } else if (r.stoppedComplex) {
            // The complex handler (software path): crack the one
            // instruction in software and resume the HAloop. An
            // undecodable instruction also raises Flag_cmplx; then
            // the block is cut before it (empty block = bad entry).
            mem.fetchWindow(cur, window, sizeof(window));
            x86::DecodeResult dr = x86::decode(
                std::span<const u8>(window, sizeof(window)), cur);
            if (!dr.ok) {
                if (t->numX86Insns == 0)
                    return nullptr;
                break;
            }
            ++st.xltComplexFallbacks;
            const x86::Insn &in = dr.insn;
            uops::CrackResult cr = uops::crack(in);
            t->containsComplex = t->containsComplex || cr.complex;
            for (uops::Uop &u : cr.uops)
                t->uops.push_back(u);
            t->x86pcs.push_back(in.pc);
            ++t->numX86Insns;
            t->x86Bytes += in.length;
            cur = in.nextPc();
            --budget;
        } else {
            done = true; // HAloop consumed the whole budget
        }
    }

    t->fallthroughPc = cur;
    t->codeBytes = uops::encodedBytes(t->uops);
    ++nBlocks;
    nInsns += t->numX86Insns;
    return t;
}

void
XltBbtBackend::exportStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.set(prefix + ".blocks", static_cast<double>(nBlocks),
            "basic blocks translated (HAloop)");
    reg.set(prefix + ".insns", static_cast<double>(nInsns),
            "x86 instructions translated");
    reg.set(prefix + ".insns_per_block",
            nBlocks ? static_cast<double>(nInsns) /
                          static_cast<double>(nBlocks)
                    : 0.0,
            "mean block length");
    xltUnit.exportStats(reg, "hwassist.xlt");
    reg.set("hwassist.haloop.cycles_per_insn",
            loop.measuredCyclesPerInsn(),
            "measured HAloop cycles per x86 instruction");
}

std::unique_ptr<Translation>
SbtBackend::translate(Addr seed_pc)
{
    std::optional<dbt::SuperblockTrace> trace = form(seed_pc);
    if (!trace)
        return nullptr;
    return xlator.translate(*trace);
}

std::optional<dbt::SuperblockTrace>
SbtBackend::form(Addr seed_pc)
{
    dbt::SuperblockFormer former(mem, bias, policy);
    std::optional<dbt::SuperblockTrace> trace = former.form(seed_pc);
    if (!trace || trace->insns.empty())
        return std::nullopt;
    return trace;
}

void
SbtBackend::exportStats(StatRegistry &reg,
                        const std::string &prefix) const
{
    xlator.exportStats(reg, prefix);
}

} // namespace cdvm::engine
