#include "engine/hotspot.hh"

#include "common/statreg.hh"

namespace cdvm::engine
{

void
SoftwareCounterDetector::exportStats(StatRegistry &reg) const
{
    reg.set("engine.cold_counters.entries",
            static_cast<double>(coldCounts.size()),
            "cold-block entry counters resident");
    reg.set("engine.cold_counters.evictions",
            static_cast<double>(coldCounts.evictions()),
            "cold-block counters evicted at capacity");
}

void
BbbDetector::exportStats(StatRegistry &reg) const
{
    buf.exportStats(reg, "hwassist.bbb");
}

} // namespace cdvm::engine
