/**
 * @file
 * Cold-code executors: the ColdExecutor strategy implementations.
 *
 *  - InterpretColdExecutor: one instruction at a time through the
 *    interpreter (the paper's startup-worst-case, Fig. 2);
 *  - X86ModeColdExecutor: direct execution through the dual-mode
 *    decoders (VM.fe) -- functionally the interpreter, but the decode
 *    traffic is accounted to the hardware first-level decoder;
 *  - BbtColdExecutor: translate-style; wraps a TranslationBackend
 *    (software BBT or the XLTx86-assisted HAloop) and lets the
 *    dispatch core install + run the produced translation.
 */

#ifndef CDVM_ENGINE_COLD_EXEC_HH
#define CDVM_ENGINE_COLD_EXEC_HH

#include <memory>

#include "engine/engine_config.hh"
#include "engine/profile.hh"
#include "engine/strategy.hh"
#include "hwassist/dualmode.hh"
#include "x86/decode_cache.hh"
#include "x86/memory.hh"

namespace cdvm::engine
{

/** Shared body of the execute-style cold executors. */
class DirectColdExecutor : public ColdExecutor
{
  public:
    /**
     * decode_cache_lines sizes the decoded-instruction cache shared
     * by every block this executor runs (0 disables: each step
     * re-fetches and re-decodes raw bytes, the pre-fast-path cost).
     */
    DirectColdExecutor(x86::Memory &memory, EngineStats &stats,
                       BranchProfile &branch_prof,
                       std::size_t decode_cache_lines = 0)
        : mem(memory),
          st(stats),
          prof(branch_prof),
          dcache(decode_cache_lines
                     ? std::make_unique<x86::DecodeCache>(
                           decode_cache_lines)
                     : nullptr)
    {
    }

    bool translatesColdCode() const override { return false; }

    x86::Exit execute(x86::CpuState &cpu, InstCount budget,
                      InstCount &retired) override;

    void exportStats(StatRegistry &reg) const override;

    /** The decoded-instruction cache (null when disabled). */
    const x86::DecodeCache *
    decodeCache() const override
    {
        return dcache.get();
    }

  protected:
    /** Per-instruction retire accounting hook. */
    virtual void onRetire() = 0;
    /** Block-completion hook (n = instructions retired). */
    virtual void
    onBlockDone(u64 /*n*/)
    {
    }

    x86::Memory &mem;
    EngineStats &st;
    BranchProfile &prof;
    std::unique_ptr<x86::DecodeCache> dcache;
};

/** Interpretation of cold code (vm.interp). */
class InterpretColdExecutor final : public DirectColdExecutor
{
  public:
    using DirectColdExecutor::DirectColdExecutor;

    TracePhase phase() const override { return TracePhase::Interp; }

  protected:
    void onRetire() override { ++st.insnsInterp; }
};

/** Hardware x86-mode execution of cold code (vm.fe). */
class X86ModeColdExecutor final : public DirectColdExecutor
{
  public:
    X86ModeColdExecutor(x86::Memory &memory, EngineStats &stats,
                        BranchProfile &branch_prof,
                        std::size_t decode_cache_lines = 0)
        : DirectColdExecutor(memory, stats, branch_prof,
                             decode_cache_lines),
          dual(memory)
    {
        // The machine boots fetching architected code: the first-level
        // decoder starts (and stays) powered until translated native
        // code exists to run.
        dual.setMode(hwassist::DecodeMode::X86);
    }

    TracePhase phase() const override { return TracePhase::X86Mode; }

    x86::Exit
    execute(x86::CpuState &cpu, InstCount budget,
            InstCount &retired) override
    {
        dual.setMode(hwassist::DecodeMode::X86);
        x86::Exit e = DirectColdExecutor::execute(cpu, budget, retired);
        dual.setMode(hwassist::DecodeMode::Native);
        return e;
    }

    void exportStats(StatRegistry &reg) const override;

    const hwassist::DualModeDecoder &decoder() const { return dual; }

  protected:
    void onRetire() override { ++st.insnsX86Mode; }

    void
    onBlockDone(u64 n) override
    {
        // The retired instructions were first-level decoded by the
        // hardware; account the decode traffic and the powered-on
        // x86-mode cycles (one work unit per instruction).
        dual.noteDecoded(n);
        dual.tick(n);
    }

  private:
    hwassist::DualModeDecoder dual;
};

/** Translate-style cold execution: BBT via a pluggable backend. */
class BbtColdExecutor final : public ColdExecutor
{
  public:
    explicit BbtColdExecutor(std::unique_ptr<TranslationBackend> be)
        : backend(std::move(be))
    {
    }

    bool translatesColdCode() const override { return true; }

    std::unique_ptr<dbt::Translation>
    translate(Addr pc) override
    {
        return backend->translate(pc);
    }

    void exportStats(StatRegistry &reg) const override;

    TranslationBackend &bbtBackend() { return *backend; }
    const TranslationBackend &bbtBackend() const { return *backend; }

  private:
    std::unique_ptr<TranslationBackend> backend;
};

} // namespace cdvm::engine

#endif // CDVM_ENGINE_COLD_EXEC_HH
