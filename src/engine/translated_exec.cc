#include "engine/translated_exec.hh"

#include "common/logging.hh"

namespace cdvm::engine
{

using dbt::TransKind;
using dbt::Translation;

x86::Exit
TranslatedExecutor::run(x86::CpuState &cpu, Translation *t,
                        InstCount &retired)
{
    // Checkpoint for precise-state recovery.
    const x86::CpuState checkpoint = cpu;

    ustate.loadArch(cpu);
    uops::UopExecutor exe(ustate, mem);
    uops::BlockResult br = exe.run(t->code(), t->fallthroughPc);
    ustate.storeArch(cpu);

    const bool is_sbt = t->kind == TransKind::Superblock;

    if (br.exit == uops::BlockExit::Fault) {
        // Precise state mapping -- re-execute with the interpreter
        // from the region entry until the fault re-occurs (Fig. 1).
        ++st.preciseStateRecoveries;
        cpu = checkpoint;
        x86::Interpreter interp(cpu, mem);
        for (unsigned n = 0; n <= t->numX86Insns + 1; ++n) {
            x86::StepResult sr = interp.step();
            if (sr.exit != x86::Exit::None)
                return sr.exit;
            ++retired;
            if (is_sbt)
                ++st.insnsSbtCode;
            else
                ++st.insnsBbtCode;
        }
        cdvm_panic("translated fault at pc 0x%llx did not reproduce "
                   "under interpretation",
                   static_cast<unsigned long long>(br.faultX86Pc));
    }

    // Count retired x86 instructions: position of the last completed
    // instruction within the region.
    u64 insns = t->numX86Insns;
    if (br.exit == uops::BlockExit::Branch && is_sbt) {
        // A side exit may leave the superblock early.
        int last = br.uopsRun > 0
                       ? static_cast<int>(br.uopsRun) - 1
                       : 0;
        const std::span<const uops::Uop> body = t->code();
        const std::span<const Addr> pcs = t->pcSpan();
        Addr last_pc = body[static_cast<std::size_t>(last)].x86pc;
        for (std::size_t i = 0; i < pcs.size(); ++i) {
            if (pcs[i] == last_pc) {
                insns = i + 1;
                break;
            }
        }
    }
    retired += insns;
    cpu.icount += insns;
    if (is_sbt) {
        st.insnsSbtCode += insns;
        st.uopsSbtCode += br.uopsRun;
    } else {
        st.insnsBbtCode += insns;
        st.uopsBbtCode += br.uopsRun;
    }

    if (br.exit == uops::BlockExit::VmExit) {
        cpu.eip = static_cast<u32>(br.nextPc);
        return x86::Exit::Halted;
    }

    cpu.eip = static_cast<u32>(br.nextPc);

    // Branch-direction profiling on the region's terminating branch.
    if (t->endsInCondBranch) {
        if (cpu.eip == t->condBranchTarget) {
            ++t->takenCount;
            prof.record(t->condBranchPc, true);
        } else if (cpu.eip == t->fallthroughPc) {
            ++t->notTakenCount;
            prof.record(t->condBranchPc, false);
        }
    }
    return x86::Exit::None;
}

} // namespace cdvm::engine
