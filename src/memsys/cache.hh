/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * The model tracks tags only (contents are functional memory's
 * business); it answers hit/miss and maintains recency state. Both the
 * conventional processor and the co-designed VM use the same model, so
 * cache-warming effects in the startup experiments are apples to
 * apples (paper Section 3.1).
 */

#ifndef CDVM_MEMSYS_CACHE_HH
#define CDVM_MEMSYS_CACHE_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::memsys
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u32 sizeBytes = 64 * 1024;
    u32 assoc = 2;
    u32 lineBytes = 64;
    Cycles latency = 2; //!< access latency when this level hits
};

/** Tag-only set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access the line containing addr; allocates on miss, updates LRU.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Look up without changing state. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing addr (if present). */
    void invalidate(Addr addr);

    /** Drop all contents (empty-cache startup scenario). */
    void flush();

    const CacheParams &params() const { return p; }
    u64 hits() const { return nHits; }
    u64 misses() const { return nMisses; }
    u32 numSets() const { return sets; }

    /** Publish hit/miss counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        u64 lastUse = 0;
    };

    u32 setOf(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams p;
    u32 sets;
    unsigned lineShift;
    std::vector<Line> lines; //!< sets * assoc, row-major by set
    u64 clock = 0;
    u64 nHits = 0;
    u64 nMisses = 0;
};

} // namespace cdvm::memsys

#endif // CDVM_MEMSYS_CACHE_HH
