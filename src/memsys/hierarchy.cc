#include "memsys/hierarchy.hh"

#include "common/bitfield.hh"

namespace cdvm::memsys
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : p(params), il1(p.l1i), dl1(p.l1d), ul2(p.l2)
{
}

Cycles
Hierarchy::access(Addr addr, Side side)
{
    Cache &l1 = side == Side::Fetch ? il1 : dl1;
    if (l1.access(addr))
        return l1.params().latency;
    if (ul2.access(addr))
        return ul2.params().latency;
    return p.memLatency;
}

Cycles
Hierarchy::accessRange(Addr addr, u64 len, Side side)
{
    if (len == 0)
        return 0;
    const Addr line = il1.params().lineBytes;
    Addr first = alignDown(addr, line);
    Addr last = alignDown(addr + len - 1, line);
    Cycles total = 0;
    for (Addr a = first; a <= last; a += line)
        total += access(a, side);
    return total;
}

void
Hierarchy::flushAll()
{
    il1.flush();
    dl1.flush();
    ul2.flush();
}

void
Hierarchy::exportStats(StatRegistry &reg,
                       const std::string &prefix) const
{
    il1.exportStats(reg, prefix + ".l1i");
    dl1.exportStats(reg, prefix + ".l1d");
    ul2.exportStats(reg, prefix + ".l2");
}

} // namespace cdvm::memsys
