/**
 * @file
 * The Table 2 memory hierarchy: split L1 I/D, unified L2, main memory.
 *
 * All four machine configurations of the paper share this hierarchy:
 *   L1 I-cache: 64 KB, 2-way, 64 B lines, 2-cycle latency
 *   L1 D-cache: 64 KB, 8-way, 64 B lines, 3-cycle latency
 *   L2:          2 MB, 8-way, 64 B lines, 12-cycle latency
 *   Memory:     168 CPU cycles
 */

#ifndef CDVM_MEMSYS_HIERARCHY_HH
#define CDVM_MEMSYS_HIERARCHY_HH

#include "memsys/cache.hh"

namespace cdvm::memsys
{

/** Hierarchy-wide parameters. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 2, 64, 2};
    CacheParams l1d{"l1d", 64 * 1024, 8, 64, 3};
    CacheParams l2{"l2", 2 * 1024 * 1024, 8, 64, 12};
    Cycles memLatency = 168;
};

/** Which side of the split L1 an access uses. */
enum class Side : u8
{
    Fetch,
    Data,
};

/** Split-L1 + unified-L2 + memory model. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /**
     * Access one address (the line containing it) and return the
     * total latency in cycles: L1 latency on an L1 hit, L2 latency on
     * an L2 hit, memory latency otherwise. Fills lines on the way.
     */
    Cycles access(Addr addr, Side side);

    /**
     * Access every line overlapping [addr, addr+len) and return the
     * summed latency (used for multi-line code regions).
     */
    Cycles accessRange(Addr addr, u64 len, Side side);

    /** Empty all levels (memory-startup scenario 2). */
    void flushAll();

    Cache &l1i() { return il1; }
    Cache &l1d() { return dl1; }
    Cache &l2() { return ul2; }
    Cycles memLatency() const { return p.memLatency; }

    /** Publish each level's counters under prefix.{l1i,l1d,l2}. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    HierarchyParams p;
    Cache il1;
    Cache dl1;
    Cache ul2;
};

} // namespace cdvm::memsys

#endif // CDVM_MEMSYS_HIERARCHY_HH
