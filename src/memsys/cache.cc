#include "memsys/cache.hh"

#include <cassert>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/statreg.hh"

namespace cdvm::memsys
{

Cache::Cache(const CacheParams &params) : p(params)
{
    if (!isPowerOf2(p.lineBytes) || !isPowerOf2(p.sizeBytes))
        cdvm_fatal("cache %s: size/line must be powers of two",
                   p.name.c_str());
    if (p.sizeBytes % (p.lineBytes * p.assoc) != 0)
        cdvm_fatal("cache %s: size not divisible by line*assoc",
                   p.name.c_str());
    sets = p.sizeBytes / (p.lineBytes * p.assoc);
    lineShift = floorLog2(p.lineBytes);
    lines.resize(static_cast<std::size_t>(sets) * p.assoc);
}

u32
Cache::setOf(Addr addr) const
{
    return static_cast<u32>((addr >> lineShift) & (sets - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

bool
Cache::access(Addr addr)
{
    ++clock;
    const Addr tag = tagOf(addr);
    Line *base = &lines[static_cast<std::size_t>(setOf(addr)) * p.assoc];
    Line *victim = base;
    for (u32 w = 0; w < p.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = clock;
            ++nHits;
            return true;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }
    ++nMisses;
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const Addr tag = tagOf(addr);
    const Line *base =
        &lines[static_cast<std::size_t>(setOf(addr)) * p.assoc];
    for (u32 w = 0; w < p.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::invalidate(Addr addr)
{
    const Addr tag = tagOf(addr);
    Line *base = &lines[static_cast<std::size_t>(setOf(addr)) * p.assoc];
    for (u32 w = 0; w < p.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return;
        }
    }
}

void
Cache::flush()
{
    for (Line &l : lines)
        l.valid = false;
}

void
Cache::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    const u64 accesses = nHits + nMisses;
    reg.set(prefix + ".hits", static_cast<double>(nHits),
            "accesses served by this level");
    reg.set(prefix + ".misses", static_cast<double>(nMisses),
            "accesses passed to the next level");
    reg.set(prefix + ".miss_rate",
            accesses ? static_cast<double>(nMisses) /
                           static_cast<double>(accesses)
                     : 0.0,
            "miss fraction");
}

} // namespace cdvm::memsys
