/**
 * @file
 * Persistent translation repository: save a TranslationMap's contents
 * (and a branch-direction profile) to a versioned binary file and load
 * it back in a later run, so a warm-started VM skips most of the BBT
 * startup transient the paper measures.
 *
 * The handle refactor makes this possible: a Translation is a
 * relocatable value (chains are {targetPc, TransId}, never pointers;
 * codeAddr is recomputed at install time), so a saved record is just
 * the translation's value fields plus its micro-op body re-encoded
 * through uops/encoding. Chains are saved as indices into the record
 * table and re-bound to fresh TransIds after the load-time installs.
 *
 * On-disk format (all fields little-endian):
 *
 *   u64 magic "CDVMREPO" | u32 version | u32 reserved
 *   u32 nPages   { u64 pageAddr, u64 fnv1aHashOfPage }*
 *   u32 nEntries { kind/flags, pcs, counts, profile, chains,
 *                  x86pc side table, encoded uop body }*
 *   u32 nBranch  { u64 pc, u64 taken, u64 notTaken }*
 *   u64 fnv1aChecksumOfEverythingAbove
 *
 * Robustness: deserialize() rejects bad magic, unknown versions,
 * truncation, and any bit flip (whole-file checksum). Staleness is
 * per-entry: the per-page hashes of the guest code captured at save
 * time are compared against current guest memory at load time, and
 * any entry touching a changed page is invalidated (the VM silently
 * falls back to cold translation for it).
 */

#ifndef CDVM_DBT_PERSIST_HH
#define CDVM_DBT_PERSIST_HH

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "dbt/lookup.hh"
#include "dbt/translation.hh"
#include "x86/memory.hh"

namespace cdvm::dbt
{

/** Repository file magic ("CDVMREPO" as a little-endian u64). */
constexpr u64 REPO_MAGIC = 0x4F5045524D564443ull;
/** Current repository format version. */
constexpr u32 REPO_VERSION = 1;

/** Why a repository failed to load. */
enum class LoadError
{
    None,
    Io,         //!< file missing / unreadable
    BadMagic,   //!< not a repository file
    BadVersion, //!< format version mismatch
    Truncated,  //!< file ends mid-record
    Corrupt,    //!< checksum mismatch (bit flip) or malformed record
};

const char *loadErrorName(LoadError e);

/**
 * errno captured at this thread's most recent failing I/O operation on
 * a repository/image load or save path (0 = no failure recorded).
 * LoadError::Io says *that* an OS call failed; this says *why*.
 */
int lastIoErrno();
/** Record errno detail for lastIoErrno() (load/save internals). */
void setLastIoErrno(int err);
/** loadErrorName() plus, for Io, the captured strerror detail. */
std::string loadErrorDetail(LoadError e);

/** Chain record: target PC plus the successor's record index. */
struct SavedChain
{
    Addr targetPc = 0;
    /** Index into Repository::entries; NO_RECORD when unchained or
     *  the successor was not captured. */
    u32 record = 0xFFFFFFFFu;
};

constexpr u32 NO_RECORD = 0xFFFFFFFFu;

/** One branch-profile entry (engine::BranchProfile contents). */
struct SavedBranchStat
{
    Addr pc = 0;
    u64 taken = 0;
    u64 notTaken = 0;
};

/**
 * One serialized translation: every value field of dbt::Translation
 * except codeAddr (recomputed when the body is re-installed into a
 * fresh code cache) and id (assigned by the map at re-insert).
 */
struct SavedTranslation
{
    TransKind kind = TransKind::BasicBlock;
    Addr entryPc = 0;
    u32 numX86Insns = 0;
    u32 x86Bytes = 0;
    Addr fallthroughPc = 0;
    bool containsComplex = false;
    bool endsInCti = false;
    bool endsInCondBranch = false;
    /** Producing tier (two spare bits of the entry flags byte; old
     *  files read back as SwBbt). */
    TransProvenance provenance = TransProvenance::SwBbt;
    Addr condBranchTarget = 0;
    Addr condBranchPc = 0;
    u64 execCount = 0;
    u64 takenCount = 0;
    u64 notTakenCount = 0;
    SavedChain chains[2];
    std::vector<Addr> x86pcs;
    std::vector<u8> body; //!< encoded micro-op sequence
    /**
     * Per-micro-op precise-state tags (Uop::x86pc). The binary uop
     * encoding round-trips every semantic field but deliberately not
     * this provenance tag, so the repository carries it as a side
     * table and materialize() re-attaches it.
     */
    std::vector<Addr> uopPcs;

    /**
     * Rebuild an installable Translation (body decoded back to uops;
     * chains NOT applied — the installer re-binds them to the fresh
     * TransIds). Returns null if the body does not decode.
     */
    std::unique_ptr<Translation> materialize() const;

    /** The 4K guest pages this translation's x86 code touches. */
    std::vector<Addr> coveredPages() const;
};

/**
 * The 4K guest pages a translated region touches (conservative: each
 * covered instruction may straddle into the next page). Shared by the
 * v1 repository and the v2 image's content-address revalidation.
 */
std::vector<Addr> coveredPages(Addr entry_pc,
                               std::span<const Addr> x86pcs);

/** An in-memory repository: what the file format carries. */
struct Repository
{
    /** Guest code pages referenced by any entry, with content hash. */
    std::vector<std::pair<Addr, u64>> pageHashes;
    std::vector<SavedTranslation> entries;
    std::vector<SavedBranchStat> branchProfile;
};

/** FNV-1a over a byte span (the format's page and file hash). */
u64 fnv1a(std::span<const u8> bytes);

/** fnv1a content hash of one 4K guest code page (staleness unit). */
u64 guestPageHash(const x86::Memory &mem, Addr page);

/**
 * Rank of a translation for hotness-ordered capture; bigger = hotter.
 */
using HotnessFn = std::function<u64(const Translation &)>;

/**
 * Capture every live translation in the map (branch profile is
 * appended by the caller — it lives in the engine layer). Chains are
 * captured as record indices; links into translations that are not
 * themselves live (e.g. overwritten ones) are dropped.
 *
 * With a hotness function, entries are ordered hottest-first (ties by
 * ascending entry PC), so a warm start installs the most valuable
 * translations before the code-cache arenas can fill and flush.
 * Without one, map iteration order is kept.
 */
Repository capture(const TranslationMap &map, const x86::Memory &mem,
                   const HotnessFn &hotness = {});

/** Serialize to the on-disk byte format (checksum appended). */
std::vector<u8> serialize(const Repository &repo);

/** Parse and verify a byte image; out is valid only on None. */
LoadError deserialize(std::span<const u8> bytes, Repository &out);

/**
 * Indices of entries whose guest code changed since capture: any
 * entry touching a page whose saved hash no longer matches current
 * guest memory (or whose page was never hashed).
 */
std::unordered_set<std::size_t> staleEntries(const Repository &repo,
                                             const x86::Memory &mem);

/**
 * Atomically replace path with bytes: write a temp file in the same
 * directory, flush it to stable storage (fsync where available), then
 * rename() over path. A concurrent reader of path sees either the old
 * complete file or the new complete file, never a torn mix — the
 * contract the image host relies on when compacting under live
 * mappers. On failure the temp file is removed and lastIoErrno() has
 * the detail.
 */
bool atomicWriteFile(const std::string &path, std::span<const u8> bytes);

/** Write the serialized repository to path (atomic replace). */
bool saveFile(const std::string &path, const Repository &repo);

/** Read and deserialize path. */
LoadError loadFile(const std::string &path, Repository &out);

} // namespace cdvm::dbt

#endif // CDVM_DBT_PERSIST_HH
