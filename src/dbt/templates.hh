/**
 * @file
 * IR-less template cold tier: a software XLTx86.
 *
 * The software BBT lowers every x86 instruction through the uop IR
 * (decode -> crack -> emit) before anything executes; the paper's
 * XLTx86 unit shows that translating *without* the per-instruction
 * lowering pipeline is where the cold-start cycles go. This module
 * plays that role in software: a rule table maps decoded instruction
 * *forms* (x86::FormKey) straight to pre-baked micro-op templates
 * that are specialized by value substitution -- register numbers,
 * immediates, displacements and branch targets are patched into a
 * copied skeleton; no cracker runs on the translation path.
 *
 * Rules are not hand-written. At table construction each candidate
 * form is *learned* from the cracker itself: two synthetic probe
 * instructions of the form are cracked, every varying parameter is
 * given a distinct probe delta, and each micro-op field whose value
 * moved by exactly one parameter's delta becomes an affine patch
 * (field = param + offset; the offset covers reg-4 high-byte forms,
 * Ret's ESP adjust of 4 + imm, and friends). Any field whose movement
 * is not explained by exactly one parameter aborts learning for that
 * form, so every rule in the table is specialization-exact against
 * the cracker *by construction* -- the template tier can never emit a
 * micro-op sequence the software BBT would not have emitted.
 *
 * Blocks containing an instruction with no matching rule fall back
 * per-block to the ordinary BasicBlockTranslator, so coverage can
 * grow incrementally and block shapes stay identical to VM.soft.
 */

#ifndef CDVM_DBT_TEMPLATES_HH
#define CDVM_DBT_TEMPLATES_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "dbt/bbt.hh"
#include "dbt/translation.hh"
#include "uops/uop.hh"
#include "x86/form.hh"
#include "x86/insn.hh"

namespace cdvm
{
class StatRegistry;
namespace x86
{
class Memory;
}
} // namespace cdvm

namespace cdvm::dbt
{

/** The value parameters a template rule can substitute. */
enum TmplParam : u8
{
    TP_DST_REG,   //!< dst register number
    TP_SRC_REG,   //!< src register number
    TP_SRC_IMM,   //!< src immediate
    TP_SRC2_IMM,  //!< src2 immediate (3-operand imul)
    TP_MEM_BASE,  //!< base register of the memory operand
    TP_MEM_INDEX, //!< index register of the memory operand
    TP_MEM_SCALE, //!< index scale of the memory operand
    TP_MEM_DISP,  //!< displacement of the memory operand
    TP_COND,      //!< condition code (Jcc / Setcc)
    TP_TARGET,    //!< direct branch target
    TP_NEXT_PC,   //!< fall-through pc (call return address)
    TP_NUM_PARAMS,
};

/** The patchable integer fields of a micro-op. */
enum TmplField : u8
{
    TF_DST,
    TF_SRC1,
    TF_SRC2,
    TF_SIZE,
    TF_SCALE,
    TF_COND,
    TF_IMM,
    TF_TARGET,
    TF_NUM_FIELDS,
};

/** One learned substitution: skeleton[uop].field = param + offset. */
struct TmplPatch
{
    u8 uop;     //!< index into the rule skeleton
    u8 field;   //!< TmplField
    u8 param;   //!< TmplParam
    i64 offset; //!< affine offset (e.g. -4 for AH-family registers)
};

/** A pre-baked translation template for one instruction form. */
struct TemplateRule
{
    /**
     * Complexity of the specialized instruction (crack's
     * `isComplex || encodedBytes > 16`). Learning bounds the encoded
     * size reachable under any substitution; when the bound decides
     * the flag for every possible specialization it is baked here and
     * the per-instruction encoded-size recompute is skipped.
     */
    enum Complexity : u8 { Never, Always, Depends };

    x86::FormKey key = 0;
    uops::UopVec skeleton;          //!< baked micro-ops (probe-A values)
    std::vector<TmplPatch> patches; //!< value substitutions to apply
    /** Op-level complexity (x86::Insn::isComplex; form-invariant). */
    bool insnComplex = false;
    Complexity complexity = Depends;
    /** Encoded bytes of the skeleton micro-ops no patch touches. */
    u16 fixedBytes = 0;
    /** Skeleton indices touched by >= 1 patch (ascending, deduped). */
    std::vector<u8> patchedUops;
};

/** Parameter vector extracted from a decoded instruction. */
using TmplParams = std::array<i64, TP_NUM_PARAMS>;

/** Extract the substitutable values of a decoded instruction. */
TmplParams extractTmplParams(const x86::Insn &in);

/**
 * The process-wide immutable rule table, learned from the cracker
 * once on first use and shared by every template backend.
 */
class TemplateRuleTable
{
  public:
    /** The shared instance (built on first call, then immutable). */
    static const TemplateRuleTable &instance();

    /**
     * Look up the rule for a form. With coverage_pct < 100 only the
     * first coverage_pct% of rules (in deterministic enumeration
     * order) are visible -- the ablation knob behind
     * `bench_host_mips --ablate-tmpl`.
     */
    const TemplateRule *find(x86::FormKey key,
                             unsigned coverage_pct = 100) const;

    size_t numRules() const { return rules.size(); }

    /** Rules in deterministic enumeration order (lint / ablation). */
    const TemplateRule &ruleAt(size_t i) const { return rules[i]; }

    /**
     * Specialize a rule for a concrete instruction, appending the
     * micro-ops to `out`. Returns the per-instruction complex flag
     * (when learning could not bound the encoded size, it depends on
     * the substituted immediates and is recomputed here, exactly as
     * crack() computes it). When `bytes_out` is non-null it receives
     * the encoded size of the appended micro-ops, letting the caller
     * accumulate a block's code bytes without a second encode pass.
     */
    static bool specialize(const TemplateRule &r, const x86::Insn &in,
                           uops::UopVec &out,
                           unsigned *bytes_out = nullptr);

    TemplateRuleTable();

  private:
    std::vector<TemplateRule> rules;
    /**
     * Open-addressed FormKey -> rule-index map (power-of-two sized,
     * linear probing, <= 50% load). find() sits on the per-instruction
     * translation path, so it avoids the node allocation and pointer
     * chase of std::unordered_map.
     */
    struct Slot
    {
        u32 key = 0;
        u32 idx = EMPTY_SLOT;
    };
    static constexpr u32 EMPTY_SLOT = 0xffffffffu;
    std::vector<Slot> index;
    u32 indexMask = 0;
};

/**
 * Block former for the template tier: mirrors
 * BasicBlockTranslator::translate exactly, but specializes templates
 * instead of cracking. The first rule miss in a block discards the
 * partial work and delegates the whole block to the embedded software
 * translator, so every produced block has the same boundaries VM.soft
 * would produce.
 */
class TemplateTranslator
{
  public:
    TemplateTranslator(x86::Memory &m, unsigned max_insns,
                       unsigned coverage_pct = 100);

    std::unique_ptr<Translation> translate(Addr pc);

    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    u64 templatedBlocks() const { return nTmplBlocks; }
    u64 templatedInsns() const { return nTmplInsns; }
    u64 fallbackBlocks() const { return nFallbackBlocks; }
    u64 fallbackInsns() const { return nFallbackInsns; }

  private:
    x86::Memory &mem;
    const TemplateRuleTable &table;
    BasicBlockTranslator fallback;
    unsigned maxInsns;
    unsigned coveragePct;

    /**
     * Reusable per-translator build buffers: blocks are formed here
     * and copied into the Translation once committed, so the
     * persistent vectors are exact-sized and the hot loop never
     * reallocates after warmup.
     */
    uops::UopVec scratchUops;
    std::vector<Addr> scratchPcs;

    u64 nTmplBlocks = 0;     //!< blocks fully built from templates
    u64 nTmplInsns = 0;      //!< instructions specialized in those blocks
    u64 nRuleHits = 0;       //!< successful rule lookups (committed)
    u64 nFallbackBlocks = 0; //!< blocks delegated to the software BBT
    u64 nFallbackInsns = 0;  //!< instructions translated by fallback
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_TEMPLATES_HH
