/**
 * @file
 * The translation lookup table: architected PC -> translation.
 *
 * The VMM runtime consults this map on every dispatch that is not
 * covered by chaining (Fig. 1b "Translation Lookup in Code Cache").
 */

#ifndef CDVM_DBT_LOOKUP_HH
#define CDVM_DBT_LOOKUP_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "dbt/translation.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** Owning map from x86 entry PC to translation. */
class TranslationMap
{
  public:
    /** Find a translation for pc, preferring superblocks. */
    Translation *lookup(Addr pc);

    /** Find only a translation of the given kind. */
    Translation *lookup(Addr pc, TransKind kind);

    /** Register a new translation (takes ownership). */
    Translation *insert(std::unique_ptr<Translation> t);

    /** Remove every translation of the given kind (arena flush). */
    void eraseKind(TransKind kind);

    /** Remove everything. */
    void clear();

    std::size_t size() const { return bbt.size() + sbt.size(); }
    std::size_t numBasicBlocks() const { return bbt.size(); }
    std::size_t numSuperblocks() const { return sbt.size(); }
    u64 lookups() const { return nLookups; }
    u64 lookupMisses() const { return nMisses; }

    /** Publish lookup/occupancy counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /** Visit every live translation. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const auto &kv : bbt)
            fn(*kv.second);
        for (const auto &kv : sbt)
            fn(*kv.second);
    }

  private:
    using Map = std::unordered_map<Addr, std::unique_ptr<Translation>>;

    /** Drop chains in every translation that point into a doomed map. */
    void unchainAll();

    Map bbt;
    Map sbt;
    u64 nLookups = 0;
    u64 nMisses = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_LOOKUP_HH
