/**
 * @file
 * The translation lookup table: architected PC -> translation.
 *
 * The VMM runtime consults this map on every dispatch that is not
 * covered by chaining (Fig. 1b "Translation Lookup in Code Cache"),
 * which makes it the hottest host-side data structure in the whole
 * reproduction. Two implementations live behind one interface:
 *
 *  - the **flat fast path** (default): a single open-addressing hash
 *    table with power-of-two capacity and fibonacci (multiplicative)
 *    hashing on the PC. Each slot holds the PC and both per-kind
 *    translation ids, so one probe sequence resolves the
 *    SBT-preferred dispatch lookup. The table is insert-only between
 *    flushes (no tombstones); eraseKind rebuilds from the surviving
 *    installs in O(live). In front of it sits a small direct-mapped
 *    **dispatch lookaside cache** (pc -> resolved TransId,
 *    negative entries included) that is epoch-invalidated on every
 *    flush and entry-updated on every install;
 *
 *  - the **legacy baseline** (fastDispatch=false / --legacy-lookup):
 *    the original two chained std::unordered_map probes, kept
 *    selectable so bench_host_mips can A/B the dispatch cost.
 *
 * Ownership is one generational arena: insert allocates a slot (from
 * the free list or by appending) and stamps the translation with its
 * TransId {slot, generation}; eraseKind frees every slot of that kind
 * and bumps the freed slots' generations, so every handle into the
 * flushed kind — chains, the lookaside, the VMM's last-executed
 * cursor — resolves to nullptr from then on. An insert that
 * overwrites an existing pc/kind entry keeps the old translation
 * alive (and safely chainable) until the next flush of its kind
 * instead of leaving dangling references; overwrites are counted and
 * exported.
 */

#ifndef CDVM_DBT_LOOKUP_HH
#define CDVM_DBT_LOOKUP_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbt/translation.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** Fibonacci (multiplicative) hash: scrambles low-entropy PCs. */
inline u64
fibHash(u64 pc)
{
    return pc * 0x9E3779B97F4A7C15ull;
}

/** Owning map from x86 entry PC to translation. */
class TranslationMap
{
  public:
    /** Capacity presets and mode selection (VmmConfig-sized). */
    struct Config
    {
        /** Flat open-addressing table (false: legacy two-map probe). */
        bool flat = true;
        /** Initial table capacity hint (entries; rounded to pow2). */
        std::size_t reserveEntries = 4096;
        /** Dispatch lookaside entries (pow2; 0 disables). */
        std::size_t lookasideEntries = 256;
    };

    TranslationMap() : TranslationMap(Config{}) {}
    explicit TranslationMap(const Config &cfg);

    /** Find a translation for pc, preferring superblocks. */
    Translation *lookup(Addr pc);

    /** Find only a translation of the given kind. */
    Translation *lookup(Addr pc, TransKind kind);

    /** Resolve a handle; nullptr if null, freed, or from a past life. */
    Translation *
    resolve(TransId id)
    {
        if (id.idx == 0 || id.idx > arena.size())
            return nullptr;
        ArenaEntry &e = arena[id.idx - 1];
        return e.gen == id.gen ? e.t.get() : nullptr;
    }

    const Translation *
    resolve(TransId id) const
    {
        return const_cast<TranslationMap *>(this)->resolve(id);
    }

    /** Register a new translation (takes ownership, assigns its id). */
    Translation *insert(std::unique_ptr<Translation> t);

    /** Remove every translation of the given kind (arena flush). */
    void eraseKind(TransKind kind);

    /** Remove everything. */
    void clear();

    /** Pre-size the table for n live translations (rehash avoidance). */
    void reserve(std::size_t n);

    std::size_t size() const { return liveCount(0) + liveCount(1); }
    std::size_t numBasicBlocks() const { return liveCount(0); }
    std::size_t numSuperblocks() const { return liveCount(1); }
    u64 lookups() const { return nLookups; }
    u64 lookupMisses() const { return nMisses; }
    u64 overwrites() const { return nOverwrites; }
    u64 rehashes() const { return nRehashes; }
    u64 lookasideHits() const { return lsHits; }
    u64 lookasideMisses() const { return lsMisses; }
    /** Current flush epoch (bumped by eraseKind/clear). */
    u64 flushEpoch() const { return epoch; }
    /** Flat-table slot capacity (0 in legacy mode). */
    std::size_t capacity() const { return slots.size(); }
    bool flatMode() const { return conf.flat; }

    /** Publish lookup/occupancy counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /** Visit every live (table-reachable) translation, install order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned k = 0; k < 2; ++k) {
            for (TransId id : order[k]) {
                const Translation *t = resolve(id);
                if (t && isLive(t))
                    fn(*t);
            }
        }
    }

  private:
    /** One arena slot: the owned translation plus its generation. */
    struct ArenaEntry
    {
        std::unique_ptr<Translation> t;
        u32 gen = 1;
    };

    /**
     * One flat-table slot: the PC plus both per-kind ids, so the
     * SBT-preferred lookup resolves in a single probe sequence. A slot
     * with both ids null is empty (the table is insert-only between
     * flushes, so no tombstones exist).
     */
    struct Slot
    {
        Addr pc = 0;
        TransId byKind[2];

        bool empty() const { return !byKind[0] && !byKind[1]; }
    };

    /** Direct-mapped lookaside entry: resolved dispatch at an epoch. */
    struct LsEntry
    {
        Addr pc = 0;
        u64 epoch = 0; //!< 0: never filled
        TransId trans; //!< null: cached negative result
    };

    static unsigned kindIdx(TransKind k)
    {
        return k == TransKind::BasicBlock ? 0 : 1;
    }

    std::size_t liveCount(unsigned k) const
    {
        return order[k].size() - overwritten[k];
    }

    /** True when t is still reachable through the table. */
    bool isLive(const Translation *t) const;

    Slot *findSlot(Addr pc);
    const Slot *findSlot(Addr pc) const;
    /** Find pc's slot or the empty slot where it belongs. */
    Slot &probeFor(Addr pc);
    void growTo(std::size_t new_cap);
    void maybeGrow();
    void rebuildFromOrder();
    /** Refill / invalidate the lookaside line for pc. */
    void lsUpdate(Addr pc, TransId t);

    /** Drop chains in every translation that points into a doomed set. */
    void unchainAll();

    /** Free one arena slot: destroy + generation bump. */
    void freeEntry(TransId id);

    Translation *legacyLookup(Addr pc);
    Translation *flatLookup(Addr pc);

    Config conf;

    // Ownership: the generational arena. Freed slots go on the free
    // list with a bumped generation; `order[k]` records the install
    // order per kind ([0]=BBT, [1]=SBT) for flushes and rebuilds, and
    // `overwritten` counts installs no longer reachable through the
    // table (pc/kind overwrites).
    std::vector<ArenaEntry> arena;
    std::vector<u32> freeList; //!< 0-based arena indices
    std::vector<TransId> order[2];
    std::size_t overwritten[2] = {0, 0};

    // Flat fast path.
    std::vector<Slot> slots; //!< pow2 capacity; empty when legacy
    std::size_t slotsUsed = 0;
    std::vector<LsEntry> lookaside; //!< pow2; empty when disabled
    u64 epoch = 1; //!< flush epoch; lookaside entries from older epochs
                   //!< are stale by construction

    // Legacy baseline: the original two chained-hashing probes
    // (non-owning; the arena owns in both modes).
    using LegacyMap = std::unordered_map<Addr, TransId>;
    LegacyMap legacy[2];

    u64 nLookups = 0;
    u64 nMisses = 0;
    u64 nOverwrites = 0;
    u64 nRehashes = 0;
    u64 lsHits = 0;
    u64 lsMisses = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_LOOKUP_HH
