/**
 * @file
 * The translation lookup table: architected PC -> translation.
 *
 * The VMM runtime consults this map on every dispatch that is not
 * covered by chaining (Fig. 1b "Translation Lookup in Code Cache"),
 * which makes it the hottest host-side data structure in the whole
 * reproduction. Two implementations live behind one interface:
 *
 *  - the **flat fast path** (default): a single open-addressing hash
 *    table with power-of-two capacity and fibonacci (multiplicative)
 *    hashing on the PC. Each slot holds the PC and both per-kind
 *    translation pointers, so one probe sequence resolves the
 *    SBT-preferred dispatch lookup. The table is insert-only between
 *    flushes (no tombstones); eraseKind rebuilds from the surviving
 *    arena in O(live). In front of it sits a small direct-mapped
 *    **dispatch lookaside cache** (pc -> resolved Translation*,
 *    negative entries included) that is epoch-invalidated on every
 *    flush and entry-updated on every install;
 *
 *  - the **legacy baseline** (fastDispatch=false / --legacy-lookup):
 *    the original two chained std::unordered_map probes, kept
 *    selectable so bench_host_mips can A/B the dispatch cost.
 *
 * Ownership is per-kind arena vectors in both modes: insert appends
 * the unique_ptr to its kind's arena and eraseKind drops the whole
 * arena at once. An insert that overwrites an existing pc/kind entry
 * therefore keeps the old translation alive (and safely chainable)
 * until the next flush instead of leaving dangling chain pointers;
 * overwrites are counted and exported.
 */

#ifndef CDVM_DBT_LOOKUP_HH
#define CDVM_DBT_LOOKUP_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "dbt/translation.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** Fibonacci (multiplicative) hash: scrambles low-entropy PCs. */
inline u64
fibHash(u64 pc)
{
    return pc * 0x9E3779B97F4A7C15ull;
}

/** Owning map from x86 entry PC to translation. */
class TranslationMap
{
  public:
    /** Capacity presets and mode selection (VmmConfig-sized). */
    struct Config
    {
        /** Flat open-addressing table (false: legacy two-map probe). */
        bool flat = true;
        /** Initial table capacity hint (entries; rounded to pow2). */
        std::size_t reserveEntries = 4096;
        /** Dispatch lookaside entries (pow2; 0 disables). */
        std::size_t lookasideEntries = 256;
    };

    TranslationMap() : TranslationMap(Config{}) {}
    explicit TranslationMap(const Config &cfg);

    /** Find a translation for pc, preferring superblocks. */
    Translation *lookup(Addr pc);

    /** Find only a translation of the given kind. */
    Translation *lookup(Addr pc, TransKind kind);

    /** Register a new translation (takes ownership). */
    Translation *insert(std::unique_ptr<Translation> t);

    /** Remove every translation of the given kind (arena flush). */
    void eraseKind(TransKind kind);

    /** Remove everything. */
    void clear();

    /** Pre-size the table for n live translations (rehash avoidance). */
    void reserve(std::size_t n);

    std::size_t size() const { return liveCount(0) + liveCount(1); }
    std::size_t numBasicBlocks() const { return liveCount(0); }
    std::size_t numSuperblocks() const { return liveCount(1); }
    u64 lookups() const { return nLookups; }
    u64 lookupMisses() const { return nMisses; }
    u64 overwrites() const { return nOverwrites; }
    u64 rehashes() const { return nRehashes; }
    u64 lookasideHits() const { return lsHits; }
    u64 lookasideMisses() const { return lsMisses; }
    /** Current flush epoch (bumped by eraseKind/clear). */
    u64 flushEpoch() const { return epoch; }
    /** Flat-table slot capacity (0 in legacy mode). */
    std::size_t capacity() const { return slots.size(); }
    bool flatMode() const { return conf.flat; }

    /** Publish lookup/occupancy counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

    /** Visit every live translation. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (unsigned k = 0; k < 2; ++k) {
            for (const auto &t : arena[k]) {
                if (t && isLive(t.get()))
                    fn(*t);
            }
        }
    }

  private:
    /**
     * One flat-table slot: the PC plus both per-kind pointers, so the
     * SBT-preferred lookup resolves in a single probe sequence. A slot
     * with both pointers null is empty (the table is insert-only
     * between flushes, so no tombstones exist).
     */
    struct Slot
    {
        Addr pc = 0;
        Translation *byKind[2] = {nullptr, nullptr};

        bool empty() const { return !byKind[0] && !byKind[1]; }
    };

    /** Direct-mapped lookaside entry: resolved dispatch at an epoch. */
    struct LsEntry
    {
        Addr pc = 0;
        u64 epoch = 0; //!< 0: never filled
        Translation *trans = nullptr;
    };

    static unsigned kindIdx(TransKind k)
    {
        return k == TransKind::BasicBlock ? 0 : 1;
    }

    std::size_t liveCount(unsigned k) const
    {
        return arena[k].size() - overwritten[k];
    }

    /** True when t is still reachable through the table. */
    bool isLive(const Translation *t) const;

    Slot *findSlot(Addr pc);
    const Slot *findSlot(Addr pc) const;
    /** Find pc's slot or the empty slot where it belongs. */
    Slot &probeFor(Addr pc);
    void growTo(std::size_t new_cap);
    void maybeGrow();
    void rebuildFromArenas();
    /** Refill / invalidate the lookaside line for pc. */
    void lsUpdate(Addr pc, Translation *t);

    /** Drop chains in every translation that points into a doomed set. */
    void unchainAll();

    Translation *legacyLookup(Addr pc);
    Translation *flatLookup(Addr pc);

    Config conf;

    // Ownership: per-kind arenas ([0]=BBT, [1]=SBT). Entries stay until
    // the kind is flushed; `overwritten` counts arena entries no longer
    // reachable through the table (pc/kind overwrites).
    std::vector<std::unique_ptr<Translation>> arena[2];
    std::size_t overwritten[2] = {0, 0};

    // Flat fast path.
    std::vector<Slot> slots; //!< pow2 capacity; empty when legacy
    std::size_t slotsUsed = 0;
    std::vector<LsEntry> lookaside; //!< pow2; empty when disabled
    u64 epoch = 1; //!< flush epoch; lookaside entries from older epochs
                   //!< are stale by construction

    // Legacy baseline: the original two chained-hashing probes
    // (non-owning; the arenas own in both modes).
    using LegacyMap = std::unordered_map<Addr, Translation *>;
    LegacyMap legacy[2];

    u64 nLookups = 0;
    u64 nMisses = 0;
    u64 nOverwrites = 0;
    u64 nRehashes = 0;
    u64 lsHits = 0;
    u64 lsMisses = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_LOOKUP_HH
