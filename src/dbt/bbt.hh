/**
 * @file
 * BBT -- the light-weight basic block translator.
 *
 * When cold code is first executed, the BBT decodes one basic block
 * (up to and including its terminating control transfer), cracks it
 * into micro-ops, and produces a translation for the basic block code
 * cache. No optimization is applied (paper Section 2); profiling
 * instrumentation is accounted separately by the VMM.
 */

#ifndef CDVM_DBT_BBT_HH
#define CDVM_DBT_BBT_HH

#include <memory>

#include "dbt/translation.hh"
#include "x86/memory.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** Basic block translator. */
class BasicBlockTranslator
{
  public:
    /**
     * @param memory    Guest memory holding architected code.
     * @param max_insns Basic blocks are cut after this many x86
     *                  instructions even without a CTI.
     */
    explicit BasicBlockTranslator(x86::Memory &memory,
                                  unsigned max_insns = 64)
        : mem(memory), maxInsns(max_insns)
    {
    }

    /**
     * Translate the basic block starting at pc.
     * @return the translation, or nullptr if the first instruction
     *         does not decode.
     */
    std::unique_ptr<Translation> translate(Addr pc);

    u64 blocksTranslated() const { return nBlocks; }
    u64 insnsTranslated() const { return nInsns; }

    /** Publish translation counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    x86::Memory &mem;
    unsigned maxInsns;
    u64 nBlocks = 0;
    u64 nInsns = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_BBT_HH
