/**
 * @file
 * Superblock formation: following the hot path from a detected
 * hotspot seed (paper Section 2, Hwu et al. superblocks [17]).
 *
 * The former walks basic blocks starting at the seed, consulting a
 * branch-direction profile supplied by the VMM (software profiling
 * counters for VM.soft / VM.be; hardware profiling for VM.fe), and
 * emits a single-entry multiple-exit dynamic trace for the SBT.
 */

#ifndef CDVM_DBT_SUPERBLOCK_HH
#define CDVM_DBT_SUPERBLOCK_HH

#include <functional>
#include <optional>
#include <vector>

#include "x86/insn.hh"
#include "x86/memory.hh"

namespace cdvm::dbt
{

/** Formation limits and heuristics. */
struct SuperblockPolicy
{
    unsigned maxX86Insns = 200;  //!< trace length cap
    unsigned maxBlocks = 40;     //!< constituent basic block cap
    /** Follow a conditional edge only when its bias is at least this. */
    double minBias = 0.6;
};

/** One instruction on a formed trace. */
struct TraceInsn
{
    x86::Insn insn;
    /**
     * For conditional branches: true if the trace continues along the
     * taken edge (the SBT then inverts the condition so the hot path
     * falls through).
     */
    bool takenOnTrace = false;
};

/** A formed superblock trace. */
struct SuperblockTrace
{
    Addr entryPc = 0;
    std::vector<TraceInsn> insns;
    std::vector<Addr> blockEntries; //!< constituent block entry PCs
    Addr fallthroughPc = 0;         //!< x86 PC after the trace end
    bool endsInCti = false;
};

/**
 * Taken-bias oracle for a conditional branch at the given PC;
 * nullopt when the branch has never been profiled.
 */
using BranchBiasFn = std::function<std::optional<double>(Addr branch_pc)>;

/** Hot-path trace former. */
class SuperblockFormer
{
  public:
    SuperblockFormer(x86::Memory &memory, BranchBiasFn bias,
                     const SuperblockPolicy &policy = {})
        : mem(memory), biasOf(std::move(bias)), pol(policy)
    {
    }

    /**
     * Form a superblock starting at seed_pc.
     * @return nullopt if the seed does not decode.
     */
    std::optional<SuperblockTrace> form(Addr seed_pc);

  private:
    x86::Memory &mem;
    BranchBiasFn biasOf;
    SuperblockPolicy pol;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_SUPERBLOCK_HH
