/**
 * @file
 * SBT -- the hot superblock translator / optimizer.
 *
 * Takes a formed hot-path trace, cracks it into micro-ops with the
 * trace linearized (on-trace conditional branches inverted so the hot
 * path falls through, unconditional jumps and followed calls elided),
 * then runs the optimization pipeline (dead-flag elimination and
 * macro-op fusion).
 */

#ifndef CDVM_DBT_SBT_HH
#define CDVM_DBT_SBT_HH

#include <memory>

#include "dbt/optimize.hh"
#include "dbt/superblock.hh"
#include "dbt/translation.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** Superblock translator. */
class SuperblockTranslator
{
  public:
    explicit SuperblockTranslator(const uops::FusionConfig &fusion = {})
        : fusionCfg(fusion)
    {
    }

    /** Translate and optimize a formed trace. */
    std::unique_ptr<Translation> translate(const SuperblockTrace &trace);

    u64 superblocksTranslated() const { return nSuperblocks; }
    u64 insnsTranslated() const { return nInsns; }
    const OptimizeStats &lastStats() const { return lastOpt; }

    /** Cumulative fusion statistics across all translations. */
    u64 totalUopsEmitted() const { return nUops; }
    u64 totalPairsFused() const { return nPairs; }

    /** Publish translation/fusion counters under prefix. */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    uops::FusionConfig fusionCfg;
    OptimizeStats lastOpt;
    u64 nSuperblocks = 0;
    u64 nInsns = 0;
    u64 nUops = 0;
    u64 nPairs = 0;
};

/** Invert an x86 condition code (JE <-> JNE etc.). */
x86::Cond invertCond(x86::Cond cc);

} // namespace cdvm::dbt

#endif // CDVM_DBT_SBT_HH
