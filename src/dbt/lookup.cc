#include "dbt/lookup.hh"

#include "common/statreg.hh"

namespace cdvm::dbt
{

Translation *
TranslationMap::lookup(Addr pc)
{
    ++nLookups;
    auto it = sbt.find(pc);
    if (it != sbt.end())
        return it->second.get();
    it = bbt.find(pc);
    if (it != bbt.end())
        return it->second.get();
    ++nMisses;
    return nullptr;
}

Translation *
TranslationMap::lookup(Addr pc, TransKind kind)
{
    Map &m = kind == TransKind::BasicBlock ? bbt : sbt;
    auto it = m.find(pc);
    return it == m.end() ? nullptr : it->second.get();
}

Translation *
TranslationMap::insert(std::unique_ptr<Translation> t)
{
    Map &m = t->kind == TransKind::BasicBlock ? bbt : sbt;
    Translation *raw = t.get();
    m[t->entryPc] = std::move(t);
    return raw;
}

void
TranslationMap::unchainAll()
{
    for (auto &kv : bbt)
        kv.second->clearChains();
    for (auto &kv : sbt)
        kv.second->clearChains();
}

void
TranslationMap::eraseKind(TransKind kind)
{
    // Chains may cross kinds, so conservatively unchain everything;
    // surviving translations re-chain lazily through the VMM.
    unchainAll();
    (kind == TransKind::BasicBlock ? bbt : sbt).clear();
}

void
TranslationMap::clear()
{
    bbt.clear();
    sbt.clear();
}

void
TranslationMap::exportStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.set(prefix + ".lookups", static_cast<double>(nLookups),
            "dispatch lookups not covered by chaining");
    reg.set(prefix + ".misses", static_cast<double>(nMisses),
            "lookups that found no translation");
    reg.set(prefix + ".live_basic_blocks",
            static_cast<double>(bbt.size()),
            "live BBT translations");
    reg.set(prefix + ".live_superblocks",
            static_cast<double>(sbt.size()),
            "live SBT translations");
}

} // namespace cdvm::dbt
