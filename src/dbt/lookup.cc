#include "dbt/lookup.hh"

#include "common/logging.hh"
#include "common/statreg.hh"

namespace cdvm::dbt
{

namespace
{

std::size_t
roundPow2(std::size_t n, std::size_t min_cap)
{
    std::size_t cap = min_cap;
    while (cap < n)
        cap <<= 1;
    return cap;
}

} // namespace

TranslationMap::TranslationMap(const Config &cfg) : conf(cfg)
{
    if (conf.flat) {
        slots.resize(roundPow2(conf.reserveEntries, 64));
        if (conf.lookasideEntries)
            lookaside.resize(roundPow2(conf.lookasideEntries, 16));
    }
}

bool
TranslationMap::isLive(const Translation *t) const
{
    const unsigned k = kindIdx(t->kind);
    if (conf.flat) {
        const Slot *s = findSlot(t->entryPc);
        return s && s->byKind[k] == t->id;
    }
    auto it = legacy[k].find(t->entryPc);
    return it != legacy[k].end() && it->second == t->id;
}

TranslationMap::Slot *
TranslationMap::findSlot(Addr pc)
{
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = fibHash(pc) >> 32 & mask;; i = (i + 1) & mask) {
        Slot &s = slots[i];
        if (s.empty())
            return nullptr;
        if (s.pc == pc)
            return &s;
    }
}

const TranslationMap::Slot *
TranslationMap::findSlot(Addr pc) const
{
    return const_cast<TranslationMap *>(this)->findSlot(pc);
}

TranslationMap::Slot &
TranslationMap::probeFor(Addr pc)
{
    const std::size_t mask = slots.size() - 1;
    for (std::size_t i = fibHash(pc) >> 32 & mask;; i = (i + 1) & mask) {
        Slot &s = slots[i];
        if (s.empty() || s.pc == pc)
            return s;
    }
}

void
TranslationMap::growTo(std::size_t new_cap)
{
    std::vector<Slot> old = std::move(slots);
    slots.assign(new_cap, Slot{});
    slotsUsed = 0;
    ++nRehashes;
    for (const Slot &s : old) {
        if (s.empty())
            continue;
        Slot &d = probeFor(s.pc);
        d = s;
        ++slotsUsed;
    }
}

void
TranslationMap::maybeGrow()
{
    // Keep the load factor under 3/4 so probe chains stay short even
    // with collision-heavy synthetic PCs.
    if ((slotsUsed + 1) * 4 >= slots.size() * 3)
        growTo(slots.size() * 2);
}

void
TranslationMap::rebuildFromOrder()
{
    for (Slot &s : slots)
        s = Slot{};
    slotsUsed = 0;
    for (unsigned k = 0; k < 2; ++k) {
        // Replay the surviving installs in order so a pc/kind
        // overwrite resolves to the most recent translation, as
        // before.
        for (TransId id : order[k]) {
            const Translation *t = resolve(id);
            if (!t)
                continue;
            maybeGrow();
            Slot &s = probeFor(t->entryPc);
            if (s.empty()) {
                ++slotsUsed;
                s.pc = t->entryPc;
            }
            s.byKind[k] = id;
        }
    }
}

void
TranslationMap::lsUpdate(Addr pc, TransId t)
{
    if (lookaside.empty())
        return;
    LsEntry &e =
        lookaside[fibHash(pc) >> 32 & (lookaside.size() - 1)];
    e.pc = pc;
    e.epoch = epoch;
    e.trans = t;
}

Translation *
TranslationMap::flatLookup(Addr pc)
{
    // Dispatch lookaside: one direct-mapped line resolves the common
    // case (same cold pc re-dispatched, or a hot pc between chains).
    // Negative results are cached too; both stay correct because an
    // install at pc refreshes the line and a flush bumps the epoch.
    if (!lookaside.empty()) {
        LsEntry &e =
            lookaside[fibHash(pc) >> 32 & (lookaside.size() - 1)];
        if (e.pc == pc && e.epoch == epoch) {
            ++lsHits;
            Translation *t = resolve(e.trans);
            if (!t)
                ++nMisses;
            return t;
        }
        ++lsMisses;
    }
    TransId tid;
    if (const Slot *s = findSlot(pc))
        tid = s->byKind[1] ? s->byKind[1] : s->byKind[0];
    Translation *t = resolve(tid);
    if (!t)
        ++nMisses;
    lsUpdate(pc, tid);
    return t;
}

Translation *
TranslationMap::legacyLookup(Addr pc)
{
    auto it = legacy[1].find(pc);
    if (it != legacy[1].end())
        return resolve(it->second);
    it = legacy[0].find(pc);
    if (it != legacy[0].end())
        return resolve(it->second);
    ++nMisses;
    return nullptr;
}

Translation *
TranslationMap::lookup(Addr pc)
{
    ++nLookups;
    return conf.flat ? flatLookup(pc) : legacyLookup(pc);
}

Translation *
TranslationMap::lookup(Addr pc, TransKind kind)
{
    ++nLookups;
    const unsigned k = kindIdx(kind);
    TransId tid;
    if (conf.flat) {
        if (const Slot *s = findSlot(pc))
            tid = s->byKind[k];
    } else {
        auto it = legacy[k].find(pc);
        tid = it == legacy[k].end() ? NO_TRANS : it->second;
    }
    Translation *t = resolve(tid);
    if (!t)
        ++nMisses;
    return t;
}

Translation *
TranslationMap::insert(std::unique_ptr<Translation> t)
{
    const unsigned k = kindIdx(t->kind);
    const Addr pc = t->entryPc;

    // Allocate an arena slot (reusing a freed one keeps the arena
    // dense across flush cycles) and stamp the translation's id.
    u32 slot;
    if (!freeList.empty()) {
        slot = freeList.back();
        freeList.pop_back();
    } else {
        slot = static_cast<u32>(arena.size());
        arena.emplace_back();
    }
    ArenaEntry &ae = arena[slot];
    const TransId id{slot + 1, ae.gen};
    t->id = id;
    Translation *raw = t.get();
    ae.t = std::move(t);
    order[k].push_back(id);

    if (conf.flat) {
        maybeGrow();
        Slot &s = probeFor(pc);
        if (s.empty()) {
            ++slotsUsed;
            s.pc = pc;
        } else if (s.byKind[k]) {
            // Same pc/kind installed again: the old translation stays
            // in the arena (chains into it remain safe) but is no
            // longer dispatchable. Count it instead of leaking stats.
            ++nOverwrites;
            ++overwritten[k];
        }
        s.byKind[k] = id;
        // Refresh the lookaside line with the new SBT-preferred
        // resolution so a cached (possibly negative) entry for this pc
        // cannot go stale.
        lsUpdate(pc, s.byKind[1] ? s.byKind[1] : s.byKind[0]);
    } else {
        auto [it, fresh] = legacy[k].try_emplace(pc, id);
        if (!fresh) {
            ++nOverwrites;
            ++overwritten[k];
            it->second = id;
        }
    }
    return raw;
}

void
TranslationMap::unchainAll()
{
    for (unsigned k = 0; k < 2; ++k) {
        for (TransId id : order[k]) {
            if (Translation *t = resolve(id))
                t->clearChains();
        }
    }
}

void
TranslationMap::freeEntry(TransId id)
{
    ArenaEntry &e = arena[id.idx - 1];
    e.t.reset();
    ++e.gen; // any surviving handle to this slot now resolves null
    freeList.push_back(id.idx - 1);
}

void
TranslationMap::eraseKind(TransKind kind)
{
    // Chains may cross kinds, so conservatively unchain everything;
    // surviving translations re-chain lazily through the VMM.
    unchainAll();
    const unsigned k = kindIdx(kind);
    for (TransId id : order[k])
        freeEntry(id);
    order[k].clear();
    overwritten[k] = 0;
    ++epoch; // every lookaside line is now stale by construction
    if (conf.flat)
        rebuildFromOrder(); // O(live in the surviving kind)
    else
        legacy[k].clear();
}

void
TranslationMap::clear()
{
    for (unsigned k = 0; k < 2; ++k) {
        for (TransId id : order[k])
            freeEntry(id);
        order[k].clear();
        overwritten[k] = 0;
        legacy[k].clear();
    }
    ++epoch;
    for (Slot &s : slots)
        s = Slot{};
    slotsUsed = 0;
}

void
TranslationMap::reserve(std::size_t n)
{
    if (conf.flat) {
        // Size for load factor < 3/4 at n entries.
        std::size_t want = roundPow2(n + n / 2, 64);
        if (want > slots.size())
            growTo(want);
    } else {
        legacy[0].reserve(n);
        legacy[1].reserve(n);
    }
}

void
TranslationMap::exportStats(StatRegistry &reg,
                            const std::string &prefix) const
{
    reg.set(prefix + ".lookups", static_cast<double>(nLookups),
            "dispatch lookups not covered by chaining");
    reg.set(prefix + ".misses", static_cast<double>(nMisses),
            "lookups that found no translation");
    reg.set(prefix + ".overwrites", static_cast<double>(nOverwrites),
            "installs that replaced a live pc/kind entry");
    reg.set(prefix + ".live_basic_blocks",
            static_cast<double>(numBasicBlocks()),
            "live BBT translations");
    reg.set(prefix + ".live_superblocks",
            static_cast<double>(numSuperblocks()),
            "live SBT translations");
    reg.set(prefix + ".flat", conf.flat ? 1.0 : 0.0,
            "1: flat fast-path table, 0: legacy two-map baseline");
    if (conf.flat) {
        reg.set(prefix + ".capacity",
                static_cast<double>(slots.size()),
                "flat-table slot capacity");
        reg.set(prefix + ".rehashes", static_cast<double>(nRehashes),
                "flat-table growth rehashes");
        reg.set(prefix + ".flush_epoch", static_cast<double>(epoch),
                "lookaside invalidation epoch");
    }
    if (!lookaside.empty()) {
        reg.set(prefix + ".lookaside.hits",
                static_cast<double>(lsHits),
                "dispatches resolved by the lookaside cache");
        reg.set(prefix + ".lookaside.misses",
                static_cast<double>(lsMisses),
                "dispatches that fell through to the table");
        const u64 total = lsHits + lsMisses;
        reg.set(prefix + ".lookaside.hit_rate",
                total ? static_cast<double>(lsHits) /
                            static_cast<double>(total)
                      : 0.0,
                "lookaside hit fraction of non-chained dispatches");
    }
}

} // namespace cdvm::dbt
