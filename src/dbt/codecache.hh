/**
 * @file
 * Code caches: concealed main-memory regions holding translations.
 *
 * The VM reserves two arenas (one for BBT blocks, one for SBT
 * superblocks, Fig. 1). Allocation is bump-pointer; when an arena
 * fills, the classic flush-everything policy applies and the VMM
 * re-translates on demand -- the retranslation behaviour the paper's
 * multitasking discussion worries about, exercised directly by the
 * code-cache ablation bench.
 */

#ifndef CDVM_DBT_CODECACHE_HH
#define CDVM_DBT_CODECACHE_HH

#include <string>

#include "common/types.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::dbt
{

/** One bump-allocated translation arena. */
class CodeCache
{
  public:
    CodeCache(std::string name, Addr base, u64 capacity);

    /**
     * Allocate len bytes. Returns the code-cache address, or 0 when
     * the arena is full (caller must flush and retry).
     */
    Addr allocate(u64 len);

    /** Drop all contents (the flush eviction policy). */
    void flush();

    Addr base() const { return start; }
    u64 capacity() const { return cap; }
    u64 used() const { return next - start; }
    u64 flushes() const { return nFlushes; }
    u64 bytesEverAllocated() const { return totalAllocated; }
    const std::string &name() const { return label; }

    /** Publish occupancy/flush counters under prefix (dotted path). */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;

  private:
    std::string label;
    Addr start;
    u64 cap;
    Addr next;
    u64 nFlushes = 0;
    u64 totalAllocated = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_CODECACHE_HH
