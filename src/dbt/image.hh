/**
 * @file
 * Zero-copy shared translation image: the warm-start repository laid
 * out as one contiguous, page-aligned, content-addressed blob that is
 * mmap'd (or adopted with a single memcpy) and patched in a single
 * relocation pass.
 *
 * The v1 repository (dbt/persist) decodes and copies every record
 * body at load: varint uop decode, x86pc side-table re-attachment,
 * re-encode into the code cache. This format stores the execution
 * form directly -- raw trivially-copyable uops::Uop arrays with the
 * precise-state tags already attached -- so a warm install binds a
 * Translation to a *view* into the mapped image and never touches the
 * body bytes. N fleet contexts (and sibling processes mapping the
 * same file) share one physical copy.
 *
 * Layout (little-endian, every section 8-aligned):
 *
 *   ImageHeader  magic "CDVMIMG2" | version | section table
 *                | whole-image fnv1a checksum (field zeroed while
 *                  hashing, verified before ANY record byte is
 *                  interpreted)
 *   PageIndex    { guestPage, fnv1a(page content) }*     sorted
 *   DedupeIndex  { contentKey, record }*                 sorted
 *   RecordIndex  u64 offset into Records per record, hotness-ranked
 *   Records      ImageRecordHeader | Addr x86pcs[] | uops::Uop body[]
 *   Relocs       { targetPc, fromRecord, toRecord, exitSlot }*
 *   BranchProfile{ pc, taken, notTaken }*                sorted
 *
 * Content addressing: each record carries a pageKey -- fnv1a over the
 * sorted (guest page, page-content hash) pairs its code covers -- so
 * a merged multi-context image stays correct even when two workload
 * classes put *different* code at the same guest addresses: the
 * installer recomputes the key against its own guest memory and
 * silently cold-falls-back any record that does not match.
 *
 * Sharing protocol: single writer, many readers. Readers acquire a
 * shared_ptr<const TransImage> (ImageStore::acquire) and install from
 * it; the writer builds a *new* generation (append/compact) and
 * publishes it with one shared_ptr swap. An old generation stays
 * alive -- and every view into it stays valid -- until its last
 * reader releases the handle.
 *
 * Durability: appendDelta() adds a delta segment (an independently
 * checksummed v1 payload) after the base image without rewriting it;
 * load() verifies and merges the segments through the builder
 * (compaction), and save() writes the compacted result.
 */

#ifndef CDVM_DBT_IMAGE_HH
#define CDVM_DBT_IMAGE_HH

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "dbt/mapsource.hh"
#include "dbt/persist.hh"
#include "uops/uop.hh"

namespace cdvm::dbt
{

/** Image file magic ("CDVMIMG2" as a little-endian u64). */
constexpr u64 IMAGE_MAGIC = 0x32474D494D564443ull;
/** Image format version (v1 is the CDVMREPO record format). */
constexpr u32 IMAGE_VERSION = 2;
/** Delta-segment magic ("CDVMDSEG" as a little-endian u64). */
constexpr u64 DELTA_MAGIC = 0x4745534D44564443ull;

/** Section order in the image's section table. */
enum class ImageSection : u32
{
    PageIndex = 0,
    DedupeIndex,
    RecordIndex,
    Records,
    Relocs,
    BranchProfile,
    NUM_SECTIONS,
};

constexpr u32 IMAGE_NUM_SECTIONS =
    static_cast<u32>(ImageSection::NUM_SECTIONS);

/** One section's extent: byte offset from image start + entry count. */
struct ImageSectionDesc
{
    u64 offset = 0; //!< from the start of the image, 8-aligned
    u64 bytes = 0;
    u64 count = 0;  //!< entries (records for Records)
};
static_assert(sizeof(ImageSectionDesc) == 24);

/** The image header; the first bytes of the blob. */
struct ImageHeader
{
    u64 magic = IMAGE_MAGIC;
    u32 version = IMAGE_VERSION;
    u32 sectionCount = IMAGE_NUM_SECTIONS;
    u64 totalBytes = 0; //!< base image size (deltas follow, if any)
    /** fnv1a over [0, totalBytes) with this field zeroed. Verified
     *  before any other field of the image is trusted. */
    u64 checksum = 0;
    u64 generation = 0; //!< builder generation (compaction counter)
    u64 dedupeHits = 0; //!< records merged by content at build time
    u64 evicted = 0;    //!< cold-tail records dropped by the budget
    ImageSectionDesc sections[IMAGE_NUM_SECTIONS];
};
static_assert(sizeof(ImageHeader) ==
              56 + 24 * IMAGE_NUM_SECTIONS);

/** PageIndex entry: a guest code page and its content hash. */
struct ImagePageHash
{
    Addr page = 0;
    u64 hash = 0;
};
static_assert(sizeof(ImagePageHash) == 16);

/** DedupeIndex entry: content key -> canonical record. */
struct ImageDedupeEntry
{
    u64 key = 0; //!< fnv1a over the record's semantic bytes + pageKey
    u32 record = 0;
    u32 pad0 = 0;
};
static_assert(sizeof(ImageDedupeEntry) == 16);

/** One relocation: re-bind fromRecord's exit chain to toRecord. */
struct ImageReloc
{
    Addr targetPc = 0;
    u32 fromRecord = 0;
    u32 toRecord = 0;
    u32 exitSlot = 0; //!< chain slot (0 taken, 1 fall-through)
    u32 pad0 = 0;
};
static_assert(sizeof(ImageReloc) == 24);

/** BranchProfile entry (engine::BranchProfile seed). */
struct ImageBranchStat
{
    Addr pc = 0;
    u64 taken = 0;
    u64 notTaken = 0;
};
static_assert(sizeof(ImageBranchStat) == 24);

/** Record flags (ImageRecordHeader::flags). */
enum : u8
{
    IMG_F_COMPLEX = 1,
    IMG_F_ENDS_CTI = 2,
    IMG_F_ENDS_COND = 4,
    /** Bits 3-4: producing tier (TransProvenance). Images written
     *  before the template tier read back 0 = SwBbt. */
    IMG_F_PROV_SHIFT = 3,
    IMG_F_PROV_MASK = 0x18,
};

/**
 * One record: the header, then nPcs Addr x86pcs, then nUops raw
 * uops::Uop bodies (8-aligned; the Uop's x86pc provenance tag is
 * stored in place, so nothing needs re-attachment at install).
 */
struct ImageRecordHeader
{
    Addr entryPc = 0;
    Addr fallthroughPc = 0;
    Addr condBranchTarget = 0;
    Addr condBranchPc = 0;
    u64 execCount = 0;
    u64 takenCount = 0;
    u64 notTakenCount = 0;
    /** fnv1a over the sorted (page, content hash) pairs this record's
     *  code covers -- the content address the installer revalidates
     *  against its own guest memory. */
    u64 pageKey = 0;
    /** Chains by record index (NO_RECORD = unchained); the Relocs
     *  section carries the same links flat for the one-pass fixup. */
    Addr chainTargetPc[2] = {0, 0};
    u32 chainRecord[2] = {NO_RECORD, NO_RECORD};
    u32 numX86Insns = 0;
    u32 x86Bytes = 0;
    u32 codeBytes = 0; //!< encoded size (code-cache arena accounting)
    u32 nPcs = 0;
    u32 nUops = 0;
    u8 kind = 0;  //!< 0 BasicBlock, 1 Superblock
    u8 flags = 0; //!< IMG_F_*
    u16 pad0 = 0;
};
static_assert(sizeof(ImageRecordHeader) == 112);
static_assert(std::is_trivially_copyable_v<uops::Uop>);
static_assert(alignof(uops::Uop) <= 8);
static_assert(sizeof(uops::Uop) % 8 == 0);

/** fnv1a key over sorted (page, hash) pairs (the record pageKey). */
u64 pageSetKey(std::span<const std::pair<Addr, u64>> sorted_pages);

/**
 * A verified, read-only translation image. Backed by an explicit
 * MapSource — a private file mapping, a MAP_SHARED mapping of a
 * daemon-passed fd, or one adopted aligned buffer (one memcpy). All
 * accessors return views into that backing store; the TransImage must
 * outlive every view, which the engine guarantees by holding a
 * shared_ptr on the services handle.
 */
class TransImage
{
  public:
    TransImage() = default;
    ~TransImage();
    TransImage(TransImage &&other) noexcept { *this = std::move(other); }
    TransImage &operator=(TransImage &&other) noexcept;
    TransImage(const TransImage &) = delete;
    TransImage &operator=(const TransImage &) = delete;

    /**
     * Map (or read) an image file. Transparent migration: a v1
     * "CDVMREPO" file is parsed through dbt/persist and converted in
     * memory (migratedFromV1() reports it); a v2 image with appended
     * delta segments is verified segment-by-segment and compacted.
     * A clean single-segment v2 image stays a zero-copy file mapping.
     * out is valid only on LoadError::None.
     */
    static LoadError load(const std::string &path, TransImage &out);

    /**
     * Map an already-open image fd MAP_SHARED read-only (the
     * cross-process serving path: a sealed memfd or file received
     * over a Unix-domain socket). The fd is borrowed — the caller may
     * close it after this returns. Migration and delta merge work
     * exactly like load().
     */
    static LoadError loadFd(int fd, TransImage &out);

    /** Adopt a serialized image byte-for-byte (one memcpy into an
     *  8-aligned buffer); verifies exactly like load(). */
    static LoadError adopt(std::span<const u8> bytes, TransImage &out);

    /** Write a built image blob to path (atomic temp+fsync+rename
     *  replace: a concurrent mapper never observes a torn image). */
    static bool save(const std::string &path, std::span<const u8> image);

    /**
     * Append a delta segment -- an independently checksummed capture
     * -- after the existing base image without rewriting it. load()
     * merges base + deltas (compaction on read). @return success.
     */
    static bool appendDelta(const std::string &path,
                            const Repository &delta);

    const ImageHeader &header() const { return *hdr; }
    u64 sizeBytes() const { return len; }
    /** Backed by a shareable mapping (file or passed fd) rather than
     *  a private heap copy. */
    bool isMapped() const { return backing.shared(); }
    MapSource::Kind backingKind() const { return backing.kind(); }
    /** Page-residency snapshot of the backing (dbt.image.pages.*). */
    MapResidency residency() const { return backing.residency(); }
    /** Delta segments merged at load (0 for a compact image). */
    unsigned deltaSegments() const { return deltas; }
    bool migratedFromV1() const { return migrated; }

    std::size_t recordCount() const { return recIndex.size(); }

    /** Zero-copy views into one record. */
    struct RecordView
    {
        const ImageRecordHeader *hdr = nullptr;
        std::span<const Addr> x86pcs;
        std::span<const uops::Uop> uops;
    };
    RecordView record(std::size_t i) const;

    std::span<const ImagePageHash> pageHashes() const { return pages; }
    std::span<const ImageDedupeEntry> dedupeIndex() const
    {
        return dedupe;
    }
    std::span<const ImageReloc> relocs() const { return relocations; }
    std::span<const ImageBranchStat> branchProfile() const
    {
        return branches;
    }

    /** Expand back to a v1-style in-memory repository (round-trip
     *  tests, delta compaction, v1 interop). */
    Repository toRepository() const;

  private:
    /** Verify magic/version/size/checksum, then structure; bind the
     *  section views. base/len must already be set. */
    LoadError verify();
    void reset();
    /** Shared load tail over any backing: v1 migration, verification,
     *  delta-segment merge. out is valid only on LoadError::None. */
    static LoadError fromSource(MapSource src, TransImage &out);

    MapSource backing;        //!< owns the bytes (map or heap copy)
    const u8 *base = nullptr; //!< verified image bytes (8-aligned)
    u64 len = 0;              //!< full backing size (deltas included)

    unsigned deltas = 0;
    bool migrated = false;

    const ImageHeader *hdr = nullptr;
    std::span<const ImagePageHash> pages;
    std::span<const ImageDedupeEntry> dedupe;
    std::span<const u64> recIndex;
    const u8 *recordsBase = nullptr;
    std::span<const ImageReloc> relocations;
    std::span<const ImageBranchStat> branches;
};

/**
 * Builds image blobs from repositories and/or existing images:
 * content-addressed dedupe (two contexts with identical guest pages
 * share one record), hotness-ranked order (insertion order -- capture
 * is already hottest-first), and cold-tail eviction against a size
 * budget at build().
 */
class ImageBuilder
{
  public:
    struct Options
    {
        /** Total image size budget in bytes (0 = unlimited). When the
         *  blob would exceed it, the coldest tail of the record
         *  ranking is dropped and counted in evicted(). */
        u64 sizeBudgetBytes = 0;
        /** Generation stamp for the built header. */
        u64 generation = 1;
    };

    ImageBuilder() = default;
    explicit ImageBuilder(Options o) : opt(o) {}

    /** Merge a repository's records (dedupe by content + pageKey). */
    void add(const Repository &repo);
    /** Merge an existing image (compaction / delta merge). */
    void add(const TransImage &img);

    /** Serialize to the checksummed image blob. */
    std::vector<u8> build();

    u64 dedupeHits() const { return nDedupe; }
    /** Valid after build(). */
    u64 evicted() const { return nEvicted; }
    std::size_t records() const { return recs.size(); }

  private:
    struct Staged
    {
        SavedTranslation entry; //!< chains remapped to builder indices
        u64 pageKey = 0;
        u64 contentKey = 0;
    };

    /** Dedupe-or-stage one entry (chains reset; caller re-binds).
     *  @return the builder index the entry landed on. */
    u32 stage(SavedTranslation &&e, u64 page_key);
    /** Fill a staged record's chain slot if it is still empty. */
    void bindChain(u32 from, unsigned slot, Addr target_pc, u32 to);

    Options opt;
    std::vector<Staged> recs;
    std::unordered_map<u64, u32> byContent; //!< contentKey -> index
    std::map<Addr, u64> pageHash;           //!< sorted page index
    std::map<Addr, std::pair<u64, u64>> branch; //!< pc -> counts
    u64 nDedupe = 0;
    u64 nEvicted = 0;
};

/**
 * Where a VM gets its warm-start image generations from. One
 * interface, two bindings: ImageStore (in-process, the image lives in
 * this address space) and serve::ImageClient (cross-process, the image
 * is a MAP_SHARED mapping of an fd served by an ImageHost daemon).
 * Consumers — Vmm construction, fleet admission — resolve the
 * endpoint to a generation handle and never care which binding it is.
 */
class ImageEndpoint
{
  public:
    virtual ~ImageEndpoint() = default;

    /** The current image generation (null = boot cold). The handle
     *  stays valid after newer generations are published. */
    virtual std::shared_ptr<const TransImage> acquire() const = 0;

    /** Monotonic publish counter (0 = nothing published yet). */
    virtual u64 generation() const = 0;
};

/**
 * Generation store for single-writer / concurrent-reader sharing.
 * Readers acquire the current image handle; the writer merges deltas
 * or compacts into a *new* image and publishes it with one swap. Old
 * generations stay valid until their last reader releases the handle
 * (shared_ptr lifetime), so installs racing a publish are safe.
 */
class ImageStore : public ImageEndpoint
{
  public:
    ImageStore() = default;
    explicit ImageStore(std::shared_ptr<const TransImage> initial)
        : cur(std::move(initial))
    {
    }

    /** Reader side: the current generation (may be null). */
    std::shared_ptr<const TransImage>
    acquire() const override
    {
        std::lock_guard<std::mutex> lock(mu);
        return cur;
    }

    /** Writer side: swap in a new generation. */
    void
    publish(std::shared_ptr<const TransImage> next)
    {
        std::lock_guard<std::mutex> lock(mu);
        cur = std::move(next);
        ++gen;
    }

    /**
     * Writer side: merge the current generation with a freshly
     * captured delta (dedupe + optional size budget) and publish the
     * result. Readers mid-install keep their old generation.
     */
    LoadError append(const Repository &delta, u64 size_budget = 0);

    u64
    generation() const override
    {
        std::lock_guard<std::mutex> lock(mu);
        return gen;
    }

  private:
    mutable std::mutex mu;
    std::shared_ptr<const TransImage> cur;
    u64 gen = 0;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_IMAGE_HH
