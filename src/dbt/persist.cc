#include "dbt/persist.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>

#include "uops/encoding.hh"
#include "x86/decoder.hh"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace cdvm::dbt
{

namespace
{

constexpr std::size_t PAGE_BYTES = 4096;
constexpr Addr PAGE_MASK = ~static_cast<Addr>(PAGE_BYTES - 1);

// --- little-endian writers/readers ---------------------------------

void
putU8(std::vector<u8> &out, u8 v)
{
    out.push_back(v);
}

void
putU32(std::vector<u8> &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(v >> 8 * i));
}

void
putU64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> 8 * i));
}

/** Bounds-checked sequential reader over the serialized image. */
struct Reader
{
    std::span<const u8> buf;
    std::size_t pos = 0;
    bool ok = true;

    bool
    need(std::size_t n)
    {
        if (!ok || buf.size() - pos < n)
            ok = false;
        return ok;
    }

    u8
    getU8()
    {
        if (!need(1))
            return 0;
        return buf[pos++];
    }

    u32
    getU32()
    {
        if (!need(4))
            return 0;
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(buf[pos++]) << 8 * i;
        return v;
    }

    u64
    getU64()
    {
        if (!need(8))
            return 0;
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(buf[pos++]) << 8 * i;
        return v;
    }

    std::vector<u8>
    getBytes(std::size_t n)
    {
        if (!need(n))
            return {};
        std::vector<u8> v(buf.begin() + pos, buf.begin() + pos + n);
        pos += n;
        return v;
    }
};

u64
idKey(TransId id)
{
    return static_cast<u64>(id.idx) << 32 | id.gen;
}

void
putEntry(std::vector<u8> &out, const SavedTranslation &e)
{
    putU8(out, static_cast<u8>(e.kind));
    const u8 flags = (e.containsComplex ? 1 : 0) |
                     (e.endsInCti ? 2 : 0) |
                     (e.endsInCondBranch ? 4 : 0) |
                     static_cast<u8>(static_cast<u8>(e.provenance) << 3);
    putU8(out, flags);
    putU64(out, e.entryPc);
    putU32(out, e.numX86Insns);
    putU32(out, e.x86Bytes);
    putU64(out, e.fallthroughPc);
    putU64(out, e.condBranchTarget);
    putU64(out, e.condBranchPc);
    putU64(out, e.execCount);
    putU64(out, e.takenCount);
    putU64(out, e.notTakenCount);
    for (const SavedChain &c : e.chains) {
        putU64(out, c.targetPc);
        putU32(out, c.record);
    }
    putU32(out, static_cast<u32>(e.x86pcs.size()));
    for (Addr pc : e.x86pcs)
        putU64(out, pc);
    putU32(out, static_cast<u32>(e.uopPcs.size()));
    for (Addr pc : e.uopPcs)
        putU64(out, pc);
    putU32(out, static_cast<u32>(e.body.size()));
    out.insert(out.end(), e.body.begin(), e.body.end());
}

bool
getEntry(Reader &r, SavedTranslation &e)
{
    const u8 kind = r.getU8();
    const u8 flags = r.getU8();
    e.kind = kind ? TransKind::Superblock : TransKind::BasicBlock;
    e.containsComplex = flags & 1;
    e.endsInCti = flags & 2;
    e.endsInCondBranch = flags & 4;
    e.provenance = static_cast<TransProvenance>((flags >> 3) & 3);
    e.entryPc = r.getU64();
    e.numX86Insns = r.getU32();
    e.x86Bytes = r.getU32();
    e.fallthroughPc = r.getU64();
    e.condBranchTarget = r.getU64();
    e.condBranchPc = r.getU64();
    e.execCount = r.getU64();
    e.takenCount = r.getU64();
    e.notTakenCount = r.getU64();
    for (SavedChain &c : e.chains) {
        c.targetPc = r.getU64();
        c.record = r.getU32();
    }
    const u32 n_pcs = r.getU32();
    e.x86pcs.clear();
    for (u32 i = 0; i < n_pcs && r.ok; ++i)
        e.x86pcs.push_back(r.getU64());
    const u32 n_upcs = r.getU32();
    e.uopPcs.clear();
    for (u32 i = 0; i < n_upcs && r.ok; ++i)
        e.uopPcs.push_back(r.getU64());
    const u32 n_body = r.getU32();
    e.body = r.getBytes(n_body);
    return r.ok;
}

/** Per-thread errno detail behind LoadError::Io (see lastIoErrno). */
thread_local int last_io_errno = 0;

} // namespace

int
lastIoErrno()
{
    return last_io_errno;
}

void
setLastIoErrno(int err)
{
    last_io_errno = err;
}

std::string
loadErrorDetail(LoadError e)
{
    std::string s = loadErrorName(e);
    if (e == LoadError::Io && last_io_errno) {
        s += ": ";
        s += std::strerror(last_io_errno);
    }
    return s;
}

const char *
loadErrorName(LoadError e)
{
    switch (e) {
      case LoadError::None: return "none";
      case LoadError::Io: return "io";
      case LoadError::BadMagic: return "bad-magic";
      case LoadError::BadVersion: return "bad-version";
      case LoadError::Truncated: return "truncated";
      case LoadError::Corrupt: return "corrupt";
    }
    return "?";
}

u64
fnv1a(std::span<const u8> bytes)
{
    u64 h = 0xCBF29CE484222325ull;
    for (u8 b : bytes) {
        h ^= b;
        h *= 0x100000001B3ull;
    }
    return h;
}

u64
guestPageHash(const x86::Memory &mem, Addr page)
{
    std::vector<u8> bytes = mem.readBlock(page, PAGE_BYTES);
    return fnv1a(bytes);
}

std::vector<Addr>
coveredPages(Addr entry_pc, std::span<const Addr> x86pcs)
{
    std::vector<Addr> pages;
    auto add = [&pages](Addr page) {
        for (Addr p : pages) {
            if (p == page)
                return;
        }
        pages.push_back(page);
    };
    // Conservative: every covered instruction may straddle into the
    // next page (x86 insns are up to MAX_INSN_LEN bytes).
    for (Addr pc : x86pcs) {
        add(pc & PAGE_MASK);
        add((pc + x86::MAX_INSN_LEN - 1) & PAGE_MASK);
    }
    add(entry_pc & PAGE_MASK);
    return pages;
}

std::vector<Addr>
SavedTranslation::coveredPages() const
{
    return dbt::coveredPages(entryPc, x86pcs);
}

std::unique_ptr<Translation>
SavedTranslation::materialize() const
{
    auto t = std::make_unique<Translation>();
    t->kind = kind;
    t->entryPc = entryPc;
    t->numX86Insns = numX86Insns;
    t->x86Bytes = x86Bytes;
    t->fallthroughPc = fallthroughPc;
    t->containsComplex = containsComplex;
    t->provenance = provenance;
    t->endsInCti = endsInCti;
    t->endsInCondBranch = endsInCondBranch;
    t->condBranchTarget = condBranchTarget;
    t->condBranchPc = condBranchPc;
    t->execCount = execCount;
    t->takenCount = takenCount;
    t->notTakenCount = notTakenCount;
    t->x86pcs = x86pcs;
    t->codeBytes = static_cast<u32>(body.size());
    if (!uops::decodeAll(body, t->uops) || t->uops.empty())
        return nullptr;
    // Re-attach the precise-state tags the encoding does not carry.
    if (uopPcs.size() != t->uops.size())
        return nullptr;
    for (std::size_t i = 0; i < uopPcs.size(); ++i)
        t->uops[i].x86pc = uopPcs[i];
    return t;
}

Repository
capture(const TranslationMap &map, const x86::Memory &mem,
        const HotnessFn &hotness)
{
    Repository repo;

    // Collect the live set first: the hotness ordering must be fixed
    // before pass 1 assigns record indices, or the chain indices of
    // pass 2 would point at the wrong rows.
    std::vector<const Translation *> live;
    map.forEach([&](const Translation &t) { live.push_back(&t); });
    if (hotness) {
        std::stable_sort(live.begin(), live.end(),
                         [&hotness](const Translation *a,
                                    const Translation *b) {
                             const u64 ha = hotness(*a);
                             const u64 hb = hotness(*b);
                             if (ha != hb)
                                 return ha > hb;
                             return a->entryPc < b->entryPc;
                         });
    }

    // Pass 1: record every live translation and remember which record
    // index each TransId became.
    std::unordered_map<u64, u32> id_to_record;
    for (const Translation *tp : live) {
        const Translation &t = *tp;
        id_to_record.emplace(idKey(t.id),
                             static_cast<u32>(repo.entries.size()));
        SavedTranslation e;
        e.kind = t.kind;
        e.entryPc = t.entryPc;
        e.numX86Insns = t.numX86Insns;
        e.x86Bytes = t.x86Bytes;
        e.fallthroughPc = t.fallthroughPc;
        e.containsComplex = t.containsComplex;
        e.provenance = t.provenance;
        e.endsInCti = t.endsInCti;
        e.endsInCondBranch = t.endsInCondBranch;
        e.condBranchTarget = t.condBranchTarget;
        e.condBranchPc = t.condBranchPc;
        e.execCount = t.execCount;
        e.takenCount = t.takenCount;
        e.notTakenCount = t.notTakenCount;
        // Read through the views: a translation installed zero-copy
        // from a mapped warm image has no owned body, only the view.
        const std::span<const Addr> pcs = t.pcSpan();
        const std::span<const uops::Uop> body = t.code();
        e.x86pcs.assign(pcs.begin(), pcs.end());
        e.uopPcs.reserve(body.size());
        for (const uops::Uop &u : body)
            e.uopPcs.push_back(u.x86pc);
        e.body = uops::encode(body);
        repo.entries.push_back(std::move(e));
    }

    // Pass 2: chains as record indices. Links to translations outside
    // the live set (overwritten, or already flushed) are dropped.
    for (std::size_t i = 0; i < live.size(); ++i) {
        for (unsigned c = 0; c < 2; ++c) {
            const Translation::Chain &ch = live[i]->chains[c];
            if (!ch.to)
                continue;
            auto it = id_to_record.find(idKey(ch.to));
            if (it == id_to_record.end())
                continue;
            repo.entries[i].chains[c] =
                SavedChain{ch.targetPc, it->second};
        }
    }

    // Page hashes for every guest code page any entry touches.
    std::unordered_map<Addr, u64> hashes;
    for (const SavedTranslation &e : repo.entries) {
        for (Addr page : e.coveredPages()) {
            if (!hashes.count(page))
                hashes.emplace(page, guestPageHash(mem, page));
        }
    }
    repo.pageHashes.assign(hashes.begin(), hashes.end());
    return repo;
}

std::vector<u8>
serialize(const Repository &repo)
{
    std::vector<u8> out;
    putU64(out, REPO_MAGIC);
    putU32(out, REPO_VERSION);
    putU32(out, 0); // reserved
    putU32(out, static_cast<u32>(repo.pageHashes.size()));
    for (const auto &[page, hash] : repo.pageHashes) {
        putU64(out, page);
        putU64(out, hash);
    }
    putU32(out, static_cast<u32>(repo.entries.size()));
    for (const SavedTranslation &e : repo.entries)
        putEntry(out, e);
    putU32(out, static_cast<u32>(repo.branchProfile.size()));
    for (const SavedBranchStat &b : repo.branchProfile) {
        putU64(out, b.pc);
        putU64(out, b.taken);
        putU64(out, b.notTaken);
    }
    putU64(out, fnv1a(out));
    return out;
}

LoadError
deserialize(std::span<const u8> bytes, Repository &out)
{
    // Header + trailing checksum is the minimum plausible file.
    if (bytes.size() < 8 + 4 + 4 + 8)
        return LoadError::Truncated;

    Reader r{bytes.subspan(0, bytes.size() - 8)};
    if (r.getU64() != REPO_MAGIC)
        return LoadError::BadMagic;
    if (r.getU32() != REPO_VERSION)
        return LoadError::BadVersion;
    r.getU32(); // reserved

    out = Repository{};
    const u32 n_pages = r.getU32();
    for (u32 i = 0; i < n_pages && r.ok; ++i) {
        const Addr page = r.getU64();
        const u64 hash = r.getU64();
        out.pageHashes.emplace_back(page, hash);
    }
    const u32 n_entries = r.getU32();
    for (u32 i = 0; i < n_entries && r.ok; ++i) {
        SavedTranslation e;
        if (getEntry(r, e))
            out.entries.push_back(std::move(e));
    }
    const u32 n_branch = r.getU32();
    for (u32 i = 0; i < n_branch && r.ok; ++i) {
        SavedBranchStat b;
        b.pc = r.getU64();
        b.taken = r.getU64();
        b.notTaken = r.getU64();
        out.branchProfile.push_back(b);
    }
    if (!r.ok)
        return LoadError::Truncated;
    if (r.pos != r.buf.size())
        return LoadError::Corrupt; // trailing garbage before checksum

    const u64 want = fnv1a(bytes.subspan(0, bytes.size() - 8));
    Reader tail{bytes.subspan(bytes.size() - 8)};
    if (tail.getU64() != want)
        return LoadError::Corrupt;

    // Structural sanity: chain records must point into the table.
    for (const SavedTranslation &e : out.entries) {
        for (const SavedChain &c : e.chains) {
            if (c.record != NO_RECORD && c.record >= out.entries.size())
                return LoadError::Corrupt;
        }
    }
    return LoadError::None;
}

std::unordered_set<std::size_t>
staleEntries(const Repository &repo, const x86::Memory &mem)
{
    std::unordered_map<Addr, u64> saved(repo.pageHashes.begin(),
                                        repo.pageHashes.end());
    std::unordered_map<Addr, bool> page_ok;
    auto pageFresh = [&](Addr page) {
        auto cached = page_ok.find(page);
        if (cached != page_ok.end())
            return cached->second;
        auto it = saved.find(page);
        const bool fresh =
            it != saved.end() && guestPageHash(mem, page) == it->second;
        page_ok.emplace(page, fresh);
        return fresh;
    };

    std::unordered_set<std::size_t> stale;
    for (std::size_t i = 0; i < repo.entries.size(); ++i) {
        for (Addr page : repo.entries[i].coveredPages()) {
            if (!pageFresh(page)) {
                stale.insert(i);
                break;
            }
        }
    }
    // An entry chained into a stale entry keeps its other links; the
    // stale link is simply dropped at install time (the record is
    // never installed, so the re-bind finds no target).
    return stale;
}

bool
atomicWriteFile(const std::string &path, std::span<const u8> bytes)
{
#ifdef __unix__
    // The temp file must live in the same directory as path so the
    // final rename() is same-filesystem and therefore atomic.
    std::string tmp = path + ".tmp.XXXXXX";
    const int fd = ::mkstemp(tmp.data());
    if (fd < 0) {
        setLastIoErrno(errno);
        return false;
    }
    bool ok = true;
    std::size_t done = 0;
    while (ok && done < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            setLastIoErrno(errno);
            ok = false;
            break;
        }
        done += static_cast<std::size_t>(n);
    }
    // The rename must not be observable before the data is durable,
    // or a crash could leave the new name pointing at torn contents.
    if (ok && ::fsync(fd) != 0) {
        setLastIoErrno(errno);
        ok = false;
    }
    if (::close(fd) != 0 && ok) {
        setLastIoErrno(errno);
        ok = false;
    }
    if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) {
        setLastIoErrno(errno);
        ok = false;
    }
    if (!ok)
        ::unlink(tmp.c_str());
    return ok;
#else
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f) {
        setLastIoErrno(errno);
        return false;
    }
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    if (!ok)
        setLastIoErrno(errno);
    if (std::fclose(f) != 0 && ok) {
        setLastIoErrno(errno);
        ok = false;
    }
    if (ok) {
        std::remove(path.c_str());
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
        if (!ok)
            setLastIoErrno(errno);
    }
    if (!ok)
        std::remove(tmp.c_str());
    return ok;
#endif
}

bool
saveFile(const std::string &path, const Repository &repo)
{
    const std::vector<u8> bytes = serialize(repo);
    return atomicWriteFile(path, bytes);
}

LoadError
loadFile(const std::string &path, Repository &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setLastIoErrno(errno);
        return LoadError::Io;
    }
    std::vector<u8> bytes;
    u8 buf[65536];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    const bool read_err = std::ferror(f) != 0;
    if (read_err)
        setLastIoErrno(errno);
    if (std::fclose(f) != 0 && !read_err)
        setLastIoErrno(errno);
    if (read_err)
        return LoadError::Io;
    return deserialize(bytes, out);
}

} // namespace cdvm::dbt
