#include "dbt/bbt.hh"

#include "common/statreg.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "x86/decoder.hh"

namespace cdvm::dbt
{

std::unique_ptr<Translation>
BasicBlockTranslator::translate(Addr pc)
{
    auto t = std::make_unique<Translation>();
    t->kind = TransKind::BasicBlock;
    t->entryPc = pc;

    Addr cur = pc;
    u8 window[x86::MAX_INSN_LEN + 1];
    for (unsigned n = 0; n < maxInsns; ++n) {
        mem.fetchWindow(cur, window, sizeof(window));
        x86::DecodeResult dr =
            x86::decode(std::span<const u8>(window, sizeof(window)), cur);
        if (!dr.ok) {
            // Cut the block before the undecodable bytes; an empty
            // block means the entry itself is bad.
            if (t->numX86Insns == 0)
                return nullptr;
            break;
        }
        const x86::Insn &in = dr.insn;
        uops::CrackResult cr = uops::crack(in);
        t->containsComplex = t->containsComplex || cr.complex;
        for (uops::Uop &u : cr.uops)
            t->uops.push_back(u);
        t->x86pcs.push_back(in.pc);
        ++t->numX86Insns;
        t->x86Bytes += in.length;
        cur = in.nextPc();
        if (in.isCti()) {
            t->endsInCti = true;
            if (in.isCondBranch()) {
                t->endsInCondBranch = true;
                t->condBranchTarget = in.target;
                t->condBranchPc = in.pc;
            }
            break;
        }
    }

    t->fallthroughPc = cur;
    t->codeBytes = uops::encodedBytes(t->uops);
    ++nBlocks;
    nInsns += t->numX86Insns;
    return t;
}

void
BasicBlockTranslator::exportStats(StatRegistry &reg,
                                  const std::string &prefix) const
{
    reg.set(prefix + ".blocks", static_cast<double>(nBlocks),
            "basic blocks translated");
    reg.set(prefix + ".insns", static_cast<double>(nInsns),
            "x86 instructions translated");
    reg.set(prefix + ".insns_per_block",
            nBlocks ? static_cast<double>(nInsns) /
                          static_cast<double>(nBlocks)
                    : 0.0,
            "mean block length");
}

} // namespace cdvm::dbt
