#include "dbt/codecache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace cdvm::dbt
{

CodeCache::CodeCache(std::string name, Addr base, u64 capacity)
    : label(std::move(name)), start(base), cap(capacity), next(base)
{
    if (capacity == 0)
        cdvm_fatal("code cache %s: zero capacity", label.c_str());
}

Addr
CodeCache::allocate(u64 len)
{
    // Keep translations 4-byte aligned like real emitted code.
    u64 alen = alignUp(len, 4);
    if (next + alen > start + cap)
        return 0;
    Addr at = next;
    next += alen;
    totalAllocated += alen;
    return at;
}

void
CodeCache::flush()
{
    next = start;
    ++nFlushes;
}

} // namespace cdvm::dbt
