#include "dbt/codecache.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "common/statreg.hh"

namespace cdvm::dbt
{

CodeCache::CodeCache(std::string name, Addr base, u64 capacity)
    : label(std::move(name)), start(base), cap(capacity), next(base)
{
    if (capacity == 0)
        cdvm_fatal("code cache %s: zero capacity", label.c_str());
}

Addr
CodeCache::allocate(u64 len)
{
    // Keep translations 4-byte aligned like real emitted code.
    u64 alen = alignUp(len, 4);
    if (next + alen > start + cap)
        return 0;
    Addr at = next;
    next += alen;
    totalAllocated += alen;
    return at;
}

void
CodeCache::flush()
{
    next = start;
    ++nFlushes;
}

void
CodeCache::exportStats(StatRegistry &reg, const std::string &prefix) const
{
    reg.set(prefix + ".capacity_bytes", static_cast<double>(cap),
            "arena capacity");
    reg.set(prefix + ".used_bytes", static_cast<double>(used()),
            "bytes live in the arena");
    reg.set(prefix + ".allocated_bytes",
            static_cast<double>(totalAllocated),
            "bytes ever allocated (incl. before flushes)");
    reg.set(prefix + ".flushes", static_cast<double>(nFlushes),
            "flush-everything evictions");
    reg.set(prefix + ".utilization",
            cap ? static_cast<double>(used()) / static_cast<double>(cap)
                : 0.0,
            "live fraction of the arena");
}

} // namespace cdvm::dbt
