#include "dbt/superblock.hh"

#include <unordered_set>

#include "x86/decoder.hh"

namespace cdvm::dbt
{

std::optional<SuperblockTrace>
SuperblockFormer::form(Addr seed_pc)
{
    SuperblockTrace trace;
    trace.entryPc = seed_pc;

    std::unordered_set<Addr> visited;
    Addr block_pc = seed_pc;
    u8 window[x86::MAX_INSN_LEN + 1];
    unsigned blocks = 0;

    while (blocks < pol.maxBlocks &&
           trace.insns.size() < pol.maxX86Insns) {
        if (visited.count(block_pc))
            break; // loop closure: the trace would revisit itself
        visited.insert(block_pc);
        trace.blockEntries.push_back(block_pc);
        ++blocks;

        // Walk the block instruction by instruction.
        Addr cur = block_pc;
        bool block_done = false;
        while (!block_done && trace.insns.size() < pol.maxX86Insns) {
            mem.fetchWindow(cur, window, sizeof(window));
            x86::DecodeResult dr = x86::decode(
                std::span<const u8>(window, sizeof(window)), cur);
            if (!dr.ok) {
                if (trace.insns.empty())
                    return std::nullopt;
                trace.fallthroughPc = cur;
                return trace;
            }
            const x86::Insn &in = dr.insn;

            if (!in.isCti()) {
                trace.insns.push_back(TraceInsn{in, false});
                cur = in.nextPc();
                continue;
            }

            // Control transfer: decide whether the trace continues.
            block_done = true;
            switch (in.op) {
              case x86::Op::Jmp:
                trace.insns.push_back(TraceInsn{in, true});
                block_pc = in.target;
                break;
              case x86::Op::Call:
                // Follow into the callee (partial inlining).
                trace.insns.push_back(TraceInsn{in, true});
                block_pc = in.target;
                break;
              case x86::Op::Jcc: {
                std::optional<double> bias =
                    biasOf ? biasOf(in.pc) : std::nullopt;
                if (bias && *bias >= pol.minBias) {
                    trace.insns.push_back(TraceInsn{in, true});
                    block_pc = in.target;
                } else if (bias && 1.0 - *bias >= pol.minBias) {
                    trace.insns.push_back(TraceInsn{in, false});
                    block_pc = in.nextPc();
                } else {
                    // Unbiased or unprofiled: include the branch and
                    // stop the trace.
                    trace.insns.push_back(TraceInsn{in, false});
                    trace.fallthroughPc = in.nextPc();
                    trace.endsInCti = true;
                    return trace;
                }
                break;
              }
              default:
                // Ret, indirect jump/call, HLT, INT3: trace ends here.
                trace.insns.push_back(TraceInsn{in, false});
                trace.fallthroughPc = in.nextPc();
                trace.endsInCti = true;
                return trace;
            }
        }
    }

    trace.fallthroughPc =
        trace.insns.empty()
            ? seed_pc
            : (trace.insns.back().takenOnTrace
                   ? trace.insns.back().insn.target
                   : trace.insns.back().insn.nextPc());
    return trace;
}

} // namespace cdvm::dbt
