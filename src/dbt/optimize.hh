/**
 * @file
 * SBT optimization passes over micro-op sequences.
 *
 * The hotspot optimizer applies, in order:
 *   1. dead-flag elimination -- clears writeFlags on (or removes pure
 *      flag-producer) micro-ops whose flag results are overwritten
 *      before any possible read, treating every branch/exit as a use;
 *   2. macro-op fusion (uops/fusion.hh).
 *
 * Both passes are semantics-preserving; the differential property
 * tests run optimized superblocks against the reference interpreter.
 */

#ifndef CDVM_DBT_OPTIMIZE_HH
#define CDVM_DBT_OPTIMIZE_HH

#include "uops/fusion.hh"
#include "uops/uop.hh"

namespace cdvm::dbt
{

/** Statistics from an optimization run. */
struct OptimizeStats
{
    unsigned flagWritesKilled = 0;  //!< writeFlags bits cleared
    unsigned uopsRemoved = 0;       //!< pure flag producers deleted
    uops::FusionStats fusion;
};

/**
 * Dead-flag elimination. Conservative: flags are considered live at
 * every branch (side exit) and at the sequence end.
 */
unsigned killDeadFlags(uops::UopVec &v, unsigned *removed = nullptr);

/** Full SBT optimization pipeline (dead flags, then fusion). */
OptimizeStats optimize(uops::UopVec &v,
                       const uops::FusionConfig &cfg = {});

} // namespace cdvm::dbt

#endif // CDVM_DBT_OPTIMIZE_HH
