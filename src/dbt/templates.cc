#include "dbt/templates.hh"

#include <algorithm>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/statreg.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"
#include "x86/decoder.hh"
#include "x86/memory.hh"

namespace cdvm::dbt
{

using uops::Uop;
using x86::Cond;
using x86::Insn;
using x86::MemRef;
using x86::Op;
using x86::Operand;
using x86::Reg;

TmplParams
extractTmplParams(const Insn &in)
{
    TmplParams p{};
    p[TP_DST_REG] = in.dst.isReg() ? in.dst.reg : 0;
    p[TP_SRC_REG] = in.src.isReg() ? in.src.reg : 0;
    p[TP_SRC_IMM] = in.src.isImm() ? in.src.imm : 0;
    p[TP_SRC2_IMM] = in.src2.isImm() ? in.src2.imm : 0;
    const MemRef *m = in.dst.isMem()   ? &in.dst.mem
                      : in.src.isMem() ? &in.src.mem
                                       : nullptr;
    p[TP_MEM_SCALE] = 1;
    if (m) {
        p[TP_MEM_BASE] = m->hasBase() ? m->base : 0;
        p[TP_MEM_INDEX] = m->hasIndex() ? m->index : 0;
        p[TP_MEM_SCALE] = m->scale;
        p[TP_MEM_DISP] = m->disp;
    }
    p[TP_COND] = static_cast<u8>(in.cond);
    p[TP_TARGET] = static_cast<i64>(in.target);
    p[TP_NEXT_PC] = static_cast<i64>(in.nextPc());
    return p;
}

namespace
{

/**
 * Fetch one substitutable parameter straight from the instruction.
 * Mirrors extractTmplParams() case for case; the hot specialize path
 * uses this so an instruction with two patches costs two lookups, not
 * an 11-entry extraction.
 */
i64
paramValue(const x86::Insn &in, u8 param)
{
    switch (param) {
      case TP_DST_REG: return in.dst.isReg() ? in.dst.reg : 0;
      case TP_SRC_REG: return in.src.isReg() ? in.src.reg : 0;
      case TP_SRC_IMM: return in.src.isImm() ? in.src.imm : 0;
      case TP_SRC2_IMM: return in.src2.isImm() ? in.src2.imm : 0;
      case TP_COND: return static_cast<u8>(in.cond);
      case TP_TARGET: return static_cast<i64>(in.target);
      case TP_NEXT_PC: return static_cast<i64>(in.nextPc());
      default: {
        const x86::MemRef *m = in.dst.isMem()   ? &in.dst.mem
                               : in.src.isMem() ? &in.src.mem
                                                : nullptr;
        if (!m)
            return param == TP_MEM_SCALE ? 1 : 0;
        switch (param) {
          case TP_MEM_BASE: return m->hasBase() ? m->base : 0;
          case TP_MEM_INDEX: return m->hasIndex() ? m->index : 0;
          case TP_MEM_SCALE: return m->scale;
          default: return m->disp;
        }
      }
    }
}

i64
getField(const Uop &u, u8 f)
{
    switch (f) {
      case TF_DST: return u.dst;
      case TF_SRC1: return u.src1;
      case TF_SRC2: return u.src2;
      case TF_SIZE: return u.size;
      case TF_SCALE: return u.scale;
      case TF_COND: return u.cond;
      case TF_IMM: return u.imm;
      default: return static_cast<i64>(u.target);
    }
}

void
setField(Uop &u, u8 f, i64 v)
{
    switch (f) {
      case TF_DST: u.dst = static_cast<u8>(v); break;
      case TF_SRC1: u.src1 = static_cast<u8>(v); break;
      case TF_SRC2: u.src2 = static_cast<u8>(v); break;
      case TF_SIZE: u.size = static_cast<u8>(v); break;
      case TF_SCALE: u.scale = static_cast<u8>(v); break;
      case TF_COND: u.cond = static_cast<u8>(v); break;
      case TF_IMM: u.imm = static_cast<i32>(v); break;
      default: u.target = static_cast<Addr>(v); break;
    }
}

/** Shape equality: the non-substitutable parts of a micro-op. */
bool
sameShape(const Uop &a, const Uop &b)
{
    return a.op == b.op && a.hasImm == b.hasImm &&
           a.writeFlags == b.writeFlags && a.fusedHead == b.fusedHead;
}

bool
uopsEqual(const uops::UopVec &a, const uops::UopVec &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (!sameShape(a[i], b[i]) || a[i].x86pc != b[i].x86pc)
            return false;
        for (u8 f = 0; f < TF_NUM_FIELDS; ++f) {
            if (getField(a[i], f) != getField(b[i], f))
                return false;
        }
    }
    return true;
}

/** One candidate instruction form offered to the learner. */
struct Shape
{
    Operand::Kind dst = Operand::Kind::None;
    Operand::Kind src = Operand::Kind::None;
    Operand::Kind src2 = Operand::Kind::None;
    bool dstHi = false;    //!< dst register drawn from the >= 4 class
    bool srcHi = false;    //!< src register drawn from the >= 4 class
    bool memBase = false;  //!< the memory operand has a base register
    bool memIndex = false; //!< the memory operand has an index register
    bool pinDstEsp = false; //!< dst register pinned to ESP (pop esp)
    /**
     * dst and src are the *same* register (`xor edx, edx`,
     * `test eax, eax`, `movzx al, eax`...). Both probe operands draw
     * from TP_DST_REG and only that parameter is marked varied, so
     * field attribution stays unambiguous even though the two
     * registers move in lockstep.
     */
    bool alias = false;
};

/** The two synthetic probes a rule is learned from. */
struct ProbePair
{
    Insn a, b;
    TmplParams pa{}, pb{};
    std::array<bool, TP_NUM_PARAMS> varied{};
};

constexpr Addr PROBE_PC = 0x8000;

/**
 * Build the probe pair for a form. Every substitutable parameter the
 * form exposes is varied between the probes with a delta distinct
 * from every other varied parameter's, so the learner can attribute
 * each moving micro-op field to exactly one parameter. Returns
 * nullopt when distinct deltas cannot be assigned (never happens for
 * the shapes enumerated below; the guard keeps growth honest).
 */
std::optional<ProbePair>
makeProbes(Op op, unsigned op_size, const Shape &sh)
{
    ProbePair pp;
    std::vector<i64> used;

    // Register probe pairs per class; deltas within a class are
    // distinct, and the used-set keeps them distinct across classes.
    // The high class avoids ESP so probe values stay canonical.
    auto pick = [&](bool hi) -> std::optional<std::pair<int, int>> {
        static constexpr std::pair<int, int> LO[] = {{0, 1}, {1, 3}, {0, 3}};
        static constexpr std::pair<int, int> HI[] = {{5, 6}, {7, 5}, {5, 7}};
        std::span<const std::pair<int, int>> cands =
            hi ? std::span<const std::pair<int, int>>(HI)
               : std::span<const std::pair<int, int>>(LO);
        for (const auto &c : cands) {
            i64 d = c.second - c.first;
            if (std::find(used.begin(), used.end(), d) == used.end()) {
                used.push_back(d);
                return c;
            }
        }
        return std::nullopt;
    };

    auto setPair = [&](TmplParam p, i64 va, i64 vb) {
        pp.pa[p] = va;
        pp.pb[p] = vb;
        pp.varied[p] = va != vb;
    };

    if (sh.dst == Operand::Kind::Reg) {
        if (sh.pinDstEsp) {
            setPair(TP_DST_REG, x86::ESP, x86::ESP);
        } else {
            auto c = pick(sh.dstHi);
            if (!c)
                return std::nullopt;
            setPair(TP_DST_REG, c->first, c->second);
        }
    }
    if (sh.src == Operand::Kind::Reg) {
        if (sh.alias) {
            // Same values as dst, but *not* marked varied: every
            // matching field delta attributes to TP_DST_REG alone.
            pp.pa[TP_SRC_REG] = pp.pa[TP_DST_REG];
            pp.pb[TP_SRC_REG] = pp.pb[TP_DST_REG];
        } else {
            auto c = pick(sh.srcHi);
            if (!c)
                return std::nullopt;
            setPair(TP_SRC_REG, c->first, c->second);
        }
    }
    bool has_mem =
        sh.dst == Operand::Kind::Mem || sh.src == Operand::Kind::Mem;
    pp.pa[TP_MEM_SCALE] = pp.pb[TP_MEM_SCALE] = 1;
    if (has_mem) {
        if (sh.memBase) {
            auto c = pick(false);
            if (!c)
                return std::nullopt;
            setPair(TP_MEM_BASE, c->first, c->second);
        }
        if (sh.memIndex) {
            auto c = pick(false);
            if (!c)
                return std::nullopt;
            setPair(TP_MEM_INDEX, c->first, c->second);
            setPair(TP_MEM_SCALE, 1, 8); // delta 7, unique
        }
        setPair(TP_MEM_DISP, 0x40, 0x40 + 0x41400);
    }
    if (sh.src == Operand::Kind::Imm)
        setPair(TP_SRC_IMM, 0x1234, 0x1234 + 0x151000);
    if (sh.src2 == Operand::Kind::Imm)
        setPair(TP_SRC2_IMM, 0x2222, 0x2222 + 0x252000);
    if (op == Op::Jcc || op == Op::Setcc)
        setPair(TP_COND, 2, 6); // delta 4, unique vs register deltas
    setPair(TP_TARGET, 0x40001000, 0x40001000 + 0x1110000);
    // pc is held constant (x86pc is overwritten wholesale when
    // specializing); nextPc varies through the encoded length.
    setPair(TP_NEXT_PC, static_cast<i64>(PROBE_PC) + 2,
            static_cast<i64>(PROBE_PC) + 13);

    auto build = [&](const TmplParams &p, u8 length) {
        Insn in{};
        in.op = op;
        in.opSize = static_cast<u8>(op_size);
        in.pc = PROBE_PC;
        in.length = length;
        in.cond = static_cast<Cond>(p[TP_COND]);
        in.target = static_cast<Addr>(p[TP_TARGET]);
        auto operand = [&](Operand::Kind k, TmplParam reg_p,
                           TmplParam imm_p) {
            switch (k) {
              case Operand::Kind::Reg:
                return Operand::makeReg(static_cast<Reg>(p[reg_p]));
              case Operand::Kind::Imm:
                return Operand::makeImm(p[imm_p]);
              case Operand::Kind::Mem: {
                MemRef m;
                m.base = sh.memBase ? static_cast<Reg>(p[TP_MEM_BASE])
                                    : x86::REG_NONE;
                m.index = sh.memIndex
                              ? static_cast<Reg>(p[TP_MEM_INDEX])
                              : x86::REG_NONE;
                m.scale = static_cast<u8>(p[TP_MEM_SCALE]);
                m.disp = static_cast<i32>(p[TP_MEM_DISP]);
                return Operand::makeMem(m);
              }
              default:
                return Operand::none();
            }
        };
        in.dst = operand(sh.dst, TP_DST_REG, TP_SRC_IMM);
        in.src = operand(sh.src, TP_SRC_REG, TP_SRC_IMM);
        in.src2 = operand(sh.src2, TP_SRC_REG, TP_SRC2_IMM);
        return in;
    };
    pp.a = build(pp.pa, 2);
    pp.b = build(pp.pb, 13);
    return pp;
}

/**
 * Learn the rule for one form by double-cracking its probes and
 * attributing every moving field to exactly one parameter delta.
 */
std::optional<TemplateRule>
learnRule(Op op, unsigned op_size, const Shape &sh)
{
    std::optional<ProbePair> pp = makeProbes(op, op_size, sh);
    if (!pp || x86::formKey(pp->a) != x86::formKey(pp->b))
        return std::nullopt;

    uops::CrackResult ca = uops::crack(pp->a);
    uops::CrackResult cb = uops::crack(pp->b);
    if (ca.uops.size() != cb.uops.size())
        return std::nullopt;

    TemplateRule r;
    r.key = x86::formKey(pp->a);
    r.skeleton = ca.uops;
    r.insnComplex = pp->a.isComplex();
    for (size_t i = 0; i < ca.uops.size(); ++i) {
        if (!sameShape(ca.uops[i], cb.uops[i]))
            return std::nullopt;
        for (u8 f = 0; f < TF_NUM_FIELDS; ++f) {
            i64 va = getField(ca.uops[i], f);
            i64 vb = getField(cb.uops[i], f);
            i64 d = vb - va;
            if (d == 0)
                continue;
            int match = -1;
            for (u8 pi = 0; pi < TP_NUM_PARAMS; ++pi) {
                if (!pp->varied[pi] || pp->pb[pi] - pp->pa[pi] != d)
                    continue;
                if (match >= 0)
                    return std::nullopt; // ambiguous attribution
                match = pi;
            }
            if (match < 0)
                return std::nullopt; // unexplained movement
            r.patches.push_back({static_cast<u8>(i), f,
                                 static_cast<u8>(match),
                                 va - pp->pa[match]});
        }
    }

    // Bound the encoded size reachable under any substitution: a
    // patched micro-op can encode anywhere in [2, MAX_UOP_BYTES]; an
    // unpatched one has a fixed size. When the bound decides crack's
    // `encodedBytes > 16` for every specialization, bake the answer.
    {
        std::vector<bool> patched(r.skeleton.size(), false);
        for (const TmplPatch &pt : r.patches)
            patched[pt.uop] = true;
        unsigned min_b = 0, max_b = 0;
        for (size_t i = 0; i < r.skeleton.size(); ++i) {
            if (patched[i]) {
                r.patchedUops.push_back(static_cast<u8>(i));
                min_b += 2;
                max_b += uops::MAX_UOP_BYTES;
            } else {
                unsigned b = r.skeleton[i].encodedSize();
                r.fixedBytes += static_cast<u16>(b);
                min_b += b;
                max_b += b;
            }
        }
        r.complexity = (r.insnComplex || min_b > 16)
                           ? TemplateRule::Always
                           : (max_b <= 16 ? TemplateRule::Never
                                          : TemplateRule::Depends);
    }

    // A rule only enters the table if it reproduces the cracker
    // bit-for-bit on both probes (complex flag included).
    uops::UopVec out;
    if (TemplateRuleTable::specialize(r, pp->a, out) != ca.complex ||
        !uopsEqual(out, ca.uops))
        return std::nullopt;
    out.clear();
    if (TemplateRuleTable::specialize(r, pp->b, out) != cb.complex ||
        !uopsEqual(out, cb.uops))
        return std::nullopt;
    return r;
}

} // namespace

bool
TemplateRuleTable::specialize(const TemplateRule &r, const Insn &in,
                              uops::UopVec &out, unsigned *bytes_out)
{
    const size_t base = out.size();
    out.insert(out.end(), r.skeleton.begin(), r.skeleton.end());
    for (const TmplPatch &pt : r.patches)
        setField(out[base + pt.uop], pt.field,
                 paramValue(in, pt.param) + pt.offset);
    for (size_t i = base; i < out.size(); ++i)
        out[i].x86pc = in.pc;
    // Encoded size: baked for the untouched skeleton micro-ops,
    // re-derived only for the patched ones (their immediates pick the
    // extension-word width). One pass serves both the caller's code-
    // byte accounting and the complexity recompute below.
    unsigned bytes = 0;
    if (bytes_out || r.complexity == TemplateRule::Depends) {
        bytes = r.fixedBytes;
        for (u8 ui : r.patchedUops)
            bytes += out[base + ui].encodedSize();
        if (bytes_out)
            *bytes_out = bytes;
    }
    if (r.complexity != TemplateRule::Depends)
        return r.complexity == TemplateRule::Always;
    return r.insnComplex || bytes > 16;
}

TemplateRuleTable::TemplateRuleTable()
{
    std::unordered_map<u32, u32> seen;
    auto add = [&](Op op, unsigned size, const Shape &sh) {
        std::optional<TemplateRule> r = learnRule(op, size, sh);
        if (!r || seen.contains(r->key))
            return;
        seen.emplace(r->key, static_cast<u32>(rules.size()));
        rules.push_back(std::move(*r));
    };

    using K = Operand::Kind;
    // Operand menus. A register operand comes in a low (< 4) and a
    // high (>= 4) class; a memory operand in the four addressing-mode
    // shapes. Aliased forms (dst == src register: zeroing idioms like
    // `xor edx, edx`, `test eax, eax`) carry a distinct form key --
    // their cracked shape can differ -- so each reg x reg group also
    // enumerates an alias variant per register class. They are hot:
    // compilers emit the zeroing idiom constantly.
    struct Opt
    {
        K k;
        bool hi = false, base = false, index = false;
    };
    const Opt regs[] = {{K::Reg, false}, {K::Reg, true}};
    const Opt mems[] = {{K::Mem, false, true, false},
                        {K::Mem, false, true, true},
                        {K::Mem, false, false, true},
                        {K::Mem, false, false, false}};
    const unsigned sizes[] = {4, 2, 1};

    auto shape1 = [](const Opt &d) {
        Shape s;
        s.dst = d.k;
        s.dstHi = d.hi;
        s.memBase = d.base;
        s.memIndex = d.index;
        return s;
    };
    auto shapeSrc = [](const Opt &srco) {
        Shape s;
        s.src = srco.k;
        s.srcHi = srco.hi;
        s.memBase = srco.base;
        s.memIndex = srco.index;
        return s;
    };
    auto shape2 = [&](const Opt &d, const Opt &srco) {
        Shape s = shape1(d);
        s.src = srco.k;
        s.srcHi = srco.hi;
        if (srco.k == K::Mem) {
            s.memBase = srco.base;
            s.memIndex = srco.index;
        }
        return s;
    };
    auto shapeAlias = [&](const Opt &d) {
        Shape s = shape2(d, d);
        s.alias = true;
        return s;
    };

    // Enumeration order is part of the contract: it is the ablation
    // knob's deterministic rule ordering, roughly hottest-form-first.

    // Mov, then the two-operand ALU group.
    const Op alu2_like[] = {Op::Mov, Op::Add, Op::Sub, Op::Cmp,
                            Op::And, Op::Or,  Op::Xor, Op::Test,
                            Op::Adc, Op::Sbb};
    for (Op op : alu2_like) {
        for (unsigned size : sizes) {
            for (const Opt &d : regs) {
                for (const Opt &srco : regs)
                    add(op, size, shape2(d, srco));
                add(op, size, shapeAlias(d));
                add(op, size, shape2(d, Opt{K::Imm}));
                for (const Opt &srco : mems)
                    add(op, size, shape2(d, srco));
            }
            for (const Opt &d : mems) {
                for (const Opt &srco : regs)
                    add(op, size, shape2(d, srco));
                add(op, size, shape2(d, Opt{K::Imm}));
            }
        }
    }

    // Control transfers.
    add(Op::Jcc, 4, Shape{});
    add(Op::Jmp, 4, Shape{});
    add(Op::Call, 4, Shape{});
    add(Op::Ret, 4, Shape{});
    {
        Shape s;
        s.src = K::Imm;
        add(Op::Ret, 4, s);
    }
    for (const Opt &srco : regs) {
        add(Op::JmpInd, 4, shapeSrc(srco));
        add(Op::CallInd, 4, shapeSrc(srco));
    }
    for (const Opt &srco : mems) {
        add(Op::JmpInd, 4, shapeSrc(srco));
        add(Op::CallInd, 4, shapeSrc(srco));
    }

    // Stack ops.
    for (const Opt &srco : regs)
        add(Op::Push, 4, shapeSrc(srco));
    add(Op::Push, 4, shapeSrc(Opt{K::Imm}));
    for (const Opt &srco : mems)
        add(Op::Push, 4, shapeSrc(srco));
    for (const Opt &d : regs)
        add(Op::Pop, 4, shape1(d));
    {
        Shape s;
        s.dst = K::Reg;
        s.dstHi = true;
        s.pinDstEsp = true;
        add(Op::Pop, 4, s); // `pop esp` elides the ESP adjust
    }
    for (const Opt &d : mems)
        add(Op::Pop, 4, shape1(d));

    // Lea.
    for (const Opt &d : regs) {
        for (const Opt &srco : mems)
            add(Op::Lea, 4, shape2(d, srco));
    }

    // Shifts and rotates (count: immediate or CL).
    const Op shifts[] = {Op::Shl, Op::Shr, Op::Sar, Op::Rol, Op::Ror};
    for (Op op : shifts) {
        for (unsigned size : sizes) {
            for (const Opt &d : regs) {
                add(op, size, shape2(d, Opt{K::Imm}));
                add(op, size, shape2(d, regs[0]));
            }
            for (const Opt &d : mems) {
                add(op, size, shape2(d, Opt{K::Imm}));
                add(op, size, shape2(d, regs[0]));
            }
        }
    }

    // One-operand RMW ALU.
    const Op alu1[] = {Op::Inc, Op::Dec, Op::Not, Op::Neg};
    for (Op op : alu1) {
        for (unsigned size : sizes) {
            for (const Opt &d : regs)
                add(op, size, shape1(d));
            for (const Opt &d : mems)
                add(op, size, shape1(d));
        }
    }

    // Widening moves (opSize is the *source* size).
    for (Op op : {Op::Movzx, Op::Movsx}) {
        for (unsigned size : {1u, 2u}) {
            for (const Opt &d : regs) {
                for (const Opt &srco : regs)
                    add(op, size, shape2(d, srco));
                add(op, size, shapeAlias(d));
                for (const Opt &srco : mems)
                    add(op, size, shape2(d, srco));
            }
        }
    }

    // Setcc (always byte-sized).
    for (const Opt &d : regs)
        add(Op::Setcc, 1, shape1(d));
    for (const Opt &d : mems)
        add(Op::Setcc, 1, shape1(d));

    // Xchg.
    for (unsigned size : sizes) {
        for (const Opt &d : regs) {
            for (const Opt &srco : regs)
                add(Op::Xchg, size, shape2(d, srco));
            add(Op::Xchg, size, shapeAlias(d));
        }
        for (const Opt &d : mems) {
            for (const Opt &srco : regs)
                add(Op::Xchg, size, shape2(d, srco));
        }
    }

    // Multiplies / divides.
    for (unsigned size : {4u, 2u}) {
        for (const Opt &d : regs) {
            for (const Opt &srco : regs) {
                add(Op::Imul, size, shape2(d, srco));
                Shape s3 = shape2(d, srco);
                s3.src2 = K::Imm;
                add(Op::Imul, size, s3);
            }
            add(Op::Imul, size, shapeAlias(d));
            {
                // `imul $k, %r` decodes dst == src (the 0x69/0x6b
                // r, r/m, imm form with both fields the same reg).
                Shape s3 = shapeAlias(d);
                s3.src2 = K::Imm;
                add(Op::Imul, size, s3);
            }
            for (const Opt &srco : mems) {
                add(Op::Imul, size, shape2(d, srco));
                Shape s3 = shape2(d, srco);
                s3.src2 = K::Imm;
                add(Op::Imul, size, s3);
            }
        }
    }
    for (Op op : {Op::MulA, Op::ImulA, Op::DivA, Op::IdivA}) {
        for (unsigned size : sizes) {
            for (const Opt &srco : regs)
                add(op, size, shapeSrc(srco));
            for (const Opt &srco : mems)
                add(op, size, shapeSrc(srco));
        }
    }

    // Nullary forms.
    for (Op op : {Op::Cdq, Op::Clc, Op::Stc, Op::Cmc, Op::Nop, Op::Hlt,
                  Op::Int3, Op::Cpuid, Op::Rdtsc})
        add(op, 4, Shape{});

    // Freeze the lookup structure: power-of-two open-addressed table
    // at <= 50% load, Fibonacci-hashed, linear probing.
    size_t cap = 16;
    while (cap < rules.size() * 2)
        cap <<= 1;
    index.assign(cap, Slot{});
    indexMask = static_cast<u32>(cap - 1);
    for (const auto &[key, idx] : seen) {
        u32 h = key * 0x9e3779b9u;
        u32 i = (h ^ (h >> 16)) & indexMask;
        while (index[i].idx != EMPTY_SLOT)
            i = (i + 1) & indexMask;
        index[i] = Slot{key, idx};
    }
}

const TemplateRuleTable &
TemplateRuleTable::instance()
{
    static const TemplateRuleTable table;
    return table;
}

const TemplateRule *
TemplateRuleTable::find(x86::FormKey key, unsigned coverage_pct) const
{
    u32 h = key * 0x9e3779b9u;
    for (u32 i = (h ^ (h >> 16)) & indexMask;; i = (i + 1) & indexMask) {
        const Slot &s = index[i];
        if (s.idx == EMPTY_SLOT)
            return nullptr;
        if (s.key != key)
            continue;
        if (coverage_pct < 100) {
            u32 limit =
                static_cast<u32>(rules.size() * coverage_pct / 100);
            if (s.idx >= limit)
                return nullptr;
        }
        return &rules[s.idx];
    }
}

TemplateTranslator::TemplateTranslator(x86::Memory &m, unsigned max_insns,
                                       unsigned coverage_pct)
    : mem(m), table(TemplateRuleTable::instance()),
      fallback(m, max_insns), maxInsns(max_insns),
      coveragePct(coverage_pct)
{
}

std::unique_ptr<Translation>
TemplateTranslator::translate(Addr pc)
{
    auto t = std::make_unique<Translation>();
    t->kind = TransKind::BasicBlock;
    t->entryPc = pc;
    t->provenance = TransProvenance::TmplBbt;

    scratchUops.clear();
    scratchPcs.clear();
    unsigned block_bytes = 0;
    Addr cur = pc;
    // fetchWindow's cost is the page-map walk, not the copy, so one
    // block-sized fetch amortizes what the software BBT pays per
    // instruction. The window is refilled from the cursor whenever
    // fewer than MAX_INSN_LEN + 1 bytes remain, so every decode sees
    // exactly the bytes a per-instruction fetch would have seen.
    u8 window[12 * (x86::MAX_INSN_LEN + 1)];
    Addr winBase = pc;
    mem.fetchWindow(winBase, window, sizeof(window));
    for (unsigned n = 0; n < maxInsns; ++n) {
        size_t off = static_cast<size_t>(cur - winBase);
        if (off + x86::MAX_INSN_LEN + 1 > sizeof(window)) {
            winBase = cur;
            mem.fetchWindow(winBase, window, sizeof(window));
            off = 0;
        }
        x86::DecodeResult dr = x86::decode(
            std::span<const u8>(window + off, x86::MAX_INSN_LEN + 1),
            cur);
        if (!dr.ok) {
            if (t->numX86Insns == 0)
                return nullptr;
            break;
        }
        const x86::Insn &in = dr.insn;
        const TemplateRule *r = table.find(x86::formKey(in), coveragePct);
        if (!r) {
            // First miss: the whole block takes the software path, so
            // block boundaries stay identical to VM.soft.
            ++nFallbackBlocks;
            std::unique_ptr<Translation> f = fallback.translate(pc);
            if (f)
                nFallbackInsns += f->numX86Insns;
            return f;
        }
        unsigned insn_bytes = 0;
        bool complex =
            TemplateRuleTable::specialize(*r, in, scratchUops,
                                          &insn_bytes);
        block_bytes += insn_bytes;
        t->containsComplex = t->containsComplex || complex;
        scratchPcs.push_back(in.pc);
        ++t->numX86Insns;
        t->x86Bytes += in.length;
        cur = in.nextPc();
        if (in.isCti()) {
            t->endsInCti = true;
            if (in.isCondBranch()) {
                t->endsInCondBranch = true;
                t->condBranchTarget = in.target;
                t->condBranchPc = in.pc;
            }
            break;
        }
    }

    t->fallthroughPc = cur;
    // Copy-assign from the scratch buffers: the persistent vectors
    // get exact-sized allocations, and block_bytes already equals
    // encodedBytes(t->uops) (asserted by the rule-table lint test).
    t->uops = scratchUops;
    t->x86pcs = scratchPcs;
    t->codeBytes = block_bytes;
    ++nTmplBlocks;
    nTmplInsns += t->numX86Insns;
    nRuleHits += t->numX86Insns;
    return t;
}

void
TemplateTranslator::exportStats(StatRegistry &reg,
                                const std::string &prefix) const
{
    fallback.exportStats(reg, prefix);
    u64 total = nTmplInsns + nFallbackInsns;
    reg.set("dbt.tmpl.rules", static_cast<double>(table.numRules()),
            "learned template rules in the shared table");
    reg.set("dbt.tmpl.blocks", static_cast<double>(nTmplBlocks),
            "blocks built entirely from templates");
    reg.set("dbt.tmpl.insns", static_cast<double>(nTmplInsns),
            "instructions translated by template specialization");
    reg.set("dbt.tmpl.rule_hits", static_cast<double>(nRuleHits),
            "successful rule lookups in committed template blocks");
    reg.set("dbt.tmpl.fallback_blocks",
            static_cast<double>(nFallbackBlocks),
            "blocks delegated to the software BBT");
    reg.set("dbt.tmpl.fallback_insns",
            static_cast<double>(nFallbackInsns),
            "instructions translated by the software fallback");
    reg.set("dbt.tmpl.coverage_pct",
            total ? 100.0 * static_cast<double>(nTmplInsns) /
                        static_cast<double>(total)
                  : 0.0,
            "percent of translated instructions handled by templates");
}

} // namespace cdvm::dbt
