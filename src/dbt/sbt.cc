#include "dbt/sbt.hh"

#include <cassert>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "uops/crack.hh"
#include "uops/encoding.hh"

namespace cdvm::dbt
{

x86::Cond
invertCond(x86::Cond cc)
{
    // x86 encodes inversion in the low bit of the condition code.
    return static_cast<x86::Cond>(static_cast<u8>(cc) ^ 1);
}

std::unique_ptr<Translation>
SuperblockTranslator::translate(const SuperblockTrace &trace)
{
    auto t = std::make_unique<Translation>();
    t->kind = TransKind::Superblock;
    t->provenance = TransProvenance::Sbt;
    t->entryPc = trace.entryPc;
    t->fallthroughPc = trace.fallthroughPc;
    t->endsInCti = trace.endsInCti;

    for (std::size_t i = 0; i < trace.insns.size(); ++i) {
        const TraceInsn &ti = trace.insns[i];
        const x86::Insn &in = ti.insn;
        t->x86pcs.push_back(in.pc);
        ++t->numX86Insns;
        t->x86Bytes += in.length;

        if (in.op == x86::Op::Jmp && ti.takenOnTrace) {
            // Linearized away: the trace continues at the target.
            continue;
        }
        if (in.op == x86::Op::Call && ti.takenOnTrace) {
            // Followed call: keep the return-address push, elide the
            // jump (the callee body follows on the trace).
            uops::CrackResult cr = uops::crack(in);
            assert(!cr.uops.empty() &&
                   cr.uops.back().op == uops::UOp::Jmp);
            cr.uops.pop_back();
            t->containsComplex = t->containsComplex || cr.complex;
            for (uops::Uop &u : cr.uops)
                t->uops.push_back(u);
            continue;
        }
        if (in.op == x86::Op::Jcc && ti.takenOnTrace) {
            // Invert so the hot path falls through; the side exit
            // goes to the original fall-through.
            uops::Uop br;
            br.op = uops::UOp::Br;
            br.cond = static_cast<u8>(invertCond(in.cond));
            br.target = in.nextPc();
            br.x86pc = in.pc;
            t->uops.push_back(br);
            continue;
        }

        uops::CrackResult cr = uops::crack(in);
        t->containsComplex = t->containsComplex || cr.complex;
        for (uops::Uop &u : cr.uops)
            t->uops.push_back(u);
    }

    lastOpt = optimize(t->uops, fusionCfg);
    nUops += t->uops.size();
    nPairs += lastOpt.fusion.pairs;

    t->codeBytes = uops::encodedBytes(t->uops);
    ++nSuperblocks;
    nInsns += t->numX86Insns;
    return t;
}

void
SuperblockTranslator::exportStats(StatRegistry &reg,
                                  const std::string &prefix) const
{
    reg.set(prefix + ".superblocks", static_cast<double>(nSuperblocks),
            "hot superblocks optimized");
    reg.set(prefix + ".insns", static_cast<double>(nInsns),
            "x86 instructions optimized");
    reg.set(prefix + ".uops_emitted", static_cast<double>(nUops),
            "micro-ops emitted after optimization");
    reg.set(prefix + ".pairs_fused", static_cast<double>(nPairs),
            "macro-op pairs fused");
    reg.set(prefix + ".fusion_rate",
            nUops ? 2.0 * static_cast<double>(nPairs) /
                        static_cast<double>(nUops)
                  : 0.0,
            "fraction of uops inside fused pairs");
}

} // namespace cdvm::dbt
