#include "dbt/image.hh"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "uops/encoding.hh"

namespace cdvm::dbt
{

namespace
{

constexpr u64 IMAGE_ALIGN = 8;

u64
align8(u64 v)
{
    return (v + (IMAGE_ALIGN - 1)) & ~(IMAGE_ALIGN - 1);
}

void
putU32(std::vector<u8> &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(v >> 8 * i));
}

void
putU64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> 8 * i));
}

u64
readU64(const u8 *p)
{
    u64 v = 0;
    std::memcpy(&v, p, sizeof v);
    return v;
}

/** Record blob size: header + pc table + raw uop bodies, 8-aligned. */
u64
recordBlobBytes(u64 n_pcs, u64 n_uops)
{
    return align8(sizeof(ImageRecordHeader) + n_pcs * sizeof(Addr) +
                  n_uops * sizeof(uops::Uop));
}

/**
 * Deterministic Uop image bytes: copy member-by-member into a
 * value-initialized temporary so padding bytes are zero, not whatever
 * the translator's vector happened to hold.
 */
void
writeUop(u8 *dst, const uops::Uop &u)
{
    uops::Uop clean{};
    clean.op = u.op;
    clean.dst = u.dst;
    clean.src1 = u.src1;
    clean.src2 = u.src2;
    clean.size = u.size;
    clean.scale = u.scale;
    clean.cond = u.cond;
    clean.hasImm = u.hasImm;
    clean.imm = u.imm;
    clean.writeFlags = u.writeFlags;
    clean.fusedHead = u.fusedHead;
    clean.target = u.target;
    clean.x86pc = u.x86pc;
    std::memcpy(dst, &clean, sizeof clean);
}

/** Semantic identity of a record (counts and chains excluded, so
 *  identical code dedupes across contexts that ran it differently). */
u64
contentKeyOf(const SavedTranslation &e, u64 page_key)
{
    std::vector<u8> id;
    id.reserve(64 + e.body.size() + 8 * e.x86pcs.size() +
               8 * e.uopPcs.size());
    id.push_back(static_cast<u8>(e.kind));
    id.push_back(static_cast<u8>((e.containsComplex ? 1 : 0) |
                                 (e.endsInCti ? 2 : 0) |
                                 (e.endsInCondBranch ? 4 : 0)));
    putU64(id, e.entryPc);
    putU32(id, e.numX86Insns);
    putU32(id, e.x86Bytes);
    putU64(id, e.fallthroughPc);
    putU64(id, e.condBranchTarget);
    putU64(id, e.condBranchPc);
    putU64(id, page_key);
    putU32(id, static_cast<u32>(e.x86pcs.size()));
    for (Addr pc : e.x86pcs)
        putU64(id, pc);
    putU32(id, static_cast<u32>(e.uopPcs.size()));
    for (Addr pc : e.uopPcs)
        putU64(id, pc);
    putU32(id, static_cast<u32>(e.body.size()));
    id.insert(id.end(), e.body.begin(), e.body.end());
    return fnv1a(id);
}

/** Full equality check behind a contentKey match (collision guard). */
bool
sameRecord(const SavedTranslation &a, const SavedTranslation &b)
{
    return a.kind == b.kind && a.entryPc == b.entryPc &&
           a.numX86Insns == b.numX86Insns &&
           a.x86Bytes == b.x86Bytes &&
           a.fallthroughPc == b.fallthroughPc &&
           a.containsComplex == b.containsComplex &&
           a.endsInCti == b.endsInCti &&
           a.endsInCondBranch == b.endsInCondBranch &&
           a.condBranchTarget == b.condBranchTarget &&
           a.condBranchPc == b.condBranchPc &&
           a.x86pcs == b.x86pcs && a.uopPcs == b.uopPcs &&
           a.body == b.body;
}

/** Expand one image record back into a v1-style entry (decoded body
 *  re-encoded, provenance from the in-place Uop tags). */
SavedTranslation
expandRecord(const TransImage::RecordView &v)
{
    SavedTranslation e;
    e.kind =
        v.hdr->kind ? TransKind::Superblock : TransKind::BasicBlock;
    e.entryPc = v.hdr->entryPc;
    e.numX86Insns = v.hdr->numX86Insns;
    e.x86Bytes = v.hdr->x86Bytes;
    e.fallthroughPc = v.hdr->fallthroughPc;
    e.containsComplex = v.hdr->flags & IMG_F_COMPLEX;
    e.endsInCti = v.hdr->flags & IMG_F_ENDS_CTI;
    e.endsInCondBranch = v.hdr->flags & IMG_F_ENDS_COND;
    e.provenance = static_cast<TransProvenance>(
        (v.hdr->flags & IMG_F_PROV_MASK) >> IMG_F_PROV_SHIFT);
    e.condBranchTarget = v.hdr->condBranchTarget;
    e.condBranchPc = v.hdr->condBranchPc;
    e.execCount = v.hdr->execCount;
    e.takenCount = v.hdr->takenCount;
    e.notTakenCount = v.hdr->notTakenCount;
    for (unsigned c = 0; c < 2; ++c) {
        e.chains[c].targetPc = v.hdr->chainTargetPc[c];
        e.chains[c].record = v.hdr->chainRecord[c];
    }
    e.x86pcs.assign(v.x86pcs.begin(), v.x86pcs.end());
    e.uopPcs.reserve(v.uops.size());
    for (const uops::Uop &u : v.uops)
        e.uopPcs.push_back(u.x86pc);
    e.body = uops::encode(v.uops);
    return e;
}

} // namespace

u64
pageSetKey(std::span<const std::pair<Addr, u64>> sorted_pages)
{
    std::vector<u8> bytes;
    bytes.reserve(sorted_pages.size() * 16);
    for (const auto &[page, hash] : sorted_pages) {
        putU64(bytes, page);
        putU64(bytes, hash);
    }
    return fnv1a(bytes);
}

// --- TransImage -----------------------------------------------------

TransImage::~TransImage()
{
    reset();
}

TransImage &
TransImage::operator=(TransImage &&other) noexcept
{
    if (this == &other)
        return *this;
    reset();
    backing = std::move(other.backing);
    base = other.base;
    len = other.len;
    deltas = other.deltas;
    migrated = other.migrated;
    hdr = other.hdr;
    pages = other.pages;
    dedupe = other.dedupe;
    recIndex = other.recIndex;
    recordsBase = other.recordsBase;
    relocations = other.relocations;
    branches = other.branches;
    other.reset();
    return *this;
}

void
TransImage::reset()
{
    backing = MapSource();
    base = nullptr;
    len = 0;
    deltas = 0;
    migrated = false;
    hdr = nullptr;
    pages = {};
    dedupe = {};
    recIndex = {};
    recordsBase = nullptr;
    relocations = {};
    branches = {};
}

LoadError
TransImage::verify()
{
    // The header fields are read with plain loads only after the
    // magic/version/size gates; every *record* field is read only
    // after the whole-image checksum passed, so a bit flip can never
    // reach a raw-POD load (no UB on corrupt input).
    if (len < sizeof(ImageHeader))
        return LoadError::Truncated;
    if (readU64(base) != IMAGE_MAGIC)
        return LoadError::BadMagic;
    u32 version = 0;
    std::memcpy(&version, base + 8, sizeof version);
    if (version != IMAGE_VERSION)
        return LoadError::BadVersion;
    const u64 total = readU64(base + 16);
    if (total < sizeof(ImageHeader))
        return LoadError::Corrupt;
    if (total > len)
        return LoadError::Truncated;

    // Whole-image checksum with the checksum field itself zeroed.
    {
        u64 h = 0xCBF29CE484222325ull;
        for (u64 i = 0; i < total; ++i) {
            const u8 b = (i >= 24 && i < 32) ? 0 : base[i];
            h ^= b;
            h *= 0x100000001B3ull;
        }
        if (h != readU64(base + 24))
            return LoadError::Corrupt;
    }

    hdr = reinterpret_cast<const ImageHeader *>(base);
    if (hdr->sectionCount != IMAGE_NUM_SECTIONS)
        return LoadError::Corrupt;

    // Section table: in-order, 8-aligned, inside the base image, and
    // byte-count consistent with the fixed entry sizes.
    static constexpr u64 entry_bytes[IMAGE_NUM_SECTIONS] = {
        sizeof(ImagePageHash), sizeof(ImageDedupeEntry), sizeof(u64),
        0, sizeof(ImageReloc), sizeof(ImageBranchStat)};
    u64 prev_end = sizeof(ImageHeader);
    for (u32 s = 0; s < IMAGE_NUM_SECTIONS; ++s) {
        const ImageSectionDesc &d = hdr->sections[s];
        if (d.offset % IMAGE_ALIGN || d.offset < prev_end ||
            d.bytes > total || d.offset > total - d.bytes)
            return LoadError::Corrupt;
        if (entry_bytes[s] && d.bytes != d.count * entry_bytes[s])
            return LoadError::Corrupt;
        prev_end = d.offset + d.bytes;
    }

    auto desc = [this](ImageSection s) -> const ImageSectionDesc & {
        return hdr->sections[static_cast<u32>(s)];
    };
    const ImageSectionDesc &dp = desc(ImageSection::PageIndex);
    const ImageSectionDesc &dd = desc(ImageSection::DedupeIndex);
    const ImageSectionDesc &di = desc(ImageSection::RecordIndex);
    const ImageSectionDesc &dr = desc(ImageSection::Records);
    const ImageSectionDesc &dl = desc(ImageSection::Relocs);
    const ImageSectionDesc &db = desc(ImageSection::BranchProfile);

    pages = {reinterpret_cast<const ImagePageHash *>(base + dp.offset),
             static_cast<std::size_t>(dp.count)};
    dedupe = {reinterpret_cast<const ImageDedupeEntry *>(base +
                                                         dd.offset),
              static_cast<std::size_t>(dd.count)};
    recIndex = {reinterpret_cast<const u64 *>(base + di.offset),
                static_cast<std::size_t>(di.count)};
    recordsBase = base + dr.offset;
    relocations = {reinterpret_cast<const ImageReloc *>(base +
                                                        dl.offset),
                   static_cast<std::size_t>(dl.count)};
    branches = {reinterpret_cast<const ImageBranchStat *>(base +
                                                          db.offset),
                static_cast<std::size_t>(db.count)};

    // Per-record structural bounds.
    const u64 n = di.count;
    for (u64 i = 0; i < n; ++i) {
        const u64 off = recIndex[i];
        if (off % IMAGE_ALIGN ||
            off > dr.bytes ||
            dr.bytes - off < sizeof(ImageRecordHeader))
            return LoadError::Corrupt;
        const auto *rh = reinterpret_cast<const ImageRecordHeader *>(
            recordsBase + off);
        if (rh->kind > 1 || rh->flags > 31 || rh->nUops == 0)
            return LoadError::Corrupt;
        const u64 body =
            recordBlobBytes(rh->nPcs, rh->nUops);
        if (dr.bytes - off < body)
            return LoadError::Corrupt;
        for (unsigned c = 0; c < 2; ++c) {
            if (rh->chainRecord[c] != NO_RECORD &&
                rh->chainRecord[c] >= n)
                return LoadError::Corrupt;
        }
    }
    for (const ImageReloc &r : relocations) {
        if (r.fromRecord >= n || r.toRecord >= n || r.exitSlot >= 2)
            return LoadError::Corrupt;
    }
    for (const ImageDedupeEntry &d : dedupe) {
        if (d.record >= n)
            return LoadError::Corrupt;
    }
    return LoadError::None;
}

TransImage::RecordView
TransImage::record(std::size_t i) const
{
    RecordView v;
    const u8 *p = recordsBase + recIndex[i];
    v.hdr = reinterpret_cast<const ImageRecordHeader *>(p);
    v.x86pcs = {reinterpret_cast<const Addr *>(
                    p + sizeof(ImageRecordHeader)),
                v.hdr->nPcs};
    v.uops = {reinterpret_cast<const uops::Uop *>(
                  p + sizeof(ImageRecordHeader) +
                  v.hdr->nPcs * sizeof(Addr)),
              v.hdr->nUops};
    return v;
}

LoadError
TransImage::adopt(std::span<const u8> bytes, TransImage &out)
{
    TransImage img;
    img.backing = MapSource::ownedCopy(bytes);
    img.base = img.backing.data();
    img.len = img.backing.size();
    const LoadError e = img.verify();
    if (e != LoadError::None)
        return e;
    if (img.hdr->totalBytes != img.len)
        return LoadError::Corrupt; // trailing garbage after the image
    out = std::move(img);
    return LoadError::None;
}

LoadError
TransImage::load(const std::string &path, TransImage &out)
{
    LoadError e = LoadError::None;
    MapSource src = MapSource::mapFile(path, e);
    if (e != LoadError::None)
        return e;
    return fromSource(std::move(src), out);
}

LoadError
TransImage::loadFd(int fd, TransImage &out)
{
    LoadError e = LoadError::None;
    MapSource src = MapSource::mapFd(fd, e);
    if (e != LoadError::None)
        return e;
    return fromSource(std::move(src), out);
}

LoadError
TransImage::fromSource(MapSource src, TransImage &out)
{
    TransImage img;
    img.backing = std::move(src);
    img.base = img.backing.data();
    img.len = img.backing.size();
    if (img.len < 8)
        return LoadError::Truncated;

    // Transparent migration: a v1 "CDVMREPO" file converts through
    // the builder on first load.
    if (readU64(img.base) == REPO_MAGIC) {
        Repository v1;
        const LoadError e =
            deserialize({img.base, static_cast<std::size_t>(img.len)},
                        v1);
        if (e != LoadError::None)
            return e;
        ImageBuilder b;
        b.add(v1);
        const std::vector<u8> blob = b.build();
        const LoadError e2 = adopt(blob, out);
        if (e2 == LoadError::None)
            out.migrated = true;
        return e2;
    }

    const LoadError e = img.verify();
    if (e != LoadError::None)
        return e;

    if (img.hdr->totalBytes == img.len) {
        out = std::move(img);
        return LoadError::None;
    }

    // Append-only delta segments follow the base image; each is an
    // independently checksummed capture. Verify every segment, then
    // compact base + deltas into one in-memory generation.
    std::vector<Repository> delta_repos;
    u64 pos = img.hdr->totalBytes;
    while (pos < img.len) {
        if (img.len - pos < 16)
            return LoadError::Truncated;
        if (readU64(img.base + pos) != DELTA_MAGIC)
            return LoadError::Corrupt;
        const u64 payload = readU64(img.base + pos + 8);
        if (payload == 0 || img.len - pos - 16 < payload)
            return LoadError::Truncated;
        Repository d;
        const LoadError de = deserialize(
            {img.base + pos + 16, static_cast<std::size_t>(payload)},
            d);
        if (de != LoadError::None)
            return de;
        delta_repos.push_back(std::move(d));
        pos += 16 + payload;
    }
    ImageBuilder b(
        ImageBuilder::Options{0, img.hdr->generation + 1});
    b.add(img);
    for (const Repository &d : delta_repos)
        b.add(d);
    const LoadError e2 = adopt(b.build(), out);
    if (e2 == LoadError::None)
        out.deltas = static_cast<unsigned>(delta_repos.size());
    return e2;
}

bool
TransImage::save(const std::string &path, std::span<const u8> image)
{
    // Atomic replace: a concurrent mapper of path sees either the old
    // complete image or the new one, never a truncated-then-rewritten
    // window.
    return atomicWriteFile(path, image);
}

bool
TransImage::appendDelta(const std::string &path,
                        const Repository &delta)
{
    // Only append to something that really is a base image.
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            setLastIoErrno(errno);
            return false;
        }
        u8 magic[8];
        const bool head_ok =
            std::fread(magic, 1, sizeof magic, f) == sizeof magic;
        if (std::fclose(f) != 0)
            setLastIoErrno(errno);
        if (!head_ok || readU64(magic) != IMAGE_MAGIC)
            return false;
    }
    const std::vector<u8> payload = serialize(delta);
    std::vector<u8> seg;
    putU64(seg, DELTA_MAGIC);
    putU64(seg, payload.size());
    seg.insert(seg.end(), payload.begin(), payload.end());
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f) {
        setLastIoErrno(errno);
        return false;
    }
    bool ok =
        std::fwrite(seg.data(), 1, seg.size(), f) == seg.size();
    if (!ok)
        setLastIoErrno(errno);
    if (std::fclose(f) != 0) {
        if (ok)
            setLastIoErrno(errno);
        ok = false;
    }
    return ok;
}

Repository
TransImage::toRepository() const
{
    Repository repo;
    repo.pageHashes.reserve(pages.size());
    for (const ImagePageHash &p : pages)
        repo.pageHashes.emplace_back(p.page, p.hash);
    repo.entries.reserve(recordCount());
    for (std::size_t i = 0; i < recordCount(); ++i)
        repo.entries.push_back(expandRecord(record(i)));
    repo.branchProfile.reserve(branches.size());
    for (const ImageBranchStat &b : branches)
        repo.branchProfile.push_back(
            SavedBranchStat{b.pc, b.taken, b.notTaken});
    return repo;
}

// --- ImageBuilder ---------------------------------------------------

void
ImageBuilder::add(const Repository &repo)
{
    std::unordered_map<Addr, u64> src_pages(repo.pageHashes.begin(),
                                            repo.pageHashes.end());
    for (const auto &[page, hash] : repo.pageHashes)
        pageHash.emplace(page, hash);
    for (const SavedBranchStat &b : repo.branchProfile) {
        auto &cur = branch[b.pc];
        cur.first = std::max(cur.first, b.taken);
        cur.second = std::max(cur.second, b.notTaken);
    }

    std::vector<u32> remap(repo.entries.size(), NO_RECORD);
    for (std::size_t j = 0; j < repo.entries.size(); ++j) {
        const SavedTranslation &e = repo.entries[j];
        // Stage only records a warm install could use: the body must
        // decode and the provenance side table must match it.
        if (!e.materialize())
            continue;

        std::vector<std::pair<Addr, u64>> rec_pages;
        for (Addr page : e.coveredPages()) {
            const auto it = src_pages.find(page);
            rec_pages.emplace_back(
                page, it != src_pages.end() ? it->second : 0);
        }
        std::sort(rec_pages.begin(), rec_pages.end());
        remap[j] = stage(SavedTranslation(e), pageSetKey(rec_pages));
    }

    // Chains, remapped to builder indices. A dedupe hit may fill a
    // shared record's still-empty chain slots, never overwrite them.
    for (std::size_t j = 0; j < repo.entries.size(); ++j) {
        if (remap[j] == NO_RECORD)
            continue;
        for (unsigned c = 0; c < 2; ++c) {
            const SavedChain &ch = repo.entries[j].chains[c];
            if (ch.record == NO_RECORD || ch.record >= remap.size())
                continue;
            const u32 to = remap[ch.record];
            if (to == NO_RECORD)
                continue;
            bindChain(remap[j], c, ch.targetPc, to);
        }
    }
}

void
ImageBuilder::add(const TransImage &img)
{
    // Stage records straight off the image, preserving each record's
    // stored pageKey: the merged page index keeps only one hash per
    // page, so recomputing content addresses from it would corrupt
    // records whenever two workload classes carry different code at
    // the same guest pages (and repeated delta merges would then
    // duplicate instead of dedupe).
    for (const ImagePageHash &p : img.pageHashes())
        pageHash.emplace(p.page, p.hash);
    for (const ImageBranchStat &b : img.branchProfile()) {
        auto &cur = branch[b.pc];
        cur.first = std::max(cur.first, b.taken);
        cur.second = std::max(cur.second, b.notTaken);
    }

    std::vector<u32> remap(img.recordCount(), NO_RECORD);
    for (std::size_t j = 0; j < img.recordCount(); ++j) {
        const TransImage::RecordView v = img.record(j);
        remap[j] = stage(expandRecord(v), v.hdr->pageKey);
    }
    for (std::size_t j = 0; j < img.recordCount(); ++j) {
        const TransImage::RecordView v = img.record(j);
        for (unsigned c = 0; c < 2; ++c) {
            const u32 rec = v.hdr->chainRecord[c];
            if (rec == NO_RECORD || rec >= remap.size())
                continue;
            const u32 to = remap[rec];
            if (to == NO_RECORD)
                continue;
            bindChain(remap[j], c, v.hdr->chainTargetPc[c], to);
        }
    }
}

u32
ImageBuilder::stage(SavedTranslation &&e, u64 page_key)
{
    const u64 ck = contentKeyOf(e, page_key);
    const auto hit = byContent.find(ck);
    if (hit != byContent.end() &&
        sameRecord(recs[hit->second].entry, e)) {
        // Shared record: keep the hotter profile of the two.
        SavedTranslation &kept = recs[hit->second].entry;
        kept.execCount = std::max(kept.execCount, e.execCount);
        kept.takenCount = std::max(kept.takenCount, e.takenCount);
        kept.notTakenCount =
            std::max(kept.notTakenCount, e.notTakenCount);
        ++nDedupe;
        return hit->second;
    }

    const u32 idx = static_cast<u32>(recs.size());
    Staged s;
    s.entry = std::move(e);
    s.entry.chains[0] = SavedChain{};
    s.entry.chains[1] = SavedChain{};
    s.pageKey = page_key;
    s.contentKey = ck;
    recs.push_back(std::move(s));
    byContent.emplace(ck, idx);
    return idx;
}

void
ImageBuilder::bindChain(u32 from, unsigned slot, Addr target_pc,
                        u32 to)
{
    SavedChain &s = recs[from].entry.chains[slot];
    if (s.record == NO_RECORD)
        s = SavedChain{target_pc, to};
}

std::vector<u8>
ImageBuilder::build()
{
    // Hotness-ranked eviction against the size budget: records are
    // already ranked (capture order is hottest-first), so the budget
    // drops the coldest tail. Fixed sections are charged first.
    const u64 fixed = sizeof(ImageHeader) +
                      pageHash.size() * sizeof(ImagePageHash) +
                      branch.size() * sizeof(ImageBranchStat);
    std::size_t kept = recs.size();
    if (opt.sizeBudgetBytes) {
        u64 acc = fixed;
        kept = 0;
        for (const Staged &s : recs) {
            const u64 cost =
                recordBlobBytes(s.entry.x86pcs.size(),
                                s.entry.uopPcs.size()) +
                sizeof(u64) + sizeof(ImageDedupeEntry) +
                2 * sizeof(ImageReloc);
            if (acc + cost > opt.sizeBudgetBytes)
                break;
            acc += cost;
            ++kept;
        }
    }
    nEvicted = recs.size() - kept;

    // Record blob offsets and the flat relocation list (links into
    // the evicted tail are dropped).
    std::vector<u64> rec_off(kept);
    u64 rec_bytes = 0;
    std::vector<ImageReloc> relocs;
    for (std::size_t i = 0; i < kept; ++i) {
        const Staged &s = recs[i];
        rec_off[i] = rec_bytes;
        rec_bytes += recordBlobBytes(s.entry.x86pcs.size(),
                                     s.entry.uopPcs.size());
        for (unsigned c = 0; c < 2; ++c) {
            const SavedChain &ch = s.entry.chains[c];
            if (ch.record != NO_RECORD && ch.record < kept) {
                ImageReloc r;
                r.targetPc = ch.targetPc;
                r.fromRecord = static_cast<u32>(i);
                r.toRecord = ch.record;
                r.exitSlot = c;
                relocs.push_back(r);
            }
        }
    }

    ImageHeader hdr;
    hdr.generation = opt.generation;
    hdr.dedupeHits = nDedupe;
    hdr.evicted = nEvicted;
    u64 off = sizeof(ImageHeader);
    auto place = [&](ImageSection s, u64 bytes, u64 count) {
        ImageSectionDesc &d =
            hdr.sections[static_cast<u32>(s)];
        d.offset = off;
        d.bytes = bytes;
        d.count = count;
        off += align8(bytes);
    };
    place(ImageSection::PageIndex,
          pageHash.size() * sizeof(ImagePageHash), pageHash.size());
    place(ImageSection::DedupeIndex,
          kept * sizeof(ImageDedupeEntry), kept);
    place(ImageSection::RecordIndex, kept * sizeof(u64), kept);
    place(ImageSection::Records, rec_bytes, kept);
    place(ImageSection::Relocs, relocs.size() * sizeof(ImageReloc),
          relocs.size());
    place(ImageSection::BranchProfile,
          branch.size() * sizeof(ImageBranchStat), branch.size());
    hdr.totalBytes = off;

    std::vector<u8> out(off, 0);
    auto at = [&out](u64 o) { return out.data() + o; };
    auto sec = [&hdr](ImageSection s) -> const ImageSectionDesc & {
        return hdr.sections[static_cast<u32>(s)];
    };

    u8 *p = at(sec(ImageSection::PageIndex).offset);
    for (const auto &[page, hash] : pageHash) {
        const ImagePageHash ph{page, hash};
        std::memcpy(p, &ph, sizeof ph);
        p += sizeof ph;
    }

    std::vector<ImageDedupeEntry> dd(kept);
    for (std::size_t i = 0; i < kept; ++i)
        dd[i] = ImageDedupeEntry{recs[i].contentKey,
                                 static_cast<u32>(i), 0};
    std::sort(dd.begin(), dd.end(),
              [](const ImageDedupeEntry &a, const ImageDedupeEntry &b) {
                  return a.key != b.key ? a.key < b.key
                                        : a.record < b.record;
              });
    std::memcpy(at(sec(ImageSection::DedupeIndex).offset), dd.data(),
                dd.size() * sizeof(ImageDedupeEntry));

    std::memcpy(at(sec(ImageSection::RecordIndex).offset),
                rec_off.data(), rec_off.size() * sizeof(u64));

    for (std::size_t i = 0; i < kept; ++i) {
        const Staged &s = recs[i];
        const std::unique_ptr<Translation> t = s.entry.materialize();
        assert(t && "staged records were validated in add()");
        ImageRecordHeader rh;
        rh.entryPc = s.entry.entryPc;
        rh.fallthroughPc = s.entry.fallthroughPc;
        rh.condBranchTarget = s.entry.condBranchTarget;
        rh.condBranchPc = s.entry.condBranchPc;
        rh.execCount = s.entry.execCount;
        rh.takenCount = s.entry.takenCount;
        rh.notTakenCount = s.entry.notTakenCount;
        rh.pageKey = s.pageKey;
        for (unsigned c = 0; c < 2; ++c) {
            const SavedChain &ch = s.entry.chains[c];
            const bool live =
                ch.record != NO_RECORD && ch.record < kept;
            rh.chainTargetPc[c] = live ? ch.targetPc : 0;
            rh.chainRecord[c] = live ? ch.record : NO_RECORD;
        }
        rh.numX86Insns = s.entry.numX86Insns;
        rh.x86Bytes = s.entry.x86Bytes;
        rh.codeBytes = static_cast<u32>(s.entry.body.size());
        rh.nPcs = static_cast<u32>(s.entry.x86pcs.size());
        rh.nUops = static_cast<u32>(t->uops.size());
        rh.kind = s.entry.kind == TransKind::Superblock ? 1 : 0;
        rh.flags =
            (s.entry.containsComplex ? IMG_F_COMPLEX : 0) |
            (s.entry.endsInCti ? IMG_F_ENDS_CTI : 0) |
            (s.entry.endsInCondBranch ? IMG_F_ENDS_COND : 0) |
            static_cast<u8>(static_cast<u8>(s.entry.provenance)
                            << IMG_F_PROV_SHIFT);

        u8 *rp = at(sec(ImageSection::Records).offset + rec_off[i]);
        std::memcpy(rp, &rh, sizeof rh);
        rp += sizeof rh;
        std::memcpy(rp, s.entry.x86pcs.data(),
                    s.entry.x86pcs.size() * sizeof(Addr));
        rp += s.entry.x86pcs.size() * sizeof(Addr);
        for (const uops::Uop &u : t->uops) {
            writeUop(rp, u);
            rp += sizeof(uops::Uop);
        }
    }

    std::memcpy(at(sec(ImageSection::Relocs).offset), relocs.data(),
                relocs.size() * sizeof(ImageReloc));

    p = at(sec(ImageSection::BranchProfile).offset);
    for (const auto &[pc, counts] : branch) {
        const ImageBranchStat bs{pc, counts.first, counts.second};
        std::memcpy(p, &bs, sizeof bs);
        p += sizeof bs;
    }

    std::memcpy(out.data(), &hdr, sizeof hdr);
    // Checksum with its own field zeroed, then patched in.
    const u64 sum = fnv1a(out);
    std::memcpy(out.data() + 24, &sum, sizeof sum);
    return out;
}

// --- ImageStore -----------------------------------------------------

LoadError
ImageStore::append(const Repository &delta, u64 size_budget)
{
    const std::shared_ptr<const TransImage> basis = acquire();
    ImageBuilder b(ImageBuilder::Options{
        size_budget,
        (basis ? basis->header().generation : 0) + 1});
    if (basis)
        b.add(*basis);
    b.add(delta);
    auto next = std::make_shared<TransImage>();
    const LoadError e = TransImage::adopt(b.build(), *next);
    if (e != LoadError::None)
        return e;
    publish(std::move(next));
    return LoadError::None;
}

} // namespace cdvm::dbt
