/**
 * @file
 * MapSource: the explicit backing store of a translation image.
 *
 * A TransImage used to carry its backing as two ad-hoc special cases
 * (an mmap base pointer or an adopted aligned heap buffer). Serving
 * one physical image copy to every co-resident VM process adds a
 * third — a read-only MAP_SHARED mapping of a file descriptor handed
 * over a Unix-domain socket — so the backing becomes its own layer:
 *
 *  - OwnedBuffer:  one 8-aligned heap copy (adopt(), non-unix reads,
 *                  delta compaction). Private to this process.
 *  - FileMap:      a read-only file mapping (warm-start image files).
 *                  Page-cache pages are physically shared with every
 *                  other process mapping the same file.
 *  - SharedFd:     a read-only MAP_SHARED mapping of a received fd
 *                  (sealed memfd or file), the cross-process serving
 *                  path: N mapper processes, one physical copy.
 *
 * Residency accounting: residency() counts the mapping's pages and,
 * via mincore(2), how many are resident right now; for the mapped
 * kinds those resident pages are the physically shared ones. The
 * counters surface as dbt.image.pages.* in the stats export, which is
 * how the cross-process benchmark proves N mappers really share one
 * copy instead of faulting in N.
 */

#ifndef CDVM_DBT_MAPSOURCE_HH
#define CDVM_DBT_MAPSOURCE_HH

#include <memory>
#include <span>
#include <string>

#include "common/types.hh"

namespace cdvm::dbt
{

enum class LoadError;

/** Page-residency snapshot of one backing store (mincore-based). */
struct MapResidency
{
    u64 pagesTotal = 0;    //!< pages spanned by the backing
    u64 pagesResident = 0; //!< pages resident in physical memory
    /** Resident pages backed by a shared mapping (file or passed fd):
     *  physically one copy across every process mapping them. Owned
     *  buffers are private, so this is 0 for them. */
    u64 pagesShared = 0;
};

/** Read-only backing store for a verified translation image. */
class MapSource
{
  public:
    enum class Kind
    {
        None = 0,    //!< empty (default-constructed / moved-from)
        OwnedBuffer, //!< private 8-aligned heap copy
        FileMap,     //!< read-only mapping of an image file
        SharedFd,    //!< read-only MAP_SHARED mapping of a passed fd
    };

    MapSource() = default;
    ~MapSource();
    MapSource(MapSource &&other) noexcept { *this = std::move(other); }
    MapSource &operator=(MapSource &&other) noexcept;
    MapSource(const MapSource &) = delete;
    MapSource &operator=(const MapSource &) = delete;

    /** One 8-aligned heap copy of bytes (always succeeds). */
    static MapSource ownedCopy(std::span<const u8> bytes);

    /**
     * Map path read-only (non-unix hosts read it into an owned
     * buffer instead). err is LoadError::None on success; on failure
     * the returned source is empty and lastIoErrno() has the detail.
     */
    static MapSource mapFile(const std::string &path, LoadError &err);

    /**
     * MAP_SHARED read-only mapping of an open fd (sized by fstat).
     * The fd is borrowed, not retained: the caller may close it after
     * this returns — the mapping keeps the backing object alive.
     */
    static MapSource mapFd(int fd, LoadError &err);

    const u8 *data() const { return base; }
    u64 size() const { return len; }
    Kind kind() const { return knd; }
    bool empty() const { return knd == Kind::None; }
    /** Physically shareable with other processes (FileMap/SharedFd). */
    bool shared() const
    {
        return knd == Kind::FileMap || knd == Kind::SharedFd;
    }

    /** Page-residency snapshot (dbt.image.pages.*). */
    MapResidency residency() const;

    static const char *kindName(Kind k);

  private:
    void reset();

    Kind knd = Kind::None;
    const u8 *base = nullptr;
    u64 len = 0;
    void *mapBase = nullptr; //!< mmap backing (FileMap/SharedFd)
    std::size_t mapLen = 0;
    std::unique_ptr<u64[]> owned; //!< OwnedBuffer backing
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_MAPSOURCE_HH
