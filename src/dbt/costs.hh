/**
 * @file
 * Translation cost models.
 *
 * The paper's measured constants (Section 3.2 and 5.3):
 *   Delta_BBT = 105 native instructions per x86 instruction,
 *               83 cycles/instruction for the software-only BBT;
 *   VM.be     = 20 cycles per x86 instruction for the XLTx86-assisted
 *               HAloop (Fig. 6a);
 *   Delta_SBT = 1152 x86 instructions = 1674 native instructions per
 *               translated hotspot instruction.
 *
 * The constants live here so the analytical model (Eq. 1 / Eq. 2), the
 * translators' accounting, and the startup timing simulator all draw
 * from a single source. The HAloop micro-benchmark cross-checks the
 * 20-cycle VM.be figure against an actual micro-op-level execution of
 * the loop.
 */

#ifndef CDVM_DBT_COSTS_HH
#define CDVM_DBT_COSTS_HH

#include "common/types.hh"

namespace cdvm::dbt
{

/** Per-x86-instruction translation costs for one VM configuration. */
struct TranslationCosts
{
    /** BBT: native instructions executed per x86 instruction. */
    double bbtNativePerInsn = 105.0;
    /** BBT: cycles per x86 instruction (incl. chaining + lookup). */
    double bbtCyclesPerInsn = 83.0;
    /** SBT: native instructions per translated x86 instruction. */
    double sbtNativePerInsn = 1674.0;
    /** SBT: cycles per translated x86 instruction. */
    double sbtCyclesPerInsn = 1340.0;

    /** Software-only translators (VM.soft). */
    static TranslationCosts
    software()
    {
        return TranslationCosts{};
    }

    /** XLTx86 backend-assisted BBT (VM.be). */
    static TranslationCosts
    backendAssist()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = 11.0; // HAloop micro-ops per x86 insn
        c.bbtCyclesPerInsn = 20.0; // measured in Section 5.3
        return c;
    }

    /**
     * Dual-mode frontend decoders (VM.fe): no BBT at all; cold code
     * executes directly in x86 mode.
     */
    static TranslationCosts
    frontendAssist()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = 0.0;
        c.bbtCyclesPerInsn = 0.0;
        return c;
    }

    /**
     * Interpreter-based initial emulation (the "Interp & SBT" curve of
     * Fig. 2): no per-block translation cost, but 10x-100x slower
     * emulation, modelled by the interpreterCpi in the machine config.
     */
    static TranslationCosts
    interpreter()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = 0.0;
        c.bbtCyclesPerInsn = 0.0;
        return c;
    }
};

/** Paper Section 3.2 model constants, in x86-instruction units. */
struct ModelConstants
{
    double deltaSbtX86 = 1152.0;  //!< measured Delta_SBT (x86 instrs)
    double sbtSpeedupP = 1.15;    //!< p: SBT code speedup over BBT code
    u64 hotThreshold = 8000;      //!< N = Delta_SBT / (p - 1), rounded
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_COSTS_HH
