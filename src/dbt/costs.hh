/**
 * @file
 * Translation cost models.
 *
 * The paper's measured constants (Section 3.2 and 5.3):
 *   Delta_BBT = 105 native instructions per x86 instruction,
 *               83 cycles/instruction for the software-only BBT;
 *   VM.be     = 20 cycles per x86 instruction for the XLTx86-assisted
 *               HAloop (Fig. 6a);
 *   Delta_SBT = 1152 x86 instructions = 1674 native instructions per
 *               translated hotspot instruction.
 *
 * The numeric constants themselves live in engine/params.hh (with
 * their paper citations); this header shapes them into the per-machine
 * cost models the analytical model (Eq. 1 / Eq. 2), the translators'
 * accounting and the startup timing simulator consume. The HAloop
 * micro-benchmark cross-checks the 20-cycle VM.be figure against an
 * actual micro-op-level execution of the loop.
 */

#ifndef CDVM_DBT_COSTS_HH
#define CDVM_DBT_COSTS_HH

#include "common/types.hh"
#include "engine/params.hh"

namespace cdvm::dbt
{

/** Per-x86-instruction translation costs for one VM configuration. */
struct TranslationCosts
{
    /** BBT: native instructions executed per x86 instruction. */
    double bbtNativePerInsn = engine::params::BBT_NATIVE_PER_INSN;
    /** BBT: cycles per x86 instruction (incl. chaining + lookup). */
    double bbtCyclesPerInsn = engine::params::BBT_CYCLES_PER_INSN;
    /** SBT: native instructions per translated x86 instruction. */
    double sbtNativePerInsn = engine::params::SBT_NATIVE_PER_INSN;
    /** SBT: cycles per translated x86 instruction. */
    double sbtCyclesPerInsn = engine::params::SBT_CYCLES_PER_INSN;

    /** Software-only translators (VM.soft). */
    static TranslationCosts
    software()
    {
        return TranslationCosts{};
    }

    /**
     * IR-less template cold tier (VM.soft.tmpl): the software XLTx86.
     * Delta_BBT shrinks by the measured template/software translation
     * ratio (bench_host_mips, gated in CI); everything else is
     * VM.soft.
     */
    static TranslationCosts
    templateTier()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = engine::params::BBT_TMPL_NATIVE_PER_INSN;
        c.bbtCyclesPerInsn = engine::params::BBT_TMPL_XLATE;
        return c;
    }

    /** XLTx86 backend-assisted BBT (VM.be). */
    static TranslationCosts
    backendAssist()
    {
        TranslationCosts c;
        // HAloop micro-ops / cycles per x86 insn (Section 5.3).
        c.bbtNativePerInsn = engine::params::BBT_ASSIST_NATIVE_PER_INSN;
        c.bbtCyclesPerInsn = engine::params::BBT_ASSIST_CYCLES_PER_INSN;
        return c;
    }

    /**
     * Dual-mode frontend decoders (VM.fe): no BBT at all; cold code
     * executes directly in x86 mode.
     */
    static TranslationCosts
    frontendAssist()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = 0.0;
        c.bbtCyclesPerInsn = 0.0;
        return c;
    }

    /**
     * Interpreter-based initial emulation (the "Interp & SBT" curve of
     * Fig. 2): no per-block translation cost, but 10x-100x slower
     * emulation, modelled by the interpreterCpi in the machine config.
     */
    static TranslationCosts
    interpreter()
    {
        TranslationCosts c;
        c.bbtNativePerInsn = 0.0;
        c.bbtCyclesPerInsn = 0.0;
        return c;
    }
};

/** Paper Section 3.2 model constants, in x86-instruction units. */
struct ModelConstants
{
    /** Measured Delta_SBT (x86 instructions). */
    double deltaSbtX86 = engine::params::SBT_DELTA_X86;
    /** p: SBT code speedup over BBT code. */
    double sbtSpeedupP = engine::params::SBT_SPEEDUP_P;
    /** N = Delta_SBT / (p - 1), rounded. */
    u64 hotThreshold = engine::params::HOT_THRESHOLD;
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_COSTS_HH
