#include "dbt/optimize.hh"

#include <algorithm>

namespace cdvm::dbt
{

using uops::UOp;
using uops::Uop;
using uops::UopVec;

namespace
{

bool
producesFlags(const Uop &u)
{
    if (u.writeFlags)
        return true;
    switch (u.op) {
      case UOp::Cmp:
      case UOp::Tst:
      case UOp::Clc:
      case UOp::Stc:
      case UOp::Cmc:
        return true;
      default:
        return false;
    }
}

/** Pure flag producers: removable entirely when flags are dead. */
bool
pureFlagProducer(const Uop &u)
{
    switch (u.op) {
      case UOp::Cmp:
      case UOp::Tst:
      case UOp::Clc:
      case UOp::Stc:
        return true;
      default:
        return false;
    }
}

/** Ops whose execution must be treated as a potential flag use/exit. */
bool
flagBarrier(const Uop &u)
{
    switch (u.op) {
      case UOp::Br:
      case UOp::Jmp:
      case UOp::Jr:
      case UOp::ExitVm:
      case UOp::Trap:
      case UOp::DivWide:  // may fault: flags must be architectural
      case UOp::IdivWide:
      case UOp::XltX86:
        return true;
      default:
        return false;
    }
}

} // namespace

unsigned
killDeadFlags(UopVec &v, unsigned *removed_out)
{
    // Phase 1: backward liveness. dead[i] is true when the flag result
    // of v[i] can never be observed.
    std::vector<bool> dead(v.size(), false);
    bool live = true; // conservative at the fall-through exit
    for (std::size_t idx = v.size(); idx-- > 0;) {
        const Uop &u = v[idx];
        if (flagBarrier(u)) {
            // Flags escape here (side exit / fault point); everything
            // upstream is observable.
            live = true;
            continue;
        }
        const bool produces = producesFlags(u);
        const bool reads = u.readsFlags();
        if (produces && !live && !reads)
            dead[idx] = true;
        if (reads)
            live = true;
        else if (produces)
            live = false; // this producer kills everything upstream
    }

    // Phase 2: apply. Remove pure flag producers; clear writeFlags on
    // the rest. Fusion pairs are preserved: fusion runs after this
    // pass, so no fusedHead marks exist yet (asserted implicitly by
    // pairs never being removed here).
    unsigned killed = 0;
    unsigned removed = 0;
    UopVec out;
    out.reserve(v.size());
    for (std::size_t idx = 0; idx < v.size(); ++idx) {
        Uop u = v[idx];
        if (dead[idx]) {
            if (pureFlagProducer(u) && !u.fusedHead) {
                ++removed;
                continue;
            }
            if (u.writeFlags) {
                u.writeFlags = false;
                ++killed;
            }
        }
        out.push_back(u);
    }
    v = std::move(out);
    if (removed_out)
        *removed_out = removed;
    return killed;
}

OptimizeStats
optimize(UopVec &v, const uops::FusionConfig &cfg)
{
    OptimizeStats st;
    st.flagWritesKilled = killDeadFlags(v, &st.uopsRemoved);
    st.fusion = uops::fusePairs(v, cfg);
    return st;
}

} // namespace cdvm::dbt
