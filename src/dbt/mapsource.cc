#include "dbt/mapsource.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "dbt/persist.hh"

#ifdef __unix__
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace cdvm::dbt
{

namespace
{

#ifdef __unix__
std::size_t
hostPageSize()
{
    static const std::size_t sz = [] {
        const long v = ::sysconf(_SC_PAGESIZE);
        return v > 0 ? static_cast<std::size_t>(v) : 4096u;
    }();
    return sz;
}
#endif

} // namespace

MapSource::~MapSource()
{
    reset();
}

MapSource &
MapSource::operator=(MapSource &&other) noexcept
{
    if (this == &other)
        return *this;
    reset();
    knd = other.knd;
    base = other.base;
    len = other.len;
    mapBase = other.mapBase;
    mapLen = other.mapLen;
    owned = std::move(other.owned);
    other.mapBase = nullptr;
    other.mapLen = 0;
    other.reset();
    return *this;
}

void
MapSource::reset()
{
#ifdef __unix__
    if (mapBase && ::munmap(mapBase, mapLen) != 0)
        cdvm_debug("munmap(%p, %zu) failed: %s", mapBase, mapLen,
                   std::strerror(errno));
#endif
    mapBase = nullptr;
    mapLen = 0;
    owned.reset();
    base = nullptr;
    len = 0;
    knd = Kind::None;
}

MapSource
MapSource::ownedCopy(std::span<const u8> bytes)
{
    MapSource src;
    src.owned = std::make_unique<u64[]>((bytes.size() + 7) / 8);
    if (!bytes.empty())
        std::memcpy(src.owned.get(), bytes.data(), bytes.size());
    src.base = reinterpret_cast<const u8 *>(src.owned.get());
    src.len = bytes.size();
    src.knd = Kind::OwnedBuffer;
    return src;
}

MapSource
MapSource::mapFile(const std::string &path, LoadError &err)
{
    MapSource src;
#ifdef __unix__
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        setLastIoErrno(errno);
        err = LoadError::Io;
        return src;
    }
    err = LoadError::None;
    src = mapFd(fd, err);
    if (::close(fd) != 0 && err == LoadError::None)
        cdvm_debug("close('%s') failed: %s", path.c_str(),
                   std::strerror(errno));
    if (err == LoadError::None)
        src.knd = Kind::FileMap; // distinguish from the passed-fd path
    return src;
#else
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        setLastIoErrno(errno);
        err = LoadError::Io;
        return src;
    }
    std::vector<u8> data;
    u8 buf[65536];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
        data.insert(data.end(), buf, buf + got);
    // A short read from a failing device must be a typed I/O error,
    // never mistaken for a truncated (but well-read) file.
    const bool read_err = std::ferror(f) != 0;
    const int read_errno = errno;
    if (std::fclose(f) != 0)
        cdvm_debug("fclose('%s') failed: %s", path.c_str(),
                   std::strerror(errno));
    if (read_err) {
        setLastIoErrno(read_errno);
        err = LoadError::Io;
        return src;
    }
    err = LoadError::None;
    return ownedCopy(data);
#endif
}

MapSource
MapSource::mapFd(int fd, LoadError &err)
{
    MapSource src;
#ifdef __unix__
    struct stat sb{};
    if (::fstat(fd, &sb) != 0) {
        setLastIoErrno(errno);
        err = LoadError::Io;
        return src;
    }
    if (sb.st_size == 0) {
        err = LoadError::Truncated; // empty file, not an I/O fault
        return src;
    }
    if (sb.st_size < 0) {
        setLastIoErrno(EINVAL);
        err = LoadError::Io;
        return src;
    }
    void *m = ::mmap(nullptr, static_cast<std::size_t>(sb.st_size),
                     PROT_READ, MAP_SHARED, fd, 0);
    if (m == MAP_FAILED) {
        setLastIoErrno(errno);
        err = LoadError::Io;
        return src;
    }
    src.mapBase = m;
    src.mapLen = static_cast<std::size_t>(sb.st_size);
    src.base = static_cast<const u8 *>(m);
    src.len = src.mapLen;
    src.knd = Kind::SharedFd;
    err = LoadError::None;
    return src;
#else
    (void)fd;
    setLastIoErrno(ENOTSUP);
    err = LoadError::Io;
    return src;
#endif
}

MapResidency
MapSource::residency() const
{
    MapResidency r;
    if (empty() || len == 0)
        return r;
#ifdef __unix__
    const std::size_t page = hostPageSize();
    r.pagesTotal = (len + page - 1) / page;
    if (mapBase) {
        std::vector<unsigned char> vec(r.pagesTotal, 0);
        if (::mincore(mapBase, mapLen, vec.data()) == 0) {
            for (unsigned char v : vec)
                r.pagesResident += v & 1;
        } else {
            cdvm_debug("mincore failed: %s", std::strerror(errno));
            r.pagesResident = 0;
        }
        r.pagesShared = shared() ? r.pagesResident : 0;
        return r;
    }
    // Owned heap buffer: trivially resident, never shared.
    r.pagesResident = r.pagesTotal;
    r.pagesShared = 0;
    return r;
#else
    r.pagesTotal = (len + 4095) / 4096;
    r.pagesResident = r.pagesTotal;
    r.pagesShared = 0;
    return r;
#endif
}

const char *
MapSource::kindName(Kind k)
{
    switch (k) {
      case Kind::None: return "none";
      case Kind::OwnedBuffer: return "owned-buffer";
      case Kind::FileMap: return "file-map";
      case Kind::SharedFd: return "shared-fd";
    }
    return "?";
}

} // namespace cdvm::dbt
