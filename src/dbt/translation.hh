/**
 * @file
 * Translation descriptors: the unit the DBT system produces, caches,
 * chains and executes.
 *
 * Translations are addressed by generational **TransId handles**
 * rather than raw pointers. The owning TranslationMap hands out ids at
 * insert time and resolves them on use; a flush bumps the generation
 * of the freed slots, so any id that survived a flush resolves to
 * nullptr instead of dangling. This keeps every cross-translation
 * reference (chains, the dispatch lookaside, the VMM's last-executed
 * cursor) safe by construction and makes a translation a relocatable,
 * serializable value: nothing in it encodes the address of another
 * translation or of its own heap allocation.
 */

#ifndef CDVM_DBT_TRANSLATION_HH
#define CDVM_DBT_TRANSLATION_HH

#include <span>
#include <vector>

#include "common/types.hh"
#include "uops/uop.hh"

namespace cdvm::dbt
{

/** BBT block or SBT superblock. */
enum class TransKind : u8
{
    BasicBlock,
    Superblock,
};

/**
 * Which translator produced a translation. Persisted (two spare flag
 * bits in both the v1 repository and the v2 image formats), so a
 * warm-started VM knows which tier each restored translation came
 * from and the template tier's work survives a save/boot round trip.
 */
enum class TransProvenance : u8
{
    SwBbt = 0,   //!< software uop-lowering BBT (the default)
    TmplBbt = 1, //!< IR-less template BBT (software XLTx86)
    XltBbt = 2,  //!< XLTx86-assisted BBT (hardware-assist model)
    Sbt = 3,     //!< superblock optimizer
};

/**
 * Generational handle to a translation owned by a TranslationMap.
 *
 * idx is 1-based (0 means "no translation"); gen must match the
 * owning arena slot's current generation for the handle to resolve.
 * Default-constructed ids are the null handle.
 */
struct TransId
{
    u32 idx = 0;
    u32 gen = 0;

    explicit operator bool() const { return idx != 0; }
    bool operator==(const TransId &) const = default;

    /** Pack into one u64 key (0 iff null handle); fromRaw inverts. */
    u64
    raw() const
    {
        return (static_cast<u64>(gen) << 32) | idx;
    }

    static TransId
    fromRaw(u64 v)
    {
        return TransId{static_cast<u32>(v),
                       static_cast<u32>(v >> 32)};
    }
};

/** The null handle (resolves to nullptr). */
inline constexpr TransId NO_TRANS{};

/**
 * One translation: the micro-op body plus the metadata the VMM needs
 * for dispatch, profiling, chaining and precise-state recovery.
 */
struct Translation
{
    TransKind kind = TransKind::BasicBlock;
    Addr entryPc = 0;       //!< architected (x86) entry address
    Addr codeAddr = 0;      //!< address of encoded body in the code cache
    u32 codeBytes = 0;      //!< encoded size in the code cache
    u32 numX86Insns = 0;    //!< architected instructions covered
    u32 x86Bytes = 0;       //!< architected bytes covered
    Addr fallthroughPc = 0; //!< x86 PC following the translated region
    bool containsComplex = false;
    /** Producing tier (persisted across warm-start save/boot). */
    TransProvenance provenance = TransProvenance::SwBbt;
    bool endsInCti = false;
    /** True if the final covered instruction is a conditional branch. */
    bool endsInCondBranch = false;
    /** Its taken target (valid when endsInCondBranch). */
    Addr condBranchTarget = 0;
    /** Its x86 PC (valid when endsInCondBranch). */
    Addr condBranchPc = 0;

    /** This translation's own handle (set by TranslationMap::insert). */
    TransId id;

    /** Execution form of the body (decoded once at translation time).
     *  Empty when the body is a zero-copy view into a mapped warm
     *  image (mappedUops) -- always read it through code(). */
    uops::UopVec uops;

    /**
     * Side table for precise state: x86 PC of every covered
     * instruction in translation order (Fig. 1 "precise state mapping").
     * Empty for mapped bodies -- always read it through pcSpan().
     */
    std::vector<Addr> x86pcs;

    /**
     * Zero-copy warm start: a translation installed from a mapped
     * dbt::TransImage borrows its body and pc table straight from the
     * image instead of owning copies. The image outlives every
     * translation (the engine holds it on the services handle), so
     * the views cannot dangle.
     */
    const uops::Uop *mappedUops = nullptr;
    u32 mappedUopCount = 0;
    const Addr *mappedPcs = nullptr;
    u32 mappedPcCount = 0;

    /** True when the body lives in a mapped warm image. */
    bool mappedBody() const { return mappedUops != nullptr; }

    /** The executable body, wherever it lives. */
    std::span<const uops::Uop>
    code() const
    {
        return mappedUops
                   ? std::span<const uops::Uop>(mappedUops,
                                                mappedUopCount)
                   : std::span<const uops::Uop>(uops);
    }

    /** The precise-state pc table, wherever it lives. */
    std::span<const Addr>
    pcSpan() const
    {
        return mappedPcs
                   ? std::span<const Addr>(mappedPcs, mappedPcCount)
                   : std::span<const Addr>(x86pcs);
    }

    // --- profiling (maintained by the VMM during emulation) ----------
    u64 execCount = 0;   //!< entries into this translation
    u64 takenCount = 0;  //!< terminating conditional branch taken
    u64 notTakenCount = 0;

    /** Taken bias of the terminating branch (0.5 when unobserved). */
    double
    takenBias() const
    {
        u64 n = takenCount + notTakenCount;
        return n ? static_cast<double>(takenCount) / n : 0.5;
    }

    // --- chaining ------------------------------------------------------
    /**
     * Direct links from this translation's exits to successor
     * translations, keyed by successor x86 entry PC. Exit 0 is the
     * taken/branch target, exit 1 the fall-through; indirect exits are
     * never chained (they go through the VMM's lookup). Links are
     * handles, not pointers: a successor freed by a cache flush stops
     * resolving instead of dangling.
     */
    struct Chain
    {
        Addr targetPc = 0;
        TransId to;
    };
    Chain chains[2];

    /** Find the chained successor handle for the given next PC. */
    TransId
    chainedTo(Addr pc) const
    {
        for (const Chain &c : chains) {
            if (c.to && c.targetPc == pc)
                return c.to;
        }
        return NO_TRANS;
    }

    /** Install a chain to a successor; returns false if no slot. */
    bool
    addChain(Addr pc, TransId to)
    {
        for (Chain &c : chains) {
            if (!c.to) {
                c.targetPc = pc;
                c.to = to;
                return true;
            }
            if (c.targetPc == pc) {
                c.to = to;
                return true;
            }
        }
        return false;
    }

    void
    clearChains()
    {
        chains[0] = Chain{};
        chains[1] = Chain{};
    }
};

} // namespace cdvm::dbt

#endif // CDVM_DBT_TRANSLATION_HH
