#include "uops/encoding.hh"

#include <cassert>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace cdvm::uops
{

namespace
{

// 16-bit compact opcode space.
enum Op16 : u8
{
    C_NOP = 0,
    C_ADD = 1,
    C_SUB = 2,
    C_AND = 3,
    C_OR = 4,
    C_XOR = 5,
    C_CMP = 6,
    C_TST = 7,
    C_MOV = 8,
};

/** Map a micro-opcode to its compact code, or -1 if not mappable. */
int
compactCode(UOp op)
{
    switch (op) {
      case UOp::Nop: return C_NOP;
      case UOp::Add: return C_ADD;
      case UOp::Sub: return C_SUB;
      case UOp::And: return C_AND;
      case UOp::Or: return C_OR;
      case UOp::Xor: return C_XOR;
      case UOp::Cmp: return C_CMP;
      case UOp::Tst: return C_TST;
      case UOp::Mov: return C_MOV;
      default: return -1;
    }
}

UOp
fromCompact(u8 code)
{
    switch (code) {
      case C_NOP: return UOp::Nop;
      case C_ADD: return UOp::Add;
      case C_SUB: return UOp::Sub;
      case C_AND: return UOp::And;
      case C_OR: return UOp::Or;
      case C_XOR: return UOp::Xor;
      case C_CMP: return UOp::Cmp;
      case C_TST: return UOp::Tst;
      case C_MOV: return UOp::Mov;
      default: return UOp::NUM_UOPS;
    }
}

/** True if the micro-op is eligible for the 16-bit compact format. */
bool
compact16(const Uop &u)
{
    if (compactCode(u.op) < 0 || u.hasImm || u.size != 4)
        return false;
    switch (u.op) {
      case UOp::Add:
      case UOp::Sub:
      case UOp::And:
      case UOp::Or:
      case UOp::Xor:
        return u.writeFlags && u.dst == u.src1 && u.dst < 16 &&
               u.src2 < 16;
      case UOp::Cmp:
      case UOp::Tst:
        return u.writeFlags && u.src1 < 16 && u.src2 < 16 &&
               u.dst == UREG_NONE;
      case UOp::Mov:
        return !u.writeFlags && u.dst < 16 && u.src1 < 16;
      case UOp::Nop:
        return true;
      default:
        return false;
    }
}

/** Ops whose [26:25] field encodes a memory scale, not a size. */
bool
isMemClass(UOp op)
{
    switch (op) {
      case UOp::Ld:
      case UOp::Ldz8:
      case UOp::Ldz16:
      case UOp::Lds8:
      case UOp::Lds16:
      case UOp::St:
      case UOp::St8:
      case UOp::St16:
      case UOp::Lea:
      case UOp::LdF:
      case UOp::StF:
        return true;
      default:
        return false;
    }
}

u8
sizeCode(u8 size)
{
    switch (size) {
      case 1: return 0;
      case 2: return 1;
      default: return 2;
    }
}

u8
sizeFromCode(u8 code)
{
    switch (code) {
      case 0: return 1;
      case 1: return 2;
      default: return 4;
    }
}

u8
scaleCode(u8 scale)
{
    switch (scale) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      default: return 3;
    }
}

u8
scaleFromCode(u8 code)
{
    return static_cast<u8>(1u << code);
}

/** Extension-word need: 0 = none, 2 = 16-bit ext, 4 = 32-bit ext. */
unsigned
extBytes(const Uop &u)
{
    if (u.op == UOp::Br || u.op == UOp::Jmp)
        return 4; // full 32-bit x86 target
    if (!u.hasImm)
        return 0;
    // The two-specifier-plus-immediate 32-bit format carries a 6-bit
    // inline immediate in the src2 field plus bit 31; it is usable only
    // when src2 is free (i.e. not an indexed memory access).
    const bool indexed = u.src2 != UREG_NONE;
    if (!indexed && fitsSigned(u.imm, 6))
        return 0;
    if (indexed && u.imm == 0)
        return 0; // three-specifier format, no immediate needed
    return fitsSigned(u.imm, 16) ? 2 : 4;
}

} // namespace

unsigned
encodeOne(const Uop &u, u8 *out)
{
    if (compact16(u)) {
        // [0]=0 | [1]=fuse | [6:2]=op | [10:7]=a | [14:11]=b | [15]=0
        u8 a, b;
        if (u.op == UOp::Mov) {
            a = u.dst;
            b = u.src1;
        } else if (u.op == UOp::Cmp || u.op == UOp::Tst) {
            a = u.src1;
            b = u.src2;
        } else if (u.op == UOp::Nop) {
            a = b = 0;
        } else {
            a = u.dst;
            b = u.src2;
        }
        u16 w = 0;
        w = static_cast<u16>(
            insertBits(w, 1, 1, u.fusedHead ? 1 : 0));
        w = static_cast<u16>(
            insertBits(w, 6, 2, static_cast<u64>(compactCode(u.op))));
        w = static_cast<u16>(insertBits(w, 10, 7, a));
        w = static_cast<u16>(insertBits(w, 14, 11, b));
        out[0] = static_cast<u8>(w);
        out[1] = static_cast<u8>(w >> 8);
        return 2;
    }

    const unsigned ext = extBytes(u);
    // Base 32-bit word.
    // [0]=1 [1]=ext32 [2]=fuse [9:3]=op [14:10]=dst [19:15]=src1
    // [24:20]=src2 [26:25]=size/scale [27]=wf [28]=hasImm [30:29]=extsz
    // [31]=cond-high-bits-overflow (see below)
    //
    // cond overlays: Br -> dst field; Setcc -> src1 field.
    u32 w = 1;
    w = static_cast<u32>(insertBits(w, 2, 2, u.fusedHead ? 1 : 0));
    w = static_cast<u32>(
        insertBits(w, 9, 3, static_cast<u64>(u.op)));
    u8 dst_f = u.dst, src1_f = u.src1;
    if (u.op == UOp::Br)
        dst_f = u.cond;
    if (u.op == UOp::Setcc)
        src1_f = u.cond;
    w = static_cast<u32>(insertBits(w, 14, 10, dst_f));
    w = static_cast<u32>(insertBits(w, 19, 15, src1_f));
    w = static_cast<u32>(insertBits(w, 24, 20, u.src2));
    w = static_cast<u32>(
        insertBits(w, 26, 25,
                   isMemClass(u.op) ? scaleCode(u.scale)
                                    : sizeCode(u.size)));
    w = static_cast<u32>(insertBits(w, 27, 27, u.writeFlags ? 1 : 0));
    // The three-specifier memory form (indexed, zero displacement)
    // keeps src2 as the index register and omits the immediate bit;
    // the decoder restores hasImm for all memory-class ops.
    const bool imm_bit =
        u.hasImm && !(isMemClass(u.op) && u.src2 != UREG_NONE &&
                      u.imm == 0 && ext == 0);
    w = static_cast<u32>(insertBits(w, 28, 28, imm_bit ? 1 : 0));
    // [30:29]: extension kind: 0 none, 1 imm16, 2 imm32/target.
    u8 ext_kind = ext == 0 ? 0 : (ext == 2 ? 1 : 2);
    w = static_cast<u32>(insertBits(w, 30, 29, ext_kind));

    if (imm_bit && ext == 0) {
        // Inline 6-bit signed immediate: imm[4:0] in the (free) src2
        // field [24:20], imm[5] in bit [31].
        w = static_cast<u32>(
            insertBits(w, 24, 20, static_cast<u64>(u.imm) & 0x1f));
        w = static_cast<u32>(
            insertBits(w, 31, 31, (static_cast<u64>(u.imm) >> 5) & 1));
    }
    out[0] = static_cast<u8>(w);
    out[1] = static_cast<u8>(w >> 8);
    out[2] = static_cast<u8>(w >> 16);
    out[3] = static_cast<u8>(w >> 24);
    unsigned n = 4;
    if (ext == 2) {
        i16 v = static_cast<i16>(u.imm);
        out[4] = static_cast<u8>(v);
        out[5] = static_cast<u8>(v >> 8);
        n = 6;
    } else if (ext == 4) {
        u32 v = (u.op == UOp::Br || u.op == UOp::Jmp)
                    ? static_cast<u32>(u.target)
                    : static_cast<u32>(u.imm);
        out[4] = static_cast<u8>(v);
        out[5] = static_cast<u8>(v >> 8);
        out[6] = static_cast<u8>(v >> 16);
        out[7] = static_cast<u8>(v >> 24);
        n = 8;
    }
    return n;
}

unsigned
decodeOne(std::span<const u8> win, Uop &u)
{
    u = Uop{};
    if (win.size() < 2)
        return 0;
    u16 h0 = static_cast<u16>(win[0] | (win[1] << 8));
    if (!(h0 & 1)) {
        // 16-bit compact format.
        u.fusedHead = bits(h0, 1);
        u8 code = static_cast<u8>(bits(h0, 6, 2));
        u8 a = static_cast<u8>(bits(h0, 10, 7));
        u8 b = static_cast<u8>(bits(h0, 14, 11));
        UOp op = fromCompact(code);
        if (op == UOp::NUM_UOPS)
            return 0;
        u.op = op;
        u.size = 4;
        switch (op) {
          case UOp::Mov:
            u.dst = a;
            u.src1 = b;
            break;
          case UOp::Cmp:
          case UOp::Tst:
            u.src1 = a;
            u.src2 = b;
            u.writeFlags = true;
            break;
          case UOp::Nop:
            break;
          default:
            u.dst = a;
            u.src1 = a;
            u.src2 = b;
            u.writeFlags = true;
            break;
        }
        return 2;
    }

    if (win.size() < 4)
        return 0;
    u32 w = static_cast<u32>(win[0]) | (static_cast<u32>(win[1]) << 8) |
            (static_cast<u32>(win[2]) << 16) |
            (static_cast<u32>(win[3]) << 24);
    u.fusedHead = bits(w, 2);
    unsigned opc = static_cast<unsigned>(bits(w, 9, 3));
    if (opc >= static_cast<unsigned>(UOp::NUM_UOPS))
        return 0;
    u.op = static_cast<UOp>(opc);
    u8 dst_f = static_cast<u8>(bits(w, 14, 10));
    u8 src1_f = static_cast<u8>(bits(w, 19, 15));
    u8 src2_f = static_cast<u8>(bits(w, 24, 20));
    u.writeFlags = bits(w, 27);
    u.hasImm = bits(w, 28);
    u8 szf = static_cast<u8>(bits(w, 26, 25));
    u8 ext_kind = static_cast<u8>(bits(w, 30, 29));

    if (isMemClass(u.op)) {
        u.scale = scaleFromCode(szf);
        u.size = 4;
    } else {
        u.size = sizeFromCode(szf);
    }

    u.dst = dst_f;
    u.src1 = src1_f;
    u.src2 = src2_f;
    if (u.op == UOp::Br) {
        u.cond = dst_f;
        u.dst = UREG_NONE;
    }
    if (u.op == UOp::Setcc) {
        u.cond = src1_f;
        u.src1 = UREG_NONE;
    }

    unsigned n = 4;
    if (ext_kind == 0) {
        if (u.hasImm) {
            // Inline 6-bit immediate: [24:20] low bits, [31] bit 5.
            u64 raw = bits(w, 24, 20) | (bits(w, 31) << 5);
            u.imm = static_cast<i32>(sext(raw, 6));
            u.src2 = UREG_NONE;
        } else if (isMemClass(u.op)) {
            // Three-specifier memory form: zero displacement.
            u.hasImm = true;
            u.imm = 0;
        }
    } else if (ext_kind == 1) {
        if (win.size() < 6)
            return 0;
        i16 v = static_cast<i16>(win[4] | (win[5] << 8));
        u.imm = v;
        n = 6;
    } else {
        if (win.size() < 8)
            return 0;
        u32 v = static_cast<u32>(win[4]) |
                (static_cast<u32>(win[5]) << 8) |
                (static_cast<u32>(win[6]) << 16) |
                (static_cast<u32>(win[7]) << 24);
        if (u.op == UOp::Br || u.op == UOp::Jmp)
            u.target = v;
        else
            u.imm = static_cast<i32>(v);
        n = 8;
    }
    return n;
}

unsigned
Uop::encodedSize() const
{
    u8 scratch[MAX_UOP_BYTES];
    return encodeOne(*this, scratch);
}

std::vector<u8>
encode(std::span<const Uop> v)
{
    std::vector<u8> out;
    out.reserve(v.size() * 4);
    u8 buf[MAX_UOP_BYTES];
    for (const Uop &u : v) {
        unsigned n = encodeOne(u, buf);
        out.insert(out.end(), buf, buf + n);
    }
    return out;
}

bool
decodeAll(std::span<const u8> bytes, UopVec &out)
{
    std::size_t pos = 0;
    while (pos < bytes.size()) {
        Uop u;
        unsigned n = decodeOne(bytes.subspan(pos), u);
        if (n == 0)
            return false;
        out.push_back(u);
        pos += n;
    }
    return true;
}

} // namespace cdvm::uops
