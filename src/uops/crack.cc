#include "uops/crack.hh"

#include <cassert>

#include "common/logging.hh"

namespace cdvm::uops
{

using x86::Insn;
using x86::MemRef;
using x86::Op;
using x86::Operand;

namespace
{

/** Crack-time emitter with per-instruction temp allocation. */
class Cracker
{
  public:
    explicit Cracker(const Insn &insn) : in(insn) {}

    CrackResult
    run()
    {
        crackInsn();
        for (Uop &u : out)
            u.x86pc = in.pc;
        CrackResult res;
        res.complex = in.isComplex() || encodedBytes(out) > 16;
        res.uops = std::move(out);
        return res;
    }

  private:
    const Insn &in;
    UopVec out;
    u8 next_temp = R_T0;

    u8
    temp()
    {
        assert(next_temp <= R_T3 && "out of crack temporaries");
        return next_temp++;
    }

    Uop &
    emit(UOp op)
    {
        out.push_back(Uop{});
        out.back().op = op;
        return out.back();
    }

    /** Fill memory addressing fields from a MemRef. */
    static void
    setMem(Uop &u, const MemRef &m)
    {
        u.src1 = m.hasBase() ? static_cast<u8>(m.base) : UREG_NONE;
        u.src2 = m.hasIndex() ? static_cast<u8>(m.index) : UREG_NONE;
        u.scale = m.scale;
        u.imm = m.disp;
        u.hasImm = true;
    }

    /** Sized load opcode (zero-extending). */
    static UOp
    loadOp(unsigned size)
    {
        switch (size) {
          case 1: return UOp::Ldz8;
          case 2: return UOp::Ldz16;
          default: return UOp::Ld;
        }
    }

    static UOp
    storeOp(unsigned size)
    {
        switch (size) {
          case 1: return UOp::St8;
          case 2: return UOp::St16;
          default: return UOp::St;
        }
    }

    /** Emit a load of a memory operand into a temp; returns the temp. */
    u8
    emitLoad(const MemRef &m, unsigned size)
    {
        u8 t = temp();
        Uop &u = emit(loadOp(size));
        u.dst = t;
        setMem(u, m);
        return t;
    }

    /** Emit a store of reg to memory at size. */
    void
    emitStore(const MemRef &m, unsigned size, u8 reg)
    {
        Uop &u = emit(storeOp(size));
        u.dst = reg; // data register
        setMem(u, m);
    }

    /**
     * Materialize the value of a source operand at the instruction's
     * operand size. Returns a register whose low `size` bytes hold the
     * value. May emit Ld / Limm / ExtHi8 micro-ops.
     */
    u8
    srcValue(const Operand &o, unsigned size)
    {
        switch (o.kind) {
          case Operand::Kind::Reg:
            if (size == 1 && o.reg >= 4) {
                // AH/CH/DH/BH: extract bits 15:8 of the base register.
                u8 t = temp();
                Uop &u = emit(UOp::ExtHi8);
                u.dst = t;
                u.src1 = static_cast<u8>(o.reg - 4);
                return t;
            }
            return static_cast<u8>(o.reg);
          case Operand::Kind::Imm: {
            u8 t = temp();
            Uop &u = emit(UOp::Limm);
            u.dst = t;
            u.hasImm = true;
            u.imm = static_cast<i32>(o.imm);
            return t;
          }
          case Operand::Kind::Mem:
            return emitLoad(o.mem, size);
          case Operand::Kind::None:
            break;
        }
        cdvm_panic("srcValue on empty operand");
    }

    /**
     * Write `val_reg` (a full register holding the sized result
     * zero-extended) back to the destination operand at size.
     */
    void
    writeDest(const Operand &o, unsigned size, u8 val_reg)
    {
        if (o.isMem()) {
            emitStore(o.mem, size, val_reg);
            return;
        }
        assert(o.isReg());
        if (size == 4) {
            if (val_reg != o.reg) {
                Uop &u = emit(UOp::Mov);
                u.dst = static_cast<u8>(o.reg);
                u.src1 = val_reg;
            }
            return;
        }
        if (size == 2) {
            Uop &u = emit(UOp::Ins16);
            u.dst = static_cast<u8>(o.reg);
            u.src1 = val_reg;
            return;
        }
        // size == 1
        if (o.reg >= 4) {
            Uop &u = emit(UOp::InsHi8);
            u.dst = static_cast<u8>(o.reg - 4);
            u.src1 = val_reg;
        } else {
            Uop &u = emit(UOp::Ins8);
            u.dst = static_cast<u8>(o.reg);
            u.src1 = val_reg;
        }
    }

    /**
     * Destination register for an ALU result: the architected register
     * itself when a direct full-width write is possible, else a temp
     * that writeDest later merges/stores.
     */
    u8
    aluDest(const Operand &o, unsigned size)
    {
        if (o.isReg() && size == 4)
            return static_cast<u8>(o.reg);
        return temp();
    }

    /** Standard two-operand ALU pattern (op dst, dst, src). */
    void
    twoOpAlu(UOp op, bool write_result, bool write_flags)
    {
        const unsigned size = in.opSize;
        u8 a = srcValue(in.dst, size);
        u8 b = srcValue(in.src, size);
        u8 d = write_result ? aluDest(in.dst, size) : UREG_NONE;
        Uop &u = emit(op);
        u.dst = d;
        u.src1 = a;
        u.src2 = b;
        u.size = static_cast<u8>(size);
        u.writeFlags = write_flags;
        // Immediate folding: if the second source came from a Limm we
        // just emitted, fold it into the ALU op.
        foldImmediate(u);
        if (write_result)
            writeDest(in.dst, size, d);
    }

    /**
     * If the ALU uop's src2 is the destination of the immediately
     * preceding Limm, fold the immediate into the ALU op and drop the
     * Limm. This mirrors how real crackers emit reg-imm micro-ops.
     */
    void
    foldImmediate(Uop &alu)
    {
        if (out.size() < 2)
            return;
        Uop &prev = out[out.size() - 2];
        if (prev.op != UOp::Limm || prev.dst != alu.src2)
            return;
        alu.src2 = UREG_NONE;
        alu.hasImm = true;
        alu.imm = prev.imm;
        // Remove the Limm (alu is out.back()).
        Uop saved = out.back();
        out.pop_back();
        out.pop_back();
        out.push_back(saved);
    }

    /** One-operand read-modify-write ALU (inc/dec/not/neg, shifts). */
    void
    oneOpAlu(UOp op, bool write_flags, const Operand *count = nullptr)
    {
        const unsigned size = in.opSize;
        u8 a = srcValue(in.dst, size);
        u8 d = aluDest(in.dst, size);
        u8 cnt = UREG_NONE;
        i32 cnt_imm = 0;
        bool has_cnt_imm = false;
        if (count) {
            if (count->isImm()) {
                has_cnt_imm = true;
                cnt_imm = static_cast<i32>(count->imm);
            } else {
                cnt = static_cast<u8>(x86::ECX); // count in CL
            }
        }
        Uop &u = emit(op);
        u.dst = d;
        u.src1 = a;
        u.src2 = cnt;
        u.size = static_cast<u8>(size);
        u.writeFlags = write_flags;
        u.hasImm = has_cnt_imm;
        u.imm = cnt_imm;
        writeDest(in.dst, size, d);
    }

    void
    crackInsn()
    {
        const unsigned size = in.opSize;
        switch (in.op) {
          case Op::Add: twoOpAlu(UOp::Add, true, true); return;
          case Op::Adc: twoOpAlu(UOp::Adc, true, true); return;
          case Op::Sub: twoOpAlu(UOp::Sub, true, true); return;
          case Op::Sbb: twoOpAlu(UOp::Sbb, true, true); return;
          case Op::And: twoOpAlu(UOp::And, true, true); return;
          case Op::Or: twoOpAlu(UOp::Or, true, true); return;
          case Op::Xor: twoOpAlu(UOp::Xor, true, true); return;
          case Op::Cmp: twoOpAlu(UOp::Cmp, false, true); return;
          case Op::Test: twoOpAlu(UOp::Tst, false, true); return;

          case Op::Inc: oneOpAlu(UOp::Inc, true); return;
          case Op::Dec: oneOpAlu(UOp::Dec, true); return;
          case Op::Not: oneOpAlu(UOp::Not, false); return;
          case Op::Neg: oneOpAlu(UOp::Neg, true); return;

          case Op::Shl: oneOpAlu(UOp::Shl, true, &in.src); return;
          case Op::Shr: oneOpAlu(UOp::Shr, true, &in.src); return;
          case Op::Sar: oneOpAlu(UOp::Sar, true, &in.src); return;
          case Op::Rol: oneOpAlu(UOp::Rol, true, &in.src); return;
          case Op::Ror: oneOpAlu(UOp::Ror, true, &in.src); return;

          case Op::Imul: {
            // dst_reg = src * (src2 imm | dst_reg)
            u8 a = srcValue(in.src, size);
            Uop &u = emit(UOp::Imul);
            u.dst = static_cast<u8>(in.dst.reg);
            u.size = static_cast<u8>(size);
            u.writeFlags = true;
            if (in.src2.isImm()) {
                u.src1 = a;
                u.hasImm = true;
                u.imm = static_cast<i32>(in.src2.imm);
            } else {
                u.src1 = static_cast<u8>(in.dst.reg);
                u.src2 = a;
            }
            return;
          }
          case Op::MulA:
          case Op::ImulA:
          case Op::DivA:
          case Op::IdivA: {
            u8 a = srcValue(in.src, size);
            UOp op = in.op == Op::MulA ? UOp::MulWide
                     : in.op == Op::ImulA ? UOp::ImulWide
                     : in.op == Op::DivA ? UOp::DivWide
                                         : UOp::IdivWide;
            Uop &u = emit(op);
            u.src1 = a;
            u.size = static_cast<u8>(size);
            u.writeFlags = in.op == Op::MulA || in.op == Op::ImulA;
            return;
          }

          case Op::Mov: {
            if (in.src.isImm() && in.dst.isReg() && size == 4) {
                Uop &u = emit(UOp::Limm);
                u.dst = static_cast<u8>(in.dst.reg);
                u.hasImm = true;
                u.imm = static_cast<i32>(in.src.imm);
                return;
            }
            if (in.src.isMem() && in.dst.isReg() && size == 4) {
                Uop &u = emit(UOp::Ld);
                u.dst = static_cast<u8>(in.dst.reg);
                setMem(u, in.src.mem);
                return;
            }
            if (in.src.isReg() && in.dst.isMem()) {
                u8 v = srcValue(in.src, size);
                emitStore(in.dst.mem, size, v);
                return;
            }
            u8 v = srcValue(in.src, size);
            writeDest(in.dst, size, v);
            return;
          }
          case Op::Movzx: {
            // in.opSize is the *source* size; dest is 32-bit.
            if (in.src.isMem()) {
                Uop &u = emit(size == 1 ? UOp::Ldz8 : UOp::Ldz16);
                u.dst = static_cast<u8>(in.dst.reg);
                setMem(u, in.src.mem);
                return;
            }
            u8 v = srcValue(in.src, size);
            Uop &u = emit(size == 1 ? UOp::Zext8 : UOp::Zext16);
            u.dst = static_cast<u8>(in.dst.reg);
            u.src1 = v;
            return;
          }
          case Op::Movsx: {
            if (in.src.isMem()) {
                Uop &u = emit(size == 1 ? UOp::Lds8 : UOp::Lds16);
                u.dst = static_cast<u8>(in.dst.reg);
                setMem(u, in.src.mem);
                return;
            }
            u8 v = srcValue(in.src, size);
            Uop &u = emit(size == 1 ? UOp::Sext8 : UOp::Sext16);
            u.dst = static_cast<u8>(in.dst.reg);
            u.src1 = v;
            return;
          }
          case Op::Lea: {
            Uop &u = emit(UOp::Lea);
            u.dst = static_cast<u8>(in.dst.reg);
            setMem(u, in.src.mem);
            return;
          }
          case Op::Xchg: {
            u8 a = srcValue(in.dst, size);
            u8 b = srcValue(in.src, size);
            u8 t = temp();
            Uop &m = emit(UOp::Mov);
            m.dst = t;
            m.src1 = a;
            writeDest(in.dst, size, b);
            writeDest(in.src, size, t);
            return;
          }

          case Op::Push: {
            // ST value, [esp-4] ; SUB esp, 4 (no flags).
            u8 v = srcValue(in.src, 4);
            Uop &st = emit(UOp::St);
            st.dst = v;
            st.src1 = R_ESP;
            st.hasImm = true;
            st.imm = -4;
            Uop &sub = emit(UOp::Sub);
            sub.dst = R_ESP;
            sub.src1 = R_ESP;
            sub.hasImm = true;
            sub.imm = 4;
            return;
          }
          case Op::Pop: {
            if (in.dst.isReg()) {
                Uop &ld = emit(UOp::Ld);
                ld.dst = static_cast<u8>(in.dst.reg);
                ld.src1 = R_ESP;
                ld.hasImm = true;
                ld.imm = 0;
                Uop &add = emit(UOp::Add);
                add.dst = R_ESP;
                add.src1 = R_ESP;
                add.hasImm = true;
                add.imm = 4;
                // pop esp: the loaded value wins; re-emit nothing (the
                // Add above would corrupt it). Handle by ordering: x86
                // pop esp writes the loaded value.
                if (in.dst.reg == x86::ESP)
                    out.pop_back();
                return;
            }
            // pop mem: load, bump esp, store.
            u8 t = temp();
            Uop &ld = emit(UOp::Ld);
            ld.dst = t;
            ld.src1 = R_ESP;
            ld.hasImm = true;
            ld.imm = 0;
            Uop &add = emit(UOp::Add);
            add.dst = R_ESP;
            add.src1 = R_ESP;
            add.hasImm = true;
            add.imm = 4;
            emitStore(in.dst.mem, 4, t);
            return;
          }

          case Op::Cdq: {
            Uop &m = emit(UOp::Mov);
            m.dst = R_EDX;
            m.src1 = R_EAX;
            Uop &s = emit(UOp::Sar);
            s.dst = R_EDX;
            s.src1 = R_EDX;
            s.hasImm = true;
            s.imm = 31;
            s.writeFlags = false;
            return;
          }

          case Op::Jcc: {
            Uop &u = emit(UOp::Br);
            u.cond = static_cast<u8>(in.cond);
            u.target = in.target;
            return;
          }
          case Op::Jmp: {
            Uop &u = emit(UOp::Jmp);
            u.target = in.target;
            return;
          }
          case Op::JmpInd: {
            u8 t = srcValue(in.src, 4);
            Uop &u = emit(UOp::Jr);
            u.src1 = t;
            return;
          }
          case Op::Call: {
            // LIMM t, ret ; ST t,[esp-4] ; SUB esp,4 ; JMP target.
            u8 t = temp();
            Uop &li = emit(UOp::Limm);
            li.dst = t;
            li.hasImm = true;
            li.imm = static_cast<i32>(in.nextPc());
            Uop &st = emit(UOp::St);
            st.dst = t;
            st.src1 = R_ESP;
            st.hasImm = true;
            st.imm = -4;
            Uop &sub = emit(UOp::Sub);
            sub.dst = R_ESP;
            sub.src1 = R_ESP;
            sub.hasImm = true;
            sub.imm = 4;
            Uop &j = emit(UOp::Jmp);
            j.target = in.target;
            return;
          }
          case Op::CallInd: {
            u8 tgt = srcValue(in.src, 4);
            if (tgt == R_ESP) {
                // call *%esp jumps to ESP's value *before* the push.
                u8 c = temp();
                Uop &mv = emit(UOp::Mov);
                mv.dst = c;
                mv.src1 = R_ESP;
                tgt = c;
            }
            u8 t = temp();
            Uop &li = emit(UOp::Limm);
            li.dst = t;
            li.hasImm = true;
            li.imm = static_cast<i32>(in.nextPc());
            Uop &st = emit(UOp::St);
            st.dst = t;
            st.src1 = R_ESP;
            st.hasImm = true;
            st.imm = -4;
            Uop &sub = emit(UOp::Sub);
            sub.dst = R_ESP;
            sub.src1 = R_ESP;
            sub.hasImm = true;
            sub.imm = 4;
            Uop &j = emit(UOp::Jr);
            j.src1 = tgt;
            return;
          }
          case Op::Ret: {
            u8 t = temp();
            Uop &ld = emit(UOp::Ld);
            ld.dst = t;
            ld.src1 = R_ESP;
            ld.hasImm = true;
            ld.imm = 0;
            Uop &add = emit(UOp::Add);
            add.dst = R_ESP;
            add.src1 = R_ESP;
            add.hasImm = true;
            add.imm = 4 + static_cast<i32>(in.src.isImm() ? in.src.imm
                                                          : 0);
            Uop &j = emit(UOp::Jr);
            j.src1 = t;
            return;
          }

          case Op::Setcc: {
            u8 t = temp();
            Uop &u = emit(UOp::Setcc);
            u.dst = t;
            u.cond = static_cast<u8>(in.cond);
            writeDest(in.dst, 1, t);
            return;
          }
          case Op::Clc: emit(UOp::Clc); return;
          case Op::Stc: emit(UOp::Stc); return;
          case Op::Cmc: emit(UOp::Cmc); return;
          case Op::Nop: emit(UOp::Nop); return;
          case Op::Hlt: emit(UOp::ExitVm); return;
          case Op::Int3: emit(UOp::Trap); return;
          case Op::Cpuid: emit(UOp::CpuidOp); return;
          case Op::Rdtsc: emit(UOp::RdtscOp); return;

          case Op::Invalid:
          case Op::NUM_OPS:
            cdvm_panic("cracking invalid instruction");
        }
    }
};

} // namespace

CrackResult
crack(const Insn &in)
{
    return Cracker(in).run();
}

CrackResult
crackAll(const std::vector<Insn> &insns)
{
    CrackResult all;
    for (const Insn &in : insns) {
        CrackResult one = crack(in);
        all.complex = all.complex || one.complex;
        for (Uop &u : one.uops)
            all.uops.push_back(u);
    }
    return all;
}

} // namespace cdvm::uops
