/**
 * @file
 * The fusible implementation ISA ("native" ISA) of the co-designed VM.
 *
 * Micro-ops are RISC-like operations with 16-bit and 32-bit encodings
 * (a 32-bit encoding may carry one 32-bit extension word for large
 * immediates / branch targets). Pairs of dependent micro-ops can be
 * fused into macro-ops -- the head micro-op carries the fusible bit,
 * exactly as in the fusible ISA of Hu et al. [HPCA'06].
 *
 * Register map (32 integer registers):
 *   R0..R7   architected x86 GPRs (EAX..EDI)
 *   R8..R15  cracking temporaries
 *   R16..R23 VMM-reserved (HAloop bookkeeping etc.)
 *   R24..R30 unassigned
 *   R31      "no register"
 * plus 32 128-bit F registers used by FP/media and by XLTx86.
 */

#ifndef CDVM_UOPS_UOP_HH
#define CDVM_UOPS_UOP_HH

#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "x86/regs.hh"

namespace cdvm::uops
{

/** Number of integer registers in the implementation ISA. */
constexpr unsigned NUM_UREGS = 32;
/** "No register" sentinel (R31 is reserved for this purpose). */
constexpr u8 UREG_NONE = 31;

// Architected GPR aliases.
constexpr u8 R_EAX = 0, R_ECX = 1, R_EDX = 2, R_EBX = 3;
constexpr u8 R_ESP = 4, R_EBP = 5, R_ESI = 6, R_EDI = 7;
// Cracking temporaries.
constexpr u8 R_T0 = 8, R_T1 = 9, R_T2 = 10, R_T3 = 11;
// VMM-reserved registers (used by the HAloop of paper Fig. 6a).
constexpr u8 R_X86PC = 16;  //!< architected x86 PC during translation
constexpr u8 R_CODECACHE = 17;
constexpr u8 R_V0 = 18, R_V1 = 19, R_V2 = 20;

/** Micro-op opcodes. */
enum class UOp : u8
{
    Nop = 0,
    // Two-source ALU. Sized; optional flag write (x86 semantics).
    Add, Adc, Sub, Sbb, And, Or, Xor,
    Cmp,      //!< flags of Sub, no register write
    Tst,      //!< flags of And, no register write
    Shl, Shr, Sar, Rol, Ror,
    Imul,     //!< truncating signed multiply; flags: CF/OF on overflow
    Inc, Dec, //!< add/sub 1 with CF preserved
    Not, Neg,
    // Widening multiply / divide on implicit EDX:EAX (size-aware).
    MulWide, ImulWide, DivWide, IdivWide,
    // Moves and extensions.
    Mov,      //!< register move
    Limm,     //!< load immediate
    Zext8, Zext16, Sext8, Sext16,
    ExtHi8,   //!< dst = (src1 >> 8) & 0xff   (read AH-style subregister)
    Ins8,     //!< dst[7:0]   = src1[7:0]     (partial-register merge)
    InsHi8,   //!< dst[15:8]  = src1[7:0]
    Ins16,    //!< dst[15:0]  = src1[15:0]
    Setcc,    //!< dst = cond(flags) ? 1 : 0
    // Memory. Address is base + index*scale + disp (disp in imm field).
    Ld,       //!< 32-bit load
    Ldz8, Ldz16, Lds8, Lds16,
    St, St8, St16,
    Lea,      //!< dst = effective address
    // 128-bit F-register memory ops (XLTx86 operand staging).
    LdF, StF,
    // Control transfer (targets are architected x86 addresses).
    Br,       //!< conditional branch, cond in the cond field
    Jmp,      //!< direct jump
    Jr,       //!< indirect jump through src1
    // Flags.
    Clc, Stc, Cmc,
    // VM / system.
    XltX86,   //!< Table 1: decode x86 insn in F[src1] into F[dst] + CSR
    MovCsr,   //!< dst = CSR (after XltX86)
    CpuidOp, RdtscOp,
    ExitVm,   //!< leave translated code back to the VMM (HLT, exits)
    Trap,     //!< raise a fault (INT3)
    NUM_UOPS,
};

/** Branch condition space: x86 condition codes plus CSR tests. */
enum class UCond : u8
{
    // 0..15 mirror x86::Cond.
    CsrCmplx = 16, //!< taken if CSR.Flag_cmplx (Fig. 6a "Jcpx")
    CsrCti = 17,   //!< taken if CSR.Flag_cti   (Fig. 6a "Jcti")
    Always = 18,
};

/** One micro-op. */
struct Uop
{
    UOp op = UOp::Nop;
    u8 dst = UREG_NONE;
    u8 src1 = UREG_NONE;
    u8 src2 = UREG_NONE;   //!< also the index register for memory ops
    u8 size = 4;           //!< operand size for sized ALU ops
    u8 scale = 1;          //!< memory index scale (1/2/4/8)
    u8 cond = 0;           //!< UCond for Br / x86 cond for Setcc
    bool hasImm = false;
    i32 imm = 0;           //!< immediate or memory displacement
    bool writeFlags = false;
    bool fusedHead = false; //!< fused with the following micro-op
    Addr target = 0;       //!< x86-level target for Br/Jmp
    Addr x86pc = 0;        //!< owning x86 instruction (precise state tag)

    bool isBranch() const { return op == UOp::Br || op == UOp::Jmp ||
                                   op == UOp::Jr; }
    bool isLoad() const
    {
        return op == UOp::Ld || op == UOp::Ldz8 || op == UOp::Ldz16 ||
               op == UOp::Lds8 || op == UOp::Lds16 || op == UOp::LdF;
    }
    bool isStore() const
    {
        return op == UOp::St || op == UOp::St8 || op == UOp::St16 ||
               op == UOp::StF;
    }
    bool isMem() const { return isLoad() || isStore(); }

    /** True for single-cycle ALU ops eligible as fusion heads. */
    bool isSimpleAlu() const;
    /** True for ops eligible as fusion tails (ALU or branch). */
    bool isFusionTail() const;

    /** Registers read by this micro-op (up to 3, UREG_NONE padded). */
    void sources(u8 out[3]) const;
    /** Register written (UREG_NONE if none). */
    u8 destination() const;
    bool readsFlags() const;

    /** Encoded size in bytes: 2, 4, or 8 (32-bit + extension word). */
    unsigned encodedSize() const;

    std::string toString() const;
};

/** A cracked/translated sequence of micro-ops. */
using UopVec = std::vector<Uop>;

/** Mnemonic for a micro-opcode. */
std::string uopName(UOp op);

/** Total encoded bytes of a micro-op sequence. */
unsigned encodedBytes(std::span<const Uop> v);

} // namespace cdvm::uops

#endif // CDVM_UOPS_UOP_HH
