/**
 * @file
 * Cracking: decompose decoded x86 instructions into fusible micro-ops.
 *
 * This is the semantic core shared by all three translation paths of
 * the paper: the software BBT uses it directly, the XLTx86 backend
 * functional unit implements it in "hardware" (same rules, different
 * cost), and the dual-mode frontend decoder applies it at the pipeline
 * decode stage. One implementation keeps the three paths semantically
 * identical by construction.
 */

#ifndef CDVM_UOPS_CRACK_HH
#define CDVM_UOPS_CRACK_HH

#include "uops/uop.hh"
#include "x86/insn.hh"

namespace cdvm::uops
{

/** Result of cracking one x86 instruction. */
struct CrackResult
{
    UopVec uops;
    /**
     * True if the instruction must take the slow software path when a
     * hardware assist decodes it (XLTx86 Flag_cmplx): serializing or
     * faulting instructions, and instructions whose micro-ops exceed
     * the 16-byte Fdst register (paper Section 4.2).
     */
    bool complex = false;
};

/** Crack one decoded instruction. */
CrackResult crack(const x86::Insn &in);

/** Crack a straight-line sequence, concatenating the micro-ops. */
CrackResult crackAll(const std::vector<x86::Insn> &insns);

} // namespace cdvm::uops

#endif // CDVM_UOPS_CRACK_HH
