#include "uops/uop.hh"

#include <sstream>

#include "common/bitfield.hh"

namespace cdvm::uops
{

bool
Uop::isSimpleAlu() const
{
    switch (op) {
      case UOp::Add:
      case UOp::Sub:
      case UOp::And:
      case UOp::Or:
      case UOp::Xor:
      case UOp::Cmp:
      case UOp::Tst:
      case UOp::Shl:
      case UOp::Shr:
      case UOp::Sar:
      case UOp::Inc:
      case UOp::Dec:
      case UOp::Not:
      case UOp::Neg:
      case UOp::Mov:
      case UOp::Limm:
      case UOp::Zext8:
      case UOp::Zext16:
      case UOp::Sext8:
      case UOp::Sext16:
      case UOp::Lea:
        return true;
      default:
        return false;
    }
}

bool
Uop::isFusionTail() const
{
    return isSimpleAlu() || op == UOp::Br || op == UOp::Setcc;
}

void
Uop::sources(u8 out[3]) const
{
    out[0] = out[1] = out[2] = UREG_NONE;
    unsigned n = 0;
    if (isStore()) {
        // Data register first, then address registers.
        if (dst != UREG_NONE)
            out[n++] = dst;
        if (src1 != UREG_NONE)
            out[n++] = src1;
        if (src2 != UREG_NONE)
            out[n++] = src2;
        return;
    }
    if (isLoad() || op == UOp::Lea) {
        if (src1 != UREG_NONE)
            out[n++] = src1;
        if (src2 != UREG_NONE)
            out[n++] = src2;
        return;
    }
    switch (op) {
      case UOp::Ins8:
      case UOp::InsHi8:
      case UOp::Ins16:
        // Read-modify-write of dst.
        if (dst != UREG_NONE)
            out[n++] = dst;
        if (src1 != UREG_NONE)
            out[n++] = src1;
        return;
      case UOp::MulWide:
      case UOp::ImulWide:
        out[n++] = R_EAX;
        if (src1 != UREG_NONE)
            out[n++] = src1;
        return;
      case UOp::DivWide:
      case UOp::IdivWide:
        out[n++] = R_EAX;
        out[n++] = R_EDX;
        if (src1 != UREG_NONE)
            out[n++] = src1;
        return;
      default:
        break;
    }
    if (src1 != UREG_NONE)
        out[n++] = src1;
    if (src2 != UREG_NONE)
        out[n++] = src2;
}

u8
Uop::destination() const
{
    if (isStore() || op == UOp::Cmp || op == UOp::Tst || isBranch())
        return UREG_NONE;
    return dst;
}

bool
Uop::readsFlags() const
{
    switch (op) {
      case UOp::Adc:
      case UOp::Sbb:
      case UOp::Cmc:
      case UOp::Setcc:
        return true;
      case UOp::Inc:
      case UOp::Dec:
        return true; // preserve CF: read-modify-write of flags
      case UOp::Br:
        return cond < 16; // x86 condition codes read EFLAGS
      default:
        return false;
    }
}

// Uop::encodedSize() is defined in encoding.cc next to the encoder so
// the two cannot diverge.

unsigned
encodedBytes(std::span<const Uop> v)
{
    unsigned n = 0;
    for (const Uop &u : v)
        n += u.encodedSize();
    return n;
}

std::string
uopName(UOp op)
{
    switch (op) {
      case UOp::Nop: return "nop";
      case UOp::Add: return "add";
      case UOp::Adc: return "adc";
      case UOp::Sub: return "sub";
      case UOp::Sbb: return "sbb";
      case UOp::And: return "and";
      case UOp::Or: return "or";
      case UOp::Xor: return "xor";
      case UOp::Cmp: return "cmp";
      case UOp::Tst: return "tst";
      case UOp::Shl: return "shl";
      case UOp::Shr: return "shr";
      case UOp::Sar: return "sar";
      case UOp::Rol: return "rol";
      case UOp::Ror: return "ror";
      case UOp::Imul: return "imul";
      case UOp::Inc: return "inc";
      case UOp::Dec: return "dec";
      case UOp::Not: return "not";
      case UOp::Neg: return "neg";
      case UOp::MulWide: return "mulw";
      case UOp::ImulWide: return "imulw";
      case UOp::DivWide: return "divw";
      case UOp::IdivWide: return "idivw";
      case UOp::Mov: return "mov";
      case UOp::Limm: return "limm";
      case UOp::Zext8: return "zext8";
      case UOp::Zext16: return "zext16";
      case UOp::Sext8: return "sext8";
      case UOp::Sext16: return "sext16";
      case UOp::ExtHi8: return "exthi8";
      case UOp::Ins8: return "ins8";
      case UOp::InsHi8: return "inshi8";
      case UOp::Ins16: return "ins16";
      case UOp::Setcc: return "setcc";
      case UOp::Ld: return "ld";
      case UOp::Ldz8: return "ldz8";
      case UOp::Ldz16: return "ldz16";
      case UOp::Lds8: return "lds8";
      case UOp::Lds16: return "lds16";
      case UOp::St: return "st";
      case UOp::St8: return "st8";
      case UOp::St16: return "st16";
      case UOp::Lea: return "lea";
      case UOp::LdF: return "ldf";
      case UOp::StF: return "stf";
      case UOp::Br: return "br";
      case UOp::Jmp: return "jmp";
      case UOp::Jr: return "jr";
      case UOp::Clc: return "clc";
      case UOp::Stc: return "stc";
      case UOp::Cmc: return "cmc";
      case UOp::XltX86: return "xltx86";
      case UOp::MovCsr: return "movcsr";
      case UOp::CpuidOp: return "cpuid";
      case UOp::RdtscOp: return "rdtsc";
      case UOp::ExitVm: return "exitvm";
      case UOp::Trap: return "trap";
      default: return "?";
    }
}

std::string
Uop::toString() const
{
    std::ostringstream os;
    if (fusedHead)
        os << "+";
    os << uopName(op);
    if (size != 4 && !isMem())
        os << "." << static_cast<int>(size * 8);
    auto reg = [](u8 r) {
        return r == UREG_NONE ? std::string("-")
                              : "r" + std::to_string(r);
    };
    if (isMem() || op == UOp::Lea) {
        os << " " << reg(isStore() ? dst : dst) << ", [";
        bool first = true;
        if (src1 != UREG_NONE) {
            os << reg(src1);
            first = false;
        }
        if (src2 != UREG_NONE) {
            os << (first ? "" : "+") << reg(src2) << "*"
               << static_cast<int>(scale);
            first = false;
        }
        if (imm || first)
            os << (first ? "" : "+") << imm;
        os << "]";
    } else if (op == UOp::Br) {
        if (cond < 16)
            os << x86::condName(static_cast<x86::Cond>(cond));
        else if (cond == static_cast<u8>(UCond::CsrCmplx))
            os << ".cpx";
        else if (cond == static_cast<u8>(UCond::CsrCti))
            os << ".cti";
        os << " 0x" << std::hex << target;
    } else if (op == UOp::Jmp) {
        os << " 0x" << std::hex << target;
    } else {
        if (dst != UREG_NONE)
            os << " " << reg(dst);
        if (src1 != UREG_NONE)
            os << (dst != UREG_NONE ? ", " : " ") << reg(src1);
        if (src2 != UREG_NONE)
            os << ", " << reg(src2);
        if (hasImm)
            os << ", #" << imm;
    }
    if (writeFlags)
        os << " !f";
    return os.str();
}

} // namespace cdvm::uops
