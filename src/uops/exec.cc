#include "uops/exec.hh"

#include <cassert>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "uops/csr.hh"

namespace cdvm::uops
{

using x86::FLAG_ALL;
using x86::FLAG_CF;
namespace flags = x86::flags;

void
UState::loadArch(const x86::CpuState &cpu)
{
    for (unsigned i = 0; i < x86::NUM_REGS; ++i)
        regs[i] = cpu.regs[i];
    eflags = cpu.eflags;
}

void
UState::storeArch(x86::CpuState &cpu) const
{
    for (unsigned i = 0; i < x86::NUM_REGS; ++i)
        cpu.regs[i] = regs[i];
    cpu.eflags = eflags;
}

u32
UopExecutor::readSized(u8 reg, unsigned size) const
{
    if (reg == UREG_NONE)
        return 0;
    return flags::trunc(st.regs[reg], size);
}

Addr
UopExecutor::effAddr(const Uop &u) const
{
    u32 a = static_cast<u32>(u.imm);
    if (u.src1 != UREG_NONE)
        a += st.regs[u.src1];
    if (u.src2 != UREG_NONE)
        a += st.regs[u.src2] * u.scale;
    return a;
}

UopExecutor::Outcome
UopExecutor::exec(const Uop &u)
{
    Outcome out;
    ++st.uopCount;

    auto setArith = [&](u32 f) {
        st.eflags = (st.eflags & ~FLAG_ALL) | (f & FLAG_ALL);
    };
    // Second ALU source: register or folded immediate.
    auto srcB = [&](unsigned size) -> u32 {
        if (u.hasImm)
            return flags::trunc(static_cast<u32>(u.imm), size);
        return readSized(u.src2, size);
    };
    auto writeDst = [&](u32 v) {
        if (u.dst != UREG_NONE)
            st.regs[u.dst] = v;
    };

    const unsigned size = u.size;

    switch (u.op) {
      case UOp::Nop:
        break;

      case UOp::Add:
      case UOp::Adc: {
        u32 a = readSized(u.src1, size);
        u32 b = srcB(size);
        u32 cin = (u.op == UOp::Adc && (st.eflags & FLAG_CF)) ? 1 : 0;
        u32 r;
        u32 f = flags::add(a, b, cin, size, r);
        if (u.writeFlags)
            setArith(f);
        writeDst(r);
        break;
      }
      case UOp::Sub:
      case UOp::Sbb: {
        u32 a = readSized(u.src1, size);
        u32 b = srcB(size);
        u32 bin = (u.op == UOp::Sbb && (st.eflags & FLAG_CF)) ? 1 : 0;
        u32 r;
        u32 f = flags::sub(a, b, bin, size, r);
        if (u.writeFlags)
            setArith(f);
        writeDst(r);
        break;
      }
      case UOp::Cmp: {
        u32 r;
        setArith(flags::sub(readSized(u.src1, size), srcB(size), 0,
                            size, r));
        break;
      }
      case UOp::And:
      case UOp::Or:
      case UOp::Xor: {
        u32 a = readSized(u.src1, size);
        u32 b = srcB(size);
        u32 r = u.op == UOp::And ? (a & b)
                                 : u.op == UOp::Or ? (a | b) : (a ^ b);
        r = flags::trunc(r, size);
        if (u.writeFlags)
            setArith(flags::logic(r, size));
        writeDst(r);
        break;
      }
      case UOp::Tst: {
        u32 r = flags::trunc(readSized(u.src1, size) & srcB(size), size);
        setArith(flags::logic(r, size));
        break;
      }
      case UOp::Inc:
      case UOp::Dec: {
        u32 a = readSized(u.src1, size);
        u32 r;
        u32 f = u.op == UOp::Inc ? flags::add(a, 1, 0, size, r)
                                 : flags::sub(a, 1, 0, size, r);
        if (u.writeFlags) {
            f = (f & ~FLAG_CF) | (st.eflags & FLAG_CF);
            setArith(f);
        }
        writeDst(r);
        break;
      }
      case UOp::Not:
        writeDst(flags::trunc(~readSized(u.src1, size), size));
        break;
      case UOp::Neg: {
        u32 r;
        u32 f = flags::sub(0, readSized(u.src1, size), 0, size, r);
        if (u.writeFlags)
            setArith(f);
        writeDst(r);
        break;
      }

      case UOp::Shl:
      case UOp::Shr:
      case UOp::Sar:
      case UOp::Rol:
      case UOp::Ror: {
        static const x86::Op map[] = {x86::Op::Shl, x86::Op::Shr,
                                      x86::Op::Sar, x86::Op::Rol,
                                      x86::Op::Ror};
        x86::Op xop = map[static_cast<unsigned>(u.op) -
                          static_cast<unsigned>(UOp::Shl)];
        u32 a = readSized(u.src1, size);
        u32 count = u.hasImm ? static_cast<u32>(u.imm)
                             : (st.regs[u.src2] & 0xff);
        flags::ShiftResult sr =
            flags::shift(xop, a, count, size, st.eflags & FLAG_ALL);
        if (u.writeFlags)
            setArith(sr.eflags);
        writeDst(sr.result);
        break;
      }

      case UOp::Imul: {
        u32 a = readSized(u.src1, size);
        u32 b = srcB(size);
        u32 f;
        u32 r = flags::imulTrunc(a, b, size, f);
        if (u.writeFlags)
            setArith(f);
        // IMUL destination register is written at operand size with
        // upper bits preserved (x86 two-operand semantics at size 2).
        if (size == 4) {
            writeDst(r);
        } else if (u.dst != UREG_NONE) {
            u32 mask = size == 2 ? 0xffffu : 0xffu;
            st.regs[u.dst] = (st.regs[u.dst] & ~mask) | (r & mask);
        }
        break;
      }
      case UOp::MulWide:
      case UOp::ImulWide: {
        u32 a = readSized(R_EAX, size);
        u32 b = readSized(u.src1, size);
        flags::WideMul wm =
            flags::mulWide(u.op == UOp::ImulWide, a, b, size);
        if (size == 1) {
            st.regs[R_EAX] = (st.regs[R_EAX] & 0xffff0000) |
                             ((wm.hi & 0xff) << 8) | (wm.lo & 0xff);
        } else if (size == 2) {
            st.regs[R_EAX] = (st.regs[R_EAX] & 0xffff0000) | wm.lo;
            st.regs[R_EDX] = (st.regs[R_EDX] & 0xffff0000) | wm.hi;
        } else {
            st.regs[R_EAX] = wm.lo;
            st.regs[R_EDX] = wm.hi;
        }
        if (u.writeFlags)
            setArith(wm.flags);
        break;
      }
      case UOp::DivWide:
      case UOp::IdivWide: {
        u32 b = readSized(u.src1, size);
        u32 hi = size == 1 ? ((st.regs[R_EAX] >> 8) & 0xff)
                           : readSized(R_EDX, size);
        u32 lo = readSized(R_EAX, size);
        flags::WideDiv wd =
            flags::divWide(u.op == UOp::IdivWide, hi, lo, b, size);
        if (wd.fault) {
            out.fault = true;
            return out;
        }
        if (size == 1) {
            st.regs[R_EAX] = (st.regs[R_EAX] & 0xffff0000) |
                             ((wd.rem & 0xff) << 8) | (wd.quot & 0xff);
        } else if (size == 2) {
            st.regs[R_EAX] = (st.regs[R_EAX] & 0xffff0000) | wd.quot;
            st.regs[R_EDX] = (st.regs[R_EDX] & 0xffff0000) | wd.rem;
        } else {
            st.regs[R_EAX] = wd.quot;
            st.regs[R_EDX] = wd.rem;
        }
        break;
      }

      case UOp::Mov:
        writeDst(st.regs[u.src1]);
        break;
      case UOp::Limm:
        writeDst(static_cast<u32>(u.imm));
        break;
      case UOp::Zext8:
        writeDst(st.regs[u.src1] & 0xff);
        break;
      case UOp::Zext16:
        writeDst(st.regs[u.src1] & 0xffff);
        break;
      case UOp::Sext8:
        writeDst(static_cast<u32>(sext(st.regs[u.src1] & 0xff, 8)));
        break;
      case UOp::Sext16:
        writeDst(static_cast<u32>(sext(st.regs[u.src1] & 0xffff, 16)));
        break;
      case UOp::ExtHi8:
        writeDst((st.regs[u.src1] >> 8) & 0xff);
        break;
      case UOp::Ins8:
        st.regs[u.dst] = (st.regs[u.dst] & 0xffffff00) |
                         (st.regs[u.src1] & 0xff);
        break;
      case UOp::InsHi8:
        st.regs[u.dst] = (st.regs[u.dst] & 0xffff00ff) |
                         ((st.regs[u.src1] & 0xff) << 8);
        break;
      case UOp::Ins16:
        st.regs[u.dst] = (st.regs[u.dst] & 0xffff0000) |
                         (st.regs[u.src1] & 0xffff);
        break;
      case UOp::Setcc:
        writeDst(x86::condTrue(static_cast<x86::Cond>(u.cond),
                               st.eflags)
                     ? 1
                     : 0);
        break;

      case UOp::Ld:
        writeDst(mem.read32(effAddr(u)));
        break;
      case UOp::Ldz8:
        writeDst(mem.read8(effAddr(u)));
        break;
      case UOp::Ldz16:
        writeDst(mem.read16(effAddr(u)));
        break;
      case UOp::Lds8:
        writeDst(static_cast<u32>(sext(mem.read8(effAddr(u)), 8)));
        break;
      case UOp::Lds16:
        writeDst(static_cast<u32>(sext(mem.read16(effAddr(u)), 16)));
        break;
      case UOp::St:
        mem.write32(effAddr(u), st.regs[u.dst]);
        break;
      case UOp::St8:
        mem.write8(effAddr(u), static_cast<u8>(st.regs[u.dst]));
        break;
      case UOp::St16:
        mem.write16(effAddr(u), static_cast<u16>(st.regs[u.dst]));
        break;
      case UOp::Lea:
        writeDst(static_cast<u32>(effAddr(u)));
        break;

      case UOp::LdF: {
        Addr a = effAddr(u);
        mem.fetchWindow(a, st.fregs[u.dst].data(), 16);
        break;
      }
      case UOp::StF: {
        Addr a = effAddr(u);
        mem.writeBlock(a, std::span<const u8>(st.fregs[u.dst].data(),
                                              16));
        break;
      }

      case UOp::Br: {
        bool taken;
        if (u.cond < 16) {
            taken = x86::condTrue(static_cast<x86::Cond>(u.cond),
                                  st.eflags);
        } else if (u.cond == static_cast<u8>(UCond::CsrCmplx)) {
            taken = csr::isComplex(st.csr);
        } else if (u.cond == static_cast<u8>(UCond::CsrCti)) {
            taken = csr::isCti(st.csr);
        } else {
            taken = true;
        }
        if (taken) {
            out.taken = true;
            out.target = u.target;
        }
        break;
      }
      case UOp::Jmp:
        out.taken = true;
        out.target = u.target;
        break;
      case UOp::Jr:
        out.taken = true;
        out.target = st.regs[u.src1];
        break;

      case UOp::Clc:
        st.eflags &= ~FLAG_CF;
        break;
      case UOp::Stc:
        st.eflags |= FLAG_CF;
        break;
      case UOp::Cmc:
        st.eflags ^= FLAG_CF;
        break;

      case UOp::XltX86: {
        if (!xlt)
            cdvm_panic("XLTx86 executed without a functional unit");
        st.csr = xlt->translate(st.fregs[u.src1].data(),
                                st.fregs[u.dst].data());
        break;
      }
      case UOp::MovCsr:
        writeDst(st.csr);
        break;

      case UOp::CpuidOp:
        st.regs[R_EAX] = 0x00000001;
        st.regs[R_EBX] = 0x43445648;
        st.regs[R_ECX] = 0x4d563836;
        st.regs[R_EDX] = 0x00000000;
        break;
      case UOp::RdtscOp:
        st.regs[R_EAX] = 0x5eed0000;
        st.regs[R_EDX] = 0;
        break;

      case UOp::ExitVm:
        out.vmExit = true;
        break;
      case UOp::Trap:
        out.fault = true;
        break;

      case UOp::NUM_UOPS:
        cdvm_panic("executing invalid micro-op");
    }
    return out;
}

BlockResult
UopExecutor::run(std::span<const Uop> uops, Addr fallthrough)
{
    BlockResult res;
    for (std::size_t i = 0; i < uops.size(); ++i) {
        Outcome o = exec(uops[i]);
        ++res.uopsRun;
        if (o.fault) {
            res.exit = BlockExit::Fault;
            res.faultIndex = static_cast<int>(i);
            res.faultX86Pc = uops[i].x86pc;
            return res;
        }
        if (o.vmExit) {
            res.exit = BlockExit::VmExit;
            res.nextPc = uops[i].x86pc;
            return res;
        }
        if (o.taken) {
            res.exit = BlockExit::Branch;
            res.nextPc = o.target;
            return res;
        }
    }
    res.exit = BlockExit::FallThrough;
    res.nextPc = fallthrough;
    return res;
}

} // namespace cdvm::uops
