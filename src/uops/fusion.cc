#include "uops/fusion.hh"

#include <algorithm>
#include <cassert>

namespace cdvm::uops
{

namespace
{

/** True if u writes the arithmetic flags. */
bool
writesFlags(const Uop &u)
{
    if (u.writeFlags)
        return true;
    switch (u.op) {
      case UOp::Cmp:
      case UOp::Tst:
      case UOp::Clc:
      case UOp::Stc:
      case UOp::Cmc:
      case UOp::MulWide:
      case UOp::ImulWide:
        return true;
      default:
        return false;
    }
}

bool
readsReg(const Uop &u, u8 reg)
{
    if (reg == UREG_NONE)
        return false;
    u8 s[3];
    u.sources(s);
    return s[0] == reg || s[1] == reg || s[2] == reg;
}

/** Barriers a tail may never be hoisted across. */
bool
isHoistBarrier(const Uop &u)
{
    switch (u.op) {
      case UOp::Br:
      case UOp::Jmp:
      case UOp::Jr:
      case UOp::St:
      case UOp::St8:
      case UOp::St16:
      case UOp::StF:
      case UOp::MulWide:
      case UOp::ImulWide:
      case UOp::DivWide:
      case UOp::IdivWide:
      case UOp::XltX86:
      case UOp::ExitVm:
      case UOp::Trap:
      case UOp::CpuidOp:
      case UOp::RdtscOp:
        return true;
      default:
        return false;
    }
}

/**
 * Can tail (at index j) be hoisted to sit right after head (index i),
 * crossing v[i+1..j-1]?
 */
bool
hoistLegal(const UopVec &v, std::size_t i, std::size_t j)
{
    const Uop &tail = v[j];
    u8 tail_src[3];
    tail.sources(tail_src);
    const u8 tail_dst = tail.destination();
    const bool tail_rf = tail.readsFlags();
    const bool tail_wf = writesFlags(tail);

    for (std::size_t k = i + 1; k < j; ++k) {
        const Uop &mid = v[k];
        if (isHoistBarrier(mid))
            return false;
        const u8 mid_dst = mid.destination();
        // RAW: tail must not consume a value produced in between.
        if (mid_dst != UREG_NONE &&
            (tail_src[0] == mid_dst || tail_src[1] == mid_dst ||
             tail_src[2] == mid_dst)) {
            return false;
        }
        // WAR: tail's write must not clobber a value mid still reads.
        if (tail_dst != UREG_NONE && readsReg(mid, tail_dst))
            return false;
        // WAW: write ordering must be preserved.
        if (tail_dst != UREG_NONE && mid_dst == tail_dst)
            return false;
        // Flag hazards, treating EFLAGS as one register.
        const bool mid_rf = mid.readsFlags();
        const bool mid_wf = writesFlags(mid);
        if (tail_rf && mid_wf)
            return false;
        if (tail_wf && (mid_rf || mid_wf))
            return false;
    }
    return true;
}

} // namespace

FusionStats
fusePairs(UopVec &v, const FusionConfig &cfg)
{
    FusionStats stats;
    stats.totalUops = static_cast<unsigned>(v.size());

    std::vector<bool> in_pair(v.size(), false);

    for (std::size_t i = 0; i < v.size(); ++i) {
        if (in_pair[i])
            continue;
        Uop &head = v[i];
        if (!head.isSimpleAlu())
            continue;
        const u8 d = head.destination();
        if (d == UREG_NONE && !writesFlags(head))
            continue; // produces neither a register nor flags

        const bool head_wf = writesFlags(head);
        const std::size_t limit =
            std::min(v.size(), i + 1 + cfg.window);
        for (std::size_t j = i + 1; j < limit; ++j) {
            if (in_pair[j])
                continue;
            const Uop &cand = v[j];
            if (!cand.isFusionTail())
                continue;
            if (cand.op == UOp::Br && !cfg.fuseBranches)
                continue;
            // Dependence through a register, or through the flags
            // (the classic compare-and-branch / test-and-branch
            // condition fusion of the fusible ISA).
            const bool reg_dep = readsReg(cand, d);
            const bool flag_dep = head_wf && cand.readsFlags();
            if (!reg_dep && !flag_dep)
                continue;
            // A branch tail may not be hoisted (it would move the
            // side-exit point); it can only fuse when adjacent.
            if (cand.isBranch() && j != i + 1)
                break;
            if (j != i + 1 && !hoistLegal(v, i, j))
                continue;

            // Hoist: rotate v[i+1..j] right so cand lands at i+1.
            if (j != i + 1)
                std::rotate(v.begin() + static_cast<long>(i) + 1,
                            v.begin() + static_cast<long>(j),
                            v.begin() + static_cast<long>(j) + 1);
            v[i].fusedHead = true;
            in_pair[i] = true;
            in_pair[i + 1] = true;
            ++stats.pairs;
            break;
        }
    }
    return stats;
}

} // namespace cdvm::uops
