/**
 * @file
 * Binary encoding of the fusible micro-op ISA.
 *
 * Following the fusible instruction set of Hu et al. [HPCA'06], the ISA
 * has a 16-bit compact format for the most common two-address ALU
 * operations and 32-bit formats carrying either three register
 * specifiers or two register specifiers plus a short immediate. Large
 * immediates and the 32-bit x86-level branch targets are carried in a
 * 16-bit or 32-bit extension word, so one micro-op encodes into 2, 4,
 * 6 or 8 bytes. The fusible bit lives in every format and marks a
 * micro-op fused with its successor (a macro-op head).
 *
 * Encodings round-trip exactly: decode(encode(v)) reproduces every
 * semantic field (the x86pc provenance tag is side metadata kept in the
 * translation descriptor, not in the encoding).
 */

#ifndef CDVM_UOPS_ENCODING_HH
#define CDVM_UOPS_ENCODING_HH

#include <span>
#include <vector>

#include "uops/uop.hh"

namespace cdvm::uops
{

/** Maximum encoded size of one micro-op (32-bit word + 32-bit ext). */
constexpr unsigned MAX_UOP_BYTES = 8;

/**
 * Encode one micro-op into out (at least MAX_UOP_BYTES writable).
 * @return bytes written (2, 4, 6 or 8).
 */
unsigned encodeOne(const Uop &u, u8 *out);

/**
 * Decode one micro-op from the byte window.
 * @return bytes consumed, or 0 if the window is malformed/truncated.
 */
unsigned decodeOne(std::span<const u8> window, Uop &out);

/** Encode a whole sequence. */
std::vector<u8> encode(std::span<const Uop> v);

/**
 * Decode a whole buffer (must contain exactly a sequence of micro-ops).
 * @return true on success.
 */
bool decodeAll(std::span<const u8> bytes, UopVec &out);

} // namespace cdvm::uops

#endif // CDVM_UOPS_ENCODING_HH
