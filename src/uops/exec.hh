/**
 * @file
 * Functional executor for implementation-ISA (micro-op) code.
 *
 * The executor runs the micro-op sequences produced by the BBT and SBT
 * translators against a machine state that mirrors the architected x86
 * state (R0..R7 == EAX..EDI plus EFLAGS). It is the functional truth
 * for "translated native mode" execution and is differentially tested
 * against the x86 reference interpreter.
 */

#ifndef CDVM_UOPS_EXEC_HH
#define CDVM_UOPS_EXEC_HH

#include <array>

#include "common/types.hh"
#include "uops/uop.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::uops
{

/**
 * Handler interface for the XLTx86 micro-op, implemented by the
 * hardware-assist model (hwassist::XltUnit). Splitting the interface
 * from the implementation keeps the ISA layer free of microarchitecture
 * dependencies.
 */
class XltHandler
{
  public:
    virtual ~XltHandler() = default;

    /**
     * Decode the x86 instruction at the start of the 16-byte src
     * window, write encoded micro-ops into the 16-byte dst buffer, and
     * return the CSR value (see uops/csr.hh).
     */
    virtual u32 translate(const u8 src[16], u8 dst[16]) = 0;
};

/** Implementation-ISA machine state. */
struct UState
{
    std::array<u32, NUM_UREGS> regs{};
    u32 eflags = 0x202;
    std::array<std::array<u8, 16>, 32> fregs{}; //!< 128-bit F registers
    u32 csr = 0;
    InstCount uopCount = 0;

    /** Import architected state from an x86 CpuState (R0..R7, flags). */
    void loadArch(const x86::CpuState &cpu);
    /** Export architected state into an x86 CpuState (eip unchanged). */
    void storeArch(x86::CpuState &cpu) const;
};

/** Why a micro-op block stopped executing. */
enum class BlockExit : u8
{
    FallThrough, //!< ran off the end of the sequence
    Branch,      //!< a taken branch produced the next x86 PC
    VmExit,      //!< ExitVm micro-op (HLT or exit stub)
    Fault,       //!< Trap / divide fault at some micro-op
};

/** Result of executing a translated block. */
struct BlockResult
{
    BlockExit exit = BlockExit::FallThrough;
    Addr nextPc = 0;        //!< next x86-level PC (Branch/FallThrough)
    unsigned uopsRun = 0;   //!< micro-ops executed (including faulting)
    int faultIndex = -1;    //!< index of faulting micro-op, -1 if none
    Addr faultX86Pc = 0;    //!< x86 PC tag of the faulting micro-op
};

/** Micro-op executor over a UState and guest Memory. */
class UopExecutor
{
  public:
    UopExecutor(UState &state, x86::Memory &memory)
        : st(state), mem(memory)
    {
    }

    /** Install the XLTx86 functional-unit model (may be null). */
    void setXltHandler(XltHandler *h) { xlt = h; }

    /**
     * Execute a translated block.
     *
     * @param uops          The translation body.
     * @param fallthrough   x86 PC that follows the translated region.
     */
    BlockResult run(std::span<const Uop> uops, Addr fallthrough);

    /** Outcome of a single micro-op (used by run and by the HAloop). */
    struct Outcome
    {
        bool taken = false;
        Addr target = 0;
        bool fault = false;
        bool vmExit = false;
    };

    /** Execute one micro-op. */
    Outcome exec(const Uop &u);

  private:
    u32 readSized(u8 reg, unsigned size) const;
    Addr effAddr(const Uop &u) const;

    UState &st;
    x86::Memory &mem;
    XltHandler *xlt = nullptr;
};

} // namespace cdvm::uops

#endif // CDVM_UOPS_EXEC_HH
