/**
 * @file
 * CSR -- the control and status register written by XLTx86.
 *
 * Paper Figure 6b:
 *
 *   | Flag_cti | Flag_cmplx | uops_bytes (4-bit) | x86_ilen (4-bit) |
 *
 * x86_ilen (bits 3:0) is the decoded instruction's length in bytes.
 * uops_bytes (bits 7:4) is the emitted micro-op length in half-words
 * (bytes / 2; micro-op encodings are always an even number of bytes,
 * so values 1..8 cover the 2..16-byte range that fits Fdst).
 * Flag_cmplx (bit 8) marks instructions the hardware defers to the
 * software path; Flag_cti (bit 9) marks control-transfer instructions.
 */

#ifndef CDVM_UOPS_CSR_HH
#define CDVM_UOPS_CSR_HH

#include "common/types.hh"

namespace cdvm::uops::csr
{

constexpr u32 CMPLX = 1u << 8;
constexpr u32 CTI = 1u << 9;

/** Decoded x86 instruction length in bytes. */
constexpr unsigned
ilen(u32 c)
{
    return c & 0xf;
}

/** Emitted micro-op bytes. */
constexpr unsigned
uopBytes(u32 c)
{
    return ((c >> 4) & 0xf) * 2;
}

constexpr bool
isComplex(u32 c)
{
    return c & CMPLX;
}

constexpr bool
isCti(u32 c)
{
    return c & CTI;
}

/** Compose a CSR value. */
constexpr u32
make(unsigned ilen_bytes, unsigned uop_bytes, bool cmplx, bool cti)
{
    u32 c = (ilen_bytes & 0xf) | (((uop_bytes / 2) & 0xf) << 4);
    if (cmplx)
        c |= CMPLX;
    if (cti)
        c |= CTI;
    return c;
}

} // namespace cdvm::uops::csr

#endif // CDVM_UOPS_CSR_HH
