/**
 * @file
 * Macro-op fusion: pairing dependent micro-ops.
 *
 * The hotspot optimizer (SBT) fuses pairs of dependent micro-ops into
 * macro-ops that the co-designed pipeline processes as single entities
 * (Hu & Smith [CGO'04], Hu et al. [HPCA'06]). The head of a pair must
 * be a single-cycle ALU micro-op whose result feeds the tail; the tail
 * is hoisted to sit immediately after the head, subject to the usual
 * data-, flag- and control-hazard legality rules.
 *
 * Fusion is a pure reordering + marking pass: executing the fused
 * sequence in program order on the functional executor produces exactly
 * the same architected state, which the property tests verify.
 */

#ifndef CDVM_UOPS_FUSION_HH
#define CDVM_UOPS_FUSION_HH

#include "uops/uop.hh"

namespace cdvm::uops
{

/** Knobs for the fusion pass. */
struct FusionConfig
{
    /** Maximum lookahead distance from head to candidate tail. */
    unsigned window = 4;
    /** Allow fusing an ALU head with a dependent conditional branch. */
    bool fuseBranches = true;
};

/** Outcome statistics of a fusion pass. */
struct FusionStats
{
    unsigned pairs = 0;     //!< macro-ops formed
    unsigned totalUops = 0; //!< micro-ops considered

    /** Fraction of micro-ops that ended up inside a macro-op. */
    double
    fusedFraction() const
    {
        return totalUops ? 2.0 * pairs / totalUops : 0.0;
    }
};

/**
 * Run macro-op fusion over a micro-op sequence in place. Tails are
 * hoisted adjacent to their heads and heads get fusedHead set.
 */
FusionStats fusePairs(UopVec &v, const FusionConfig &cfg = {});

} // namespace cdvm::uops

#endif // CDVM_UOPS_FUSION_HH
