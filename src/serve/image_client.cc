#include "serve/image_client.hh"

#include "serve/protocol.hh"

#ifdef __unix__
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace cdvm::serve
{

bool
ImageClient::failed(const std::string &what)
{
    std::lock_guard<std::mutex> lock(mu);
    err = what;
    return false;
}

std::string
ImageClient::lastError() const
{
    std::lock_guard<std::mutex> lock(mu);
    return err;
}

std::shared_ptr<const dbt::TransImage>
ImageClient::acquire() const
{
    std::lock_guard<std::mutex> lock(mu);
    return cur;
}

u64
ImageClient::generation() const
{
    std::lock_guard<std::mutex> lock(mu);
    return gen;
}

bool
ImageClient::connect(const std::string &socket_path)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        path = socket_path;
    }
    return refresh();
}

#ifdef __unix__

bool
ImageClient::refresh()
{
    std::string sock_path;
    {
        std::lock_guard<std::mutex> lock(mu);
        sock_path = path;
    }
    if (sock_path.empty())
        return failed("refresh: no socket path (connect first)");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock_path.size() >= sizeof(addr.sun_path))
        return failed("refresh: socket path too long");
    std::memcpy(addr.sun_path, sock_path.c_str(), sock_path.size() + 1);

    // One short-lived connection per handshake: the daemon stays
    // connection-free between refreshes and a crashed client leaks
    // nothing into it.
    const int s = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (s < 0)
        return failed(std::string("refresh: socket: ") +
                      std::strerror(errno));
    struct timeval tv{5, 0};
    ::setsockopt(s, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(s, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    if (::connect(s, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof addr) != 0) {
        const int e = errno;
        ::close(s);
        return failed(std::string("refresh: connect: ") +
                      std::strerror(e));
    }

    ImageRequest req;
    ImageReply rep{};
    int fd = -1;
    const bool io_ok = sendWithFd(s, &req, sizeof req, -1) &&
                       recvWithFd(s, &rep, sizeof rep, &fd);
    ::close(s);
    if (!io_ok) {
        if (fd >= 0)
            ::close(fd);
        return failed("refresh: handshake I/O failed");
    }
    if (rep.magic != SERVE_MAGIC || rep.version != SERVE_VERSION) {
        if (fd >= 0)
            ::close(fd);
        return failed("refresh: reply magic/version mismatch");
    }
    switch (static_cast<ReplyStatus>(rep.status)) {
      case ReplyStatus::NoImage:
        if (fd >= 0)
            ::close(fd);
        return true; // daemon up, nothing published: stay cold
      case ReplyStatus::Image:
        break;
      case ReplyStatus::BadRequest:
      default:
        if (fd >= 0)
            ::close(fd);
        return failed("refresh: daemon rejected the request");
    }
    if (fd < 0)
        return failed("refresh: reply carried no descriptor");

    {
        std::lock_guard<std::mutex> lock(mu);
        if (cur && gen == rep.generation) {
            ::close(fd);
            return true; // already mapping this generation
        }
    }

    auto img = std::make_shared<dbt::TransImage>();
    const dbt::LoadError e = dbt::TransImage::loadFd(fd, *img);
    ::close(fd); // the MAP_SHARED mapping keeps the object alive
    if (e != dbt::LoadError::None)
        return failed(std::string("refresh: map/verify: ") +
                      dbt::loadErrorDetail(e));
    if (img->sizeBytes() != rep.imageBytes)
        return failed("refresh: image size disagrees with reply");

    std::lock_guard<std::mutex> lock(mu);
    cur = std::move(img);
    gen = rep.generation;
    err.clear();
    return true;
}

#else // !__unix__

bool
ImageClient::refresh()
{
    return failed("image serving requires a unix host");
}

#endif // __unix__

} // namespace cdvm::serve
