#include "serve/protocol.hh"

#ifdef __unix__

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace cdvm::serve
{

bool
sendWithFd(int sock, const void *buf, std::size_t n, int fd)
{
    const u8 *p = static_cast<const u8 *>(buf);
    std::size_t done = 0;
    bool fd_pending = fd >= 0;
    while (done < n) {
        struct iovec iov;
        iov.iov_base = const_cast<u8 *>(p + done);
        iov.iov_len = n - done;
        struct msghdr msg{};
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
        // The descriptor rides on the first fragment only; the kernel
        // delivers it with the byte it was attached to.
        alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))];
        if (fd_pending) {
            std::memset(ctrl, 0, sizeof ctrl);
            msg.msg_control = ctrl;
            msg.msg_controllen = CMSG_SPACE(sizeof(int));
            struct cmsghdr *cm = CMSG_FIRSTHDR(&msg);
            cm->cmsg_level = SOL_SOCKET;
            cm->cmsg_type = SCM_RIGHTS;
            cm->cmsg_len = CMSG_LEN(sizeof(int));
            std::memcpy(CMSG_DATA(cm), &fd, sizeof(int));
        }
        const ssize_t sent = ::sendmsg(sock, &msg, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        fd_pending = false;
        done += static_cast<std::size_t>(sent);
    }
    return true;
}

bool
recvWithFd(int sock, void *buf, std::size_t n, int *fd_out)
{
    if (fd_out)
        *fd_out = -1;
    u8 *p = static_cast<u8 *>(buf);
    std::size_t done = 0;
    while (done < n) {
        struct iovec iov;
        iov.iov_base = p + done;
        iov.iov_len = n - done;
        struct msghdr msg{};
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
        alignas(struct cmsghdr) char ctrl[CMSG_SPACE(sizeof(int))];
        msg.msg_control = ctrl;
        msg.msg_controllen = sizeof ctrl;
        const ssize_t got = ::recvmsg(sock, &msg, 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (got == 0)
            return false; // peer closed mid-message
        for (struct cmsghdr *cm = CMSG_FIRSTHDR(&msg); cm;
             cm = CMSG_NXTHDR(&msg, cm)) {
            if (cm->cmsg_level != SOL_SOCKET ||
                cm->cmsg_type != SCM_RIGHTS)
                continue;
            const std::size_t nfds =
                (cm->cmsg_len - CMSG_LEN(0)) / sizeof(int);
            for (std::size_t i = 0; i < nfds; ++i) {
                int fd = -1;
                std::memcpy(&fd, CMSG_DATA(cm) + i * sizeof(int),
                            sizeof(int));
                if (fd_out && *fd_out < 0)
                    *fd_out = fd;
                else if (fd >= 0)
                    ::close(fd); // surplus descriptors never leak
            }
        }
        done += static_cast<std::size_t>(got);
    }
    return true;
}

} // namespace cdvm::serve

#endif // __unix__
