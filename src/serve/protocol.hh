/**
 * @file
 * Wire protocol for cross-process image serving.
 *
 * One request/reply pair over a SOCK_STREAM Unix-domain socket. The
 * client sends a fixed-size ImageRequest; the host answers with a
 * fixed-size ImageReply and — when an image generation is published —
 * attaches the read-only descriptor of its sealed image object as
 * SCM_RIGHTS ancillary data on the same sendmsg(). The client maps
 * that fd MAP_SHARED and closes it; the mapping keeps the image bytes
 * alive, and every mapper in the fleet shares ONE physical copy.
 *
 *   client                        host (ImageHost)
 *     |--- ImageRequest ----------->|
 *     |<-- ImageReply + [fd] -------|   fd: sealed memfd, read-only
 *     |    mmap(fd, MAP_SHARED)     |
 *     |    close(fd)                |
 *
 * All integer fields are little-endian (both ends of a Unix-domain
 * socket are the same host, so no swapping is performed; the layout
 * is fixed so a mixed-version handshake fails loudly on the version
 * field rather than silently).
 */

#ifndef CDVM_SERVE_PROTOCOL_HH
#define CDVM_SERVE_PROTOCOL_HH

#include <cstddef>

#include "common/types.hh"

namespace cdvm::serve
{

/** Handshake magic ("CDVMSRV1" as a little-endian u64). */
constexpr u64 SERVE_MAGIC = 0x315652534D564443ull;
/** Serving protocol version. */
constexpr u32 SERVE_VERSION = 1;

/** Client -> host: "send me your current image generation". */
struct ImageRequest
{
    u64 magic = SERVE_MAGIC;
    u32 version = SERVE_VERSION;
    u32 reserved = 0;
};
static_assert(sizeof(ImageRequest) == 16);

/** ImageReply::status values. */
enum class ReplyStatus : u32
{
    Image = 0,      //!< reply carries an fd for `generation`
    NoImage = 1,    //!< host is up but nothing published yet
    BadRequest = 2, //!< magic/version mismatch
};

/** Host -> client: generation metadata; fd rides as SCM_RIGHTS. */
struct ImageReply
{
    u64 magic = SERVE_MAGIC;
    u32 version = SERVE_VERSION;
    u32 status = 0; //!< ReplyStatus
    u64 generation = 0;
    u64 imageBytes = 0; //!< size of the attached image object
};
static_assert(sizeof(ImageReply) == 32);

#ifdef __unix__

/**
 * Send exactly n bytes on a stream socket, attaching fd (when >= 0)
 * as SCM_RIGHTS ancillary data on the first fragment.
 * @return success; errno holds the detail on failure.
 */
bool sendWithFd(int sock, const void *buf, std::size_t n, int fd);

/**
 * Receive exactly n bytes, capturing at most one passed descriptor
 * into *fd_out (-1 if none arrived). Any surplus descriptors are
 * closed. @return success (false on EOF/short read/error).
 */
bool recvWithFd(int sock, void *buf, std::size_t n, int *fd_out);

#endif // __unix__

} // namespace cdvm::serve

#endif // CDVM_SERVE_PROTOCOL_HH
