/**
 * @file
 * ImageHost: the warm-start image daemon.
 *
 * Owns the single-writer role of an ImageStore and serves its current
 * generation to every co-resident VM process. Each published
 * generation is materialized once into a sealed anonymous memory
 * object (memfd_create + F_SEAL_SHRINK|GROW|WRITE, with an unlinked
 * temp file as the portable fallback); clients receive the read-only
 * descriptor over a Unix-domain socket (SCM_RIGHTS) and map it
 * MAP_SHARED, so N mapper processes fault in ONE physical copy of the
 * translation image instead of N private ones.
 *
 * Generation lifetime across processes: sealing makes the object
 * immutable, and the kernel keeps it alive while any mapping or
 * descriptor references it. The host closing its fd after a newer
 * publish therefore never invalidates a client mid-install — the old
 * generation dies only when the last client unmaps it, the same
 * shared_ptr discipline ImageStore gives threads, enforced by the
 * kernel for processes.
 *
 * The host is itself an ImageEndpoint (backed by its store), so the
 * serving process can warm-boot its own VMs from the same generation
 * it hands out.
 */

#ifndef CDVM_SERVE_IMAGE_HOST_HH
#define CDVM_SERVE_IMAGE_HOST_HH

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "dbt/image.hh"

namespace cdvm::serve
{

class ImageHost : public dbt::ImageEndpoint
{
  public:
    struct Stats
    {
        u64 publishes = 0;     //!< generations sealed and swapped in
        u64 clientsServed = 0; //!< requests answered (any status)
        u64 imagesSent = 0;    //!< replies that carried an fd
        u64 badRequests = 0;   //!< magic/version mismatches
    };

    ImageHost() = default;
    ~ImageHost() override;
    ImageHost(const ImageHost &) = delete;
    ImageHost &operator=(const ImageHost &) = delete;

    /**
     * Bind socket_path (any stale socket file is replaced) and start
     * the accept loop. @return success; on failure the host is inert
     * and lastError() explains why.
     */
    bool start(const std::string &socket_path);

    /** Stop the accept loop and remove the socket file. Idempotent;
     *  published generations stay acquirable in-process. */
    void stop();

    bool running() const { return thr.joinable(); }

    /**
     * Seal a built image blob into a fresh memory object, verify it
     * (TransImage::loadFd — exactly what a client will do), and swap
     * it in as the generation served to new requests. Clients holding
     * the previous generation keep it (see file comment).
     */
    bool publish(std::span<const u8> blob);

    /**
     * Writer-side merge: current generation + freshly captured delta
     * through the builder, then publish the compacted result.
     */
    dbt::LoadError append(const dbt::Repository &delta,
                          u64 size_budget = 0);

    /** In-process endpoint view of the served store. */
    std::shared_ptr<const dbt::TransImage> acquire() const override;
    u64 generation() const override;

    Stats stats() const;
    std::string lastError() const;

  private:
    void serveLoop();
    void handleClient(int sock);
    void setError(const std::string &what);

    dbt::ImageStore store;

    mutable std::mutex mu; //!< curFd/curGen/curBytes/st/err
    int listenFd = -1;
    int stopPipe[2] = {-1, -1};
    int curFd = -1; //!< sealed object of the current generation
    u64 curGen = 0;
    u64 curBytes = 0;
    Stats st;
    std::string err;
    std::string sockPath;
    std::thread thr;
};

} // namespace cdvm::serve

#endif // CDVM_SERVE_IMAGE_HOST_HH
