/**
 * @file
 * ImageClient: the mapper side of cross-process image serving.
 *
 * Speaks the serve/protocol handshake to an ImageHost daemon,
 * receives the sealed image fd over SCM_RIGHTS, and maps it
 * MAP_SHARED read-only (TransImage::loadFd). It exposes the same
 * generation-handle API as dbt::ImageStore (via dbt::ImageEndpoint),
 * so warmStartInstall and every consumer above it are untouched: a VM
 * can be bound to an in-process store or to a socket client behind
 * one interface.
 *
 * Failure policy is fall-back-to-cold: a missing daemon, a refused
 * connection, or a garbled handshake leaves acquire() null and the VM
 * boots cold — serving is an accelerator, never a dependency.
 */

#ifndef CDVM_SERVE_IMAGE_CLIENT_HH
#define CDVM_SERVE_IMAGE_CLIENT_HH

#include <memory>
#include <mutex>
#include <string>

#include "dbt/image.hh"

namespace cdvm::serve
{

class ImageClient : public dbt::ImageEndpoint
{
  public:
    ImageClient() = default;
    ~ImageClient() override = default;
    ImageClient(const ImageClient &) = delete;
    ImageClient &operator=(const ImageClient &) = delete;

    /**
     * Remember socket_path and fetch the current generation.
     * @return true if the handshake succeeded (even with NoImage —
     * the daemon is up, it just has nothing published yet); false
     * leaves the client usable for later refresh() retries and
     * lastError() explains what failed.
     */
    bool connect(const std::string &socket_path);

    /**
     * Re-run the handshake; map and swap in the daemon's generation
     * if it changed. Handles already holding the old generation stay
     * valid (kernel-side lifetime, see image_host.hh).
     */
    bool refresh();

    /** Current mapped generation (null = boot cold). */
    std::shared_ptr<const dbt::TransImage> acquire() const override;
    /** Daemon generation counter from the last good handshake. */
    u64 generation() const override;

    std::string lastError() const;

  private:
    bool failed(const std::string &what);

    mutable std::mutex mu;
    std::string path;
    std::shared_ptr<const dbt::TransImage> cur;
    u64 gen = 0;
    std::string err;
};

} // namespace cdvm::serve

#endif // CDVM_SERVE_IMAGE_CLIENT_HH
