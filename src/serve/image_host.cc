#include "serve/image_host.hh"

#include "serve/protocol.hh"

#ifdef __unix__

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace cdvm::serve
{

namespace
{

/**
 * Materialize blob into an immutable anonymous memory object and
 * return its read-only fd (-1 on failure). Prefers a sealed memfd;
 * falls back to an unlinked temp file (same sharing semantics, minus
 * the seals) where memfd_create is unavailable.
 */
int
sealBlob(std::span<const u8> blob, std::string &err)
{
    int fd = -1;
#ifdef MFD_ALLOW_SEALING
    fd = ::memfd_create("cdvm-image", MFD_CLOEXEC | MFD_ALLOW_SEALING);
#endif
    bool is_memfd = fd >= 0;
    if (fd < 0) {
        char tmpl[] = "/tmp/cdvm-image-XXXXXX";
        fd = ::mkstemp(tmpl);
        if (fd < 0) {
            err = std::string("seal: mkstemp: ") + std::strerror(errno);
            return -1;
        }
        ::unlink(tmpl); // anonymous: name gone, object lives via fds
    }
    std::size_t done = 0;
    while (done < blob.size()) {
        const ssize_t n =
            ::write(fd, blob.data() + done, blob.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            err = std::string("seal: write: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        done += static_cast<std::size_t>(n);
    }
#ifdef F_ADD_SEALS
    // Immutability is the cross-process safety contract: once sealed,
    // no writer exists, so a client's MAP_SHARED view can never be
    // changed (or shrunk into a SIGBUS) underneath an install.
    if (is_memfd &&
        ::fcntl(fd, F_ADD_SEALS,
                F_SEAL_SHRINK | F_SEAL_GROW | F_SEAL_WRITE) != 0) {
        err = std::string("seal: F_ADD_SEALS: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
#else
    (void)is_memfd;
#endif
    if (::lseek(fd, 0, SEEK_SET) != 0) {
        err = std::string("seal: lseek: ") + std::strerror(errno);
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace

ImageHost::~ImageHost()
{
    stop();
    std::lock_guard<std::mutex> lock(mu);
    if (curFd >= 0)
        ::close(curFd);
    curFd = -1;
}

void
ImageHost::setError(const std::string &what)
{
    std::lock_guard<std::mutex> lock(mu);
    err = what;
}

std::string
ImageHost::lastError() const
{
    std::lock_guard<std::mutex> lock(mu);
    return err;
}

ImageHost::Stats
ImageHost::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

std::shared_ptr<const dbt::TransImage>
ImageHost::acquire() const
{
    return store.acquire();
}

u64
ImageHost::generation() const
{
    return store.generation();
}

bool
ImageHost::start(const std::string &socket_path)
{
    if (running()) {
        setError("start: already running");
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
        setError("start: socket path too long");
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        setError(std::string("start: socket: ") + std::strerror(errno));
        return false;
    }
    ::unlink(socket_path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd, 64) != 0) {
        setError(std::string("start: bind/listen: ") +
                 std::strerror(errno));
        ::close(fd);
        return false;
    }
    if (::pipe(stopPipe) != 0) {
        setError(std::string("start: pipe: ") + std::strerror(errno));
        ::close(fd);
        return false;
    }
    listenFd = fd;
    sockPath = socket_path;
    thr = std::thread(&ImageHost::serveLoop, this);
    return true;
}

void
ImageHost::stop()
{
    if (!running())
        return;
    // One byte down the self-pipe unblocks poll(); the loop exits.
    const char b = 0;
    [[maybe_unused]] ssize_t n = ::write(stopPipe[1], &b, 1);
    thr.join();
    ::close(stopPipe[0]);
    ::close(stopPipe[1]);
    stopPipe[0] = stopPipe[1] = -1;
    ::close(listenFd);
    listenFd = -1;
    if (!sockPath.empty())
        ::unlink(sockPath.c_str());
    sockPath.clear();
}

void
ImageHost::serveLoop()
{
    for (;;) {
        struct pollfd fds[2];
        fds[0] = {listenFd, POLLIN, 0};
        fds[1] = {stopPipe[0], POLLIN, 0};
        const int r = ::poll(fds, 2, -1);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            setError(std::string("poll: ") + std::strerror(errno));
            return;
        }
        if (fds[1].revents)
            return; // stop() signalled
        if (!(fds[0].revents & POLLIN))
            continue;
        const int c = ::accept(listenFd, nullptr, nullptr);
        if (c < 0)
            continue;
        // A stalled client must not wedge the daemon: bound both
        // directions of the tiny fixed-size exchange.
        struct timeval tv{5, 0};
        ::setsockopt(c, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(c, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        handleClient(c);
        ::close(c);
    }
}

void
ImageHost::handleClient(int sock)
{
    ImageRequest req{};
    const bool got = recvWithFd(sock, &req, sizeof req, nullptr);

    ImageReply rep;
    int fd_to_send = -1;
    int dup_fd = -1;
    {
        std::lock_guard<std::mutex> lock(mu);
        ++st.clientsServed;
        if (!got || req.magic != SERVE_MAGIC ||
            req.version != SERVE_VERSION) {
            rep.status = static_cast<u32>(ReplyStatus::BadRequest);
            ++st.badRequests;
        } else if (curFd < 0) {
            rep.status = static_cast<u32>(ReplyStatus::NoImage);
        } else {
            // Dup under the lock so a racing publish() closing curFd
            // can never invalidate the descriptor mid-send.
            dup_fd = ::dup(curFd);
            if (dup_fd < 0) {
                rep.status = static_cast<u32>(ReplyStatus::NoImage);
            } else {
                rep.status = static_cast<u32>(ReplyStatus::Image);
                rep.generation = curGen;
                rep.imageBytes = curBytes;
                fd_to_send = dup_fd;
                ++st.imagesSent;
            }
        }
    }
    sendWithFd(sock, &rep, sizeof rep, fd_to_send);
    if (dup_fd >= 0)
        ::close(dup_fd);
}

bool
ImageHost::publish(std::span<const u8> blob)
{
    std::string seal_err;
    const int fd = sealBlob(blob, seal_err);
    if (fd < 0) {
        setError(seal_err);
        return false;
    }

    // Verify through the exact path a client will take: map the
    // sealed fd shared and run full image verification. The host
    // never serves bytes it could not install itself.
    auto img = std::make_shared<dbt::TransImage>();
    const dbt::LoadError e = dbt::TransImage::loadFd(fd, *img);
    if (e != dbt::LoadError::None) {
        setError(std::string("publish: verify: ") +
                 dbt::loadErrorDetail(e));
        ::close(fd);
        return false;
    }

    store.publish(std::move(img));
    int old = -1;
    {
        std::lock_guard<std::mutex> lock(mu);
        old = curFd;
        curFd = fd;
        curGen = store.generation();
        curBytes = blob.size();
        ++st.publishes;
    }
    if (old >= 0)
        ::close(old); // clients' mappings keep the old object alive
    return true;
}

dbt::LoadError
ImageHost::append(const dbt::Repository &delta, u64 size_budget)
{
    const std::shared_ptr<const dbt::TransImage> basis = acquire();
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{
        size_budget,
        (basis ? basis->header().generation : 0) + 1});
    if (basis)
        b.add(*basis);
    b.add(delta);
    const std::vector<u8> blob = b.build();
    if (!publish(blob))
        return dbt::LoadError::Io;
    return dbt::LoadError::None;
}

} // namespace cdvm::serve

#else // !__unix__

namespace cdvm::serve
{

ImageHost::~ImageHost() = default;

void
ImageHost::setError(const std::string &what)
{
    std::lock_guard<std::mutex> lock(mu);
    err = what;
}

std::string
ImageHost::lastError() const
{
    std::lock_guard<std::mutex> lock(mu);
    return err;
}

ImageHost::Stats
ImageHost::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return st;
}

std::shared_ptr<const dbt::TransImage>
ImageHost::acquire() const
{
    return store.acquire();
}

u64
ImageHost::generation() const
{
    return store.generation();
}

bool
ImageHost::start(const std::string &)
{
    setError("image serving requires a unix host");
    return false;
}

void
ImageHost::stop()
{
}

bool
ImageHost::publish(std::span<const u8> blob)
{
    // No fd transport, but the in-process endpoint still works.
    auto img = std::make_shared<dbt::TransImage>();
    if (dbt::TransImage::adopt(blob, *img) != dbt::LoadError::None) {
        setError("publish: blob failed verification");
        return false;
    }
    store.publish(std::move(img));
    std::lock_guard<std::mutex> lock(mu);
    ++st.publishes;
    return true;
}

dbt::LoadError
ImageHost::append(const dbt::Repository &delta, u64 size_budget)
{
    const std::shared_ptr<const dbt::TransImage> basis = acquire();
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{
        size_budget,
        (basis ? basis->header().generation : 0) + 1});
    if (basis)
        b.add(*basis);
    b.add(delta);
    if (!publish(b.build()))
        return dbt::LoadError::Io;
    return dbt::LoadError::None;
}

} // namespace cdvm::serve

#endif // __unix__
