/**
 * @file
 * The VMM runtime: the concealed software layer that orchestrates
 * staged emulation (paper Fig. 1).
 *
 * Since the engine-layer refactor the Vmm is a thin dispatch core:
 * it owns the run loop (chain-follow, lookup, translate-on-miss,
 * translated execution) and delegates everything configuration-
 * specific to the engine's strategy objects:
 *
 *  - engine::ColdExecutor -- what happens on a lookup miss
 *    (interpret, hardware x86-mode, software BBT, XLTx86-assisted
 *    BBT);
 *  - engine::HotspotDetector -- when a region goes hot (software
 *    exec counters or the hardware BBB);
 *  - engine::SbtBackend -- how a hot seed becomes optimized code;
 *  - engine::CodeCacheManager -- translation registration, arenas,
 *    flush-on-full eviction;
 *  - engine::TranslatedExecutor -- micro-op execution with
 *    precise-state recovery.
 *
 * Everything the core does is narrated as an engine::StageEvent
 * stream; the tracer's track-0 timeline is one consumer (TraceSink)
 * and callers may attach their own sinks (StageCounter gives retire
 * counts per stage).
 *
 * This is the functional VMM: it really translates, really executes
 * micro-ops from a really-allocated code cache, and is differentially
 * tested against pure interpretation. Timing is layered separately in
 * cdvm::timing.
 */

#ifndef CDVM_VMM_VMM_HH
#define CDVM_VMM_VMM_HH

#include <memory>
#include <optional>

#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/trace.hh"
#include "engine/async_sbt.hh"
#include "engine/backend.hh"
#include "engine/cache_mgr.hh"
#include "engine/engine_config.hh"
#include "engine/events.hh"
#include "engine/profile.hh"
#include "engine/profiler.hh"
#include "engine/services.hh"
#include "engine/strategy.hh"
#include "engine/translated_exec.hh"
#include "hwassist/bbb.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm::vmm
{

/** The engine configuration doubles as the VMM configuration. */
using VmmConfig = engine::EngineConfig;
/** Engine statistics are the VMM statistics. */
using VmmStats = engine::EngineStats;

/** The virtual machine monitor: the engine's dispatch core. */
class Vmm
{
  public:
    /**
     * Construct one guest context. Everything the Vmm owns is
     * per-context (registers live in the caller's CpuState; guest
     * memory is the caller's Memory; code caches, lookup structures,
     * profilers, and stats are private members) -- the only
     * process-wide couplings are the services passed here:
     *
     *  - services.sbtPool: background SBT requests go to this shared
     *    worker pool instead of a private one (multi-tenant hosting);
     *  - services.warmRepo: warm-start from this pre-parsed shared
     *    repository instead of re-reading warmStartLoadPath.
     *
     * Default-constructed services preserve the classic one-process,
     * one-context behavior exactly.
     */
    Vmm(x86::Memory &memory, const VmmConfig &config = {},
        const engine::SharedServices &services = {});
    ~Vmm();

    /**
     * Emulate from the CPU state until program exit, a trap, or at
     * least max_insns retired x86 instructions (translations complete
     * atomically, so the count may overshoot by one region).
     */
    x86::Exit run(x86::CpuState &cpu, InstCount max_insns);

    const VmmStats &stats() const { return st; }
    const VmmConfig &config() const { return cfg; }
    dbt::TranslationMap &translations() { return ccm.translations(); }
    const dbt::CodeCache &bbtCache() const { return ccm.bbtCache(); }
    const dbt::CodeCache &sbtCache() const { return ccm.sbtCache(); }
    const dbt::SuperblockTranslator &sbt() const
    {
        return sbtBackend.translator();
    }

    /**
     * Capture the live translations, hot counts and branch profile as
     * an in-memory warm-start repository, hottest-first. A fleet
     * server primes one context, captures it, and hands the result to
     * every later context through SharedServices::warmRepo.
     */
    dbt::Repository captureWarmStart() const;

    /**
     * Save the live translations and branch profile as a warm-start
     * repository (dbt/persist format). Uses
     * config().warmStartSavePath when path is empty. @return success.
     */
    bool saveWarmStart(const std::string &path = "") const;

    /** The hotspot detector's BBB (an idle unit when not used). */
    const hwassist::BranchBehaviorBuffer &bbb() const;

    /** Observed taken-bias of the branch at branch_pc, if profiled. */
    std::optional<double>
    branchBias(Addr branch_pc) const
    {
        return branchProf.bias(branch_pc);
    }

    /** The cold-code strategy in use. */
    const engine::ColdExecutor &coldExecutor() const { return *cold; }

    /** The background SBT pipeline (null in synchronous mode). */
    const engine::AsyncSbtEngine *asyncSbtEngine() const
    {
        return asyncSbt.get();
    }

    /**
     * Attach an additional consumer of the engine's stage events
     * (must outlive the Vmm's run() calls).
     */
    void attachSink(engine::StageSink *s) { events.attach(s); }

    /**
     * Publish the full staged-emulation picture into a StatRegistry:
     * vmm.* (this object's counters), dbt.* (translators, code
     * caches, lookup table), hwassist.* (BBB and, per configuration,
     * the XLTx86 unit or dual-mode decoders) and engine.* (profiling
     * containers). Values are copied at call time; call after run().
     */
    void exportStats(StatRegistry &reg) const;

    /**
     * The VMM's virtual trace clock, in work units: retired x86
     * instructions advance it by one each, translation work by the
     * number of instructions translated. Phase spans recorded with
     * the global Tracer use this timebase (track 0).
     */
    u64 traceClock() const { return traceSink.clock(); }

    // --- continuous profiling ---------------------------------------
    /** The guest-hotness sampling profiler (disabled when period 0). */
    const engine::SamplingProfiler &profiler() const { return prof; }

    /** The always-on flight recorder ring. */
    const FlightRecorder &flightRecorder() const { return flight; }

    /** Flush-storm detection counters. */
    const engine::FlightSink &flightSink() const { return flightFeed; }

    /** Dump the flight recorder to path now. @return success. */
    bool
    dumpFlight(const std::string &path) const
    {
        return flight.writeText(path);
    }

    /** Interval snapshots taken on the retired-instruction clock. */
    const SnapshotSeries &snapshots() const { return snaps; }

    /**
     * Take one snapshot row of the vmm.* and engine.* counters now,
     * at the current retire clock. Cheap: no async barrier, no
     * dbt/hwassist export -- safe from inside the run loop.
     */
    void snapshotNow();

    /**
     * Publish only this object's own counters (the vmm.* and
     * engine.(branch_prof|sbt_failed|profiler|flight).* namespaces)
     * -- the barrier-free subset of exportStats that interval
     * snapshots capture.
     */
    void exportCoreStats(StatRegistry &reg) const;

  private:
    x86::Exit runLoop(x86::CpuState &cpu, InstCount max_insns);
    /** Flight-recorder dump on Trap/DecodeFault exits. */
    void dumpFlightOnAbnormal(x86::Exit e) const;
    void invokeSbt(Addr seed_pc);
    /** Emit the SbtOptimize event and publish the superblock. */
    void installSbt(Addr seed_pc,
                    std::unique_ptr<dbt::Translation> t);
    /** Install finished background optimizations (dispatch points). */
    void drainAsyncSbt();

    x86::Memory &mem;
    VmmConfig cfg;
    /** Process-shared services (keeps the warm repo handle alive). */
    engine::SharedServices svc;
    VmmStats st;

    engine::EventStream events;
    engine::TraceSink traceSink;

    /** Per-branch direction profile (bounded; feeds the SBT's bias). */
    engine::BranchProfile branchProf;
    /** Seeds where superblock formation already failed (bounded). */
    engine::BoundedAddrSet sbtFailed;

    engine::CodeCacheManager ccm;
    std::unique_ptr<engine::ColdExecutor> cold;
    std::unique_ptr<engine::HotspotDetector> detector;
    engine::SbtBackend sbtBackend;
    /** Background optimization contexts (cfg.asyncTranslators > 0). */
    std::unique_ptr<engine::AsyncSbtEngine> asyncSbt;
    engine::TranslatedExecutor translatedExec;

    // --- continuous profiling (dispatch-thread only) ----------------
    /**
     * Per-backend host translation-time histograms (wall ns per
     * translate call), split by producing tier so the template tier's
     * speedup is observable in the stats, not just benchmarked:
     * engine.xlate.bbt_ns / tmpl_ns / sbt_ns.
     */
    LogHistogram xlateBbtNs{2.0, 40};
    LogHistogram xlateTmplNs{2.0, 40};
    LogHistogram xlateSbtNs{2.0, 40};
    engine::SamplingProfiler prof;
    FlightRecorder flight;
    engine::FlightSink flightFeed;
    /** This context's registration in the crash-hook registry. */
    CrashHookId crashHook = NO_CRASH_HOOK;
    SnapshotSeries snaps;
    /** Retire clock that triggers the next snapshot row. */
    u64 nextSnapshotAt = 0;

    /**
     * The translation we last exited from (chaining source). A
     * generational handle, not a pointer: a code-cache flush makes it
     * resolve to nullptr instead of dangling.
     */
    dbt::TransId lastTrans;
};

} // namespace cdvm::vmm

#endif // CDVM_VMM_VMM_HH
