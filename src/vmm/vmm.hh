/**
 * @file
 * The VMM runtime: the concealed software layer that orchestrates
 * staged emulation (paper Fig. 1).
 *
 * Responsibilities, as in the paper:
 *  - select the cold-code strategy (interpreter, BBT, or direct
 *    x86-mode execution with dual-mode decoders);
 *  - manage the basic-block and superblock code caches, including
 *    flush-on-full eviction and retranslation;
 *  - maintain the translation lookup table and branch chaining;
 *  - profile execution (software counters, or the hardware BBB for
 *    VM.fe) and trigger hotspot optimization at the hot threshold;
 *  - recover precise x86 state on faults in translated code, falling
 *    back to the interpreter ("may use interpreter", Fig. 1).
 *
 * This is the functional VMM: it really translates, really executes
 * micro-ops from a really-allocated code cache, and is differentially
 * tested against pure interpretation. Timing is layered separately in
 * cdvm::timing.
 */

#ifndef CDVM_VMM_VMM_HH
#define CDVM_VMM_VMM_HH

#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/trace.hh"
#include "dbt/bbt.hh"
#include "dbt/codecache.hh"
#include "dbt/costs.hh"
#include "dbt/lookup.hh"
#include "dbt/sbt.hh"
#include "dbt/superblock.hh"
#include "hwassist/bbb.hh"
#include "uops/exec.hh"
#include "x86/interp.hh"
#include "x86/memory.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::vmm
{

/** Initial-emulation strategy for cold code. */
enum class ColdStrategy : u8
{
    Interpret, //!< one-instruction-at-a-time interpretation (Fig. 2)
    Bbt,       //!< simple basic block translation (VM.soft / VM.be)
    X86Mode,   //!< direct execution via dual-mode decoders (VM.fe)
};

/** VMM configuration. */
struct VmmConfig
{
    ColdStrategy cold = ColdStrategy::Bbt;
    /** Hot threshold for BBT- or BBB-profiled code (Eq. 2: 8000). */
    u64 hotThreshold = 8000;
    /** Hot threshold under interpretation (Section 3.1: 25). */
    u64 interpHotThreshold = 25;
    bool enableSbt = true;
    bool enableChaining = true;
    /** Use the hardware branch behavior buffer for hotspot detection. */
    bool useBbb = false;

    Addr bbtCacheBase = 0xe0000000;
    u64 bbtCacheBytes = u64{4} << 20;
    Addr sbtCacheBase = 0xe8000000;
    u64 sbtCacheBytes = u64{4} << 20;

    unsigned maxBlockInsns = 64;
    dbt::SuperblockPolicy sbPolicy{};
    uops::FusionConfig fusion{};
    hwassist::BbbParams bbbParams{};
};

/** Aggregate VMM statistics. */
struct VmmStats
{
    // x86 instructions retired, by emulation mode.
    u64 insnsInterp = 0;
    u64 insnsX86Mode = 0;
    u64 insnsBbtCode = 0;
    u64 insnsSbtCode = 0;
    // Micro-ops retired in translated code.
    u64 uopsBbtCode = 0;
    u64 uopsSbtCode = 0;
    // Translation activity.
    u64 bbtTranslations = 0;
    u64 bbtInsnsTranslated = 0;
    u64 sbtTranslations = 0;
    u64 sbtInsnsTranslated = 0;
    u64 sbtFormationFailures = 0;
    // Dispatch machinery.
    u64 dispatches = 0;
    u64 chainFollows = 0;
    u64 chainsInstalled = 0;
    // Events.
    u64 hotspotDetections = 0;
    u64 preciseStateRecoveries = 0;
    u64 bbtCacheFlushes = 0;
    u64 sbtCacheFlushes = 0;

    u64
    totalRetired() const
    {
        return insnsInterp + insnsX86Mode + insnsBbtCode + insnsSbtCode;
    }
};

/** The virtual machine monitor. */
class Vmm
{
  public:
    Vmm(x86::Memory &memory, const VmmConfig &config = {});

    /**
     * Emulate from the CPU state until program exit, a trap, or at
     * least max_insns retired x86 instructions (translations complete
     * atomically, so the count may overshoot by one region).
     */
    x86::Exit run(x86::CpuState &cpu, InstCount max_insns);

    const VmmStats &stats() const { return st; }
    const VmmConfig &config() const { return cfg; }
    dbt::TranslationMap &translations() { return map; }
    const dbt::CodeCache &bbtCache() const { return bbtCc; }
    const dbt::CodeCache &sbtCache() const { return sbtCc; }
    const hwassist::BranchBehaviorBuffer &bbb() const { return hotBbb; }
    const dbt::SuperblockTranslator &sbt() const { return sbtXlator; }

    /** Observed taken-bias of the branch at branch_pc, if profiled. */
    std::optional<double> branchBias(Addr branch_pc) const;

    /**
     * Publish the full staged-emulation picture into a StatRegistry:
     * vmm.* (this object's counters), dbt.* (translators, code
     * caches, lookup table) and hwassist.* (BBB). Values are copied
     * at call time; call after run().
     */
    void exportStats(StatRegistry &reg) const;

    /**
     * The VMM's virtual trace clock, in work units: retired x86
     * instructions advance it by one each, translation work by the
     * number of instructions translated. Phase spans recorded with
     * the global Tracer use this timebase (track 0).
     */
    u64 traceClock() const { return vclock; }

  private:
    dbt::Translation *translateBlock(Addr pc);
    void registerTranslation(std::unique_ptr<dbt::Translation> t);
    void invokeSbt(Addr seed_pc);
    void recordBranch(Addr branch_pc, bool taken);
    x86::Exit runCold(x86::CpuState &cpu, InstCount budget,
                      InstCount &retired);
    x86::Exit runTranslated(x86::CpuState &cpu, dbt::Translation *t,
                            InstCount &retired);

    x86::Memory &mem;
    VmmConfig cfg;
    VmmStats st;

    dbt::TranslationMap map;
    dbt::CodeCache bbtCc;
    dbt::CodeCache sbtCc;
    dbt::BasicBlockTranslator bbtXlator;
    dbt::SuperblockTranslator sbtXlator;
    hwassist::BranchBehaviorBuffer hotBbb;

    uops::UState ustate;

    /** Per-branch direction profile (branch PC -> taken/not-taken). */
    std::unordered_map<Addr, std::pair<u64, u64>> branchProf;
    /** Per-block execution counters under interpretation. */
    std::unordered_map<Addr, u64> interpBlockCount;
    /** Seeds where superblock formation already failed. */
    std::unordered_set<Addr> sbtFailed;
    /** The translation we last exited from (chaining source). */
    dbt::Translation *lastTrans = nullptr;

    /** Virtual trace timebase (see traceClock()). */
    u64 vclock = 0;
};

} // namespace cdvm::vmm

#endif // CDVM_VMM_VMM_HH
