#include "vmm/vmm.hh"

#include <chrono>
#include <cstdio>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "engine/cold_exec.hh"
#include "engine/hotspot.hh"
#include "engine/warm_start.hh"

namespace cdvm::vmm
{

using dbt::TransKind;
using dbt::Translation;
using engine::StageEvent;

namespace
{

std::unique_ptr<engine::ColdExecutor>
makeColdExecutor(x86::Memory &mem, const VmmConfig &cfg, VmmStats &st,
                 engine::BranchProfile &prof)
{
    // The decode cache is part of the host fast path: the legacy
    // baseline re-decodes every interpreted step.
    const std::size_t dc_lines =
        cfg.fastDispatch ? cfg.decodeCacheEntries : 0;
    switch (cfg.cold) {
      case engine::ColdKind::Interpret:
        return std::make_unique<engine::InterpretColdExecutor>(
            mem, st, prof, dc_lines);
      case engine::ColdKind::HardwareX86Mode:
        return std::make_unique<engine::X86ModeColdExecutor>(
            mem, st, prof, dc_lines);
      case engine::ColdKind::SoftwareBbt:
        return std::make_unique<engine::BbtColdExecutor>(
            std::make_unique<engine::SoftwareBbtBackend>(
                mem, cfg.maxBlockInsns));
      case engine::ColdKind::XltAssistedBbt:
        return std::make_unique<engine::BbtColdExecutor>(
            std::make_unique<engine::XltBbtBackend>(
                mem, cfg.maxBlockInsns, st));
      case engine::ColdKind::TemplateBbt:
        return std::make_unique<engine::BbtColdExecutor>(
            std::make_unique<engine::TemplateBbtBackend>(
                mem, cfg.maxBlockInsns, cfg.tmplCoveragePct));
    }
    cdvm_panic("unknown cold-executor kind");
}

/** Wall nanoseconds elapsed since a steady_clock anchor. */
u64
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

std::unique_ptr<engine::HotspotDetector>
makeDetector(const VmmConfig &cfg)
{
    switch (cfg.detector) {
      case engine::DetectorKind::SoftwareCounters:
        return std::make_unique<engine::SoftwareCounterDetector>(cfg);
      case engine::DetectorKind::Bbb:
        return std::make_unique<engine::BbbDetector>(cfg);
    }
    cdvm_panic("unknown hotspot-detector kind");
}

} // namespace

Vmm::Vmm(x86::Memory &memory, const VmmConfig &config,
         const engine::SharedServices &services)
    : mem(memory),
      cfg(config),
      svc(services),
      traceSink(Tracer::global(), 0),
      branchProf(cfg.branchProfCap, cfg.branchProfReserve),
      sbtFailed(cfg.sbtFailedCap),
      ccm(memory, cfg, st, events),
      cold(makeColdExecutor(memory, cfg, st, branchProf)),
      detector(makeDetector(cfg)),
      sbtBackend(memory, cfg,
                 [this](Addr pc) { return branchProf.bias(pc); }),
      // Async mode is the config's call; the shared pool only decides
      // *whose* workers serve it (fleet-wide versus private).
      asyncSbt(cfg.asyncTranslators > 0
                   ? std::make_unique<engine::AsyncSbtEngine>(
                         cfg, svc.sbtPool)
                   : nullptr),
      translatedExec(memory, st, branchProf),
      prof(cfg.profileSamplePeriod),
      flight(cfg.flightRecorderEvents),
      flightFeed(flight, cfg.flushStormThreshold,
                 cfg.flushStormWindowInsns, cfg.flightDumpPath)
{
    events.attach(&traceSink);
    // Profiling sinks attach before the warm start so the warm fill
    // is recorded and sampled like any other stage work.
    if (prof.enabled())
        events.attach(&prof);
    if (flight.enabled()) {
        events.attach(&flightFeed);
        // Abnormal-exit post-mortem: panics dump the ring before the
        // abort. Registered per-Vmm; any number of live contexts can
        // coexist, and each unregisters exactly its own hook.
        crashHook = addCrashHook([this] {
            if (!cfg.flightDumpPath.empty()) {
                if (flight.writeText(cfg.flightDumpPath)) {
                    std::fprintf(stderr,
                                 "panic: flight recorder dumped to "
                                 "%s\n",
                                 cfg.flightDumpPath.c_str());
                }
                return;
            }
            std::fprintf(stderr, "%s", flight.dumpText().c_str());
        });
    }
    if (cfg.snapshotEveryInsns)
        nextSnapshotAt = cfg.snapshotEveryInsns;

    // Persistent warm start: install a previous run's validated
    // translations and profiles before the first dispatched
    // instruction. Failure of any kind just leaves the engine cold.
    // Precedence: a shared zero-copy image handle (fleet mode, one
    // mapping for every context) beats a shared pre-parsed repository
    // beats the per-context file path; the parse/verify happened once
    // per process, and the install still validates against *this*
    // context's guest memory. A path load keeps the parsed image on
    // the services handle: mapped translations are views into it.
    //
    // An image *endpoint* (in-process store or cross-process daemon
    // client) resolves to a pinned generation handle here, before the
    // precedence check: the handle — and every view installed from it
    // — stays valid even after the endpoint publishes newer
    // generations. A null acquire() (nothing published, daemon gone)
    // simply leaves the lower-precedence sources in play.
    if (!svc.warmImage && svc.imageEndpoint)
        svc.warmImage = svc.imageEndpoint->acquire();
    if (svc.warmImage || svc.warmRepo ||
        !cfg.warmStartLoadPath.empty()) {
        engine::WarmStartReport rep;
        if (svc.warmImage) {
            rep = engine::warmStartInstall(*svc.warmImage, mem, ccm,
                                           branchProf, &events);
        } else if (svc.warmRepo) {
            rep = engine::warmStartInstall(*svc.warmRepo, mem, ccm,
                                           branchProf, &events);
        } else {
            rep = engine::warmStartLoad(cfg.warmStartLoadPath, mem,
                                        ccm, branchProf, &events);
            svc.warmImage = rep.image;
        }
        st.warmLoaded = rep.loaded;
        st.warmInstalled = rep.installed;
        st.warmInsnsInstalled = rep.installedInsns;
        st.warmInvalidated = rep.invalidated;
        st.warmProfileSeeded = rep.profileSeeded;
        st.warmBodyCopies = rep.bodyCopies;
        st.warmRelocations = rep.relocations;
        st.warmMappedBytes = rep.mappedBytes;
    }
}

Vmm::~Vmm()
{
    removeCrashHook(crashHook);
}

dbt::Repository
Vmm::captureWarmStart() const
{
    // Hotness-ordered capture: the profiler's samples rank first (the
    // measured heat of this run), per-translation entry counts break
    // ties and carry the ranking when sampling is off. The repository
    // then installs the most valuable translations first on the next
    // warm start.
    auto hotness = [this](const dbt::Translation &t) {
        const u64 cap = (u64{1} << 20) - 1;
        const u64 execs = t.execCount < cap ? t.execCount : cap;
        return (prof.transSamples(t.id.raw()) << 20) | execs;
    };
    return engine::warmStartCapture(ccm.translations(), mem,
                                    branchProf, hotness);
}

bool
Vmm::saveWarmStart(const std::string &path) const
{
    const std::string &dst =
        path.empty() ? cfg.warmStartSavePath : path;
    if (dst.empty())
        return false;
    // Written as a v2 zero-copy image (the next run maps it and
    // installs views). The budget evicts the cold tail of the hotness
    // ranking at build time.
    dbt::ImageBuilder b(dbt::ImageBuilder::Options{
        cfg.warmImageBudgetBytes, 1});
    b.add(captureWarmStart());
    return dbt::TransImage::save(dst, b.build());
}

const hwassist::BranchBehaviorBuffer &
Vmm::bbb() const
{
    if (const hwassist::BranchBehaviorBuffer *b = detector->bbbUnit())
        return *b;
    static const hwassist::BranchBehaviorBuffer idle{};
    return idle;
}

void
Vmm::installSbt(Addr seed_pc, std::unique_ptr<Translation> t)
{
    ++st.sbtTranslations;
    st.sbtInsnsTranslated += t->numX86Insns;

    // Optimization work advances the trace clock by the instructions
    // translated (a proxy for the Delta_SBT cost in virtual time).
    StageEvent e;
    e.stage = TracePhase::SbtOptimize;
    e.insns = t->numX86Insns;
    e.x86Addr = seed_pc;
    e.x86Bytes = t->x86Bytes;
    e.arg = seed_pc;
    events.emit(e);

    if (ccm.install(std::move(t)).flushed)
        lastTrans = dbt::NO_TRANS;
}

void
Vmm::invokeSbt(Addr seed_pc)
{
    if (!cfg.enableSbt || sbtFailed.contains(seed_pc))
        return;
    if (ccm.lookup(seed_pc, TransKind::Superblock))
        return;
    if (asyncSbt && asyncSbt->pending(seed_pc))
        return;
    ++st.hotspotDetections;

    if (asyncSbt) {
        // Async pipeline: form here (guest memory and the branch
        // profile belong to this thread), optimize on a worker,
        // install at a later dispatch point.
        std::optional<dbt::SuperblockTrace> trace =
            sbtBackend.form(seed_pc);
        if (!trace) {
            sbtFailed.insert(seed_pc);
            ++st.sbtFormationFailures;
            return;
        }
        if (!asyncSbt->request(seed_pc, std::move(*trace))) {
            // Queue full: leave the seed cold; a later detection
            // re-requests it once the workers catch up.
            ++st.asyncSbtQueueRejects;
            return;
        }
        ++st.asyncSbtRequests;
        if (cfg.asyncDeterministic) {
            // Barrier-on-install: retire-for-retire identical to the
            // synchronous pipeline, still crossing worker threads.
            asyncSbt->barrier();
            drainAsyncSbt();
        }
        return;
    }

    const auto xlate_t0 = std::chrono::steady_clock::now();
    std::unique_ptr<Translation> t = sbtBackend.translate(seed_pc);
    xlateSbtNs.add(nsSince(xlate_t0));
    if (!t) {
        sbtFailed.insert(seed_pc);
        ++st.sbtFormationFailures;
        return;
    }
    installSbt(seed_pc, std::move(t));
}

void
Vmm::drainAsyncSbt()
{
    while (std::optional<engine::AsyncSbtResult> r =
               asyncSbt->tryPop()) {
        if (!r->trans) {
            // The optimizer declined the formed trace.
            sbtFailed.insert(r->seed);
            ++st.sbtFormationFailures;
            continue;
        }
        // Stale results: a superblock already covers this seed (the
        // seed was re-requested and installed across an arena flush).
        if (ccm.lookup(r->seed, TransKind::Superblock)) {
            ++st.asyncSbtStaleDropped;
            continue;
        }
        ++st.asyncSbtInstalls;
        installSbt(r->seed, std::move(r->trans));
    }
}

x86::Exit
Vmm::run(x86::CpuState &cpu, InstCount max_insns)
{
    const x86::Exit e = runLoop(cpu, max_insns);
    if (e == x86::Exit::Trap || e == x86::Exit::DecodeFault)
        dumpFlightOnAbnormal(e);
    return e;
}

void
Vmm::dumpFlightOnAbnormal(x86::Exit e) const
{
    if (!flight.enabled() || cfg.flightDumpPath.empty())
        return;
    if (flight.writeText(cfg.flightDumpPath)) {
        cdvm_debug("flight recorder: abnormal exit (%s), dumped %zu "
                   "events to %s",
                   x86::exitName(e), flight.size(),
                   cfg.flightDumpPath.c_str());
    }
}

void
Vmm::snapshotNow()
{
    StatRegistry reg;
    exportCoreStats(reg);
    snaps.take(reg, st.totalRetired());
}

x86::Exit
Vmm::runLoop(x86::CpuState &cpu, InstCount max_insns)
{
    InstCount retired = 0;
    const u64 snap_every = cfg.snapshotEveryInsns;

    while (retired < max_insns) {
        const Addr pc = cpu.eip;

        // Install any optimizations the background contexts finished
        // (one relaxed load when there is nothing to do).
        if (asyncSbt)
            drainAsyncSbt();

        // Interval snapshots on the retired-instruction clock (one
        // predictable branch when disabled).
        if (snap_every && st.totalRetired() >= nextSnapshotAt) {
            snapshotNow();
            do {
                nextSnapshotAt += snap_every;
            } while (nextSnapshotAt <= st.totalRetired());
        }

        // Dispatch: chain from the previous translation, else look up.
        // Both hops are handle resolutions, so a last-executed cursor
        // or chain link that a flush freed simply misses.
        Translation *t = nullptr;
        if (cfg.enableChaining && lastTrans) {
            if (Translation *from = ccm.resolve(lastTrans)) {
                t = ccm.resolve(from->chainedTo(pc));
                if (t)
                    ++st.chainFollows;
            }
        }
        if (!t) {
            ++st.dispatches;
            t = ccm.lookup(pc);
        }

        // Translate-style cold strategies produce a translation on a
        // miss; the core installs it and executes from the cache.
        if (!t && cold->translatesColdCode()) {
            const auto xlate_t0 = std::chrono::steady_clock::now();
            std::unique_ptr<Translation> nt = cold->translate(pc);
            (cfg.cold == engine::ColdKind::TemplateBbt ? xlateTmplNs
                                                       : xlateBbtNs)
                .add(nsSince(xlate_t0));
            if (!nt) {
                // First instruction of the block does not decode.
                return x86::Exit::DecodeFault;
            }
            ++st.bbtTranslations;
            st.bbtInsnsTranslated += nt->numX86Insns;
            StageEvent e;
            e.stage = TracePhase::BbtTranslate;
            e.insns = nt->numX86Insns;
            e.x86Addr = pc;
            e.x86Bytes = nt->x86Bytes;
            e.arg = pc;
            events.emit(e);
            engine::CodeCacheManager::InstallResult ir =
                ccm.install(std::move(nt));
            if (ir.flushed)
                lastTrans = dbt::NO_TRANS;
            t = ir.trans;
        }

        if (!t) {
            // Execute-style cold strategy (interpreter or x86-mode).
            lastTrans = dbt::NO_TRANS;
            if (detector->onColdEntry(pc))
                invokeSbt(pc);
            const InstCount cold_start = retired;
            x86::Exit e = cold->execute(cpu, max_insns - retired,
                                        retired);
            if (const u64 delta = retired - cold_start) {
                StageEvent ev;
                ev.stage = cold->phase();
                ev.insns = delta;
                ev.x86Addr = pc;
                ev.arg = pc;
                events.emit(ev);
            }
            if (e != x86::Exit::None)
                return e;
            continue;
        }

        // Execute in the code cache (translated native mode).
        ++t->execCount;
        Translation *executed = t;
        const bool exec_sbt = t->kind == TransKind::Superblock;
        const InstCount exec_start = retired;
        x86::Exit e = translatedExec.run(cpu, t, retired);
        if (const u64 delta = retired - exec_start) {
            StageEvent ev;
            ev.stage = exec_sbt ? TracePhase::SbtExec
                                : TracePhase::BbtExec;
            ev.insns = delta;
            ev.x86Addr = executed->entryPc;
            ev.x86Bytes = executed->x86Bytes;
            ev.codeAddr = executed->codeAddr;
            ev.codeBytes = executed->codeBytes;
            ev.arg = executed->entryPc;
            ev.transId = executed->id.raw();
            events.emit(ev);
        }
        if (e != x86::Exit::None)
            return e;

        // Chaining: link the executed translation to the successor it
        // actually went to, so the next visit skips the lookup table.
        if (cfg.enableChaining) {
            Translation *succ = ccm.lookup(cpu.eip);
            if (succ && executed->addChain(cpu.eip, succ->id)) {
                ++st.chainsInstalled;
                StageEvent ev;
                ev.stage = TracePhase::Chain;
                ev.instant = true;
                ev.arg = cpu.eip;
                events.emit(ev);
            }
        }
        lastTrans = executed->id;

        // Hotspot detection on the translated-code entry.
        if (detector->onTranslatedEntry(*executed))
            invokeSbt(executed->entryPc);
    }
    return x86::Exit::None;
}

void
Vmm::exportCoreStats(StatRegistry &reg) const
{
    auto set = [&reg](const std::string &name, u64 v,
                      const char *desc) {
        reg.set(name, static_cast<double>(v), desc);
    };

    // vmm.*: retired-instruction mix and runtime machinery.
    set("vmm.insns.interp", st.insnsInterp,
        "x86 instructions retired by the interpreter");
    set("vmm.insns.x86_mode", st.insnsX86Mode,
        "x86 instructions retired in hardware x86-mode");
    set("vmm.insns.bbt_code", st.insnsBbtCode,
        "x86 instructions retired in BBT translations");
    set("vmm.insns.sbt_code", st.insnsSbtCode,
        "x86 instructions retired in SBT superblocks");
    set("vmm.insns.total", st.totalRetired(),
        "x86 instructions retired, all modes");
    set("vmm.uops.bbt_code", st.uopsBbtCode,
        "micro-ops retired in BBT translations");
    set("vmm.uops.sbt_code", st.uopsSbtCode,
        "micro-ops retired in SBT superblocks");
    set("vmm.dispatches", st.dispatches,
        "translation lookup-table dispatches");
    set("vmm.chain.follows", st.chainFollows,
        "dispatches short-circuited by chaining");
    set("vmm.chain.installs", st.chainsInstalled,
        "chain links installed between translations");
    const u64 decisions = st.chainFollows + st.dispatches;
    reg.set("vmm.chain.coverage",
            decisions ? static_cast<double>(st.chainFollows) /
                            static_cast<double>(decisions)
                      : 0.0,
            "fraction of dispatch decisions short-circuited by "
            "chaining (the rest hit the lookup path)");
    set("vmm.hotspot_detections", st.hotspotDetections,
        "hot-threshold crossings that invoked the SBT");
    set("vmm.precise_state_recoveries", st.preciseStateRecoveries,
        "faults recovered by interpreter re-execution");
    set("vmm.bbt.translations", st.bbtTranslations,
        "basic blocks translated by the BBT");
    set("vmm.bbt.insns_translated", st.bbtInsnsTranslated,
        "x86 instructions translated by the BBT");
    set("vmm.sbt.translations", st.sbtTranslations,
        "superblocks built by the SBT");
    set("vmm.sbt.insns_translated", st.sbtInsnsTranslated,
        "x86 instructions translated by the SBT");
    set("vmm.sbt.formation_failures", st.sbtFormationFailures,
        "seeds where superblock formation failed");
    set("vmm.cache_flushes.bbt", st.bbtCacheFlushes,
        "BBT code cache flush-on-full events");
    set("vmm.cache_flushes.sbt", st.sbtCacheFlushes,
        "SBT code cache flush-on-full events");
    if (asyncSbt) {
        set("vmm.async.requests", st.asyncSbtRequests,
            "superblock traces handed to background contexts");
        set("vmm.async.installs", st.asyncSbtInstalls,
            "background optimizations installed");
        set("vmm.async.stale_dropped", st.asyncSbtStaleDropped,
            "background results dropped as stale");
        set("vmm.async.queue_rejects", st.asyncSbtQueueRejects,
            "requests dropped by queue back-pressure");
    }
    if (svc.warmImage || svc.warmRepo ||
        !cfg.warmStartLoadPath.empty()) {
        set("vmm.warm.loaded", st.warmLoaded,
            "repository records read at warm start");
        set("vmm.warm.installed", st.warmInstalled,
            "translations installed before the first dispatch");
        set("vmm.warm.insns_installed", st.warmInsnsInstalled,
            "x86 instructions covered by the warm fill");
        set("vmm.warm.invalidated", st.warmInvalidated,
            "repository records rejected as stale or malformed");
        set("vmm.warm.profile_seeded", st.warmProfileSeeded,
            "branch-profile entries seeded from the repository");
        set("vmm.warm.body_copies", st.warmBodyCopies,
            "per-record decode+copy installs (0 = zero-copy image)");
        set("vmm.warm.relocations", st.warmRelocations,
            "chain links re-bound by the warm relocation pass");
        set("vmm.warm.mapped_bytes", st.warmMappedBytes,
            "shared-image bytes this context installed from");
    }
    if (svc.warmImage) {
        set("vmm.warm.image.generation",
            svc.warmImage->header().generation,
            "builder generation of the shared warm image");
        set("vmm.warm.image.dedupe_hits",
            svc.warmImage->header().dedupeHits,
            "records merged by content when the image was built");
        set("vmm.warm.image.evicted", svc.warmImage->header().evicted,
            "cold-tail records evicted by the image size budget");
        // Backing-store residency: how much of the image is faulted
        // in, and how much of that is physically shared with sibling
        // processes (file/fd mappings) rather than a private copy.
        const dbt::MapResidency res = svc.warmImage->residency();
        set("dbt.image.pages.total", res.pagesTotal,
            "pages spanned by the warm image backing store");
        set("dbt.image.pages.resident", res.pagesResident,
            "image pages resident in physical memory (mincore)");
        set("dbt.image.pages.shared", res.pagesShared,
            "resident pages in a shareable mapping (one copy "
            "across processes)");
    }
    set("vmm.xlt.insns_translated", st.xltInsnsTranslated,
        "x86 instructions translated through the HAloop");
    set("vmm.xlt.complex_fallbacks", st.xltComplexFallbacks,
        "JCPX exits cracked by the software complex handler");
    set("vmm.xlt.cti_fallbacks", st.xltCtiFallbacks,
        "JCTI exits cracked by the software branch handler");
    set("vmm.trace_clock", traceSink.clock(),
        "virtual work-unit clock at export time");

    // engine.xlate.*: per-backend host translation-time histograms.
    if (xlateBbtNs.totalWeight() > 0)
        reg.histogram("engine.xlate.bbt_ns", 2.0, 40,
                      "uop-lowering BBT translate call (wall ns)") =
            xlateBbtNs;
    if (xlateTmplNs.totalWeight() > 0)
        reg.histogram("engine.xlate.tmpl_ns", 2.0, 40,
                      "template BBT translate call (wall ns)") =
            xlateTmplNs;
    if (xlateSbtNs.totalWeight() > 0)
        reg.histogram("engine.xlate.sbt_ns", 2.0, 40,
                      "synchronous SBT translate call (wall ns)") =
            xlateSbtNs;

    // engine.*: bounded profiling containers.
    set("engine.branch_prof.entries", branchProf.size(),
        "branch-direction profile entries resident");
    set("engine.branch_prof.evictions", branchProf.evictions(),
        "branch-profile entries evicted at capacity");
    set("engine.sbt_failed.entries", sbtFailed.size(),
        "failed-seed entries resident");
    set("engine.sbt_failed.evictions", sbtFailed.evictions(),
        "failed-seed entries evicted at capacity");

    // engine.profiler.* / engine.flight.*: continuous profiling.
    if (prof.enabled())
        prof.exportStats(reg);
    if (flight.enabled()) {
        set("engine.flight.capacity", flight.capacity(),
            "flight recorder ring capacity (events)");
        set("engine.flight.recorded", flight.recorded(),
            "stage events recorded by the flight recorder");
        set("engine.flight.dropped", flight.dropped(),
            "flight recorder events lost to ring overwrite");
        set("engine.flight.storms", flightFeed.storms(),
            "cache-flush storm episodes detected");
        set("engine.flight.storm_dumps", flightFeed.stormDumps(),
            "storm episodes that produced a dump file");
    }
    if (cfg.snapshotEveryInsns) {
        set("vmm.snapshots.rows", snaps.rows(),
            "interval snapshot rows taken");
        set("vmm.snapshots.every_insns", cfg.snapshotEveryInsns,
            "snapshot period (retired instructions)");
    }
}

void
Vmm::exportStats(StatRegistry &reg) const
{
    exportCoreStats(reg);

    // dbt.*: translators, code caches, and the lookup table. The BBT
    // backend publishes dbt.bbt.* (and, for the XLTx86-assisted path,
    // hwassist.xlt.* and the HAloop cost cross-check).
    cold->exportStats(reg);
    if (asyncSbt) {
        // The background contexts did the optimizing; publish their
        // aggregated dbt.sbt.* view (they are quiescent after run()).
        asyncSbt->barrier();
        asyncSbt->exportStats(reg, "dbt.sbt");
    } else {
        sbtBackend.exportStats(reg, "dbt.sbt");
    }
    ccm.exportStats(reg);

    // hwassist.*: the branch behavior buffer (idle when unused).
    bbb().exportStats(reg, "hwassist.bbb");
    detector->exportStats(reg);
}

} // namespace cdvm::vmm
