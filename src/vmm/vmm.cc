#include "vmm/vmm.hh"

#include <cassert>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/trace.hh"
#include "uops/encoding.hh"

namespace cdvm::vmm
{

using dbt::TransKind;
using dbt::Translation;

Vmm::Vmm(x86::Memory &memory, const VmmConfig &config)
    : mem(memory),
      cfg(config),
      bbtCc("bbt-cache", cfg.bbtCacheBase, cfg.bbtCacheBytes),
      sbtCc("sbt-cache", cfg.sbtCacheBase, cfg.sbtCacheBytes),
      bbtXlator(memory, cfg.maxBlockInsns),
      sbtXlator(cfg.fusion),
      hotBbb(cfg.bbbParams)
{
}

std::optional<double>
Vmm::branchBias(Addr branch_pc) const
{
    auto it = branchProf.find(branch_pc);
    if (it == branchProf.end())
        return std::nullopt;
    u64 taken = it->second.first;
    u64 total = taken + it->second.second;
    if (total == 0)
        return std::nullopt;
    return static_cast<double>(taken) / static_cast<double>(total);
}

void
Vmm::recordBranch(Addr branch_pc, bool taken)
{
    auto &p = branchProf[branch_pc];
    if (taken)
        ++p.first;
    else
        ++p.second;
}

void
Vmm::registerTranslation(std::unique_ptr<Translation> t)
{
    dbt::CodeCache &cc =
        t->kind == TransKind::BasicBlock ? bbtCc : sbtCc;
    Addr at = cc.allocate(t->codeBytes);
    if (at == 0) {
        // Arena full: flush it and drop the associated translations
        // (chains are conservatively reset); then the allocation must
        // succeed unless the translation is bigger than the arena.
        cc.flush();
        map.eraseKind(t->kind);
        lastTrans = nullptr;
        if (t->kind == TransKind::BasicBlock)
            ++st.bbtCacheFlushes;
        else
            ++st.sbtCacheFlushes;
        CDVM_TRACE_INSTANT(Tracer::global(), TracePhase::CacheFlush,
                           vclock, t->kind == TransKind::BasicBlock);
        at = cc.allocate(t->codeBytes);
        if (at == 0)
            cdvm_fatal("translation (%u bytes) exceeds code cache '%s'",
                       t->codeBytes, cc.name().c_str());
    }
    t->codeAddr = at;
    // The encoded body really lives in concealed guest memory.
    std::vector<u8> bytes = uops::encode(t->uops);
    mem.writeBlock(at, bytes);
    map.insert(std::move(t));
}

Translation *
Vmm::translateBlock(Addr pc)
{
    std::unique_ptr<Translation> t = bbtXlator.translate(pc);
    if (!t)
        return nullptr;
    ++st.bbtTranslations;
    st.bbtInsnsTranslated += t->numX86Insns;
    // Translation work advances the trace clock by the instructions
    // translated (a proxy for the Delta_BBT cost in virtual time).
    const u64 work = t->numX86Insns;
    CDVM_TRACE_SPAN(Tracer::global(), TracePhase::BbtTranslate, vclock,
                    work, pc);
    vclock += work;
    registerTranslation(std::move(t));
    return map.lookup(pc, TransKind::BasicBlock);
}

void
Vmm::invokeSbt(Addr seed_pc)
{
    if (!cfg.enableSbt || sbtFailed.count(seed_pc))
        return;
    if (map.lookup(seed_pc, TransKind::Superblock))
        return;
    ++st.hotspotDetections;

    dbt::SuperblockFormer former(
        mem,
        [this](Addr branch_pc) { return branchBias(branch_pc); },
        cfg.sbPolicy);
    std::optional<dbt::SuperblockTrace> trace = former.form(seed_pc);
    if (!trace || trace->insns.empty()) {
        sbtFailed.insert(seed_pc);
        ++st.sbtFormationFailures;
        return;
    }
    std::unique_ptr<Translation> t = sbtXlator.translate(*trace);
    ++st.sbtTranslations;
    st.sbtInsnsTranslated += t->numX86Insns;
    const u64 work = t->numX86Insns;
    CDVM_TRACE_SPAN(Tracer::global(), TracePhase::SbtOptimize, vclock,
                    work, seed_pc);
    vclock += work;
    registerTranslation(std::move(t));
}

x86::Exit
Vmm::runCold(x86::CpuState &cpu, InstCount budget, InstCount &retired)
{
    // Execute one basic block's worth of instructions by
    // interpretation (strategy Interpret) or in hardware x86-mode
    // (strategy X86Mode) -- functionally identical, profiled
    // differently and accounted differently.
    const bool x86mode = cfg.cold == ColdStrategy::X86Mode;
    const Addr entry = cpu.eip;

    // Entry profiling / hotspot detection. x86-mode has no BBT code to
    // carry software counters, so it always uses the hardware BBB
    // (paper Section 4.1).
    if (x86mode) {
        if (hotBbb.recordBranch(entry))
            invokeSbt(entry);
    } else {
        u64 &cnt = ++interpBlockCount[entry];
        if (cnt >= cfg.interpHotThreshold)
            invokeSbt(entry);
    }

    x86::Interpreter interp(cpu, mem);
    for (InstCount n = 0; n < budget; ++n) {
        x86::StepResult sr = interp.step();
        if (sr.exit != x86::Exit::None)
            return sr.exit;
        ++retired;
        if (x86mode)
            ++st.insnsX86Mode;
        else
            ++st.insnsInterp;
        if (sr.insn.isCondBranch())
            recordBranch(sr.insn.pc, sr.taken);
        if (sr.insn.isCti())
            break; // end of dynamic basic block
    }
    return x86::Exit::None;
}

x86::Exit
Vmm::runTranslated(x86::CpuState &cpu, Translation *t,
                   InstCount &retired)
{
    // Checkpoint for precise-state recovery.
    const x86::CpuState checkpoint = cpu;

    ustate.loadArch(cpu);
    uops::UopExecutor exe(ustate, mem);
    uops::BlockResult br = exe.run(t->uops, t->fallthroughPc);
    ustate.storeArch(cpu);

    const bool is_sbt = t->kind == TransKind::Superblock;

    if (br.exit == uops::BlockExit::Fault) {
        // Precise state mapping -- re-execute with the interpreter
        // from the region entry until the fault re-occurs (Fig. 1).
        ++st.preciseStateRecoveries;
        cpu = checkpoint;
        x86::Interpreter interp(cpu, mem);
        for (unsigned n = 0; n <= t->numX86Insns + 1; ++n) {
            x86::StepResult sr = interp.step();
            if (sr.exit != x86::Exit::None)
                return sr.exit;
            ++retired;
            if (is_sbt)
                ++st.insnsSbtCode;
            else
                ++st.insnsBbtCode;
        }
        cdvm_panic("translated fault at pc 0x%llx did not reproduce "
                   "under interpretation",
                   static_cast<unsigned long long>(br.faultX86Pc));
    }

    // Count retired x86 instructions: position of the last completed
    // instruction within the region.
    u64 insns = t->numX86Insns;
    if (br.exit == uops::BlockExit::Branch && is_sbt) {
        // A side exit may leave the superblock early.
        int last = br.uopsRun > 0
                       ? static_cast<int>(br.uopsRun) - 1
                       : 0;
        Addr last_pc = t->uops[static_cast<std::size_t>(last)].x86pc;
        for (std::size_t i = 0; i < t->x86pcs.size(); ++i) {
            if (t->x86pcs[i] == last_pc) {
                insns = i + 1;
                break;
            }
        }
    }
    retired += insns;
    cpu.icount += insns;
    if (is_sbt) {
        st.insnsSbtCode += insns;
        st.uopsSbtCode += br.uopsRun;
    } else {
        st.insnsBbtCode += insns;
        st.uopsBbtCode += br.uopsRun;
    }

    if (br.exit == uops::BlockExit::VmExit) {
        cpu.eip = static_cast<u32>(br.nextPc);
        return x86::Exit::Halted;
    }

    cpu.eip = static_cast<u32>(br.nextPc);

    // Branch-direction profiling on the region's terminating branch.
    if (t->endsInCondBranch) {
        if (cpu.eip == t->condBranchTarget) {
            ++t->takenCount;
            recordBranch(t->condBranchPc, true);
        } else if (cpu.eip == t->fallthroughPc) {
            ++t->notTakenCount;
            recordBranch(t->condBranchPc, false);
        }
    }
    return x86::Exit::None;
}

x86::Exit
Vmm::run(x86::CpuState &cpu, InstCount max_insns)
{
    InstCount retired = 0;

    while (retired < max_insns) {
        const Addr pc = cpu.eip;

        // Dispatch: chain from the previous translation, else look up.
        Translation *t = nullptr;
        if (cfg.enableChaining && lastTrans) {
            const Translation *c = lastTrans->chainedTo(pc);
            if (c) {
                t = const_cast<Translation *>(c);
                ++st.chainFollows;
            }
        }
        if (!t) {
            ++st.dispatches;
            t = map.lookup(pc);
        }

        if (!t && cfg.cold == ColdStrategy::Bbt) {
            t = translateBlock(pc);
            if (!t) {
                // First instruction of the block does not decode.
                return x86::Exit::DecodeFault;
            }
        }

        if (!t) {
            // Interpreter or x86-mode execution of the cold block.
            lastTrans = nullptr;
            const InstCount cold_start = retired;
            x86::Exit e = runCold(cpu, max_insns - retired, retired);
            if (const u64 delta = retired - cold_start) {
                CDVM_TRACE_SPAN(Tracer::global(),
                                cfg.cold == ColdStrategy::X86Mode
                                    ? TracePhase::X86Mode
                                    : TracePhase::Interp,
                                vclock, delta, pc);
                vclock += delta;
            }
            if (e != x86::Exit::None)
                return e;
            continue;
        }

        // Execute in the code cache (translated native mode).
        ++t->execCount;
        Translation *executed = t;
        const bool exec_sbt = t->kind == TransKind::Superblock;
        const InstCount exec_start = retired;
        x86::Exit e = runTranslated(cpu, t, retired);
        if (const u64 delta = retired - exec_start) {
            CDVM_TRACE_SPAN(Tracer::global(),
                            exec_sbt ? TracePhase::SbtExec
                                     : TracePhase::BbtExec,
                            vclock, delta, executed->entryPc);
            vclock += delta;
        }
        if (e != x86::Exit::None)
            return e;

        // Chaining: link the executed translation to the successor it
        // actually went to, so the next visit skips the lookup table.
        if (cfg.enableChaining) {
            Translation *succ = map.lookup(cpu.eip);
            if (succ && executed->addChain(cpu.eip, succ)) {
                ++st.chainsInstalled;
                CDVM_TRACE_INSTANT(Tracer::global(), TracePhase::Chain,
                                   vclock, cpu.eip);
            }
        }
        lastTrans = executed;

        // Software hotspot detection: BBT block crossed the threshold.
        if (executed->kind == TransKind::BasicBlock &&
            cfg.cold != ColdStrategy::X86Mode &&
            executed->execCount >= cfg.hotThreshold) {
            invokeSbt(executed->entryPc);
        }
    }
    return x86::Exit::None;
}

void
Vmm::exportStats(StatRegistry &reg) const
{
    auto set = [&reg](const std::string &name, u64 v,
                      const char *desc) {
        reg.set(name, static_cast<double>(v), desc);
    };

    // vmm.*: retired-instruction mix and runtime machinery.
    set("vmm.insns.interp", st.insnsInterp,
        "x86 instructions retired by the interpreter");
    set("vmm.insns.x86_mode", st.insnsX86Mode,
        "x86 instructions retired in hardware x86-mode");
    set("vmm.insns.bbt_code", st.insnsBbtCode,
        "x86 instructions retired in BBT translations");
    set("vmm.insns.sbt_code", st.insnsSbtCode,
        "x86 instructions retired in SBT superblocks");
    set("vmm.insns.total", st.totalRetired(),
        "x86 instructions retired, all modes");
    set("vmm.uops.bbt_code", st.uopsBbtCode,
        "micro-ops retired in BBT translations");
    set("vmm.uops.sbt_code", st.uopsSbtCode,
        "micro-ops retired in SBT superblocks");
    set("vmm.dispatches", st.dispatches,
        "translation lookup-table dispatches");
    set("vmm.chain.follows", st.chainFollows,
        "dispatches short-circuited by chaining");
    set("vmm.chain.installs", st.chainsInstalled,
        "chain links installed between translations");
    set("vmm.hotspot_detections", st.hotspotDetections,
        "hot-threshold crossings that invoked the SBT");
    set("vmm.precise_state_recoveries", st.preciseStateRecoveries,
        "faults recovered by interpreter re-execution");
    set("vmm.bbt.translations", st.bbtTranslations,
        "basic blocks translated by the BBT");
    set("vmm.bbt.insns_translated", st.bbtInsnsTranslated,
        "x86 instructions translated by the BBT");
    set("vmm.sbt.translations", st.sbtTranslations,
        "superblocks built by the SBT");
    set("vmm.sbt.insns_translated", st.sbtInsnsTranslated,
        "x86 instructions translated by the SBT");
    set("vmm.sbt.formation_failures", st.sbtFormationFailures,
        "seeds where superblock formation failed");
    set("vmm.cache_flushes.bbt", st.bbtCacheFlushes,
        "BBT code cache flush-on-full events");
    set("vmm.cache_flushes.sbt", st.sbtCacheFlushes,
        "SBT code cache flush-on-full events");
    set("vmm.trace_clock", vclock,
        "virtual work-unit clock at export time");

    // dbt.*: translators, code caches, and the lookup table.
    bbtXlator.exportStats(reg, "dbt.bbt");
    sbtXlator.exportStats(reg, "dbt.sbt");
    bbtCc.exportStats(reg, "dbt.codecache.bbt");
    sbtCc.exportStats(reg, "dbt.codecache.sbt");
    map.exportStats(reg, "dbt.lookup");

    // hwassist.*: the branch behavior buffer.
    hotBbb.exportStats(reg, "hwassist.bbb");
}

} // namespace cdvm::vmm
