#include "timing/startup_sim.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/trace.hh"

namespace cdvm::timing
{

using workload::BlockInfo;
using workload::BlockTrace;

namespace
{

/** Cycle category -> trace phase, for the timing track (track 1). */
TracePhase
phaseOf(CycleCat c)
{
    switch (c) {
      case CycleCat::ColdExec:
        return TracePhase::ColdExec;
      case CycleCat::BbtExec:
        return TracePhase::BbtExec;
      case CycleCat::SbtExec:
        return TracePhase::SbtExec;
      case CycleCat::BbtXlate:
        return TracePhase::BbtTranslate;
      case CycleCat::SbtXlate:
        return TracePhase::SbtOptimize;
      case CycleCat::Dispatch:
      default:
        return TracePhase::Dispatch;
    }
}

constexpr Addr BBT_CC_BASE = 0xe0000000;
constexpr Addr SBT_CC_BASE = 0xe8000000;

/** Per-block dynamic translation state. */
struct BlockState
{
    u8 mode = 0; //!< 0 cold, 1 BBT-translated, 2 hotspot (SBT)
    u32 exec = 0;
    Addr bbtAddr = 0; //!< BBT code-cache address
};

/** Per-region hotspot state. */
struct RegionState
{
    bool hot = false;
    Addr sbtAddr = 0;
    u32 sbtBytes = 0;
};

} // namespace

StartupSim::StartupSim(const MachineConfig &machine,
                       const workload::AppProfile &app_profile)
    : m(machine), app(app_profile)
{
}

StartupResult
StartupSim::run()
{
    BlockTrace trace(app.trace);
    const std::vector<BlockInfo> &blocks = trace.blocks();

    memsys::Hierarchy hier(m.memory); // empty caches: scenario 2
    const Cycles l1i_lat = m.memory.l1i.latency;
    const Cycles l1d_lat = m.memory.l1d.latency;
    const Cycles line = m.memory.l1i.lineBytes;

    StartupResult res;
    res.machine = m.name;
    res.app = app.name;
    res.cpiRef = app.cpiRef;
    res.steadyGain = app.steadyGain;
    res.steadyIpc = (m.hasSbt ? 1.0 + app.steadyGain : 1.0) /
                    app.cpiRef;

    // CPIs per emulation mode (see MachineConfig docs). The quoted
    // steady-state gain is an aggregate at ~85% hotspot coverage, so
    // optimized code itself runs proportionally faster.
    const double cpi_sbt =
        app.cpiRef / (1.0 + app.steadyGain / m.steadyCoverage);
    const double cpi_bbt = cpi_sbt * m.coldCpiFactor;
    double cpi_cold = app.cpiRef;
    switch (m.cold) {
      case ColdMode::Native:
      case ColdMode::X86Direct:
        cpi_cold = app.cpiRef;
        break;
      case ColdMode::Interpret:
        cpi_cold = app.cpiRef * m.coldCpiFactor;
        break;
      case ColdMode::BbtCode:
        cpi_cold = cpi_bbt; // cold code runs as BBT translations
        break;
    }

    // XLTx86 busy fraction of BBT translation time (VM.be): 4 of the
    // ~20 cycles per instruction keep the decode logic on.
    const double xlt_busy_frac =
        m.kind == MachineKind::VmBe && m.costs.bbtCyclesPerInsn > 0
            ? 4.0 / m.costs.bbtCyclesPerInsn
            : 0.0;

    std::vector<BlockState> st(blocks.size());
    const u32 num_regions =
        blocks.empty() ? 0 : blocks.back().region + 1;
    std::vector<RegionState> regions(num_regions);
    // Region membership lists (contiguous ids).
    std::vector<u32> region_first(num_regions, ~0u);
    std::vector<u32> region_last(num_regions, 0);
    for (u32 i = 0; i < blocks.size(); ++i) {
        u32 r = blocks[i].region;
        region_first[r] = std::min(region_first[r], i);
        region_last[r] = std::max(region_last[r], i);
    }

    // Bump allocators for the two code-cache arenas.
    Addr bbt_next = BBT_CC_BASE;
    Addr sbt_next = SBT_CC_BASE;

    double cycles = 0.0;
    u64 insns = 0;
    std::array<double, static_cast<size_t>(CycleCat::NUM_CATS)> cat{};
    double decode_active = 0.0;

    double next_sample = 1000.0;

    const Cycles mem_lat = m.memory.memLatency;
    auto fetch_penalty = [&](Addr addr, u32 bytes) -> double {
        double pen = 0.0;
        Addr first = addr & ~(line - 1);
        Addr last = (addr + (bytes ? bytes - 1 : 0)) & ~(line - 1);
        for (Addr a = first; a <= last; a += line) {
            Cycles lat = hier.access(a, memsys::Side::Fetch);
            if (lat >= mem_lat) {
                pen += static_cast<double>(lat - l1i_lat);
            } else if (lat > l1i_lat) {
                // L2 hits are mostly covered by fetch-ahead.
                pen += static_cast<double>(lat - l1i_lat) *
                       (1.0 - m.l2FetchOverlap);
            }
        }
        return pen;
    };
    auto data_penalty = [&](Addr addr, u32 bytes,
                            bool is_store) -> double {
        double pen = 0.0;
        Addr first = addr & ~(line - 1);
        Addr last = (addr + (bytes ? bytes - 1 : 0)) & ~(line - 1);
        for (Addr a = first; a <= last; a += line) {
            Cycles lat = hier.access(a, memsys::Side::Data);
            if (lat > l1d_lat) {
                double miss = static_cast<double>(lat - l1d_lat);
                pen += is_store ? miss * m.storeStallFraction : miss;
            }
        }
        return pen;
    };
    // Phase tracing (track 1, cycle timebase). The coalescer merges
    // back-to-back same-phase blocks so the event count scales with
    // phase changes, not with dynamic blocks.
    Tracer &tracer = Tracer::global();
    const bool tracing = tracer.enabled();
    SpanCoalescer spans(tracer, 1);
    auto add = [&](CycleCat c, double cyc, bool decode_on) {
        if (tracing) {
            const u64 ts = static_cast<u64>(cycles);
            const u64 end = static_cast<u64>(cycles + cyc);
            spans.add(phaseOf(c), ts, end - ts, insns);
        }
        cycles += cyc;
        cat[static_cast<size_t>(c)] += cyc;
        if (decode_on)
            decode_active += cyc;
    };
    auto sample = [&]() {
        CurveSample s;
        s.cycles = static_cast<Cycles>(cycles);
        s.insns = insns;
        for (size_t i = 0; i < cat.size(); ++i)
            s.catCycles[i] = cat[i];
        s.decodeActive = decode_active;
        res.samples.push_back(s);
    };

    const bool vm_bbt = m.cold == ColdMode::BbtCode;
    const u64 total = trace.totalInsns();

    while (insns < total) {
        const u32 id = trace.next();
        const BlockInfo &b = blocks[id];
        BlockState &bs = st[id];
        RegionState &rs = regions[b.region];

        // Region went hot earlier via a sibling block.
        if (rs.hot && bs.mode != 2)
            bs.mode = 2;

        // --- BBT translation on first touch --------------------------
        if (vm_bbt && bs.mode == 0) {
            double tcyc = m.costs.bbtCyclesPerInsn * b.insns;
            // Translator reads the x86 image and writes the code
            // cache through the data side.
            u32 cc_bytes = static_cast<u32>(
                std::lround(b.bytes * m.codeExpansion));
            bs.bbtAddr = bbt_next;
            bbt_next += (cc_bytes + 3u) & ~3u;
            tcyc += data_penalty(b.x86Addr, b.bytes, false);
            tcyc += data_penalty(bs.bbtAddr, cc_bytes, true);
            add(CycleCat::BbtXlate, tcyc, false);
            decode_active += tcyc * xlt_busy_frac;
            add(CycleCat::Dispatch, m.dispatchCycles, false);
            bs.mode = 1;
            res.staticInsnsBbt += b.insns;
            ++res.bbtTranslations;
        }

        // --- hotspot detection & SBT --------------------------------
        ++bs.exec;
        if (m.hasSbt && !rs.hot && bs.exec == m.hotThreshold) {
            // The region (superblock scope) becomes hot as one unit.
            rs.hot = true;
            u32 region_insns = 0;
            u32 region_bytes = 0;
            for (u32 i = region_first[b.region];
                 i <= region_last[b.region]; ++i) {
                region_insns += blocks[i].insns;
                region_bytes += blocks[i].bytes;
                st[i].mode = 2;
            }
            double tcyc = m.costs.sbtCyclesPerInsn * region_insns;
            rs.sbtBytes = static_cast<u32>(
                std::lround(region_bytes * m.codeExpansion));
            rs.sbtAddr = sbt_next;
            sbt_next += (rs.sbtBytes + 3u) & ~3u;
            tcyc += data_penalty(blocks[region_first[b.region]].x86Addr,
                                 region_bytes, false);
            tcyc += data_penalty(rs.sbtAddr, rs.sbtBytes, true);
            add(CycleCat::SbtXlate, tcyc, false);
            res.staticInsnsSbt += region_insns;
            ++res.sbtRegionTranslations;
        }

        // --- execution ------------------------------------------------
        double exec_cyc;
        CycleCat cat_of;
        Addr fetch_addr;
        u32 fetch_bytes;
        bool decode_on = false;
        if (bs.mode == 2) {
            exec_cyc = cpi_sbt * b.insns;
            cat_of = CycleCat::SbtExec;
            // Fetch from the superblock's code-cache image; use the
            // block's proportional offset within the region.
            fetch_addr =
                rs.sbtAddr +
                static_cast<Addr>(
                    (b.x86Addr -
                     blocks[region_first[b.region]].x86Addr) *
                    m.codeExpansion);
            fetch_bytes = static_cast<u32>(
                std::lround(b.bytes * m.codeExpansion));
        } else if (bs.mode == 1) {
            exec_cyc = cpi_bbt * b.insns;
            cat_of = CycleCat::BbtExec;
            fetch_addr = bs.bbtAddr;
            fetch_bytes = static_cast<u32>(
                std::lround(b.bytes * m.codeExpansion));
        } else {
            exec_cyc = cpi_cold * b.insns;
            cat_of = CycleCat::ColdExec;
            fetch_addr = b.x86Addr;
            fetch_bytes = b.bytes;
            // Ref and VM.fe decode x86 in the frontend for cold code.
            decode_on = m.frontendX86Decoders;
        }
        // The reference superscalar's decoders are always on, even in
        // hot code (it has no other mode).
        if (m.kind == MachineKind::RefSuperscalar)
            decode_on = true;

        double fpen = fetch_penalty(fetch_addr, fetch_bytes);
        if (bs.mode != 0)
            fpen *= m.vmFetchLocality; // translated-code layout wins
        exec_cyc += fpen;
        add(cat_of, exec_cyc, decode_on);

        insns += b.insns;
        if (bs.mode == 2)
            res.insnsSbt += b.insns;
        else if (bs.mode == 1)
            res.insnsBbt += b.insns;
        else
            res.insnsCold += b.insns;

        if (cycles >= next_sample) {
            sample();
            next_sample = std::max(next_sample * 1.14,
                                   next_sample + 500.0);
        }
    }

    sample();
    res.totalCycles = static_cast<Cycles>(cycles);
    res.totalInsns = insns;
    res.catCycles = cat;
    res.decodeActiveCycles = decode_active;
    return res;
}

void
StartupResult::exportStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.set(prefix + ".total_cycles", static_cast<double>(totalCycles),
            "simulated cycles");
    reg.set(prefix + ".total_insns", static_cast<double>(totalInsns),
            "x86 instructions emulated");
    reg.set(prefix + ".steady_ipc", steadyIpc,
            "asymptotic IPC of this machine on this app");
    reg.set(prefix + ".hotspot_coverage", hotspotCoverage(),
            "dynamic-instruction fraction from optimized code");
    reg.set(prefix + ".insns.cold", static_cast<double>(insnsCold),
            "instructions emulated cold");
    reg.set(prefix + ".insns.bbt", static_cast<double>(insnsBbt),
            "instructions from BBT translations");
    reg.set(prefix + ".insns.sbt", static_cast<double>(insnsSbt),
            "instructions from optimized hotspot code");
    reg.set(prefix + ".static_insns.bbt",
            static_cast<double>(staticInsnsBbt),
            "static instructions translated by the BBT (M_BBT)");
    reg.set(prefix + ".static_insns.sbt",
            static_cast<double>(staticInsnsSbt),
            "static instructions optimized by the SBT (M_SBT)");
    reg.set(prefix + ".bbt_translations",
            static_cast<double>(bbtTranslations),
            "basic blocks translated");
    reg.set(prefix + ".sbt_region_translations",
            static_cast<double>(sbtRegionTranslations),
            "hotspot regions optimized");
    reg.set(prefix + ".decode_active_cycles", decodeActiveCycles,
            "cycles with the x86 decode logic powered on");

    static const char *const CAT_NAMES[] = {
        "cold_exec", "bbt_exec", "sbt_exec",
        "bbt_xlate", "sbt_xlate", "dispatch",
    };
    static_assert(sizeof(CAT_NAMES) / sizeof(CAT_NAMES[0]) ==
                      static_cast<size_t>(CycleCat::NUM_CATS),
                  "CAT_NAMES out of sync with CycleCat");
    for (size_t i = 0; i < static_cast<size_t>(CycleCat::NUM_CATS);
         ++i) {
        reg.set(prefix + ".cycles." + CAT_NAMES[i], catCycles[i],
                "cycles spent in this emulation stage");
    }
}

} // namespace cdvm::timing
