#include "timing/startup_sim.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/statreg.hh"
#include "common/trace.hh"
#include "engine/events.hh"
#include "engine/staged_pipeline.hh"

namespace cdvm::timing
{

using workload::BlockInfo;
using workload::BlockTrace;

namespace
{

/** Cycle category -> trace phase, for the timing track (track 1). */
TracePhase
phaseOf(CycleCat c)
{
    switch (c) {
      case CycleCat::ColdExec:
        return TracePhase::ColdExec;
      case CycleCat::BbtExec:
        return TracePhase::BbtExec;
      case CycleCat::SbtExec:
        return TracePhase::SbtExec;
      case CycleCat::BbtXlate:
        return TracePhase::BbtTranslate;
      case CycleCat::SbtXlate:
        return TracePhase::SbtOptimize;
      case CycleCat::WarmLoad:
        return TracePhase::WarmInstall;
      case CycleCat::Dispatch:
      default:
        return TracePhase::Dispatch;
    }
}

/**
 * The cycle-pricing consumer of the staging event stream: converts
 * each stage event into cycles against the machine config and the
 * (stateful, cold-started) cache hierarchy, maintains the Fig. 10
 * category breakdown and the startup-curve samples.
 */
class CycleModelSink : public engine::StageSink
{
  public:
    CycleModelSink(const MachineConfig &machine, StartupResult &result,
                   double cpi_cold, double cpi_bbt, double cpi_sbt,
                   double xlt_busy)
        : m(machine), res(result), hier(m.memory),
          l1iLat(m.memory.l1i.latency), l1dLat(m.memory.l1d.latency),
          line(m.memory.l1i.lineBytes), memLat(m.memory.memLatency),
          cpiCold(cpi_cold), cpiBbt(cpi_bbt), cpiSbt(cpi_sbt),
          xltBusyFrac(xlt_busy), tracing(Tracer::global().enabled()),
          spans(Tracer::global(), 1)
    {
    }

    void
    onEvent(const engine::StageEvent &e) override
    {
        switch (e.stage) {
          case TracePhase::BbtTranslate: {
            // Translator reads the x86 image and writes the code
            // cache through the data side.
            double tcyc = m.costs.bbtCyclesPerInsn *
                          static_cast<double>(e.insns);
            tcyc += dataPenalty(e.x86Addr, e.x86Bytes, false);
            tcyc += dataPenalty(e.codeAddr, e.codeBytes, true);
            add(CycleCat::BbtXlate, tcyc, false);
            // The XLTx86 unit keeps decode logic on for part of the
            // (much shorter) assisted translation time.
            decodeActive += tcyc * xltBusyFrac;
            break;
          }
          case TracePhase::Dispatch:
            add(CycleCat::Dispatch, m.dispatchCycles, false);
            break;
          case TracePhase::WarmInstall: {
            // The warm loader validates the saved page hashes against
            // the x86 image (data-side reads) and copies the finished
            // translation body into the code cache (data-side stores);
            // no decode or cracking happens, so the per-instruction
            // cost is far below Delta_BBT.
            double tcyc = m.warmLoadCyclesPerInsn *
                          static_cast<double>(e.insns);
            // The loader streams both images sequentially; prefetch
            // and write buffering hide most of the miss latency the
            // lazy (demand-miss) translator would stall on.
            tcyc += (dataPenalty(e.x86Addr, e.x86Bytes, false) +
                     dataPenalty(e.codeAddr, e.codeBytes, true)) *
                    (1.0 - m.warmStreamOverlap);
            add(CycleCat::WarmLoad, tcyc, false);
            break;
          }
          case TracePhase::SbtOptimize: {
            double tcyc = m.costs.sbtCyclesPerInsn *
                          static_cast<double>(e.insns);
            if (e.background) {
                // Async pipeline: Delta_SBT is occupancy of a private
                // background context. It neither advances the
                // emulation thread's clock nor disturbs its cache
                // hierarchy (the contexts have their own ports).
                bgSbt += tcyc;
                break;
            }
            tcyc += dataPenalty(e.x86Addr, e.x86Bytes, false);
            tcyc += dataPenalty(e.codeAddr, e.codeBytes, true);
            add(CycleCat::SbtXlate, tcyc, false);
            break;
          }
          case TracePhase::SbtExec:
            exec(e, cpiSbt, CycleCat::SbtExec, e.codeAddr, e.codeBytes,
                 true, false);
            break;
          case TracePhase::BbtExec:
            exec(e, cpiBbt, CycleCat::BbtExec, e.codeAddr, e.codeBytes,
                 true, false);
            break;
          case TracePhase::ColdExec:
            // Ref and VM.fe decode x86 in the frontend for cold code.
            exec(e, cpiCold, CycleCat::ColdExec, e.x86Addr, e.x86Bytes,
                 false, m.frontendX86Decoders);
            break;
          default:
            break;
        }
    }

    /** Push one point on the startup curve. */
    void
    sample()
    {
        CurveSample s;
        s.cycles = static_cast<Cycles>(cycles);
        s.insns = insns;
        for (size_t i = 0; i < cat.size(); ++i)
            s.catCycles[i] = cat[i];
        s.decodeActive = decodeActive;
        res.samples.push_back(s);
    }

    double totalCycles() const { return cycles; }
    u64 totalInsns() const { return insns; }
    double decodeActiveCycles() const { return decodeActive; }
    double bgSbtCycles() const { return bgSbt; }
    const std::array<double, static_cast<size_t>(CycleCat::NUM_CATS)> &
    catCycles() const
    {
        return cat;
    }

  private:
    void
    add(CycleCat c, double cyc, bool decode_on)
    {
        if (tracing) {
            const u64 ts = static_cast<u64>(cycles);
            const u64 end = static_cast<u64>(cycles + cyc);
            spans.add(phaseOf(c), ts, end - ts, insns);
        }
        cycles += cyc;
        cat[static_cast<size_t>(c)] += cyc;
        if (decode_on)
            decodeActive += cyc;
    }

    void
    exec(const engine::StageEvent &e, double cpi, CycleCat c,
         Addr fetch_addr, u32 fetch_bytes, bool translated,
         bool decode_on)
    {
        double exec_cyc = cpi * static_cast<double>(e.insns);
        // The reference superscalar's decoders are always on, even in
        // hot code (it has no other mode).
        if (m.kind == MachineKind::RefSuperscalar)
            decode_on = true;
        double fpen = fetchPenalty(fetch_addr, fetch_bytes);
        if (translated)
            fpen *= m.vmFetchLocality; // translated-code layout wins
        exec_cyc += fpen;
        add(c, exec_cyc, decode_on);

        insns += e.insns;
        if (cycles >= nextSample) {
            sample();
            nextSample =
                std::max(nextSample * 1.14, nextSample + 500.0);
        }
    }

    double
    fetchPenalty(Addr addr, u32 bytes)
    {
        double pen = 0.0;
        Addr first = addr & ~(line - 1);
        Addr last = (addr + (bytes ? bytes - 1 : 0)) & ~(line - 1);
        for (Addr a = first; a <= last; a += line) {
            Cycles lat = hier.access(a, memsys::Side::Fetch);
            if (lat >= memLat) {
                pen += static_cast<double>(lat - l1iLat);
            } else if (lat > l1iLat) {
                // L2 hits are mostly covered by fetch-ahead.
                pen += static_cast<double>(lat - l1iLat) *
                       (1.0 - m.l2FetchOverlap);
            }
        }
        return pen;
    }

    double
    dataPenalty(Addr addr, u32 bytes, bool is_store)
    {
        double pen = 0.0;
        Addr first = addr & ~(line - 1);
        Addr last = (addr + (bytes ? bytes - 1 : 0)) & ~(line - 1);
        for (Addr a = first; a <= last; a += line) {
            Cycles lat = hier.access(a, memsys::Side::Data);
            if (lat > l1dLat) {
                double miss = static_cast<double>(lat - l1dLat);
                pen += is_store ? miss * m.storeStallFraction : miss;
            }
        }
        return pen;
    }

    const MachineConfig &m;
    StartupResult &res;
    memsys::Hierarchy hier; // empty caches: scenario 2
    const Cycles l1iLat;
    const Cycles l1dLat;
    const Cycles line;
    const Cycles memLat;
    const double cpiCold;
    const double cpiBbt;
    const double cpiSbt;
    const double xltBusyFrac;

    double cycles = 0.0;
    u64 insns = 0;
    std::array<double, static_cast<size_t>(CycleCat::NUM_CATS)> cat{};
    double decodeActive = 0.0;
    double bgSbt = 0.0;
    double nextSample = 1000.0;

    // Phase tracing (track 1, cycle timebase). The coalescer merges
    // back-to-back same-phase blocks so the event count scales with
    // phase changes, not with dynamic blocks.
    const bool tracing;
    SpanCoalescer spans;
};

} // namespace

StartupSim::StartupSim(const MachineConfig &machine,
                       const workload::AppProfile &app_profile)
    : m(machine), app(app_profile)
{
}

StartupResult
StartupSim::run()
{
    BlockTrace trace(app.trace);
    const std::vector<BlockInfo> &blocks = trace.blocks();

    StartupResult res;
    res.machine = m.name;
    res.app = app.name;
    res.cpiRef = app.cpiRef;
    res.steadyGain = app.steadyGain;
    res.steadyIpc = (m.hasSbt ? 1.0 + app.steadyGain : 1.0) /
                    app.cpiRef;

    // CPIs per emulation mode (see MachineConfig docs). The quoted
    // steady-state gain is an aggregate at ~85% hotspot coverage, so
    // optimized code itself runs proportionally faster.
    const double cpi_sbt =
        app.cpiRef / (1.0 + app.steadyGain / m.steadyCoverage);
    const double cpi_bbt = cpi_sbt * m.coldCpiFactor;
    double cpi_cold = app.cpiRef;
    switch (m.cold) {
      case ColdMode::Native:
      case ColdMode::X86Direct:
        cpi_cold = app.cpiRef;
        break;
      case ColdMode::Interpret:
        cpi_cold = app.cpiRef * m.coldCpiFactor;
        break;
      case ColdMode::BbtCode:
        cpi_cold = cpi_bbt; // cold code runs as BBT translations
        break;
    }

    // XLTx86 busy fraction of BBT translation time (VM.be): 4 of the
    // ~20 cycles per instruction keep the decode logic on.
    const double xlt_busy_frac =
        m.kind == MachineKind::VmBe && m.costs.bbtCyclesPerInsn > 0
            ? 4.0 / m.costs.bbtCyclesPerInsn
            : 0.0;

    // One staging state machine (the engine's), two consumers: the
    // StageCounter tallies the functional instruction mix, the cycle
    // model prices every event against this machine.
    engine::EventStream events;
    engine::StageCounter counts;
    CycleModelSink cyc(m, res, cpi_cold, cpi_bbt, cpi_sbt,
                       xlt_busy_frac);
    events.attach(&counts);
    events.attach(&cyc);
    for (engine::StageSink *s : extraSinks)
        events.attach(s);

    engine::StagedParams sp;
    sp.translateCold = m.cold == ColdMode::BbtCode;
    sp.hasSbt = m.hasSbt;
    sp.hotThreshold = m.hotThreshold;
    sp.codeExpansion = m.codeExpansion;
    sp.warmStart = m.warmStart;
    sp.asyncTranslators = m.asyncTranslators;
    if (m.asyncTranslators > 0) {
        // The pipeline's clock is executed instructions; one
        // instruction's worth of background optimization (Delta_SBT
        // cycles) spans Delta_SBT / CPI_pre-hot retired instructions.
        const double cpi_prehot = sp.translateCold ? cpi_bbt : cpi_cold;
        sp.asyncLatencyPerInsn =
            cpi_prehot > 0.0 ? m.costs.sbtCyclesPerInsn / cpi_prehot
                             : 0.0;
    }
    engine::StagedPipeline pipeline(blocks, sp, events);

    const u64 total = trace.totalInsns();
    while (cyc.totalInsns() < total)
        pipeline.touch(trace.next());

    cyc.sample();
    res.totalCycles = static_cast<Cycles>(cyc.totalCycles());
    res.totalInsns = cyc.totalInsns();
    res.catCycles = cyc.catCycles();
    res.decodeActiveCycles = cyc.decodeActiveCycles();
    res.bgSbtXlateCycles = cyc.bgSbtCycles();
    res.insnsCold = counts.insnsCold;
    res.insnsBbt = counts.insnsBbt;
    res.insnsSbt = counts.insnsSbt;
    res.staticInsnsBbt = counts.staticInsnsBbt;
    res.staticInsnsSbt = counts.staticInsnsSbt;
    res.bbtTranslations = counts.bbtTranslations;
    res.sbtRegionTranslations = counts.sbtTranslations;
    res.warmInstalls = counts.warmInstalls;
    res.staticInsnsWarm = counts.staticInsnsWarm;

    return res;
}

void
StartupResult::exportStats(StatRegistry &reg,
                           const std::string &prefix) const
{
    reg.set(prefix + ".total_cycles", static_cast<double>(totalCycles),
            "simulated cycles");
    reg.set(prefix + ".total_insns", static_cast<double>(totalInsns),
            "x86 instructions emulated");
    reg.set(prefix + ".steady_ipc", steadyIpc,
            "asymptotic IPC of this machine on this app");
    reg.set(prefix + ".hotspot_coverage", hotspotCoverage(),
            "dynamic-instruction fraction from optimized code");
    reg.set(prefix + ".insns.cold", static_cast<double>(insnsCold),
            "instructions emulated cold");
    reg.set(prefix + ".insns.bbt", static_cast<double>(insnsBbt),
            "instructions from BBT translations");
    reg.set(prefix + ".insns.sbt", static_cast<double>(insnsSbt),
            "instructions from optimized hotspot code");
    reg.set(prefix + ".static_insns.bbt",
            static_cast<double>(staticInsnsBbt),
            "static instructions translated by the BBT (M_BBT)");
    reg.set(prefix + ".static_insns.sbt",
            static_cast<double>(staticInsnsSbt),
            "static instructions optimized by the SBT (M_SBT)");
    reg.set(prefix + ".bbt_translations",
            static_cast<double>(bbtTranslations),
            "basic blocks translated");
    reg.set(prefix + ".sbt_region_translations",
            static_cast<double>(sbtRegionTranslations),
            "hotspot regions optimized");
    reg.set(prefix + ".warm_installs",
            static_cast<double>(warmInstalls),
            "repository entries installed at warm start");
    reg.set(prefix + ".static_insns.warm",
            static_cast<double>(staticInsnsWarm),
            "static instructions installed from the repository");
    reg.set(prefix + ".decode_active_cycles", decodeActiveCycles,
            "cycles with the x86 decode logic powered on");
    reg.set(prefix + ".cycles.sbt_xlate_bg", bgSbtXlateCycles,
            "SBT translation cycles on background contexts "
            "(occupancy, off the critical path)");

    static const char *const CAT_NAMES[] = {
        "cold_exec", "bbt_exec", "sbt_exec",
        "bbt_xlate", "sbt_xlate", "dispatch", "warm_load",
    };
    static_assert(sizeof(CAT_NAMES) / sizeof(CAT_NAMES[0]) ==
                      static_cast<size_t>(CycleCat::NUM_CATS),
                  "CAT_NAMES out of sync with CycleCat");
    for (size_t i = 0; i < static_cast<size_t>(CycleCat::NUM_CATS);
         ++i) {
        reg.set(prefix + ".cycles." + CAT_NAMES[i], catCycles[i],
                "cycles spent in this emulation stage");
    }
}

} // namespace cdvm::timing
