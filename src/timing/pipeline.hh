/**
 * @file
 * A superscalar out-of-order pipeline timing model (Table 2).
 *
 * The model executes a dynamic micro-op stream through a 3-wide
 * rename/dispatch/retire machine with a 36-entry issue window, 128 ROB
 * entries, load/store queues and typed functional units, and models
 * macro-op execution: a fused dependent pair occupies a single slot in
 * every pipeline structure and executes on a collapsed ALU in one
 * cycle -- exactly the mechanism that gives the co-designed VM its
 * steady-state IPC advantage (Section 2 / HPCA'06 [16]).
 *
 * The model is an analytic scheduler: per micro-op dispatch, ready,
 * issue, and completion cycles are computed under width, window,
 * ROB/LDQ/STQ occupancy, and functional-unit constraints. It is fast
 * enough to run millions of micro-ops, and detailed enough that
 * removing the fused bits from a stream reproduces the conventional
 * superscalar baseline.
 */

#ifndef CDVM_TIMING_PIPELINE_HH
#define CDVM_TIMING_PIPELINE_HH

#include <string>
#include <vector>

#include "timing/machine_config.hh"
#include "uops/uop.hh"

namespace cdvm
{
class StatRegistry;
}

namespace cdvm::timing
{

/** Per-run knobs beyond the structural PipelineParams. */
struct PipelineKnobs
{
    unsigned aluUnits = 3;
    unsigned memPorts = 2;
    unsigned mulLatency = 4;
    unsigned divLatency = 20;
    unsigned loadLatency = 3;   //!< L1D hit
    /** Probability-free model: every branch predicted correctly except
     *  a fixed per-branch misprediction rate. */
    double branchMissRate = 0.03;
};

/** Outcome of a pipeline simulation. */
struct PipelineResult
{
    Cycles cycles = 0;
    u64 uops = 0;        //!< micro-ops executed
    u64 slots = 0;       //!< pipeline entries (fused pair = 1)
    u64 fusedPairs = 0;
    u64 x86Insns = 0;    //!< distinct x86 instructions covered

    double
    uopIpc() const
    {
        return cycles ? static_cast<double>(uops) / cycles : 0.0;
    }
    double
    x86Ipc() const
    {
        return cycles ? static_cast<double>(x86Insns) / cycles : 0.0;
    }
    double
    fusedFraction() const
    {
        return uops ? 2.0 * fusedPairs / uops : 0.0;
    }

    /**
     * Publish the result under prefix.* (e.g. timing.pipeline.cycles,
     * .uops, .x86_ipc). Values are copied at call time.
     */
    void exportStats(StatRegistry &reg, const std::string &prefix) const;
};

/** The pipeline simulator. */
class PipelineSim
{
  public:
    explicit PipelineSim(const PipelineParams &params = {},
                         const PipelineKnobs &knobs = {});

    /**
     * Simulate `iterations` back-to-back executions of the micro-op
     * sequence (a steady-state loop body). Fused pairs must be
     * adjacent (head marked fusedHead).
     */
    PipelineResult run(const uops::UopVec &body, unsigned iterations);

  private:
    PipelineParams p;
    PipelineKnobs k;
};

/** Strip all fusion marks (the conventional-superscalar baseline). */
uops::UopVec unfused(const uops::UopVec &body);

} // namespace cdvm::timing

#endif // CDVM_TIMING_PIPELINE_HH
